package ivm_test

// Property-based equivalence tests for the cost-based join planner: for
// random base relations and update sequences, a Views maintained with
// the planner (the default) must be bit-identical — same tuples, same
// derivation counts, same reported change sets — to one maintained with
// WithoutPlanner (the static greedy order). Together the program
// families × quick.Check trials exceed 100 randomized runs.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ivm"
)

// plannerCases reuses the parallel suite's program families and adds
// strategies the parallel suite does not cover: the planner threads
// through counting, DRed, recompute, and PF alike.
var plannerCases = []struct {
	name     string
	src      string
	strategy ivm.Strategy
	weighted bool
}{
	{"join-counting", propertyPrograms[0].src, ivm.Counting, false},
	{"negation-counting", propertyPrograms[1].src, ivm.Counting, false},
	{"aggregation-counting", propertyPrograms[2].src, ivm.Counting, true},
	{"recursion-dred", propertyPrograms[3].src, ivm.DRed, false},
	{"recursion-negation-dred", propertyPrograms[4].src, ivm.DRed, false},
	{"join-recompute", propertyPrograms[0].src, ivm.Recompute, false},
	{"join-pf", propertyPrograms[0].src, ivm.PF, false},
}

func TestPropertyPlannerMatchesGreedy(t *testing.T) {
	for _, tc := range plannerCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				baseFacts := randomEdges(rng, 7, 12, tc.weighted).String()

				mk := func(opts ...ivm.Option) *ivm.Views {
					db := ivm.NewDatabase()
					db.MustLoad(baseFacts)
					opts = append(opts, ivm.WithStrategy(tc.strategy))
					v, err := db.Materialize(tc.src, opts...)
					if err != nil {
						t.Fatal(err)
					}
					return v
				}
				planned := mk()
				greedy := mk(ivm.WithoutPlanner())

				check := func(round int) {
					for pred := range planned.Program().DerivedPreds() {
						if !sameRows(planned.Rows(pred), greedy.Rows(pred)) {
							t.Fatalf("seed %d round %d: %s diverges under the planner\nplanned %v\ngreedy  %v",
								seed, round, pred, planned.Rows(pred), greedy.Rows(pred))
						}
					}
				}
				check(-1) // initial materialization

				for round := 0; round < 6; round++ {
					d := buildDelta(rng, greedy, tc.weighted)
					if d.Empty() {
						continue
					}
					csP, err := planned.Apply(d)
					if err != nil {
						t.Fatalf("seed %d round %d planned: %v", seed, round, err)
					}
					csG, err := greedy.Apply(d)
					if err != nil {
						t.Fatalf("seed %d round %d greedy: %v", seed, round, err)
					}
					// Reported change sets must match exactly too.
					pp, gp := csP.Preds(), csG.Preds()
					if len(pp) != len(gp) {
						t.Fatalf("seed %d round %d: changed preds diverge %v vs %v", seed, round, pp, gp)
					}
					for i, pred := range pp {
						if gp[i] != pred || !sameRows(csP.Delta(pred), csG.Delta(pred)) {
							t.Fatalf("seed %d round %d: Δ(%s) diverges\nplanned %v\ngreedy  %v",
								seed, round, pred, csP.Delta(pred), csG.Delta(pred))
						}
					}
					check(round)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPlannerParallelMatchesSequentialGreedy crosses both axes: a
// planned parallel Views against a greedy sequential one.
func TestPlannerParallelMatchesSequentialGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseFacts := randomEdges(rng, 7, 12, false).String()
		mk := func(opts ...ivm.Option) *ivm.Views {
			db := ivm.NewDatabase()
			db.MustLoad(baseFacts)
			v, err := db.Materialize(propertyPrograms[0].src, opts...)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		ref := mk(ivm.WithoutPlanner())
		par := mk(ivm.WithParallelism(4))
		for round := 0; round < 5; round++ {
			d := buildDelta(rng, ref, false)
			if d.Empty() {
				continue
			}
			if _, err := ref.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := par.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for pred := range ref.Program().DerivedPreds() {
				if !sameRows(ref.Rows(pred), par.Rows(pred)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPlannerCacheSteadyState drives many same-shaped update batches and
// asserts the plan cache reaches a ≥99% hit rate: steady-state
// maintenance must not pay planning costs.
func TestPlannerCacheSteadyState(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(n0,n1).`)
	v, err := db.Materialize(`
		hop(X,Y)    :- link(X,Z), link(Z,Y).
		triple(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Sliding-window workload: every apply inserts a fresh edge and
	// retracts the one inserted 40 steps earlier, so deltas flow every
	// batch while relation sizes stay flat (no cardinality drift).
	edge := func(i int) string {
		return "link(v" + itoa(i%50) + ", v" + itoa((i+13)%50) + ")"
	}
	for i := 0; i < 4000; i++ {
		script := "+" + edge(i) + "."
		if i >= 40 {
			script += " -" + edge(i-40) + "."
		}
		if _, err := v.ApplyScript(script); err != nil {
			t.Fatal(err)
		}
	}
	m := v.Metrics()
	hits := m.Counters["planner_hits_total"]
	misses := m.Counters["planner_misses_total"]
	replans := m.Counters["planner_replans_total"]
	total := hits + misses + replans
	if total == 0 {
		t.Fatal("planner recorded no lookups")
	}
	rate := float64(hits) / float64(total)
	if rate < 0.99 {
		t.Fatalf("plan cache hit rate %.4f (hits %d, misses %d, replans %d), want >= 0.99",
			rate, hits, misses, replans)
	}
	if m.Gauges["planner_plans"] == 0 {
		t.Fatal("planner_plans gauge is zero after maintenance")
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + string(rune('0'+i%10))
}

// TestExplainPlanRendersOrderAndAccessPaths pins the ExplainPlan output
// contract: deterministic rendering of the chosen order and access
// paths.
func TestExplainPlanRendersOrderAndAccessPaths(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). link(c,d).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := v.ExplainPlan("hop")
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("ExplainPlan returned %d plans, want 1", len(plans))
	}
	first := plans[0].Plan
	if first == "" {
		t.Fatal("empty plan rendering")
	}
	for i := 0; i < 10; i++ {
		again, err := v.ExplainPlan("hop")
		if err != nil {
			t.Fatal(err)
		}
		if again[0].Plan != first {
			t.Fatalf("ExplainPlan not deterministic:\n%s\n%s", first, again[0].Plan)
		}
	}
	// Two join literals: the rendering must name an access path per step.
	if got := first; !containsAll(got, "scan", "link") {
		t.Fatalf("plan rendering missing access paths: %q", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

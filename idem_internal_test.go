package ivm

import (
	"fmt"
	"testing"
)

// The idempotency window in isolation: bounded LRU behaviour.

func TestIdemWindowLRU(t *testing.T) {
	w := newIdemWindow(3)
	css := make([]*ChangeSet, 5)
	for i := range css {
		css[i] = &ChangeSet{version: uint64(i + 1)}
	}
	for i := 0; i < 3; i++ {
		w.record(fmt.Sprintf("k%d", i), css[i])
	}
	if w.len() != 3 {
		t.Fatalf("len = %d, want 3", w.len())
	}
	// Touch k0 so k1 becomes the eviction victim.
	if cs, ok := w.lookup("k0"); !ok || cs != css[0] {
		t.Fatalf("lookup(k0) = %v, %v", cs, ok)
	}
	w.record("k3", css[3])
	if _, ok := w.lookup("k1"); ok {
		t.Fatal("k1 should have been evicted as least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := w.lookup(k); !ok {
			t.Fatalf("%s should still be in the window", k)
		}
	}
	// Re-recording an existing key refreshes in place, no growth.
	w.record("k2", css[4])
	if w.len() != 3 {
		t.Fatalf("len after re-record = %d, want 3", w.len())
	}
	if cs, _ := w.lookup("k2"); cs != css[4] {
		t.Fatalf("re-record did not replace the change set")
	}
}

func TestIdemWindowDefaultCapacity(t *testing.T) {
	for _, capacity := range []int{0, -7} {
		w := newIdemWindow(capacity)
		if w.cap != DefaultIdempotencyWindow {
			t.Fatalf("newIdemWindow(%d).cap = %d, want %d", capacity, w.cap, DefaultIdempotencyWindow)
		}
	}
	w := newIdemWindow(1)
	w.record("a", &ChangeSet{version: 1})
	w.record("b", &ChangeSet{version: 2})
	if w.len() != 1 {
		t.Fatalf("len = %d, want 1", w.len())
	}
	if _, ok := w.lookup("a"); ok {
		t.Fatal("a should have been evicted by b in a capacity-1 window")
	}
}

package ivm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestOnCommitObservesEveryBatch: commit handlers receive every
// committed batch's ChangeSet — stamped with its published version, in
// commit order, including batches with no visible delta.
func TestOnCommitObservesEveryBatch(t *testing.T) {
	db := NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []uint64
	v.OnCommit(func(cs *ChangeSet) {
		mu.Lock()
		seen = append(seen, cs.Version())
		mu.Unlock()
	})

	var want []uint64
	for i := 0; i < 5; i++ {
		cs, err := v.Apply(NewUpdate().
			Insert("link", fmt.Sprintf("s%d", i), fmt.Sprintf("m%d", i)).
			Insert("link", fmt.Sprintf("m%d", i), fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs.Version())
	}
	// A no-visible-change batch still commits, publishes, and notifies.
	cs, err := v.Apply(NewUpdate().Insert("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Empty() {
		t.Fatalf("re-inserting link(a,b) under set semantics should be invisible, got %v", cs)
	}
	want = append(want, cs.Version())

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("commit handler fired %d times, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("commit %d: version %d, want %d", i, seen[i], want[i])
		}
	}
}

// TestShutdownCheckpointsAndCloses: Shutdown drains, checkpoints, and
// closes the store; later writes fail with ErrStoreClosed, reads keep
// serving, recovery replays nothing, and a second Shutdown is a no-op.
func TestShutdownCheckpointsAndCloses(t *testing.T) {
	dir := t.TempDir()
	v, _, err := OpenStore(dir, func() (*Views, error) {
		db := NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	v.Drain() // exercise Drain on an idle scheduler too
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := v.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v, want no-op", err)
	}
	if _, err := v.Apply(NewUpdate().Insert("link", "d", "e")); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Apply after Shutdown: %v, want ErrStoreClosed", err)
	}
	if !v.Has("hop", "b", "d") {
		t.Fatal("reads must keep serving the final version after Shutdown")
	}

	v2, info, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if info.Replayed != 0 {
		t.Fatalf("recovery after clean Shutdown replayed %d records, want 0", info.Replayed)
	}
	if !v2.Has("hop", "b", "d") {
		t.Fatal("state lost across Shutdown + recovery")
	}
}

package ivm_test

// Native fuzz targets for the public update-script surface. The WAL
// stores exactly what Update.String renders and recovery replays it
// through ParseUpdate, so the round-trip property here is a durability
// property: anything Apply accepts must re-parse to the same update.

import (
	"testing"

	"ivm"
)

// FuzzParseUpdate checks that the delta-script parser never panics and
// that every accepted script round-trips through its canonical
// rendering: parse → render → parse → render must be a fixed point,
// since WAL replay feeds rendered scripts back through this parser.
func FuzzParseUpdate(f *testing.F) {
	seeds := []string{
		`+link(a,b). -link(b,c).`,
		`link(a,b) * 3. -p(1, 2.5, "x").`,
		`+edge("a b", -4). -edge("\"q\"", 1e9).`,
		`+t(1). +t(1). -t(1).`,
		`-only(x1,y1) * 2. +only(x1,y1) * 2.`,
		`% comment
+p(a).`,
		`+f(0.5). +f(-0.0). +f(123456789012345).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ivm.ParseUpdate(src)
		if err != nil {
			return
		}
		rendered := u.String()
		u2, err := ivm.ParseUpdate(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered update failed: %v\n%s", err, rendered)
		}
		if again := u2.String(); again != rendered {
			t.Fatalf("unstable render:\n%q\nvs\n%q", rendered, again)
		}
	})
}

package ivm_test

// Concurrency test: readers hammer Query/Rows/Count/Explain while a
// writer applies update batches. Run with -race — the point is that the
// Views lock discipline (reads under RLock, including index-building
// Lookups; maintenance under the write lock) holds up under load.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ivm"
)

func TestConcurrentReadersDuringUpdates(t *testing.T) {
	db := ivm.NewDatabase()
	for i := 0; i < 40; i++ {
		db.Insert("link", fmt.Sprintf("n%d", i%12), fmt.Sprintf("n%d", (i*5+1)%12))
	}
	v, err := db.Materialize(`
		hop(X,Y) :- link(X,Z), link(Z,Y).
		tri(X,Y) :- hop(X,Z), link(Z,Y).
		only(X,Y) :- tri(X,Y), !hop(X,Y).
	`, ivm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Queries with bound columns force index lookups (and
				// therefore lazy index builds) under the read lock.
				if _, err := v.Query(fmt.Sprintf("hop(n%d, X)", i%12)); err != nil {
					errCh <- fmt.Errorf("reader %d query: %w", r, err)
					return
				}
				v.Rows("tri")
				v.Count("hop", fmt.Sprintf("n%d", i%12), fmt.Sprintf("n%d", (i+3)%12))
				v.Has("only", "n0", "n1")
				if i%7 == 0 {
					if _, err := v.Explain(fmt.Sprintf("hop(n%d, n%d)", i%12, (i*5+2)%12)); err != nil {
						errCh <- fmt.Errorf("reader %d explain: %w", r, err)
						return
					}
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for round := 0; round < 100; round++ {
			a, b := round%12, (round*7+2)%12
			if a == b {
				continue
			}
			del := ivm.NewUpdate().Delete("link", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", (a*5+1)%12))
			if v.Has("link", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", (a*5+1)%12)) {
				if _, err := v.Apply(del); err != nil {
					errCh <- fmt.Errorf("writer delete round %d: %w", round, err)
					return
				}
			}
			ins := ivm.NewUpdate().Insert("link", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))
			if _, err := v.Apply(ins); err != nil {
				errCh <- fmt.Errorf("writer insert round %d: %w", round, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

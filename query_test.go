package ivm_test

import (
	"sync"
	"testing"

	"ivm"
)

func TestQueryBasics(t *testing.T) {
	v := mustViews(t, `link(a,b). link(a,c). link(b,b).`,
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))

	// Constants filter; variables bind.
	res, err := v.Query(`link(a, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results: %v", res)
	}
	if res[0].Bindings["X"].Str() != "b" || res[1].Bindings["X"].Str() != "c" {
		t.Fatalf("bindings: %v", res)
	}

	// Repeated variables must agree.
	res, err = v.Query(`link(X, X)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Bindings["X"].Str() != "b" {
		t.Fatalf("self loops: %v", res)
	}

	// Derived relations carry counts.
	res, err = v.Query(`hop(a, b)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Row.Count != 1 {
		t.Fatalf("hop(a,b): %v", res)
	}

	// All-variable scan.
	res, err = v.Query(`hop(X, Y)`)
	if err != nil {
		t.Fatal(err)
	}
	// hop pairs: (a,b) via link(a,b),link(b,b); (b,b) via link(b,b) twice.
	if len(res) != 2 {
		t.Fatalf("hop scan: %v", res)
	}
}

func TestQueryErrorsAndMisses(t *testing.T) {
	v := mustViews(t, `p(a).`, `q(X) :- p(X).`)
	if _, err := v.Query(`broken(`); err == nil {
		t.Fatal("syntax error must surface")
	}
	if _, err := v.Query(`p(X+1)`); err == nil {
		t.Fatal("arithmetic in goals rejected")
	}
	res, err := v.Query(`absent(X)`)
	if err != nil || res != nil {
		t.Fatalf("absent: %v %v", res, err)
	}
	res, err = v.Query(`p(zzz)`)
	if err != nil || len(res) != 0 {
		t.Fatalf("miss: %v %v", res, err)
	}
	// Arity mismatch yields no matches rather than an error.
	res, err = v.Query(`p(X, Y)`)
	if err != nil || len(res) != 0 {
		t.Fatalf("arity mismatch: %v %v", res, err)
	}
}

// TestConcurrentReadersAndWriter exercises the Views lock under -race.
func TestConcurrentReadersAndWriter(t *testing.T) {
	v := mustViews(t, `link(a,b). link(b,c).`,
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v.Rows("hop")
				v.Count("hop", "a", "c")
				v.Query(`hop(a, X)`)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var u *ivm.Update
		if i%2 == 0 {
			u = ivm.NewUpdate().Insert("link", "c", "d")
		} else {
			u = ivm.NewUpdate().Delete("link", "c", "d")
		}
		if _, err := v.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

package ivm

import (
	"fmt"
	"sort"
	"time"

	"ivm/internal/baseline/pf"
	"ivm/internal/core/counting"
	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/parser"
	"ivm/internal/relation"
)

// version is one published snapshot of the views: an immutable map of
// predicate → versioned relation plus the program and statistics as of
// that point. The maintainer builds the successor version off-line (the
// per-update deltas are pushed onto copy-on-write relation versions,
// sharing every unchanged relation with the predecessor) and publishes
// it with a single atomic pointer store — readers pin a version with
// one atomic load and never block on, or are blocked by, maintenance.
type version struct {
	id         uint64
	rels       map[string]*relation.Versioned
	prog       *datalog.Program
	programSrc string
	// published is the wall-clock UnixNano of the publish, feeding the
	// snapshot-age gauge.
	published int64
	// per-engine statistics of the maintenance pass that produced this
	// version, so the *Stats accessors are race-free against Apply.
	cstats counting.Stats
	dstats dred.Stats
	pstats pf.Stats
}

// reader returns the pinned read view of pred, or nil if the predicate
// has no stored relation in this version.
func (vv *version) reader(pred string) relation.Reader {
	vr := vv.rels[pred]
	if vr == nil {
		return nil
	}
	return vr.Reader()
}

// Snapshot is a repeatable-read handle: every read through it sees the
// single version that was current when Views.Snapshot was called, no
// matter how many updates commit afterwards. Snapshots are cheap (one
// atomic load), safe for concurrent use, and never expire — they hold
// only immutable data, so the garbage collector reclaims a version once
// the last snapshot pinning it is dropped.
type Snapshot struct {
	views *Views
	v     *version
}

// Snapshot pins the current version for repeatable reads:
//
//	s := v.Snapshot()
//	before := s.Rows("hop")     // consistent with ...
//	n := s.Count("hop", "a", "c") // ... this, even while Apply runs
//
// Reads through the Views directly (v.Rows, v.Query, ...) each pin the
// then-current version instead.
func (v *Views) Snapshot() *Snapshot {
	start := time.Now()
	s := &Snapshot{views: v, v: v.cur.Load()}
	v.mSnapWait.Observe(time.Since(start))
	return s
}

// Version returns the snapshot's monotonically increasing version
// number. Version n+1 is the state of version n with exactly one
// committed maintenance batch applied; ChangeSet.Version ties an Apply
// to the version in which its effects became visible.
func (s *Snapshot) Version() uint64 { return s.v.id }

// ProgramSource returns the program text as of the snapshot.
func (s *Snapshot) ProgramSource() string { return s.v.programSrc }

// Preds returns the snapshot's stored predicates (base and derived,
// excluding internal auxiliary predicates), sorted.
func (s *Snapshot) Preds() []string {
	out := make([]string, 0, len(s.v.rels))
	for p := range s.v.rels {
		if !s.views.hidden[p] {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Rows returns the stored rows of a (base or derived) relation at the
// snapshot, sorted lexicographically.
func (s *Snapshot) Rows(pred string) []Row {
	vr := s.v.rels[pred]
	if vr == nil {
		return nil
	}
	return vr.Flat().SortedRows()
}

// Count returns the derivation count of the tuple at the snapshot (0 if
// absent).
func (s *Snapshot) Count(pred string, vals ...any) int64 {
	r := s.v.reader(pred)
	if r == nil {
		return 0
	}
	return r.Count(T(vals...))
}

// Has reports whether the tuple is present at the snapshot.
func (s *Snapshot) Has(pred string, vals ...any) bool {
	return s.Count(pred, vals...) > 0
}

// Query matches a single goal pattern against the snapshot — the
// semantics of Views.Query, evaluated at the pinned version.
func (s *Snapshot) Query(goal string) ([]QueryResult, error) {
	a, err := parser.ParseGoal(goal)
	if err != nil {
		return nil, err
	}
	r := s.v.reader(a.Pred)
	if r == nil {
		return nil, nil
	}
	return matchGoal(a, r), nil
}

// Explain enumerates the derivations of a ground view tuple at the
// snapshot — the semantics of Views.Explain, evaluated at the pinned
// version (group tables are rebuilt from the snapshot's relations, so
// no engine state is touched and no lock is taken).
func (s *Snapshot) Explain(goal string) ([]Derivation, error) {
	a, err := parser.ParseGoal(goal)
	if err != nil {
		return nil, err
	}
	tuple := make(Tuple, len(a.Args))
	for i, t := range a.Args {
		c, ok := t.(datalog.Const)
		if !ok {
			return nil, fmt.Errorf("ivm: Explain needs a ground goal; %s is a variable", t)
		}
		tuple[i] = c.Value
	}

	prog := s.v.prog
	db := eval.NewDB()
	for pred, vr := range s.v.rels {
		db.Put(pred, vr.Flat())
	}
	var out []Derivation
	for _, ri := range prog.RulesFor(a.Pred) {
		rule := prog.Rules[ri]
		srcs, err := eval.SourcesAt(rule, ri, db, s.views.explainSem, nil)
		if err != nil {
			return nil, err
		}
		matches, err := eval.Explain(rule, srcs, tuple)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			d := Derivation{Rule: rule.String(), RuleIndex: ri}
			for _, g := range m {
				d.Subgoals = append(d.Subgoals, Subgoal{
					Pred: g.Pred, Tuple: g.Tuple,
					Negated: g.Negated, Aggregate: g.Aggregate, Count: g.Count,
				})
			}
			out = append(out, d)
		}
	}
	// Derivation enumeration walks hash relations, so within a rule the
	// match order is unspecified; sort for deterministic output.
	sort.Slice(out, func(i, j int) bool {
		if out[i].RuleIndex != out[j].RuleIndex {
			return out[i].RuleIndex < out[j].RuleIndex
		}
		return derivationKey(out[i]) < derivationKey(out[j])
	})
	return out, nil
}

// RulePlan is one rule's join plan as the cost-based planner would
// order it against a snapshot's statistics.
type RulePlan struct {
	// Rule renders the planned rule.
	Rule string
	// RuleIndex is the rule's position in Program().Rules.
	RuleIndex int
	// Plan renders the chosen literal order and per-literal access paths
	// (" -> "-separated; "point", "index [cols ...]", "scan", "filter").
	Plan string
}

// ExplainPlan renders the join plan the cost-based planner chooses for
// every rule deriving pred, against the snapshot's relation statistics.
// The output is deterministic: planning iterates body literals in rule
// order and the cardinality sketches are insertion-order independent.
// Plans rendered here are advisory — the engines cache their own plans
// keyed per (rule, Δ-position, semantics) and replan on cardinality
// drift — but the order and access paths match a fresh full-evaluation
// plan for the same statistics.
func (s *Snapshot) ExplainPlan(pred string) ([]RulePlan, error) {
	prog := s.v.prog
	db := eval.NewDB()
	for p, vr := range s.v.rels {
		db.Put(p, vr.Flat())
	}
	var out []RulePlan
	for _, ri := range prog.RulesFor(pred) {
		rule := prog.Rules[ri]
		srcs, err := eval.SourcesAt(rule, ri, db, s.views.explainSem, nil)
		if err != nil {
			return nil, err
		}
		plan, err := eval.PlanRule(rule, srcs, -1)
		if err != nil {
			return nil, err
		}
		out = append(out, RulePlan{Rule: rule.String(), RuleIndex: ri, Plan: plan.Describe(rule)})
	}
	return out, nil
}

// publishLocked atomically publishes rels as the next version (wmu
// held). Every successful maintenance batch publishes — even one with
// no visible changes — so the version-carried statistics stay current.
func (v *Views) publishLocked(rels map[string]*relation.Versioned) *version {
	var id uint64 = 1
	if old := v.cur.Load(); old != nil {
		id = old.id + 1
	}
	return v.publishVersionLocked(rels, id)
}

// publishVersionLocked atomically publishes rels under an explicit
// version id (wmu held). The maintainer assigns ids before the WAL
// group-commit wait so the durable record and the published version
// carry the same number; ids must advance in publish order.
func (v *Views) publishVersionLocked(rels map[string]*relation.Versioned, id uint64) *version {
	nv := &version{
		id:         id,
		rels:       rels,
		prog:       v.progLocked(),
		programSrc: v.programSrc,
		published:  time.Now().UnixNano(),
	}
	if v.c != nil {
		nv.cstats = v.c.Stats()
	}
	if v.dr != nil {
		nv.dstats = v.dr.Stats()
	}
	if v.pf != nil {
		nv.pstats = v.pf.Stats()
	}
	v.cur.Store(nv)
	v.mSnapVersion.Set(int64(nv.id))
	v.mSnapUnix.Set(nv.published)
	v.wakeVersionWaiters()
	return nv
}

// SeedVersion republishes the current state unchanged under version id
// — no maintenance runs and no WAL record is written. Replication uses
// it to align version counters with a remote history: a recovered
// primary seeds to its checkpoint's base version before WAL replay, and
// a follower seeds to the version of the state snapshot it just loaded.
// Reads observe the same relations under the new id.
func (v *Views) SeedVersion(id uint64) {
	v.wmu.Lock()
	defer v.wmu.Unlock()
	cur := v.cur.Load()
	nv := &version{
		id:         id,
		rels:       cur.rels,
		prog:       cur.prog,
		programSrc: cur.programSrc,
		published:  time.Now().UnixNano(),
		cstats:     cur.cstats,
		dstats:     cur.dstats,
		pstats:     cur.pstats,
	}
	v.cur.Store(nv)
	v.mSnapVersion.Set(int64(nv.id))
	v.mSnapUnix.Set(nv.published)
	v.wakeVersionWaiters()
}

// wakeVersionWaiters releases every WaitForVersion caller to re-check
// the published version.
func (v *Views) wakeVersionWaiters() {
	v.verMu.Lock()
	if v.verCh != nil {
		close(v.verCh)
		v.verCh = nil
	}
	v.verMu.Unlock()
}

// versionWaitCh returns a channel closed at the next publish.
func (v *Views) versionWaitCh() <-chan struct{} {
	v.verMu.Lock()
	if v.verCh == nil {
		v.verCh = make(chan struct{})
	}
	ch := v.verCh
	v.verMu.Unlock()
	return ch
}

// WaitForVersion blocks until the published version is at least min,
// reporting whether it got there before timeout. Bounded-staleness
// reads use it on a replica: wait for the version an Apply ack carried,
// then read — read-your-writes across the replication lag, or a clear
// timeout signal to redirect to the leader.
func (v *Views) WaitForVersion(min uint64, timeout time.Duration) bool {
	if v.cur.Load().id >= min {
		return true
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := v.versionWaitCh()
		if v.cur.Load().id >= min {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return v.cur.Load().id >= min
		}
	}
}

// publishAllLocked rebuilds the whole version map from the engine's
// storage (full clone) and publishes it. Used at materialization and
// after rule edits, where the delta-replay fast path does not apply.
func (v *Views) publishAllLocked() *version {
	db := v.db()
	rels := make(map[string]*relation.Versioned)
	for _, pred := range db.Preds() {
		rels[pred] = relation.NewVersioned(db.Get(pred).Clone())
	}
	return v.publishLocked(rels)
}

// nextRelsLocked returns a mutable copy of the current version's
// relation map for the maintainer to evolve; unchanged entries keep
// sharing the predecessor's versioned relations.
func (v *Views) nextRelsLocked() map[string]*relation.Versioned {
	cur := v.cur.Load().rels
	next := make(map[string]*relation.Versioned, len(cur)+1)
	for p, vr := range cur {
		next[p] = vr
	}
	return next
}

// committedDeltasLocked returns the exact per-predicate deltas the most
// recent engine operation merged into stored content.
func (v *Views) committedDeltasLocked() map[string]*relation.Relation {
	switch {
	case v.c != nil:
		return v.c.CommittedDeltas()
	case v.dr != nil:
		return v.dr.CommittedDeltas()
	case v.rc != nil:
		return v.rc.CommittedDeltas()
	default:
		return v.pf.CommittedDeltas()
	}
}

// progLocked returns the engine's current program (wmu held; the
// race-free public accessor is Program, which reads the published
// version).
func (v *Views) progLocked() *datalog.Program {
	switch {
	case v.c != nil:
		return v.c.Program()
	case v.dr != nil:
		return v.dr.Program()
	case v.rc != nil:
		return v.rc.Program()
	default:
		return v.pf.Program()
	}
}

package ivm_test

// Property-based tests (experiment E11): for randomized base relations
// and update sequences, every maintenance strategy must agree with full
// recomputation, stored counts must equal true derivation counts and
// never go negative (Lemma 4.1 / Theorem 4.1), and DRed must satisfy
// Theorem 7.1 (the maintained view equals the view of the new database).

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ivm"
)

// program families exercised by the random tests.
var propertyPrograms = []struct {
	name      string
	src       string
	recursive bool
	weighted  bool
}{
	{"join", `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`, false, false},
	{"negation", `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		only(X,Y)    :- tri_hop(X,Y), !hop(X,Y).
	`, false, false},
	{"aggregation", `
		cost(S,D,C1+C2) :- link(S,I,C1), link(I,D,C2).
		mch(S,D,M)      :- groupby(cost(S,D,C), [S,D], M = min(C)).
		spend(S,N)      :- groupby(cost(S,D,C), [S], N = sum(C)).
	`, false, true},
	{"recursion", `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, true, false},
	{"recursion-negation", `
		tc(X,Y)      :- link(X,Y).
		tc(X,Y)      :- tc(X,Z), link(Z,Y).
		sink(X,Y)    :- tc(X,Y), !link(X,Y).
	`, true, false},
}

// randomEdges renders n random edges (weighted or not) as fact text.
func randomEdges(rng *rand.Rand, nodes, n int, weighted bool) *ivm.Update {
	u := ivm.NewUpdate()
	for i := 0; i < n; i++ {
		a := rng.Intn(nodes)
		b := rng.Intn(nodes)
		if a == b {
			continue
		}
		if weighted {
			u.Insert("link", nodeName(a), nodeName(b), int64(1+rng.Intn(6)))
		} else {
			u.Insert("link", nodeName(a), nodeName(b))
		}
	}
	return u
}

func nodeName(i int) string { return string(rune('a' + i)) }

func tupleArgs(t ivm.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = v
	}
	return out
}

func TestPropertyStrategiesAgree(t *testing.T) {
	for _, tc := range propertyPrograms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				base := ivm.NewDatabase()
				init := randomEdges(rng, 7, 12, tc.weighted)
				baseFacts := init.String()
				base.MustLoad(baseFacts)

				strategies := []ivm.Strategy{ivm.Recompute}
				if tc.recursive {
					strategies = append(strategies, ivm.DRed, ivm.PF)
				} else {
					strategies = append(strategies, ivm.Counting, ivm.DRed)
				}
				views := make([]*ivm.Views, len(strategies))
				for i, s := range strategies {
					db := ivm.NewDatabase()
					db.MustLoad(baseFacts)
					v, err := db.Materialize(tc.src, ivm.WithStrategy(s))
					if err != nil {
						t.Fatalf("%v: %v", s, err)
					}
					views[i] = v
				}

				for round := 0; round < 6; round++ {
					// Build one delta against the reference view's state.
					d := buildDelta(rng, views[0], tc.weighted)
					if d.Empty() {
						continue
					}
					for i, v := range views {
						if _, err := v.Apply(d); err != nil {
							t.Fatalf("seed %d round %d strategy %v: %v\ndelta:\n%s",
								seed, round, strategies[i], err, d.String())
						}
					}
					// All strategies agree with the recompute reference,
					// as sets, on every derived predicate.
					ref := views[0]
					for pred := range ref.Program().DerivedPreds() {
						want := asSet(ref.Rows(pred))
						for i := 1; i < len(views); i++ {
							got := asSet(views[i].Rows(pred))
							if !sameSet(want, got) {
								t.Fatalf("seed %d round %d: %s diverges under %v\nwant %v\ngot  %v",
									seed, round, pred, strategies[i], want, got)
							}
						}
						// No negative stored counts anywhere.
						for _, v := range views {
							for _, row := range v.Rows(pred) {
								if row.Count < 0 {
									t.Fatalf("negative count %s%v = %d", pred, row.Tuple, row.Count)
								}
							}
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
				t.Error(err)
			}
		})
	}
}

// buildDelta picks deletions from the view's current link relation plus
// random insertions, avoiding duplicate-tuple nets that would over-delete.
func buildDelta(rng *rand.Rand, v *ivm.Views, weighted bool) *ivm.Update {
	u := ivm.NewUpdate()
	rows := v.Rows("link")
	used := map[string]bool{}
	for i := 0; i < 2 && len(rows) > 0; i++ {
		row := rows[rng.Intn(len(rows))]
		k := row.Tuple.Key()
		if used[k] {
			continue
		}
		used[k] = true
		u.InsertTuple("link", row.Tuple, -1)
	}
	for i := 0; i < 2; i++ {
		a, b := rng.Intn(7), rng.Intn(7)
		if a == b {
			continue
		}
		var tu ivm.Tuple
		if weighted {
			tu = ivm.T(nodeName(a), nodeName(b), int64(1+rng.Intn(6)))
		} else {
			tu = ivm.T(nodeName(a), nodeName(b))
		}
		k := tu.Key()
		if used[k] || v.Has("link", tupleArgs(tu)...) {
			continue
		}
		used[k] = true
		u.InsertTuple("link", tu, 1)
	}
	return u
}

func asSet(rows []ivm.Row) map[string]bool {
	out := make(map[string]bool, len(rows))
	for _, r := range rows {
		if r.Count > 0 {
			out[r.Tuple.Key()] = true
		}
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestPropertyCountsAreTrueDerivationCounts: under duplicate semantics the
// stored counts of the counting engine equal the counts a from-scratch
// evaluation produces (Theorem 4.1), across random update sequences.
func TestPropertyCountsAreTrueDerivationCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randomEdges(rng, 6, 10, false).String()

		db1 := ivm.NewDatabase()
		db1.MustLoad(base)
		counted, err := db1.Materialize(`
			hop(X,Y)     :- link(X,Z), link(Z,Y).
			tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		`, ivm.WithSemantics(ivm.DuplicateSemantics))
		if err != nil {
			t.Fatal(err)
		}
		db2 := ivm.NewDatabase()
		db2.MustLoad(base)
		oracle, err := db2.Materialize(`
			hop(X,Y)     :- link(X,Z), link(Z,Y).
			tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		`, ivm.WithSemantics(ivm.DuplicateSemantics), ivm.WithStrategy(ivm.Recompute))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			d := buildDelta(rng, counted, false)
			if d.Empty() {
				continue
			}
			if _, err := counted.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := oracle.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, pred := range []string{"hop", "tri_hop"} {
				a, b := counted.Rows(pred), oracle.Rows(pred)
				if len(a) != len(b) {
					return false
				}
				for i := range a {
					if !a[i].Tuple.Equal(b[i].Tuple) || a[i].Count != b[i].Count {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRuleChangesAgreeWithRematerialize: after a random sequence
// of AddRule/RemoveRule operations interleaved with data changes, the
// DRed-maintained views equal a fresh materialization of the final
// program over the final base (the Section 7 rule-maintenance claim).
func TestPropertyRuleChangesAgreeWithRematerialize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseFacts := randomEdges(rng, 7, 12, false).String()
		db := ivm.NewDatabase()
		db.MustLoad(baseFacts)
		v, err := db.Materialize(`
			tc(X,Y) :- link(X,Y).
			tc(X,Y) :- tc(X,Z), link(Z,Y).
		`, ivm.WithStrategy(ivm.DRed))
		if err != nil {
			t.Fatal(err)
		}
		extraRules := []string{
			`tc(X,Y) :- hyper(X,Y).`,
			`tc(X,Y) :- bridge(X,Z), bridge(Z,Y).`,
		}
		added := []int{} // rule indexes of added extras, in v.Program order
		for round := 0; round < 6; round++ {
			switch rng.Intn(3) {
			case 0: // data change
				d := buildDelta(rng, v, false)
				if !d.Empty() {
					if _, err := v.Apply(d); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
				// Feed the auxiliary base relations occasionally.
				if rng.Intn(2) == 0 {
					u := ivm.NewUpdate().Insert("hyper", nodeName(rng.Intn(7)), nodeName(rng.Intn(7)))
					if _, err := v.Apply(u); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			case 1: // add a rule (if not all added)
				if len(added) < len(extraRules) {
					idx := len(v.Program().Rules)
					if _, err := v.AddRule(extraRules[len(added)]); err != nil {
						t.Fatalf("seed %d addrule: %v", seed, err)
					}
					added = append(added, idx)
				}
			case 2: // remove the most recently added rule
				if len(added) > 0 {
					ri := added[len(added)-1]
					added = added[:len(added)-1]
					if _, err := v.RemoveRule(ri); err != nil {
						t.Fatalf("seed %d rmrule: %v", seed, err)
					}
				}
			}
		}
		// Rematerialize the final program over the final base state.
		fresh := ivm.NewDatabase()
		for _, pred := range []string{"link", "hyper", "bridge"} {
			for _, row := range v.Rows(pred) {
				fresh.InsertTuple(pred, row.Tuple, 1)
			}
		}
		oracle, err := fresh.MaterializeProgram(v.Program(), v.ProgramSource(), ivm.WithStrategy(ivm.Recompute))
		if err != nil {
			t.Fatalf("seed %d oracle: %v", seed, err)
		}
		want := asSet(oracle.Rows("tc"))
		got := asSet(v.Rows("tc"))
		if !sameSet(want, got) {
			t.Fatalf("seed %d: tc diverges after rule changes\nprogram:\n%s\nwant %v\ngot  %v",
				seed, v.Program(), want, got)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

package ivm

import "container/list"

// The idempotency window behind ApplyIdempotent (DESIGN.md §13): a
// bounded LRU of key → the ChangeSet the key's apply committed. The
// counting and DRed algorithms are only correct if every delta is
// applied exactly once — a duplicated ⊎ batch silently corrupts every
// downstream count — so a client that cannot tell "never committed"
// from "committed, ack lost" (a timed-out network apply) retries with
// the same key and is answered from the window instead of re-applied.
//
// The window is consulted and updated only on the maintainer goroutine
// under the write lock, so it needs no locking of its own. Store-bound
// views log each apply's keys inside its WAL record; recovery replays
// them back through recordApplied, so dedup survives crashes exactly as
// far as the WAL does.

// DefaultIdempotencyWindow is the number of distinct idempotency keys
// remembered when WithIdempotencyWindow is not given. The window must
// comfortably exceed the number of applies that can land between a
// client's first attempt and its last retry; past eviction, a retry
// re-applies.
const DefaultIdempotencyWindow = 1024

// MaxIdempotencyKeyLen bounds key length: keys are logged inside every
// WAL record and held in memory for the window's lifetime. The serving
// layer rejects longer Idempotency-Key headers up front with the same
// bound.
const MaxIdempotencyKeyLen = 256

type idemEntry struct {
	key string
	cs  *ChangeSet
}

// idemWindow is an LRU map of bounded capacity; the zero value is not
// usable, call newIdemWindow.
type idemWindow struct {
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

func newIdemWindow(capacity int) *idemWindow {
	if capacity <= 0 {
		capacity = DefaultIdempotencyWindow
	}
	return &idemWindow{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// lookup returns the change set committed under key, refreshing its LRU
// position.
func (w *idemWindow) lookup(key string) (*ChangeSet, bool) {
	el, ok := w.m[key]
	if !ok {
		return nil, false
	}
	w.lru.MoveToFront(el)
	return el.Value.(*idemEntry).cs, true
}

// record remembers key → cs, evicting the least recently used entry
// when the window is full. Re-recording an existing key refreshes it.
func (w *idemWindow) record(key string, cs *ChangeSet) {
	if el, ok := w.m[key]; ok {
		el.Value.(*idemEntry).cs = cs
		w.lru.MoveToFront(el)
		return
	}
	for w.lru.Len() >= w.cap {
		oldest := w.lru.Back()
		w.lru.Remove(oldest)
		delete(w.m, oldest.Value.(*idemEntry).key)
	}
	w.m[key] = w.lru.PushFront(&idemEntry{key: key, cs: cs})
}

func (w *idemWindow) len() int { return w.lru.Len() }

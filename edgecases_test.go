package ivm_test

// Edge-case integration tests across the public API: conditions in
// maintained views, deep strata chains, zero-arity predicates, empty
// bases, self-joins, multi-rule unions, and cross-semantics behaviors.

import (
	"testing"

	"ivm"
)

func mustViews(t *testing.T, facts, program string, opts ...ivm.Option) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	if facts != "" {
		db.MustLoad(facts)
	}
	v, err := db.Materialize(program, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func apply(t *testing.T, v *ivm.Views, script string) *ivm.ChangeSet {
	t.Helper()
	ch, err := v.ApplyScript(script)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConditionsInMaintainedView(t *testing.T) {
	v := mustViews(t, `p(a, 1). p(b, 7).`,
		`big(X) :- p(X, C), C > 5.`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	if v.Has("big", "a") || !v.Has("big", "b") {
		t.Fatalf("big: %v", v.Rows("big"))
	}
	// Crossing the threshold via delete+insert (an update).
	apply(t, v, `-p(a, 1). +p(a, 9).`)
	if !v.Has("big", "a") {
		t.Fatalf("big after update: %v", v.Rows("big"))
	}
	apply(t, v, `-p(b, 7).`)
	if v.Has("big", "b") {
		t.Fatal("big(b) must retract")
	}
}

func TestArithmeticConditionInterplay(t *testing.T) {
	v := mustViews(t, `edge(x, y, 3). edge(y, z, 4).`,
		`short2(A, C, W1+W2) :- edge(A, B, W1), edge(B, C, W2), W1 + W2 < 10.`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	if !v.Has("short2", "x", "z", 7) {
		t.Fatalf("short2: %v", v.Rows("short2"))
	}
	// Make the path too long: the condition must filter during
	// maintenance, not only at build time.
	apply(t, v, `-edge(y, z, 4). +edge(y, z, 8).`)
	if len(v.Rows("short2")) != 0 {
		t.Fatalf("short2 after: %v", v.Rows("short2"))
	}
}

func TestDeepStrataChainMaintenance(t *testing.T) {
	v := mustViews(t, `base(k).`, `
		v1(X) :- base(X).
		v2(X) :- v1(X).
		v3(X) :- v2(X).
		v4(X) :- v3(X).
		v5(X) :- v4(X).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if !v.Has("v5", "k") {
		t.Fatal("v5(k)")
	}
	ch := apply(t, v, `-base(k).`)
	if len(ch.Preds()) != 5 {
		t.Fatalf("all five strata must change: %v", ch.Preds())
	}
	if v.Has("v5", "k") {
		t.Fatal("v5 must drain")
	}
	apply(t, v, `+base(k2).`)
	if !v.Has("v5", "k2") {
		t.Fatal("v5 must refill")
	}
}

func TestZeroArityPredicates(t *testing.T) {
	v := mustViews(t, `trigger().`, `
		alarm() :- trigger(), sensor(X).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if v.Has("alarm") {
		t.Fatal("no sensor yet")
	}
	apply(t, v, `+sensor(s1).`)
	if !v.Has("alarm") {
		t.Fatalf("alarm: %v", v.Rows("alarm"))
	}
	// Two sensors → two derivations of the zero-arity tuple.
	apply(t, v, `+sensor(s2).`)
	if v.Count("alarm") != 2 {
		t.Fatalf("alarm count: %v", v.Rows("alarm"))
	}
	apply(t, v, `-trigger().`)
	if v.Has("alarm") {
		t.Fatal("alarm must clear")
	}
}

func TestEmptyBaseMaterialization(t *testing.T) {
	v := mustViews(t, "", `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if len(v.Rows("hop")) != 0 {
		t.Fatal("empty view")
	}
	apply(t, v, `+link(a,b). +link(b,c).`)
	if !v.Has("hop", "a", "c") {
		t.Fatal("hop after first inserts")
	}
}

func TestSelfJoinInsertBatchExactCounts(t *testing.T) {
	// Inserting both halves of a self-join in one batch must count the
	// (Δ ⋈ Δ) derivations exactly once (the classic delta-rule trap).
	v := mustViews(t, "", `hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	apply(t, v, `+link(a,b). +link(b,c).`)
	if v.Count("hop", "a", "c") != 1 {
		t.Fatalf("hop(a,c) count: %d", v.Count("hop", "a", "c"))
	}
	// And deleting both in one batch returns to zero, not negative.
	apply(t, v, `-link(a,b). -link(b,c).`)
	if len(v.Rows("hop")) != 0 {
		t.Fatalf("hop: %v", v.Rows("hop"))
	}
}

func TestMultiRuleUnionCounts(t *testing.T) {
	v := mustViews(t, `p(a). q(a). q(b).`, `
		u(X) :- p(X).
		u(X) :- q(X).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if v.Count("u", "a") != 2 || v.Count("u", "b") != 1 {
		t.Fatalf("u: %v", v.Rows("u"))
	}
	// Deleting one branch leaves the other derivation.
	apply(t, v, `-p(a).`)
	if v.Count("u", "a") != 1 {
		t.Fatalf("u(a): %d", v.Count("u", "a"))
	}
	// Under set semantics the same deletion changes nothing visible.
	vs := mustViews(t, `p(a). q(a). q(b).`, `
		u(X) :- p(X).
		u(X) :- q(X).
	`, ivm.WithSemantics(ivm.SetSemantics))
	ch := apply(t, vs, `-p(a).`)
	if len(ch.Delta("u")) != 0 {
		t.Fatalf("set-semantics Δu: %v", ch.Delta("u"))
	}
	if !vs.Has("u", "a") {
		t.Fatal("u(a) survives")
	}
}

func TestRepeatedVariablesInView(t *testing.T) {
	v := mustViews(t, `e(a, a). e(a, b). e(b, b).`,
		`loop(X) :- e(X, X).`)
	if len(v.Rows("loop")) != 2 {
		t.Fatalf("loop: %v", v.Rows("loop"))
	}
	apply(t, v, `-e(a, a).`)
	if v.Has("loop", "a") || !v.Has("loop", "b") {
		t.Fatalf("loop after: %v", v.Rows("loop"))
	}
}

func TestConstantsInRules(t *testing.T) {
	v := mustViews(t, `link(hub, a). link(hub, b). link(x, y).`,
		`fromhub(Y) :- link(hub, Y).`)
	if len(v.Rows("fromhub")) != 2 {
		t.Fatalf("fromhub: %v", v.Rows("fromhub"))
	}
	ch := apply(t, v, `+link(x, z).`)
	if !ch.Empty() {
		t.Fatalf("irrelevant insert must not change the view: %v", ch)
	}
	apply(t, v, `+link(hub, c).`)
	if !v.Has("fromhub", "c") {
		t.Fatal("fromhub(c)")
	}
}

func TestAggregateEmptyGroupAppearsAndDisappears(t *testing.T) {
	v := mustViews(t, "", `
		m(S, M) :- groupby(u(S, C), [S], M = max(C)).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if len(v.Rows("m")) != 0 {
		t.Fatal("no groups yet")
	}
	apply(t, v, `+u(a, 5).`)
	if !v.Has("m", "a", 5) {
		t.Fatalf("m: %v", v.Rows("m"))
	}
	apply(t, v, `-u(a, 5).`)
	if len(v.Rows("m")) != 0 {
		t.Fatalf("group must vanish: %v", v.Rows("m"))
	}
}

func TestAvgAndVarianceMaintained(t *testing.T) {
	v := mustViews(t, `s(g, 2). s(g, 4). s(g, 6).`, `
		a(G, M) :- groupby(s(G, X), [G], M = avg(X)).
		vr(G, M) :- groupby(s(G, X), [G], M = variance(X)).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if !v.Has("a", "g", 4.0) {
		t.Fatalf("avg: %v", v.Rows("a"))
	}
	apply(t, v, `-s(g, 6).`)
	if !v.Has("a", "g", 3.0) || !v.Has("vr", "g", 1.0) {
		t.Fatalf("after delete: avg=%v var=%v", v.Rows("a"), v.Rows("vr"))
	}
}

func TestGroupByEmptyGroupingVars(t *testing.T) {
	// Global aggregate: groupby with [] yields a single tuple.
	v := mustViews(t, `sale(1, 10). sale(2, 30).`, `
		total(N) :- groupby(sale(I, P), [], N = sum(P)).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if !v.Has("total", 40) {
		t.Fatalf("total: %v", v.Rows("total"))
	}
	apply(t, v, `+sale(3, 5).`)
	if !v.Has("total", 45) || v.Has("total", 40) {
		t.Fatalf("total after: %v", v.Rows("total"))
	}
	apply(t, v, `-sale(1, 10). -sale(2, 30). -sale(3, 5).`)
	if len(v.Rows("total")) != 0 {
		t.Fatalf("empty total: %v", v.Rows("total"))
	}
}

func TestNegationRequiresBoundVars(t *testing.T) {
	db := ivm.NewDatabase()
	_, err := db.Materialize(`
		spend(C, N) :- groupby(order(I, C, A), [C], N = sum(A)).
		quiet(C)    :- customer(C), !spend(C, N2).
	`)
	if err == nil {
		t.Fatal("unsafe negation must be rejected")
	}
}

func TestNegatedAggregateViewSafe(t *testing.T) {
	// Safe version: check absence of a specific aggregate tuple.
	v := mustViews(t, `order(1, acme, 10). customer(acme). customer(zen).`, `
		spend(C, N)  :- groupby(order(I, C, A), [C], N = sum(A)).
		nospend(C)   :- customer(C), !spend(C, 10).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if v.Has("nospend", "acme") || !v.Has("nospend", "zen") {
		t.Fatalf("nospend: %v", v.Rows("nospend"))
	}
	apply(t, v, `+order(2, acme, 5).`) // spend(acme) becomes 15 ≠ 10
	if !v.Has("nospend", "acme") {
		t.Fatalf("nospend after: %v", v.Rows("nospend"))
	}
}

func TestDuplicateBaseFactsUnderDuplicateSemantics(t *testing.T) {
	v := mustViews(t, `p(a) * 3.`, `v(X) :- p(X).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	if v.Count("v", "a") != 3 {
		t.Fatalf("v(a): %d", v.Count("v", "a"))
	}
	apply(t, v, `-p(a).`)
	if v.Count("v", "a") != 2 {
		t.Fatalf("v(a) after one delete: %d", v.Count("v", "a"))
	}
	// Deleting more copies than stored errors.
	if _, err := v.ApplyScript(`-p(a) * 5.`); err == nil {
		t.Fatal("over-deletion must error")
	}
}

func TestDuplicateBaseFactsUnderSetSemantics(t *testing.T) {
	v := mustViews(t, `p(a) * 3.`, `v(X) :- p(X).`,
		ivm.WithSemantics(ivm.SetSemantics))
	// Multiplicities collapse: one deletion removes the tuple.
	apply(t, v, `-p(a).`)
	if v.Has("v", "a") {
		t.Fatalf("v: %v", v.Rows("v"))
	}
}

func TestDRedConditionsAndArithmetic(t *testing.T) {
	v := mustViews(t, `edge(a, b, 2). edge(b, c, 3). edge(a, c, 9).`, `
		path(X, Y, C)    :- edge(X, Y, C).
		path(X, Y, C1+C2) :- path(X, Z, C1), edge(Z, Y, C2), C1 + C2 < 100.
	`, ivm.WithStrategy(ivm.DRed))
	if !v.Has("path", "a", "c", 5) || !v.Has("path", "a", "c", 9) {
		t.Fatalf("path: %v", v.Rows("path"))
	}
	apply(t, v, `-edge(a, b, 2).`)
	if v.Has("path", "a", "c", 5) || !v.Has("path", "a", "c", 9) {
		t.Fatalf("path after: %v", v.Rows("path"))
	}
}

func TestHiddenPredsDoNotLeakInSQLChangeSets(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b');
		CREATE VIEW deg(s, n) AS SELECT s, COUNT(*) AS n FROM link GROUP BY s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.Apply(ivm.NewUpdate().Insert("link", "a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range ch.Preds() {
		if pred != "deg" {
			t.Fatalf("internal predicate leaked: %v", ch.Preds())
		}
	}
}

func TestRecursiveCountingThroughAPI(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(a,c). link(b,d). link(c,d).`)
	v, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, ivm.WithStrategy(ivm.Counting), ivm.WithSemantics(ivm.DuplicateSemantics),
		ivm.WithRecursiveCounting(500))
	if err != nil {
		t.Fatal(err)
	}
	if v.Count("tc", "a", "d") != 2 {
		t.Fatalf("tc(a,d) = %d, want 2 (two paths)", v.Count("tc", "a", "d"))
	}
	if _, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if v.Count("tc", "a", "d") != 1 {
		t.Fatalf("tc(a,d) = %d after delete", v.Count("tc", "a", "d"))
	}
	// Closing a cycle diverges but leaves the views intact.
	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "d", "a")); err == nil {
		t.Fatal("cycle must diverge")
	}
	if v.Count("tc", "a", "d") != 1 {
		t.Fatal("failed update must not change the view")
	}
}

func TestArityMismatchesAreErrorsNotPanics(t *testing.T) {
	// Within one update.
	u := ivm.NewUpdate().Insert("p", 1).Insert("p", 1, 2)
	if u.Err() == nil {
		t.Fatal("mixed arities in an update must record an error")
	}
	v := mustViews(t, `p(a).`, `q(X) :- p(X).`)
	if _, err := v.Apply(u); err == nil {
		t.Fatal("Apply must surface the update construction error")
	}
	// Against the stored relation, for every strategy.
	for _, s := range []ivm.Strategy{ivm.Counting, ivm.DRed, ivm.Recompute} {
		v := mustViews(t, `p(a).`, `q(X) :- p(X).`, ivm.WithStrategy(s))
		bad := ivm.NewUpdate().Insert("p", 1, 2)
		if _, err := v.Apply(bad); err == nil {
			t.Fatalf("%v: wrong-arity delta must error", s)
		}
		// The engine stays usable.
		if _, err := v.Apply(ivm.NewUpdate().Insert("p", "b")); err != nil {
			t.Fatalf("%v: engine unusable after arity error: %v", s, err)
		}
	}
}

package ivm_test

// Exactly-once applies at the engine level: ApplyIdempotent must apply
// a key's update exactly once no matter how often it is retried —
// concurrently, after coalescing, or across a crash-recovery replay —
// because a duplicated ⊎ batch silently corrupts every downstream
// count.

import (
	"strings"
	"sync"
	"testing"

	"ivm"
)

// idemViews builds views under duplicate semantics, where a
// double-applied insert is visible as count 2 — set semantics would
// absorb the duplicate and hide the bug these tests look for.
func idemViews(t *testing.T, opts ...ivm.Option) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(storeTestFacts)
	opts = append([]ivm.Option{ivm.WithSemantics(ivm.DuplicateSemantics)}, opts...)
	v, err := db.Materialize(storeTestProgram, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestApplyIdempotentDedups(t *testing.T) {
	v := idemViews(t)
	cs1, deduped, err := v.ApplyScriptIdempotent("key-1", "+link(c,f).")
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("first apply must not be deduped")
	}
	// Retry with the same key: the original ChangeSet comes back and the
	// delta is not applied again.
	cs2, deduped, err := v.ApplyScriptIdempotent("key-1", "+link(c,f).")
	if err != nil {
		t.Fatal(err)
	}
	if !deduped {
		t.Fatal("retry of a committed key must dedup")
	}
	if cs2 != cs1 {
		t.Fatalf("dedup must return the original ChangeSet: got version %d, want %d", cs2.Version(), cs1.Version())
	}
	if got := v.Count("link", "c", "f"); got != 1 {
		t.Fatalf("link(c,f) count = %d after retry, want 1 (double apply!)", got)
	}
	m := v.Metrics()
	if got := m.Counter("sched_idem_dedup_total"); got != 1 {
		t.Fatalf("sched_idem_dedup_total = %d, want 1", got)
	}
	if got := m.Gauge("idem_window_entries"); got != 1 {
		t.Fatalf("idem_window_entries = %d, want 1", got)
	}
	// A different key applies normally.
	if _, deduped, err = v.ApplyScriptIdempotent("key-2", "+link(c,f)."); err != nil {
		t.Fatal(err)
	} else if deduped {
		t.Fatal("a fresh key must not dedup")
	}
	if got := v.Count("link", "c", "f"); got != 2 {
		t.Fatalf("link(c,f) count = %d, want 2", got)
	}
}

func TestApplyIdempotentEmptyKeyIsPlainApply(t *testing.T) {
	v := idemViews(t)
	for i := 0; i < 2; i++ {
		_, deduped, err := v.ApplyScriptIdempotent("", "+link(x,y).")
		if err != nil {
			t.Fatal(err)
		}
		if deduped {
			t.Fatal("empty key must never dedup")
		}
	}
	if got := v.Count("link", "x", "y"); got != 2 {
		t.Fatalf("count = %d, want 2 (empty key must not dedup)", got)
	}
}

func TestApplyIdempotentKeyTooLong(t *testing.T) {
	v := idemViews(t)
	_, _, err := v.ApplyScriptIdempotent(strings.Repeat("k", 257), "+link(x,y).")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("over-long key: err = %v, want length error", err)
	}
	if v.Has("link", "x", "y") {
		t.Fatal("rejected apply must not touch state")
	}
}

func TestApplyIdempotentErrorNotCached(t *testing.T) {
	v := idemViews(t)
	// Deleting an absent tuple fails validation; the key must not be
	// recorded, so a corrected retry under the same key applies.
	if _, _, err := v.ApplyScriptIdempotent("k", "-link(zz,zz)."); err == nil {
		t.Fatal("deleting an absent tuple should error")
	}
	cs, deduped, err := v.ApplyScriptIdempotent("k", "+link(zz,zz).")
	if err != nil {
		t.Fatal(err)
	}
	if deduped || cs == nil {
		t.Fatal("a key whose apply failed must not be remembered")
	}
	if !v.Has("link", "zz", "zz") {
		t.Fatal("corrected retry did not apply")
	}
}

func TestApplyIdempotentConcurrentSameKey(t *testing.T) {
	v := idemViews(t)
	const callers = 32
	var wg sync.WaitGroup
	versions := make([]uint64, callers)
	dedups := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, deduped, err := v.ApplyScriptIdempotent("race-key", "+link(q,r).")
			if err != nil {
				t.Error(err)
				return
			}
			versions[i] = cs.Version()
			dedups[i] = deduped
		}(i)
	}
	wg.Wait()
	if got := v.Count("link", "q", "r"); got != 1 {
		t.Fatalf("link(q,r) count = %d after %d concurrent same-key applies, want 1", got, callers)
	}
	nondeduped := 0
	for i := 1; i < callers; i++ {
		if versions[i] != versions[0] {
			t.Fatalf("caller %d saw version %d, caller 0 saw %d — all must share the one committed version", i, versions[i], versions[0])
		}
	}
	for _, d := range dedups {
		if !d {
			nondeduped++
		}
	}
	if nondeduped != 1 {
		t.Fatalf("%d callers applied fresh, want exactly 1", nondeduped)
	}
}

func TestIdempotencyWindowEviction(t *testing.T) {
	v := idemViews(t, ivm.WithIdempotencyWindow(2))
	scripts := []string{"+e(1).", "+e(2).", "+e(3)."}
	for i, s := range scripts {
		if _, _, err := v.ApplyScriptIdempotent(string(rune('a'+i)), s); err != nil {
			t.Fatal(err)
		}
	}
	// "a" was evicted by "c"; its retry re-applies (documented window
	// semantics: past eviction, exactly-once is no longer guaranteed).
	_, deduped, err := v.ApplyScriptIdempotent("a", "+e(1).")
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("retry of an evicted key must re-apply, not dedup")
	}
	if got := v.Count("e", int64(1)); got != 2 {
		t.Fatalf("e(1) count = %d, want 2 after post-eviction retry", got)
	}
	// "c" is still resident and still dedups.
	if _, deduped, err = v.ApplyScriptIdempotent("c", "+e(3)."); err != nil || !deduped {
		t.Fatalf("resident key: deduped=%v err=%v, want dedup", deduped, err)
	}
}

// A crash between commit and ack: the WAL holds the keyed record, the
// client never saw the response. After recovery the retry must dedup
// against the replayed window instead of double-applying.
func TestIdempotencyWindowSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, storeInit(t))
	if err != nil {
		t.Fatal(err)
	}
	cs1, _, err := v.ApplyScriptIdempotent("retry-me", "+link(c,f). -link(a,d).")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.ApplyScriptIdempotent("other", "+link(f,g)."); err != nil {
		t.Fatal(err)
	}
	// Crash: close the WAL without checkpointing, so recovery must
	// replay the keyed records.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}

	v2, info, err := ivm.OpenStore(dir, noInit(t))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Shutdown()
	if info.Replayed != 2 {
		t.Fatalf("Replayed = %d, want 2", info.Replayed)
	}
	cs2, deduped, err := v2.ApplyScriptIdempotent("retry-me", "+link(c,f). -link(a,d).")
	if err != nil {
		t.Fatal(err)
	}
	if !deduped {
		t.Fatal("retry after recovery must dedup from the replayed window")
	}
	// Version ids restart at rematerialization, so the dedup answer is
	// stamped with the replayed version, not the pre-crash one.
	if cs2.Version() == 0 {
		t.Fatal("dedup answer must carry the replayed committed version")
	}
	_ = cs1
	if got := v2.Count("link", "c", "f"); got != 1 {
		t.Fatalf("link(c,f) count = %d after post-recovery retry, want 1 (double apply!)", got)
	}
	if v2.Has("link", "a", "d") {
		t.Fatal("-link(a,d) re-applied or lost across recovery")
	}
}

package ivm_test

// Tests for the observability layer: the metrics registry surfaced via
// Views.Metrics(), agreement between metric counters and the legacy
// per-batch Stats, tracer hooks, and the race-safety of the stats
// accessors (run with -race).

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ivm"
)

func TestCountingMetricsAgreeWithStats(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithStrategy(ivm.Counting))
	if err != nil {
		t.Fatal(err)
	}

	var rules, tuples int
	for i := 0; i < 5; i++ {
		if _, err := v.Apply(ivm.NewUpdate().Insert("link", "c", fmt.Sprintf("n%d", i))); err != nil {
			t.Fatal(err)
		}
		st, ok := v.CountingStats()
		if !ok {
			t.Fatal("counting stats expected")
		}
		rules += st.DeltaRulesEvaluated
		tuples += st.DeltaTuples
	}

	m := v.Metrics()
	if got := m.Counter("counting_applies_total"); got != 5 {
		t.Fatalf("counting_applies_total = %d, want 5", got)
	}
	if got := m.Counter("counting_delta_rules_total"); got != int64(rules) {
		t.Fatalf("counting_delta_rules_total = %d, Stats sum = %d", got, rules)
	}
	if got := m.Counter("counting_delta_tuples_total"); got != int64(tuples) {
		t.Fatalf("counting_delta_tuples_total = %d, Stats sum = %d", got, tuples)
	}
	if hs, ok := m.Histograms["counting_apply_seconds"]; !ok || hs.Count != 5 {
		t.Fatalf("counting_apply_seconds: %+v ok=%v", hs, ok)
	}
	if m.Counter("eval_join_probes_total") == 0 {
		t.Fatal("join probes must be recorded")
	}
	// The probe/scan split: Δlink pinned first is a scan, the keyed
	// second link position probes — both series must be populated.
	if m.Counter("eval_join_scans_total") == 0 {
		t.Fatal("join scans must be recorded")
	}
	// The planner is on by default: its cache series must be live and
	// the plan gauge nonzero after maintenance.
	if m.Counter("planner_misses_total") == 0 {
		t.Fatal("planner misses must be recorded (first plan per key)")
	}
	if m.Counter("planner_hits_total") == 0 {
		t.Fatal("planner hits must be recorded (repeated same-shape applies)")
	}
	if m.Gauge("planner_plans") == 0 {
		t.Fatal("planner_plans gauge must reflect the cached plans")
	}
	if m.Gauge("relation_indexes_built") < 0 {
		t.Fatal("relation_indexes_built gauge must be non-negative")
	}

	// Text exposition includes the counting series.
	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "counting_applies_total 5\n") {
		t.Fatalf("exposition missing counter:\n%s", b.String())
	}
}

func TestDRedMetricsAgreeWithStats(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). link(a,c).`)
	v, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, ivm.WithStrategy(ivm.DRed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b")); err != nil {
		t.Fatal(err)
	}
	st, ok := v.DRedStats()
	if !ok {
		t.Fatal("dred stats expected")
	}
	m := v.Metrics()
	if got := m.Counter("dred_ops_total"); got != 1 {
		t.Fatalf("dred_ops_total = %d, want 1", got)
	}
	if got := m.Counter("dred_overestimated_total"); got != int64(st.Overestimated) {
		t.Fatalf("dred_overestimated_total = %d, Stats = %d", got, st.Overestimated)
	}
	if got := m.Counter("dred_rule_firings_total"); got != int64(st.RuleFirings) {
		t.Fatalf("dred_rule_firings_total = %d, Stats = %d", got, st.RuleFirings)
	}
	if got := m.Counter("dred_fixpoint_rounds_total"); got == 0 || got != int64(st.FixpointRounds) {
		t.Fatalf("dred_fixpoint_rounds_total = %d, Stats = %d", got, st.FixpointRounds)
	}
	if hs := m.Histograms["dred_apply_seconds"]; hs.Count != 1 {
		t.Fatalf("dred_apply_seconds count = %d", hs.Count)
	}
}

func TestTracerReceivesBatchLifecycle(t *testing.T) {
	var mu sync.Mutex
	var events []string
	tr := &ivm.FuncTracer{
		OnBatchStart: func(strategy string, deltaPreds int) {
			mu.Lock()
			events = append(events, "start:"+strategy)
			mu.Unlock()
		},
		OnStratumDone: func(stratum int, d time.Duration) {
			mu.Lock()
			events = append(events, fmt.Sprintf("stratum:%d", stratum))
			mu.Unlock()
		},
		OnRuleEvaluated: func(rule string, tuples int) {
			mu.Lock()
			events = append(events, "rule:"+rule)
			mu.Unlock()
		},
		OnBatchDone: func(d time.Duration, changedPreds int) {
			mu.Lock()
			events = append(events, "done")
			mu.Unlock()
		},
	}

	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithStrategy(ivm.Counting), ivm.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) < 3 {
		t.Fatalf("too few tracer events: %v", events)
	}
	if events[0] != "start:counting" {
		t.Fatalf("first event %q, want start:counting", events[0])
	}
	if events[len(events)-1] != "done" {
		t.Fatalf("last event %q, want done", events[len(events)-1])
	}
	var sawRule bool
	for _, e := range events {
		if e == "rule:hop" {
			sawRule = true
		}
	}
	if !sawRule {
		t.Fatalf("no rule:hop event in %v", events)
	}
}

// TestStatsAccessorsRaceDuringApply hammers Metrics() and the three
// *Stats() accessors while a writer applies batches. Run with -race:
// the accessors must read the engines' last-batch stats under the
// Views lock, never concurrently with an Apply writing them.
func TestStatsAccessorsRaceDuringApply(t *testing.T) {
	db := ivm.NewDatabase()
	for i := 0; i < 30; i++ {
		db.Insert("link", fmt.Sprintf("n%d", i%10), fmt.Sprintf("n%d", (i*3+1)%10))
	}
	v, err := db.Materialize(`
		hop(X,Y) :- link(X,Z), link(Z,Y).
		tri(X,Y) :- hop(X,Z), link(Z,Y).
	`, ivm.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	const readers = 6
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v.CountingStats()
				v.DRedStats()
				v.PFStats()
				m := v.Metrics()
				_ = m.Counter("counting_applies_total")
			}
		}()
	}

	for round := 0; round < 80; round++ {
		a, b := round%10, (round*7+3)%10
		if _, err := v.Apply(ivm.NewUpdate().Insert("link", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
		if _, err := v.Apply(ivm.NewUpdate().Delete("link", fmt.Sprintf("n%d", a), fmt.Sprintf("n%d", b))); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := v.Metrics().Counter("counting_applies_total"); got != 160 {
		t.Fatalf("counting_applies_total = %d, want 160", got)
	}
}

func TestSQLSnapshotRoundTripKeepsHiddenPreds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "views.gob")

	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b');
		CREATE VIEW deg(s, n) AS SELECT s, COUNT(*) AS n FROM link GROUP BY s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}

	v2, err := ivm.LoadViews(path)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v2.Apply(ivm.NewUpdate().Insert("link", "a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Empty() {
		t.Fatal("group-by view must change")
	}
	for _, pred := range ch.Preds() {
		if strings.HasPrefix(pred, "aux_") {
			t.Fatalf("internal predicate leaked after reload: %v", ch.Preds())
		}
	}
	if !v2.Has("deg", "a", int64(2)) {
		t.Fatalf("deg after reload: %v", v2.Rows("deg"))
	}
}

func TestApplyEmptyUpdate(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.Apply(ivm.NewUpdate())
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Empty() || len(ch.Preds()) != 0 {
		t.Fatalf("empty update must yield an empty change set: %v", ch.Preds())
	}
}

func TestHiddenOnlyChangesYieldEmptyChangeSet(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b'), ('a','c');
		CREATE VIEW deg(s, n) AS SELECT s, COUNT(*) AS n FROM link GROUP BY s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Another row for an existing group changes the aux per-group helper
	// predicates and the count; the visible change set must contain deg
	// only — never the aux predicates backing it.
	ch, err := v.Apply(ivm.NewUpdate().Insert("link", "a", "d"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range ch.Preds() {
		if pred != "deg" {
			t.Fatalf("unexpected predicate in change set: %v", ch.Preds())
		}
	}
}

func TestInvalidParallelismEnvIsAnError(t *testing.T) {
	t.Setenv("IVM_PARALLELISM", "4x")
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	if _, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`); err == nil {
		t.Fatal("malformed IVM_PARALLELISM must surface as an error")
	} else if !strings.Contains(err.Error(), "IVM_PARALLELISM") {
		t.Fatalf("error should name the variable: %v", err)
	}

	t.Setenv("IVM_PARALLELISM", "auto")
	if _, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`); err != nil {
		t.Fatalf("auto must be accepted: %v", err)
	}
}

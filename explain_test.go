package ivm_test

import (
	"testing"

	"ivm"
)

func TestExplainHop(t *testing.T) {
	v := mustViews(t, `link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`,
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	ds, err := v.Explain(`hop(a, c)`)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two derivations the paper counts: via b and via d.
	if len(ds) != 2 {
		t.Fatalf("derivations: %v", ds)
	}
	mids := map[string]bool{}
	for _, d := range ds {
		if len(d.Subgoals) != 2 || d.Subgoals[0].Pred != "link" {
			t.Fatalf("subgoals: %v", d.Subgoals)
		}
		mids[d.Subgoals[0].Tuple[1].Str()] = true
	}
	if !mids["b"] || !mids["d"] {
		t.Fatalf("intermediates: %v", mids)
	}
	// count(t) equals the number of derivations Explain enumerates.
	if int(v.Count("hop", "a", "c")) != len(ds) {
		t.Fatal("count must equal the number of derivations")
	}
	// Absent tuples have no derivations.
	ds, err = v.Explain(`hop(q, q)`)
	if err != nil || len(ds) != 0 {
		t.Fatalf("absent: %v %v", ds, err)
	}
}

func TestExplainNegationAndAggregate(t *testing.T) {
	v := mustViews(t, `link(a,b,10). link(b,c,20). link(a,d,5). link(d,c,25).`, `
		hop(S,D,C1+C2)      :- link(S,I,C1), link(I,D,C2).
		min_cost_hop(S,D,M) :- groupby(hop(S,D,C), [S,D], M = min(C)).
		best(S,D)           :- min_cost_hop(S,D,M), !expensive(S,D).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))

	// Arithmetic head: the slow unification path.
	ds, err := v.Explain(`hop(a, c, 30)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 { // 10+20 via b and 5+25 via d
		t.Fatalf("hop(a,c,30): %v", ds)
	}

	// Aggregate subgoal appears as a GROUPBY image tuple when explaining
	// the aggregate view itself.
	ds, err = v.Explain(`min_cost_hop(a, c, 30)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || len(ds[0].Subgoals) != 1 || !ds[0].Subgoals[0].Aggregate {
		t.Fatalf("min_cost_hop: %+v", ds)
	}
	if ds[0].Subgoals[0].Pred != "hop" || !ds[0].Subgoals[0].Tuple.Equal(ivm.T("a", "c", 30)) {
		t.Fatalf("aggregate image: %+v", ds[0].Subgoals[0])
	}

	// Negated subgoal appears as an absence.
	ds, err = v.Explain(`best(a, c)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("best: %v", ds)
	}
	var sawNeg bool
	for _, g := range ds[0].Subgoals {
		if g.Negated && g.Pred == "expensive" {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Fatalf("subgoals: %+v", ds[0].Subgoals)
	}
}

func TestExplainRecursive(t *testing.T) {
	v := mustViews(t, `link(a,b). link(b,c).`, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	ds, err := v.Explain(`tc(a, c)`)
	if err != nil {
		t.Fatal(err)
	}
	// One derivation via the recursive rule: tc(a,b), link(b,c).
	if len(ds) != 1 || ds[0].RuleIndex != 1 {
		t.Fatalf("tc(a,c): %v", ds)
	}
	// Drill into the subgoal.
	ds2, err := v.Explain(`tc(a, b)`)
	if err != nil || len(ds2) != 1 || ds2[0].RuleIndex != 0 {
		t.Fatalf("tc(a,b): %v %v", ds2, err)
	}
}

func TestExplainRejectsVariables(t *testing.T) {
	v := mustViews(t, `p(a).`, `q(X) :- p(X).`)
	if _, err := v.Explain(`q(X)`); err == nil {
		t.Fatal("non-ground goal must be rejected")
	}
}

package ivm_test

// Full-stack integration: one program layering joins, recursion,
// aggregation over the recursive view, and negation over the aggregate —
// the deepest stratification the paper's machinery supports — maintained
// through multi-predicate batches and cross-checked against recompute.

import (
	"math/rand"
	"testing"

	"ivm"
)

const fullStackProgram = `
	% Stratum 1: recursive reachability over two edge kinds.
	edge(X,Y)   :- road(X,Y).
	edge(X,Y)   :- rail(X,Y).
	reach(X,Y)  :- edge(X,Y).
	reach(X,Y)  :- reach(X,Z), edge(Z,Y).

	% Stratum above: aggregate over the recursive view.
	outdeg(X,N) :- groupby(reach(X,Y), [X], N = count(Y)).

	% Negation over the aggregate view: nodes that reach something but are
	% not hubs (outdegree >= 3).
	hub(X)      :- outdeg(X,N), N >= 3.
	minor(X)    :- outdeg(X,N), !hub(X).
`

func loadFullStack(t *testing.T, strategy ivm.Strategy, facts string) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(facts)
	v, err := db.Materialize(fullStackProgram, ivm.WithStrategy(strategy))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFullStackInitialState(t *testing.T) {
	facts := `road(a,b). road(b,c). rail(c,d). rail(a,e).`
	v := loadFullStack(t, ivm.Auto, facts)
	if v.Strategy() != ivm.DRed {
		t.Fatalf("strategy: %v", v.Strategy())
	}
	// a reaches b,c,d,e → outdeg 4 → hub.
	if !v.Has("outdeg", "a", 4) || !v.Has("hub", "a") || v.Has("minor", "a") {
		t.Fatalf("a: outdeg=%v hub=%v minor=%v", v.Rows("outdeg"), v.Rows("hub"), v.Rows("minor"))
	}
	// c reaches only d → minor.
	if !v.Has("outdeg", "c", 1) || !v.Has("minor", "c") {
		t.Fatalf("c: %v %v", v.Rows("outdeg"), v.Rows("minor"))
	}
}

func TestFullStackMaintenanceFlipsHubStatus(t *testing.T) {
	facts := `road(a,b). road(b,c). rail(c,d). rail(a,e).`
	v := loadFullStack(t, ivm.Auto, facts)

	// Breaking a→b drops a's reach to {e} → a stops being a hub and
	// becomes minor; the change flows recursion → aggregate → negation.
	ch, err := v.Apply(ivm.NewUpdate().Delete("road", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Has("hub", "a") || !v.Has("minor", "a") || !v.Has("outdeg", "a", 1) {
		t.Fatalf("after break: outdeg=%v hub=%v minor=%v", v.Rows("outdeg"), v.Rows("hub"), v.Rows("minor"))
	}
	if len(ch.Deleted("hub")) != 1 || len(ch.Inserted("minor")) != 1 {
		t.Fatalf("changes: %v", ch)
	}

	// Restoring via rail (the other edge kind, same batch as an unrelated
	// insert) flips it back.
	_, err = v.Apply(ivm.NewUpdate().Insert("rail", "a", "b").Insert("road", "e", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("hub", "a") || v.Has("minor", "a") {
		t.Fatalf("after repair: %v %v", v.Rows("hub"), v.Rows("minor"))
	}
	// e now reaches everything through a.
	if !v.Has("hub", "e") {
		t.Fatalf("e should be a hub: %v", v.Rows("outdeg"))
	}
}

// TestFullStackRandomizedAgainstRecompute drives random multi-predicate
// batches through the whole stack.
func TestFullStackRandomizedAgainstRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	facts := ""
	for i := 0; i < 10; i++ {
		facts += "road(" + nodeName(rng.Intn(6)) + "," + nodeName(rng.Intn(6)) + ").\n"
		facts += "rail(" + nodeName(rng.Intn(6)) + "," + nodeName(rng.Intn(6)) + ").\n"
	}
	dred := loadFullStack(t, ivm.DRed, facts)
	ref := loadFullStack(t, ivm.Recompute, facts)

	for round := 0; round < 12; round++ {
		u := ivm.NewUpdate()
		for _, pred := range []string{"road", "rail"} {
			rows := dred.Rows(pred)
			if len(rows) > 0 && rng.Intn(2) == 0 {
				u.InsertTuple(pred, rows[rng.Intn(len(rows))].Tuple, -1)
			}
			if rng.Intn(2) == 0 {
				a, b := rng.Intn(6), rng.Intn(6)
				tu := ivm.T(nodeName(a), nodeName(b))
				// Insert only genuinely new tuples; a tuple picked for both
				// deletion and insertion would cancel inside the Update.
				if !dred.Has(pred, nodeName(a), nodeName(b)) {
					u.InsertTuple(pred, tu, 1)
				}
			}
		}
		if u.Empty() || u.Err() != nil {
			continue
		}
		// A tuple may appear as both delete and insert (net zero) — fine.
		if _, err := dred.Apply(u); err != nil {
			t.Fatalf("round %d dred: %v\n%s", round, err, u)
		}
		if _, err := ref.Apply(u); err != nil {
			t.Fatalf("round %d ref: %v\n%s", round, err, u)
		}
		for _, pred := range []string{"edge", "reach", "outdeg", "hub", "minor"} {
			if !sameSet(asSet(dred.Rows(pred)), asSet(ref.Rows(pred))) {
				t.Fatalf("round %d: %s diverges\nupdate:\n%s\ndred: %v\nref:  %v",
					round, pred, u, dred.Rows(pred), ref.Rows(pred))
			}
		}
	}
}

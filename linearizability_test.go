package ivm_test

// Linearizability / snapshot-consistency property suite for the MVCC
// read path and the coalescing update scheduler. N writers race M
// snapshot readers under -race; afterwards every observed snapshot must
// be bit-identical (tuples AND derivation counts, for every stored
// predicate) to a sequential rematerialization of some prefix of the
// committed batch log — the prefix named by the snapshot's version.
// ChangeSet.Version ties each Apply to the version that published it,
// so "state as of version V" is exactly the initial base plus every
// update whose change set was stamped with a version <= V.
//
// Repeatable reads are checked too: a Snapshot handle re-read after all
// writers finish must return exactly what it returned at pin time.

import (
	"fmt"
	"sync"
	"testing"

	"ivm"
)

// linOp is one committed base-table operation, replayable onto a fresh
// database.
type linOp struct {
	pred  string
	tuple ivm.Tuple
	count int64 // +1 insert, -1 delete
}

// linTrialConfig is one program/strategy under test.
type linTrialConfig struct {
	name    string
	program string
	opts    []ivm.Option
	// initial facts, loaded into both the live database and every
	// replay database.
	facts string
}

func linConfigs() []linTrialConfig {
	return []linTrialConfig{
		{
			name: "counting-set",
			program: `
				hop(X,Y) :- link(X,Z), link(Z,Y).
				fan(X)   :- link(X,Y), link(X,Z), Y != Z.
			`,
			facts: `link(a,b). link(b,c). link(c,a).`,
		},
		{
			name:    "dred-recursive",
			program: `tc(X,Y) :- link(X,Y). tc(X,Y) :- tc(X,Z), link(Z,Y).`,
			facts:   `link(a,b). link(b,c).`,
		},
		{
			name:    "counting-duplicate",
			program: `hop(X,Y) :- link(X,Z), link(Z,Y).`,
			opts:    []ivm.Option{ivm.WithSemantics(ivm.DuplicateSemantics)},
			facts:   `link(a,b). link(b,c).`,
		},
	}
}

// linObservation is one pinned snapshot plus what it showed at pin time.
type linObservation struct {
	snap *ivm.Snapshot
	ver  uint64
	rows map[string][]ivm.Row
}

func snapshotRows(s *ivm.Snapshot) map[string][]ivm.Row {
	out := make(map[string][]ivm.Row)
	for _, pred := range s.Preds() {
		out[pred] = s.Rows(pred)
	}
	return out
}

func rowsEqual(a, b []ivm.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Count != b[i].Count || a[i].Tuple.Compare(b[i].Tuple) != 0 {
			return false
		}
	}
	return true
}

// replayPrefix rematerializes the trial's program over the initial facts
// plus every committed op with version <= ver, sequentially.
func replayPrefix(t *testing.T, cfg linTrialConfig, log []struct {
	ver uint64
	ops []linOp
}, ver uint64) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(cfg.facts)
	// Net counts: commutative inserts/deletes within and across batches
	// collapse to their sum, exactly like ⊎-merged maintenance.
	type key struct {
		pred string
		k    string
	}
	net := make(map[key]struct {
		tuple ivm.Tuple
		pred  string
		count int64
	})
	for _, entry := range log {
		if entry.ver > ver {
			continue
		}
		for _, op := range entry.ops {
			k := key{op.pred, op.tuple.Key()}
			cur := net[k]
			cur.tuple, cur.pred = op.tuple, op.pred
			cur.count += op.count
			net[k] = cur
		}
	}
	for _, e := range net {
		if e.count != 0 {
			db.InsertTuple(e.pred, e.tuple, e.count)
		}
	}
	v, err := db.Materialize(cfg.program, cfg.opts...)
	if err != nil {
		t.Fatalf("replay materialize: %v", err)
	}
	return v
}

func runLinTrial(t *testing.T, cfg linTrialConfig, trial int) {
	t.Helper()
	const (
		writers      = 3
		opsPerWriter = 8
		readers      = 3
		pinsEach     = 4
	)
	db := ivm.NewDatabase()
	db.MustLoad(cfg.facts)
	v, err := db.Materialize(cfg.program, cfg.opts...)
	if err != nil {
		t.Fatal(err)
	}

	var (
		logMu sync.Mutex
		log   []struct {
			ver uint64
			ops []linOp
		}
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)

	// Writers own disjoint keyspaces (writer w only touches sources
	// named w<w>t<i>), so every delete refers to a tuple that writer
	// committed earlier and batches always validate.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				src := fmt.Sprintf("w%dt%d_%d", w, trial%7, i)
				ins := []linOp{{pred: "link", tuple: ivm.T(src, "hub"), count: 1}}
				cs, err := v.Apply(ivm.NewUpdate().Insert("link", src, "hub"))
				if err != nil {
					errCh <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
				logMu.Lock()
				log = append(log, struct {
					ver uint64
					ops []linOp
				}{cs.Version(), ins})
				logMu.Unlock()
				// Delete every third own insert again, exercising the
				// deletion path (and coalesced insert+delete merging).
				if i%3 == 2 {
					del := []linOp{{pred: "link", tuple: ivm.T(src, "hub"), count: -1}}
					cs, err := v.Apply(ivm.NewUpdate().Delete("link", src, "hub"))
					if err != nil {
						errCh <- fmt.Errorf("writer %d delete %d: %w", w, i, err)
						return
					}
					logMu.Lock()
					log = append(log, struct {
						ver uint64
						ops []linOp
					}{cs.Version(), del})
					logMu.Unlock()
				}
			}
		}(w)
	}

	obsCh := make(chan linObservation, readers*pinsEach)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for p := 0; p < pinsEach; p++ {
				s := v.Snapshot()
				ver := s.Version()
				rows := snapshotRows(s)
				// The handle must be repeatable immediately, even while
				// writers publish newer versions underneath it.
				if s.Version() != ver {
					errCh <- fmt.Errorf("reader %d: snapshot version moved %d -> %d", r, ver, s.Version())
					return
				}
				obsCh <- linObservation{snap: s, ver: ver, rows: rows}
				// A direct read may see a newer version but never an
				// older one than a snapshot pinned before it.
				if cur := v.Snapshot().Version(); cur < ver {
					errCh <- fmt.Errorf("reader %d: version regressed %d -> %d", r, ver, cur)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(errCh)
	close(obsCh)
	for err := range errCh {
		t.Fatal(err)
	}

	finalVer := v.Snapshot().Version()
	for obs := range obsCh {
		// Repeatable read: the handle still returns exactly what it
		// returned at pin time, although up to finalVer-obs.ver newer
		// versions have been published since.
		for pred, rows := range obs.rows {
			if again := obs.snap.Rows(pred); !rowsEqual(rows, again) {
				t.Fatalf("%s trial %d: snapshot v%d changed mid-use for %s (final version %d)",
					cfg.name, trial, obs.ver, pred, finalVer)
			}
		}
		// Consistency: the snapshot equals the sequential
		// rematerialization of the committed prefix it names.
		ref := replayPrefix(t, cfg, log, obs.ver)
		for pred, rows := range obs.rows {
			if want := ref.Rows(pred); !rowsEqual(rows, want) {
				t.Fatalf("%s trial %d: snapshot v%d diverges from sequential prefix for %s:\n  snap: %v\n  want: %v",
					cfg.name, trial, obs.ver, pred, rows, want)
			}
		}
		// And the reverse direction: the replay must not contain preds
		// the snapshot misses (new preds appear only via base inserts,
		// which the version does include).
		for _, pred := range ref.Snapshot().Preds() {
			if _, ok := obs.rows[pred]; !ok {
				if len(ref.Rows(pred)) > 0 {
					t.Fatalf("%s trial %d: snapshot v%d is missing predicate %s", cfg.name, trial, obs.ver, pred)
				}
			}
		}
	}
}

// TestSnapshotLinearizability is the headline property test: >100 trials
// across three program/strategy configurations, each racing writers and
// snapshot readers, each observed snapshot proven equal to a sequential
// prefix of the committed batch log.
func TestSnapshotLinearizability(t *testing.T) {
	trials := 35
	if testing.Short() {
		trials = 5
	}
	for _, cfg := range linConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			for trial := 0; trial < trials; trial++ {
				runLinTrial(t, cfg, trial)
			}
		})
	}
}

// Command ivmcrash runs the storage fault-injection matrix and prints a
// report: each case simulates a crash (torn append, bit flip, lost
// rename, checkpoint-vs-truncate window), recovers, and compares the
// recovered views tuple-and-count against a full recomputation. Exits
// nonzero if any case fails, so CI can gate on it.
package main

import (
	"fmt"
	"os"

	"ivm/internal/storage/crashtest"
)

func main() {
	results := crashtest.Run()
	failed := 0
	fmt.Println("ivm crash-recovery matrix")
	fmt.Println("=========================")
	for _, r := range results {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s  %-28s %s\n", status, r.Name, r.Fault)
		fmt.Printf("      recovery: %s\n", r.Recovery)
		if r.Detail != "" {
			fmt.Printf("      detail:   %s\n", r.Detail)
		}
	}
	fmt.Printf("\n%d/%d cases recovered to states identical to full recomputation\n",
		len(results)-failed, len(results))
	if failed > 0 {
		os.Exit(1)
	}
}

package main

// Baseline regression guard behind `ivmbench -readers ... -baseline`:
// compares a fresh readers report against a committed baseline JSON
// (BENCH_readers.json) and fails loudly when the snapshot-path reader
// p99 regresses beyond the tolerance multiplier or the scheduler's
// coalesce ratio collapses. The tolerance is deliberately loose (~3x):
// CI machines are noisy, and the guard exists to catch structural
// regressions (a lock reappearing on the read path, coalescing turned
// off), not single-digit-percent drift.

import (
	"encoding/json"
	"fmt"
	"os"
)

func compareReadersBaseline(rep *readersReport, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base readersReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if tolerance <= 1 {
		return fmt.Errorf("tolerance must be > 1, got %g", tolerance)
	}

	fmt.Printf("\nbaseline comparison against %s (tolerance %.1fx):\n", baselinePath, tolerance)
	var failures []string

	p99Limit := int64(float64(base.Snapshot.P99Nanos) * tolerance)
	fmt.Printf("  snapshot reader p99: current %dns vs baseline %dns (limit %dns)\n",
		rep.Snapshot.P99Nanos, base.Snapshot.P99Nanos, p99Limit)
	if base.Snapshot.P99Nanos > 0 && rep.Snapshot.P99Nanos > p99Limit {
		failures = append(failures, fmt.Sprintf(
			"snapshot reader p99 regressed: %dns > %.1fx baseline %dns",
			rep.Snapshot.P99Nanos, tolerance, base.Snapshot.P99Nanos))
	}

	ratioFloor := base.CoalesceRatio / tolerance
	fmt.Printf("  coalesce ratio: current %.2f vs baseline %.2f (floor %.2f)\n",
		rep.CoalesceRatio, base.CoalesceRatio, ratioFloor)
	// A ratio of 1.0 means no coalescing happened; only flag a collapse
	// when the baseline actually showed coalescing headroom.
	if base.CoalesceRatio > 1 && rep.CoalesceRatio < ratioFloor {
		failures = append(failures, fmt.Sprintf(
			"coalesce ratio collapsed: %.2f < baseline %.2f / %.1f",
			rep.CoalesceRatio, base.CoalesceRatio, tolerance))
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), baselinePath)
	}
	fmt.Println("  within tolerance")
	return nil
}

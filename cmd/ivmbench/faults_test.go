package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Smoke the fault-injection benchmark end to end against an in-process
// server: real faults must fire, real retries must absorb them, and the
// exactly-once check inside writeFaultsReport must hold.
func TestWriteFaultsReportSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection smoke skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_faults.json")
	if err := writeFaultsReport(path, "self", "smoke", 0.25); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep faultsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Target != "self" || rep.Acked != int64(rep.Appliers*rep.PerApplier) {
		t.Fatalf("thin report: %+v", rep)
	}
	if rep.ProxyFaulted == 0 {
		t.Fatalf("no faults injected at fraction %v: %+v", rep.FaultFraction, rep)
	}
	if rep.ClientRetries == 0 {
		t.Fatalf("no client retries under %d faults: %+v", rep.ProxyFaulted, rep)
	}
	if rep.DoubleApplies != 0 {
		t.Fatalf("%d double applies: %+v", rep.DoubleApplies, rep)
	}
}

func TestWriteFaultsReportRejectsBadFraction(t *testing.T) {
	for _, f := range []float64{0, -0.1, 1.5} {
		if err := writeFaultsReport("unused.json", "self", "smoke", f); err == nil {
			t.Fatalf("fraction %v must be rejected", f)
		}
	}
}

func TestStripScheme(t *testing.T) {
	for in, want := range map[string]string{
		"http://127.0.0.1:7199":  "127.0.0.1:7199",
		"https://127.0.0.1:7199": "127.0.0.1:7199",
		"127.0.0.1:7199":         "127.0.0.1:7199",
	} {
		if got := stripScheme(in); got != want {
			t.Fatalf("stripScheme(%q) = %q, want %q", in, got, want)
		}
	}
}

// An unreachable target exhausts retries and errors instead of hanging.
func TestRunFaultsBenchUnreachable(t *testing.T) {
	if _, err := runFaultsBench("127.0.0.1:1", false, 1, 1, 1, 1, time.Second); err == nil {
		t.Fatal("unreachable server must error")
	}
}

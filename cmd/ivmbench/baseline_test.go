package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep *readersReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReadersBaseline(t *testing.T) {
	base := &readersReport{
		Snapshot:      readerLatencies{P99Nanos: 1_000_000},
		CoalesceRatio: 2.0,
	}
	path := writeBaseline(t, base)

	ok := &readersReport{Snapshot: readerLatencies{P99Nanos: 2_500_000}, CoalesceRatio: 1.0}
	if err := compareReadersBaseline(ok, path, 3.0); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}

	slow := &readersReport{Snapshot: readerLatencies{P99Nanos: 3_100_000}, CoalesceRatio: 2.0}
	err := compareReadersBaseline(slow, path, 3.0)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("p99 regression not flagged: %v", err)
	}

	collapsed := &readersReport{Snapshot: readerLatencies{P99Nanos: 1_000_000}, CoalesceRatio: 0.5}
	if err := compareReadersBaseline(collapsed, path, 3.0); err == nil {
		t.Fatal("coalesce-ratio collapse not flagged")
	}

	if err := compareReadersBaseline(ok, path, 1.0); err == nil {
		t.Fatal("tolerance <= 1 must be rejected")
	}
	if err := compareReadersBaseline(ok, filepath.Join(t.TempDir(), "missing.json"), 3.0); err == nil {
		t.Fatal("missing baseline must be an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := compareReadersBaseline(ok, bad, 3.0); err == nil {
		t.Fatal("unparseable baseline must be an error")
	}
}

// A baseline that never coalesced (ratio 1.0) must not flag runs that
// also sit near 1.0 — there was no headroom to lose.
func TestCompareReadersBaselineNoCoalesceHeadroom(t *testing.T) {
	base := &readersReport{Snapshot: readerLatencies{P99Nanos: 1_000_000}, CoalesceRatio: 1.0}
	path := writeBaseline(t, base)
	rep := &readersReport{Snapshot: readerLatencies{P99Nanos: 1_000_000}, CoalesceRatio: 0.0}
	if err := compareReadersBaseline(rep, path, 3.0); err != nil {
		t.Fatalf("no-headroom baseline flagged a collapse: %v", err)
	}
}

func TestComparePlannerBaseline(t *testing.T) {
	base := &plannerReport{
		OnNanosPerApply:  20_000,
		OffNanosPerApply: 600_000,
		Speedup:          30.0,
		HitRate:          0.999,
	}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "planner.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ok := &plannerReport{OnNanosPerApply: 30_000, OffNanosPerApply: 450_000, Speedup: 15.0, HitRate: 0.995}
	if err := comparePlannerBaseline(ok, path, 3.0); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}

	shrunk := &plannerReport{OnNanosPerApply: 20_000, OffNanosPerApply: 100_000, Speedup: 5.0, HitRate: 0.999}
	err = comparePlannerBaseline(shrunk, path, 3.0)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("speedup collapse not flagged: %v", err)
	}

	// The speedup floor clamps at 8x: a 9x run against a 30x baseline is
	// runner noise, not a structural regression.
	noisy := &plannerReport{OnNanosPerApply: 20_000, OffNanosPerApply: 180_000, Speedup: 9.0, HitRate: 0.999}
	if err := comparePlannerBaseline(noisy, path, 3.0); err != nil {
		t.Fatalf("clamped floor flagged a noisy-but-healthy run: %v", err)
	}

	slow := &plannerReport{OnNanosPerApply: 70_000, OffNanosPerApply: 2_100_000, Speedup: 30.0, HitRate: 0.999}
	if err := comparePlannerBaseline(slow, path, 3.0); err == nil {
		t.Fatal("planner-on latency regression not flagged")
	}

	if err := comparePlannerBaseline(ok, path, 1.0); err == nil {
		t.Fatal("tolerance <= 1 must be rejected")
	}
	if err := comparePlannerBaseline(ok, filepath.Join(t.TempDir(), "missing.json"), 3.0); err == nil {
		t.Fatal("missing baseline must be an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if err := comparePlannerBaseline(ok, bad, 3.0); err == nil {
		t.Fatal("unparseable baseline must be an error")
	}
}

func TestPctNanos(t *testing.T) {
	if got := pctNanos(nil, 0.99); got != 0 {
		t.Fatalf("pctNanos(nil) = %d", got)
	}
	xs := []int64{5, 1, 3, 2, 4}
	if got := pctNanos(xs, 0.5); got != 3 {
		t.Fatalf("p50 of 1..5 = %d, want 3", got)
	}
	if got := pctNanos(xs, 1.0); got != 5 {
		t.Fatalf("p100 of 1..5 = %d, want 5", got)
	}
}

// Command ivmbench regenerates every experiment table of the
// reproduction (DESIGN.md E1–E14; E11 lives in the property tests).
//
// Usage:
//
//	ivmbench [-scale smoke|default|large] [-exp E6[,E8,...]]
//
// Each table names the paper claim it checks; the shapes (who wins, by
// roughly what factor, where crossovers fall) are the reproduction
// target, not absolute numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ivm/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: smoke, default, or large")
	expFlag := flag.String("exp", "", "comma-separated experiment ids to run (default: all)")
	metricsPath := flag.String("metrics", "", `write a metrics exposition for the run to this file ("-" for stdout)`)
	readersPath := flag.String("readers", "", "run the snapshot-reader latency benchmark and write its JSON report to this path (e.g. BENCH_readers.json), then exit")
	baselinePath := flag.String("baseline", "", "with -readers: compare the fresh report against this baseline JSON and exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 3.0, "with -baseline: allowed regression multiplier (p99 may grow to tolerance x baseline; coalesce ratio may shrink to baseline / tolerance)")
	serverTarget := flag.String("server", "", `run the served-load benchmark against an ivmd base URL, or "self" to boot an in-process server, then exit`)
	serverOut := flag.String("server-out", "BENCH_server.json", "with -server: write the served-load JSON report to this path")
	plannerPath := flag.String("planner", "", "run the join-planner benchmark and write its JSON report to this path (e.g. BENCH_planner.json), then exit")
	plannerBaseline := flag.String("planner-baseline", "", "with -planner: compare the fresh report against this baseline JSON and exit nonzero on regression")
	faultsFrac := flag.Float64("faults", 0, "run the fault-injection benchmark at this fault fraction in (0,1]: keyed applies retried through a faultnet proxy, then exit")
	faultsOut := flag.String("faults-out", "BENCH_faults.json", "with -faults: write the fault-injection JSON report to this path")
	replicaPath := flag.String("replica", "", "run the replication read-fanout benchmark (primary + 2 follower ivmd subprocesses) and write its JSON report to this path (e.g. BENCH_replica.json), then exit")
	ivmdBin := flag.String("ivmd", "", "with -replica: path to the ivmd binary to launch (default: bin/ivmd, then $PATH)")
	flag.Parse()

	if *replicaPath != "" {
		bin := *ivmdBin
		if bin == "" {
			if _, err := os.Stat("bin/ivmd"); err == nil {
				bin = "bin/ivmd"
			} else {
				bin = "ivmd"
			}
		}
		if err := writeReplicaReport(*replicaPath, bin, *scaleFlag); err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: replication benchmark: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *faultsFrac != 0 {
		target := *serverTarget
		if target == "" {
			target = "self"
		}
		if err := writeFaultsReport(*faultsOut, target, *scaleFlag, *faultsFrac); err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: fault-injection benchmark: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serverTarget != "" {
		if err := writeServerLoadReport(*serverOut, *serverTarget, *scaleFlag); err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: server benchmark: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *plannerPath != "" {
		rep, err := writePlannerReport(*plannerPath, *scaleFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: planner benchmark: %v\n", err)
			os.Exit(1)
		}
		if *plannerBaseline != "" {
			if err := comparePlannerBaseline(rep, *plannerBaseline, *tolerance); err != nil {
				fmt.Fprintf(os.Stderr, "ivmbench: planner baseline guard: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *readersPath != "" {
		rep, err := writeReadersReport(*readersPath, *scaleFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: readers benchmark: %v\n", err)
			os.Exit(1)
		}
		if *baselinePath != "" {
			if err := compareReadersBaseline(rep, *baselinePath, *tolerance); err != nil {
				fmt.Fprintf(os.Stderr, "ivmbench: baseline guard: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *metricsPath != "" {
		experiments.EnableMetrics()
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "smoke":
		scale = experiments.SmokeScale
	case "default":
		scale = experiments.DefaultScale
	case "large":
		scale = experiments.Scale{Nodes: 600, Edges: 4200, Trials: 5}
	default:
		fmt.Fprintf(os.Stderr, "ivmbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	runners := map[string]func(experiments.Scale) *experiments.Table{
		"E1": experiments.RunE1, "E2": experiments.RunE2, "E3": experiments.RunE3,
		"E4": experiments.RunE4, "E5": experiments.RunE5, "E6": experiments.RunE6,
		"E7": experiments.RunE7, "E8": experiments.RunE8, "E9": experiments.RunE9,
		"E10": experiments.RunE10, "E12": experiments.RunE12, "E13": experiments.RunE13,
		"E14": experiments.RunE14,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E12", "E13", "E14"}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "ivmbench: unknown experiment %q (E11 is test-only: go test -run TestProperty)\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}

	fmt.Printf("ivm experiment harness — scale=%s (nodes=%d edges=%d trials=%d)\n\n",
		*scaleFlag, scale.Nodes, scale.Edges, scale.Trials)
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		table := runners[id](scale)
		fmt.Println(table.Render())
	}
	fmt.Println("E11 (Lemma 4.1 / Theorem 4.1 / Theorem 7.1 equivalence properties) runs as:")
	fmt.Println("  go test -run 'TestProperty' .")

	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "ivmbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the cross-experiment metrics snapshot as
// "name value" lines.
func writeMetrics(path string) error {
	snap := experiments.MetricsSnapshot()
	if path == "-" {
		fmt.Println("-- metrics --")
		_, err := snap.WriteTo(os.Stdout)
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := snap.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package main

// The replication benchmark behind `ivmbench -replica`: boots a
// primary ivmd and two followers as subprocesses (each pinned to
// GOMAXPROCS=1 so per-process serving capacity is the bottleneck being
// measured, not the bench host's core count), then measures
//
//   phase A — closed-loop read throughput against the leader alone;
//   phase B — the same reader count fanned out over a ReadPool of the
//             leader plus both followers;
//
// with a background apply load running throughout, and reports the
// speedup B/A alongside p99 follower staleness (sampled from the
// followers' replica_lag_millis gauge). On hosts with at least 4 CPUs
// the report enforces the >= 1.8x speedup floor; on smaller hosts the
// three daemons share cores and the floor is reported but not gated.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ivm/client"
)

type replicaReport struct {
	Scale     string `json:"scale"`
	Readers   int    `json:"readers"`
	Followers int    `json:"followers"`
	NumCPU    int    `json:"num_cpu"`
	Duration  string `json:"phase_duration"`

	LeaderReads       int     `json:"leader_only_reads"`
	LeaderReadsPerSec float64 `json:"leader_only_reads_per_sec"`
	PoolReads         int     `json:"pool_reads"`
	PoolReadsPerSec   float64 `json:"pool_reads_per_sec"`
	Speedup           float64 `json:"speedup"`
	SpeedupFloor      float64 `json:"speedup_floor"`
	FloorEnforced     bool    `json:"floor_enforced"`

	Fallbacks          uint64 `json:"pool_fallbacks"`
	StalenessP50Millis int64  `json:"staleness_p50_millis"`
	StalenessP99Millis int64  `json:"staleness_p99_millis"`
	FinalVersion       uint64 `json:"final_version"`
}

// ivmdProc is one managed ivmd subprocess.
type ivmdProc struct {
	cmd *exec.Cmd
	url string
}

// startIvmd launches bin with args, GOMAXPROCS=1, and waits for the
// "serving HTTP on" log line to learn the picked port.
func startIvmd(bin string, args ...string) (*ivmdProc, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving HTTP on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("serving HTTP on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &ivmdProc{cmd: cmd, url: "http://" + addr}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("ivmd (%v) never reported its listen address", args)
	}
}

func (p *ivmdProc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// readPhase drives n closed-loop readers against read for d and
// returns the total completed reads.
func readPhase(read func(context.Context) error, n int, d time.Duration) (int, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if err := read(ctx); err != nil {
					if ctx.Err() == nil {
						firstErr.CompareAndSwap(nil, err)
					}
					return
				}
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return int(total.Load()), nil
}

func writeReplicaReport(path, ivmdBin, scale string) error {
	var phase time.Duration
	var readers int
	switch scale {
	case "smoke":
		phase, readers = 2*time.Second, 4
	case "large":
		phase, readers = 10*time.Second, 16
	default:
		phase, readers = 5*time.Second, 8
	}

	// The primary's program: the two-hop join the other benches use.
	dir, err := os.MkdirTemp("", "ivmbench-replica-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	prog := filepath.Join(dir, "views.dl")
	if err := os.WriteFile(prog, []byte("hop(X,Y) :- link(X,Z), link(Z,Y).\nlink(seed_a,seed_b). link(seed_b,seed_c).\n"), 0o644); err != nil {
		return err
	}

	primary, err := startIvmd(ivmdBin, "-program", prog)
	if err != nil {
		return fmt.Errorf("starting primary: %w", err)
	}
	defer primary.stop()

	const followers = 2
	var fps []*ivmdProc
	for i := 0; i < followers; i++ {
		fp, err := startIvmd(ivmdBin, "-follow", primary.url)
		if err != nil {
			return fmt.Errorf("starting follower %d: %w", i, err)
		}
		defer fp.stop()
		fps = append(fps, fp)
	}

	ctx := context.Background()
	leader := client.New(primary.url, nil)

	// Preload a read-worthy working set.
	for i := 0; i < 50; i++ {
		if _, err := leader.Apply(ctx, fmt.Sprintf("+link(s%d,m%d). +link(m%d,d%d).", i, i, i, i)); err != nil {
			return fmt.Errorf("preload: %w", err)
		}
	}

	// Background apply load for both phases, plus a staleness sampler
	// polling the followers' replica_lag_millis.
	bgCtx, bgCancel := context.WithCancel(ctx)
	defer bgCancel()
	var bgWG sync.WaitGroup
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for i := 0; bgCtx.Err() == nil; i++ {
			leader.Apply(bgCtx, fmt.Sprintf("+link(w%d,x%d).", i, i))
			select {
			case <-bgCtx.Done():
			case <-time.After(20 * time.Millisecond):
			}
		}
	}()
	var stalenessMu sync.Mutex
	var staleness []int64
	followerClients := make([]*client.Client, followers)
	followerURLs := make([]string, followers)
	for i, fp := range fps {
		followerClients[i] = client.New(fp.url, nil)
		followerURLs[i] = fp.url
	}
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for bgCtx.Err() == nil {
			for _, fc := range followerClients {
				if m, err := fc.Metrics(bgCtx); err == nil {
					stalenessMu.Lock()
					staleness = append(staleness, m["replica_lag_millis"])
					stalenessMu.Unlock()
				}
			}
			select {
			case <-bgCtx.Done():
			case <-time.After(25 * time.Millisecond):
			}
		}
	}()

	// Phase A: leader only.
	leaderReads, err := readPhase(func(ctx context.Context) error {
		_, err := leader.Rows(ctx, "hop")
		return err
	}, readers, phase)
	if err != nil {
		return fmt.Errorf("leader-only phase: %w", err)
	}

	// Phase B: the pool fans the same readers over leader + followers.
	// Built through cluster discovery: the seeds are all three members in
	// arbitrary order and the pool works out who leads from /v1/info.
	pool, err := client.NewClusterPool(ctx, append(followerURLs, primary.url), nil)
	if err != nil {
		return fmt.Errorf("discovering cluster: %w", err)
	}
	poolReads, err := readPhase(func(ctx context.Context) error {
		_, err := pool.Rows(ctx, "hop", client.ReadOptions{})
		return err
	}, readers, phase)
	if err != nil {
		return fmt.Errorf("pool phase: %w", err)
	}

	bgCancel()
	bgWG.Wait()

	info, err := leader.Info(ctx)
	if err != nil {
		return err
	}
	stalenessMu.Lock()
	p50 := pctNanos(staleness, 0.50)
	p99 := pctNanos(staleness, 0.99)
	stalenessMu.Unlock()

	rep := &replicaReport{
		Scale:              scale,
		Readers:            readers,
		Followers:          followers,
		NumCPU:             runtime.NumCPU(),
		Duration:           phase.String(),
		LeaderReads:        leaderReads,
		LeaderReadsPerSec:  float64(leaderReads) / phase.Seconds(),
		PoolReads:          poolReads,
		PoolReadsPerSec:    float64(poolReads) / phase.Seconds(),
		Speedup:            float64(poolReads) / float64(max(leaderReads, 1)),
		SpeedupFloor:       1.8,
		FloorEnforced:      runtime.NumCPU() >= 4,
		Fallbacks:          pool.Fallbacks(),
		StalenessP50Millis: p50,
		StalenessP99Millis: p99,
		FinalVersion:       info.Version,
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("replica bench: leader %0.0f reads/s, pool %0.0f reads/s (%.2fx, floor %.1fx %s), staleness p99 %dms, fallbacks %d\n",
		rep.LeaderReadsPerSec, rep.PoolReadsPerSec, rep.Speedup, rep.SpeedupFloor,
		map[bool]string{true: "enforced", false: "advisory"}[rep.FloorEnforced], rep.StalenessP99Millis, rep.Fallbacks)

	if rep.FloorEnforced && rep.Speedup < rep.SpeedupFloor {
		return fmt.Errorf("read fan-out speedup %.2fx below the %.1fx floor with %d followers", rep.Speedup, rep.SpeedupFloor, followers)
	}
	if rep.StalenessP99Millis > 10_000 {
		return fmt.Errorf("p99 follower staleness %dms is unbounded for this workload", rep.StalenessP99Millis)
	}
	return nil
}

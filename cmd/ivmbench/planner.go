package main

// The join-planner benchmark behind `ivmbench -planner`: steady-state
// maintenance of a skewed-cardinality join program with the cost-based
// planner on (the default) and off (WithoutPlanner), over identical
// update sequences. The report, written as BENCH_planner.json, records
// per-apply latency for both modes, the headline speedup, and the plan
// cache hit rate — and fails loudly if either the >=1.5x speedup or the
// >=99% steady-state hit rate the planner promises does not hold.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ivm"
	"ivm/internal/workload"
)

type plannerReport struct {
	// Shape of the run (workload.SkewedJoin parameters).
	HotKeys    int `json:"hot_keys"`
	Fanout     int `json:"fanout"`
	WideRows   int `json:"wide_rows"`
	Overlap    int `json:"overlap"`
	Applies    int `json:"applies"`
	GOMAXPROCS int `json:"gomaxprocs"`

	// Per-apply maintenance latency with the planner on and off, and
	// the headline ratio (off / on).
	OnNanosPerApply  int64   `json:"planner_on_nanos_per_apply"`
	OffNanosPerApply int64   `json:"planner_off_nanos_per_apply"`
	Speedup          float64 `json:"speedup"`

	// Plan cache behavior during the planner-on run.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheReplans int64   `json:"cache_replans"`
	HitRate      float64 `json:"hit_rate"`

	// Plan is the planner's rendered order for the benchmark rule.
	Plan string `json:"plan"`
}

// plannerProgram is the skewed join the planner wins on: hot is small
// with a huge per-key fan-out, wide is large but near-unique on X, and
// the timed Δreq keys always miss wide.
const plannerProgram = `out(Y,Z) :- req(X), hot(X,Y), wide(X,Z).`

func buildPlannerViews(hotKeys, fanout, wideRows, overlap int, planner bool) (*ivm.Views, error) {
	hot, wide := workload.SkewedJoin(hotKeys, fanout, wideRows, overlap)
	db := ivm.NewDatabase()
	for _, row := range hot.SortedRows() {
		db.InsertTuple("hot", row.Tuple, 1)
	}
	for _, row := range wide.SortedRows() {
		db.InsertTuple("wide", row.Tuple, 1)
	}
	opts := []ivm.Option{}
	if !planner {
		opts = append(opts, ivm.WithoutPlanner())
	}
	return db.Materialize(plannerProgram, opts...)
}

// plannerApply toggles the i-th timed Δreq: keys draw from the half of
// hot's key space that wide does not overlap, so every delta drives
// hot's fan-out under a syntactic order and exits early under the
// planner.
func plannerApply(v *ivm.Views, hotKeys, overlap, i int) error {
	key := workload.SkewedReqKey(hotKeys, overlap+(i/2)%(hotKeys-overlap)).String()
	u := ivm.NewUpdate()
	if i%2 == 0 {
		u.Insert("req", key)
	} else {
		u.Delete("req", key)
	}
	_, err := v.Apply(u)
	return err
}

func runPlannerLoad(v *ivm.Views, hotKeys, overlap, applies int) (int64, error) {
	// Warm-up: populate the plan cache and lazy indexes/statistics so
	// the timed loop measures the steady state both modes converge to.
	for i := 0; i < 10; i++ {
		if err := plannerApply(v, hotKeys, overlap, i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < applies; i++ {
		if err := plannerApply(v, hotKeys, overlap, i); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / int64(applies), nil
}

// verifyPlannerEquivalence applies an overlap-hitting sequence (deltas
// that do produce view rows) to both views and compares the maintained
// output row for row.
func verifyPlannerEquivalence(on, off *ivm.Views, hotKeys, overlap int) error {
	for _, v := range []*ivm.Views{on, off} {
		u := ivm.NewUpdate()
		for k := 0; k < overlap; k++ {
			u.Insert("req", workload.SkewedReqKey(hotKeys, k).String())
		}
		if _, err := v.Apply(u); err != nil {
			return err
		}
	}
	a, b := on.Rows("out"), off.Rows("out")
	if len(a) == 0 {
		return fmt.Errorf("equivalence check produced no out rows — the overlap keys missed")
	}
	if len(a) != len(b) {
		return fmt.Errorf("planner changed the view: %d rows with planner, %d without", len(a), len(b))
	}
	for i := range a {
		if !a[i].Tuple.Equal(b[i].Tuple) || a[i].Count != b[i].Count {
			return fmt.Errorf("planner changed row %d: %v (count %d) vs %v (count %d)",
				i, a[i].Tuple, a[i].Count, b[i].Tuple, b[i].Count)
		}
	}
	return nil
}

// runPlannerBenchmark produces the BENCH_planner.json report and
// enforces the planner's two promises: >=1.5x maintenance speedup on the
// skewed workload and a >=99% steady-state plan-cache hit rate.
func runPlannerBenchmark(hotKeys, fanout, wideRows, overlap, applies int) (*plannerReport, error) {
	on, err := buildPlannerViews(hotKeys, fanout, wideRows, overlap, true)
	if err != nil {
		return nil, err
	}
	off, err := buildPlannerViews(hotKeys, fanout, wideRows, overlap, false)
	if err != nil {
		return nil, err
	}

	onNanos, err := runPlannerLoad(on, hotKeys, overlap, applies)
	if err != nil {
		return nil, err
	}
	offNanos, err := runPlannerLoad(off, hotKeys, overlap, applies)
	if err != nil {
		return nil, err
	}
	if err := verifyPlannerEquivalence(on, off, hotKeys, overlap); err != nil {
		return nil, err
	}

	m := on.Metrics()
	rep := &plannerReport{
		HotKeys: hotKeys, Fanout: fanout, WideRows: wideRows, Overlap: overlap,
		Applies:          applies,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		OnNanosPerApply:  onNanos,
		OffNanosPerApply: offNanos,
		CacheHits:        m.Counter("planner_hits_total"),
		CacheMisses:      m.Counter("planner_misses_total"),
		CacheReplans:     m.Counter("planner_replans_total"),
	}
	if onNanos > 0 {
		rep.Speedup = float64(offNanos) / float64(onNanos)
	}
	if total := rep.CacheHits + rep.CacheMisses + rep.CacheReplans; total > 0 {
		rep.HitRate = float64(rep.CacheHits) / float64(total)
	}
	if plans, err := on.ExplainPlan("out"); err == nil && len(plans) == 1 {
		rep.Plan = plans[0].Plan
	}

	if rep.Speedup < 1.5 {
		return rep, fmt.Errorf("planner speedup %.2fx below the 1.5x floor (on %dns/apply, off %dns/apply)",
			rep.Speedup, onNanos, offNanos)
	}
	if rep.HitRate < 0.99 {
		return rep, fmt.Errorf("plan cache hit rate %.4f below the 0.99 floor (hits %d, misses %d, replans %d)",
			rep.HitRate, rep.CacheHits, rep.CacheMisses, rep.CacheReplans)
	}
	return rep, nil
}

func writePlannerReport(path string, scale string) (*plannerReport, error) {
	hotKeys, fanout, wideRows, overlap, applies := 8, 1000, 20000, 4, 2000
	if scale == "smoke" {
		fanout, wideRows, applies = 400, 6000, 400
	}
	rep, err := runPlannerBenchmark(hotKeys, fanout, wideRows, overlap, applies)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("planner maintenance on the skewed join (hot %dx%d, wide %d, %d applies):\n",
		rep.HotKeys, rep.Fanout, rep.WideRows, rep.Applies)
	fmt.Printf("  planner on:  %8dns/apply\n", rep.OnNanosPerApply)
	fmt.Printf("  planner off: %8dns/apply\n", rep.OffNanosPerApply)
	fmt.Printf("  speedup: %.1fx   cache hit rate: %.4f (hits %d, misses %d, replans %d)\n",
		rep.Speedup, rep.HitRate, rep.CacheHits, rep.CacheMisses, rep.CacheReplans)
	fmt.Printf("  plan: %s\n", rep.Plan)
	fmt.Printf("wrote %s\n", path)
	return rep, nil
}

// comparePlannerBaseline guards the planner benchmark against a checked
// in baseline: the speedup may shrink to baseline/tolerance (but never
// below the 1.5x floor, which runPlannerBenchmark enforces), and the
// planner-on latency may grow to tolerance x baseline.
func comparePlannerBaseline(rep *plannerReport, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base plannerReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	if tolerance <= 1 {
		return fmt.Errorf("tolerance must be > 1, got %g", tolerance)
	}

	fmt.Printf("\nplanner baseline comparison against %s (tolerance %.1fx):\n", baselinePath, tolerance)
	var failures []string

	// The speedup is a ratio, so machine speed cancels; what remains is
	// transient load skewing one of the two timed loops. Clamping the
	// floor keeps the guard far above a structural collapse (a disabled
	// planner measures ~1x) without flagging a noisy runner.
	speedupFloor := base.Speedup / tolerance
	if speedupFloor > 8 {
		speedupFloor = 8
	}
	fmt.Printf("  speedup: current %.2fx vs baseline %.2fx (floor %.2fx)\n",
		rep.Speedup, base.Speedup, speedupFloor)
	if base.Speedup > 0 && rep.Speedup < speedupFloor {
		failures = append(failures, fmt.Sprintf(
			"planner speedup regressed: %.2fx < floor %.2fx (baseline %.2fx, tolerance %.1f)",
			rep.Speedup, speedupFloor, base.Speedup, tolerance))
	}

	onLimit := int64(float64(base.OnNanosPerApply) * tolerance)
	fmt.Printf("  planner-on latency: current %dns vs baseline %dns (limit %dns)\n",
		rep.OnNanosPerApply, base.OnNanosPerApply, onLimit)
	if base.OnNanosPerApply > 0 && rep.OnNanosPerApply > onLimit {
		failures = append(failures, fmt.Sprintf(
			"planner-on apply latency regressed: %dns > %.1fx baseline %dns",
			rep.OnNanosPerApply, tolerance, base.OnNanosPerApply))
	}

	fmt.Printf("  hit rate: current %.4f vs baseline %.4f (floor 0.99)\n", rep.HitRate, base.HitRate)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Printf("  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d planner regression(s) beyond tolerance", len(failures))
	}
	fmt.Println("  ok: within tolerance")
	return nil
}

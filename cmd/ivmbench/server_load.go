package main

// The served-load benchmark behind `ivmbench -server`: drives an ivmd
// HTTP endpoint with closed-loop appliers, open-loop readers, and a
// streaming subscriber, and reports end-to-end latencies as
// BENCH_server.json. With `-server self` it boots an in-process server
// (memory-only views) so CI can exercise the full network path without
// managing a daemon; with `-server http://host:port` it load-tests a
// running ivmd.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/server"
)

type serverLoadReport struct {
	Target     string `json:"target"` // "self" or the URL load-tested
	Appliers   int    `json:"appliers"`
	Readers    int    `json:"readers"`
	Duration   string `json:"duration"`
	OpenLoopMS int    `json:"reader_interval_millis"`

	Applies       int     `json:"applies"`
	ApplyP50Nanos int64   `json:"apply_p50_nanos"`
	ApplyP99Nanos int64   `json:"apply_p99_nanos"`
	ApplyPerSec   float64 `json:"applies_per_sec"`

	Reads        int   `json:"reads"`
	ReadP50Nanos int64 `json:"read_p50_nanos"`
	ReadP99Nanos int64 `json:"read_p99_nanos"`

	SubEvents     int64  `json:"sub_events"`
	SubMaxVersion uint64 `json:"sub_max_version"`
	FinalVersion  uint64 `json:"final_version"`
}

func pctNanos(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[int(p*float64(len(xs)-1))]
}

// runServerLoad drives target for d. Appliers are closed-loop (next
// request issued when the ack returns — server latency is the pacing);
// readers are open-loop on a fixed interval, measuring from scheduled
// arrival to avoid coordinated omission, same discipline as -readers.
func runServerLoad(target string, appliers, readers int, d time.Duration) (*serverLoadReport, error) {
	c := client.New(target, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := c.Info(ctx); err != nil {
		return nil, fmt.Errorf("probing %s: %w", target, err)
	}

	sub, err := c.Subscribe(ctx, nil, 8192)
	if err != nil {
		return nil, fmt.Errorf("subscribing: %w", err)
	}
	var subEvents int64
	var subMaxVersion atomic.Uint64
	var subWg sync.WaitGroup
	subWg.Add(1)
	go func() {
		defer subWg.Done()
		for ev := range sub.Events() {
			if ev.Hello {
				continue
			}
			atomic.AddInt64(&subEvents, 1)
			subMaxVersion.Store(ev.Version)
		}
	}()

	var stop atomic.Bool
	var wg sync.WaitGroup
	applyNanos := make([][]int64, appliers)
	for a := 0; a < appliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				// Insert-then-delete keeps the store near its initial size
				// while every apply still changes the view: unique endpoints
				// mean each insert derives (and each delete retracts) a fresh
				// hop tuple, so subscribers see a delta per apply.
				mid := fmt.Sprintf("b%d_%d", a, i)
				ins := fmt.Sprintf("+link(s_%s,%s). +link(%s,d_%s).", mid, mid, mid, mid)
				del := fmt.Sprintf("-link(s_%s,%s). -link(%s,d_%s).", mid, mid, mid, mid)
				for _, s := range []string{ins, del} {
					t0 := time.Now()
					if _, err := c.Apply(ctx, s); err != nil {
						if !stop.Load() {
							panic(fmt.Sprintf("apply: %v", err))
						}
						return
					}
					applyNanos[a] = append(applyNanos[a], time.Since(t0).Nanoseconds())
				}
			}
		}(a)
	}

	const readInterval = 5 * time.Millisecond
	readNanos := make([][]int64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + r)))
			start := time.Now()
			for i := 0; !stop.Load(); i++ {
				sched := start.Add(time.Duration(i) * readInterval)
				if now := time.Now(); now.Before(sched) {
					time.Sleep(sched.Sub(now))
				}
				var err error
				if rng.Intn(2) == 0 {
					_, err = c.Count(ctx, "hop")
				} else {
					_, err = c.Query(ctx, "hop(a,X)")
				}
				if err != nil {
					if !stop.Load() {
						panic(fmt.Sprintf("read: %v", err))
					}
					return
				}
				readNanos[r] = append(readNanos[r], time.Since(sched).Nanoseconds())
			}
		}(r)
	}

	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	cancel()
	sub.Close()
	subWg.Wait()

	var applies, reads []int64
	for _, s := range applyNanos {
		applies = append(applies, s...)
	}
	for _, s := range readNanos {
		reads = append(reads, s...)
	}

	info, err := client.New(target, nil).Info(context.Background())
	finalVersion := uint64(0)
	if err == nil {
		finalVersion = info.Version
	}

	rep := &serverLoadReport{
		Target:     target,
		Appliers:   appliers,
		Readers:    readers,
		Duration:   d.String(),
		OpenLoopMS: int(readInterval / time.Millisecond),

		Applies:       len(applies),
		ApplyP50Nanos: pctNanos(applies, 0.50),
		ApplyP99Nanos: pctNanos(applies, 0.99),
		ApplyPerSec:   float64(len(applies)) / d.Seconds(),

		Reads:        len(reads),
		ReadP50Nanos: pctNanos(reads, 0.50),
		ReadP99Nanos: pctNanos(reads, 0.99),

		SubEvents:     atomic.LoadInt64(&subEvents),
		SubMaxVersion: subMaxVersion.Load(),
		FinalVersion:  finalVersion,
	}
	return rep, nil
}

// writeServerLoadReport runs the served-load benchmark and writes the
// JSON report. target "self" boots an in-process memory-only server.
func writeServerLoadReport(path, target, scale string) error {
	appliers, readers, dur := 8, 4, 2*time.Second
	if scale == "smoke" {
		appliers, readers, dur = 4, 2, 500*time.Millisecond
	}

	label := target
	if target == "self" {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
		if err != nil {
			return err
		}
		srv := server.New(v, server.Options{OwnViews: true, SubscriberBuffer: 8192})
		if err := srv.Start(); err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = srv.URL()
	}

	rep, err := runServerLoad(target, appliers, readers, dur)
	if err != nil {
		return err
	}
	rep.Target = label

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("served load against %s (%d closed-loop appliers, %d open-loop readers, %s):\n",
		label, rep.Appliers, rep.Readers, rep.Duration)
	fmt.Printf("  apply: p50 %8dns  p99 %8dns  (%d acks, %.0f/s)\n",
		rep.ApplyP50Nanos, rep.ApplyP99Nanos, rep.Applies, rep.ApplyPerSec)
	fmt.Printf("  read:  p50 %8dns  p99 %8dns  (%d reads)\n",
		rep.ReadP50Nanos, rep.ReadP99Nanos, rep.Reads)
	fmt.Printf("  subscriber: %d events, max version %d (server final version %d)\n",
		rep.SubEvents, rep.SubMaxVersion, rep.FinalVersion)
	if rep.SubEvents == 0 && rep.Applies > 0 {
		return fmt.Errorf("subscriber saw no events despite %d acked applies", rep.Applies)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

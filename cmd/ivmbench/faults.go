package main

// The fault-injection benchmark behind `ivmbench -faults`: boots an
// in-process ivmd (or targets a running one with -server URL), puts the
// faultnet proxy between client and server, and drives keyed appliers
// through the client's retry/backoff path. The report (BENCH_faults.json)
// quantifies what the chaos gauntlet proves qualitatively: how often a
// fault forces a retry, how often the server's idempotency window
// absorbs one, and — under duplicate semantics — that every acked apply
// landed exactly once.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/faultnet"
	"ivm/internal/server"
)

type faultsReport struct {
	Target        string  `json:"target"` // "self" or the URL driven
	Appliers      int     `json:"appliers"`
	PerApplier    int     `json:"applies_per_applier"`
	FaultFraction float64 `json:"fault_fraction"`
	Seed          int64   `json:"seed"`
	Duration      string  `json:"duration"`

	Acked        int64            `json:"acked"`
	ProxyConns   int64            `json:"proxy_conns"`
	ProxyFaulted int64            `json:"proxy_faulted"`
	FaultsByMode map[string]int64 `json:"faults_by_mode"`

	ClientRetries uint64 `json:"client_retries"`
	ClientDeduped uint64 `json:"client_deduped_acks"`
	ServerDedups  int64  `json:"server_apply_dedup_total"`
	SchedDedups   int64  `json:"sched_idem_dedup_total"`

	RetriesPerApply float64 `json:"retries_per_apply"`
	FaultRate       float64 `json:"observed_fault_rate"`

	// DoubleApplies counts tuples whose duplicate-semantics count came
	// back != 1 — any nonzero value is an exactly-once violation. -1
	// when the target is remote (its semantics are not under our
	// control, so the count check proves nothing).
	DoubleApplies int `json:"double_applies"`
}

// runFaultsBench drives appliers×perApplier keyed applies through a
// faultnet proxy at the given fault fraction, retrying every apply
// until it is acked or the timeout expires.
func runFaultsBench(target string, selfBoot bool, appliers, perApplier int, fraction float64, seed int64, timeout time.Duration) (*faultsReport, error) {
	proxy, err := faultnet.New(faultnet.Options{
		Target:   target,
		Fraction: fraction,
		Seed:     seed,
		Delay:    5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	// Keep-alives off so every attempt opens a fresh (faultable)
	// connection; the header timeout turns a black-holed attempt into a
	// retry instead of a hang.
	hc := &http.Client{Transport: &http.Transport{
		DisableKeepAlives:     true,
		ResponseHeaderTimeout: 10 * time.Second,
	}}
	c := client.New(proxy.URL(), hc)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	script := func(a, i int) string { return fmt.Sprintf("+hit(a%d,s%d).", a, i) }
	key := func(a, i int) string { return fmt.Sprintf("bench-%d-%d", a, i) }

	start := time.Now()
	var acked atomic.Int64
	errs := make([]error, appliers)
	var wg sync.WaitGroup
	for a := 0; a < appliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perApplier; i++ {
				// Outer retry-until-acked under a stable key: the inner
				// policy gives up after a few attempts, the key makes a
				// fresh round exactly-once anyway.
				for {
					if _, err := c.ApplyWithKey(ctx, key(a, i), script(a, i)); err == nil {
						acked.Add(1)
						break
					} else if ctx.Err() != nil {
						errs[a] = fmt.Errorf("applier %d apply %d: %w", a, i, err)
						return
					}
				}
			}
		}(a)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Read the server's dedup counters and verify exactly-once through
	// an unfaulted path.
	proxy.SetFraction(0)
	metrics, err := c.Metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("reading server metrics: %w", err)
	}
	doubles := -1
	if selfBoot {
		doubles = 0
		for a := 0; a < appliers; a++ {
			for i := 0; i < perApplier; i++ {
				cnt, err := c.Count(ctx, fmt.Sprintf("hit(a%d,s%d)", a, i))
				if err != nil {
					return nil, fmt.Errorf("verifying hit(a%d,s%d): %w", a, i, err)
				}
				if cnt.Count != 1 {
					doubles++
				}
			}
		}
	}

	pst, cst := proxy.Stats(), c.Stats()
	rep := &faultsReport{
		Appliers:      appliers,
		PerApplier:    perApplier,
		FaultFraction: fraction,
		Seed:          seed,
		Duration:      elapsed.String(),

		Acked:        acked.Load(),
		ProxyConns:   pst.Conns,
		ProxyFaulted: pst.Faulted,
		FaultsByMode: pst.ByMode,

		ClientRetries: cst.Retries,
		ClientDeduped: cst.Deduped,
		ServerDedups:  metrics["server_apply_dedup_total"],
		SchedDedups:   metrics["sched_idem_dedup_total"],

		DoubleApplies: doubles,
	}
	if rep.Acked > 0 {
		rep.RetriesPerApply = float64(cst.Retries) / float64(rep.Acked)
	}
	if pst.Conns > 0 {
		rep.FaultRate = float64(pst.Faulted) / float64(pst.Conns)
	}
	return rep, nil
}

// writeFaultsReport runs the fault-injection benchmark and writes the
// JSON report. target "self" boots an in-process memory-only server
// with duplicate semantics so a double apply is visible as a count of 2.
func writeFaultsReport(path, target, scale string, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("-faults fraction %v must be in (0, 1]", fraction)
	}
	appliers, perApplier := 16, 8
	if scale == "smoke" {
		appliers, perApplier = 8, 4
	}

	label := target
	selfBoot := target == "self"
	if selfBoot {
		db := ivm.NewDatabase()
		db.MustLoad(`hit(seed,seed).`)
		v, err := db.Materialize(`mirror(X,Y) :- hit(X,Y).`, ivm.WithSemantics(ivm.DuplicateSemantics))
		if err != nil {
			return err
		}
		srv := server.New(v, server.Options{OwnViews: true})
		if err := srv.Start(); err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		target = srv.Addr()
	} else {
		target = stripScheme(target)
	}

	rep, err := runFaultsBench(target, selfBoot, appliers, perApplier, fraction, 42, 2*time.Minute)
	if err != nil {
		return err
	}
	rep.Target = label

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("fault injection against %s (%d appliers × %d applies, fraction %.2f):\n",
		label, rep.Appliers, rep.PerApplier, rep.FaultFraction)
	fmt.Printf("  proxy:  %d conns, %d faulted (%.0f%%) %v\n",
		rep.ProxyConns, rep.ProxyFaulted, 100*rep.FaultRate, rep.FaultsByMode)
	fmt.Printf("  client: %d acked, %d retries (%.2f/apply), %d deduped acks\n",
		rep.Acked, rep.ClientRetries, rep.RetriesPerApply, rep.ClientDeduped)
	fmt.Printf("  server: %d HTTP dedups, %d scheduler dedups\n",
		rep.ServerDedups, rep.SchedDedups)
	if rep.DoubleApplies > 0 {
		return fmt.Errorf("%d tuples applied more than once — exactly-once violated", rep.DoubleApplies)
	}
	if want := int64(appliers * perApplier); rep.Acked != want {
		return fmt.Errorf("acked %d applies, want %d", rep.Acked, want)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// stripScheme converts an http base URL into the host:port faultnet
// dials.
func stripScheme(target string) string {
	for _, p := range []string{"http://", "https://"} {
		if len(target) > len(p) && target[:len(p)] == p {
			return target[len(p):]
		}
	}
	return target
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Smoke the served-load benchmark end to end against an in-process
// server: the report must land on disk with real traffic in it.
func TestWriteServerLoadReportSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("served-load smoke skipped in -short")
	}
	path := filepath.Join(t.TempDir(), "BENCH_server.json")
	if err := writeServerLoadReport(path, "self", "smoke"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep serverLoadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Target != "self" || rep.Applies == 0 || rep.Reads == 0 || rep.SubEvents == 0 {
		t.Fatalf("thin report: %+v", rep)
	}
	if rep.ApplyP99Nanos < rep.ApplyP50Nanos {
		t.Fatalf("p99 %d < p50 %d", rep.ApplyP99Nanos, rep.ApplyP50Nanos)
	}
}

// An unreachable target must fail the probe, not hang or panic.
func TestRunServerLoadUnreachable(t *testing.T) {
	if _, err := runServerLoad("http://127.0.0.1:1", 1, 1, 0); err == nil {
		t.Fatal("unreachable server must fail the initial probe")
	}
}

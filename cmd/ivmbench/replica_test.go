package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Smoke the replication benchmark end to end: build the real ivmd,
// launch a primary and two followers as subprocesses, and require the
// report to land with read traffic on both phases and bounded
// staleness samples.
func TestWriteReplicaReport(t *testing.T) {
	if testing.Short() {
		t.Skip("replication bench smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ivmd")
	build := exec.Command("go", "build", "-o", bin, "ivm/cmd/ivmd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ivmd: %v\n%s", err, out)
	}

	path := filepath.Join(dir, "BENCH_replica.json")
	if err := writeReplicaReport(path, bin, "smoke"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep replicaReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Followers != 2 || rep.LeaderReads == 0 || rep.PoolReads == 0 {
		t.Fatalf("thin report: %+v", rep)
	}
	if rep.StalenessP99Millis < rep.StalenessP50Millis {
		t.Fatalf("staleness p99 %d < p50 %d", rep.StalenessP99Millis, rep.StalenessP50Millis)
	}
	if rep.FinalVersion == 0 {
		t.Fatalf("no versions committed: %+v", rep)
	}
}

// A missing ivmd binary must fail fast, not hang waiting for a listen
// address.
func TestStartIvmdMissingBinary(t *testing.T) {
	if _, err := startIvmd(filepath.Join(t.TempDir(), "no-such-ivmd")); err == nil {
		t.Fatal("startIvmd succeeded with a missing binary")
	}
}

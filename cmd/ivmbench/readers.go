package main

// The snapshot-reader latency benchmark behind `ivmbench -readers`:
// readers hammer point lookups and goal queries while writers sustain
// Apply load, once against the MVCC snapshot path and once against an
// emulated RWMutex discipline (readers take a shared lock the writer
// holds exclusively across each Apply — the pre-snapshot design). The
// report, written as BENCH_readers.json, records reader p50/p99 for
// both modes and the scheduler's batch coalesce ratio, giving later
// changes a perf trajectory to compare against.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ivm"
)

type readerLatencies struct {
	Reads    int     `json:"reads"`
	P50Nanos int64   `json:"p50_nanos"`
	P99Nanos int64   `json:"p99_nanos"`
	MaxNanos int64   `json:"max_nanos"`
	Applies  int     `json:"applies"`
	ApplyP99 float64 `json:"apply_p99_millis"`
}

type readersReport struct {
	// Shape of the run.
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Readers    int    `json:"readers"`
	Writers    int    `json:"writers"`
	Duration   string `json:"duration"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// Snapshot is the MVCC read path; RWMutexBaseline emulates the
	// pre-snapshot lock discipline at the harness level (shared lock per
	// read, exclusive lock across each Apply).
	Snapshot        readerLatencies `json:"snapshot"`
	RWMutexBaseline readerLatencies `json:"rwmutex_baseline"`

	// SpeedupP99 is baseline p99 / snapshot p99 — the headline number.
	SpeedupP99 float64 `json:"speedup_p99"`

	// Coalescing observed during the snapshot run: logical updates per
	// maintenance batch (1.0 = no coalescing).
	Batches       int64   `json:"sched_batches"`
	BatchUpdates  int64   `json:"sched_batch_updates"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
}

func buildReaderViews(nodes, edges int, rng *rand.Rand) (*ivm.Views, error) {
	db := ivm.NewDatabase()
	for i := 0; i < edges; i++ {
		db.Insert("link", fmt.Sprintf("n%d", rng.Intn(nodes)), fmt.Sprintf("n%d", rng.Intn(nodes)))
	}
	// Two strata of joins make each maintenance pass expensive enough
	// that an exclusive lock held across Apply visibly stalls readers.
	return db.Materialize(`
		hop(X,Y) :- link(X,Z), link(Z,Y).
		tri(X,Y) :- hop(X,Z), link(Z,Y).
	`)
}

// writerBatch is the number of edge-pair inserts per Apply; the
// following Apply deletes them again, keeping the graph near its
// initial size.
const writerBatch = 8

// runReaderLoad drives writers+readers for d and returns the observed
// reader latencies. When rw is non-nil, every read holds rw.RLock and
// every Apply holds rw.Lock — the emulated pre-MVCC discipline.
func runReaderLoad(v *ivm.Views, nodes, readers, writers int, d time.Duration, rw *sync.RWMutex) readerLatencies {
	var stop atomic.Bool
	var wg sync.WaitGroup

	applyNanos := make([][]int64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for round := 0; !stop.Load(); round++ {
				ins, del := ivm.NewUpdate(), ivm.NewUpdate()
				for i := 0; i < writerBatch; i++ {
					src := fmt.Sprintf("n%d", rng.Intn(nodes))
					mid := fmt.Sprintf("w%d_%d_%d", w, round, i)
					dst := fmt.Sprintf("n%d", rng.Intn(nodes))
					ins.Insert("link", src, mid).Insert("link", mid, dst)
					del.Delete("link", src, mid).Delete("link", mid, dst)
				}
				for _, u := range []*ivm.Update{ins, del} {
					t0 := time.Now()
					if rw != nil {
						rw.Lock()
					}
					_, err := v.Apply(u)
					if rw != nil {
						rw.Unlock()
					}
					if err != nil {
						panic(err)
					}
					applyNanos[w] = append(applyNanos[w], time.Since(t0).Nanoseconds())
				}
			}
		}(w)
	}

	// Readers are open-loop: each schedules one read every readInterval
	// of wall time and measures from the *scheduled* arrival, not from
	// when the goroutine finally ran. Closed-loop hammering would
	// under-count stalls (coordinated omission): a reader blocked behind
	// a lock simply takes fewer samples, hiding exactly the latency this
	// benchmark exists to expose.
	const readInterval = time.Millisecond
	samples := make([][]int64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + r)))
			start := time.Now()
			for i := 0; !stop.Load(); i++ {
				sched := start.Add(time.Duration(i) * readInterval)
				if now := time.Now(); now.Before(sched) {
					time.Sleep(sched.Sub(now))
				}
				a := fmt.Sprintf("n%d", rng.Intn(nodes))
				b := fmt.Sprintf("n%d", rng.Intn(nodes))
				if rw != nil {
					rw.RLock()
				}
				v.Count("hop", a, b)
				v.Has("link", a, b)
				if rw != nil {
					rw.RUnlock()
				}
				samples[r] = append(samples[r], time.Since(sched).Nanoseconds())
			}
		}(r)
	}

	time.Sleep(d)
	stop.Store(true)
	wg.Wait()

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var applies []int64
	for _, s := range applyNanos {
		applies = append(applies, s...)
	}
	sort.Slice(applies, func(i, j int) bool { return applies[i] < applies[j] })

	pct := func(xs []int64, p float64) int64 {
		if len(xs) == 0 {
			return 0
		}
		i := int(p * float64(len(xs)-1))
		return xs[i]
	}
	out := readerLatencies{
		Reads:    len(all),
		P50Nanos: pct(all, 0.50),
		P99Nanos: pct(all, 0.99),
		Applies:  len(applies),
		ApplyP99: float64(pct(applies, 0.99)) / 1e6,
	}
	if len(all) > 0 {
		out.MaxNanos = all[len(all)-1]
	}
	return out
}

// runReadersBenchmark produces the BENCH_readers.json report.
func runReadersBenchmark(nodes, edges int, d time.Duration) (*readersReport, error) {
	readers, writers := 4, 4

	// MVCC snapshot path.
	v, err := buildReaderViews(nodes, edges, rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	snap := runReaderLoad(v, nodes, readers, writers, d, nil)
	m := v.Metrics()
	batches := m.Counter("sched_batches_total")
	updates := m.Counter("sched_batch_updates_total")

	// Emulated RWMutex baseline over identical views and load.
	vb, err := buildReaderViews(nodes, edges, rand.New(rand.NewSource(7)))
	if err != nil {
		return nil, err
	}
	var rw sync.RWMutex
	base := runReaderLoad(vb, nodes, readers, writers, d, &rw)

	rep := &readersReport{
		Nodes: nodes, Edges: edges,
		Readers: readers, Writers: writers,
		Duration:        d.String(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Snapshot:        snap,
		RWMutexBaseline: base,
		Batches:         batches,
		BatchUpdates:    updates,
	}
	if snap.P99Nanos > 0 {
		rep.SpeedupP99 = float64(base.P99Nanos) / float64(snap.P99Nanos)
	}
	if batches > 0 {
		rep.CoalesceRatio = float64(updates) / float64(batches)
	}
	return rep, nil
}

func writeReadersReport(path string, scale string) (*readersReport, error) {
	nodes, edges, dur := 150, 1200, 2*time.Second
	if scale == "smoke" {
		nodes, edges, dur = 60, 400, 400*time.Millisecond
	}
	rep, err := runReadersBenchmark(nodes, edges, dur)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("reader latency under sustained Apply load (%d readers vs %d writers, %s):\n",
		rep.Readers, rep.Writers, rep.Duration)
	fmt.Printf("  snapshot path:    p50 %8dns  p99 %8dns  (%d reads)\n",
		rep.Snapshot.P50Nanos, rep.Snapshot.P99Nanos, rep.Snapshot.Reads)
	fmt.Printf("  rwmutex baseline: p50 %8dns  p99 %8dns  (%d reads)\n",
		rep.RWMutexBaseline.P50Nanos, rep.RWMutexBaseline.P99Nanos, rep.RWMutexBaseline.Reads)
	fmt.Printf("  p99 speedup: %.1fx   coalesce ratio: %.2f updates/batch\n", rep.SpeedupP99, rep.CoalesceRatio)
	fmt.Printf("wrote %s\n", path)
	return rep, nil
}

// Command ivmd serves materialized views over the network: the
// incremental-maintenance engine (counting / DRed) behind an HTTP/JSON
// API with lock-free snapshot reads, snapshot-pinned repeatable-read
// sessions, streaming change subscriptions, and (optionally) a text
// line protocol.
//
// Usage:
//
//	ivmd -store DIR -program views.dl [-data facts.dl] [flags]
//	ivmd -follow http://primary:7199 [flags]
//
// With -store, every applied delta is fsynced to the write-ahead log
// before it is acknowledged, and SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight applies drain, the store checkpoints, and the WAL
// closes — an acknowledged apply is never lost. Without -store the
// views are memory-only (useful for benchmarks and smoke tests).
//
// With -follow, the process runs as a read replica: it bootstraps from
// the primary's replication stream, tails committed deltas, and serves
// reads from its local views. Applies received by a follower are
// transparently forwarded to the current leader (Idempotency-Key and
// all) and the leader's ack relayed back; replica_lag_* gauges on
// /v1/metrics report how far behind the follower is. -follow takes a
// comma-separated list of cluster members: the first is the upstream to
// tail, and the whole list seeds leader re-resolution after a failover.
//
// ivmd -promote URL is a client-mode invocation: it POSTs /v1/promote
// to the follower at URL — which stops tailing, raises its fencing
// epoch, and starts accepting applies as the new primary — then exits.
// See docs/OPERATIONS.md for the full failover procedure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
	"ivm/internal/replica"
	"ivm/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ivmd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7199", "HTTP listen address")
	lineAddr := flag.String("line-addr", "", "optional line-protocol listen address (e.g. 127.0.0.1:7198)")
	programPath := flag.String("program", "", "file with view rules (and optionally facts)")
	dataPath := flag.String("data", "", "file with base facts")
	storeDir := flag.String("store", "", "managed store directory (checkpoints + WAL); empty = memory-only")
	strategyFlag := flag.String("strategy", "auto", "auto, counting, dred, or recompute")
	semanticsFlag := flag.String("semantics", "set", "set or duplicate")
	groupCommit := flag.Bool("group-commit", true, "batch WAL fsyncs across concurrent applies (requires -store)")
	idemWindow := flag.Int("idem-window", 0, "idempotency keys remembered for apply dedup (0 = library default); size it above the keyed applies that can land within a client's retry horizon")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "per-request timeout for non-streaming endpoints")
	maxBody := flag.Int64("max-body", 4<<20, "maximum apply request body bytes")
	subBuffer := flag.Int("sub-buffer", 256, "per-subscriber event buffer; a consumer that falls this far behind is evicted")
	sessionTTL := flag.Duration("session-ttl", 5*time.Minute, "idle lifetime of snapshot-pinned sessions")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain budget")
	quiet := flag.Bool("quiet", false, "suppress per-request logging (lifecycle events still log)")
	followURL := flag.String("follow", "", "follow as a read replica: comma-separated cluster URLs, first is the upstream (e.g. http://127.0.0.1:7199)")
	promoteURL := flag.String("promote", "", "client mode: promote the follower at this URL to primary and exit")
	flag.Parse()

	if *promoteURL != "" {
		return promote(*promoteURL)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	logf := logger.Printf
	if *quiet {
		logf = func(format string, args ...any) {
			// Lifecycle lines keep flowing; per-request lines are dropped.
			if strings.HasPrefix(format, "ivmd: %s %s ->") {
				return
			}
			logger.Printf(format, args...)
		}
	}

	var opts []ivm.Option
	switch *strategyFlag {
	case "auto":
	case "counting":
		opts = append(opts, ivm.WithStrategy(ivm.Counting))
	case "dred":
		opts = append(opts, ivm.WithStrategy(ivm.DRed))
	case "recompute":
		opts = append(opts, ivm.WithStrategy(ivm.Recompute))
	default:
		return fmt.Errorf("unknown strategy %q", *strategyFlag)
	}
	switch *semanticsFlag {
	case "set":
	case "duplicate", "dup":
		opts = append(opts, ivm.WithSemantics(ivm.DuplicateSemantics))
	default:
		return fmt.Errorf("unknown semantics %q", *semanticsFlag)
	}
	if *groupCommit {
		opts = append(opts, ivm.WithGroupCommit())
	}
	if *idemWindow > 0 {
		opts = append(opts, ivm.WithIdempotencyWindow(*idemWindow))
	}

	if *followURL != "" {
		if *storeDir != "" || *programPath != "" || *dataPath != "" {
			return fmt.Errorf("-follow is exclusive with -store/-program/-data: a follower's state comes from the primary")
		}
		seeds := strings.Split(*followURL, ",")
		for i := range seeds {
			seeds[i] = strings.TrimSpace(seeds[i])
		}
		return runFollower(seeds, followerConfig{
			addr:            *addr,
			lineAddr:        *lineAddr,
			requestTimeout:  *requestTimeout,
			maxBody:         *maxBody,
			subBuffer:       *subBuffer,
			sessionTTL:      *sessionTTL,
			shutdownTimeout: *shutdownTimeout,
			engineOpts:      opts,
			logf:            logf,
		})
	}

	var views *ivm.Views
	if *storeDir != "" {
		v, info, err := ivm.OpenStore(*storeDir, func() (*ivm.Views, error) {
			return buildViews(*programPath, *dataPath, opts)
		}, opts...)
		if err != nil {
			return err
		}
		logf("ivmd: store %s: %s", *storeDir, info)
		views = v
	} else {
		v, err := buildViews(*programPath, *dataPath, opts)
		if err != nil {
			return err
		}
		logf("ivmd: memory-only (no -store): applies are not durable")
		views = v
	}
	logf("ivmd: strategy=%v semantics=%v rules=%d version=%d",
		views.Strategy(), views.Semantics(), len(views.Program().Rules), views.Snapshot().Version())

	srv := server.New(views, server.Options{
		Addr:             *addr,
		LineAddr:         *lineAddr,
		RequestTimeout:   *requestTimeout,
		MaxBodyBytes:     *maxBody,
		SubscriberBuffer: *subBuffer,
		SessionTTL:       *sessionTTL,
		OwnViews:         true,
		Logf:             logf,
	})
	if err := srv.Start(); err != nil {
		views.Close()
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	logf("ivmd: received %v, shutting down", got)
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	return srv.Shutdown(ctx)
}

// followerConfig carries the serving flags into the -follow path.
type followerConfig struct {
	addr            string
	lineAddr        string
	requestTimeout  time.Duration
	maxBody         int64
	subBuffer       int
	sessionTTL      time.Duration
	shutdownTimeout time.Duration
	engineOpts      []ivm.Option
	logf            func(format string, args ...any)
}

// runFollower bootstraps a replica from the first seed and serves its
// views until a signal or a terminal replication error — or, after a
// promotion, serves on as the cluster's new primary.
func runFollower(seeds []string, cfg followerConfig) error {
	// The serving layer comes up after the replica, but leader changes
	// fire from the tail goroutine; route them through an atomic pointer.
	var srvPtr atomic.Pointer[server.Server]
	rep, err := replica.Start(seeds[0], replica.Options{
		ExtraOptions: cfg.engineOpts,
		Seeds:        seeds,
		OnLeaderChange: func(u string) {
			if s := srvPtr.Load(); s != nil {
				s.SetLeaderURL(u)
			}
		},
		Logf: cfg.logf,
	})
	if err != nil {
		return err
	}
	views := rep.Views()
	cfg.logf("ivmd: following %s from version %d (epoch %d, strategy=%v semantics=%v rules=%d)",
		rep.LeaderURL(), rep.Applied(), rep.Epoch(), views.Strategy(), views.Semantics(), len(views.Program().Rules))

	// promoted flips before rep.Promote cancels the tail, so the main
	// select below can tell a promotion from a replication failure.
	var promoted atomic.Bool
	srv := server.New(views, server.Options{
		Addr:             cfg.addr,
		LineAddr:         cfg.lineAddr,
		RequestTimeout:   cfg.requestTimeout,
		MaxBodyBytes:     cfg.maxBody,
		SubscriberBuffer: cfg.subBuffer,
		SessionTTL:       cfg.sessionTTL,
		OwnViews:         true,
		LeaderURL:        rep.LeaderURL(),
		Promote: func() (uint64, error) {
			promoted.Store(true)
			epoch, err := rep.Promote()
			if err != nil {
				promoted.Store(false)
			}
			return epoch, err
		},
		ExtraMetrics: []*metrics.Registry{rep.Registry()},
		Logf:         cfg.logf,
	})
	if err := srv.Start(); err != nil {
		rep.Stop()
		views.Close()
		return err
	}
	srvPtr.Store(srv)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var repErr error
	select {
	case got := <-sig:
		cfg.logf("ivmd: received %v, shutting down", got)
	case <-rep.Done():
		if promoted.Load() {
			// Promotion retired the tail loop on purpose; this node now
			// leads the cluster and keeps serving until a signal.
			got := <-sig
			cfg.logf("ivmd: received %v, shutting down", got)
		} else {
			repErr = rep.Err()
			cfg.logf("ivmd: replication ended: %v", repErr)
		}
	}
	// Stop replication before Shutdown closes the views underneath it.
	rep.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	return repErr
}

// promote is the -promote client mode: ask the follower at base to take
// over as primary and report the outcome.
func promote(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := client.New(base, nil).Promote(ctx)
	if err != nil {
		return fmt.Errorf("promote %s: %w", base, err)
	}
	if res.Promoted {
		fmt.Printf("%s promoted: role=%s epoch=%d\n", base, res.Role, res.Epoch)
	} else {
		fmt.Printf("%s already role=%s epoch=%d\n", base, res.Role, res.Epoch)
	}
	return nil
}

func buildViews(programPath, dataPath string, opts []ivm.Option) (*ivm.Views, error) {
	if programPath == "" {
		return nil, fmt.Errorf("-program is required for an empty store")
	}
	programSrc, err := os.ReadFile(programPath)
	if err != nil {
		return nil, err
	}
	db := ivm.NewDatabase()
	if dataPath != "" {
		data, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, err
		}
		if err := db.Load(string(data)); err != nil {
			return nil, err
		}
	}
	return db.Materialize(string(programSrc), opts...)
}

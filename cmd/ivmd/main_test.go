package main

import (
	"os"
	"path/filepath"
	"testing"

	"ivm"
)

func TestBuildViews(t *testing.T) {
	dir := t.TempDir()
	program := filepath.Join(dir, "views.dl")
	data := filepath.Join(dir, "facts.dl")
	if err := os.WriteFile(program, []byte("hop(X,Y) :- link(X,Z), link(Z,Y).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(data, []byte("link(a,b).\nlink(b,c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := buildViews(program, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("hop", "a", "c") {
		t.Fatal("views built without the seeded facts")
	}

	// Program only, no data file.
	v2, err := buildViews(program, "", []ivm.Option{ivm.WithStrategy(ivm.Counting)})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(v2.Rows("hop")); n != 0 {
		t.Fatalf("no facts loaded but hop has %d rows", n)
	}

	// Error paths: missing program flag, missing files, bad rules.
	if _, err := buildViews("", "", nil); err == nil {
		t.Fatal("empty -program must fail")
	}
	if _, err := buildViews(filepath.Join(dir, "nope.dl"), "", nil); err == nil {
		t.Fatal("missing program file must fail")
	}
	if _, err := buildViews(program, filepath.Join(dir, "nope.dl"), nil); err == nil {
		t.Fatal("missing data file must fail")
	}
	badProgram := filepath.Join(dir, "bad.dl")
	os.WriteFile(badProgram, []byte("hop(X,Y) :-"), 0o644)
	if _, err := buildViews(badProgram, "", nil); err == nil {
		t.Fatal("malformed rules must fail")
	}
	badData := filepath.Join(dir, "badfacts.dl")
	os.WriteFile(badData, []byte("link(a,"), 0o644)
	if _, err := buildViews(program, badData, nil); err == nil {
		t.Fatal("malformed facts must fail")
	}
}

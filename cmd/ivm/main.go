// Command ivm materializes Datalog views over base facts and maintains
// them incrementally as deltas arrive — the counting algorithm for
// nonrecursive programs, DRed for recursive ones (Gupta, Mumick &
// Subrahmanian, SIGMOD 1993).
//
// Usage:
//
//	ivm -program views.dl [-data facts.dl] [flags] [delta files...]
//
// Each delta file (`+fact(...). -fact(...).`) is applied in order and the
// resulting view changes are printed. With -repl, an interactive session
// follows.
//
// Persistence: -store names a managed directory of checkpoints plus a
// checksummed write-ahead log; every applied delta is durably logged
// before it is acknowledged, and on restart the newest valid checkpoint
// is loaded and the log replayed. -snapshot alone keeps the legacy
// single-file save/load flow. The legacy -log flag maps onto a store at
// <log>.store, migrating any existing snapshot and log contents on
// first use.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"ivm"
	"ivm/internal/storage"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ivm:", err)
		os.Exit(1)
	}
}

func run() error {
	programPath := flag.String("program", "", "file with view rules (and optionally facts)")
	dataPath := flag.String("data", "", "file with base facts")
	strategyFlag := flag.String("strategy", "auto", "auto, counting, dred, recompute, or pf")
	semanticsFlag := flag.String("semantics", "set", "set or duplicate")
	snapshotPath := flag.String("snapshot", "", "snapshot file to load (if present) and save on exit")
	storeDir := flag.String("store", "", "managed store directory (checkpoints + write-ahead log) for crash-safe persistence")
	logPath := flag.String("log", "", "legacy delta log; now backed by a store at <log>.store")
	groupCommit := flag.Bool("group-commit", false, "batch WAL fsyncs across concurrent appenders (requires -store)")
	repl := flag.Bool("repl", false, "interactive session after loading")
	show := flag.String("show", "", "comma-separated predicates to print after loading and after each delta")
	metricsFlag := flag.Bool("metrics", false, "print a metrics exposition (name value lines) before exiting")
	flag.Parse()

	var opts []ivm.Option
	switch *strategyFlag {
	case "auto":
	case "counting":
		opts = append(opts, ivm.WithStrategy(ivm.Counting))
	case "dred":
		opts = append(opts, ivm.WithStrategy(ivm.DRed))
	case "recompute":
		opts = append(opts, ivm.WithStrategy(ivm.Recompute))
	case "pf":
		opts = append(opts, ivm.WithStrategy(ivm.PF))
	default:
		return fmt.Errorf("unknown strategy %q", *strategyFlag)
	}
	switch *semanticsFlag {
	case "set":
		opts = append(opts, ivm.WithSemantics(ivm.SetSemantics))
	case "duplicate", "dup":
		opts = append(opts, ivm.WithSemantics(ivm.DuplicateSemantics))
	default:
		return fmt.Errorf("unknown semantics %q", *semanticsFlag)
	}

	if *groupCommit {
		opts = append(opts, ivm.WithGroupCommit())
	}

	// The legacy -log flag maps onto a managed store next to the log
	// file: the epoch protocol makes the old checkpoint-then-truncate
	// crash window (which double-applied deltas on restart) impossible.
	dir := *storeDir
	if dir == "" && *logPath != "" {
		dir = *logPath + ".store"
		fmt.Printf("note: -log is now backed by the managed store %s\n", dir)
	}

	var views *ivm.Views
	var err error
	if dir != "" {
		views, err = openStore(dir, *programPath, *dataPath, *snapshotPath, *logPath, opts)
	} else {
		views, err = loadViews(*programPath, *dataPath, *snapshotPath, opts)
	}
	if err != nil {
		return err
	}
	defer views.Close()

	out := io.Writer(os.Stdout)
	fmt.Fprintf(out, "ivm: strategy=%v semantics=%v, %d rules\n",
		views.Strategy(), views.Semantics(), len(views.Program().Rules))
	showPreds := splitList(*show)
	printPreds(out, views, showPreds)

	// Store-bound views log each delta durably inside ApplyScript; by
	// the time it returns, the change is both applied and fsynced.
	apply := func(script string) error {
		ch, err := views.ApplyScript(script)
		if err != nil {
			return err
		}
		fmt.Fprint(out, ch)
		printPreds(out, views, showPreds)
		return nil
	}

	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "-- applying %s\n", path)
		if err := apply(string(data)); err != nil {
			return err
		}
	}

	if *repl {
		if err := runREPL(views, apply, os.Stdin, out); err != nil {
			return err
		}
	}

	if *metricsFlag {
		fmt.Fprintln(out, "-- metrics --")
		if _, err := views.Metrics().WriteTo(out); err != nil {
			return err
		}
	}

	if storeBound, ok := views.Store(); ok {
		// Checkpoint on clean exit so the next start loads a snapshot
		// instead of replaying the whole WAL. A crash before (or during)
		// this is fine: every acknowledged delta is already in the WAL,
		// and the epoch protocol keeps a half-finished checkpoint from
		// double-applying anything.
		if err := views.Sync(); err != nil {
			return err
		}
		fmt.Printf("checkpointed store %s\n", storeBound)
	} else if *snapshotPath != "" {
		if err := views.Save(*snapshotPath); err != nil {
			return err
		}
		fmt.Printf("saved snapshot to %s\n", *snapshotPath)
	}
	return nil
}

// openStore opens (or initializes) a managed store. An empty store is
// seeded from -program/-data — or, for migration from the legacy
// persistence flow, from an existing -snapshot file plus any deltas in
// the legacy -log, which are folded into the first checkpoint and then
// truncated. Once the store holds a checkpoint, the legacy files are
// ignored: the store is the single source of truth.
func openStore(dir, programPath, dataPath, snapshotPath, logPath string, opts []ivm.Option) (*ivm.Views, error) {
	init := func() (*ivm.Views, error) {
		v, err := loadViews(programPath, dataPath, snapshotPath, opts)
		if err != nil {
			return nil, err
		}
		if logPath != "" {
			if _, err := os.Stat(logPath); err == nil {
				l, err := storage.OpenLog(logPath)
				if err != nil {
					return nil, err
				}
				defer l.Close()
				n := 0
				if err := l.Replay(func(script string) error {
					n++
					_, err := v.ApplyScript(script)
					return err
				}); err != nil {
					return nil, fmt.Errorf("migrating legacy log %s: %w", logPath, err)
				}
				if n > 0 {
					fmt.Printf("migrated %d delta(s) from legacy log %s\n", n, logPath)
				}
			}
		}
		return v, nil
	}
	views, info, err := ivm.OpenStore(dir, init, opts...)
	if err != nil {
		return nil, err
	}
	fmt.Printf("store %s: %s\n", dir, info)
	if info.Initialized && logPath != "" {
		// The legacy log's contents are inside checkpoint epoch 1 now;
		// leaving them behind would double-apply them on a downgrade.
		if _, err := os.Stat(logPath); err == nil {
			l, err := storage.OpenLog(logPath)
			if err == nil {
				if terr := l.Truncate(); terr != nil {
					fmt.Fprintf(os.Stderr, "ivm: truncating legacy log %s: %v\n", logPath, terr)
				}
				l.Close()
			}
		}
	}
	return views, nil
}

func loadViews(programPath, dataPath, snapshotPath string, opts []ivm.Option) (*ivm.Views, error) {
	if snapshotPath != "" {
		if _, err := os.Stat(snapshotPath); err == nil {
			fmt.Printf("loading snapshot %s\n", snapshotPath)
			return ivm.LoadViews(snapshotPath, opts...)
		}
	}
	if programPath == "" {
		return nil, fmt.Errorf("-program is required (or -snapshot with an existing snapshot)")
	}
	programSrc, err := os.ReadFile(programPath)
	if err != nil {
		return nil, err
	}
	db := ivm.NewDatabase()
	if dataPath != "" {
		data, err := os.ReadFile(dataPath)
		if err != nil {
			return nil, err
		}
		if err := db.Load(string(data)); err != nil {
			return nil, err
		}
	}
	return db.Materialize(string(programSrc), opts...)
}

func runREPL(views *ivm.Views, apply func(string) error, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, `repl: enter delta clauses ("+link(a,b). -link(b,c)."), or commands:
  show <pred>      print a relation        query <goal>     e.g. query hop(a, X)
  explain <goal>   list a tuple's derivations                rules            list rules
  addrule <rule>   extend the definition   rmrule <index>   remove a rule
  stats            last maintenance stats  metrics          cumulative metrics
  version          published snapshot version
  help             this text               quit             exit`)
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "ivm> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Fprintln(out, "enter deltas like '+p(a,b). -q(c).' or a command (show/query/rules/addrule/rmrule/stats/metrics/version/quit)")
		case "show":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: show <pred>")
				continue
			}
			printPreds(out, views, fields[1:2])
		case "query":
			goal := strings.TrimSpace(strings.TrimPrefix(line, "query"))
			var res []ivm.QueryResult
			res, err = views.Query(goal)
			if err == nil {
				for _, r := range res {
					fmt.Fprintf(out, "  %s", r.Row.Tuple)
					if r.Row.Count != 1 {
						fmt.Fprintf(out, "  ×%d", r.Row.Count)
					}
					fmt.Fprintln(out)
				}
				fmt.Fprintf(out, "%d match(es)\n", len(res))
			}
		case "explain":
			goal := strings.TrimSpace(strings.TrimPrefix(line, "explain"))
			var ds []ivm.Derivation
			ds, err = views.Explain(goal)
			if err == nil {
				for i, d := range ds {
					fmt.Fprintf(out, "  derivation %d via %s\n", i+1, d.Rule)
					for _, sg := range d.Subgoals {
						mark := ""
						if sg.Negated {
							mark = "¬"
						}
						fmt.Fprintf(out, "    %s%s%s\n", mark, sg.Pred, sg.Tuple)
					}
				}
				fmt.Fprintf(out, "%d derivation(s)\n", len(ds))
			}
		case "rules":
			for i, r := range views.Program().Rules {
				fmt.Fprintf(out, "  [%d] %s\n", i, r.String())
			}
		case "addrule":
			var ch *ivm.ChangeSet
			ch, err = views.AddRule(strings.TrimSpace(strings.TrimPrefix(line, "addrule")))
			if err == nil {
				fmt.Fprint(out, ch)
			}
		case "rmrule":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: rmrule <index>")
				continue
			}
			var idx int
			idx, err = strconv.Atoi(fields[1])
			if err == nil {
				var ch *ivm.ChangeSet
				ch, err = views.RemoveRule(idx)
				if err == nil {
					fmt.Fprint(out, ch)
				}
			}
		case "stats":
			printStats(out, views)
		case "metrics":
			_, err = views.Metrics().WriteTo(out)
		case "version":
			s := views.Snapshot()
			fmt.Fprintf(out, "snapshot version %d (%d predicates)\n", s.Version(), len(s.Preds()))
		default:
			err = apply(line)
		}
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
}

func printStats(out io.Writer, views *ivm.Views) {
	if st, ok := views.CountingStats(); ok {
		fmt.Fprintf(out, "counting: delta rules=%d, delta tuples=%d, cascades stopped=%d\n",
			st.DeltaRulesEvaluated, st.DeltaTuples, st.CascadeStopped)
		return
	}
	if st, ok := views.DRedStats(); ok {
		fmt.Fprintf(out, "dred: overestimated=%d, rederived=%d, inserted=%d, rule firings=%d\n",
			st.Overestimated, st.Rederived, st.Inserted, st.RuleFirings)
		return
	}
	if st, ok := views.PFStats(); ok {
		fmt.Fprintf(out, "pf: passes=%d, overestimated=%d, rederived=%d, inserted=%d, rule firings=%d\n",
			st.Passes, st.Overestimated, st.Rederived, st.Inserted, st.RuleFirings)
		return
	}
	fmt.Fprintln(out, "no stats for this strategy")
}

func printPreds(out io.Writer, views *ivm.Views, preds []string) {
	if len(preds) == 0 {
		return
	}
	sorted := append([]string(nil), preds...)
	sort.Strings(sorted)
	for _, pred := range sorted {
		rows := views.Rows(pred)
		fmt.Fprintf(out, "%s (%d tuples):\n", pred, len(rows))
		for _, r := range rows {
			if r.Count == 1 {
				fmt.Fprintf(out, "  %s\n", r.Tuple)
			} else {
				fmt.Fprintf(out, "  %s  ×%d\n", r.Tuple, r.Count)
			}
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

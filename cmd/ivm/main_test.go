package main

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivm"
)

func testViews(t *testing.T) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`
		reach(X,Y) :- link(X,Y).
		reach(X,Y) :- reach(X,Z), link(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func runScript(t *testing.T, v *ivm.Views, script string) string {
	t.Helper()
	var out strings.Builder
	apply := func(s string) error {
		ch, err := v.ApplyScript(s)
		if err != nil {
			return err
		}
		out.WriteString(ch.String())
		return nil
	}
	if err := runREPL(v, apply, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLDeltaAndShow(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "+link(c,d).\nshow reach\nquit\n")
	if !strings.Contains(out, "Δ(reach)") {
		t.Fatalf("missing delta output:\n%s", out)
	}
	if !strings.Contains(out, "reach (6 tuples):") {
		t.Fatalf("missing show output:\n%s", out)
	}
}

func TestREPLQuery(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "query reach(a, X)\nquit\n")
	if !strings.Contains(out, "2 match(es)") {
		t.Fatalf("query output:\n%s", out)
	}
}

func TestREPLRulesAddRemove(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "rules\naddrule reach(X,Y) :- tunnel(X,Y).\n+tunnel(x,y).\nrmrule 2\nrules\nquit\n")
	if !strings.Contains(out, "[0] reach(X, Y) :- link(X, Y).") {
		t.Fatalf("rules listing:\n%s", out)
	}
	if !strings.Contains(out, "Δ(reach) = {(x, y)}") {
		t.Fatalf("tunnel fact must derive reach(x,y):\n%s", out)
	}
	if !strings.Contains(out, "Δ(reach) = {(x, y) -1}") {
		t.Fatalf("rmrule must retract reach(x,y):\n%s", out)
	}
	if v.Has("reach", "x", "y") {
		t.Fatal("tunnel rule removed, derivation must be gone")
	}
}

func TestREPLStatsAndErrors(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "-link(a,b).\nstats\n-link(zz,qq).\nbad syntax here\nquit\n")
	if !strings.Contains(out, "dred: overestimated=") {
		t.Fatalf("stats:\n%s", out)
	}
	if strings.Count(out, "error:") != 2 {
		t.Fatalf("expected two error lines:\n%s", out)
	}
}

func TestREPLVersion(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "version\n+link(q,r).\nversion\nquit\n")
	if !strings.Contains(out, "snapshot version 1 (") {
		t.Fatalf("initial version:\n%s", out)
	}
	if !strings.Contains(out, "snapshot version 2 (") {
		t.Fatalf("version must advance after an applied delta:\n%s", out)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("splitList: %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty")
	}
}

func TestREPLExplain(t *testing.T) {
	v := testViews(t)
	out := runScript(t, v, "explain reach(a, c)\nquit\n")
	if !strings.Contains(out, "1 derivation(s)") || !strings.Contains(out, "link(b, c)") {
		t.Fatalf("explain output:\n%s", out)
	}
}

func TestOpenStoreMigratesLegacyLogFile(t *testing.T) {
	// End-to-end migration: a -log file written by the pre-checksum
	// Append (bare `[len u32][payload]` records) plus -program/-data must
	// seed the store with every logged delta applied.
	dir := t.TempDir()
	programPath := filepath.Join(dir, "views.dl")
	dataPath := filepath.Join(dir, "facts.dl")
	logPath := filepath.Join(dir, "delta.log")
	if err := os.WriteFile(programPath, []byte("hop(X,Y) :- link(X,Z), link(Z,Y).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dataPath, []byte("link(a,b). link(b,c).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var legacy []byte
	for _, s := range []string{"+link(c,d).", "+link(d,e)."} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(s)))
		legacy = append(legacy, hdr[:]...)
		legacy = append(legacy, s...)
	}
	if err := os.WriteFile(logPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	v, err := openStore(filepath.Join(dir, "state.store"), programPath, dataPath, "", logPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for _, want := range [][2]string{{"a", "c"}, {"b", "d"}, {"c", "e"}} {
		if !v.Has("hop", want[0], want[1]) {
			t.Fatalf("hop(%s,%s) missing: legacy log deltas were not migrated", want[0], want[1])
		}
	}
	// The migrated contents live in the store's first checkpoint; the
	// legacy log must be truncated so a downgrade cannot double-apply.
	if st, err := os.Stat(logPath); err != nil || st.Size() != 0 {
		t.Fatalf("legacy log must be truncated after migration (err=%v size=%d)", err, st.Size())
	}
}

package ivm

import (
	"strings"
)

// Subgoal is one instantiated body literal of a derivation.
type Subgoal struct {
	// Pred is the subgoal's predicate (for aggregates, the grouped
	// predicate's GROUPBY image).
	Pred string
	// Tuple is the matched tuple (for negated subgoals, the tuple whose
	// absence satisfied the literal; for aggregates, groupVals + result).
	Tuple Tuple
	// Negated marks absence-satisfied subgoals.
	Negated bool
	// Aggregate marks GROUPBY-image subgoals.
	Aggregate bool
	// Count is the matched tuple's stored derivation count (1 for
	// negations).
	Count int64
}

// Derivation is one way a view tuple is derived: a rule and the ground
// body subgoals instantiating it.
type Derivation struct {
	// Rule renders the applied rule.
	Rule string
	// RuleIndex is the rule's position in Program().Rules.
	RuleIndex int
	// Subgoals are the instantiated body literals, in evaluation order.
	Subgoals []Subgoal
}

// Explain enumerates the derivations of a ground view tuple — the
// alternatives the counting algorithm counts without storing ("we store
// only the number of derivations, not the derivations themselves",
// paper Section 1):
//
//	ds, err := v.Explain(`hop(a, c)`)
//	// ds[0].Subgoals → link(a,b), link(b,c)
//	// ds[1].Subgoals → link(a,d), link(d,c)
//
// The goal must be ground (no variables). One level of derivation is
// returned; explain a subgoal tuple to drill deeper. For recursive views
// under DRed, derivations reflect the current materialized state.
//
// The derivations are enumerated against the current published version
// (group tables are rebuilt from the version's relations, so no engine
// state is touched and no lock is taken — Explain never blocks Apply).
func (v *Views) Explain(goal string) ([]Derivation, error) {
	return v.Snapshot().Explain(goal)
}

// ExplainPlan renders the join plan the cost-based planner chooses for
// every rule deriving pred, against the current published version's
// statistics (see Snapshot.ExplainPlan).
func (v *Views) ExplainPlan(pred string) ([]RulePlan, error) {
	return v.Snapshot().ExplainPlan(pred)
}

// derivationKey canonically encodes a derivation's ground subgoals for
// ordering.
func derivationKey(d Derivation) string {
	var sb strings.Builder
	for _, g := range d.Subgoals {
		sb.WriteString(g.Pred)
		sb.WriteByte('(')
		sb.WriteString(g.Tuple.Key())
		sb.WriteString(");")
	}
	return sb.String()
}

package ivm

import (
	"fmt"
	"sort"
	"strings"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/parser"
)

// Subgoal is one instantiated body literal of a derivation.
type Subgoal struct {
	// Pred is the subgoal's predicate (for aggregates, the grouped
	// predicate's GROUPBY image).
	Pred string
	// Tuple is the matched tuple (for negated subgoals, the tuple whose
	// absence satisfied the literal; for aggregates, groupVals + result).
	Tuple Tuple
	// Negated marks absence-satisfied subgoals.
	Negated bool
	// Aggregate marks GROUPBY-image subgoals.
	Aggregate bool
	// Count is the matched tuple's stored derivation count (1 for
	// negations).
	Count int64
}

// Derivation is one way a view tuple is derived: a rule and the ground
// body subgoals instantiating it.
type Derivation struct {
	// Rule renders the applied rule.
	Rule string
	// RuleIndex is the rule's position in Program().Rules.
	RuleIndex int
	// Subgoals are the instantiated body literals, in evaluation order.
	Subgoals []Subgoal
}

// Explain enumerates the derivations of a ground view tuple — the
// alternatives the counting algorithm counts without storing ("we store
// only the number of derivations, not the derivations themselves",
// paper Section 1):
//
//	ds, err := v.Explain(`hop(a, c)`)
//	// ds[0].Subgoals → link(a,b), link(b,c)
//	// ds[1].Subgoals → link(a,d), link(d,c)
//
// The goal must be ground (no variables). One level of derivation is
// returned; explain a subgoal tuple to drill deeper. For recursive views
// under DRed, derivations reflect the current materialized state.
func (v *Views) Explain(goal string) ([]Derivation, error) {
	a, err := parser.ParseGoal(goal)
	if err != nil {
		return nil, err
	}
	tuple := make(Tuple, len(a.Args))
	for i, t := range a.Args {
		c, ok := t.(datalog.Const)
		if !ok {
			return nil, fmt.Errorf("ivm: Explain needs a ground goal; %s is a variable", t)
		}
		tuple[i] = c.Value
	}

	// Explain may build indexes and group tables: take the write lock.
	v.mu.Lock()
	defer v.mu.Unlock()

	prog := v.Program()
	db, sem, gts := v.explainState()
	var out []Derivation
	for _, ri := range prog.RulesFor(a.Pred) {
		rule := prog.Rules[ri]
		srcs, err := eval.SourcesAt(rule, ri, db, sem, gts)
		if err != nil {
			return nil, err
		}
		matches, err := eval.Explain(rule, srcs, tuple)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			d := Derivation{Rule: rule.String(), RuleIndex: ri}
			for _, g := range m {
				d.Subgoals = append(d.Subgoals, Subgoal{
					Pred: g.Pred, Tuple: g.Tuple,
					Negated: g.Negated, Aggregate: g.Aggregate, Count: g.Count,
				})
			}
			out = append(out, d)
		}
	}
	// Derivation enumeration walks hash relations, so within a rule the
	// match order is unspecified; sort for deterministic output.
	sort.Slice(out, func(i, j int) bool {
		if out[i].RuleIndex != out[j].RuleIndex {
			return out[i].RuleIndex < out[j].RuleIndex
		}
		return derivationKey(out[i]) < derivationKey(out[j])
	})
	return out, nil
}

// derivationKey canonically encodes a derivation's ground subgoals for
// ordering.
func derivationKey(d Derivation) string {
	var sb strings.Builder
	for _, g := range d.Subgoals {
		sb.WriteString(g.Pred)
		sb.WriteByte('(')
		sb.WriteString(g.Tuple.Key())
		sb.WriteString(");")
	}
	return sb.String()
}

// explainState returns the storage, semantics and group tables of the
// active engine for derivation enumeration.
func (v *Views) explainState() (*eval.DB, Semantics, map[eval.RuleLit]*eval.GroupTable) {
	switch {
	case v.c != nil:
		return v.c.DB(), v.c.InternalSemantics(), v.c.GroupTables()
	case v.dr != nil:
		return v.dr.DB(), SetSemantics, v.dr.GroupTables()
	case v.rc != nil:
		return v.rc.DB(), v.rc.Semantics(), nil
	default:
		return v.pf.DB(), SetSemantics, nil
	}
}

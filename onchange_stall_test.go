package ivm_test

// Regression test for the reader-stall bug: OnChange handlers used to
// run while Apply still held the Views lock, so a slow handler extended
// the window in which every reader blocked. Handlers now run on the
// maintainer goroutine after the new version is published and outside
// the write lock — a blocked handler must not delay readers, and those
// readers must already see the state the handler is being notified
// about. Apply still returns only after its batch's handlers complete.

import (
	"testing"
	"time"

	"ivm"
)

func TestOnChangeHandlerDoesNotStallReaders(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	v.OnChange("hop", func(pred string, ins, del []ivm.Row) {
		close(entered)
		<-release
	})

	applyDone := make(chan struct{})
	go func() {
		defer close(applyDone)
		if _, err := v.Apply(ivm.NewUpdate().Insert("link", "b", "c")); err != nil {
			t.Error(err)
		}
	}()

	// The handler is now blocked mid-notification. Every read below
	// must complete promptly; if handlers still ran under a lock the
	// reads (or the test) would hang until release.
	<-entered
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		// Handlers fire after publish, so readers already see the new
		// version, including the derived consequence hop(a,c).
		if !v.Has("link", "b", "c") {
			t.Error("reader does not see the inserted base tuple while the handler is blocked")
		}
		if !v.Has("hop", "a", "c") {
			t.Error("reader does not see the derived tuple while the handler is blocked")
		}
		s := v.Snapshot()
		if got := len(s.Rows("hop")); got != 1 {
			t.Errorf("snapshot sees %d hop rows during blocked handler, want 1", got)
		}
		if _, err := v.Query(`hop(a, X)`); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-readsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("readers stalled behind a blocked OnChange handler")
	}

	// Ordering contract: Apply has not returned yet — it waits for its
	// batch's handlers.
	select {
	case <-applyDone:
		t.Fatal("Apply returned before its OnChange handler completed")
	default:
	}
	close(release)
	select {
	case <-applyDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Apply did not return after the handler was released")
	}
}

package ivm_test

// Godoc examples: runnable documentation with verified output.

import (
	"fmt"
	"sort"

	"ivm"
)

// Example_quickstart reproduces the paper's Example 1.1: materialize the
// hop view, delete link(a,b), and observe that counting keeps hop(a,c)
// (one derivation left) while hop(a,e) disappears.
func Example_quickstart() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`)

	views, err := db.Materialize(
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", views.Strategy())
	fmt.Println("count(hop(a,c)):", views.Count("hop", "a", "c"))

	changes, err := views.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		panic(err)
	}
	fmt.Print(changes)
	fmt.Println("hop(a,c) survives:", views.Has("hop", "a", "c"))
	fmt.Println("hop(a,e) survives:", views.Has("hop", "a", "e"))
	// Output:
	// strategy: counting
	// count(hop(a,c)): 2
	// Δ(hop) = {(a, c) -1, (a, e) -1}
	// hop(a,c) survives: true
	// hop(a,e) survives: false
}

// ExampleViews_AddRule shows Section 7's rule insertion maintenance on a
// recursive view.
func ExampleViews_AddRule() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). tunnel(b,c).`)
	views, err := db.Materialize(`
		reach(X,Y) :- link(X,Y).
		reach(X,Y) :- reach(X,Z), reach(Z,Y).
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println("a reaches c:", views.Has("reach", "a", "c"))

	if _, err := views.AddRule(`reach(X,Y) :- tunnel(X,Y).`); err != nil {
		panic(err)
	}
	fmt.Println("after the tunnel rule, a reaches c:", views.Has("reach", "a", "c"))
	// Output:
	// a reaches c: false
	// after the tunnel rule, a reaches c: true
}

// ExampleViews_Explain enumerates the derivations behind a stored count.
func ExampleViews_Explain() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). link(a,d). link(d,c).`)
	views, err := db.Materialize(
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics),
	)
	if err != nil {
		panic(err)
	}
	ds, err := views.Explain(`hop(a, c)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("derivations:", len(ds))
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = fmt.Sprintf("%s%s and %s%s",
			d.Subgoals[0].Pred, d.Subgoals[0].Tuple,
			d.Subgoals[1].Pred, d.Subgoals[1].Tuple)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// derivations: 2
	// link(a, b) and link(b, c)
	// link(a, d) and link(d, c)
}

// ExampleViews_Query shows goal queries with variable bindings.
func ExampleViews_Query() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(a,c). link(b,c).`)
	views, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		panic(err)
	}
	results, err := views.Query(`link(a, X)`)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Println("X =", r.Bindings["X"])
	}
	// Output:
	// X = b
	// X = c
}

// ExampleDatabase_MaterializeSQL drives the engine from SQL, the paper's
// own surface syntax in Example 1.1.
func ExampleDatabase_MaterializeSQL() {
	db := ivm.NewDatabase()
	views, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b'), ('b','c');
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println("hop(a,c):", views.Has("hop", "a", "c"))

	if _, err := views.Apply(ivm.NewUpdate().Delete("link", "b", "c")); err != nil {
		panic(err)
	}
	fmt.Println("after DELETE, hop(a,c):", views.Has("hop", "a", "c"))
	// Output:
	// hop(a,c): true
	// after DELETE, hop(a,c): false
}

package ivm

import (
	"fmt"

	"ivm/internal/sqlview"
	"ivm/internal/value"
)

// MaterializeSQL is Materialize for SQL view definitions — the form the
// paper's introduction uses (Example 1.1's CREATE VIEW). The script may
// contain CREATE TABLE declarations (schemas), CREATE VIEW statements
// (translated to Datalog rules: joins, NOT EXISTS → negation, GROUP BY +
// aggregate → GROUPBY subgoals, UNION → multiple rules) and INSERT
// statements (loaded as base facts):
//
//	CREATE TABLE link(s, d);
//	INSERT INTO link VALUES ('a','b'), ('b','c');
//	CREATE VIEW hop(s, d) AS
//	  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
//
// SELECT DISTINCT views require set semantics. The views are maintained
// exactly like Datalog-defined ones.
func (d *Database) MaterializeSQL(sqlSrc string, opts ...Option) (*Views, error) {
	script, err := sqlview.Parse(sqlSrc)
	if err != nil {
		return nil, err
	}
	res, err := sqlview.Translate(script)
	if err != nil {
		return nil, err
	}
	cfg := newConfig(opts)
	if res.RequiresSet && cfg.semantics == DuplicateSemantics {
		return nil, fmt.Errorf("ivm: SELECT DISTINCT views require set semantics")
	}
	for _, f := range script.Facts {
		d.base.Ensure(f.Table, len(f.Row)).Add(value.Tuple(f.Row), 1)
	}
	v, err := d.MaterializeProgram(res.Program, res.Program.String(), opts...)
	if err != nil {
		return nil, err
	}
	if len(res.AuxPreds) > 0 {
		v.hidden = make(map[string]bool, len(res.AuxPreds))
		for _, p := range res.AuxPreds {
			v.hidden[p] = true
		}
	}
	return v, nil
}

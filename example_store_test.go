package ivm_test

// Godoc examples for durability and concurrency: the crash-safe store,
// repeatable-read snapshots, and retry-safe applies.

import (
	"fmt"
	"os"

	"ivm"
)

// ExampleOpenStore opens a store directory, applies a durable update,
// and reopens it: the init function runs only on the first open, and
// recovery replays the WAL records appended since the last checkpoint.
func ExampleOpenStore() {
	dir, err := os.MkdirTemp("", "ivm-example-store")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	open := func() (*ivm.Views, ivm.RecoveryInfo, error) {
		return ivm.OpenStore(dir, func() (*ivm.Views, error) {
			db := ivm.NewDatabase()
			db.MustLoad(`link(a,b). link(b,c).`)
			return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
		})
	}

	v, _, err := open()
	if err != nil {
		panic(err)
	}
	// Fsynced to the WAL before ApplyScript returns: the update
	// survives any crash from here on.
	if _, err := v.ApplyScript(`+link(c,d).`); err != nil {
		panic(err)
	}
	v.Close()

	v, info, err := open() // state recovers; init does not run again
	if err != nil {
		panic(err)
	}
	defer v.Close()
	fmt.Println(v.Has("hop", "b", "d"), info.Replayed)
	// Output: true 1
}

// ExampleViews_Snapshot pins a repeatable-read version: reads through
// the snapshot keep observing it even while later applies commit.
func ExampleViews_Snapshot() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		panic(err)
	}

	s := v.Snapshot() // one atomic load; never expires, never locks
	if _, err := v.ApplyScript(`+link(c,d).`); err != nil {
		panic(err)
	}

	fmt.Println("pinned:", s.Count("hop", "b", "d"))
	fmt.Println("current:", v.Count("hop", "b", "d"))
	// Output:
	// pinned: 0
	// current: 1
}

// ExampleViews_ApplyIdempotent retries an update with the same
// idempotency key: the duplicate is answered from the dedup window
// instead of being applied twice.
func ExampleViews_ApplyIdempotent() {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`rev(Y,X) :- link(X,Y).`)
	if err != nil {
		panic(err)
	}

	u := ivm.NewUpdate().Insert("link", "b", "c")
	_, deduped, err := v.ApplyIdempotent("msg-42", u)
	if err != nil {
		panic(err)
	}
	fmt.Println(deduped, v.Count("rev", "c", "b"))

	// A retry — say the caller crashed before recording the ack —
	// re-sends the same key and must not double-apply.
	_, deduped, err = v.ApplyIdempotent("msg-42", u)
	if err != nil {
		panic(err)
	}
	fmt.Println(deduped, v.Count("rev", "c", "b"))
	// Output:
	// false 1
	// true 1
}

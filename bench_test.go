package ivm_test

// One testing.B benchmark per reproduction experiment (DESIGN.md /
// EXPERIMENTS.md). cmd/ivmbench prints the full paper-style tables; these
// benches expose the same workloads to `go test -bench` so regressions
// are visible in standard tooling. Experiment E11 is property-based and
// lives in property_test.go.

import (
	"fmt"
	"testing"

	"ivm"
	"ivm/internal/eval"
	"ivm/internal/experiments"
	"ivm/internal/relation"
	"ivm/internal/workload"
)

const (
	benchNodes = 150
	benchEdges = 900
)

func benchLink() *relation.Relation {
	return workload.RandomGraph(experiments.Rng(1), benchNodes, benchEdges)
}

// applyRounds repeatedly applies a delete+reinsert pair so the engine
// state returns to its start each two iterations (steady-state benching).
func applyRounds(b *testing.B, apply func(d *relation.Relation) error, link *relation.Relation) {
	b.Helper()
	del := workload.SampleDeletes(experiments.Rng(7), link, 1)
	var ins *relation.Relation
	del.Each(func(r relation.Row) {
		ins = relation.New(del.Arity())
		ins.Add(r.Tuple, 1)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := del
		if i%2 == 1 {
			d = ins
		}
		if err := apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1HopMaintenance — Example 1.1 at scale: single-edge
// maintenance of the hop view under counting.
func BenchmarkE1HopMaintenance(b *testing.B) {
	link := benchLink()
	e := experiments.CountingEngine(experiments.HopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
	applyRounds(b, func(d *relation.Relation) error {
		_, err := e.Apply(experiments.DeltaOf(d))
		return err
	}, link)
}

// BenchmarkE2TriHop — Example 4.2 at scale: two-stratum maintenance.
func BenchmarkE2TriHop(b *testing.B) {
	link := benchLink()
	e := experiments.CountingEngine(experiments.TriHopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
	applyRounds(b, func(d *relation.Relation) error {
		_, err := e.Apply(experiments.DeltaOf(d))
		return err
	}, link)
}

// BenchmarkE3SetOptimization — statement (2) ablation: the same batch
// with and without the set-semantics cascade cut.
func BenchmarkE3SetOptimization(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "with-stmt2"
		if disable {
			name = "without-stmt2"
		}
		b.Run(name, func(b *testing.B) {
			link := workload.RandomGraph(experiments.Rng(3), benchNodes/3, benchEdges/2)
			db := ivm.NewDatabase()
			for _, row := range link.SortedRows() {
				db.InsertTuple("link", row.Tuple, 1)
			}
			opts := []ivm.Option{ivm.WithSemantics(ivm.SetSemantics)}
			if disable {
				opts = append(opts, ivm.WithoutSetOptimization())
			}
			v, err := db.Materialize(experiments.TriHopProgram, opts...)
			if err != nil {
				b.Fatal(err)
			}
			applyRounds(b, func(d *relation.Relation) error {
				u := ivm.UpdateFromRelations(experiments.DeltaOf(d))
				_, err := v.Apply(u)
				return err
			}, link)
		})
	}
}

// BenchmarkE4Negation — only_tri_hop maintenance (Definition 6.1).
func BenchmarkE4Negation(b *testing.B) {
	link := workload.RandomGraph(experiments.Rng(4), benchNodes/2, benchEdges/2)
	e := experiments.CountingEngine(experiments.OnlyTriHopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
	applyRounds(b, func(d *relation.Relation) error {
		_, err := e.Apply(experiments.DeltaOf(d))
		return err
	}, link)
}

// BenchmarkE5Aggregation — min_cost_hop maintenance (Algorithm 6.1).
func BenchmarkE5Aggregation(b *testing.B) {
	link := workload.RandomWeightedGraph(experiments.Rng(5), benchNodes/2, benchEdges/2, 100)
	e := experiments.CountingEngine(experiments.MinCostHopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
	applyRounds(b, func(d *relation.Relation) error {
		_, err := e.Apply(experiments.DeltaOf(d))
		return err
	}, link)
}

// BenchmarkE6CountingVsRecompute — the heuristic-of-inertia sweep: one
// sub-bench per Δ-fraction per engine.
func BenchmarkE6CountingVsRecompute(b *testing.B) {
	link := benchLink()
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.5} {
		k := int(float64(link.Len()) * frac)
		if k < 1 {
			k = 1
		}
		for _, engine := range []string{"counting", "recompute"} {
			b.Run(fmt.Sprintf("%s/delta=%.1f%%", engine, frac*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					d := workload.SampleDeletes(experiments.Rng(int64(60+i)), link, k)
					var apply func() error
					if engine == "counting" {
						e := experiments.CountingEngine(experiments.TriHopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
						apply = func() error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
					} else {
						e := experiments.RecomputeEngine(experiments.TriHopProgram, experiments.LinkDB(link.Clone()), eval.Duplicate)
						apply = func() error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
					}
					b.StartTimer()
					if err := apply(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE7CountOverhead — view evaluation with and without count
// tracking (Section 5's "little or no cost").
func BenchmarkE7CountOverhead(b *testing.B) {
	link := benchLink()
	db := experiments.LinkDB(link)
	for _, track := range []bool{true, false} {
		name := "with-counts"
		if !track {
			name = "without-counts"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.Evaluate(experiments.TriHopProgram, db, eval.Set, track)
			}
		})
	}
}

// BenchmarkE8DRedTC — DRed vs recompute on recursive transitive closure.
func BenchmarkE8DRedTC(b *testing.B) {
	link := workload.LayeredDAG(experiments.Rng(81), 14, 8, 3)
	for _, engine := range []string{"dred", "recompute"} {
		b.Run(engine, func(b *testing.B) {
			var apply func(d *relation.Relation) error
			if engine == "dred" {
				e := experiments.DRedEngine(experiments.TCProgram, experiments.LinkDB(link.Clone()))
				apply = func(d *relation.Relation) error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
			} else {
				e := experiments.RecomputeEngine(experiments.TCProgram, experiments.LinkDB(link.Clone()), eval.Set)
				apply = func(d *relation.Relation) error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
			}
			applyRounds(b, apply, link)
		})
	}
}

// BenchmarkE9DRedVsPF — the fragmentation gap (Section 2's
// order-of-magnitude claim).
func BenchmarkE9DRedVsPF(b *testing.B) {
	link := workload.LayeredDAG(experiments.Rng(91), 12, 8, 3)
	k := 8
	for _, engine := range []string{"dred", "pf-per-tuple"} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := workload.ClusteredDeletes(link, k)
				var apply func() error
				if engine == "dred" {
					e := experiments.DRedEngine(experiments.TCProgram, experiments.LinkDB(link.Clone()))
					apply = func() error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
				} else {
					e := experiments.PFEngine(experiments.TCProgram, experiments.LinkDB(link.Clone()), true)
					apply = func() error { _, err := e.Apply(experiments.DeltaOf(d)); return err }
				}
				b.StartTimer()
				if err := apply(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10RuleChange — incremental rule insertion (Section 7).
func BenchmarkE10RuleChange(b *testing.B) {
	link := workload.RandomGraph(experiments.Rng(10), benchNodes/2, benchEdges/3)
	hyper := workload.RandomGraph(experiments.Rng(11), benchNodes/2, 8)
	rule := experiments.MustRules(`tc(X,Y) :- hyperlink(X,Y).`).Rules[0]
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := experiments.LinkDB(link.Clone())
		db.Put("hyperlink", hyper.Clone())
		e := experiments.DRedEngine(experiments.TCProgram, db)
		b.StartTimer()
		if _, err := e.AddRule(rule); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12InsertOnly — pure insertion maintenance of transitive
// closure (semi-naive, no deletion machinery). A layered DAG keeps the
// untimed undo pass cheap so the timer isolates the insert.
func BenchmarkE12InsertOnly(b *testing.B) {
	link := workload.LayeredDAG(experiments.Rng(12), 12, 8, 3)
	e := experiments.DRedEngine(experiments.TCProgram, experiments.LinkDB(link.Clone()))
	ins := workload.ClusteredDeletes(link, 4).Negate() // 4 forward edges...
	// ...that we first remove from the engine so each timed op re-inserts
	// them into a state where they are absent.
	del := ins.Negate()
	if _, err := e.Apply(experiments.DeltaOf(del)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Apply(experiments.DeltaOf(ins)); err != nil {
			b.Fatal(err)
		}
		// Undo outside the timer so only insertion propagation is measured.
		b.StopTimer()
		if _, err := e.Apply(experiments.DeltaOf(del)); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkE13RecursiveCounting — counted delta fixpoints on DAG
// transitive closure ([GKM92], Section 8's future work).
func BenchmarkE13RecursiveCounting(b *testing.B) {
	link := workload.LayeredDAG(experiments.Rng(130), 10, 6, 2)
	db := ivm.NewDatabase()
	for _, row := range link.SortedRows() {
		db.InsertTuple("link", row.Tuple, 1)
	}
	v, err := db.Materialize(experiments.TCProgram,
		ivm.WithStrategy(ivm.Counting),
		ivm.WithSemantics(ivm.DuplicateSemantics),
		ivm.WithRecursiveCounting(500))
	if err != nil {
		b.Fatal(err)
	}
	del := workload.SampleDeletes(experiments.Rng(131), link, 1)
	var ins *relation.Relation
	del.Each(func(r relation.Row) {
		ins = relation.New(2)
		ins.Add(r.Tuple, 1)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := del
		if i%2 == 1 {
			d = ins
		}
		if _, err := v.Apply(ivm.UpdateFromRelations(experiments.DeltaOf(d))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSpeedup — the E14 sweep through standard tooling:
// maintenance of the tri_hop view across worker counts × batch sizes ×
// base sizes, through the public API. The sub-benchmark names encode the
// configuration (workers/w2 means two evaluation workers); comparing
// w1 vs wN at fixed batch/base gives the speedup. Results are
// bit-identical at every setting — only latency changes — so this is a
// pure scheduling benchmark. Meaningful speedups need multiple CPUs.
// BenchmarkPlannerSkew — the cost-based planner on skewed cardinalities:
// hot is small with a 1000-way fan-out per key, wide is large but
// near-unique, and the timed Δreq keys hit hot's fan-out while missing
// wide (they draw from the half of hot's keys that wide does not
// overlap). The planner probes wide first (fan-out ≈ 1, early exit); the
// greedy order enumerates hot's 1000 rows per delta only to discard
// every one at the wide probe.
func BenchmarkPlannerSkew(b *testing.B) {
	const (
		hotKeys, fanout = 8, 1000
		wideRows        = 20000
		overlap         = 4 // wide covers h0..h3; deltas request h4..h7
	)
	hot, wide := workload.SkewedJoin(hotKeys, fanout, wideRows, overlap)
	for _, planner := range []bool{true, false} {
		name := "planner-on"
		if !planner {
			name = "planner-off"
		}
		b.Run(name, func(b *testing.B) {
			db := ivm.NewDatabase()
			for _, row := range hot.SortedRows() {
				db.InsertTuple("hot", row.Tuple, 1)
			}
			for _, row := range wide.SortedRows() {
				db.InsertTuple("wide", row.Tuple, 1)
			}
			opts := []ivm.Option{}
			if !planner {
				opts = append(opts, ivm.WithoutPlanner())
			}
			v, err := db.Materialize(`out(Y,Z) :- req(X), hot(X,Y), wide(X,Z).`, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := ivm.NewUpdate()
				key := workload.SkewedReqKey(hotKeys, overlap+(i/2)%(hotKeys-overlap)).String()
				if i%2 == 0 {
					u.Insert("req", key)
				} else {
					u.Delete("req", key)
				}
				if _, err := v.Apply(u); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelSpeedup(b *testing.B) {
	for _, size := range []struct {
		name         string
		nodes, edges int
	}{
		{"base-small", 80, 400},
		{"base-large", benchNodes, benchEdges},
	} {
		link := workload.RandomGraph(experiments.Rng(14), size.nodes, size.edges)
		for _, batch := range []int{1, 16} {
			del := workload.SampleDeletes(experiments.Rng(15), link, batch)
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("%s/batch%d/w%d", size.name, batch, workers)
				b.Run(name, func(b *testing.B) {
					db := ivm.NewDatabase()
					for _, row := range link.SortedRows() {
						db.InsertTuple("link", row.Tuple, 1)
					}
					v, err := db.Materialize(experiments.TriHopProgram,
						ivm.WithParallelism(workers))
					if err != nil {
						b.Fatal(err)
					}
					ins := del.Negate()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						d := del
						if i%2 == 1 {
							d = ins
						}
						if _, err := v.Apply(ivm.UpdateFromRelations(experiments.DeltaOf(d))); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// Package ivm is an incremental view maintenance engine for relational /
// deductive databases, implementing the two algorithms of Gupta, Mumick &
// Subrahmanian, "Maintaining Views Incrementally" (SIGMOD 1993):
//
//   - the counting algorithm for nonrecursive views (with stratified
//     negation and aggregation, under set or SQL duplicate semantics),
//     which stores the number of alternative derivations of every view
//     tuple and computes exactly the tuples inserted into or deleted from
//     each view; and
//   - the DRed (Delete and Rederive) algorithm for general recursive
//     views (set semantics), which deletes an overestimate, rederives the
//     survivors, and propagates insertions — and also maintains views
//     when rules are added to or removed from the view definition.
//
// Views are defined in an extended Datalog dialect:
//
//	db := ivm.NewDatabase()
//	db.MustLoad(`link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`)
//	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
//	changes, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
//
// The strategy is chosen automatically (counting for nonrecursive
// programs, DRed for recursive ones) and can be forced with WithStrategy.
package ivm

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ivm/internal/baseline/pf"
	"ivm/internal/baseline/recompute"
	"ivm/internal/core/counting"
	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/sched"
	"ivm/internal/storage"
	"ivm/internal/strata"
	"ivm/internal/value"
)

// Value is a scalar database value (int64, float64, or string).
type Value = value.Value

// Tuple is a fixed-arity sequence of values.
type Tuple = value.Tuple

// Row pairs a tuple with its signed derivation count.
type Row = relation.Row

// T builds a Tuple from Go scalars (int, int64, float64, string, Value).
func T(vals ...any) Tuple { return value.T(vals...) }

// ErrStoreClosed is returned (wrapped) by Apply, Sync, and rule edits on
// store-bound views after Close: the binding remains so durability is
// never dropped silently. Match with errors.Is.
var ErrStoreClosed = storage.ErrStoreClosed

// Int, Float and Str build scalar values.
func Int(i int64) Value     { return value.NewInt(i) }
func Float(f float64) Value { return value.NewFloat(f) }
func Str(s string) Value    { return value.NewString(s) }

// Semantics selects set vs SQL duplicate (multiset) semantics.
type Semantics = eval.Semantics

// Tracer receives maintenance trace events: batch start/end, per-stratum
// completion, and per-rule evaluation. Implementations must be safe for
// the goroutine running Apply; a nil tracer costs one pointer check per
// event site. See FuncTracer for a closure-based implementation.
type Tracer = metrics.Tracer

// FuncTracer is a Tracer assembled from optional callbacks; nil fields
// are skipped.
type FuncTracer = metrics.FuncTracer

// MetricsSnapshot is an immutable point-in-time copy of the views'
// metric registry: monotonic counters, gauges, and duration histograms.
// Render it with WriteTo (sorted `name value` lines) or read individual
// series with Counter/Gauge.
type MetricsSnapshot = metrics.Snapshot

const (
	// SetSemantics treats every relation as a set (counts still track
	// per-stratum derivations internally, Section 5.1 of the paper).
	SetSemantics = eval.Set
	// DuplicateSemantics is SQL multiset semantics; view counts are true
	// multiplicities. Nonrecursive programs only.
	DuplicateSemantics = eval.Duplicate
)

// Strategy selects the maintenance algorithm.
type Strategy int

const (
	// Auto uses Counting for nonrecursive programs and DRed for
	// recursive ones — the paper's recommendation.
	Auto Strategy = iota
	// Counting uses Algorithm 4.1 (nonrecursive views only).
	Counting
	// DRed uses the Delete-and-Rederive algorithm (set semantics).
	DRed
	// Recompute re-evaluates views from scratch on every change (the
	// non-incremental baseline).
	Recompute
	// PF uses the fragmented Propagation/Filtration-style baseline.
	PF
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Counting:
		return "counting"
	case DRed:
		return "dred"
	case Recompute:
		return "recompute"
	case PF:
		return "pf"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Database holds base (edb) relations. Materialize snapshots the current
// base state into a Views instance; subsequent changes must flow through
// Views.Apply so the views stay consistent.
type Database struct {
	base *eval.DB
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return &Database{base: eval.NewDB()} }

// Load parses and inserts ground facts, e.g. `link(a,b). link(b,c).`.
// Facts may carry multiplicities: `link(a,b) * 3.`.
func (d *Database) Load(src string) error {
	facts, err := parser.ParseDelta(src)
	if err != nil {
		return err
	}
	for _, f := range facts {
		d.base.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return nil
}

// MustLoad is Load that panics on error (for tests and examples).
func (d *Database) MustLoad(src string) {
	if err := d.Load(src); err != nil {
		panic(err)
	}
}

// Insert adds one base tuple with count 1.
func (d *Database) Insert(pred string, vals ...any) {
	t := value.T(vals...)
	d.base.Ensure(pred, len(t)).Add(t, 1)
}

// InsertTuple adds a base tuple with an explicit count.
func (d *Database) InsertTuple(pred string, t Tuple, count int64) {
	d.base.Ensure(pred, len(t)).Add(t, count)
}

// Rows returns the stored rows of a base relation, sorted.
func (d *Database) Rows(pred string) []Row {
	r := d.base.Get(pred)
	if r == nil {
		return nil
	}
	return r.SortedRows()
}

// Views is a set of materialized views maintained incrementally over a
// snapshot of a Database.
//
// Concurrency model (see DESIGN.md §10): reads (Rows, Count, Has,
// Query, Explain, Snapshot, the *Stats accessors) pin the current
// published version with one atomic load and never take a lock — they
// neither block on nor are blocked by maintenance. Writes (Apply,
// AddRule, RemoveRule) are serialized through a coalescing scheduler:
// concurrent Apply callers enqueue, a single maintainer merges each
// queue drain into one ⊎-net update, runs one maintenance pass, waits
// for the batch's WAL record to group-commit, and only then publishes
// the successor version atomically.
type Views struct {
	cfg        config
	strategy   Strategy // resolved (never Auto)
	programSrc string   // authoritative copy (wmu); versions carry a race-free copy
	// hidden marks internal auxiliary predicates (e.g. the GROUP BY join
	// helpers the SQL front end generates) that are filtered out of
	// user-facing change sets. Written only before concurrent use.
	hidden map[string]bool

	// wmu serializes every operation that touches engine state or the
	// store: batch maintenance, rule edits, Save, Sync, Close, and the
	// OpenStore binding. Readers never take it.
	wmu sync.Mutex

	// cur is the atomically published current version. Never nil after
	// MaterializeProgram returns.
	cur atomic.Pointer[version]

	// comb is the coalescing update scheduler: the first Apply caller to
	// find no maintainer active becomes the maintainer and drains the
	// queue in batches (processBatch).
	comb *sched.Combiner[*applyReq]

	// handlersMu guards the OnChange subscriptions, keyed by predicate
	// ("" = every predicate), the OnCommit subscriptions, and the
	// OnCommitRecord subscriptions. Handlers run on the maintainer
	// goroutine after version publish, before the batch's Apply calls
	// return.
	handlersMu           sync.Mutex
	handlers             map[string][]func(pred string, inserted, deleted []Row)
	commitHandlers       []func(cs *ChangeSet)
	commitRecordHandlers []func(rec CommitRecord)

	// verMu/verCh implement WaitForVersion: verCh, when non-nil, is
	// closed at the next version publish. Lazily allocated so publishes
	// with no waiters cost one mutex hop and no channel.
	verMu sync.Mutex
	verCh chan struct{}

	// par is the resolved evaluation parallelism (>= 1).
	par int

	// explainSem is the semantics derivation enumeration resolves
	// sources under (the engine's internal semantics; constant).
	explainSem Semantics

	// reg collects the engines' counters and timing histograms; always
	// non-nil for views built by MaterializeProgram/MaterializeSQL.
	reg *metrics.Registry

	// Cached scheduler/snapshot instruments (nil-safe).
	mBatches      *metrics.Counter
	mBatchUpdates *metrics.Counter
	mFallbacks    *metrics.Counter
	mDedups       *metrics.Counter
	mApplyWait    *metrics.Histogram
	mSnapWait     *metrics.Histogram
	mSnapVersion  *metrics.Gauge
	mSnapUnix     *metrics.Gauge
	mIdemEntries  *metrics.Gauge

	// idem is the bounded LRU behind ApplyIdempotent: key → the
	// ChangeSet the key's apply committed (idem.go). Accessed only on
	// the maintainer goroutine under wmu.
	idem *idemWindow

	// store, when non-nil, is the crash-recovery store the views are
	// bound to (OpenStore): every Apply is durably logged to its WAL and
	// Sync checkpoints into it. Guarded by wmu.
	store *storage.Store

	// fence is the cluster leadership fencing epoch (0 reads as 1, the
	// epoch of a never-promoted primary). It only moves forward —
	// SetFenceEpoch on promotion, or a follower mirroring its leader's
	// epoch — and for store-bound views every raise is persisted before
	// it is visible, so a restarted node remembers the epoch it was
	// deposed at.
	fence atomic.Uint64

	c  *counting.Engine
	dr *dred.Engine
	rc *recompute.Engine
	pf *pf.Engine
}

type config struct {
	strategy        Strategy
	semantics       Semantics
	disableSetOpt   bool
	disablePlanner  bool
	fragmentTuples  bool
	recursiveCounts bool
	maxIterations   int
	// parallelism: parallelismUnset until WithParallelism or the
	// IVM_PARALLELISM environment variable resolves it.
	parallelism int
	tracer      metrics.Tracer
	// groupCommit batches WAL fsyncs for store-bound views (OpenStore).
	groupCommit bool
	// idemWindow is the idempotency-window capacity (0 = default).
	idemWindow int
	// walRepair lets OpenStore discard a corrupt WAL suffix instead of
	// refusing to recover (WithWALRepair).
	walRepair bool
}

// newConfig applies opts over the shared defaults. Every front end
// (Datalog and SQL) must build its config here so defaults cannot drift.
func newConfig(opts []Option) config {
	cfg := config{strategy: Auto, semantics: SetSemantics, parallelism: parallelismUnset}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// parallelismUnset marks a config whose parallelism was not chosen
// explicitly; resolution then falls back to IVM_PARALLELISM, and finally
// to sequential evaluation.
const parallelismUnset = -1

// AutoParallelism selects one evaluation worker per available CPU
// (runtime.GOMAXPROCS) when passed to WithParallelism.
const AutoParallelism = 0

// Option configures Materialize.
type Option func(*config)

// WithStrategy forces a maintenance strategy.
func WithStrategy(s Strategy) Option { return func(c *config) { c.strategy = s } }

// WithSemantics selects set or duplicate semantics (default: set).
func WithSemantics(s Semantics) Option { return func(c *config) { c.semantics = s } }

// WithoutSetOptimization disables statement (2) of Algorithm 4.1 (the
// set-semantics cascade cut) — exposed for the ablation experiments.
func WithoutSetOptimization() Option { return func(c *config) { c.disableSetOpt = true } }

// WithoutPlanner disables the cost-based join planner; delta rules then
// use the static greedy literal order. Maintained views are bit-identical
// either way — exposed for the planner ablation experiments.
func WithoutPlanner() Option { return func(c *config) { c.disablePlanner = true } }

// WithTupleFragmentation makes the PF baseline propagate one tuple per
// pass (its most fragmented schedule).
func WithTupleFragmentation() Option { return func(c *config) { c.fragmentTuples = true } }

// WithParallelism sets the number of worker goroutines used to evaluate
// the independent delta rules of a stratum (and to hash-partition large
// single-rule joins). n = AutoParallelism (0) uses one worker per
// available CPU; n = 1 evaluates sequentially (the default); negative n
// is treated as AutoParallelism. Maintained views and reported change
// sets are bit-identical at every setting — workers write private
// buffers that are ⊎-merged deterministically.
//
// Without this option, the IVM_PARALLELISM environment variable is
// consulted ("auto" or a number; unset means sequential).
func WithParallelism(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = AutoParallelism
		}
		c.parallelism = n
	}
}

// WithTracer subscribes t to maintenance trace events (batch start/end,
// stratum completion, rule evaluations). A nil t leaves tracing off.
func WithTracer(t Tracer) Option { return func(c *config) { c.tracer = t } }

// WithGroupCommit makes a store-bound Views (OpenStore) batch WAL
// fsyncs across concurrent Apply callers: each Apply still returns only
// after its delta is durable, but one fsync can cover many deltas.
// Ignored for views without a store.
func WithGroupCommit() Option { return func(c *config) { c.groupCommit = true } }

// WithIdempotencyWindow sets how many distinct idempotency keys the
// views remember for ApplyIdempotent dedup (default
// DefaultIdempotencyWindow). The window is an LRU: once more than n
// keyed applies land after a key's commit, a retry of that key is no
// longer recognized and re-applies. Size it to comfortably exceed the
// keyed applies that can land within a client's longest retry horizon.
func WithIdempotencyWindow(n int) Option {
	return func(c *config) { c.idemWindow = n }
}

// WithWALRepair lets OpenStore recover past mid-WAL corruption by
// discarding the corrupt record and everything after it; the valid
// prefix is kept and RecoveryInfo.CorruptRecords reports the damage.
// Without this opt-in, OpenStore fails with the corruption error and
// leaves the WAL untouched, because the records behind the damage were
// acknowledged as durable and would otherwise be silently lost.
func WithWALRepair() Option { return func(c *config) { c.walRepair = true } }

// resolveParallelism turns the configured (or environment-supplied)
// parallelism into a concrete worker count. A malformed IVM_PARALLELISM
// value is an error, not a silent fallback to sequential evaluation.
func resolveParallelism(c *config) (int, error) {
	n := c.parallelism
	if n == parallelismUnset {
		env, ok := os.LookupEnv("IVM_PARALLELISM")
		if !ok {
			return 1, nil
		}
		if env == "auto" {
			return eval.Workers(AutoParallelism), nil
		}
		v, err := strconv.Atoi(env)
		if err != nil {
			return 0, fmt.Errorf("ivm: invalid IVM_PARALLELISM value %q (want \"auto\" or an integer)", env)
		}
		n = v
		if n < 0 {
			n = AutoParallelism
		}
	}
	return eval.Workers(n), nil
}

// WithRecursiveCounting lets the counting strategy maintain recursive
// views ([GKM92]; the paper's Section 8). Requires duplicate semantics
// and WithStrategy(Counting): count(t) becomes the number of derivation
// trees, which is finite only on acyclic derivations — materialization
// and updates fail with a divergence error (after maxIterations fixpoint
// rounds; 0 = default) when a derivation cycle appears, leaving the views
// unchanged. Auto keeps selecting DRed for recursive programs, the
// paper's recommendation.
func WithRecursiveCounting(maxIterations int) Option {
	return func(c *config) {
		c.recursiveCounts = true
		c.maxIterations = maxIterations
	}
}

// Materialize parses the program (rules; facts are loaded into the
// database first), validates and stratifies it, materializes every view
// over the current base state, and returns the maintained Views.
func (d *Database) Materialize(programSrc string, opts ...Option) (*Views, error) {
	res, err := parser.Parse(programSrc)
	if err != nil {
		return nil, err
	}
	for _, f := range res.Facts {
		d.base.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return d.MaterializeProgram(res.Program, programSrc, opts...)
}

// MaterializeProgram is Materialize for an already parsed program.
func (d *Database) MaterializeProgram(prog *datalog.Program, programSrc string, opts ...Option) (*Views, error) {
	cfg := newConfig(opts)
	par, err := resolveParallelism(&cfg)
	if err != nil {
		return nil, err
	}
	if err := datalog.Validate(prog); err != nil {
		return nil, err
	}
	st, err := strata.Compute(prog)
	if err != nil {
		return nil, err
	}
	strategy := cfg.strategy
	if strategy == Auto {
		strategy = Counting
		for pred := range prog.DerivedPreds() {
			if st.Recursive[pred] {
				strategy = DRed
				break
			}
		}
	}
	reg := metrics.NewRegistry()
	v := &Views{cfg: cfg, strategy: strategy, programSrc: programSrc, par: par, reg: reg}
	switch strategy {
	case Counting:
		eng, err := counting.NewWithConfig(prog, d.base, counting.Config{
			Semantics:      cfg.semantics,
			DisableSetOpt:  cfg.disableSetOpt,
			AllowRecursion: cfg.recursiveCounts,
			MaxIterations:  cfg.maxIterations,
			DisablePlanner: cfg.disablePlanner,
			Parallelism:    par,
			Metrics:        reg,
			Tracer:         cfg.tracer,
		})
		if err != nil {
			return nil, err
		}
		v.c = eng
	case DRed:
		if cfg.semantics == DuplicateSemantics {
			return nil, fmt.Errorf("ivm: DRed requires set semantics")
		}
		eng, err := dred.NewWithConfig(prog, d.base, dred.Config{
			Parallelism:    par,
			Metrics:        reg,
			Tracer:         cfg.tracer,
			DisablePlanner: cfg.disablePlanner,
		})
		if err != nil {
			return nil, err
		}
		v.dr = eng
	case Recompute:
		eng, err := recompute.New(prog, d.base, cfg.semantics)
		if err != nil {
			return nil, err
		}
		eng.Parallelism = par
		eng.Metrics = reg
		eng.Tracer = cfg.tracer
		eng.DisablePlanner = cfg.disablePlanner
		v.rc = eng
	case PF:
		if cfg.semantics == DuplicateSemantics {
			return nil, fmt.Errorf("ivm: the PF baseline requires set semantics")
		}
		eng, err := pf.NewWithConfig(prog, d.base, pf.Config{
			Metrics:        reg,
			Tracer:         cfg.tracer,
			DisablePlanner: cfg.disablePlanner,
		})
		if err != nil {
			return nil, err
		}
		eng.FragmentTuples = cfg.fragmentTuples
		v.pf = eng
	default:
		return nil, fmt.Errorf("ivm: unknown strategy %v", strategy)
	}
	switch {
	case v.c != nil:
		v.explainSem = v.c.InternalSemantics()
	case v.rc != nil:
		v.explainSem = v.rc.Semantics()
	default:
		v.explainSem = SetSemantics
	}
	v.comb = sched.New(v.processBatch)
	v.idem = newIdemWindow(cfg.idemWindow)
	v.mBatches = reg.Counter("sched_batches_total")
	v.mBatchUpdates = reg.Counter("sched_batch_updates_total")
	v.mFallbacks = reg.Counter("sched_coalesce_fallbacks_total")
	v.mDedups = reg.Counter("sched_idem_dedup_total")
	v.mIdemEntries = reg.Gauge("idem_window_entries")
	v.mApplyWait = reg.Histogram("sched_apply_wait_seconds")
	v.mSnapWait = reg.Histogram("snapshot_wait_seconds")
	v.mSnapVersion = reg.Gauge("snapshot_version")
	v.mSnapUnix = reg.Gauge("snapshot_published_unixnano")
	v.wmu.Lock()
	v.publishAllLocked()
	v.wmu.Unlock()
	return v, nil
}

// Strategy returns the resolved maintenance strategy.
func (v *Views) Strategy() Strategy { return v.strategy }

// Semantics returns the view semantics.
func (v *Views) Semantics() Semantics { return v.cfg.semantics }

// Parallelism returns the resolved evaluation worker count (>= 1).
func (v *Views) Parallelism() int { return v.par }

// ProgramSource returns the program text the views were built from (as
// of the current published version).
func (v *Views) ProgramSource() string { return v.cur.Load().programSrc }

// Program returns the parsed, possibly rule-edited view program (as of
// the current published version).
func (v *Views) Program() *datalog.Program { return v.cur.Load().prog }

func (v *Views) relation(pred string) *relation.Relation {
	switch {
	case v.c != nil:
		return v.c.Relation(pred)
	case v.dr != nil:
		return v.dr.Relation(pred)
	case v.rc != nil:
		return v.rc.Relation(pred)
	default:
		return v.pf.Relation(pred)
	}
}

func (v *Views) db() *eval.DB {
	switch {
	case v.c != nil:
		return v.c.DB()
	case v.dr != nil:
		return v.dr.DB()
	case v.rc != nil:
		return v.rc.DB()
	default:
		return v.pf.DB()
	}
}

// Rows returns the stored rows of a (base or derived) relation at the
// current published version, sorted lexicographically. Derived rows
// carry derivation counts. Lock-free: never blocked by Apply.
func (v *Views) Rows(pred string) []Row {
	vr := v.cur.Load().rels[pred]
	if vr == nil {
		return nil
	}
	return vr.Flat().SortedRows()
}

// Count returns the derivation count of the given tuple (0 if absent)
// at the current published version. Lock-free.
func (v *Views) Count(pred string, vals ...any) int64 {
	r := v.cur.Load().reader(pred)
	if r == nil {
		return 0
	}
	return r.Count(value.T(vals...))
}

// Has reports whether the tuple is in the (base or derived) relation at
// the current published version. Lock-free.
func (v *Views) Has(pred string, vals ...any) bool {
	return v.Count(pred, vals...) > 0
}

// applyReq is one enqueued Apply call, completed by the maintainer.
type applyReq struct {
	u *Update
	// keys are the idempotency keys this request carries: one for a
	// keyed client apply, several only when a merged WAL record is
	// replayed at recovery.
	keys    []string
	cs      *ChangeSet
	deduped bool
	err     error
	done    chan struct{}
}

// applyGroup is the unit of maintenance within a batch: the requests it
// covers plus the single engine pass / WAL record / published version
// they share. A merged batch is one group covering every admitted
// request; the sequential fallback produces one group per request, each
// with its own version.
type applyGroup struct {
	reqs []*applyReq
	cs   *ChangeSet
	// version is the snapshot version this group publishes; assigned
	// when maintenance succeeds, stamped into the WAL record, and fed to
	// replication so the durable order and the published order agree.
	version uint64
	// script and keys are the group's WAL record content (script is
	// rendered only when a store or a commit-record subscriber needs it).
	script string
	keys   []string
	// rels is the relation map as of this group's maintenance pass — the
	// exact state its version publishes.
	rels    map[string]*relation.Versioned
	pubUnix int64
	wait    func() error
	err     error
}

// Apply maintains every view under the update and returns the per-view
// changes. The update's deletions must refer to stored tuples.
//
// Concurrent Apply calls coalesce: callers enqueue on the update
// scheduler and one of them becomes the maintainer, merging the queued
// updates into their ⊎-net effect and running a single maintenance pass
// for the batch. Every caller in a coalesced batch receives the batch's
// shared ChangeSet (the net changes of the whole batch; per-caller
// attribution is not defined once deltas merge) stamped with the
// version the batch published — ChangeSet.Version. If the merged update
// fails validation (e.g. a deletion of an absent tuple that another
// update in the batch does not cancel), the batch falls back to
// applying each update individually, in arrival order, so each caller
// gets exactly its own result or error.
//
// For store-bound views (OpenStore), the batch is durably logged to the
// WAL: Apply returns only after the record is fsynced (batched across
// concurrent callers under WithGroupCommit), and the new version is
// published only after the fsync — a snapshot never shows state the log
// has not made durable. Updates containing NaN or ±Inf floats are
// rejected up front (they have no replayable literal syntax), and after
// Close the error wraps ErrStoreClosed. A logging failure is returned
// as an error even though the in-memory views already applied the
// update — the caller should Sync (checkpoint) or treat the store as
// lost.
func (v *Views) Apply(u *Update) (*ChangeSet, error) {
	cs, _, err := v.submit(u, nil)
	return cs, err
}

// ApplyIdempotent is Apply with exactly-once semantics under retries:
// the first apply committed under key is the only one ever applied, and
// every later call with the same key returns the original ChangeSet
// (deduped=true) — same Version, same deltas — instead of re-applying.
// The dedup window is a bounded LRU (WithIdempotencyWindow); a retry
// arriving after the key's eviction re-applies. For store-bound views
// the key is logged inside the apply's WAL record and re-seeded on
// recovery replay, so dedup survives a crash between commit and
// acknowledgment — the scenario a timed-out network client cannot
// distinguish from "never committed". An empty key degrades to plain
// Apply. A durability error (applied in memory, not logged) does not
// record the key; such errors are not safe to blind-retry and are
// reported to the caller instead.
func (v *Views) ApplyIdempotent(key string, u *Update) (cs *ChangeSet, deduped bool, err error) {
	if key == "" {
		cs, err = v.Apply(u)
		return cs, false, err
	}
	if len(key) > MaxIdempotencyKeyLen {
		return nil, false, fmt.Errorf("ivm: idempotency key of %d bytes exceeds the %d-byte limit", len(key), MaxIdempotencyKeyLen)
	}
	return v.submit(u, []string{key})
}

// ApplyScriptIdempotent parses a delta script and applies it under key
// (see ApplyIdempotent).
func (v *Views) ApplyScriptIdempotent(key, src string) (cs *ChangeSet, deduped bool, err error) {
	u, err := ParseUpdate(src)
	if err != nil {
		return nil, false, err
	}
	return v.ApplyIdempotent(key, u)
}

// submit enqueues one update on the scheduler and waits for the
// maintainer to complete it.
func (v *Views) submit(u *Update, keys []string) (*ChangeSet, bool, error) {
	if u.err != nil {
		return nil, false, u.err
	}
	start := time.Now()
	r := &applyReq{u: u, keys: keys, done: make(chan struct{})}
	v.comb.Submit(r)
	<-r.done
	v.mApplyWait.Observe(time.Since(start))
	if r.err != nil {
		return nil, false, r.err
	}
	return r.cs, r.deduped, nil
}

// processBatch is the maintainer: it runs on the scheduler leader's
// goroutine, one batch at a time, and drives each batch through
// validate → maintain → WAL group-commit → publish → notify → release.
func (v *Views) processBatch(batch []*applyReq) {
	v.wmu.Lock()
	admitted := make([]*applyReq, 0, len(batch))
	// Keyed requests dedup before admission: a key already in the window
	// is answered with its original ChangeSet; a key that repeats within
	// this very batch (a retry racing its first attempt) elects the first
	// request as leader and completes the rest with the leader's result.
	var leaders map[string]*applyReq
	var followers []*applyReq
	for _, r := range batch {
		if len(r.keys) == 1 {
			key := r.keys[0]
			if cs, ok := v.idem.lookup(key); ok {
				r.cs, r.deduped = cs, true
				v.mDedups.Inc()
				continue
			}
			if leaders == nil {
				leaders = make(map[string]*applyReq)
			}
			if _, dup := leaders[key]; dup {
				followers = append(followers, r)
				continue
			}
			leaders[key] = r
		}
		if err := v.admitLocked(r.u); err != nil {
			r.err = err
			continue
		}
		admitted = append(admitted, r)
	}
	v.mBatches.Inc()
	v.mBatchUpdates.Add(int64(len(admitted)))

	next := v.nextRelsLocked()
	base := v.cur.Load().id
	// A group's delta script is rendered only when something will consume
	// it: the WAL, or a commit-record subscriber (replication).
	v.handlersMu.Lock()
	recHandlers := v.commitRecordHandlers
	v.handlersMu.Unlock()
	needScript := v.store != nil || len(recHandlers) > 0
	var groups []*applyGroup
	switch {
	case len(admitted) == 0:
		// Nothing admitted; still publish so stats stay fresh? No —
		// no maintenance ran, so there is nothing to publish.
		v.completeFollowers(leaders, followers)
		v.wmu.Unlock()
		for _, r := range batch {
			close(r.done)
		}
		return
	case len(admitted) == 1 || !mergeable(admitted):
		groups = v.runSequentialLocked(admitted, next, base, needScript)
	default:
		merged := NewUpdate()
		for _, r := range admitted {
			merged.Merge(r.u)
		}
		cs, err := v.maintainLocked(merged, next)
		if err != nil {
			// The merged net update did not validate as a whole; fall
			// back to applying each caller's update individually so
			// each gets exactly its own result or error.
			v.mFallbacks.Inc()
			groups = v.runSequentialLocked(admitted, next, base, needScript)
		} else {
			g := &applyGroup{reqs: admitted, cs: cs, version: base + 1, rels: next}
			cs.version = g.version
			// The coalesced batch is one WAL record, so it carries every
			// caller's idempotency key; recovery re-seeds all of them.
			for _, r := range admitted {
				g.keys = append(g.keys, r.keys...)
			}
			if needScript {
				g.script = merged.String()
			}
			g.wait, g.err = v.logLocked(g.version, g.script, g.keys)
			groups = []*applyGroup{g}
		}
	}

	// Wait for every group's WAL record to group-commit before
	// publishing: a published version never shows state the log has not
	// made durable. A failed fsync still publishes (the memory state
	// already advanced and later batches build on it); the affected
	// callers get the durability error.
	for _, g := range groups {
		if g.err != nil || g.wait == nil {
			continue
		}
		if err := g.wait(); err != nil {
			g.err = fmt.Errorf("ivm: update applied in memory but not durably logged: %w", err)
		}
	}
	// Publish each group's version in commit order. Every group whose
	// maintenance pass succeeded publishes — including one whose fsync
	// failed, because the engine state already advanced and later groups
	// build on it — so published versions and WAL records correspond 1:1
	// and replication can align on the version number alone.
	for _, g := range groups {
		if g.cs == nil {
			continue
		}
		pub := v.publishVersionLocked(g.rels, g.version)
		g.pubUnix = pub.published
	}
	// Record idempotency keys only for fully committed groups (applied,
	// logged, published — version stamped above). A durability error
	// deliberately does not record its keys: the caller gets the error
	// rather than a dedup answer, because a blind retry of an
	// applied-but-unlogged update is exactly the double apply the window
	// exists to prevent.
	for _, g := range groups {
		if g.err != nil {
			continue
		}
		for _, r := range g.reqs {
			for _, k := range r.keys {
				v.idem.record(k, g.cs)
			}
		}
	}
	v.mIdemEntries.Set(int64(v.idem.len()))
	v.wmu.Unlock()

	// OnChange handlers run here on the maintainer goroutine — after
	// the version is published (so handlers and concurrent readers see
	// the new state) and outside wmu (so a slow handler never extends a
	// rule edit, Sync, or Close stall; readers are lock-free and were
	// never stalled in the first place) — but before the batch's
	// requests complete, so each Apply still returns only after the
	// handlers for its batch have run.
	for _, g := range groups {
		if g.err == nil {
			v.notify(g.cs)
			for _, fn := range recHandlers {
				fn(CommitRecord{Version: g.version, UnixNano: g.pubUnix, Script: g.script, Keys: g.keys})
			}
		}
		for _, r := range g.reqs {
			r.cs, r.err = g.cs, g.err
			if r.err != nil {
				r.cs = nil
			}
		}
	}
	v.completeFollowers(leaders, followers)
	for _, r := range batch {
		close(r.done)
	}
}

// completeFollowers hands each in-batch duplicate its leader's outcome:
// the leader's ChangeSet marks the follower deduped, the leader's error
// propagates as-is (the follower's own retry would have failed the same
// way).
func (v *Views) completeFollowers(leaders map[string]*applyReq, followers []*applyReq) {
	for _, f := range followers {
		leader := leaders[f.keys[0]]
		f.cs, f.err = leader.cs, leader.err
		if f.err == nil {
			f.deduped = true
			v.mDedups.Inc()
		}
	}
}

// admitLocked vets an update against the store before any memory is
// touched, so the views never run ahead of a log they cannot write to.
func (v *Views) admitLocked(u *Update) error {
	if v.store == nil {
		return nil
	}
	if v.store.Closed() {
		return fmt.Errorf("ivm: %w", storage.ErrStoreClosed)
	}
	// NaN/±Inf have no parseable literal syntax, so a WAL record
	// containing one could never replay on recovery. Reject before
	// touching memory: the views and the log must not diverge.
	if fact, bad := u.nonFinite(); bad {
		return fmt.Errorf("ivm: %s contains a non-finite float, which cannot be logged replayably; store-bound views reject NaN and ±Inf", fact)
	}
	return nil
}

// mergeable reports whether the admitted updates can be ⊎-merged: every
// predicate must be used with one arity across the whole batch (an
// Update.Merge of conflicting arities would panic in the relation
// layer).
func mergeable(reqs []*applyReq) bool {
	arity := make(map[string]int)
	for _, r := range reqs {
		for pred, rel := range r.u.per {
			a := rel.Arity()
			if a < 0 {
				continue
			}
			if prev, ok := arity[pred]; ok && prev != a {
				return false
			}
			arity[pred] = a
		}
	}
	return true
}

// runSequentialLocked applies each request's update individually, in
// arrival order, producing one group per request. WAL records are
// appended in the same order and versions are assigned in the same
// order (base+1, base+2, ... for the successful groups), so log order
// equals application order equals publish order.
func (v *Views) runSequentialLocked(admitted []*applyReq, next map[string]*relation.Versioned, base uint64, needScript bool) []*applyGroup {
	groups := make([]*applyGroup, 0, len(admitted))
	ver := base
	for _, r := range admitted {
		g := &applyGroup{reqs: []*applyReq{r}}
		cs, err := v.maintainLocked(r.u, next)
		if err != nil {
			g.err = err
		} else {
			ver++
			g.cs = cs
			g.version = ver
			cs.version = ver
			g.keys = r.keys
			if needScript {
				g.script = r.u.String()
			}
			// Snapshot the relation map as of this group so its version
			// publishes exactly this group's state; later groups keep
			// evolving next.
			g.rels = make(map[string]*relation.Versioned, len(next))
			for p, vr := range next {
				g.rels[p] = vr
			}
			g.wait, g.err = v.logLocked(ver, g.script, r.keys)
		}
		groups = append(groups, g)
	}
	return groups
}

// maintainLocked runs one engine maintenance pass for u and folds the
// exact committed deltas onto the in-progress version map. On error the
// engine state is unchanged (engines validate before committing) and
// next is untouched.
func (v *Views) maintainLocked(u *Update, next map[string]*relation.Versioned) (*ChangeSet, error) {
	deltas := u.deltas()
	var cs *ChangeSet
	switch {
	case v.c != nil:
		full, err := v.c.Apply(deltas)
		if err != nil {
			return nil, err
		}
		cs = changeSetFromDeltas(full)
	case v.dr != nil:
		ch, err := v.dr.Apply(deltas)
		if err != nil {
			return nil, err
		}
		cs = changeSetFromChanges(ch.Del, ch.Add)
	case v.rc != nil:
		full, err := v.rc.Apply(deltas)
		if err != nil {
			return nil, err
		}
		cs = changeSetFromDeltas(full)
	default:
		ch, err := v.pf.Apply(deltas)
		if err != nil {
			return nil, err
		}
		cs = changeSetFromChanges(ch.Del, ch.Add)
	}
	for pred := range v.hidden {
		delete(cs.perPred, pred)
	}
	for pred, d := range v.committedDeltasLocked() {
		if cv, ok := next[pred]; ok {
			next[pred] = cv.Push(d)
		} else if r := v.relation(pred); r != nil {
			// First stored content for this predicate: version it from
			// a clone of the engine's (small, just-created) relation.
			next[pred] = relation.NewVersioned(r.Clone())
		}
	}
	return cs, nil
}

// logLocked appends a group's delta script to the WAL (store-bound
// views), version-stamped and with the requests' idempotency keys
// framed into the record, and returns the group-commit wait. The append
// happens under wmu in application order, so the log order matches the
// apply order. Empty net updates log too — every published version gets
// exactly one record, keeping the version sequence in the WAL gapless
// so recovery and replication backfill can align on it (replaying a
// no-op is a no-op).
func (v *Views) logLocked(version uint64, script string, keys []string) (func() error, error) {
	if v.store == nil {
		return nil, nil
	}
	w, err := v.store.AppendVersionedAsync(version, script, keys)
	if err != nil {
		return nil, fmt.Errorf("ivm: update applied in memory but not durably logged: %w", err)
	}
	return w, nil
}

// OnChange subscribes fn to changes of pred ("" subscribes to every
// derived predicate) — the paper's active-database application (Section
// 1: "a rule may fire when a particular tuple is inserted into a view").
// fn runs on the maintainer goroutine after each successful
// Apply/AddRule/RemoveRule batch that changed pred, with the inserted
// and deleted rows (deleted counts reported positive). Handlers fire
// after the new version is published and outside every Views lock, so a
// slow handler never delays readers or snapshots — but before the
// batch's Apply calls return, so an Apply still observes its own
// handlers completed. Handlers may read the Views (they see the
// just-published state) but must not Apply, AddRule, or RemoveRule from
// within the callback: the maintainer is running the handler, so a
// nested write deadlocks.
func (v *Views) OnChange(pred string, fn func(pred string, inserted, deleted []Row)) {
	v.handlersMu.Lock()
	defer v.handlersMu.Unlock()
	if v.handlers == nil {
		v.handlers = make(map[string][]func(string, []Row, []Row))
	}
	v.handlers[pred] = append(v.handlers[pred], fn)
}

// OnCommit subscribes fn to every committed maintenance batch: fn
// receives the batch's whole ChangeSet, stamped with the version it
// published (ChangeSet.Version), including change sets with no visible
// deltas (a batch always publishes). Like OnChange handlers, commit
// handlers run on the maintainer goroutine after publish and outside
// every Views lock, in commit order — under an Apply-only workload the
// versions fn observes are nondecreasing — and must not Apply or edit
// rules from within the callback. OnCommit is the feed the serving
// layer's subscription fan-out drains (internal/server).
func (v *Views) OnCommit(fn func(cs *ChangeSet)) {
	v.handlersMu.Lock()
	defer v.handlersMu.Unlock()
	v.commitHandlers = append(v.commitHandlers, fn)
}

// CommitRecord is the replication-facing image of one committed,
// published maintenance pass: the version it published, the delta
// script that reproduces it (the same text the WAL logs), the
// idempotency keys it covered, and the publish timestamp. Reset marks a
// commit whose effects a delta script cannot express (a rule edit):
// subscribers must resynchronize from a full state snapshot instead of
// applying deltas across it.
type CommitRecord struct {
	Version  uint64
	UnixNano int64
	Script   string
	Keys     []string
	Reset    bool
}

// OnCommitRecord subscribes fn to the commit-ordered record stream:
// one record per published version, in version order, carrying the
// delta script that reproduces the commit. This is the feed the
// replication endpoint streams to followers. Like OnCommit handlers,
// fn runs on the maintainer goroutine after publish with no Views lock
// held, and must not Apply or edit rules from within the callback.
// Subscribe before the first Apply you need to observe — commits that
// ran before the subscription are not replayed (the serving layer
// bridges the gap from the WAL instead).
func (v *Views) OnCommitRecord(fn func(rec CommitRecord)) {
	v.handlersMu.Lock()
	defer v.handlersMu.Unlock()
	v.commitRecordHandlers = append(v.commitRecordHandlers, fn)
}

// fireCommitRecord invokes the OnCommitRecord handlers (no Views lock
// held).
func (v *Views) fireCommitRecord(rec CommitRecord) {
	v.handlersMu.Lock()
	fns := v.commitRecordHandlers
	v.handlersMu.Unlock()
	for _, fn := range fns {
		fn(rec)
	}
}

// notify fires the OnChange and OnCommit handlers for a change set.
// Called on the maintainer goroutine after publish, with no Views lock
// held; handler slices are snapshotted under handlersMu so
// registrations are race-free.
func (v *Views) notify(cs *ChangeSet) {
	if cs == nil {
		return
	}
	v.handlersMu.Lock()
	commit := v.commitHandlers
	if len(v.handlers) == 0 {
		v.handlersMu.Unlock()
		for _, fn := range commit {
			fn(cs)
		}
		return
	}
	type firing struct {
		pred     string
		ins, del []Row
		fns      []func(string, []Row, []Row)
	}
	var firings []firing
	for _, pred := range cs.Preds() {
		var fns []func(string, []Row, []Row)
		fns = append(fns, v.handlers[pred]...)
		fns = append(fns, v.handlers[""]...)
		if len(fns) == 0 {
			continue
		}
		firings = append(firings, firing{pred, cs.Inserted(pred), cs.Deleted(pred), fns})
	}
	v.handlersMu.Unlock()
	for _, f := range firings {
		for _, fn := range f.fns {
			fn(f.pred, f.ins, f.del)
		}
	}
	for _, fn := range commit {
		fn(cs)
	}
}

// ApplyScript parses a delta script (`+link(a,b). -link(b,c).`) and
// applies it.
func (v *Views) ApplyScript(src string) (*ChangeSet, error) {
	u, err := ParseUpdate(src)
	if err != nil {
		return nil, err
	}
	return v.Apply(u)
}

// AddRule extends the view definition (DRed strategy only; Section 7's
// rule insertion maintenance). Rule edits serialize with Apply batches
// under the write lock and publish a fresh version before returning.
func (v *Views) AddRule(ruleSrc string) (*ChangeSet, error) {
	if v.dr == nil {
		return nil, fmt.Errorf("ivm: AddRule requires the DRed strategy (have %v)", v.strategy)
	}
	prog, err := parser.ParseRules(ruleSrc)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 {
		return nil, fmt.Errorf("ivm: AddRule expects exactly one rule, got %d", len(prog.Rules))
	}
	v.wmu.Lock()
	ch, err := v.dr.AddRule(prog.Rules[0])
	if err != nil {
		v.wmu.Unlock()
		return nil, err
	}
	return v.ruleEditCommittedLocked(ch)
}

// RemoveRule removes rule index ri (as listed by Program) from the view
// definition (DRed strategy only).
func (v *Views) RemoveRule(ri int) (*ChangeSet, error) {
	if v.dr == nil {
		return nil, fmt.Errorf("ivm: RemoveRule requires the DRed strategy (have %v)", v.strategy)
	}
	v.wmu.Lock()
	ch, err := v.dr.RemoveRule(ri)
	if err != nil {
		v.wmu.Unlock()
		return nil, err
	}
	return v.ruleEditCommittedLocked(ch)
}

// ruleEditCommittedLocked runs after a successful AddRule/RemoveRule
// (write lock held; releases it): the program text is regenerated from
// the edited rule set so Save and checkpoints persist the views as they
// now are (base facts already live in the database, so dropping fact
// clauses from the text loses nothing). Store-bound views checkpoint
// immediately — a WAL of delta scripts cannot express a rule change, so
// the epoch is advanced instead of logging one. A rule edit changes the
// program and (possibly) the derived-predicate set, so the version map
// is rebuilt in full rather than delta-replayed, then published.
func (v *Views) ruleEditCommittedLocked(ch *dred.Changes) (*ChangeSet, error) {
	var sb strings.Builder
	for _, r := range v.progLocked().Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	v.programSrc = sb.String()
	// The checkpoint is stamped with the version about to publish, so a
	// recovery from it resumes the version counter exactly where readers
	// of this edit saw it.
	nextID := v.cur.Load().id + 1
	if v.store != nil {
		if err := v.store.CheckpointAt(v.db(), v.programSrc, v.hiddenLocked(), nextID); err != nil {
			v.wmu.Unlock()
			return nil, fmt.Errorf("ivm: rule change applied in memory but checkpoint failed: %w", err)
		}
	}
	cs := changeSetFromChanges(ch.Del, ch.Add)
	pub := v.publishAllLocked()
	cs.version = pub.id
	v.wmu.Unlock()
	v.notify(cs)
	// A rule edit cannot be expressed as a delta script, so the commit
	// record is a reset marker: replication subscribers resynchronize
	// from a full state snapshot.
	v.fireCommitRecord(CommitRecord{Version: pub.id, UnixNano: pub.published, Reset: true})
	return cs, nil
}

// hiddenLocked returns the sorted hidden-predicate list (lock held).
func (v *Views) hiddenLocked() []string {
	hidden := make([]string, 0, len(v.hidden))
	for pred := range v.hidden {
		hidden = append(hidden, pred)
	}
	sort.Strings(hidden)
	return hidden
}

// CountingStats returns the counting-engine statistics of the
// maintenance pass that produced the current published version. The
// stats are carried on the version itself, so the read is lock-free and
// race-free against concurrent Apply.
func (v *Views) CountingStats() (counting.Stats, bool) {
	if v.c == nil {
		return counting.Stats{}, false
	}
	return v.cur.Load().cstats, true
}

// DRedStats returns the DRed-engine statistics of the maintenance pass
// that produced the current published version. Lock-free.
func (v *Views) DRedStats() (dred.Stats, bool) {
	if v.dr == nil {
		return dred.Stats{}, false
	}
	return v.cur.Load().dstats, true
}

// PFStats returns the PF-baseline statistics of the maintenance pass
// that produced the current published version. Lock-free.
func (v *Views) PFStats() (pf.Stats, bool) {
	if v.pf == nil {
		return pf.Stats{}, false
	}
	return v.cur.Load().pstats, true
}

// Metrics returns an immutable snapshot of every metric the views'
// engines have recorded: cumulative counters (counting_*, dred_*, pf_*,
// recompute_*, eval_*, sched_*), gauges, and duration histograms.
// Counters are cumulative across the views' lifetime, unlike the
// per-operation *Stats accessors. The underlying instruments are
// atomic, so the snapshot is race-free and lock-free.
func (v *Views) Metrics() MetricsSnapshot {
	// Refresh the process-wide index gauge so the snapshot reflects
	// every hash index lazily built since the last call.
	v.reg.Gauge("relation_indexes_built").Set(relation.IndexesBuilt())
	return v.reg.Snapshot()
}

// Save snapshots the views' storage (base + derived relations with
// counts), program text, and hidden-predicate set to path. The write is
// atomic and durable (temp file fsync + rename + directory fsync).
func (v *Views) Save(path string) error {
	if v.pf != nil {
		return fmt.Errorf("ivm: Save is not supported for the PF baseline")
	}
	v.wmu.Lock()
	defer v.wmu.Unlock()
	return storage.SaveFile(path, v.db(), v.programSrc, v.hiddenLocked())
}

// LoadViews restores a snapshot saved by Views.Save, rematerializing the
// views over the restored base relations. The hidden-predicate set (the
// auxiliary predicates of SQL-defined views) is restored with it, so
// change sets stay filtered exactly as before the save.
func LoadViews(path string, opts ...Option) (*Views, error) {
	db, programSrc, hidden, err := storage.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return viewsFromSnapshot(db, programSrc, hidden, opts)
}

// viewsFromSnapshot rematerializes views from decoded snapshot contents:
// the non-derived relations seed a fresh database and the program is
// parsed and materialized over it.
func viewsFromSnapshot(db *eval.DB, programSrc string, hidden []string, opts []Option) (*Views, error) {
	res, err := parser.Parse(programSrc)
	if err != nil {
		return nil, err
	}
	d := NewDatabase()
	derived := res.Program.DerivedPreds()
	for _, pred := range db.Preds() {
		if !derived[pred] {
			d.base.Put(pred, db.Get(pred))
		}
	}
	v, err := d.MaterializeProgram(res.Program, programSrc, opts...)
	if err != nil {
		return nil, err
	}
	if len(hidden) > 0 {
		v.hidden = make(map[string]bool, len(hidden))
		for _, p := range hidden {
			v.hidden[p] = true
		}
	}
	return v, nil
}

// RecoveryInfo describes what OpenStore found in the store directory.
type RecoveryInfo struct {
	// Epoch is the checkpoint epoch recovery started from.
	Epoch uint64
	// Replayed is the number of WAL delta scripts reapplied on top of
	// the snapshot.
	Replayed int
	// SkippedStale counts WAL records from older epochs (a crash hit
	// the window between checkpoint rename and WAL truncate; they are
	// already in the snapshot and must not be double-applied).
	SkippedStale int
	// TornTail reports that an incomplete final record was discarded (a
	// crash mid-append; the record was never acknowledged).
	TornTail bool
	// CorruptRecords counts checksum failures mid-log: in-place
	// corruption. Nonzero only under WithWALRepair, where replay stops
	// at the first one and keeps the valid prefix; without the opt-in,
	// OpenStore fails on mid-log corruption instead of discarding
	// acknowledged records.
	CorruptRecords int
	// BadSnapshots counts snapshot files that failed to decode and were
	// set aside (recovery fell back to an older epoch).
	BadSnapshots int
	// Initialized reports that the store was empty and init() built the
	// initial views (checkpointed as epoch 1).
	Initialized bool
}

func (ri RecoveryInfo) String() string {
	if ri.Initialized {
		return "initialized (epoch 1)"
	}
	s := fmt.Sprintf("epoch=%d replayed=%d", ri.Epoch, ri.Replayed)
	if ri.SkippedStale > 0 {
		s += fmt.Sprintf(" skipped_stale=%d", ri.SkippedStale)
	}
	if ri.TornTail {
		s += " torn_tail"
	}
	if ri.CorruptRecords > 0 {
		s += fmt.Sprintf(" corrupt_records=%d", ri.CorruptRecords)
	}
	if ri.BadSnapshots > 0 {
		s += fmt.Sprintf(" bad_snapshots=%d", ri.BadSnapshots)
	}
	return s
}

// OpenStore opens (creating if needed) the crash-recovery store in dir
// and restores views from it: the newest valid snapshot is loaded,
// rematerialized, and the WAL delta scripts from its epoch are
// replayed. When the store is empty, init is called to build the
// initial views (e.g. from program and fact files) and the result is
// immediately checkpointed. The returned views are store-bound: every
// Apply is durably WAL-logged before it returns, rule edits checkpoint
// a new epoch, and Sync checkpoints on demand. Options apply to the
// rematerialization of a recovered program (and WithGroupCommit to the
// WAL); init builds its views with whatever options it chooses.
func OpenStore(dir string, init func() (*Views, error), opts ...Option) (*Views, RecoveryInfo, error) {
	cfg := newConfig(opts)
	st, err := storage.OpenStore(dir, storage.StoreOptions{GroupCommit: cfg.groupCommit, RepairCorruptWAL: cfg.walRepair})
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	si := st.Recovery()
	info := RecoveryInfo{
		Epoch:          si.Epoch,
		Replayed:       si.Replayed,
		SkippedStale:   si.SkippedStale,
		TornTail:       si.TornTail,
		CorruptRecords: si.CorruptRecords,
		BadSnapshots:   si.BadSnapshots,
	}
	fail := func(err error) (*Views, RecoveryInfo, error) {
		st.Close()
		return nil, info, err
	}
	var v *Views
	if db, programSrc, hidden, ok := st.Snapshot(); ok {
		v, err = viewsFromSnapshot(db, programSrc, hidden, opts)
		if err != nil {
			return fail(err)
		}
		// Version alignment: the checkpoint carries the version its state
		// was published as, so the rematerialized views (which restart at
		// version 1) are seeded up to it before replay. Each versioned
		// WAL record then republishes its original version — the durable
		// commit order survives the crash, which is what lets a follower
		// resume replication across a primary restart without a gap.
		if base := st.SnapshotBaseVersion(); base > v.cur.Load().id {
			v.SeedVersion(base)
		}
		// Replay happens before the views are store-bound, so the
		// records are not re-appended to the WAL they came from. Each
		// record carries the idempotency keys of the applies it covered
		// (several for a coalesced batch); replaying them through submit
		// re-seeds the dedup window, so a client retrying across the
		// crash still gets a dedup answer — stamped with the replayed
		// version.
		for i, rec := range st.Records() {
			u, err := ParseUpdate(rec.Script)
			if err != nil {
				return fail(fmt.Errorf("ivm: replaying WAL record %d: %w", i+1, err))
			}
			if rec.Version > 0 {
				switch cur := v.cur.Load().id; {
				case cur < rec.Version-1:
					// A version hole before this record: its predecessors
					// were written but lost (e.g. a repaired-away corrupt
					// stretch). The surviving record is still authoritative
					// for its own version, so seed up to its predecessor
					// rather than replay it under the wrong number.
					v.SeedVersion(rec.Version - 1)
				case cur > rec.Version-1:
					return fail(fmt.Errorf("ivm: WAL record %d is stamped version %d but recovery is already at %d; the log does not match its checkpoint", i+1, rec.Version, cur))
				}
			}
			if _, _, err := v.submit(u, rec.Keys); err != nil {
				return fail(fmt.Errorf("ivm: replaying WAL record %d: %w", i+1, err))
			}
			if rec.Version > 0 {
				if got := v.cur.Load().id; got != rec.Version {
					return fail(fmt.Errorf("ivm: replaying WAL record %d published version %d, want %d", i+1, got, rec.Version))
				}
			}
		}
	} else {
		if init == nil {
			return fail(fmt.Errorf("ivm: store %s is empty and no init function was provided", dir))
		}
		v, err = init()
		if err != nil {
			return fail(err)
		}
		if v.store != nil {
			return fail(fmt.Errorf("ivm: init returned views already bound to a store"))
		}
		info.Initialized = true
	}
	if v.pf != nil {
		return fail(fmt.Errorf("ivm: the PF baseline cannot be store-bound"))
	}
	v.wmu.Lock()
	st.AttachMetrics(v.reg)
	if info.Initialized {
		// Checkpoint immediately so a snapshot always exists: from here
		// on every WAL record has an epoch-stamped snapshot beneath it.
		if err := st.CheckpointAt(v.db(), v.programSrc, v.hiddenLocked(), v.cur.Load().id); err != nil {
			v.wmu.Unlock()
			return fail(err)
		}
	}
	// Restore the fencing epoch (DESIGN.md §15). A store from before the
	// epoch was introduced — or a fresh one — reads 0 and is stamped as
	// epoch 1, the never-promoted primary, so the sidecar always exists
	// after the first boot.
	fence, err := storage.LoadFenceEpoch(st.Dir())
	if err != nil {
		v.wmu.Unlock()
		return fail(err)
	}
	if fence == 0 {
		fence = 1
		if err := storage.SaveFenceEpoch(st.Dir(), fence); err != nil {
			v.wmu.Unlock()
			return fail(err)
		}
	}
	v.fence.Store(fence)
	v.reg.Gauge("fence_epoch").Set(int64(fence))
	v.store = st
	v.wmu.Unlock()
	return v, info, nil
}

// Sync checkpoints store-bound views: the full state (base + derived
// relations, program text, hidden set) is written as a new snapshot
// epoch — temp file fsync, rename, directory fsync — and only then is
// the WAL truncated, so a crash anywhere in the sequence never
// double-applies a delta.
func (v *Views) Sync() error {
	if v.store == nil {
		return fmt.Errorf("ivm: Sync requires store-bound views (use OpenStore)")
	}
	v.wmu.Lock()
	defer v.wmu.Unlock()
	return v.store.CheckpointAt(v.db(), v.programSrc, v.hiddenLocked(), v.cur.Load().id)
}

// Store reports whether the views are bound to a crash-recovery store
// and, if so, its directory.
func (v *Views) Store() (dir string, ok bool) {
	if v.store == nil {
		return "", false
	}
	return v.store.Dir(), true
}

// FenceEpoch returns the cluster leadership fencing epoch these views
// operate under. A fresh primary is epoch 1; every follower promotion
// raises it by one. Replication stamps the epoch on every shipped
// record, and both ends reject traffic from an older epoch — the
// split-brain guard (see DESIGN.md §15). Lock-free.
func (v *Views) FenceEpoch() uint64 {
	if e := v.fence.Load(); e != 0 {
		return e
	}
	return 1
}

// SetFenceEpoch raises the fencing epoch to e. Lower-or-equal values
// are ignored (the epoch is monotonic; returns nil), so mirroring a
// leader's epoch and promotion can share this path. For store-bound
// views the new epoch is persisted durably before it becomes visible:
// a node that crashes right after a promotion still comes back fenced
// correctly.
func (v *Views) SetFenceEpoch(e uint64) error {
	for {
		cur := v.fence.Load()
		if e <= cur || (cur == 0 && e <= 1) {
			return nil
		}
		v.wmu.Lock()
		if v.store != nil {
			if err := storage.SaveFenceEpoch(v.store.Dir(), e); err != nil {
				v.wmu.Unlock()
				return err
			}
		}
		swapped := v.fence.CompareAndSwap(cur, e)
		v.wmu.Unlock()
		if swapped {
			v.reg.Gauge("fence_epoch").Set(int64(e))
			return nil
		}
	}
}

// ApplyScriptReplicated applies a delta script shipped over the
// replication stream, re-seeding the idempotency window with the keys
// the record carried. This is the follower's apply path: by recording
// the primary's keys, a client retry that lands on this node after a
// failover still dedups — exactly-once survives the promotion. The
// stream ships each key at most once (retries dedup on the primary
// before a record is cut), so unlike ApplyIdempotent this path seeds
// the window rather than answering from it — the same contract as WAL
// replay on recovery.
func (v *Views) ApplyScriptReplicated(script string, keys []string) (*ChangeSet, error) {
	u, err := ParseUpdate(script)
	if err != nil {
		return nil, err
	}
	cs, _, err := v.submit(u, keys)
	return cs, err
}

// Drain blocks until every Apply submitted before the call has
// completed (maintained, logged, published, and its handlers run) and
// the update scheduler is idle. Drain does not block new Apply calls —
// the graceful-shutdown discipline is: stop producing updates, Drain,
// then Sync/Close (or use Shutdown, which does all three store steps).
func (v *Views) Drain() { v.comb.Quiesce() }

// Shutdown is the clean-stop sequence for store-bound views: drain the
// update scheduler (every in-flight Apply completes and is durably
// logged), checkpoint the full state as a new snapshot epoch, and close
// the WAL. After Shutdown, reads still serve the final published
// version but Apply/Sync fail with ErrStoreClosed. Views without a
// store just drain; shutting down twice is a no-op.
func (v *Views) Shutdown() error {
	v.Drain()
	v.wmu.Lock()
	defer v.wmu.Unlock()
	if v.store == nil || v.store.Closed() {
		return nil
	}
	if err := v.store.CheckpointAt(v.db(), v.programSrc, v.hiddenLocked(), v.cur.Load().id); err != nil {
		// Close anyway: the WAL already holds every acked apply, so
		// recovery replays to the same state; the checkpoint was only an
		// optimization. Surface the checkpoint error over Close's.
		v.store.Close()
		return fmt.Errorf("ivm: shutdown checkpoint failed (WAL still authoritative): %w", err)
	}
	return v.store.Close()
}

// Close flushes and closes the store's WAL. It does not checkpoint —
// call Sync first for a clean shutdown; skipping it is safe and simply
// leaves recovery to replay the WAL. The views stay store-bound: a
// later Apply or Sync fails with ErrStoreClosed rather than silently
// continuing in memory without durability. Views without a store close
// as a no-op, and closing twice is a no-op.
func (v *Views) Close() error {
	v.wmu.Lock()
	defer v.wmu.Unlock()
	if v.store == nil {
		return nil
	}
	return v.store.Close()
}

// ChangeSet maps derived predicates to the signed count deltas an update
// produced (positive counts inserted derivations, negative deleted).
type ChangeSet struct {
	perPred map[string]*relation.Relation
	// version is the snapshot version in which these changes became
	// visible (stamped at publish time).
	version uint64
}

// Version returns the snapshot version in which this change set's
// effects became visible: Snapshot handles with Snapshot.Version() >=
// this value observe the update (0 for change sets not produced by a
// published maintenance pass).
func (c *ChangeSet) Version() uint64 { return c.version }

func changeSetFromDeltas(m map[string]*relation.Relation) *ChangeSet {
	return &ChangeSet{perPred: m}
}

func changeSetFromChanges(del, add map[string]*relation.Relation) *ChangeSet {
	per := make(map[string]*relation.Relation)
	for pred, d := range del {
		n, ok := per[pred]
		if !ok {
			n = relation.New(d.Arity())
			per[pred] = n
		}
		n.MergeDelta(d.Negate())
	}
	for pred, a := range add {
		n, ok := per[pred]
		if !ok {
			n = relation.New(a.Arity())
			per[pred] = n
		}
		n.MergeDelta(a)
	}
	for pred, n := range per {
		if n.Empty() {
			delete(per, pred)
		}
	}
	return &ChangeSet{perPred: per}
}

// Preds returns the predicates with changes, sorted.
func (c *ChangeSet) Preds() []string {
	out := make([]string, 0, len(c.perPred))
	for p := range c.perPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Delta returns the signed rows for pred, sorted (nil if unchanged).
func (c *ChangeSet) Delta(pred string) []Row {
	r := c.perPred[pred]
	if r == nil {
		return nil
	}
	return r.SortedRows()
}

// Inserted returns the tuples whose counts increased for pred.
func (c *ChangeSet) Inserted(pred string) []Row {
	var out []Row
	for _, row := range c.Delta(pred) {
		if row.Count > 0 {
			out = append(out, row)
		}
	}
	return out
}

// Deleted returns the tuples whose counts decreased for pred (counts are
// reported positive).
func (c *ChangeSet) Deleted(pred string) []Row {
	var out []Row
	for _, row := range c.Delta(pred) {
		if row.Count < 0 {
			out = append(out, Row{Tuple: row.Tuple, Count: -row.Count})
		}
	}
	return out
}

// Empty reports whether no view changed.
func (c *ChangeSet) Empty() bool { return len(c.perPred) == 0 }

// String renders the change set in the paper's Δ notation.
func (c *ChangeSet) String() string {
	s := ""
	for _, pred := range c.Preds() {
		s += fmt.Sprintf("Δ(%s) = %s\n", pred, c.perPred[pred])
	}
	return s
}

package ivm_test

// Golden tests reproducing every worked example of Gupta, Mumick &
// Subrahmanian, "Maintaining Views Incrementally" (SIGMOD 1993), with the
// exact relations and counts printed in the paper.

import (
	"fmt"
	"testing"

	"ivm"
)

// wantRows asserts that pred's materialization is exactly the given
// "tuple:count" rows (order-insensitive; count omitted means 1).
func wantRows(t *testing.T, v *ivm.Views, pred string, want map[string]int64) {
	t.Helper()
	got := make(map[string]int64)
	for _, row := range v.Rows(pred) {
		key := ""
		for i, val := range row.Tuple {
			if i > 0 {
				key += ","
			}
			key += val.String()
		}
		got[key] = row.Count
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", pred, got, want)
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: tuple %s has count %d, want %d (full: %v)", pred, k, got[k], c, got)
		}
	}
}

// wantDelta asserts the change set for pred is exactly the given signed
// counts.
func wantDelta(t *testing.T, ch *ivm.ChangeSet, pred string, want map[string]int64) {
	t.Helper()
	got := make(map[string]int64)
	for _, row := range ch.Delta(pred) {
		key := ""
		for i, val := range row.Tuple {
			if i > 0 {
				key += ","
			}
			key += val.String()
		}
		got[key] = row.Count
	}
	if fmt.Sprint(got) != fmt.Sprint(normalize(want)) {
		t.Fatalf("Δ(%s): got %v, want %v", pred, got, want)
	}
}

func normalize(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

const example11Links = `
	link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).
`

// TestExample11Counting reproduces Example 1.1: deleting link(a,b) under
// the counting algorithm deletes hop(a,e) (count 1→0) but keeps hop(a,c)
// (count 2→1).
func TestExample11Counting(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(example11Links)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy() != ivm.Counting {
		t.Fatalf("strategy = %v, want counting", v.Strategy())
	}
	wantRows(t, v, "hop", map[string]int64{"a,c": 2, "a,e": 1})

	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	wantDelta(t, ch, "hop", map[string]int64{"a,c": -1, "a,e": -1})
	wantRows(t, v, "hop", map[string]int64{"a,c": 1})
}

// TestExample11DRed reproduces Example 1.1 under DRed: both hop tuples are
// overestimated as deleted, and hop(a,c) is rederived.
func TestExample11DRed(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(example11Links)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithStrategy(ivm.DRed))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "hop", map[string]int64{"a,c": 1, "a,e": 1})

	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	wantDelta(t, ch, "hop", map[string]int64{"a,e": -1})
	wantRows(t, v, "hop", map[string]int64{"a,c": 1})

	st, ok := v.DRedStats()
	if !ok {
		t.Fatal("no DRed stats")
	}
	// The paper: "DRed first deletes tuples hop(a,c) and hop(a,e) ...
	// hop(a,c) is rederived and reinserted in the second step."
	if st.Overestimated != 2 || st.Rederived != 1 {
		t.Fatalf("overestimated=%d rederived=%d, want 2 and 1", st.Overestimated, st.Rederived)
	}
}

const example42Program = `
	hop(X,Y)     :- link(X,Z), link(Z,Y).
	tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
`

const example42Links = `
	link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).
`

// TestExample42 reproduces Example 4.2 under duplicate semantics: the
// two-stratum maintenance of hop and tri_hop with the paper's exact
// deltas.
func TestExample42(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(example42Links)
	v, err := db.Materialize(example42Program, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "hop", map[string]int64{"a,c": 2, "d,h": 1, "b,h": 1})
	wantRows(t, v, "tri_hop", map[string]int64{"a,h": 2})

	// Δ(link) = {ab -1, df +1, af +1}
	ch, err := v.ApplyScript(`-link(a,b). +link(d,f). +link(a,f).`)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Δ(hop) = {ac -1, ag, dg} ⊎ {af}
	wantDelta(t, ch, "hop", map[string]int64{"a,c": -1, "a,g": 1, "d,g": 1, "a,f": 1})
	// Paper: Δ(tri_hop) = {ah -1, ag}
	wantDelta(t, ch, "tri_hop", map[string]int64{"a,h": -1, "a,g": 1})

	wantRows(t, v, "hop", map[string]int64{"a,c": 1, "a,f": 1, "a,g": 1, "d,g": 1, "d,h": 1, "b,h": 1})
	wantRows(t, v, "tri_hop", map[string]int64{"a,h": 1, "a,g": 1})
}

// TestExample51SetOptimization reproduces Example 5.1: under set
// semantics, hop(a,c) losing one of two derivations is NOT cascaded to
// tri_hop (statement (2) of Algorithm 4.1), so Δ(tri_hop) has no ah entry
// beyond the insertion side.
func TestExample51SetOptimization(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(example42Links)
	v, err := db.Materialize(example42Program, ivm.WithSemantics(ivm.SetSemantics))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.ApplyScript(`-link(a,b). +link(d,f). +link(a,f).`)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Δ(hop) as sets = {af, ag, dg} — ac is NOT deleted (still
	// derivable), so it must not cascade.
	for _, row := range ch.Deleted("hop") {
		t.Fatalf("unexpected hop deletion %v", row.Tuple)
	}
	// tri_hop gains ag; ah must survive because hop(a,c) survived.
	wantRows(t, v, "tri_hop", map[string]int64{"a,h": 1, "a,g": 1})
	if !v.Has("tri_hop", "a", "h") {
		t.Fatal("tri_hop(a,h) should survive under the set-semantics optimization")
	}

	st, _ := v.CountingStats()
	if st.CascadeStopped != 0 {
		// hop's set image DID change (af, ag, dg inserted) so the cascade
		// is not fully stopped — this asserts the stat only counts full
		// stops.
		t.Fatalf("CascadeStopped = %d, want 0", st.CascadeStopped)
	}
}

// TestStatement2FullStop drives a case where counts change but set images
// do not, so the whole cascade halts at stratum 1.
func TestStatement2FullStop(t *testing.T) {
	db := ivm.NewDatabase()
	// p(a) has two derivations via r1/r2; q copies p.
	db.MustLoad(`r1(a). r2(a).`)
	v, err := db.Materialize(`
		p(X) :- r1(X).
		p(X) :- r2(X).
		q(X) :- p(X).
	`, ivm.WithSemantics(ivm.SetSemantics))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "p", map[string]int64{"a": 2})
	wantRows(t, v, "q", map[string]int64{"a": 1})

	ch, err := v.Apply(ivm.NewUpdate().Delete("r1", "a"))
	if err != nil {
		t.Fatal(err)
	}
	// p's count drops 2→1 but its set image is unchanged: q must not
	// change and the cascade must stop.
	if len(ch.Delta("q")) != 0 {
		t.Fatalf("Δ(q) = %v, want empty", ch.Delta("q"))
	}
	st, _ := v.CountingStats()
	if st.CascadeStopped != 1 {
		t.Fatalf("CascadeStopped = %d, want 1", st.CascadeStopped)
	}
	wantRows(t, v, "p", map[string]int64{"a": 1})
	wantRows(t, v, "q", map[string]int64{"a": 1})
}

const example61Links = `
	link(a,b). link(a,e). link(a,f). link(a,g). link(b,c). link(c,d).
	link(c,k). link(e,d). link(f,d). link(g,h). link(h,k).
`

const example61Program = `
	hop(X,Y)          :- link(X,Z), link(Z,Y).
	tri_hop(X,Y)      :- hop(X,Z), link(Z,Y).
	only_tri_hop(X,Y) :- tri_hop(X,Y), !hop(X,Y).
`

// TestExample61Negation reproduces Example 6.1's relations, then
// exercises maintenance through the negated subgoal.
func TestExample61Negation(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(example61Links)
	v, err := db.Materialize(example61Program, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "hop", map[string]int64{
		"a,c": 1, "a,d": 2, "a,h": 1, "b,d": 1, "b,k": 1, "g,k": 1,
	})
	wantRows(t, v, "tri_hop", map[string]int64{"a,d": 1, "a,k": 2})
	wantRows(t, v, "only_tri_hop", map[string]int64{"a,k": 2})

	// Delete link(b,c): hop loses ac and bd and bk; tri_hop loses ad and
	// one ak derivation (via hop(a,c),link(c,k)); hop(a,d) still true so
	// only_tri_hop unchanged except ak's count drop.
	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "hop", map[string]int64{"a,d": 2, "a,h": 1, "g,k": 1})
	wantRows(t, v, "tri_hop", map[string]int64{"a,k": 1})
	wantRows(t, v, "only_tri_hop", map[string]int64{"a,k": 1})
	if len(ch.Deleted("only_tri_hop")) != 1 {
		t.Fatalf("Δ(only_tri_hop) deletions = %v", ch.Deleted("only_tri_hop"))
	}

	// Now insert hop-killing tuple: link(a,k) makes hop(a,k) true via no
	// 2-path... instead insert link(a,c) giving hop(a,k) (a-c-k), which
	// negates only_tri_hop(a,k) away.
	_, err = v.Apply(ivm.NewUpdate().Insert("link", "a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Has("only_tri_hop", "a", "k") {
		t.Fatal("only_tri_hop(a,k) should be deleted once hop(a,k) is derivable")
	}
}

// TestExample62Aggregation reproduces Example 6.2: min_cost_hop over
// weighted links, maintained through insertions and deletions that move
// group minima (Algorithm 6.1).
func TestExample62Aggregation(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`
		link(a,b,10). link(b,c,20). link(b,e,5). link(a,d,15). link(d,c,6).
	`)
	v, err := db.Materialize(`
		hop(S,D,C1+C2)    :- link(S,I,C1), link(I,D,C2).
		min_cost_hop(S,D,M) :- groupby(hop(S,D,C), [S,D], M = min(C)).
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "hop", map[string]int64{
		"a,c,30": 1, // a-b-c
		"a,e,15": 1, // a-b-e
		"a,c,21": 1, // a-d-c
	})
	wantRows(t, v, "min_cost_hop", map[string]int64{"a,c,21": 1, "a,e,15": 1})

	// Insert a cheaper path a-b' with hop cost 12: link(a,x,6), link(x,c,6).
	ch, err := v.ApplyScript(`+link(a,x,6). +link(x,c,6).`)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "min_cost_hop", map[string]int64{"a,c,12": 1, "a,e,15": 1})
	wantDelta(t, ch, "min_cost_hop", map[string]int64{"a,c,21": -1, "a,c,12": 1})

	// Delete the minimum: the group must rescan and fall back to 21.
	_, err = v.ApplyScript(`-link(x,c,6).`)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "min_cost_hop", map[string]int64{"a,c,21": 1, "a,e,15": 1})

	// Delete every a→c hop: the group disappears.
	_, err = v.ApplyScript(`-link(b,c,20). -link(d,c,6).`)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, v, "min_cost_hop", map[string]int64{"a,e,15": 1})
}

#!/usr/bin/env sh
# End-to-end smoke of the replication layer, runnable locally (`make
# replica`) and in CI (the replication-smoke job): boot a store-bound
# primary ivmd and a follower (`-follow`), load the primary, check the
# follower converges and rejects writes, then SIGTERM the primary,
# restart it from its checkpoint, and require the follower's lag to
# recover to zero. Both daemons' logs land in $SMOKE_DIR (uploaded as a
# CI artifact on every run, pass or fail).
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
PRIMARY_ADDR="${IVMD_PRIMARY_ADDR:-127.0.0.1:7499}"
FOLLOWER_ADDR="${IVMD_FOLLOWER_ADDR:-127.0.0.1:7498}"
PRIMARY_LOG="$SMOKE_DIR/primary.log"
FOLLOWER_LOG="$SMOKE_DIR/follower.log"
STORE="$SMOKE_DIR/store"

echo "== replica smoke: workdir $SMOKE_DIR, primary $PRIMARY_ADDR, follower $FOLLOWER_ADDR"
go build -o "$SMOKE_DIR/ivmd" ./cmd/ivmd

start_primary() {
    "$SMOKE_DIR/ivmd" \
        -addr "$PRIMARY_ADDR" \
        -store "$STORE" \
        -program testdata/server/views.dl \
        -data testdata/server/facts.dl \
        -quiet \
        >>"$PRIMARY_LOG" 2>&1 &
    PRIMARY_PID=$!
}

wait_ready() {
    # $1 = log file, $2 = expected 'serving HTTP' count, $3 = pid, $4 = name
    i=0
    # grep -c prints 0 *and* exits 1 on no match, so capture with || true
    # and default the empty missing-file case.
    until count="$(grep -c 'serving HTTP' "$1" 2>/dev/null || true)" && [ "${count:-0}" -ge "$2" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "$4 did not become ready within 20s" >&2
            exit 1
        fi
        if ! kill -0 "$3" 2>/dev/null; then
            echo "$4 exited before becoming ready" >&2
            exit 1
        fi
        sleep 0.2
    done
}

start_primary
cleanup() {
    kill "$PRIMARY_PID" 2>/dev/null || true
    kill "$FOLLOWER_PID" 2>/dev/null || true
    echo "== primary log ($PRIMARY_LOG):"
    cat "$PRIMARY_LOG" || true
    echo "== follower log ($FOLLOWER_LOG):"
    cat "$FOLLOWER_LOG" || true
}
trap cleanup EXIT
FOLLOWER_PID=""
wait_ready "$PRIMARY_LOG" 1 "$PRIMARY_PID" primary
echo "== primary ready (pid $PRIMARY_PID)"

# Some committed load before the follower exists: it must bootstrap it.
i=0
while [ "$i" -lt 10 ]; do
    curl -sf -X POST "http://$PRIMARY_ADDR/v1/apply" \
        -H 'Content-Type: text/plain' \
        -d "+link(pre$i,post$i)." >/dev/null
    i=$((i + 1))
done

"$SMOKE_DIR/ivmd" \
    -addr "$FOLLOWER_ADDR" \
    -follow "http://$PRIMARY_ADDR" \
    -quiet \
    >>"$FOLLOWER_LOG" 2>&1 &
FOLLOWER_PID=$!
wait_ready "$FOLLOWER_LOG" 1 "$FOLLOWER_PID" follower
echo "== follower ready (pid $FOLLOWER_PID)"

# More load while the follower tails.
i=0
while [ "$i" -lt 10 ]; do
    curl -sf -X POST "http://$PRIMARY_ADDR/v1/apply" \
        -H 'Content-Type: text/plain' \
        -d "+link(live$i,tail$i)." >/dev/null
    i=$((i + 1))
done

primary_version() {
    curl -sf "http://$PRIMARY_ADDR/v1/info" | sed -n 's/.*"version":\([0-9]*\).*/\1/p'
}
follower_lag() {
    curl -sf "http://$FOLLOWER_ADDR/v1/metrics" | awk '/^replica_lag_versions /{print $2}'
}

wait_lag_zero() {
    i=0
    until [ "$(follower_lag)" = "0" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "follower lag never recovered to 0 (currently '$(follower_lag)')" >&2
            exit 1
        fi
        sleep 0.2
    done
}
wait_lag_zero
echo "== follower caught up (lag 0 at primary version $(primary_version))"

# The follower serves reads locally and advertises the cluster shape.
curl -sf "http://$FOLLOWER_ADDR/v1/rows?pred=link" >/dev/null
ROLE="$(curl -sf "http://$FOLLOWER_ADDR/v1/info" | sed -n 's/.*"role":"\([a-z]*\)".*/\1/p')"
LEADER="$(curl -sf "http://$FOLLOWER_ADDR/v1/info" | sed -n 's/.*"leader_url":"\([^"]*\)".*/\1/p')"
if [ "$ROLE" != "follower" ] || [ "$LEADER" != "http://$PRIMARY_ADDR" ]; then
    echo "follower /v1/info role='$ROLE' leader_url='$LEADER', want follower / http://$PRIMARY_ADDR" >&2
    exit 1
fi

# A write sent to the follower is forwarded to the leader transparently:
# the client gets the leader's 200 ack, and the primary's row count
# grows — no redirect chasing.
CODE="$(curl -s -o "$SMOKE_DIR/fwd_ack.json" -w '%{http_code}' -X POST "http://$FOLLOWER_ADDR/v1/apply" \
    -H 'Content-Type: text/plain' -H 'Idempotency-Key: smoke-fwd-1' -d '+link(fwd_src,fwd_dst).')"
if [ "$CODE" != "200" ]; then
    echo "forwarded apply answered $CODE, want 200 (ack: $(cat "$SMOKE_DIR/fwd_ack.json" 2>/dev/null))" >&2
    exit 1
fi
COUNT="$(curl -sf "http://$PRIMARY_ADDR/v1/count?goal=link(fwd_src,fwd_dst)" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')"
if [ "$COUNT" != "1" ]; then
    echo "forwarded write missing on the primary (count=$COUNT, want 1)" >&2
    exit 1
fi
# A retry with the same key must dedup at the leader, not double-apply.
curl -sf -X POST "http://$FOLLOWER_ADDR/v1/apply" \
    -H 'Content-Type: text/plain' -H 'Idempotency-Key: smoke-fwd-1' -d '+link(fwd_src,fwd_dst).' \
    | grep -q '"deduped":true' || {
    echo "forwarded retry was not deduped" >&2
    exit 1
}
FWD="$(curl -sf "http://$FOLLOWER_ADDR/v1/metrics" | awk '/^server_forwarded_total /{print $2}')"
if [ "${FWD:-0}" -lt 2 ]; then
    echo "server_forwarded_total = '$FWD', want >= 2" >&2
    exit 1
fi
echo "== follower forwards writes (200 ack, deduped retry, server_forwarded_total=$FWD)"

# Kill the primary: graceful SIGTERM (drain, checkpoint, close).
kill -TERM "$PRIMARY_PID"
EXIT_CODE=0
wait "$PRIMARY_PID" || EXIT_CODE=$?
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "primary exited $EXIT_CODE on SIGTERM" >&2
    exit 1
fi
echo "== primary killed cleanly; restarting from its store"

# Restart on the same address; the follower's reconnect loop finds it.
start_primary
wait_ready "$PRIMARY_LOG" 2 "$PRIMARY_PID" primary

# Load against the restarted primary; the follower must converge again.
i=0
while [ "$i" -lt 10 ]; do
    curl -sf -X POST "http://$PRIMARY_ADDR/v1/apply" \
        -H 'Content-Type: text/plain' \
        -d "+link(reborn$i,again$i)." >/dev/null
    i=$((i + 1))
done
wait_lag_zero
echo "== follower recovered across the primary restart (lag 0 at version $(primary_version))"

# The follower must never have tripped the divergence guard.
DIVERGED="$(curl -sf "http://$FOLLOWER_ADDR/v1/metrics" | awk '/^replica_divergence_total /{print $2}')"
if [ "$DIVERGED" != "0" ]; then
    echo "replica_divergence_total = $DIVERGED, want 0" >&2
    exit 1
fi

# SIGTERM the follower first (while the primary is still up, as a real
# drain would be) and check its shutdown ordering: the forwarding proxy
# and in-flight applies must drain BEFORE subscriptions close — the
# reverse order drops forwarded writes that were already accepted.
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || true
FOLLOWER_PID=""
DRAIN_LINE="$(grep -n 'draining applies and forwards' "$FOLLOWER_LOG" | tail -1 | cut -d: -f1)"
SUBS_LINE="$(grep -n 'closing subscriptions' "$FOLLOWER_LOG" | tail -1 | cut -d: -f1)"
if [ -z "$DRAIN_LINE" ] || [ -z "$SUBS_LINE" ] || [ "$DRAIN_LINE" -ge "$SUBS_LINE" ]; then
    echo "follower shutdown ordering wrong: 'draining applies and forwards' at line '$DRAIN_LINE', 'closing subscriptions' at line '$SUBS_LINE' (want drain first)" >&2
    exit 1
fi
echo "== follower drained forwards before closing subscriptions (lines $DRAIN_LINE < $SUBS_LINE)"

kill -TERM "$PRIMARY_PID"
wait "$PRIMARY_PID" || true
trap - EXIT

echo "== replica smoke OK (logs: $PRIMARY_LOG, $FOLLOWER_LOG)"

#!/usr/bin/env sh
# End-to-end smoke of the serving layer, runnable locally (`make
# smoke-server`) and in CI (the server-smoke job): boot ivmd on a temp
# store, drive applies / queries / a streaming subscription through the
# client package (via `ivmbench -server`), then SIGTERM it and require a
# clean graceful shutdown. The server log lands at $SMOKE_DIR/server.log
# (uploaded as a CI artifact on every run, pass or fail).
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
ADDR="${IVMD_ADDR:-127.0.0.1:7399}"
LOG="$SMOKE_DIR/server.log"
STORE="$SMOKE_DIR/store"

echo "== server smoke: workdir $SMOKE_DIR, addr $ADDR"
go build -o "$SMOKE_DIR/ivmd" ./cmd/ivmd
go build -o "$SMOKE_DIR/ivmbench" ./cmd/ivmbench

"$SMOKE_DIR/ivmd" \
    -addr "$ADDR" \
    -store "$STORE" \
    -program testdata/server/views.dl \
    -data testdata/server/facts.dl \
    -quiet \
    >"$LOG" 2>&1 &
IVMD_PID=$!

cleanup() {
    kill "$IVMD_PID" 2>/dev/null || true
    echo "== server log ($LOG):"
    cat "$LOG" || true
}
trap cleanup EXIT

# Readiness: the server logs this exact line once the listener is bound.
i=0
until grep -q 'serving HTTP' "$LOG"; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "ivmd did not become ready within 10s" >&2
        exit 1
    fi
    if ! kill -0 "$IVMD_PID" 2>/dev/null; then
        echo "ivmd exited before becoming ready" >&2
        exit 1
    fi
    sleep 0.2
done
echo "== ivmd ready (pid $IVMD_PID)"

# Drive mixed load — closed-loop applies, open-loop reads, one streaming
# subscriber — through the client package against the live daemon.
"$SMOKE_DIR/ivmbench" -server "http://$ADDR" -server-out "$SMOKE_DIR/BENCH_server.json" -scale smoke

# Graceful shutdown: SIGTERM must drain, checkpoint, and exit 0.
kill -TERM "$IVMD_PID"
EXIT_CODE=0
wait "$IVMD_PID" || EXIT_CODE=$?
trap - EXIT
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "== ivmd exited $EXIT_CODE on SIGTERM; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'shutdown complete' "$LOG" || {
    echo "== graceful shutdown did not complete; log:" >&2
    cat "$LOG" >&2
    exit 1
}

# A clean shutdown checkpoints, so reopening the store replays no WAL.
"$SMOKE_DIR/ivmd" -addr "$ADDR" -store "$STORE" >>"$LOG" 2>&1 &
IVMD_PID=$!
trap cleanup EXIT
i=0
until grep -c 'serving HTTP' "$LOG" | grep -qx 2; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "ivmd did not restart from the store within 10s" >&2
        exit 1
    fi
    sleep 0.2
done
if grep -E 'replayed=[1-9]' "$LOG"; then
    echo "== restart replayed WAL records after a clean shutdown; log:" >&2
    cat "$LOG" >&2
    exit 1
fi
kill -TERM "$IVMD_PID"
wait "$IVMD_PID" || true
trap - EXIT

echo "== server smoke OK (log: $LOG)"

#!/usr/bin/env sh
# Docs lint, runnable locally (`make docs-lint`) and in CI: the README
# must stay within its line budget (the deep dives belong in docs/),
# the docs/ pages the README points at must exist, and every relative
# markdown link in README.md and docs/*.md must resolve to a real file.
set -eu

README_BUDGET="${README_BUDGET:-250}"

LINES="$(wc -l <README.md)"
if [ "$LINES" -gt "$README_BUDGET" ]; then
    echo "README.md is $LINES lines, over the $README_BUDGET-line budget:" >&2
    echo "move deep-dive material into docs/ and link it instead" >&2
    exit 1
fi
echo "README.md: $LINES lines (budget $README_BUDGET)"

# The pages the cluster story depends on must exist by name — a rename
# that forgets the README pointer should fail here, not in a 404.
for page in docs/OPERATIONS.md docs/SERVING.md docs/REPLICATION.md docs/CI.md; do
    if [ ! -f "$page" ]; then
        echo "required docs page missing: $page" >&2
        exit 1
    fi
done

# Every relative markdown link target must exist. Extract ](path) and
# ](path#anchor) targets, skip absolute URLs and pure anchors, and
# resolve each against the linking file's directory.
FAILED=0
for f in README.md docs/*.md; do
    dir="$(dirname "$f")"
    for target in $(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//; s/#.*//'); do
        case "$target" in
        '' | http://* | https://* | mailto:*) continue ;;
        # ../../actions/... style links resolve against the GitHub web
        # UI, not the working tree — anything escaping the repo root
        # is out of scope for a filesystem check.
        ../../*) continue ;;
        esac
        case "$target" in
        /*) path=".$target" ;;
        *) path="$dir/$target" ;;
        esac
        if [ ! -e "$path" ]; then
            echo "$f: broken link -> $target" >&2
            FAILED=1
        fi
    done
done
if [ "$FAILED" -ne 0 ]; then
    exit 1
fi
echo "docs lint OK (README + docs/ links all resolve)"

#!/usr/bin/env sh
# End-to-end smoke of fenced failover, runnable locally (`make
# failover`) and in CI (the failover-smoke job): boot a store-bound
# primary and two followers, push writes through a follower's
# forwarding proxy, SIGTERM the primary mid-story, promote the first
# follower with `ivmd -promote`, require writes through the second
# follower to succeed against the new leader, then revive the old
# primary from its store and require both of its serving surfaces to be
# fenced (409 + replica_fenced_total). All three daemons' logs land in
# $SMOKE_DIR (uploaded as a CI artifact on every run, pass or fail).
set -eu

SMOKE_DIR="${SMOKE_DIR:-$(mktemp -d)}"
PRIMARY_ADDR="${IVMD_PRIMARY_ADDR:-127.0.0.1:7497}"
F1_ADDR="${IVMD_F1_ADDR:-127.0.0.1:7496}"
F2_ADDR="${IVMD_F2_ADDR:-127.0.0.1:7495}"
PRIMARY_LOG="$SMOKE_DIR/primary.log"
F1_LOG="$SMOKE_DIR/follower1.log"
F2_LOG="$SMOKE_DIR/follower2.log"
STORE="$SMOKE_DIR/store"

echo "== failover smoke: workdir $SMOKE_DIR, primary $PRIMARY_ADDR, followers $F1_ADDR $F2_ADDR"
go build -o "$SMOKE_DIR/ivmd" ./cmd/ivmd

wait_ready() {
    # $1 = log file, $2 = expected 'serving HTTP' count, $3 = pid, $4 = name
    i=0
    until count="$(grep -c 'serving HTTP' "$1" 2>/dev/null || true)" && [ "${count:-0}" -ge "$2" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "$4 did not become ready within 20s" >&2
            exit 1
        fi
        if ! kill -0 "$3" 2>/dev/null; then
            echo "$4 exited before becoming ready" >&2
            exit 1
        fi
        sleep 0.2
    done
}

metric() {
    # $1 = addr, $2 = metric name
    curl -sf "http://$1/v1/metrics" | awk -v m="$2" '$1==m{print $2}'
}

wait_lag_zero() {
    # $1 = follower addr, $2 = name
    i=0
    until [ "$(metric "$1" replica_lag_versions)" = "0" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "$2 lag never recovered to 0 (currently '$(metric "$1" replica_lag_versions)')" >&2
            exit 1
        fi
        sleep 0.2
    done
}

info_field() {
    # $1 = addr, $2 = field (string form: role, leader_url)
    curl -sf "http://$1/v1/info" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p"
}

PRIMARY_PID=""
F1_PID=""
F2_PID=""
cleanup() {
    kill "$PRIMARY_PID" 2>/dev/null || true
    kill "$F1_PID" 2>/dev/null || true
    kill "$F2_PID" 2>/dev/null || true
    echo "== primary log ($PRIMARY_LOG):"
    cat "$PRIMARY_LOG" || true
    echo "== follower 1 log ($F1_LOG):"
    cat "$F1_LOG" || true
    echo "== follower 2 log ($F2_LOG):"
    cat "$F2_LOG" || true
}
trap cleanup EXIT

"$SMOKE_DIR/ivmd" \
    -addr "$PRIMARY_ADDR" \
    -store "$STORE" \
    -program testdata/server/views.dl \
    -data testdata/server/facts.dl \
    -quiet \
    >>"$PRIMARY_LOG" 2>&1 &
PRIMARY_PID=$!
wait_ready "$PRIMARY_LOG" 1 "$PRIMARY_PID" primary
echo "== primary ready (pid $PRIMARY_PID)"

# F1: the follower we will promote. F2: the forwarding front door,
# seeded with F1 so it can re-resolve the leader after the failover.
"$SMOKE_DIR/ivmd" \
    -addr "$F1_ADDR" \
    -follow "http://$PRIMARY_ADDR" \
    -quiet \
    >>"$F1_LOG" 2>&1 &
F1_PID=$!
"$SMOKE_DIR/ivmd" \
    -addr "$F2_ADDR" \
    -follow "http://$PRIMARY_ADDR,http://$F1_ADDR" \
    -quiet \
    >>"$F2_LOG" 2>&1 &
F2_PID=$!
wait_ready "$F1_LOG" 1 "$F1_PID" "follower 1"
wait_ready "$F2_LOG" 1 "$F2_PID" "follower 2"
echo "== followers ready (pids $F1_PID, $F2_PID)"

# Keyed load through F2's forwarding proxy while the old primary leads.
i=0
while [ "$i" -lt 10 ]; do
    curl -sf -X POST "http://$F2_ADDR/v1/apply" \
        -H 'Content-Type: text/plain' \
        -H "Idempotency-Key: failover-pre-$i" \
        -d "+link(pre$i,row$i)." >/dev/null
    i=$((i + 1))
done
wait_lag_zero "$F1_ADDR" "follower 1"
wait_lag_zero "$F2_ADDR" "follower 2"
echo "== 10 forwarded writes committed, both followers at lag 0"

# Kill the primary: graceful SIGTERM drains the replication streams, so
# everything acked is already on the followers.
kill -TERM "$PRIMARY_PID"
EXIT_CODE=0
wait "$PRIMARY_PID" || EXIT_CODE=$?
PRIMARY_PID=""
if [ "$EXIT_CODE" -ne 0 ]; then
    echo "primary exited $EXIT_CODE on SIGTERM" >&2
    exit 1
fi
echo "== primary killed"

# Promote F1 via the client-mode flag (the operator's command).
"$SMOKE_DIR/ivmd" -promote "http://$F1_ADDR"
ROLE="$(info_field "$F1_ADDR" role)"
EPOCH="$(curl -sf "http://$F1_ADDR/v1/info" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')"
if [ "$ROLE" != "primary" ] || [ "$EPOCH" != "2" ]; then
    echo "promoted follower reports role='$ROLE' epoch='$EPOCH', want primary at epoch 2" >&2
    exit 1
fi
echo "== follower 1 promoted (role=$ROLE epoch=$EPOCH)"

# Writes through F2 must succeed again once it re-resolves the leader
# to F1 — retry with one key so slow re-resolution cannot double-apply.
i=0
until curl -sf -X POST "http://$F2_ADDR/v1/apply" \
    -H 'Content-Type: text/plain' \
    -H 'Idempotency-Key: failover-post-0' \
    -d '+link(post0,row0).' >/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "write through follower 2 never succeeded after the promotion" >&2
        exit 1
    fi
    sleep 0.2
done
F2_LEADER="$(info_field "$F2_ADDR" leader_url)"
if [ "$F2_LEADER" != "http://$F1_ADDR" ]; then
    echo "follower 2 forwards to '$F2_LEADER', want the promoted http://$F1_ADDR" >&2
    exit 1
fi
COUNT="$(curl -sf "http://$F1_ADDR/v1/count?goal=link(post0,row0)" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')"
if [ "$COUNT" != "1" ]; then
    echo "post-failover write missing on the new leader (count=$COUNT, want 1)" >&2
    exit 1
fi
echo "== writes flow through follower 2 to the new leader"

# Revive the old primary from its own store: it must come back fenced
# out of the cluster — the epoch-2 handshake and epoch-2 writes are
# refused with 409 and counted loudly.
"$SMOKE_DIR/ivmd" \
    -addr "$PRIMARY_ADDR" \
    -store "$STORE" \
    -program testdata/server/views.dl \
    -data testdata/server/facts.dl \
    -quiet \
    >>"$PRIMARY_LOG" 2>&1 &
PRIMARY_PID=$!
wait_ready "$PRIMARY_LOG" 2 "$PRIMARY_PID" "revived primary"
CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$PRIMARY_ADDR/v1/replicate?epoch=2&from=1")"
if [ "$CODE" != "409" ]; then
    echo "revived primary answered the epoch-2 handshake with $CODE, want 409" >&2
    exit 1
fi
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$PRIMARY_ADDR/v1/apply" \
    -H 'Content-Type: text/plain' -H 'X-Ivm-Epoch: 2' -d '+link(split,brain).')"
if [ "$CODE" != "409" ]; then
    echo "revived primary accepted an epoch-2 apply with $CODE, want 409" >&2
    exit 1
fi
FENCED="$(metric "$PRIMARY_ADDR" replica_fenced_total)"
if [ "${FENCED:-0}" -lt 2 ]; then
    echo "revived primary's replica_fenced_total = '$FENCED', want >= 2" >&2
    exit 1
fi
echo "== revived old primary fenced (409 on both surfaces, replica_fenced_total=$FENCED)"

# Convergence: F2 drains its lag against the new leader, never tripped
# the divergence guard, and holds every row written on both sides of
# the failover.
wait_lag_zero "$F2_ADDR" "follower 2"
DIVERGED="$(metric "$F2_ADDR" replica_divergence_total)"
if [ "$DIVERGED" != "0" ]; then
    echo "replica_divergence_total = $DIVERGED, want 0" >&2
    exit 1
fi
for goal in "link(pre0,row0)" "link(pre9,row9)" "link(post0,row0)"; do
    COUNT="$(curl -sf "http://$F2_ADDR/v1/count?goal=$goal" | sed -n 's/.*"count":\([0-9]*\).*/\1/p')"
    if [ "$COUNT" != "1" ]; then
        echo "follower 2 missing $goal after the failover (count=$COUNT, want 1)" >&2
        exit 1
    fi
done
echo "== follower 2 converged on the new leader (divergence 0)"

kill -TERM "$F2_PID"
wait "$F2_PID" || true
F2_PID=""
kill -TERM "$F1_PID"
wait "$F1_PID" || true
F1_PID=""
kill -TERM "$PRIMARY_PID"
wait "$PRIMARY_PID" || true
trap - EXIT

echo "== failover smoke OK (logs: $PRIMARY_LOG, $F1_LOG, $F2_LOG)"

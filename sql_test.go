package ivm_test

import (
	"strings"
	"testing"

	"ivm"
)

// TestSQLExample11 drives the paper's Example 1.1 through the SQL front
// end: the exact CREATE VIEW from the paper, then the link(a,b) deletion.
func TestSQLExample11(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b'), ('b','c'), ('b','e'), ('a','d'), ('d','c');
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy() != ivm.Counting {
		t.Fatalf("strategy: %v", v.Strategy())
	}
	if v.Count("hop", "a", "c") != 2 || v.Count("hop", "a", "e") != 1 {
		t.Fatalf("hop: %v", v.Rows("hop"))
	}
	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Deleted("hop")) != 2 {
		t.Fatalf("Δhop: %v", ch.Delta("hop"))
	}
	if !v.Has("hop", "a", "c") || v.Has("hop", "a", "e") {
		t.Fatalf("hop after: %v", v.Rows("hop"))
	}
}

// TestSQLNegationAndAggregation covers NOT EXISTS and GROUP BY through
// maintenance.
func TestSQLNegationAndAggregation(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE orders(id, cust, amt);
		INSERT INTO orders VALUES (1, 'acme', 120), (2, 'acme', 80), (3, 'zen', 50);
		CREATE TABLE banned(cust);
		INSERT INTO banned VALUES ('zen');

		CREATE VIEW spend(cust, total) AS
		  SELECT cust, SUM(amt) AS total FROM orders GROUP BY cust;

		CREATE VIEW good_spend(cust, total) AS
		  SELECT s.cust, s.total FROM spend s
		  WHERE NOT EXISTS (SELECT * FROM banned b WHERE b.cust = s.cust);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("good_spend", "acme", 200) || v.Has("good_spend", "zen", 50) {
		t.Fatalf("good_spend: %v", v.Rows("good_spend"))
	}
	// zen is unbanned: their spend appears.
	if _, err := v.Apply(ivm.NewUpdate().Delete("banned", "zen")); err != nil {
		t.Fatal(err)
	}
	if !v.Has("good_spend", "zen", 50) {
		t.Fatalf("good_spend after unban: %v", v.Rows("good_spend"))
	}
	// A new order moves acme's group.
	if _, err := v.Apply(ivm.NewUpdate().Insert("orders", 4, "acme", 1)); err != nil {
		t.Fatal(err)
	}
	if !v.Has("spend", "acme", 201) || v.Has("spend", "acme", 200) {
		t.Fatalf("spend after insert: %v", v.Rows("spend"))
	}
}

func TestSQLUnionView(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE road(a, b);
		CREATE TABLE rail(a, b);
		INSERT INTO road VALUES ('x', 'y');
		INSERT INTO rail VALUES ('y', 'z');
		CREATE VIEW connected(a, b) AS
		  SELECT a, b FROM road UNION SELECT a, b FROM rail;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows("connected")) != 2 {
		t.Fatalf("connected: %v", v.Rows("connected"))
	}
	if _, err := v.Apply(ivm.NewUpdate().Delete("rail", "y", "z")); err != nil {
		t.Fatal(err)
	}
	if v.Has("connected", "y", "z") {
		t.Fatal("rail branch must retract")
	}
}

func TestSQLDistinctRequiresSetSemantics(t *testing.T) {
	db := ivm.NewDatabase()
	_, err := db.MaterializeSQL(`
		CREATE TABLE p(x, y);
		CREATE VIEW v(x) AS SELECT DISTINCT x FROM p;
	`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err == nil || !strings.Contains(err.Error(), "set semantics") {
		t.Fatalf("err: %v", err)
	}
	// Fine under set semantics.
	if _, err := db.MaterializeSQL(`
		CREATE TABLE q(x, y);
		CREATE VIEW w(x) AS SELECT DISTINCT x FROM q;
	`); err != nil {
		t.Fatal(err)
	}
}

func TestSQLSaveLoadRoundTrip(t *testing.T) {
	// The translated Datalog must survive a snapshot round trip (the
	// snapshot stores the rendered program).
	dir := t.TempDir()
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b'), ('b','c');
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
		CREATE VIEW hops(s, n) AS
		  SELECT s, COUNT(*) AS n FROM hop GROUP BY s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/sql.gob"
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	v2, err := ivm.LoadViews(path)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Has("hops", "a", 1) {
		t.Fatalf("hops after load: %v", v2.Rows("hops"))
	}
	if _, err := v2.Apply(ivm.NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	if !v2.Has("hop", "b", "d") {
		t.Fatal("maintenance after load")
	}
}

func TestSQLErrorsSurface(t *testing.T) {
	db := ivm.NewDatabase()
	if _, err := db.MaterializeSQL(`CREATE VIEW v(x) AS SELECT x FROM nope;`); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := db.MaterializeSQL(`CREATE TABLE`); err == nil {
		t.Fatal("syntax error must fail")
	}
}

func TestSQLCountStarUnderSetSemantics(t *testing.T) {
	// Regression: the COUNT(*) aux rule used to project the source row
	// down to (group, 1), so under set semantics every row of a group
	// collapsed to one aux tuple and the count froze at 1. The aux head
	// now keeps the remaining body columns as row identity.
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a','b');
		CREATE VIEW deg(s, n) AS SELECT s, COUNT(*) AS n FROM link GROUP BY s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("deg", "a", 1) {
		t.Fatalf("deg: %v", v.Rows("deg"))
	}
	ch, err := v.Apply(ivm.NewUpdate().Insert("link", "a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Empty() || !v.Has("deg", "a", 2) {
		t.Fatalf("deg after insert: %v (changes %v)", v.Rows("deg"), ch.Preds())
	}
	if _, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if !v.Has("deg", "a", 1) {
		t.Fatalf("deg after delete: %v", v.Rows("deg"))
	}
}

func TestSQLSumWithRepeatedValues(t *testing.T) {
	// Same collapse applied to SUM whenever two rows of a group agreed on
	// the summed column.
	db := ivm.NewDatabase()
	v, err := db.MaterializeSQL(`
		CREATE TABLE orders(id, cust, amt);
		INSERT INTO orders VALUES (1, 'acme', 100), (2, 'acme', 100);
		CREATE VIEW spend(cust, total) AS
		  SELECT cust, SUM(amt) AS total FROM orders GROUP BY cust;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("spend", "acme", 200) {
		t.Fatalf("spend: %v", v.Rows("spend"))
	}
	if _, err := v.Apply(ivm.NewUpdate().Insert("orders", 3, "acme", 100)); err != nil {
		t.Fatal(err)
	}
	if !v.Has("spend", "acme", 300) {
		t.Fatalf("spend after insert: %v", v.Rows("spend"))
	}
}

package ivm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// Update is a batch of base-relation changes: insertions and deletions
// with multiplicities (the paper's Δ relations, Section 3). An Update is
// built with the fluent Insert/Delete methods or parsed from a delta
// script and applied atomically by Views.Apply.
type Update struct {
	per map[string]*relation.Relation
	// err records the first construction mistake (e.g. using a predicate
	// with two different arities); Views.Apply surfaces it.
	err error
}

// NewUpdate returns an empty update.
func NewUpdate() *Update { return &Update{per: make(map[string]*relation.Relation)} }

// Err returns the first construction error, if any.
func (u *Update) Err() error { return u.err }

// ParseUpdate parses a delta script such as
//
//	+link(a, f).
//	-link(a, b).
//	link(d, f) * 2.
//
// Unsigned facts insert; '* n' sets the multiplicity (n may be negative).
func ParseUpdate(src string) (*Update, error) {
	facts, err := parser.ParseDelta(src)
	if err != nil {
		return nil, err
	}
	u := NewUpdate()
	for _, f := range facts {
		u.add(f.Pred, f.Tuple, f.Count)
	}
	return u, nil
}

func (u *Update) add(pred string, t value.Tuple, count int64) {
	r, ok := u.per[pred]
	if !ok {
		r = relation.New(len(t))
		u.per[pred] = r
	}
	if r.Arity() != len(t) {
		if u.err == nil {
			u.err = fmt.Errorf("ivm: update uses %s with arity %d and %d", pred, r.Arity(), len(t))
		}
		return
	}
	r.Add(t, count)
}

// Insert adds one insertion of the tuple built from vals.
func (u *Update) Insert(pred string, vals ...any) *Update {
	u.add(pred, value.T(vals...), 1)
	return u
}

// Delete adds one deletion of the tuple built from vals.
func (u *Update) Delete(pred string, vals ...any) *Update {
	u.add(pred, value.T(vals...), -1)
	return u
}

// InsertTuple adds count insertions (or deletions, if count is negative)
// of t.
func (u *Update) InsertTuple(pred string, t Tuple, count int64) *Update {
	u.add(pred, t, count)
	return u
}

// Merge folds another update's changes into u.
func (u *Update) Merge(o *Update) *Update {
	for pred, r := range o.per {
		dst, ok := u.per[pred]
		if !ok {
			dst = relation.New(r.Arity())
			u.per[pred] = dst
		}
		dst.MergeDelta(r)
	}
	return u
}

// Empty reports whether the update contains no net changes.
func (u *Update) Empty() bool {
	for _, r := range u.per {
		if !r.Empty() {
			return false
		}
	}
	return true
}

// Preds returns the base predicates the update touches, sorted.
func (u *Update) Preds() []string {
	out := make([]string, 0, len(u.per))
	for p := range u.per {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// nonFinite returns a rendering of the first fact whose tuple holds a
// NaN or ±Inf float. Non-finite floats have no parseable literal
// syntax, so a logged delta script containing one could never replay;
// store-bound views reject such updates up front.
func (u *Update) nonFinite() (fact string, found bool) {
	for pred, r := range u.per {
		r.Each(func(row relation.Row) {
			if found {
				return
			}
			for _, val := range row.Tuple {
				if val.Kind() == value.Float {
					if f := val.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
						fact, found = fmt.Sprintf("%s%s", pred, row.Tuple), true
						return
					}
				}
			}
		})
		if found {
			return fact, true
		}
	}
	return "", false
}

// deltas exposes the raw per-predicate delta relations to the engines.
func (u *Update) deltas() map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, len(u.per))
	for pred, r := range u.per {
		if !r.Empty() {
			out[pred] = r
		}
	}
	return out
}

// String renders the update as a delta script.
func (u *Update) String() string {
	var sb strings.Builder
	for _, pred := range u.Preds() {
		for _, row := range u.per[pred].SortedRows() {
			switch {
			case row.Count == 1:
				fmt.Fprintf(&sb, "+%s%s.\n", pred, row.Tuple)
			case row.Count == -1:
				fmt.Fprintf(&sb, "-%s%s.\n", pred, row.Tuple)
			case row.Count > 0:
				fmt.Fprintf(&sb, "+%s%s * %d.\n", pred, row.Tuple, row.Count)
			default:
				fmt.Fprintf(&sb, "-%s%s * %d.\n", pred, row.Tuple, -row.Count)
			}
		}
	}
	return sb.String()
}

// UpdateFromRelations builds an Update directly from signed delta
// relations (used by the benchmark harness and workload generators).
func UpdateFromRelations(deltas map[string]*relation.Relation) *Update {
	u := NewUpdate()
	for pred, r := range deltas {
		cp := r.Clone()
		u.per[pred] = cp
	}
	return u
}

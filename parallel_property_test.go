package ivm_test

// Property-based equivalence tests for parallel evaluation: for random
// base relations and update sequences, a Views maintained with a worker
// pool must be bit-identical — same tuples, same derivation counts, same
// reported change sets — to one maintained sequentially. Together the
// program families × quick.Check trials exceed 100 randomized runs.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ivm"
)

// parallelCases pairs each property program family with the strategy it
// exercises (counting for the nonrecursive families, DRed for the
// recursive ones).
var parallelCases = []struct {
	name     string
	src      string
	strategy ivm.Strategy
	weighted bool
}{
	{"join-counting", propertyPrograms[0].src, ivm.Counting, false},
	{"negation-counting", propertyPrograms[1].src, ivm.Counting, false},
	{"aggregation-counting", propertyPrograms[2].src, ivm.Counting, true},
	{"recursion-dred", propertyPrograms[3].src, ivm.DRed, false},
	{"recursion-negation-dred", propertyPrograms[4].src, ivm.DRed, false},
}

// sameRows demands exact tuple AND count equality (not just set
// agreement): the parallel merge must preserve derivation counts.
func sameRows(a, b []ivm.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Tuple.Equal(b[i].Tuple) || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

func TestPropertyParallelMatchesSequential(t *testing.T) {
	for _, tc := range parallelCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				baseFacts := randomEdges(rng, 7, 12, tc.weighted).String()

				mk := func(workers int) *ivm.Views {
					db := ivm.NewDatabase()
					db.MustLoad(baseFacts)
					v, err := db.Materialize(tc.src,
						ivm.WithStrategy(tc.strategy), ivm.WithParallelism(workers))
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return v
				}
				seq := mk(1)
				par := mk(4)

				check := func(round int) {
					for pred := range seq.Program().DerivedPreds() {
						if !sameRows(seq.Rows(pred), par.Rows(pred)) {
							t.Fatalf("seed %d round %d: %s diverges under parallelism\nseq %v\npar %v",
								seed, round, pred, seq.Rows(pred), par.Rows(pred))
						}
					}
				}
				check(-1) // initial materialization

				for round := 0; round < 6; round++ {
					d := buildDelta(rng, seq, tc.weighted)
					if d.Empty() {
						continue
					}
					csSeq, err := seq.Apply(d)
					if err != nil {
						t.Fatalf("seed %d round %d seq: %v", seed, round, err)
					}
					csPar, err := par.Apply(d)
					if err != nil {
						t.Fatalf("seed %d round %d par: %v", seed, round, err)
					}
					// Reported change sets must match exactly too.
					sp, pp := csSeq.Preds(), csPar.Preds()
					if len(sp) != len(pp) {
						t.Fatalf("seed %d round %d: changed preds diverge %v vs %v", seed, round, sp, pp)
					}
					for i, pred := range sp {
						if pp[i] != pred || !sameRows(csSeq.Delta(pred), csPar.Delta(pred)) {
							t.Fatalf("seed %d round %d: Δ(%s) diverges\nseq %v\npar %v",
								seed, round, pred, csSeq.Delta(pred), csPar.Delta(pred))
						}
					}
					check(round)
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 21}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParallelDuplicateSemanticsCounts: under duplicate semantics the
// counting engine's stored multiplicities must survive parallel
// evaluation unchanged.
func TestParallelDuplicateSemanticsCounts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		baseFacts := randomEdges(rng, 6, 10, false).String()
		src := `
			hop(X,Y)     :- link(X,Z), link(Z,Y).
			tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		`
		mk := func(workers int) *ivm.Views {
			db := ivm.NewDatabase()
			db.MustLoad(baseFacts)
			v, err := db.Materialize(src,
				ivm.WithSemantics(ivm.DuplicateSemantics), ivm.WithParallelism(workers))
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		seq := mk(1)
		par := mk(3)
		for round := 0; round < 5; round++ {
			d := buildDelta(rng, seq, false)
			if d.Empty() {
				continue
			}
			if _, err := seq.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if _, err := par.Apply(d); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			for _, pred := range []string{"hop", "tri_hop"} {
				if !sameRows(seq.Rows(pred), par.Rows(pred)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestParallelAutoAndOptionResolution pins the WithParallelism contract.
func TestParallelAutoAndOptionResolution(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelism() != 1 {
		t.Fatalf("default parallelism = %d, want 1 (sequential)", v.Parallelism())
	}

	db2 := ivm.NewDatabase()
	db2.MustLoad(`link(a,b). link(b,c).`)
	v2, err := db2.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`, ivm.WithParallelism(6))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Parallelism() != 6 {
		t.Fatalf("WithParallelism(6) resolved to %d", v2.Parallelism())
	}

	db3 := ivm.NewDatabase()
	db3.MustLoad(`link(a,b). link(b,c).`)
	v3, err := db3.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithParallelism(ivm.AutoParallelism))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Parallelism() < 1 {
		t.Fatalf("AutoParallelism resolved to %d, want >= 1", v3.Parallelism())
	}
}

// TestParallelEnvResolution: IVM_PARALLELISM supplies the default when no
// option is given.
func TestParallelEnvResolution(t *testing.T) {
	t.Setenv("IVM_PARALLELISM", "5")
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallelism() != 5 {
		t.Fatalf("IVM_PARALLELISM=5 resolved to %d", v.Parallelism())
	}

	t.Setenv("IVM_PARALLELISM", "auto")
	db2 := ivm.NewDatabase()
	db2.MustLoad(`link(a,b). link(b,c).`)
	v2, err := db2.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Parallelism() < 1 {
		t.Fatalf("IVM_PARALLELISM=auto resolved to %d", v2.Parallelism())
	}

	// An explicit option always wins over the environment.
	db3 := ivm.NewDatabase()
	db3.MustLoad(`link(a,b). link(b,c).`)
	v3, err := db3.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`, ivm.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if v3.Parallelism() != 2 {
		t.Fatalf("option should beat env: got %d", v3.Parallelism())
	}
}

package ivm_test

import (
	"path/filepath"
	"strings"
	"testing"

	"ivm"
)

func TestAutoStrategySelection(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strategy() != ivm.Counting {
		t.Fatalf("nonrecursive → counting, got %v", v.Strategy())
	}
	v2, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Strategy() != ivm.DRed {
		t.Fatalf("recursive → dred, got %v", v2.Strategy())
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[ivm.Strategy]string{
		ivm.Auto: "auto", ivm.Counting: "counting", ivm.DRed: "dred",
		ivm.Recompute: "recompute", ivm.PF: "pf",
	} {
		if s.String() != want {
			t.Errorf("%d: %q", s, s.String())
		}
	}
}

func TestFactsInProgramText(t *testing.T) {
	db := ivm.NewDatabase()
	v, err := db.Materialize(`
		link(a,b). link(b,c).
		hop(X,Y) :- link(X,Z), link(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has("hop", "a", "c") {
		t.Fatal("facts from program text must be loaded")
	}
}

func TestCountingForcedOnRecursiveFails(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	_, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, ivm.WithStrategy(ivm.Counting))
	if err == nil {
		t.Fatal("counting on recursive must fail")
	}
}

func TestDRedDuplicateSemanticsRejected(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	_, err := db.Materialize(`v(X,Y) :- link(X,Y).`,
		ivm.WithStrategy(ivm.DRed), ivm.WithSemantics(ivm.DuplicateSemantics))
	if err == nil || !strings.Contains(err.Error(), "set semantics") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidationErrorsSurface(t *testing.T) {
	db := ivm.NewDatabase()
	if _, err := db.Materialize(`p(X,Y) :- q(X).`); err == nil {
		t.Fatal("unsafe rule must fail")
	}
	if _, err := db.Materialize(`p(X) :- q(X`); err == nil {
		t.Fatal("syntax error must fail")
	}
	if _, err := db.Materialize(`
		p(X) :- b(X), !q(X).
		q(X) :- b(X), !p(X).
	`); err == nil {
		t.Fatal("unstratifiable program must fail")
	}
}

func TestUpdateBuilder(t *testing.T) {
	u := ivm.NewUpdate().
		Insert("link", "a", "b").
		Delete("link", "c", "d").
		InsertTuple("link", ivm.T("e", "f"), 3)
	if u.Empty() {
		t.Fatal("not empty")
	}
	if got := u.Preds(); len(got) != 1 || got[0] != "link" {
		t.Fatalf("preds: %v", got)
	}
	s := u.String()
	for _, want := range []string{"+link(a, b).", "-link(c, d).", "+link(e, f) * 3."} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Round-trip through the parser.
	u2, err := ivm.ParseUpdate(s)
	if err != nil {
		t.Fatal(err)
	}
	if u2.String() != s {
		t.Fatalf("round trip: %q vs %q", u2.String(), s)
	}
	// Insert+Delete of the same tuple cancels.
	u3 := ivm.NewUpdate().Insert("p", 1).Delete("p", 1)
	if !u3.Empty() {
		t.Fatal("cancelled update must be empty")
	}
}

func TestUpdateMerge(t *testing.T) {
	a := ivm.NewUpdate().Insert("p", 1)
	b := ivm.NewUpdate().Delete("p", 1).Insert("q", 2)
	a.Merge(b)
	if got := a.Preds(); len(got) != 2 {
		t.Fatalf("preds: %v", got)
	}
	if !strings.Contains(a.String(), "+q(2).") || strings.Contains(a.String(), "p(1)") {
		t.Fatalf("merged: %q", a.String())
	}
}

func TestChangeSetAccessors(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "b", "c").Insert("link", "b", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Empty() {
		t.Fatal("changes expected")
	}
	if preds := ch.Preds(); len(preds) != 1 || preds[0] != "hop" {
		t.Fatalf("preds: %v", preds)
	}
	ins, del := ch.Inserted("hop"), ch.Deleted("hop")
	if len(ins) != 1 || !ins[0].Tuple.Equal(ivm.T("a", "d")) {
		t.Fatalf("inserted: %v", ins)
	}
	if len(del) != 1 || !del[0].Tuple.Equal(ivm.T("a", "c")) || del[0].Count != 1 {
		t.Fatalf("deleted: %v", del)
	}
	if !strings.Contains(ch.String(), "Δ(hop)") {
		t.Fatalf("render: %q", ch.String())
	}
}

func TestDatabaseAccessors(t *testing.T) {
	db := ivm.NewDatabase()
	db.Insert("p", 1, "x")
	db.InsertTuple("p", ivm.T(2, "y"), 4)
	rows := db.Rows("p")
	if len(rows) != 2 || rows[1].Count != 4 {
		t.Fatalf("rows: %v", rows)
	}
	if db.Rows("absent") != nil {
		t.Fatal("absent relation")
	}
}

func TestApplyScriptErrors(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`v(X,Y) :- link(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ApplyScript(`not a script`); err == nil {
		t.Fatal("bad script must error")
	}
	if _, err := v.ApplyScript(`-link(zz,qq).`); err == nil {
		t.Fatal("bad deletion must error")
	}
}

func TestRuleChangeRequiresDRed(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b).`)
	v, err := db.Materialize(`v(X,Y) :- link(X,Y).`) // counting
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddRule(`v(X,Y) :- other(X,Y).`); err == nil {
		t.Fatal("AddRule on counting must error")
	}
	if _, err := v.RemoveRule(0); err == nil {
		t.Fatal("RemoveRule on counting must error")
	}
}

func TestRuleChangeEndToEnd(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). hyper(x,y).`)
	v, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, ivm.WithStrategy(ivm.DRed))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.AddRule(`tc(X,Y) :- hyper(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Inserted("tc")) != 1 || !v.Has("tc", "x", "y") {
		t.Fatalf("AddRule: %v", ch)
	}
	ch, err = v.RemoveRule(2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Has("tc", "x", "y") || len(ch.Deleted("tc")) != 1 {
		t.Fatalf("RemoveRule: %v", ch)
	}
}

func TestSaveAndLoadViews(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "views.gob")

	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	src := `hop(X,Y) :- link(X,Z), link(Z,Y).`
	v, err := db.Materialize(src, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "b", "d")); err != nil {
		t.Fatal(err)
	}
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}

	v2, err := ivm.LoadViews(path, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ProgramSource() != src {
		t.Fatalf("program: %q", v2.ProgramSource())
	}
	for _, pred := range []string{"link", "hop"} {
		a, b := v.Rows(pred), v2.Rows(pred)
		if len(a) != len(b) {
			t.Fatalf("%s: %v vs %v", pred, a, b)
		}
		for i := range a {
			if !a[i].Tuple.Equal(b[i].Tuple) || a[i].Count != b[i].Count {
				t.Fatalf("%s row %d: %v vs %v", pred, i, a[i], b[i])
			}
		}
	}
	// And the restored views keep maintaining.
	if _, err := v2.Apply(ivm.NewUpdate().Delete("link", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if v2.Has("hop", "a", "c") {
		t.Fatal("maintenance after load")
	}
}

func TestPFStrategyThroughAPI(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c). link(a,c).`)
	v, err := db.Materialize(`
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, ivm.WithStrategy(ivm.PF), ivm.WithTupleFragmentation())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b").Delete("link", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Has("tc", "a", "b") || !v.Has("tc", "a", "c") {
		t.Fatalf("tc: %v", v.Rows("tc"))
	}
	st, ok := v.PFStats()
	if !ok || st.Passes != 2 {
		t.Fatalf("pf stats: %+v ok=%v", st, ok)
	}
	if len(ch.Deleted("tc")) == 0 {
		t.Fatal("deletions expected")
	}
}

func TestRecomputeStrategyThroughAPI(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		ivm.WithStrategy(ivm.Recompute), ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := v.Apply(ivm.NewUpdate().Delete("link", "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Deleted("hop")) != 1 {
		t.Fatalf("Δhop: %v", ch.Delta("hop"))
	}
}

func TestCountAndHasOnBaseRelations(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b) * 2.`)
	v, err := db.Materialize(`v(X,Y) :- link(X,Y).`, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	if v.Count("link", "a", "b") != 2 {
		t.Fatal("base count")
	}
	if v.Count("absent", "q") != 0 || v.Has("absent", "q") {
		t.Fatal("absent predicate")
	}
}

func TestOnChangeSubscriptions(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	var hopEvents, anyEvents []string
	v.OnChange("hop", func(pred string, ins, del []ivm.Row) {
		for _, r := range ins {
			hopEvents = append(hopEvents, "+"+r.Tuple.String())
		}
		for _, r := range del {
			hopEvents = append(hopEvents, "-"+r.Tuple.String())
		}
	})
	v.OnChange("", func(pred string, ins, del []ivm.Row) {
		anyEvents = append(anyEvents, pred)
	})

	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	if len(hopEvents) != 1 || hopEvents[0] != "+(b, d)" {
		t.Fatalf("hop events: %v", hopEvents)
	}
	if len(anyEvents) != 1 || anyEvents[0] != "hop" {
		t.Fatalf("any events: %v", anyEvents)
	}
	// Handlers may read the views.
	v.OnChange("hop", func(pred string, ins, del []ivm.Row) {
		if !v.Has("link", "a", "b") {
			t.Error("handler read failed")
		}
	})
	if _, err := v.Apply(ivm.NewUpdate().Delete("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	if hopEvents[len(hopEvents)-1] != "-(b, d)" {
		t.Fatalf("hop events: %v", hopEvents)
	}
	// No-op updates fire nothing.
	n := len(anyEvents)
	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "z", "q")); err != nil {
		t.Fatal(err)
	}
	if len(anyEvents) != n {
		t.Fatalf("no-op fired handlers: %v", anyEvents)
	}
}

func TestOnChangeWithRuleChanges(t *testing.T) {
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). tunnel(b,c).`)
	v, err := db.Materialize(`
		reach(X,Y) :- link(X,Y).
		reach(X,Y) :- reach(X,Z), reach(Z,Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	v.OnChange("reach", func(string, []ivm.Row, []ivm.Row) { fired++ })
	if _, err := v.AddRule(`reach(X,Y) :- tunnel(X,Y).`); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("AddRule fired %d", fired)
	}
	if _, err := v.RemoveRule(2); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("RemoveRule fired %d", fired)
	}
}

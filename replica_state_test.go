package ivm

import (
	"path/filepath"
	"testing"
	"time"
)

// Versions must survive a checkpoint + restart: the durable commit
// order is what replication aligns on across a primary crash.
func TestVersionsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *Views {
		v, _, err := OpenStore(dir, func() (*Views, error) {
			d := NewDatabase()
			d.MustLoad("link(a,b).")
			return d.Materialize("hop(X,Y) :- link(X,Z), link(Z,Y).")
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	v := open()
	if got := v.Snapshot().Version(); got != 1 {
		t.Fatalf("initial version = %d", got)
	}
	for i := 0; i < 3; i++ {
		if _, err := v.Apply(NewUpdate().Insert("link", "b", i)); err != nil {
			t.Fatal(err)
		}
	}
	want := v.Snapshot().Version()
	if want != 4 {
		t.Fatalf("version after 3 applies = %d", want)
	}
	// Close without checkpointing: recovery must replay the WAL records
	// and republish their original versions.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v = open()
	if got := v.Snapshot().Version(); got != want {
		t.Fatalf("version after WAL-replay recovery = %d, want %d", got, want)
	}

	// Checkpoint + clean shutdown: the snapshot's base version carries
	// the counter with no WAL left to replay.
	if _, err := v.Apply(NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	want = v.Snapshot().Version()
	if err := v.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v = open()
	defer v.Shutdown()
	if got := v.Snapshot().Version(); got != want {
		t.Fatalf("version after checkpointed recovery = %d, want %d", got, want)
	}
	// And the next apply continues the sequence.
	cs, err := v.Apply(NewUpdate().Insert("link", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	if cs.Version() != want+1 {
		t.Fatalf("post-recovery apply published %d, want %d", cs.Version(), want+1)
	}
}

// The commit-record stream must be gapless and version-ordered, carry
// scripts that reproduce each commit, and agree with the WAL tail.
func TestOnCommitRecordStream(t *testing.T) {
	dir := t.TempDir()
	v, _, err := OpenStore(dir, func() (*Views, error) {
		d := NewDatabase()
		d.MustLoad("link(a,b).")
		return d.Materialize("hop(X,Y) :- link(X,Z), link(Z,Y).")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Shutdown()

	var recs []CommitRecord
	v.OnCommitRecord(func(rec CommitRecord) { recs = append(recs, rec) })
	base := v.Snapshot().Version()

	if _, err := v.Apply(NewUpdate().Insert("link", "b", "c")); err != nil {
		t.Fatal(err)
	}
	// An empty net update still commits a version and a record, so the
	// version sequence followers see is gapless.
	if _, err := v.Apply(NewUpdate()); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(NewUpdate().Delete("link", "b", "c")); err != nil {
		t.Fatal(err)
	}

	if len(recs) != 3 {
		t.Fatalf("got %d commit records, want 3: %+v", len(recs), recs)
	}
	for i, rec := range recs {
		if rec.Version != base+uint64(i)+1 {
			t.Fatalf("record %d version = %d, want %d", i, rec.Version, base+uint64(i)+1)
		}
		if rec.Reset {
			t.Fatalf("record %d unexpectedly marked reset", i)
		}
		if rec.UnixNano == 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	if recs[0].Script == "" || recs[1].Script != "" || recs[2].Script == "" {
		t.Fatalf("scripts: %q", []string{recs[0].Script, recs[1].Script, recs[2].Script})
	}

	// The WAL-backed backfill source returns the same records.
	tail, ok, err := v.CommittedRecordsAfter(base)
	if err != nil || !ok {
		t.Fatalf("CommittedRecordsAfter: ok=%v err=%v", ok, err)
	}
	if len(tail) != 3 {
		t.Fatalf("WAL tail has %d records, want 3", len(tail))
	}
	for i := range tail {
		if tail[i].Version != recs[i].Version || tail[i].Script != recs[i].Script {
			t.Fatalf("tail record %d = %+v, commit record = %+v", i, tail[i], recs[i])
		}
	}
	// A caught-up follower gets nothing.
	tail, _, err = v.CommittedRecordsAfter(base + 3)
	if err != nil || len(tail) != 0 {
		t.Fatalf("caught-up tail: %v, %v", tail, err)
	}
}

func TestWaitForVersion(t *testing.T) {
	d := NewDatabase()
	d.MustLoad("link(a,b).")
	v, err := d.Materialize("hop(X,Y) :- link(X,Z), link(Z,Y).")
	if err != nil {
		t.Fatal(err)
	}
	cur := v.Snapshot().Version()
	if !v.WaitForVersion(cur, time.Second) {
		t.Fatal("WaitForVersion failed for the current version")
	}
	if v.WaitForVersion(cur+1, 20*time.Millisecond) {
		t.Fatal("WaitForVersion reached an unpublished version")
	}
	done := make(chan bool, 1)
	go func() { done <- v.WaitForVersion(cur+1, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := v.Apply(NewUpdate().Insert("link", "b", "c")); err != nil {
		t.Fatal(err)
	}
	if !<-done {
		t.Fatal("WaitForVersion missed the publish")
	}
}

func TestReplicaStateRoundTrip(t *testing.T) {
	d := NewDatabase()
	d.MustLoad(`link(a,b). link(b,c). link(b,e) * 3. weight(a, 2).`)
	v, err := d.Materialize("hop(X,Y) :- link(X,Z), link(Z,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Apply(NewUpdate().Insert("link", "c", "d")); err != nil {
		t.Fatal(err)
	}
	snap := v.Snapshot()
	st := snap.ReplicaState()
	follower, err := ViewsFromReplicaState(st)
	if err != nil {
		t.Fatal(err)
	}
	follower.SeedVersion(snap.Version())
	assertViewsIdentical(t, snap, follower.Snapshot())

	// Resync: advance the primary, reset the follower to the new state.
	if _, err := v.Apply(NewUpdate().Delete("link", "a", "b").Insert("link", "e", "f")); err != nil {
		t.Fatal(err)
	}
	snap = v.Snapshot()
	if err := follower.ResetToReplicaState(snap.ReplicaState(), snap.Version()); err != nil {
		t.Fatal(err)
	}
	assertViewsIdentical(t, snap, follower.Snapshot())

	// A reset under a different program must be refused.
	other, err := NewDatabase().Materialize("reach(X,Y) :- link(X,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.ResetToReplicaState(snap.ReplicaState(), snap.Version()); err == nil {
		t.Fatal("reset accepted a different program")
	}
}

// assertViewsIdentical requires rows, counts, and version to agree
// between two snapshots across every predicate either side stores.
func assertViewsIdentical(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.Version() != got.Version() {
		t.Fatalf("versions differ: %d != %d", want.Version(), got.Version())
	}
	wp, gp := want.Preds(), got.Preds()
	if len(wp) != len(gp) {
		t.Fatalf("predicate sets differ: %v != %v", wp, gp)
	}
	for i, pred := range wp {
		if gp[i] != pred {
			t.Fatalf("predicate sets differ: %v != %v", wp, gp)
		}
		a, b := want.Rows(pred), got.Rows(pred)
		if len(a) != len(b) {
			t.Fatalf("%s: %d rows != %d rows", pred, len(a), len(b))
		}
		for j := range a {
			if !a[j].Tuple.Equal(b[j].Tuple) || a[j].Count != b[j].Count {
				t.Fatalf("%s row %d: %v*%d != %v*%d", pred, j, a[j].Tuple, a[j].Count, b[j].Tuple, b[j].Count)
			}
		}
	}
}

// Rule edits checkpoint with the about-to-publish version and announce
// a reset commit record.
func TestRuleEditVersionAndReset(t *testing.T) {
	dir := t.TempDir()
	v, _, err := OpenStore(dir, func() (*Views, error) {
		d := NewDatabase()
		d.MustLoad("link(a,b). link(b,c).")
		return d.Materialize("reach(X,Y) :- link(X,Y). reach(X,Y) :- link(X,Z), reach(Z,Y).",
			WithStrategy(DRed))
	}, WithStrategy(DRed))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Shutdown()

	var resets []CommitRecord
	v.OnCommitRecord(func(rec CommitRecord) {
		if rec.Reset {
			resets = append(resets, rec)
		}
	})
	cs, err := v.AddRule("sym(X,Y) :- link(Y,X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(resets) != 1 || resets[0].Version != cs.Version() {
		t.Fatalf("reset records = %+v, want one at version %d", resets, cs.Version())
	}
	want := v.Snapshot().Version()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, _, err := OpenStore(dir, nil, WithStrategy(DRed))
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Shutdown()
	if got := v2.Snapshot().Version(); got != want {
		t.Fatalf("version after rule-edit checkpoint recovery = %d, want %d", got, want)
	}
}

func TestSnapshotBaseVersionAccessor(t *testing.T) {
	// Sanity-check the storage plumbing end to end through Views.Sync.
	dir := t.TempDir()
	v, _, err := OpenStore(dir, func() (*Views, error) {
		d := NewDatabase()
		d.MustLoad("p(1).")
		return d.Materialize("q(X) :- p(X).")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Shutdown()
	for i := 0; i < 2; i++ {
		if _, err := v.Apply(NewUpdate().Insert("p", 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	// The snapshot file on disk carries the published version.
	if _, err := filepath.Glob(filepath.Join(dir, "snapshot-*.gob")); err != nil {
		t.Fatal(err)
	}
	want := v.Snapshot().Version()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, _, err := OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Shutdown()
	if got := v2.Snapshot().Version(); got != want {
		t.Fatalf("recovered version %d, want %d", got, want)
	}
}

package parser

import "testing"

// FuzzParse checks the Datalog parser never panics and that accepted
// programs re-parse from their rendered form (round-trip stability).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		`p(a). p(b) * 3.`,
		`only(X,Y) :- t(X,Y), !h(X,Y).`,
		`m(S,M) :- groupby(u(S,C), [S], M = min(C)).`,
		`big(X) :- p(X,C), C > 5, C != 42.`,
		`cost(S,D,C1+C2) :- l(S,I,C1), l(I,D,C2).`,
		`+x(1). -y("str").`,
		"% comment\np(a).",
		`p("esc\n\t\"q\"").`,
		`weird(_, X, 1.5e3) :- q(_, X).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted rules must render and re-parse to the same text.
		rendered := res.Program.String()
		res2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered program failed: %v\n%s", err, rendered)
		}
		if res2.Program.String() != rendered {
			t.Fatalf("unstable render:\n%s\nvs\n%s", rendered, res2.Program.String())
		}
	})
}

// FuzzParseDelta checks the delta-script parser never panics.
func FuzzParseDelta(f *testing.F) {
	f.Add(`+link(a,b). -link(b,c) * 2.`)
	f.Add(`p(1,2.5,"x").`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseDelta(src)
	})
}

// FuzzParseGoal checks the goal parser never panics.
func FuzzParseGoal(f *testing.F) {
	f.Add(`hop(a, X)`)
	f.Add(`p(X, X, 3).`)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseGoal(src)
	})
}

package parser

import (
	"fmt"
	"strconv"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

// Fact is a ground base tuple with a signed multiplicity, as produced by
// fact clauses and delta scripts.
type Fact struct {
	Pred  string
	Tuple value.Tuple
	Count int64
}

// Result is the output of parsing a source text: the rules (the view
// program) and the ground facts it contained.
type Result struct {
	Program *datalog.Program
	Facts   []Fact
}

type parser struct {
	lex *lexer
	tok token
	// one-token pushback
	peeked  *token
	deltaOK bool // allow +fact / -fact clauses
}

// Parse parses a program text containing rules and facts.
func Parse(src string) (*Result, error) {
	return parse(src, false)
}

// ParseDelta parses a delta script: fact clauses optionally prefixed with
// '+' (insert, default) or '-' (delete), with optional '* n' multiplicity.
// Rules are not allowed in delta scripts.
func ParseDelta(src string) ([]Fact, error) {
	res, err := parse(src, true)
	if err != nil {
		return nil, err
	}
	if len(res.Program.Rules) > 0 {
		return nil, fmt.Errorf("parse error: rules are not allowed in a delta script (got %q)", res.Program.Rules[0].String())
	}
	return res.Facts, nil
}

// ParseRules parses a text expected to contain only rules.
func ParseRules(src string) (*datalog.Program, error) {
	res, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(res.Facts) > 0 {
		f := res.Facts[0]
		return nil, fmt.Errorf("parse error: facts are not allowed here (got %s%s)", f.Pred, f.Tuple)
	}
	return res.Program, nil
}

func parse(src string, deltaOK bool) (*Result, error) {
	p := &parser{lex: newLexer(src), deltaOK: deltaOK}
	if err := p.advance(); err != nil {
		return nil, err
	}
	res := &Result{Program: &datalog.Program{}}
	for p.tok.kind != tokEOF {
		if err := p.clause(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, got %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

// clause parses one fact or rule ending in '.'.
func (p *parser) clause(res *Result) error {
	sign := int64(1)
	signed := false
	if p.deltaOK && (p.tok.kind == tokPlus || p.tok.kind == tokMinus) {
		if p.tok.kind == tokMinus {
			sign = -1
		}
		signed = true
		if err := p.advance(); err != nil {
			return err
		}
	}

	head, err := p.atom()
	if err != nil {
		return err
	}

	switch p.tok.kind {
	case tokDot, tokStar:
		// Fact, possibly with multiplicity.
		mult := int64(1)
		if p.tok.kind == tokStar {
			if err := p.advance(); err != nil {
				return err
			}
			neg := false
			if p.tok.kind == tokMinus {
				neg = true
				if err := p.advance(); err != nil {
					return err
				}
			}
			nt, err := p.expect(tokInt)
			if err != nil {
				return err
			}
			mult, err = strconv.ParseInt(nt.text, 10, 64)
			if err != nil {
				return p.errf("bad multiplicity %q", nt.text)
			}
			if neg {
				mult = -mult
			}
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		tuple, err := groundTuple(head)
		if err != nil {
			return p.errf("%v", err)
		}
		res.Facts = append(res.Facts, Fact{Pred: head.Pred, Tuple: tuple, Count: sign * mult})
		return nil
	case tokImplies:
		if signed {
			return p.errf("a rule cannot carry a +/- delta sign")
		}
		if err := p.advance(); err != nil {
			return err
		}
		body, err := p.body()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		res.Program.Rules = append(res.Program.Rules, datalog.Rule{Head: head, Body: body})
		return nil
	default:
		return p.errf("expected '.' or ':-' after %s, got %s %q", head.Pred, p.tok.kind, p.tok.text)
	}
}

func groundTuple(a datalog.Atom) (value.Tuple, error) {
	t := make(value.Tuple, len(a.Args))
	for i, arg := range a.Args {
		c, ok := arg.(datalog.Const)
		if !ok {
			return nil, fmt.Errorf("fact %s has non-constant argument %s", a.Pred, arg)
		}
		t[i] = c.Value
	}
	return t, nil
}

// body parses a conjunction of literals separated by ',' or '&'.
func (p *parser) body() ([]datalog.Literal, error) {
	var out []datalog.Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, lit)
		if p.tok.kind == tokComma || p.tok.kind == tokAmp {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return out, nil
	}
}

func (p *parser) literal() (datalog.Literal, error) {
	switch {
	case p.tok.kind == tokBang:
		if err := p.advance(); err != nil {
			return datalog.Literal{}, err
		}
		a, err := p.atom()
		if err != nil {
			return datalog.Literal{}, err
		}
		return datalog.Literal{Kind: datalog.LitNegated, Atom: a}, nil

	case p.tok.kind == tokIdent && p.tok.text == "not":
		// 'not foo(...)' — but 'not' followed by anything other than an
		// identifier+paren is a predicate named not.
		nt, err := p.peek()
		if err != nil {
			return datalog.Literal{}, err
		}
		if nt.kind == tokIdent {
			if err := p.advance(); err != nil {
				return datalog.Literal{}, err
			}
			a, err := p.atom()
			if err != nil {
				return datalog.Literal{}, err
			}
			return datalog.Literal{Kind: datalog.LitNegated, Atom: a}, nil
		}
		fallthrough

	case p.tok.kind == tokIdent && p.tok.text == "groupby":
		if p.tok.text == "groupby" {
			return p.groupby()
		}
		fallthrough

	default:
		return p.relOrCond()
	}
}

// relOrCond parses either a positive atom or a comparison condition.
func (p *parser) relOrCond() (datalog.Literal, error) {
	// An atom starts with ident '('; everything else is a condition.
	if p.tok.kind == tokIdent {
		nt, err := p.peek()
		if err != nil {
			return datalog.Literal{}, err
		}
		if nt.kind == tokLParen {
			a, err := p.atom()
			if err != nil {
				return datalog.Literal{}, err
			}
			return datalog.Literal{Kind: datalog.LitPositive, Atom: a}, nil
		}
	}
	left, err := p.expr()
	if err != nil {
		return datalog.Literal{}, err
	}
	var op datalog.CmpOp
	switch p.tok.kind {
	case tokEq:
		op = datalog.CmpEq
	case tokNe:
		op = datalog.CmpNe
	case tokLt:
		op = datalog.CmpLt
	case tokLe:
		op = datalog.CmpLe
	case tokGt:
		op = datalog.CmpGt
	case tokGe:
		op = datalog.CmpGe
	default:
		return datalog.Literal{}, p.errf("expected comparison operator, got %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return datalog.Literal{}, err
	}
	right, err := p.expr()
	if err != nil {
		return datalog.Literal{}, err
	}
	return datalog.Literal{Kind: datalog.LitCondition, Cond: &datalog.Condition{Op: op, Left: left, Right: right}}, nil
}

// groupby parses: groupby(atom, [V1, ...], R = func(expr))
func (p *parser) groupby() (datalog.Literal, error) {
	if err := p.advance(); err != nil { // consume 'groupby'
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return datalog.Literal{}, err
	}
	inner, err := p.atom()
	if err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return datalog.Literal{}, err
	}
	var groupBy []datalog.Var
	for p.tok.kind != tokRBracket {
		vt, err := p.expect(tokVar)
		if err != nil {
			return datalog.Literal{}, err
		}
		groupBy = append(groupBy, datalog.Var(vt.text))
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return datalog.Literal{}, err
			}
		}
	}
	if err := p.advance(); err != nil { // consume ']'
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokComma); err != nil {
		return datalog.Literal{}, err
	}
	rt, err := p.expect(tokVar)
	if err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return datalog.Literal{}, err
	}
	ft, err := p.expect(tokIdent)
	if err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return datalog.Literal{}, err
	}
	arg, err := p.expr()
	if err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return datalog.Literal{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return datalog.Literal{}, err
	}
	agg := &datalog.Aggregate{
		Inner:   inner,
		GroupBy: groupBy,
		Result:  datalog.Var(rt.text),
		Func:    datalog.AggFunc(ft.text),
		Arg:     arg,
	}
	return datalog.Literal{Kind: datalog.LitAggregate, Agg: agg}, nil
}

// atom parses pred(t1, ..., tn); a bare identifier is a zero-arity atom.
func (p *parser) atom() (datalog.Atom, error) {
	nameTok, err := p.expect(tokIdent)
	if err != nil {
		return datalog.Atom{}, err
	}
	a := datalog.Atom{Pred: nameTok.text}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return datalog.Atom{}, err
	}
	if p.tok.kind == tokRParen {
		return a, p.advance()
	}
	for {
		t, err := p.expr()
		if err != nil {
			return datalog.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return datalog.Atom{}, err
			}
			continue
		}
		if _, err := p.expect(tokRParen); err != nil {
			return datalog.Atom{}, err
		}
		return a, nil
	}
}

// expr parses additive expressions over multiplicative ones; the leaves
// are variables, constants, parenthesized expressions and unary minus.
func (p *parser) expr() (datalog.Term, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := datalog.OpAdd
		if p.tok.kind == tokMinus {
			op = datalog.OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = datalog.Arith{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (datalog.Term, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash {
		op := datalog.OpMul
		if p.tok.kind == tokSlash {
			op = datalog.OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = datalog.Arith{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unary() (datalog.Term, error) {
	if p.tok.kind == tokMinus {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold constant negation; otherwise 0 - t.
		if c, ok := t.(datalog.Const); ok && c.Value.IsNumeric() {
			switch c.Value.Kind() {
			case value.Int:
				return datalog.Const{Value: value.NewInt(-c.Value.Int())}, nil
			default:
				return datalog.Const{Value: value.NewFloat(-c.Value.Float())}, nil
			}
		}
		return datalog.Arith{Op: datalog.OpSub, Left: datalog.Const{Value: value.NewInt(0)}, Right: t}, nil
	}
	return p.primary()
}

func (p *parser) primary() (datalog.Term, error) {
	switch p.tok.kind {
	case tokVar:
		v := datalog.Var(p.tok.text)
		return v, p.advance()
	case tokIdent:
		c := datalog.Const{Value: value.NewString(p.tok.text)}
		return c, p.advance()
	case tokString:
		c := datalog.Const{Value: value.NewString(p.tok.text)}
		return c, p.advance()
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		return datalog.Const{Value: value.NewInt(n)}, p.advance()
	case tokFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		return datalog.Const{Value: value.NewFloat(f)}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, p.errf("expected a term, got %s %q", p.tok.kind, p.tok.text)
	}
}

// ParseGoal parses a single query goal — one atom whose arguments are
// variables or constants, e.g. `hop(a, X)` — used by the query API.
func ParseGoal(src string) (datalog.Atom, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return datalog.Atom{}, err
	}
	a, err := p.atom()
	if err != nil {
		return datalog.Atom{}, err
	}
	// Tolerate an optional trailing '.'.
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return datalog.Atom{}, err
		}
	}
	if p.tok.kind != tokEOF {
		return datalog.Atom{}, p.errf("unexpected %s %q after goal", p.tok.kind, p.tok.text)
	}
	for _, t := range a.Args {
		if _, ok := t.(datalog.Arith); ok {
			return datalog.Atom{}, p.errf("goals may not contain arithmetic expressions")
		}
	}
	return a, nil
}

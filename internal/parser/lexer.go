// Package parser implements the surface syntax of the engine's extended
// Datalog dialect:
//
//	link(a, b).                                  % fact
//	link(a, b) * 4.                              % fact with multiplicity
//	hop(X, Y)  :- link(X, Z), link(Z, Y).        % rule ('&' also accepted)
//	oth(X, Y)  :- t(X, Y), !hop(X, Y).           % negation ('not' also accepted)
//	mch(S,D,M) :- groupby(hop(S,D,C), [S,D], M = min(C)).
//	hop(S,D,C1+C2) :- link(S,I,C1), link(I,D,C2).
//	big(X)     :- p(X, C), C > 5.
//
// Identifiers starting with a lower-case letter are constants/predicates;
// upper-case (or '_'-prefixed) identifiers are variables. Comments run
// from '%', '#', or '//' to end of line.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVar
	tokInt
	tokFloat
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokImplies // :-
	tokAmp     // &
	tokBang    // !
	tokEq      // =
	tokNe      // !=
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokAmp:
		return "'&'"
	case tokBang:
		return "'!'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or grammatical problem with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '%' || c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.advance(1)
		return mk(tokLParen, "("), nil
	case ')':
		l.advance(1)
		return mk(tokRParen, ")"), nil
	case '[':
		l.advance(1)
		return mk(tokLBracket, "["), nil
	case ']':
		l.advance(1)
		return mk(tokRBracket, "]"), nil
	case ',':
		l.advance(1)
		return mk(tokComma, ","), nil
	case '.':
		// Distinguish the rule terminator from a float like ".5"? We do
		// not support leading-dot floats; '.' is always a terminator.
		l.advance(1)
		return mk(tokDot, "."), nil
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.advance(2)
			return mk(tokImplies, ":-"), nil
		}
		return token{}, l.errf("unexpected ':'")
	case '&':
		l.advance(1)
		return mk(tokAmp, "&"), nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tokNe, "!="), nil
		}
		l.advance(1)
		return mk(tokBang, "!"), nil
	case '=':
		l.advance(1)
		return mk(tokEq, "="), nil
	case '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tokLe, "<="), nil
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.advance(2)
			return mk(tokNe, "<>"), nil
		}
		l.advance(1)
		return mk(tokLt, "<"), nil
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tokGe, ">="), nil
		}
		l.advance(1)
		return mk(tokGt, ">"), nil
	case '+':
		l.advance(1)
		return mk(tokPlus, "+"), nil
	case '-':
		l.advance(1)
		return mk(tokMinus, "-"), nil
	case '*':
		l.advance(1)
		return mk(tokStar, "*"), nil
	case '/':
		l.advance(1)
		return mk(tokSlash, "/"), nil
	case '"':
		return l.lexString(mk)
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber(mk)
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if isIdentStart(r) {
		return l.lexIdent(mk)
	}
	return token{}, l.errf("unexpected character %q", c)
}

func (l *lexer) lexString(mk func(tokenKind, string) token) (token, error) {
	l.advance(1) // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.advance(1)
			return mk(tokString, sb.String()), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated escape in string")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '"':
				sb.WriteByte(esc)
			default:
				return token{}, l.errf("unknown escape \\%c", esc)
			}
			l.advance(2)
		case '\n':
			return token{}, l.errf("unterminated string literal")
		default:
			sb.WriteByte(c)
			l.advance(1)
		}
	}
	return token{}, l.errf("unterminated string literal")
}

func (l *lexer) lexNumber(mk func(tokenKind, string) token) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.advance(1)
	}
	isFloat := false
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		isFloat = true
		l.advance(1)
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance(1)
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.advance(1)
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.advance(1)
		}
		if l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			isFloat = true
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance(1)
			}
		} else {
			// Not an exponent after all; back out (e.g. "12e" as ident-ish
			// junk — let the next token fail naturally).
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		return mk(tokFloat, text), nil
	}
	return mk(tokInt, text), nil
}

func (l *lexer) lexIdent(mk func(tokenKind, string) token) (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.advance(sz)
	}
	text := l.src[start:l.pos]
	r, _ := utf8.DecodeRuneInString(text)
	if unicode.IsUpper(r) || r == '_' {
		return mk(tokVar, text), nil
	}
	return mk(tokIdent, text), nil
}

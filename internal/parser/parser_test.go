package parser

import (
	"strings"
	"testing"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

func mustParse(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return res
}

func TestParseFacts(t *testing.T) {
	res := mustParse(t, `
		link(a, b).
		link(a, b).         % duplicate accumulates at the caller
		edge(1, 2.5, "hi there").
		flag().
		neg(-3).
	`)
	if len(res.Facts) != 5 {
		t.Fatalf("facts: %d", len(res.Facts))
	}
	f := res.Facts[2]
	if f.Pred != "edge" || !f.Tuple.Equal(value.T(1, 2.5, "hi there")) {
		t.Fatalf("edge fact: %v %v", f.Pred, f.Tuple)
	}
	if len(res.Facts[3].Tuple) != 0 {
		t.Fatal("zero-arity fact")
	}
	if !res.Facts[4].Tuple.Equal(value.T(-3)) {
		t.Fatalf("negative constant: %v", res.Facts[4].Tuple)
	}
}

func TestParseFactMultiplicity(t *testing.T) {
	res := mustParse(t, `p(a) * 4. q(b) * -2.`)
	if res.Facts[0].Count != 4 || res.Facts[1].Count != -2 {
		t.Fatalf("counts: %d %d", res.Facts[0].Count, res.Facts[1].Count)
	}
}

func TestParseRuleBasic(t *testing.T) {
	res := mustParse(t, `hop(X, Y) :- link(X, Z), link(Z, Y).`)
	if len(res.Program.Rules) != 1 {
		t.Fatal("one rule")
	}
	r := res.Program.Rules[0]
	if r.Head.Pred != "hop" || len(r.Body) != 2 {
		t.Fatalf("rule shape: %v", r)
	}
	if r.String() != "hop(X, Y) :- link(X, Z), link(Z, Y)." {
		t.Fatalf("round trip: %q", r.String())
	}
}

func TestAmpersandConjunction(t *testing.T) {
	res := mustParse(t, `hop(X,Y) :- link(X,Z) & link(Z,Y).`)
	if len(res.Program.Rules[0].Body) != 2 {
		t.Fatal("& conjunction")
	}
}

func TestParseNegation(t *testing.T) {
	res := mustParse(t, `
		a(X) :- t(X), !h(X).
		b(X) :- t(X), not h(X).
	`)
	for i, r := range res.Program.Rules {
		if r.Body[1].Kind != datalog.LitNegated || r.Body[1].Atom.Pred != "h" {
			t.Fatalf("rule %d: %v", i, r)
		}
	}
}

func TestNotAsPredicateName(t *testing.T) {
	res := mustParse(t, `a(X) :- not(X).`)
	lit := res.Program.Rules[0].Body[0]
	if lit.Kind != datalog.LitPositive || lit.Atom.Pred != "not" {
		t.Fatalf("'not(' must parse as a predicate: %v", lit)
	}
}

func TestParseGroupBy(t *testing.T) {
	res := mustParse(t, `mch(S,D,M) :- groupby(hop(S,D,C), [S, D], M = min(C)).`)
	lit := res.Program.Rules[0].Body[0]
	if lit.Kind != datalog.LitAggregate {
		t.Fatalf("kind: %v", lit.Kind)
	}
	g := lit.Agg
	if g.Inner.Pred != "hop" || len(g.GroupBy) != 2 || g.Result != "M" || g.Func != datalog.AggMin {
		t.Fatalf("groupby: %v", g)
	}
	if g.String() != "groupby(hop(S, D, C), [S, D], M = min(C))" {
		t.Fatalf("render: %q", g.String())
	}
}

func TestParseGroupByEmptyVars(t *testing.T) {
	res := mustParse(t, `total(N) :- groupby(sale(I, P), [], N = sum(P)).`)
	g := res.Program.Rules[0].Body[0].Agg
	if len(g.GroupBy) != 0 || g.Func != datalog.AggSum {
		t.Fatalf("groupby: %v", g)
	}
}

func TestParseArithmeticHead(t *testing.T) {
	res := mustParse(t, `hop(S,D,C1+C2*2) :- link(S,I,C1), link(I,D,C2).`)
	h := res.Program.Rules[0].Head
	a, ok := h.Args[2].(datalog.Arith)
	if !ok || a.Op != datalog.OpAdd {
		t.Fatalf("head expr: %v", h.Args[2])
	}
	// Precedence: C1 + (C2*2)
	r, ok := a.Right.(datalog.Arith)
	if !ok || r.Op != datalog.OpMul {
		t.Fatalf("precedence: %v", a)
	}
}

func TestParseConditions(t *testing.T) {
	res := mustParse(t, `
		big(X)  :- p(X, C), C > 5.
		near(X) :- p(X, C), C <= 2 + 1.
		odd(X)  :- p(X, C), C != 0.
		same(X) :- p(X, C), C = X.
		ne2(X)  :- p(X, C), C <> 1.
	`)
	ops := []datalog.CmpOp{datalog.CmpGt, datalog.CmpLe, datalog.CmpNe, datalog.CmpEq, datalog.CmpNe}
	for i, r := range res.Program.Rules {
		lit := r.Body[1]
		if lit.Kind != datalog.LitCondition || lit.Cond.Op != ops[i] {
			t.Fatalf("rule %d: %v", i, lit)
		}
	}
}

func TestParseDeltaScript(t *testing.T) {
	facts, err := ParseDelta(`
		+link(a, f).
		-link(a, b).
		link(x, y).        % unsigned means insert
		-link(q, r) * 3.
	`)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{1, -1, 1, -3}
	for i, f := range facts {
		if f.Count != counts[i] {
			t.Fatalf("fact %d count = %d, want %d", i, f.Count, counts[i])
		}
	}
}

func TestParseDeltaRejectsRules(t *testing.T) {
	if _, err := ParseDelta(`p(X) :- q(X).`); err == nil {
		t.Fatal("rules must be rejected in delta scripts")
	}
}

func TestParseRulesRejectsFacts(t *testing.T) {
	if _, err := ParseRules(`p(a).`); err == nil {
		t.Fatal("facts must be rejected by ParseRules")
	}
}

func TestSignedFactOutsideDeltaRejected(t *testing.T) {
	if _, err := Parse(`+p(a).`); err == nil {
		t.Fatal("+fact only valid in delta scripts")
	}
}

func TestComments(t *testing.T) {
	res := mustParse(t, `
		% percent comment
		# hash comment
		// slash comment
		p(a). // trailing
	`)
	if len(res.Facts) != 1 {
		t.Fatalf("facts: %d", len(res.Facts))
	}
}

func TestStringEscapes(t *testing.T) {
	res := mustParse(t, `p("a\nb\t\"q\"\\").`)
	if res.Facts[0].Tuple[0].Str() != "a\nb\t\"q\"\\" {
		t.Fatalf("escapes: %q", res.Facts[0].Tuple[0].Str())
	}
}

func TestFloatLiterals(t *testing.T) {
	res := mustParse(t, `p(1.5). q(2e3). r(1.5e-2).`)
	if res.Facts[0].Tuple[0].Float() != 1.5 ||
		res.Facts[1].Tuple[0].Float() != 2000 ||
		res.Facts[2].Tuple[0].Float() != 0.015 {
		t.Fatalf("floats: %v %v %v", res.Facts[0].Tuple, res.Facts[1].Tuple, res.Facts[2].Tuple)
	}
}

func TestSyntaxErrorsCarryPosition(t *testing.T) {
	cases := []string{
		`p(a`,        // unterminated args
		`p(a) q(b).`, // missing terminator
		`p(a) :- .`,  // empty body
		`p("unterminated`,
		`p(a) :- q(b)`, // missing dot
		`:- q(b).`,     // missing head
		`p(a) * x.`,    // non-integer multiplicity
		`p(a]`,         // stray bracket
	}
	for _, src := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", src)
			continue
		}
		if se, ok := err.(*SyntaxError); ok {
			if se.Line < 1 || se.Col < 1 {
				t.Errorf("Parse(%q): bad position %d:%d", src, se.Line, se.Col)
			}
		}
	}
}

func TestErrorMessageReadable(t *testing.T) {
	_, err := Parse("p(a) :-\n  q(b\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "parse error at ") {
		t.Fatalf("message: %v", err)
	}
}

func TestVariableLexing(t *testing.T) {
	res := mustParse(t, `p(X, _y, Abc, abc) :- q(X, _y, Abc, abc).`)
	args := res.Program.Rules[0].Head.Args
	if _, ok := args[0].(datalog.Var); !ok {
		t.Error("X is a variable")
	}
	if _, ok := args[1].(datalog.Var); !ok {
		t.Error("_y is a variable")
	}
	if _, ok := args[2].(datalog.Var); !ok {
		t.Error("Abc is a variable")
	}
	if _, ok := args[3].(datalog.Const); !ok {
		t.Error("abc is a constant")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	src := `only_tri_hop(X, Y) :- tri_hop(X, Y), !hop(X, Y).
min_cost_hop(S, D, M) :- groupby(hop(S, D, C), [S, D], M = min(C)).
big(X) :- p(X, C), C > 5.
`
	res := mustParse(t, src)
	rendered := res.Program.String()
	res2 := mustParse(t, rendered)
	if res2.Program.String() != rendered {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", rendered, res2.Program.String())
	}
}

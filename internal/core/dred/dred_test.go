package dred

import (
	"math/rand"
	"testing"

	"ivm/internal/baseline/recompute"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
	"ivm/internal/workload"
)

func load(t *testing.T, src string) *eval.DB {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	for _, f := range facts {
		db.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return db
}

func rules(t *testing.T, src string) *datalog.Program {
	t.Helper()
	prog, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func delta(t *testing.T, src string) map[string]*relation.Relation {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*relation.Relation)
	for _, f := range facts {
		r, ok := out[f.Pred]
		if !ok {
			r = relation.New(len(f.Tuple))
			out[f.Pred] = r
		}
		r.Add(f.Tuple, f.Count)
	}
	return out
}

const tcProgram = `
	tc(X,Y) :- link(X,Y).
	tc(X,Y) :- tc(X,Z), link(Z,Y).
`

func TestTCDeleteWithAlternativePath(t *testing.T) {
	// a→b→d and a→c→d; deleting a→b keeps a⇝d via c.
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(b,d). link(a,c). link(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `-link(a,b).`))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relation("tc").Has(value.T("a", "d")) {
		t.Fatal("a⇝d must survive via c")
	}
	if e.Relation("tc").Has(value.T("a", "b")) {
		t.Fatal("a⇝b must be deleted")
	}
	if ch.Del["tc"] == nil || !ch.Del["tc"].Has(value.T("a", "b")) {
		t.Fatalf("Del: %v", ch.Del["tc"])
	}
	// a⇝d was overestimated then rederived.
	if e.Stats().Rederived == 0 {
		t.Fatal("expected rederivations")
	}
}

func TestTCCycleDeletion(t *testing.T) {
	// Cycle a→b→c→a plus chord a→c. Deleting b→c must keep everything
	// reachable through the chord but drop pairs needing b→c.
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(b,c). link(c,a). link(a,c).`))
	if err != nil {
		t.Fatal(err)
	}
	// Initially: complete digraph on {a,b,c} (all 9 pairs).
	if e.Relation("tc").Len() != 9 {
		t.Fatalf("initial tc: %v", e.Relation("tc"))
	}
	if _, err = e.Apply(delta(t, `-link(b,c).`)); err != nil {
		t.Fatal(err)
	}
	// Remaining edges: a→b, c→a, a→c. b has no outgoing edge.
	want := map[string]bool{
		"a,b": true, "a,c": true, "c,a": true,
		"a,a": true, "c,c": true, "c,b": true,
	}
	tc := e.Relation("tc")
	if tc.Len() != len(want) {
		t.Fatalf("tc after: %v", tc)
	}
	for k := range want {
		var a, b string
		for i, r := 0, []rune(k); i < len(r); i++ {
			if r[i] == ',' {
				a, b = string(r[:i]), string(r[i+1:])
			}
		}
		if !tc.Has(value.T(a, b)) {
			t.Fatalf("missing %s: %v", k, tc)
		}
	}
}

func TestInsertionSemiNaive(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `+link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	// New pairs: b⇝c, a⇝c, b⇝d, a⇝d.
	if ch.Add["tc"].Len() != 4 {
		t.Fatalf("Add: %v", ch.Add["tc"])
	}
	if e.Stats().Overestimated != 0 {
		t.Fatal("pure insertion must not run deletions")
	}
}

func TestRederiveThroughLongerPath(t *testing.T) {
	// Delete a direct edge whose endpoints stay connected via a long path:
	// rederivation must chase the recursion, not just one step.
	e, err := New(rules(t, tcProgram), load(t, `
		link(a,z). link(a,b). link(b,c). link(c,d). link(d,z).
	`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `-link(a,z).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("tc").Has(value.T("a", "z")) {
		t.Fatal("a⇝z survives via b,c,d")
	}
}

func TestMixedBatchDeleteAndInsert(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `-link(b,c). +link(b,d).`))
	if err != nil {
		t.Fatal(err)
	}
	tc := e.Relation("tc")
	for _, want := range []value.Tuple{value.T("a", "b"), value.T("b", "d"), value.T("a", "d")} {
		if !tc.Has(want) {
			t.Fatalf("missing %v: %v", want, tc)
		}
	}
	if tc.Has(value.T("a", "c")) || tc.Has(value.T("b", "c")) {
		t.Fatalf("stale pairs: %v", tc)
	}
	if ch.Del["tc"].Len() != 2 || ch.Add["tc"].Len() != 2 {
		t.Fatalf("changes: Del %v Add %v", ch.Del["tc"], ch.Add["tc"])
	}
}

func TestDeleteEverything(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `-link(a,b). -link(b,c).`)); err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 0 {
		t.Fatalf("tc must be empty: %v", e.Relation("tc"))
	}
}

func TestTheorem71RandomizedAgainstRecompute(t *testing.T) {
	// Theorem 7.1: after DRed the view contains t iff t is derivable in
	// the new database — cross-checked against full recomputation over
	// random mixed batches on a grid graph (dense alternative paths).
	prog := rules(t, tcProgram)
	rng := rand.New(rand.NewSource(42))
	base := eval.NewDB()
	base.Put("link", workload.GridGraph(4, 4))

	e, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	re, err := recompute.New(prog, base, eval.Set)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		d := workload.Mixed(rng, e.Relation("link"), 16, 2, 2)
		if d.Empty() {
			continue
		}
		dm := map[string]*relation.Relation{"link": d}
		if _, err := e.Apply(dm); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := re.Apply(dm); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !relation.EqualAsSets(e.Relation("tc"), re.Relation("tc")) {
			t.Fatalf("round %d: tc diverges\ndred:      %v\nrecompute: %v",
				round, e.Relation("tc"), re.Relation("tc"))
		}
	}
}

func TestStratifiedNegationOverRecursion(t *testing.T) {
	prog := rules(t, `
		tc(X,Y)      :- link(X,Y).
		tc(X,Y)      :- tc(X,Z), link(Z,Y).
		unreach(X,Y) :- node(X), node(Y), !tc(X,Y).
	`)
	e, err := New(prog, load(t, `link(a,b). node(a). node(b). node(c).`))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relation("unreach").Has(value.T("a", "c")) {
		t.Fatal("a cannot reach c initially")
	}
	// Insert link(b,c): tc(a,c) appears → unreach(a,c) must be deleted.
	ch, err := e.Apply(delta(t, `+link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("unreach").Has(value.T("a", "c")) {
		t.Fatal("unreach(a,c) must be deleted after insertion into tc")
	}
	if ch.Del["unreach"] == nil || !ch.Del["unreach"].Has(value.T("a", "c")) {
		t.Fatalf("Del(unreach): %v", ch.Del["unreach"])
	}
	// Delete link(b,c) again: unreach(a,c) reappears.
	if _, err := e.Apply(delta(t, `-link(b,c).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("unreach").Has(value.T("a", "c")) {
		t.Fatal("unreach(a,c) must reappear")
	}
}

func TestAggregateOverRecursiveView(t *testing.T) {
	// Count the nodes each node reaches; maintained through DRed.
	prog := rules(t, `
		tc(X,Y)    :- link(X,Y).
		tc(X,Y)    :- tc(X,Z), link(Z,Y).
		reach(X,N) :- groupby(tc(X,Y), [X], N = count(Y)).
	`)
	e, err := New(prog, load(t, `link(a,b). link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("reach").Count(value.T("a", 2)) != 1 {
		t.Fatalf("reach: %v", e.Relation("reach"))
	}
	if _, err := e.Apply(delta(t, `+link(c,d).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("reach").Has(value.T("a", 3)) || e.Relation("reach").Has(value.T("a", 2)) {
		t.Fatalf("reach after insert: %v", e.Relation("reach"))
	}
	if _, err := e.Apply(delta(t, `-link(a,b).`)); err != nil {
		t.Fatal(err)
	}
	if e.Relation("reach").Has(value.T("a", 3)) {
		t.Fatalf("reach after delete: %v", e.Relation("reach"))
	}
}

func TestMutualRecursionMaintenance(t *testing.T) {
	prog := rules(t, `
		even(X) :- zero(X).
		even(Y) :- odd(X), succ(X,Y).
		odd(Y)  :- even(X), succ(X,Y).
	`)
	e, err := New(prog, load(t, `zero(0). succ(0,1). succ(1,2). succ(2,3).`))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relation("odd").Has(value.T(3)) {
		t.Fatal("odd(3) initially")
	}
	if _, err := e.Apply(delta(t, `-succ(1,2). +succ(3,4).`)); err != nil {
		t.Fatal(err)
	}
	// Chain is broken at 1→2: only even(0), odd(1) remain; 3,4 unreachable.
	if e.Relation("even").Has(value.T(2)) || e.Relation("odd").Has(value.T(3)) || e.Relation("even").Has(value.T(4)) {
		t.Fatalf("even=%v odd=%v", e.Relation("even"), e.Relation("odd"))
	}
	if !e.Relation("odd").Has(value.T(1)) {
		t.Fatal("odd(1) survives")
	}
	// Repair the chain.
	if _, err := e.Apply(delta(t, `+succ(1,2).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("even").Has(value.T(4)) {
		t.Fatalf("even(4) after repair: %v", e.Relation("even"))
	}
}

func TestRejectsDeletingAbsentTuple(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b).`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `-link(z,z).`)); err == nil {
		t.Fatal("deleting an absent base tuple must error")
	}
}

func TestBaseMultisetsCollapseToSets(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b) * 3.`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("link").Count(value.T("a", "b")) != 1 {
		t.Fatal("DRed normalizes base relations to sets")
	}
	// Duplicate insertion of an existing tuple is a no-op.
	ch, err := e.Apply(delta(t, `+link(a,b).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Add) != 0 && ch.Add["tc"] != nil {
		t.Fatalf("no-op insert changed tc: %v", ch.Add["tc"])
	}
}

func TestAddRuleIncremental(t *testing.T) {
	// Start with direct links only; add the recursive rule — Section 7's
	// rule insertion.
	e, err := New(rules(t, `tc(X,Y) :- link(X,Y).`), load(t, `link(a,b). link(b,c). link(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 3 {
		t.Fatal("initial tc = links")
	}
	rule, err := parser.ParseRules(`tc(X,Y) :- tc(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.AddRule(rule.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 6 {
		t.Fatalf("tc after AddRule: %v", e.Relation("tc"))
	}
	if ch.Add["tc"].Len() != 3 {
		t.Fatalf("Add: %v", ch.Add["tc"])
	}
	// Maintenance keeps working after the definition change.
	if _, err := e.Apply(delta(t, `-link(b,c).`)); err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Has(value.T("a", "d")) {
		t.Fatal("a⇝d gone after breaking the chain")
	}
}

func TestRemoveRuleIncremental(t *testing.T) {
	e, err := New(rules(t, `
		v(X,Y) :- link(X,Y).
		v(X,Y) :- hyperlink(X,Y).
	`), load(t, `link(a,b). hyperlink(a,b). hyperlink(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("v").Len() != 2 {
		t.Fatalf("initial v: %v", e.Relation("v"))
	}
	ch, err := e.RemoveRule(1) // drop the hyperlink rule
	if err != nil {
		t.Fatal(err)
	}
	// (a,b) survives via link; (c,d) dies.
	if !e.Relation("v").Has(value.T("a", "b")) || e.Relation("v").Has(value.T("c", "d")) {
		t.Fatalf("v after RemoveRule: %v", e.Relation("v"))
	}
	if ch.Del["v"] == nil || !ch.Del["v"].Has(value.T("c", "d")) || ch.Del["v"].Has(value.T("a", "b")) {
		t.Fatalf("Del: %v", ch.Del["v"])
	}
	if len(e.Program().Rules) != 1 {
		t.Fatal("rule removed from program")
	}
}

func TestRemoveRecursiveRule(t *testing.T) {
	e, err := New(rules(t, tcProgram), load(t, `link(a,b). link(b,c). link(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 6 {
		t.Fatal("initial tc")
	}
	if _, err := e.RemoveRule(1); err != nil { // drop the recursive rule
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 3 {
		t.Fatalf("tc after removing recursion: %v", e.Relation("tc"))
	}
}

func TestRemoveOnlyRuleOfPredicate(t *testing.T) {
	e, err := New(rules(t, `
		v(X) :- p(X).
		w(X) :- v(X), q(X).
	`), load(t, `p(a). q(a).`))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relation("w").Has(value.T("a")) {
		t.Fatal("initial w(a)")
	}
	if _, err := e.RemoveRule(0); err != nil {
		t.Fatal(err)
	}
	if e.Relation("v").Len() != 0 {
		t.Fatalf("v must be empty: %v", e.Relation("v"))
	}
	if e.Relation("w").Len() != 0 {
		t.Fatalf("w must be empty: %v", e.Relation("w"))
	}
}

func TestAddRuleWithNewAggregate(t *testing.T) {
	e, err := New(rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`), load(t, `link(a,b). link(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	rule, err := parser.ParseRules(`reach(X,N) :- groupby(tc(X,Y), [X], N = count(Y)).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddRule(rule.Rules[0]); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("reach").Has(value.T("a", 2)) {
		t.Fatalf("reach: %v", e.Relation("reach"))
	}
	// And the new aggregate is maintained afterwards.
	if _, err := e.Apply(delta(t, `+link(c,d).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("reach").Has(value.T("a", 3)) {
		t.Fatalf("reach after insert: %v", e.Relation("reach"))
	}
}

func TestArithmeticHeadSlowPathRederivation(t *testing.T) {
	// Heads with expressions exercise the rederive slow path.
	prog := rules(t, `
		cost(X,Y,C)     :- link(X,Y,C).
		cost(X,Y,C1+C2) :- cost(X,Z,C1), link(Z,Y,C2).
	`)
	e, err := New(prog, load(t, `link(a,b,1). link(b,c,1). link(a,c,2).`))
	if err != nil {
		t.Fatal(err)
	}
	// cost(a,c,2) has two derivations (direct, and a→b→c).
	if !e.Relation("cost").Has(value.T("a", "c", 2)) {
		t.Fatalf("cost: %v", e.Relation("cost"))
	}
	// Delete the direct edge: (a,c,2) survives via the path.
	if _, err := e.Apply(delta(t, `-link(a,c,2).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("cost").Has(value.T("a", "c", 2)) {
		t.Fatal("cost(a,c,2) must be rederived via a→b→c")
	}
	// Delete a→b: now it dies.
	if _, err := e.Apply(delta(t, `-link(a,b,1).`)); err != nil {
		t.Fatal(err)
	}
	if e.Relation("cost").Has(value.T("a", "c", 2)) {
		t.Fatal("cost(a,c,2) must be gone")
	}
}

func TestStatsShapeExample11(t *testing.T) {
	e, err := New(rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`),
		load(t, `link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `-link(a,b).`)); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Overestimated != 2 || st.Rederived != 1 || st.Inserted != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAddRuleRejectsBasePredicateWithFacts(t *testing.T) {
	e, err := New(rules(t, `v(X) :- p(X).`), load(t, `p(a). q(b).`))
	if err != nil {
		t.Fatal(err)
	}
	// q holds stored base facts: redefining it as derived would orphan them.
	rule, err := parser.ParseRules(`q(X) :- p(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddRule(rule.Rules[0]); err == nil {
		t.Fatal("turning a populated base relation into a view must be rejected")
	}
	// A fresh predicate is fine.
	rule2, err := parser.ParseRules(`w(X) :- p(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddRule(rule2.Rules[0]); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("w").Has(value.T("a")) {
		t.Fatalf("w: %v", e.Relation("w"))
	}
}

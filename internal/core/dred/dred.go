// Package dred implements the paper's Delete-and-Rederive (DRed)
// algorithm (Section 7) for incremental maintenance of general recursive
// views with stratified negation and aggregation, under set semantics.
//
// For each stratum, in increasing stratum order, three steps run:
//
//  1. Overestimate: a semi-naive fixpoint of δ⁻-rules deletes every tuple
//     that has *any* derivation using a deleted tuple, evaluating the
//     non-Δ subgoals over the old (pre-deletion) relations.
//  2. Rederive: δ⁺(p) :- δ⁻(p) & s1ν & … & snν puts back overestimated
//     tuples that still have a derivation in the new state, iterated to
//     fixpoint.
//  3. Insert: a semi-naive fixpoint propagates insertions over the new
//     state.
//
// The engine also maintains views across view-definition changes:
// AddRule/RemoveRule propagate the derivations a rule contributes exactly
// like tuple-level changes (Section 7's rule insertion/deletion).
package dred

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/relation"
	"ivm/internal/strata"
)

// Changes reports, per derived predicate, the tuples that left and
// entered the view during one maintenance operation.
type Changes struct {
	Del map[string]*relation.Relation
	Add map[string]*relation.Relation
}

// Stats describes the work of the most recent maintenance operation.
type Stats struct {
	// Overestimated counts tuples placed in δ⁻ overestimates (step 1).
	Overestimated int
	// Rederived counts overestimated tuples put back in step 2.
	Rederived int
	// Inserted counts tuples added by step 3.
	Inserted int
	// RuleFirings counts rule evaluations across all steps and strata.
	RuleFirings int
	// FixpointRounds counts semi-naive fixpoint rounds run across the
	// step-1 overestimate, step-2 rederivation, and step-3 insertion
	// loops of all strata.
	FixpointRounds int
}

// Config carries the engine's tuning knobs.
type Config struct {
	// Parallelism is the number of worker goroutines used for the δ-rule
	// batches of the step-1 overestimate and step-3 insertion fixpoints
	// (and for hash-partitioning large single-rule joins). <= 1 runs
	// sequentially; the maintained views are identical either way.
	Parallelism int
	// DisablePlanner turns off the cost-based join planner: every δ-rule
	// evaluation falls back to the greedy per-call literal order.
	// Results are identical either way.
	DisablePlanner bool
	// Metrics, when non-nil, receives the engine's counters and timing
	// histograms (dred_*, eval_* and planner_* series). Nil disables
	// collection.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives per-operation trace events. Nil
	// costs a single pointer check per event site.
	Tracer metrics.Tracer
}

// Engine maintains the materialization of a (possibly recursive) view
// program under set semantics.
type Engine struct {
	prog  *datalog.Program
	strat *strata.Stratification
	db    *eval.DB
	gts   map[eval.RuleLit]*eval.GroupTable
	// par is the worker count for δ-rule batches (<= 1 sequential).
	par int

	// last holds the work counters of the most recent operation. It is
	// written only by Apply/AddRule/RemoveRule and read via Stats();
	// callers sharing the engine across goroutines must serialize
	// maintenance against Stats (ivm.Views does so under its RWMutex).
	last Stats

	// lastNet holds, per predicate, the exact signed net delta the most
	// recent operation committed into stored content (base transitions
	// and derived-set changes alike). Snapshot publication replays these
	// deltas onto the previous published version.
	lastNet map[string]*relation.Relation

	// planner caches cost-based δ-rule plans (nil = planning off). Rule
	// edits Reset it: rule indices shift with the program.
	planner *eval.Planner

	// tracer and the resolved metric instruments; all nil-safe.
	tracer          metrics.Tracer
	instr           *eval.Instruments
	mOps            *metrics.Counter
	mOverestimated  *metrics.Counter
	mRederived      *metrics.Counter
	mInserted       *metrics.Counter
	mRuleFirings    *metrics.Counter
	mFixpointRounds *metrics.Counter
	mApplySeconds   *metrics.Histogram
	mStepSecs       [3]*metrics.Histogram
}

// Stats returns the work counters of the most recent maintenance
// operation (Apply, AddRule, or RemoveRule).
func (e *Engine) Stats() Stats { return e.last }

// CommittedDeltas returns, per predicate, the exact signed count delta
// the most recent operation merged into its stored relation. The
// relations are not mutated after the operation returns.
func (e *Engine) CommittedDeltas() map[string]*relation.Relation { return e.lastNet }

// observing reports whether any timing consumer is active, so the
// unobserved hot path skips clock reads entirely.
func (e *Engine) observing() bool { return e.tracer != nil || e.mApplySeconds != nil }

// New validates and stratifies prog, materializes it over the base
// relations of base (cloned; multiplicities collapse to sets), and
// returns a ready engine.
func New(prog *datalog.Program, base *eval.DB) (*Engine, error) {
	return NewWithConfig(prog, base, Config{})
}

// NewWithConfig is New with tuning knobs.
func NewWithConfig(prog *datalog.Program, base *eval.DB, cfg Config) (*Engine, error) {
	if err := datalog.Validate(prog); err != nil {
		return nil, err
	}
	st, err := strata.Compute(prog)
	if err != nil {
		return nil, err
	}
	db := eval.NewDB()
	for _, pred := range base.Preds() {
		db.Put(pred, base.Get(pred).ToSet())
	}
	e := &Engine{
		prog: prog, strat: st, db: db, par: cfg.Parallelism,
		tracer: cfg.Tracer, instr: eval.NewInstruments(cfg.Metrics),
	}
	if !cfg.DisablePlanner {
		e.planner = eval.NewPlanner(cfg.Metrics)
	}
	if r := cfg.Metrics; r != nil {
		e.mOps = r.Counter("dred_ops_total")
		e.mOverestimated = r.Counter("dred_overestimated_total")
		e.mRederived = r.Counter("dred_rederived_total")
		e.mInserted = r.Counter("dred_inserted_total")
		e.mRuleFirings = r.Counter("dred_rule_firings_total")
		e.mFixpointRounds = r.Counter("dred_fixpoint_rounds_total")
		e.mApplySeconds = r.Histogram("dred_apply_seconds")
		e.mStepSecs[0] = r.Histogram("dred_step1_seconds")
		e.mStepSecs[1] = r.Histogram("dred_step2_seconds")
		e.mStepSecs[2] = r.Histogram("dred_step3_seconds")
	}
	if err := e.materialize(); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *Engine) materialize() error {
	ev := eval.NewEvaluator(e.prog, e.strat, eval.Set)
	ev.Parallelism = e.par
	ev.Instr = e.instr
	ev.Planner = e.planner
	if err := ev.Evaluate(e.db); err != nil {
		return err
	}
	// DRed works on sets: collapse the per-stratum derivation counts the
	// evaluator tracks for nonrecursive strata.
	for pred := range e.prog.DerivedPreds() {
		e.db.Put(pred, e.db.Get(pred).ToSet())
	}
	e.gts = ev.GroupTables
	return nil
}

// Program returns the maintained view program.
func (e *Engine) Program() *datalog.Program { return e.prog }

// Relation returns the stored relation for pred (all counts 1), or nil.
func (e *Engine) Relation(pred string) *relation.Relation { return e.db.Get(pred) }

// DB exposes the engine's storage (read-only use).
func (e *Engine) DB() *eval.DB { return e.db }

// Apply maintains every view given base-relation changes (positive counts
// insert, negative delete; multiplicities collapse to set transitions).
// Deletions of absent tuples are rejected. The new materialization
// contains t iff t has a derivation in the updated database (Theorem 7.1).
func (e *Engine) Apply(baseDelta map[string]*relation.Relation) (*Changes, error) {
	e.last = Stats{}
	if e.tracer != nil {
		e.tracer.BatchStart("dred", len(baseDelta))
	}
	derived := e.prog.DerivedPreds()
	net := make(map[string]*relation.Relation)
	del := make(map[string]*relation.Relation)
	add := make(map[string]*relation.Relation)
	for pred, d := range baseDelta {
		if derived[pred] {
			return nil, fmt.Errorf("dred: delta for derived predicate %s (only base relations may change)", pred)
		}
		stored := e.db.Ensure(pred, d.Arity())
		if stored.Arity() >= 0 && d.Arity() >= 0 && stored.Arity() != d.Arity() {
			return nil, fmt.Errorf("dred: delta for %s has arity %d, relation has arity %d", pred, d.Arity(), stored.Arity())
		}
		trans := relation.New(d.Arity())
		var verr error
		d.Each(func(row relation.Row) {
			if verr != nil {
				return
			}
			has := stored.Has(row.Tuple)
			switch {
			case row.Count > 0 && !has:
				trans.Add(row.Tuple, 1)
			case row.Count < 0:
				if !has {
					verr = fmt.Errorf("dred: deletion of absent tuple %s%s", pred, row.Tuple)
					return
				}
				trans.Add(row.Tuple, -1)
			}
		})
		if verr != nil {
			return nil, verr
		}
		if trans.Empty() {
			continue
		}
		net[pred] = trans
		del[pred] = negPart(trans)
		add[pred] = posPart(trans)
	}
	return e.propagate(del, add, net, nil, nil)
}

// AddRule extends the view definition with a new rule and incrementally
// folds its derivations into the materialization. The rule's head must be
// an existing derived predicate or a fresh one: turning a base relation
// with stored facts into a derived predicate is rejected, since derived
// relations are defined entirely by their rules (a rematerialization
// would drop the facts).
func (e *Engine) AddRule(r datalog.Rule) (*Changes, error) {
	e.last = Stats{}
	if e.tracer != nil {
		e.tracer.BatchStart("dred:add-rule", 1)
	}
	if !e.prog.DerivedPreds()[r.Head.Pred] {
		if stored := e.db.Get(r.Head.Pred); stored != nil && !stored.Empty() {
			return nil, fmt.Errorf("dred: cannot add a rule for %s: it is a base relation with stored facts", r.Head.Pred)
		}
	}
	newProg := e.prog.Clone()
	newProg.Rules = append(newProg.Rules, r)
	if err := datalog.Validate(newProg); err != nil {
		return nil, err
	}
	st, err := strata.Compute(newProg)
	if err != nil {
		return nil, err
	}
	ri := len(newProg.Rules) - 1
	e.prog, e.strat = newProg, st
	// Rule indices changed: cached plans are keyed by index.
	e.planner.Reset()

	// Seed: the new rule's derivations not yet in the view.
	tmp := relation.New(len(r.Head.Args))
	srcs, err := e.ruleSources(ri, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := eval.EvalRuleInstr(r, srcs, -1, tmp, e.instr); err != nil {
		return nil, err
	}
	stored := e.db.Ensure(r.Head.Pred, len(r.Head.Args))
	seed := relation.New(len(r.Head.Args))
	tmp.Each(func(row relation.Row) {
		if row.Count > 0 && !stored.Has(row.Tuple) {
			seed.Add(row.Tuple, 1)
		}
	})
	seedAdd := map[string]*relation.Relation{r.Head.Pred: seed}
	return e.propagate(map[string]*relation.Relation{}, map[string]*relation.Relation{},
		make(map[string]*relation.Relation), nil, seedAdd)
}

// RemoveRule deletes rule index ri from the view definition and
// incrementally removes the derivations only it supported.
func (e *Engine) RemoveRule(ri int) (*Changes, error) {
	e.last = Stats{}
	if e.tracer != nil {
		e.tracer.BatchStart("dred:remove-rule", 1)
	}
	if ri < 0 || ri >= len(e.prog.Rules) {
		return nil, fmt.Errorf("dred: rule index %d out of range", ri)
	}
	removed := e.prog.Rules[ri]

	// Seed: every stored tuple the removed rule derives is a deletion
	// candidate (step 2 rederives those the remaining rules support).
	tmp := relation.New(len(removed.Head.Args))
	srcs, err := e.ruleSources(ri, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := eval.EvalRuleInstr(removed, srcs, -1, tmp, e.instr); err != nil {
		return nil, err
	}
	stored := e.db.Ensure(removed.Head.Pred, len(removed.Head.Args))
	seed := relation.New(len(removed.Head.Args))
	tmp.Each(func(row relation.Row) {
		if row.Count > 0 && stored.Has(row.Tuple) {
			seed.Add(row.Tuple, 1)
		}
	})

	newProg := e.prog.Clone()
	newProg.Rules = append(newProg.Rules[:ri], newProg.Rules[ri+1:]...)
	if err := datalog.Validate(newProg); err != nil {
		return nil, err
	}
	st, err := strata.Compute(newProg)
	if err != nil {
		return nil, err
	}
	// Group tables are keyed by rule index: shift keys above ri.
	gts := make(map[eval.RuleLit]*eval.GroupTable, len(e.gts))
	for k, v := range e.gts {
		switch {
		case k.Rule == ri:
			// dropped with the rule
		case k.Rule > ri:
			gts[eval.RuleLit{Rule: k.Rule - 1, Lit: k.Lit}] = v
		default:
			gts[k] = v
		}
	}
	headPred := removed.Head.Pred
	e.prog, e.strat, e.gts = newProg, st, gts
	// Rule indices changed: cached plans are keyed by index.
	e.planner.Reset()

	// The head predicate may have lost all its rules; it may even no
	// longer be derived. Either way its stratum in the *new* program
	// drives propagation; if it vanished as a derived predicate, treat
	// its tuples as plain deletions seeded at its old location.
	seedDel := map[string]*relation.Relation{headPred: seed}
	if !e.prog.DerivedPreds()[headPred] {
		// The predicate is no longer derived: its whole extension drains.
		// propagate commits the negative net into storage and pushes the
		// deletions through the higher strata.
		net := map[string]*relation.Relation{headPred: seed.Negate()}
		del := map[string]*relation.Relation{headPred: seed}
		return e.propagate(del, map[string]*relation.Relation{}, net, nil, nil)
	}
	return e.propagate(map[string]*relation.Relation{}, map[string]*relation.Relation{},
		make(map[string]*relation.Relation), seedDel, nil)
}

func negPart(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count < 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

func posPart(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count > 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

// GroupTables exposes the engine's GROUPBY materializations (read-only
// use; explanation queries resolve aggregate subgoals through them).
func (e *Engine) GroupTables() map[eval.RuleLit]*eval.GroupTable { return e.gts }

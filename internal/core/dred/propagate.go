package dred

import (
	"time"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/relation"
)

// propagate runs the three DRed steps stratum by stratum.
//
// del/add hold, per predicate, the tuples already known to have left or
// entered that predicate (initially: the base-relation changes); net holds
// the same information as a signed relation and is what gets committed.
// seedDel/seedAdd inject deletion candidates / insertions directly at a
// derived predicate's own stratum (used by RemoveRule/AddRule).
func (e *Engine) propagate(del, add, net map[string]*relation.Relation,
	seedDel, seedAdd map[string]*relation.Relation) (*Changes, error) {

	timing := e.observing()
	var opStart time.Time
	if timing {
		opStart = time.Now()
	}

	changes := &Changes{
		Del: make(map[string]*relation.Relation),
		Add: make(map[string]*relation.Relation),
	}
	pendingT := make(map[eval.RuleLit]*relation.Relation)
	byStratum := e.strat.RulesByStratum(e.prog)

	oldR := func(pred string) relation.Reader { return e.db.Ensure(pred, -1) }
	newR := func(pred string) relation.Reader {
		r := oldR(pred)
		if n := net[pred]; n != nil {
			return relation.Overlay(r, n)
		}
		return r
	}
	netOf := func(pred string) *relation.Relation {
		n, ok := net[pred]
		if !ok {
			n = relation.New(e.db.Ensure(pred, -1).Arity())
			net[pred] = n
		}
		return n
	}

	// getGT returns (building over the old state if needed) the group
	// table for an aggregate literal.
	getGT := func(key eval.RuleLit, g *datalog.Aggregate) (*eval.GroupTable, error) {
		gt, ok := e.gts[key]
		if !ok {
			var err error
			gt, err = eval.BuildGroupTable(g, oldR(g.Inner.Pred))
			if err != nil {
				return nil, err
			}
			e.gts[key] = gt
		}
		return gt, nil
	}
	// getDeltaT computes (once per key per operation) the ΔT of an
	// aggregate subgoal from the net change of its grouped relation.
	getDeltaT := func(key eval.RuleLit, g *datalog.Aggregate) (*relation.Relation, error) {
		if dt, ok := pendingT[key]; ok {
			return dt, nil
		}
		gt, err := getGT(key, g)
		if err != nil {
			return nil, err
		}
		nu := net[g.Inner.Pred]
		if nu == nil || nu.Empty() {
			dt := relation.New(gt.Rel().Arity())
			pendingT[key] = dt
			return dt, nil
		}
		dt, err := gt.ApplyDelta(nu, newR(g.Inner.Pred))
		if err != nil {
			return nil, err
		}
		pendingT[key] = dt
		return dt, nil
	}

	// source resolves a non-Δ literal at the old or new version.
	source := func(lit datalog.Literal, key eval.RuleLit, useNew bool) (eval.Source, error) {
		switch lit.Kind {
		case datalog.LitPositive, datalog.LitNegated:
			if useNew {
				return eval.Source{Rel: newR(lit.Atom.Pred)}, nil
			}
			return eval.Source{Rel: oldR(lit.Atom.Pred)}, nil
		case datalog.LitAggregate:
			gt, err := getGT(key, lit.Agg)
			if err != nil {
				return eval.Source{}, err
			}
			if useNew {
				if dt := pendingT[key]; dt != nil {
					return eval.Source{Rel: relation.Overlay(gt.Rel(), dt)}, nil
				}
			}
			return eval.Source{Rel: gt.Rel()}, nil
		default:
			return eval.Source{}, nil
		}
	}

	// stepTask assembles one δ-rule evaluation: rule ri with literal
	// deltaLit bound to img and every other literal at the old (step 1)
	// or new (steps 2/3) version. Sources are resolved immediately (they
	// touch shared group-table state); the join itself runs via
	// eval.EvalRule — directly or as part of a parallel batch.
	stepTask := func(ri, deltaLit int, img *relation.Relation, useNew bool) (eval.Task, error) {
		rule := e.prog.Rules[ri]
		srcs := make([]eval.Source, len(rule.Body))
		for j, lit := range rule.Body {
			if j == deltaLit {
				srcs[j] = eval.Source{Rel: img, JoinDelta: lit.Kind == datalog.LitNegated}
				continue
			}
			s, err := source(lit, eval.RuleLit{Rule: ri, Lit: j}, useNew)
			if err != nil {
				return eval.Task{}, err
			}
			srcs[j] = s
		}
		kind := eval.PlanDeltaOld
		if useNew {
			kind = eval.PlanDeltaNew
		}
		plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: kind, Delta: deltaLit}, rule, srcs, deltaLit)
		if err != nil {
			return eval.Task{}, err
		}
		return eval.Task{
			Rule: rule, Srcs: srcs, FirstLit: deltaLit, Plan: plan,
			Out: relation.New(len(rule.Head.Args)),
		}, nil
	}

	// evalStep evaluates one δ-rule sequentially, returning the derived
	// tuples.
	evalStep := func(ri, deltaLit int, img *relation.Relation, useNew bool) (*relation.Relation, error) {
		t, err := stepTask(ri, deltaLit, img, useNew)
		if err != nil {
			return nil, err
		}
		if err := eval.EvalRulePlanInstr(t.Rule, t.Srcs, t.FirstLit, t.Plan, t.Out, e.instr); err != nil {
			return nil, err
		}
		e.last.RuleFirings++
		if e.tracer != nil {
			e.tracer.RuleEvaluated(t.Rule.Head.Pred, t.Out.Len())
		}
		return t.Out, nil
	}

	// runSteps evaluates a batch of prepared δ-rule tasks across the
	// worker pool (the tasks of one pass are independent: folds are
	// deferred until the whole batch finished, then run in task order —
	// confluent, because deferred effects re-enter through the in-stratum
	// Δ images of the following fixpoint rounds).
	runSteps := func(tasks []eval.Task, folds []func(*relation.Relation)) error {
		if err := eval.RunBatchInstr(tasks, e.par, e.instr); err != nil {
			return err
		}
		e.last.RuleFirings += len(tasks)
		for k := range tasks {
			if e.tracer != nil {
				e.tracer.RuleEvaluated(tasks[k].Rule.Head.Pred, tasks[k].Out.Len())
			}
			folds[k](tasks[k].Out)
		}
		return nil
	}

	for s := 1; s <= e.strat.MaxStratum; s++ {
		rules := byStratum[s]
		if len(rules) == 0 {
			continue
		}
		var stratumStart time.Time
		if timing {
			stratumStart = time.Now()
		}
		inStratum := make(map[string]bool)
		for _, ri := range rules {
			inStratum[e.prog.Rules[ri].Head.Pred] = true
		}
		delS := make(map[string]*relation.Relation)
		readd := make(map[string]*relation.Relation)
		addS := make(map[string]*relation.Relation)
		for pred := range inStratum {
			ar := e.db.Ensure(pred, -1).Arity()
			delS[pred] = relation.New(ar)
			readd[pred] = relation.New(ar)
			addS[pred] = relation.New(ar)
		}

		// ---- Step 1: overestimate deletions. ----
		roundDel := make(map[string]*relation.Relation)
		for pred := range inStratum {
			roundDel[pred] = relation.New(delS[pred].Arity())
		}
		foldDel := func(pred string, derived *relation.Relation) {
			stored := e.db.Ensure(pred, -1)
			derived.Each(func(row relation.Row) {
				if row.Count > 0 && stored.Has(row.Tuple) && !delS[pred].Has(row.Tuple) {
					delS[pred].Add(row.Tuple, 1)
					netOf(pred).Add(row.Tuple, -1)
					roundDel[pred].Add(row.Tuple, 1)
				}
			})
		}
		if e.par > 1 {
			var tasks []eval.Task
			var folds []func(*relation.Relation)
			for _, ri := range rules {
				rule := e.prog.Rules[ri]
				for li, lit := range rule.Body {
					img, err := e.deleteImage(lit, eval.RuleLit{Rule: ri, Lit: li}, inStratum, del, add, getDeltaT, oldR)
					if err != nil {
						return nil, err
					}
					if img == nil || img.Empty() {
						continue
					}
					t, err := stepTask(ri, li, img, false)
					if err != nil {
						return nil, err
					}
					pred := rule.Head.Pred
					tasks = append(tasks, t)
					folds = append(folds, func(out *relation.Relation) { foldDel(pred, out) })
				}
			}
			if err := runSteps(tasks, folds); err != nil {
				return nil, err
			}
		} else {
			for _, ri := range rules {
				rule := e.prog.Rules[ri]
				for li, lit := range rule.Body {
					img, err := e.deleteImage(lit, eval.RuleLit{Rule: ri, Lit: li}, inStratum, del, add, getDeltaT, oldR)
					if err != nil {
						return nil, err
					}
					if img == nil || img.Empty() {
						continue
					}
					out, err := evalStep(ri, li, img, false)
					if err != nil {
						return nil, err
					}
					foldDel(rule.Head.Pred, out)
				}
			}
		}
		for pred := range inStratum {
			if sd := seedDel[pred]; sd != nil {
				foldDel(pred, sd)
			}
		}
		for {
			e.last.FixpointRounds++
			moved := false
			cur := roundDel
			roundDel = make(map[string]*relation.Relation)
			for pred := range inStratum {
				roundDel[pred] = relation.New(delS[pred].Arity())
			}
			if e.par > 1 {
				var tasks []eval.Task
				var folds []func(*relation.Relation)
				for _, ri := range rules {
					rule := e.prog.Rules[ri]
					for li, lit := range rule.Body {
						if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
							continue
						}
						d := cur[lit.Atom.Pred]
						if d == nil || d.Empty() {
							continue
						}
						t, err := stepTask(ri, li, d, false)
						if err != nil {
							return nil, err
						}
						pred := rule.Head.Pred
						tasks = append(tasks, t)
						folds = append(folds, func(out *relation.Relation) { foldDel(pred, out) })
					}
				}
				if err := runSteps(tasks, folds); err != nil {
					return nil, err
				}
			} else {
				for _, ri := range rules {
					rule := e.prog.Rules[ri]
					for li, lit := range rule.Body {
						if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
							continue
						}
						d := cur[lit.Atom.Pred]
						if d == nil || d.Empty() {
							continue
						}
						out, err := evalStep(ri, li, d, false)
						if err != nil {
							return nil, err
						}
						foldDel(rule.Head.Pred, out)
					}
				}
			}
			for pred := range inStratum {
				if !roundDel[pred].Empty() {
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		for pred := range inStratum {
			e.last.Overestimated += delS[pred].Len()
		}
		var step2Start time.Time
		if timing {
			step2Start = time.Now()
			e.mStepSecs[0].Observe(step2Start.Sub(stratumStart))
		}

		// ---- Step 2: rederive tuples with alternative derivations. ----
		// Semi-naive: a first pass checks every overestimated tuple
		// against the current new state; afterwards, only tuples whose
		// readdition can enable further rederivations (through in-stratum
		// subgoals) drive more rounds — work stays proportional to the
		// overestimate, not rounds × candidates.
		roundReadd := make(map[string]*relation.Relation)
		for pred := range inStratum {
			roundReadd[pred] = relation.New(delS[pred].Arity())
		}
		foldReadd := func(pred string, derived *relation.Relation, cand *relation.Relation) {
			derived.Each(func(row relation.Row) {
				if row.Count > 0 && cand.Has(row.Tuple) && !readd[pred].Has(row.Tuple) {
					readd[pred].Add(row.Tuple, 1)
					netOf(pred).Add(row.Tuple, 1)
					roundReadd[pred].Add(row.Tuple, 1)
				}
			})
		}
		remaining := func(pred string) *relation.Relation {
			cand := relation.New(delS[pred].Arity())
			delS[pred].Each(func(row relation.Row) {
				if !readd[pred].Has(row.Tuple) {
					cand.Add(row.Tuple, 1)
				}
			})
			return cand
		}
		// First pass: full candidate check over the new state.
		for _, ri := range rules {
			rule := e.prog.Rules[ri]
			p := rule.Head.Pred
			cand := remaining(p)
			if cand.Empty() {
				continue
			}
			derived, err := e.rederive(ri, cand, source)
			if err != nil {
				return nil, err
			}
			foldReadd(p, derived, cand)
		}
		// Delta rounds: newly readded tuples re-enable candidates whose
		// derivations pass through them.
		for {
			e.last.FixpointRounds++
			moved := false
			cur := roundReadd
			roundReadd = make(map[string]*relation.Relation)
			for pred := range inStratum {
				roundReadd[pred] = relation.New(delS[pred].Arity())
			}
			for _, ri := range rules {
				rule := e.prog.Rules[ri]
				p := rule.Head.Pred
				for li, lit := range rule.Body {
					if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
						continue
					}
					d := cur[lit.Atom.Pred]
					if d == nil || d.Empty() {
						continue
					}
					cand := remaining(p)
					if cand.Empty() {
						continue
					}
					derived, err := e.rederiveDelta(ri, li, d, cand, source)
					if err != nil {
						return nil, err
					}
					foldReadd(p, derived, cand)
				}
			}
			for pred := range inStratum {
				if !roundReadd[pred].Empty() {
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		for pred := range inStratum {
			e.last.Rederived += readd[pred].Len()
		}
		var step3Start time.Time
		if timing {
			step3Start = time.Now()
			e.mStepSecs[1].Observe(step3Start.Sub(step2Start))
		}

		// ---- Step 3: propagate insertions. ----
		roundAdd := make(map[string]*relation.Relation)
		for pred := range inStratum {
			roundAdd[pred] = relation.New(addS[pred].Arity())
		}
		foldAdd := func(pred string, derived *relation.Relation) {
			nr := newR(pred)
			derived.Each(func(row relation.Row) {
				if row.Count > 0 && !nr.Has(row.Tuple) {
					addS[pred].Add(row.Tuple, 1)
					netOf(pred).Add(row.Tuple, 1)
					roundAdd[pred].Add(row.Tuple, 1)
				}
			})
		}
		if e.par > 1 {
			var tasks []eval.Task
			var folds []func(*relation.Relation)
			for _, ri := range rules {
				rule := e.prog.Rules[ri]
				for li, lit := range rule.Body {
					img, err := e.insertImage(lit, eval.RuleLit{Rule: ri, Lit: li}, inStratum, del, add, getDeltaT, newR)
					if err != nil {
						return nil, err
					}
					if img == nil || img.Empty() {
						continue
					}
					t, err := stepTask(ri, li, img, true)
					if err != nil {
						return nil, err
					}
					pred := rule.Head.Pred
					tasks = append(tasks, t)
					folds = append(folds, func(out *relation.Relation) { foldAdd(pred, out) })
				}
			}
			if err := runSteps(tasks, folds); err != nil {
				return nil, err
			}
		} else {
			for _, ri := range rules {
				rule := e.prog.Rules[ri]
				for li, lit := range rule.Body {
					img, err := e.insertImage(lit, eval.RuleLit{Rule: ri, Lit: li}, inStratum, del, add, getDeltaT, newR)
					if err != nil {
						return nil, err
					}
					if img == nil || img.Empty() {
						continue
					}
					out, err := evalStep(ri, li, img, true)
					if err != nil {
						return nil, err
					}
					foldAdd(rule.Head.Pred, out)
				}
			}
		}
		for pred := range inStratum {
			if sa := seedAdd[pred]; sa != nil {
				foldAdd(pred, sa)
			}
		}
		for {
			e.last.FixpointRounds++
			moved := false
			cur := roundAdd
			roundAdd = make(map[string]*relation.Relation)
			for pred := range inStratum {
				roundAdd[pred] = relation.New(addS[pred].Arity())
			}
			if e.par > 1 {
				var tasks []eval.Task
				var folds []func(*relation.Relation)
				for _, ri := range rules {
					rule := e.prog.Rules[ri]
					for li, lit := range rule.Body {
						if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
							continue
						}
						d := cur[lit.Atom.Pred]
						if d == nil || d.Empty() {
							continue
						}
						t, err := stepTask(ri, li, d, true)
						if err != nil {
							return nil, err
						}
						pred := rule.Head.Pred
						tasks = append(tasks, t)
						folds = append(folds, func(out *relation.Relation) { foldAdd(pred, out) })
					}
				}
				if err := runSteps(tasks, folds); err != nil {
					return nil, err
				}
			} else {
				for _, ri := range rules {
					rule := e.prog.Rules[ri]
					for li, lit := range rule.Body {
						if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
							continue
						}
						d := cur[lit.Atom.Pred]
						if d == nil || d.Empty() {
							continue
						}
						out, err := evalStep(ri, li, d, true)
						if err != nil {
							return nil, err
						}
						foldAdd(rule.Head.Pred, out)
					}
				}
			}
			for pred := range inStratum {
				if !roundAdd[pred].Empty() {
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		for pred := range inStratum {
			e.last.Inserted += addS[pred].Len()
		}
		if timing {
			now := time.Now()
			e.mStepSecs[2].Observe(now.Sub(step3Start))
			if e.tracer != nil {
				e.tracer.StratumDone(s, now.Sub(stratumStart))
			}
		}

		// ---- Finalize the stratum: expose net transitions upward. ----
		for pred := range inStratum {
			n := net[pred]
			if n == nil || n.Empty() {
				continue
			}
			dn, ap := negPart(n), posPart(n)
			if !dn.Empty() {
				del[pred] = dn
				changes.Del[pred] = dn
			}
			if !ap.Empty() {
				add[pred] = ap
				changes.Add[pred] = ap
			}
		}
	}

	// Commit everything.
	e.lastNet = make(map[string]*relation.Relation, len(net))
	for pred, n := range net {
		e.db.Ensure(pred, n.Arity()).MergeDelta(n)
		if !n.Empty() {
			e.lastNet[pred] = n
		}
	}
	for key, dt := range pendingT {
		e.gts[key].Commit(dt)
	}
	e.mOps.Inc()
	e.mOverestimated.Add(int64(e.last.Overestimated))
	e.mRederived.Add(int64(e.last.Rederived))
	e.mInserted.Add(int64(e.last.Inserted))
	e.mRuleFirings.Add(int64(e.last.RuleFirings))
	e.mFixpointRounds.Add(int64(e.last.FixpointRounds))
	if timing {
		d := time.Since(opStart)
		e.mApplySeconds.Observe(d)
		if e.tracer != nil {
			e.tracer.BatchDone(d, len(changes.Del)+len(changes.Add))
		}
	}
	return changes, nil
}

// deleteImage returns the δ⁻ image of a literal for step 1: the tuples
// whose change can invalidate derivations through this subgoal.
func (e *Engine) deleteImage(lit datalog.Literal, key eval.RuleLit, inStratum map[string]bool,
	del, add map[string]*relation.Relation,
	getDeltaT func(eval.RuleLit, *datalog.Aggregate) (*relation.Relation, error),
	oldR func(string) relation.Reader) (*relation.Relation, error) {

	switch lit.Kind {
	case datalog.LitPositive:
		if inStratum[lit.Atom.Pred] {
			return nil, nil // driven by the in-stratum fixpoint
		}
		return del[lit.Atom.Pred], nil
	case datalog.LitNegated:
		// q gaining tuples makes ¬q lose them.
		a := add[lit.Atom.Pred]
		if a == nil || a.Empty() {
			return nil, nil
		}
		img := relation.New(a.Arity())
		q := oldR(lit.Atom.Pred)
		a.Each(func(row relation.Row) {
			if !q.Has(row.Tuple) {
				img.Add(row.Tuple, 1)
			}
		})
		return img, nil
	case datalog.LitAggregate:
		dt, err := getDeltaT(key, lit.Agg)
		if err != nil {
			return nil, err
		}
		return negPart(dt), nil
	default:
		return nil, nil
	}
}

// insertImage returns the δ⁺ image of a literal for step 3.
func (e *Engine) insertImage(lit datalog.Literal, key eval.RuleLit, inStratum map[string]bool,
	del, add map[string]*relation.Relation,
	getDeltaT func(eval.RuleLit, *datalog.Aggregate) (*relation.Relation, error),
	newR func(string) relation.Reader) (*relation.Relation, error) {

	switch lit.Kind {
	case datalog.LitPositive:
		if inStratum[lit.Atom.Pred] {
			return nil, nil
		}
		return add[lit.Atom.Pred], nil
	case datalog.LitNegated:
		// q losing tuples makes ¬q gain them.
		d := del[lit.Atom.Pred]
		if d == nil || d.Empty() {
			return nil, nil
		}
		img := relation.New(d.Arity())
		q := newR(lit.Atom.Pred)
		d.Each(func(row relation.Row) {
			if !q.Has(row.Tuple) {
				img.Add(row.Tuple, 1)
			}
		})
		return img, nil
	case datalog.LitAggregate:
		dt, err := getDeltaT(key, lit.Agg)
		if err != nil {
			return nil, err
		}
		return posPart(dt), nil
	default:
		return nil, nil
	}
}

// rederive evaluates rule ri restricted to the deletion candidates cand
// over the new state: the fast path prepends the candidate set as an
// extra subgoal matching the head pattern; rules whose heads contain
// expressions fall back to full evaluation intersected with cand.
func (e *Engine) rederive(ri int, cand *relation.Relation,
	source func(datalog.Literal, eval.RuleLit, bool) (eval.Source, error)) (*relation.Relation, error) {

	rule := e.prog.Rules[ri]
	if headSimple(rule) {
		aux := datalog.Rule{
			Head: rule.Head,
			Body: append([]datalog.Literal{{Kind: datalog.LitPositive, Atom: rule.Head}}, rule.Body...),
		}
		srcs := make([]eval.Source, len(aux.Body))
		srcs[0] = eval.Source{Rel: cand}
		for j, lit := range rule.Body {
			s, err := source(lit, eval.RuleLit{Rule: ri, Lit: j}, true)
			if err != nil {
				return nil, err
			}
			srcs[j+1] = s
		}
		plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanRederive, Delta: 0}, aux, srcs, 0)
		if err != nil {
			return nil, err
		}
		out := relation.New(len(rule.Head.Args))
		if err := eval.EvalRulePlanInstr(aux, srcs, 0, plan, out, e.instr); err != nil {
			return nil, err
		}
		e.last.RuleFirings++
		return out, nil
	}

	// Slow path: full evaluation over the new state.
	srcs := make([]eval.Source, len(rule.Body))
	for j, lit := range rule.Body {
		s, err := source(lit, eval.RuleLit{Rule: ri, Lit: j}, true)
		if err != nil {
			return nil, err
		}
		srcs[j] = s
	}
	plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanEval, Delta: -1}, rule, srcs, -1)
	if err != nil {
		return nil, err
	}
	out := relation.New(len(rule.Head.Args))
	if err := eval.EvalRulePlanInstr(rule, srcs, -1, plan, out, e.instr); err != nil {
		return nil, err
	}
	e.last.RuleFirings++
	return out, nil
}

// rederiveDelta is the semi-naive variant of rederive: only derivations
// that pass through the newly readded tuples d at body position li are
// explored, restricted to the remaining candidates.
func (e *Engine) rederiveDelta(ri, li int, d, cand *relation.Relation,
	source func(datalog.Literal, eval.RuleLit, bool) (eval.Source, error)) (*relation.Relation, error) {

	rule := e.prog.Rules[ri]
	srcs := make([]eval.Source, len(rule.Body))
	for j, lit := range rule.Body {
		if j == li {
			srcs[j] = eval.Source{Rel: d}
			continue
		}
		s, err := source(lit, eval.RuleLit{Rule: ri, Lit: j}, true)
		if err != nil {
			return nil, err
		}
		srcs[j] = s
	}
	e.last.RuleFirings++
	if headSimple(rule) {
		// Join the candidate set as an extra subgoal over the head
		// pattern so non-candidate heads are cut early.
		aux := datalog.Rule{
			Head: rule.Head,
			Body: append([]datalog.Literal{{Kind: datalog.LitPositive, Atom: rule.Head}}, rule.Body...),
		}
		auxSrcs := append([]eval.Source{{Rel: cand}}, srcs...)
		plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanRederive, Delta: li + 1}, aux, auxSrcs, li+1)
		if err != nil {
			return nil, err
		}
		out := relation.New(len(rule.Head.Args))
		if err := eval.EvalRulePlanInstr(aux, auxSrcs, li+1, plan, out, e.instr); err != nil {
			return nil, err
		}
		return out, nil
	}
	plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanDeltaNew, Delta: li}, rule, srcs, li)
	if err != nil {
		return nil, err
	}
	out := relation.New(len(rule.Head.Args))
	if err := eval.EvalRulePlanInstr(rule, srcs, li, plan, out, e.instr); err != nil {
		return nil, err
	}
	return out, nil
}

// headSimple reports whether every head argument is a variable or
// constant (no expressions), enabling the candidate-driven fast path.
func headSimple(r datalog.Rule) bool {
	for _, a := range r.Head.Args {
		if _, ok := a.(datalog.Arith); ok {
			return false
		}
	}
	return true
}

// ruleSources resolves every literal of rule ri against the current
// committed state (used to evaluate a whole rule outside propagate, e.g.
// for AddRule/RemoveRule seeds). Aggregate subgoals get group tables
// built on demand.
func (e *Engine) ruleSources(ri int, net map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation) ([]eval.Source, error) {
	rule := e.prog.Rules[ri]
	srcs := make([]eval.Source, len(rule.Body))
	for li, lit := range rule.Body {
		switch lit.Kind {
		case datalog.LitPositive, datalog.LitNegated:
			var r relation.Reader = e.db.Ensure(lit.Atom.Pred, -1)
			if n := net[lit.Atom.Pred]; n != nil {
				r = relation.Overlay(r, n)
			}
			srcs[li] = eval.Source{Rel: r}
		case datalog.LitAggregate:
			key := eval.RuleLit{Rule: ri, Lit: li}
			gt, ok := e.gts[key]
			if !ok {
				var err error
				gt, err = eval.BuildGroupTable(lit.Agg, e.db.Ensure(lit.Agg.Inner.Pred, -1))
				if err != nil {
					return nil, err
				}
				e.gts[key] = gt
			}
			var r relation.Reader = gt.Rel()
			if dt := pendingT[key]; dt != nil {
				r = relation.Overlay(r, dt)
			}
			srcs[li] = eval.Source{Rel: r}
		case datalog.LitCondition:
		}
	}
	return srcs, nil
}

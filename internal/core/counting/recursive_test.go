package counting

import (
	"math/rand"
	"testing"

	"ivm/internal/eval"
	"ivm/internal/relation"
	"ivm/internal/value"
	"ivm/internal/workload"
)

func recursiveEngine(t *testing.T, facts string) *Engine {
	t.Helper()
	prog := rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	e, err := NewWithConfig(prog, load(t, facts), Config{
		Semantics:      eval.Duplicate,
		AllowRecursion: true,
		MaxIterations:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecursiveRejectedWithoutOptIn(t *testing.T) {
	prog := rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	if _, err := New(prog, load(t, `link(a,b).`), eval.Duplicate); err != ErrRecursive {
		t.Fatalf("err = %v, want ErrRecursive", err)
	}
	// And set semantics + recursion is DRed's domain even with the opt-in.
	if _, err := NewWithConfig(prog, load(t, `link(a,b).`), Config{
		Semantics: eval.Set, AllowRecursion: true,
	}); err == nil {
		t.Fatal("set-semantics recursive counting must be rejected")
	}
}

func TestRecursivePathCountsMaterialize(t *testing.T) {
	// Diamond: two paths a⇝d.
	e := recursiveEngine(t, `link(a,b). link(a,c). link(b,d). link(c,d).`)
	if got := e.Relation("tc").Count(value.T("a", "d")); got != 2 {
		t.Fatalf("tc(a,d) = %d, want 2", got)
	}
}

func TestRecursiveMaintenanceInsert(t *testing.T) {
	e := recursiveEngine(t, `link(a,b). link(b,d).`)
	if e.Relation("tc").Count(value.T("a", "d")) != 1 {
		t.Fatal("initial")
	}
	// Add a second path a→c→d: tc(a,d) gains a derivation.
	ch, err := e.Apply(delta(t, `+link(a,c). +link(c,d).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Count(value.T("a", "d")) != 2 {
		t.Fatalf("tc(a,d) = %d, want 2: %v", e.Relation("tc").Count(value.T("a", "d")), e.Relation("tc"))
	}
	if ch["tc"].Count(value.T("a", "d")) != 1 {
		t.Fatalf("Δtc(a,d) = %v", ch["tc"])
	}
}

func TestRecursiveMaintenanceDelete(t *testing.T) {
	e := recursiveEngine(t, `link(a,b). link(a,c). link(b,d). link(c,d). link(d,e).`)
	// Two paths a⇝d, hence two a⇝e.
	if e.Relation("tc").Count(value.T("a", "e")) != 2 {
		t.Fatalf("initial tc(a,e): %v", e.Relation("tc"))
	}
	if _, err := e.Apply(delta(t, `-link(a,b).`)); err != nil {
		t.Fatal(err)
	}
	tc := e.Relation("tc")
	if tc.Count(value.T("a", "e")) != 1 || tc.Count(value.T("a", "d")) != 1 {
		t.Fatalf("after delete: %v", tc)
	}
	if tc.Has(value.T("a", "b")) {
		t.Fatal("a⇝b must be gone")
	}
	// b's own reach is untouched.
	if tc.Count(value.T("b", "e")) != 1 {
		t.Fatalf("b⇝e: %v", tc)
	}
}

func TestRecursiveMaintenanceMatchesFromScratch(t *testing.T) {
	// Randomized cross-check on DAGs: maintained counts equal a fresh
	// materialization's counts after every batch.
	rng := rand.New(rand.NewSource(19))
	link := workload.LayeredDAG(rng, 5, 4, 2)
	base := eval.NewDB()
	base.Put("link", link)
	prog := rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	cfg := Config{Semantics: eval.Duplicate, AllowRecursion: true, MaxIterations: 500}
	e, err := NewWithConfig(prog, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 15; round++ {
		cur := e.Relation("link")
		d := relation.New(2)
		// Delete one random edge and insert one forward edge (keeping the
		// graph acyclic: only layer i → layer i+1 edges exist, and we
		// re-insert a previously deleted-style edge between layers).
		del := workload.SampleDeletes(rand.New(rand.NewSource(int64(round))), cur, 1)
		d.MergeDelta(del)
		if _, err := e.Apply(map[string]*relation.Relation{"link": d}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Fresh materialization over the updated base.
		fresh := eval.NewDB()
		fresh.Put("link", e.Relation("link").Clone())
		oracle, err := NewWithConfig(prog, fresh, cfg)
		if err != nil {
			t.Fatalf("round %d oracle: %v", round, err)
		}
		if !relation.Equal(e.Relation("tc"), oracle.Relation("tc")) {
			t.Fatalf("round %d: counts diverge\nmaintained: %v\nfresh:      %v",
				round, e.Relation("tc"), oracle.Relation("tc"))
		}
	}
}

func TestRecursiveDivergenceOnCycleCreation(t *testing.T) {
	e := recursiveEngine(t, `link(a,b). link(b,c).`)
	// Closing the cycle c→a makes every tc count infinite.
	_, err := e.Apply(delta(t, `+link(c,a).`))
	if _, ok := err.(*ErrDiverged); !ok {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	// The engine state is unchanged and still usable.
	if e.Relation("link").Has(value.T("c", "a")) {
		t.Fatal("failed Apply must not commit the base delta")
	}
	if e.Relation("tc").Count(value.T("a", "c")) != 1 {
		t.Fatalf("tc must be unchanged: %v", e.Relation("tc"))
	}
	ch, err := e.Apply(delta(t, `+link(c,d).`))
	if err != nil {
		t.Fatalf("engine must stay usable: %v", err)
	}
	if ch["tc"].Count(value.T("a", "d")) != 1 {
		t.Fatalf("Δtc after recovery: %v", ch["tc"])
	}
}

func TestRecursiveDivergenceAtMaterialization(t *testing.T) {
	prog := rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	_, err := NewWithConfig(prog, load(t, `link(a,b). link(b,a).`), Config{
		Semantics: eval.Duplicate, AllowRecursion: true, MaxIterations: 30,
	})
	if err == nil {
		t.Fatal("cyclic data must fail materialization under recursive counting")
	}
}

func TestRecursiveWithAggregateAbove(t *testing.T) {
	prog2 := rules(t, `
		tc(X,Y)     :- link(X,Y).
		tc(X,Y)     :- tc(X,Z), link(Z,Y).
		nreach(X,N) :- groupby(tc(X,Y), [X], N = count(Y)).
	`)
	e, err := NewWithConfig(prog2, load(t, `link(a,b). link(b,c).`), Config{
		Semantics: eval.Duplicate, AllowRecursion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// COUNT under duplicate semantics counts derivations: a reaches b (1
	// path) and c (1 path) → 2.
	if !e.Relation("nreach").Has(value.T("a", 2)) {
		t.Fatalf("nreach: %v", e.Relation("nreach"))
	}
	if _, err := e.Apply(delta(t, `+link(c,d).`)); err != nil {
		t.Fatal(err)
	}
	if !e.Relation("nreach").Has(value.T("a", 3)) {
		t.Fatalf("nreach after: %v", e.Relation("nreach"))
	}
}

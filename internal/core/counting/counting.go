// Package counting implements the paper's counting algorithm
// (Algorithm 4.1) for incremental maintenance of nonrecursive views, with
// stratified negation (Section 6.1, Definition 6.1) and aggregation
// (Section 6.2, Algorithm 6.1), under both set and duplicate semantics.
//
// Every materialized tuple carries count(t), its number of alternative
// derivations. Given changes to the base relations, the engine evaluates
// the delta rules Δi(r) of Definition 4.1 stratum by stratum (least RSN
// first) and produces exactly the tuples whose derivation counts changed
// (Theorem 4.1) — inserted tuples with positive counts, deleted ones with
// negative counts. Under set semantics the boxed statement (2) of
// Algorithm 4.1 stops cascading when the set image of a relation is
// unchanged even though counts moved (Section 5.1).
package counting

import (
	"fmt"
	"time"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/relation"
	"ivm/internal/strata"
)

// ErrRecursive is returned when a recursive program is given: the paper
// proposes counting for nonrecursive views only (recursive counts can be
// infinite); use the DRed engine instead.
var ErrRecursive = fmt.Errorf("counting: program is recursive; use dred.Engine (counting may not terminate on recursive views)")

// Stats describes the work done by the most recent Apply call.
type Stats struct {
	// DeltaRulesEvaluated counts Δi(r) evaluations performed.
	DeltaRulesEvaluated int
	// DeltaTuples counts tuples (with count changes) produced across all
	// derived relations.
	DeltaTuples int
	// CascadeStopped counts derived relations whose counts changed but
	// whose set image did not, so statement (2) suppressed propagation.
	CascadeStopped int
}

// Config selects the engine's semantics and ablation switches.
type Config struct {
	// Semantics is the external view semantics (set or duplicate).
	Semantics eval.Semantics
	// DisableSetOpt turns off statement (2) of Algorithm 4.1 (the
	// set-semantics cascade cut, Section 5.1). Without it, a
	// set-semantics view must fall back to full duplicate-count
	// bookkeeping — counts multiply across strata and *every* count
	// change cascades upward even when no set image moved. This is the
	// ablation of experiment E3.
	DisableSetOpt bool
	// AllowRecursion enables counting on recursive views ([GKM92]; the
	// paper's Section 8 notes counting extends to "certain recursive
	// views"). Requires duplicate semantics: count(t) becomes the number
	// of derivation trees, finite only when no derivation cycle feeds t.
	// Materialization and maintenance return ErrCountsDiverge/ErrDiverged
	// when counts are infinite — use the DRed engine for such data.
	AllowRecursion bool
	// MaxIterations bounds recursive count fixpoints (0 = default).
	MaxIterations int
	// Parallelism is the number of worker goroutines used to evaluate the
	// delta rules of a stratum (Δ1..Δn over all rules, which are mutually
	// independent) concurrently, and to hash-partition large single-rule
	// joins. <= 1 evaluates sequentially; results are identical either way.
	Parallelism int
	// DisablePlanner turns off the cost-based join planner: every rule
	// evaluation falls back to the greedy per-call literal order.
	// Results are identical either way.
	DisablePlanner bool
	// Metrics, when non-nil, receives the engine's counters and timing
	// histograms (counting_*, eval_* and planner_* series). Nil disables
	// collection.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives per-batch trace events. Nil costs a
	// single pointer check per event site.
	Tracer metrics.Tracer
}

// Engine maintains the materialization of a nonrecursive view program.
type Engine struct {
	prog  *datalog.Program
	strat *strata.Stratification
	// sem is the internal counting regime: Set means per-stratum counts
	// with statement (2); Duplicate means full multiset counts.
	sem eval.Semantics
	// reportSet indicates the external semantics is Set even though the
	// internal regime is Duplicate (DisableSetOpt ablation): reported
	// changes are then collapsed to set transitions.
	reportSet bool
	// recursion: whether recursive strata are maintained (counted delta
	// fixpoints) and their iteration budget.
	allowRecursion bool
	maxIter        int
	// par is the worker count for delta-rule batches (<= 1 sequential).
	par int
	db  *eval.DB
	gts map[eval.RuleLit]*eval.GroupTable

	// last holds the work counters of the most recent Apply. It is
	// written only by Apply and read via Stats(); callers that share the
	// engine across goroutines must serialize Apply against Stats (the
	// public ivm.Views copies it into each published snapshot version).
	last Stats

	// lastDeltas holds, per predicate, the exact signed count delta the
	// most recent Apply merged into stored content — strictly wider than
	// the returned visible deltas under set semantics, where statement
	// (2) can stop the cascade while stored derivation counts still
	// moved. Snapshot publication replays exactly these deltas onto the
	// previous published version.
	lastDeltas map[string]*relation.Relation

	// planner caches cost-based delta-rule plans (nil = planning off).
	planner *eval.Planner

	// tracer and the resolved metric instruments; all nil-safe.
	tracer        metrics.Tracer
	instr         *eval.Instruments
	mApplies      *metrics.Counter
	mDeltaRules   *metrics.Counter
	mDeltaTuples  *metrics.Counter
	mCascadeStops *metrics.Counter
	mApplySeconds *metrics.Histogram
	mStratumSecs  *metrics.Histogram
}

// Stats returns the work counters of the most recent Apply.
func (e *Engine) Stats() Stats { return e.last }

// CommittedDeltas returns, per predicate, the exact signed count delta
// the most recent Apply merged into its stored relation (base and
// derived, including count-only moves that statement (2) kept from
// cascading). The relations are not mutated after Apply returns.
func (e *Engine) CommittedDeltas() map[string]*relation.Relation { return e.lastDeltas }

// observing reports whether any per-stratum timing consumer is active,
// so the unobserved hot path skips clock reads entirely.
func (e *Engine) observing() bool { return e.tracer != nil || e.mStratumSecs != nil }

// New validates and stratifies prog, materializes its views over the base
// relations in base (which is cloned; the engine owns its storage), and
// returns a ready engine.
func New(prog *datalog.Program, base *eval.DB, sem eval.Semantics) (*Engine, error) {
	return NewWithConfig(prog, base, Config{Semantics: sem})
}

// NewWithConfig is New with ablation switches.
func NewWithConfig(prog *datalog.Program, base *eval.DB, cfg Config) (*Engine, error) {
	if err := datalog.Validate(prog); err != nil {
		return nil, err
	}
	st, err := strata.Compute(prog)
	if err != nil {
		return nil, err
	}
	recursive := false
	for pred := range prog.DerivedPreds() {
		if st.Recursive[pred] {
			recursive = true
			break
		}
	}
	if recursive {
		if !cfg.AllowRecursion {
			return nil, ErrRecursive
		}
		if cfg.Semantics != eval.Duplicate {
			return nil, fmt.Errorf("counting: recursive counting requires duplicate semantics (for set semantics use the DRed engine)")
		}
	}
	sem := cfg.Semantics
	reportSet := false
	if sem == eval.Set && cfg.DisableSetOpt {
		// Without statement (2) a set view needs full duplicate counts.
		sem = eval.Duplicate
		reportSet = true
	}
	db := base.Clone()
	if cfg.Semantics == eval.Set {
		// Under set semantics base relations are sets: multiplicities in
		// the input collapse.
		for _, pred := range db.Preds() {
			db.Put(pred, db.Get(pred).ToSet())
		}
	}
	instr := eval.NewInstruments(cfg.Metrics)
	var planner *eval.Planner
	if !cfg.DisablePlanner {
		planner = eval.NewPlanner(cfg.Metrics)
	}
	ev := eval.NewEvaluator(prog, st, sem)
	ev.RecursiveCounts = cfg.AllowRecursion
	ev.MaxIterations = cfg.MaxIterations
	ev.Parallelism = cfg.Parallelism
	ev.Instr = instr
	ev.Planner = planner
	if err := ev.Evaluate(db); err != nil {
		return nil, err
	}
	e := &Engine{
		prog: prog, strat: st, sem: sem, reportSet: reportSet,
		allowRecursion: cfg.AllowRecursion, maxIter: cfg.MaxIterations,
		par: cfg.Parallelism,
		db:  db, gts: ev.GroupTables,
		planner: planner,
		tracer:  cfg.Tracer, instr: instr,
	}
	if r := cfg.Metrics; r != nil {
		e.mApplies = r.Counter("counting_applies_total")
		e.mDeltaRules = r.Counter("counting_delta_rules_total")
		e.mDeltaTuples = r.Counter("counting_delta_tuples_total")
		e.mCascadeStops = r.Counter("counting_cascade_stops_total")
		e.mApplySeconds = r.Histogram("counting_apply_seconds")
		e.mStratumSecs = r.Histogram("counting_stratum_seconds")
	}
	return e, nil
}

// Semantics returns the external view semantics.
func (e *Engine) Semantics() eval.Semantics {
	if e.reportSet {
		return eval.Set
	}
	return e.sem
}

// Program returns the maintained view program.
func (e *Engine) Program() *datalog.Program { return e.prog }

// Relation returns the stored relation (base or derived) for pred, or nil.
// Derived tuples carry their derivation counts; treat it as read-only.
func (e *Engine) Relation(pred string) *relation.Relation { return e.db.Get(pred) }

// DB exposes the engine's storage (read-only use).
func (e *Engine) DB() *eval.DB { return e.db }

// old returns the reader a rule body uses for pred's pre-change state:
// under set semantics, the set image (Section 5.1's per-stratum counts).
func (e *Engine) old(pred string) relation.Reader {
	r := e.db.Ensure(pred, -1)
	if e.sem == eval.Set {
		return relation.SetImage(r)
	}
	return r
}

// Apply maintains every view given a batch of base-relation changes
// (positive counts insert, negative delete — Section 3's Δ notation).
// It returns the externally visible change of each derived relation:
// under duplicate semantics the full count deltas, under set semantics
// the set transitions (tuples entering/leaving the view with counts ±1).
//
// Deleted base tuples must be a subset of the stored base relations
// (Lemma 4.1's precondition); violations are rejected before any state
// changes.
func (e *Engine) Apply(baseDelta map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	e.last = Stats{}
	timing := e.observing() || e.mApplySeconds != nil
	var batchStart time.Time
	if timing {
		batchStart = time.Now()
	}
	if e.tracer != nil {
		e.tracer.BatchStart("counting", len(baseDelta))
	}
	derived := e.prog.DerivedPreds()
	externalSet := e.sem == eval.Set || e.reportSet

	// cascade holds the Δ image each higher stratum consumes — and, for
	// base relations, also what gets committed. Under set semantics base
	// relations are sets: insertions of present tuples are no-ops and
	// deletions must refer to stored tuples (Lemma 4.1's precondition);
	// under duplicate semantics counts accumulate and deletions must not
	// exceed stored multiplicities.
	cascade := make(map[string]*relation.Relation)
	commitBase := make(map[string]*relation.Relation)
	for pred, d := range baseDelta {
		if derived[pred] {
			return nil, fmt.Errorf("counting: delta for derived predicate %s (only base relations may change)", pred)
		}
		stored := e.db.Ensure(pred, d.Arity())
		if stored.Arity() >= 0 && d.Arity() >= 0 && stored.Arity() != d.Arity() {
			return nil, fmt.Errorf("counting: delta for %s has arity %d, relation has arity %d", pred, d.Arity(), stored.Arity())
		}
		var verr error
		var cd *relation.Relation
		if externalSet {
			cd = relation.New(d.Arity())
			d.Each(func(row relation.Row) {
				if verr != nil {
					return
				}
				has := stored.Has(row.Tuple)
				switch {
				case row.Count > 0 && !has:
					cd.Add(row.Tuple, 1)
				case row.Count < 0:
					if !has {
						verr = fmt.Errorf("counting: deletion of absent tuple %s%s", pred, row.Tuple)
						return
					}
					cd.Add(row.Tuple, -1)
				}
			})
		} else {
			d.Each(func(row relation.Row) {
				if verr == nil && stored.Count(row.Tuple)+row.Count < 0 {
					verr = fmt.Errorf("counting: deletion of %s%s exceeds its stored count %d", pred, row.Tuple, stored.Count(row.Tuple))
				}
			})
			cd = d
		}
		if verr != nil {
			return nil, verr
		}
		commitBase[pred] = cd
		if !cd.Empty() {
			cascade[pred] = cd
		}
	}

	fullDeltas := make(map[string]*relation.Relation)
	visible := make(map[string]*relation.Relation)
	pendingT := make(map[eval.RuleLit]*relation.Relation)

	// fail aborts the round cleanly: nothing was committed yet, but group
	// tables may hold uncommitted state — roll them back so the engine
	// stays usable (e.g. after ErrDiverged).
	fail := func(err error) (map[string]*relation.Relation, error) {
		for key := range pendingT {
			e.gts[key].Rollback()
		}
		return nil, err
	}

	byStratum := e.strat.RulesByStratum(e.prog)
	for s := 1; s <= e.strat.MaxStratum; s++ {
		var stratumStart time.Time
		if timing {
			stratumStart = time.Now()
		}
		perPred := make(map[string]*relation.Relation)
		recursive := false
		for _, ri := range byStratum[s] {
			if e.strat.Recursive[e.prog.Rules[ri].Head.Pred] {
				recursive = true
				break
			}
		}
		switch {
		case recursive:
			if err := e.applyRecursiveStratum(s, byStratum[s], cascade, pendingT, perPred); err != nil {
				return fail(err)
			}
		case e.par > 1:
			if err := e.applyStratumParallel(byStratum[s], cascade, pendingT, perPred); err != nil {
				return fail(err)
			}
		default:
			for _, ri := range byStratum[s] {
				if err := e.applyRule(ri, cascade, pendingT, perPred); err != nil {
					return fail(err)
				}
			}
		}
		// Close the stratum: record full deltas and decide what cascades.
		for pred, dp := range perPred {
			if dp.Empty() {
				continue
			}
			stored := e.db.Ensure(pred, -1)
			var verr error
			dp.Each(func(row relation.Row) {
				if verr == nil && stored.Count(row.Tuple)+row.Count < 0 {
					verr = fmt.Errorf("counting: internal error: count of %s%s would become negative (Theorem 4.1 violated)", pred, row.Tuple)
				}
			})
			if verr != nil {
				return fail(verr)
			}
			fullDeltas[pred] = dp
			e.last.DeltaTuples += dp.Len()
			switch {
			case e.sem == eval.Set:
				// Statement (2): Δ(P) = set(Pν) − set(P) is both what
				// cascades and the externally visible change of a set view.
				cd := setTransitions(stored, dp)
				if cd.Empty() {
					e.last.CascadeStopped++
				} else {
					cascade[pred] = cd
					visible[pred] = cd
				}
			case e.reportSet:
				// Ablation: full duplicate counts cascade, but the view is
				// externally a set — report only set transitions.
				cascade[pred] = dp
				if cd := setTransitions(stored, dp); !cd.Empty() {
					visible[pred] = cd
				}
			default:
				cascade[pred] = dp
				visible[pred] = dp
			}
		}
		if timing {
			d := time.Since(stratumStart)
			e.mStratumSecs.Observe(d)
			if e.tracer != nil {
				e.tracer.StratumDone(s, d)
			}
		}
	}

	// Commit: base deltas, view deltas, group tables.
	e.lastDeltas = make(map[string]*relation.Relation, len(commitBase)+len(fullDeltas))
	for pred, d := range commitBase {
		e.db.Ensure(pred, -1).MergeDelta(d)
		if !d.Empty() {
			e.lastDeltas[pred] = d
		}
	}
	for pred, dp := range fullDeltas {
		e.db.Ensure(pred, -1).MergeDelta(dp)
		if !dp.Empty() {
			e.lastDeltas[pred] = dp
		}
	}
	for key, dt := range pendingT {
		e.gts[key].Commit(dt)
	}
	e.mApplies.Inc()
	e.mDeltaRules.Add(int64(e.last.DeltaRulesEvaluated))
	e.mDeltaTuples.Add(int64(e.last.DeltaTuples))
	e.mCascadeStops.Add(int64(e.last.CascadeStopped))
	if timing {
		d := time.Since(batchStart)
		e.mApplySeconds.Observe(d)
		if e.tracer != nil {
			e.tracer.BatchDone(d, len(visible))
		}
	}
	return visible, nil
}

// applyRule evaluates the delta rules Δ1(r)..Δn(r) of rule ri that have a
// changed subgoal, accumulating Δ(head) into perPred.
func (e *Engine) applyRule(ri int, cascade map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation, perPred map[string]*relation.Relation) error {
	rule := e.prog.Rules[ri]
	litDelta, err := e.deltaImages(ri, cascade, pendingT)
	if err != nil {
		return err
	}
	changed := false
	for _, d := range litDelta {
		if d != nil {
			changed = true
			break
		}
	}
	if !changed {
		return nil
	}

	dp, ok := perPred[rule.Head.Pred]
	if !ok {
		dp = relation.New(len(rule.Head.Args))
		perPred[rule.Head.Pred] = dp
	}

	for i := range litDelta {
		if litDelta[i] == nil {
			continue
		}
		srcs := e.deltaSources(ri, litDelta, i, cascade, pendingT)
		plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanDeltaNew, Delta: i}, rule, srcs, i)
		if err != nil {
			return err
		}
		before := dp.Len()
		if err := eval.EvalRulePlanInstr(rule, srcs, i, plan, dp, e.instr); err != nil {
			return err
		}
		e.last.DeltaRulesEvaluated++
		if e.tracer != nil {
			e.tracer.RuleEvaluated(rule.Head.Pred, dp.Len()-before)
		}
	}
	return nil
}

// applyStratumParallel evaluates all delta rules of a nonrecursive
// stratum as one batch over the worker pool. The Δ images and group-table
// updates are computed sequentially up front (they memoize into shared
// maps); every Δi(r) evaluation then writes a private output, and the
// outputs are ⊎-merged into perPred in task order — identical to the
// sequential accumulation because ⊎ is commutative.
func (e *Engine) applyStratumParallel(rules []int, cascade map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation, perPred map[string]*relation.Relation) error {
	var tasks []eval.Task
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		litDelta, err := e.deltaImages(ri, cascade, pendingT)
		if err != nil {
			return err
		}
		for i := range litDelta {
			if litDelta[i] == nil {
				continue
			}
			srcs := e.deltaSources(ri, litDelta, i, cascade, pendingT)
			plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanDeltaNew, Delta: i}, rule, srcs, i)
			if err != nil {
				return err
			}
			tasks = append(tasks, eval.Task{
				Rule:     rule,
				Srcs:     srcs,
				FirstLit: i,
				Plan:     plan,
				Out:      relation.New(len(rule.Head.Args)),
			})
		}
	}
	if err := eval.RunBatchInstr(tasks, e.par, e.instr); err != nil {
		return err
	}
	for _, t := range tasks {
		pred := t.Rule.Head.Pred
		dp, ok := perPred[pred]
		if !ok {
			dp = relation.New(len(t.Rule.Head.Args))
			perPred[pred] = dp
		}
		dp.MergeDelta(t.Out)
		e.last.DeltaRulesEvaluated++
		if e.tracer != nil {
			e.tracer.RuleEvaluated(pred, t.Out.Len())
		}
	}
	return nil
}

// deltaImages computes the per-literal Δ images of rule ri (nil =
// subgoal unchanged), updating group tables as a side effect. Must run
// sequentially: it memoizes into pendingT.
func (e *Engine) deltaImages(ri int, cascade map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation) ([]*relation.Relation, error) {
	rule := e.prog.Rules[ri]
	n := len(rule.Body)

	// Per-literal Δ images (nil = subgoal unchanged).
	litDelta := make([]*relation.Relation, n)
	for li, lit := range rule.Body {
		switch lit.Kind {
		case datalog.LitPositive:
			if cd := cascade[lit.Atom.Pred]; cd != nil {
				litDelta[li] = cd
			}
		case datalog.LitNegated:
			if cd := cascade[lit.Atom.Pred]; cd != nil {
				if dn := deltaNegation(e.old(lit.Atom.Pred), cd); !dn.Empty() {
					litDelta[li] = dn
				}
			}
		case datalog.LitAggregate:
			inner := lit.Agg.Inner.Pred
			cd := cascade[inner]
			if cd == nil {
				continue
			}
			key := eval.RuleLit{Rule: ri, Lit: li}
			dt, done := pendingT[key]
			if !done {
				gt, ok := e.gts[key]
				if !ok {
					return nil, fmt.Errorf("counting: internal error: no group table for rule %d literal %d", ri, li)
				}
				uNew := relation.Overlay(e.old(inner), cd)
				var err error
				dt, err = gt.ApplyDelta(cd, uNew)
				if err != nil {
					return nil, err
				}
				pendingT[key] = dt
			}
			if !dt.Empty() {
				litDelta[li] = dt
			}
		}
	}
	return litDelta, nil
}

// deltaSources builds the source list of delta rule Δi(r) per Definition
// 4.1: position i reads the Δ image, earlier positions the new state,
// later positions the old state. Reads shared state only — safe to call
// before fanning the evaluations out to workers.
func (e *Engine) deltaSources(ri int, litDelta []*relation.Relation, i int, cascade map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation) []eval.Source {
	rule := e.prog.Rules[ri]
	n := len(rule.Body)
	srcs := make([]eval.Source, n)
	for j := 0; j < n; j++ {
		if j == i {
			srcs[j] = eval.Source{Rel: litDelta[i], JoinDelta: rule.Body[i].Kind == datalog.LitNegated}
			continue
		}
		srcs[j] = e.sideSource(rule.Body[j], eval.RuleLit{Rule: ri, Lit: j}, cascade, pendingT, j < i)
	}
	return srcs
}

// sideSource resolves a non-Δ-position literal: positions before the Δ
// see the new state, positions after see the old state (Definition 4.1,
// matching Example 4.1's d1/d2 orientation).
func (e *Engine) sideSource(lit datalog.Literal, key eval.RuleLit, cascade map[string]*relation.Relation, pendingT map[eval.RuleLit]*relation.Relation, useNew bool) eval.Source {
	switch lit.Kind {
	case datalog.LitPositive, datalog.LitNegated:
		r := e.old(lit.Atom.Pred)
		if useNew {
			if cd := cascade[lit.Atom.Pred]; cd != nil {
				return eval.Source{Rel: relation.Overlay(r, cd)}
			}
		}
		return eval.Source{Rel: r}
	case datalog.LitAggregate:
		gt := e.gts[key]
		old := gt.Rel()
		if useNew {
			if dt := pendingT[key]; dt != nil {
				return eval.Source{Rel: relation.Overlay(old, dt)}
			}
		}
		return eval.Source{Rel: old}
	default:
		return eval.Source{}
	}
}

// deltaNegation computes Δ(¬Q) per Definition 6.1: a tuple of ΔQ that
// leaves the (positive) set image of Q enters ¬Q with count 1; one that
// enters it leaves ¬Q with count −1.
func deltaNegation(qOld relation.Reader, dq *relation.Relation) *relation.Relation {
	out := relation.New(dq.Arity())
	dq.Each(func(row relation.Row) {
		oldHas := qOld.Has(row.Tuple)
		newHas := qOld.Count(row.Tuple)+row.Count > 0
		switch {
		case oldHas && !newHas:
			out.Add(row.Tuple, 1)
		case !oldHas && newHas:
			out.Add(row.Tuple, -1)
		}
	})
	return out
}

// setTransitions returns set(stored ⊎ d) − set(stored) as a ±1 delta:
// the tuples whose presence flips when d is applied to stored.
func setTransitions(stored *relation.Relation, d *relation.Relation) *relation.Relation {
	out := relation.New(d.Arity())
	d.Each(func(row relation.Row) {
		oldC := stored.Count(row.Tuple)
		newC := oldC + row.Count
		switch {
		case oldC <= 0 && newC > 0:
			out.Add(row.Tuple, 1)
		case oldC > 0 && newC <= 0:
			out.Add(row.Tuple, -1)
		}
	})
	return out
}

// InternalSemantics reports the internal counting regime (Set =
// per-stratum counts, Duplicate = full multiset counts) — what
// explanation queries must use to resolve subgoal relations.
func (e *Engine) InternalSemantics() eval.Semantics { return e.sem }

// GroupTables exposes the engine's GROUPBY materializations (read-only
// use; explanation queries resolve aggregate subgoals through them).
func (e *Engine) GroupTables() map[eval.RuleLit]*eval.GroupTable { return e.gts }

package counting

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/relation"
)

// ErrDiverged is returned by Apply when a recursive stratum's count
// deltas do not quiesce within the iteration budget — the change touched
// a derivation cycle, so the new counts are infinite ([GKM92]; paper
// Section 8's caveat). The engine state is unchanged.
type ErrDiverged struct {
	Stratum    int
	Iterations int
}

func (e *ErrDiverged) Error() string {
	return fmt.Sprintf("counting: count deltas in stratum %d did not converge after %d iterations (derivation cycle — use the DRed engine)", e.Stratum, e.Iterations)
}

// applyRecursiveStratum computes Δ(P) for a recursive stratum under
// duplicate semantics by a counted delta fixpoint:
//
//	round 0: the ordinary delta rules of Definition 4.1, driven by the
//	         changes to lower strata, with in-stratum relations at their
//	         old values — the direct effect of the base changes;
//	round i: in-stratum delta positions take round i−1's delta; earlier
//	         positions see old ⊎ (all deltas through i−1), later positions
//	         old ⊎ (all deltas through i−2); lower strata are fixed at
//	         their new values — the ripple through the recursion.
//
// Summing the rounds telescopes to count(t)ν − count(t) exactly; the
// fixpoint is reached when a round produces no net count change. On
// cyclic derivations the deltas never quiesce and ErrDiverged is
// returned after maxIter rounds.
func (e *Engine) applyRecursiveStratum(stratum int, rules []int,
	cascade map[string]*relation.Relation,
	pendingT map[eval.RuleLit]*relation.Relation,
	perPred map[string]*relation.Relation) error {

	inStratum := make(map[string]bool)
	for _, ri := range rules {
		inStratum[e.prog.Rules[ri].Head.Pred] = true
	}

	// ---- Round 0: effects of lower-strata changes. ----
	round := make(map[string]*relation.Relation)
	for pred := range inStratum {
		round[pred] = relation.New(e.db.Ensure(pred, -1).Arity())
	}
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		// Reuse the nonrecursive delta-rule machinery, but restrict the Δ
		// positions to subgoals over *changed lower* predicates and route
		// results into the round accumulator.
		if err := e.applyRuleLowerOnly(ri, inStratum, cascade, pendingT, round[rule.Head.Pred]); err != nil {
			return err
		}
	}

	acc := make(map[string]*relation.Relation)
	for pred := range inStratum {
		acc[pred] = relation.New(round[pred].Arity())
		acc[pred].MergeDelta(round[pred])
	}

	maxIter := e.maxIterations()
	for iter := 0; ; iter++ {
		quiet := true
		for _, d := range round {
			if !d.Empty() {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if iter >= maxIter {
			return &ErrDiverged{Stratum: stratum, Iterations: maxIter}
		}
		next := make(map[string]*relation.Relation)
		for pred := range inStratum {
			next[pred] = relation.New(round[pred].Arity())
		}
		// negPrev caches Δ_{i-1}.Negate() per pred for P_{r-2} readers.
		negPrev := make(map[string]*relation.Relation)
		for pred, d := range round {
			negPrev[pred] = d.Negate()
		}
		reader := func(pred string, includePrev bool) relation.Reader {
			old := e.db.Ensure(pred, -1)
			if !inStratum[pred] {
				// Lower strata: always the new value.
				if cd := cascade[pred]; cd != nil {
					return relation.Overlay(e.old(pred), cd)
				}
				return e.old(pred)
			}
			r := relation.Overlay(relation.Reader(old), acc[pred])
			if !includePrev {
				r = relation.Overlay(r, negPrev[pred])
			}
			return r
		}
		for _, ri := range rules {
			rule := e.prog.Rules[ri]
			for li, lit := range rule.Body {
				if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
					continue
				}
				d := round[lit.Atom.Pred]
				if d.Empty() {
					continue
				}
				srcs := make([]eval.Source, len(rule.Body))
				for j, l2 := range rule.Body {
					switch {
					case j == li:
						srcs[j] = eval.Source{Rel: d}
					case l2.Kind == datalog.LitPositive || l2.Kind == datalog.LitNegated:
						srcs[j] = eval.Source{Rel: reader(l2.Atom.Pred, j < li)}
					case l2.Kind == datalog.LitAggregate:
						srcs[j] = e.sideSource(l2, eval.RuleLit{Rule: ri, Lit: j}, cascade, pendingT, true)
					}
				}
				out := relation.New(len(rule.Head.Args))
				plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanDeltaNew, Delta: li}, rule, srcs, li)
				if err != nil {
					return err
				}
				if err := eval.EvalRulePlanInstr(rule, srcs, li, plan, out, e.instr); err != nil {
					return err
				}
				e.last.DeltaRulesEvaluated++
				next[rule.Head.Pred].MergeDelta(out)
			}
		}
		for pred := range inStratum {
			acc[pred].MergeDelta(next[pred])
		}
		round = next
	}

	for pred := range inStratum {
		if !acc[pred].Empty() {
			perPred[pred] = acc[pred]
		}
	}
	return nil
}

// applyRuleLowerOnly evaluates rule ri's delta rules Δk for positions k
// whose predicate changed in a lower stratum, with in-stratum subgoals at
// their old values (recursive round 0).
func (e *Engine) applyRuleLowerOnly(ri int, inStratum map[string]bool,
	cascade map[string]*relation.Relation,
	pendingT map[eval.RuleLit]*relation.Relation,
	dp *relation.Relation) error {

	rule := e.prog.Rules[ri]
	n := len(rule.Body)
	litDelta := make([]*relation.Relation, n)
	for li, lit := range rule.Body {
		if pred := lit.Pred(); pred == "" || inStratum[pred] {
			continue
		}
		switch lit.Kind {
		case datalog.LitPositive:
			if cd := cascade[lit.Atom.Pred]; cd != nil {
				litDelta[li] = cd
			}
		case datalog.LitNegated:
			if cd := cascade[lit.Atom.Pred]; cd != nil {
				if dn := deltaNegation(e.old(lit.Atom.Pred), cd); !dn.Empty() {
					litDelta[li] = dn
				}
			}
		case datalog.LitAggregate:
			inner := lit.Agg.Inner.Pred
			cd := cascade[inner]
			if cd == nil {
				continue
			}
			key := eval.RuleLit{Rule: ri, Lit: li}
			dt, done := pendingT[key]
			if !done {
				gt, ok := e.gts[key]
				if !ok {
					return fmt.Errorf("counting: internal error: no group table for rule %d literal %d", ri, li)
				}
				var err error
				dt, err = gt.ApplyDelta(cd, relation.Overlay(e.old(inner), cd))
				if err != nil {
					return err
				}
				pendingT[key] = dt
			}
			if !dt.Empty() {
				litDelta[li] = dt
			}
		}
	}

	for i := 0; i < n; i++ {
		if litDelta[i] == nil {
			continue
		}
		srcs := make([]eval.Source, n)
		for j := 0; j < n; j++ {
			if j == i {
				srcs[j] = eval.Source{Rel: litDelta[i], JoinDelta: rule.Body[i].Kind == datalog.LitNegated}
				continue
			}
			lit := rule.Body[j]
			if pred := lit.Pred(); pred != "" && inStratum[pred] {
				// In-stratum subgoals stay at their old values in round 0.
				srcs[j] = eval.Source{Rel: e.old(pred)}
				continue
			}
			srcs[j] = e.sideSource(lit, eval.RuleLit{Rule: ri, Lit: j}, cascade, pendingT, j < i)
		}
		plan, err := e.planner.PlanFor(eval.PlanKey{Rule: ri, Kind: eval.PlanDeltaNew, Delta: i}, rule, srcs, i)
		if err != nil {
			return err
		}
		if err := eval.EvalRulePlanInstr(rule, srcs, i, plan, dp, e.instr); err != nil {
			return err
		}
		e.last.DeltaRulesEvaluated++
	}
	return nil
}

func (e *Engine) maxIterations() int {
	if e.maxIter > 0 {
		return e.maxIter
	}
	return eval.DefaultMaxIterations
}

package counting

import (
	"math/rand"
	"testing"

	"ivm/internal/baseline/recompute"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
	"ivm/internal/workload"
)

func load(t *testing.T, src string) *eval.DB {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	for _, f := range facts {
		db.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return db
}

func rules(t *testing.T, src string) *datalog.Program {
	t.Helper()
	prog, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func delta(t *testing.T, src string) map[string]*relation.Relation {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*relation.Relation)
	for _, f := range facts {
		r, ok := out[f.Pred]
		if !ok {
			r = relation.New(len(f.Tuple))
			out[f.Pred] = r
		}
		r.Add(f.Tuple, f.Count)
	}
	return out
}

func TestRejectsRecursive(t *testing.T) {
	prog := rules(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	if _, err := New(prog, eval.NewDB(), eval.Set); err != ErrRecursive {
		t.Fatalf("err = %v, want ErrRecursive", err)
	}
}

func TestRejectsDerivedDelta(t *testing.T) {
	prog := rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	e, err := New(prog, load(t, `link(a,b).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `+hop(a,b).`)); err == nil {
		t.Fatal("derived delta must be rejected")
	}
}

func TestRejectsOverDeletion(t *testing.T) {
	prog := rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	e, err := New(prog, load(t, `link(a,b).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Apply(delta(t, `-link(a,b) * 2.`)); err == nil {
		t.Fatal("deleting more copies than stored violates Lemma 4.1's precondition")
	}
	if _, err := e.Apply(delta(t, `-link(zz,qq).`)); err == nil {
		t.Fatal("deleting an absent tuple must be rejected")
	}
	// State unchanged after rejection.
	if e.Relation("link").Count(value.T("a", "b")) != 1 {
		t.Fatal("failed Apply must not mutate state")
	}
}

func TestInsertionsOfNewBasePred(t *testing.T) {
	// A base predicate that was empty at materialization time.
	prog := rules(t, `v(X,Y) :- link(X,Y), extra(Y).`)
	e, err := New(prog, load(t, `link(a,b).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `+extra(b).`))
	if err != nil {
		t.Fatal(err)
	}
	if ch["v"] == nil || ch["v"].Count(value.T("a", "b")) != 1 {
		t.Fatalf("Δv: %v", ch["v"])
	}
}

func TestUpdateAsDeleteInsert(t *testing.T) {
	// The paper treats updates as delete+insert in one batch.
	prog := rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	e, err := New(prog, load(t, `link(a,b). link(b,c).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `-link(b,c). +link(b,d).`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{value.T("a", "c").Key(): -1, value.T("a", "d").Key(): 1}
	got := make(map[string]int64)
	ch["hop"].Each(func(r relation.Row) { got[r.Tuple.Key()] = r.Count })
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("Δhop: %v", ch["hop"])
		}
	}
}

func TestEmptyDeltaNoChanges(t *testing.T) {
	prog := rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	e, err := New(prog, load(t, `link(a,b). link(b,c).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(map[string]*relation.Relation{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatalf("changes: %v", ch)
	}
	if e.Stats().DeltaRulesEvaluated != 0 {
		t.Fatal("no delta rules should fire")
	}
}

func TestIrrelevantDeltaStopsEarly(t *testing.T) {
	prog := rules(t, `
		hop(X,Y) :- link(X,Z), link(Z,Y).
		other(X) :- unrelated(X).
	`)
	e, err := New(prog, load(t, `link(a,b). link(b,c). unrelated(q).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.Apply(delta(t, `+unrelated(z).`))
	if err != nil {
		t.Fatal(err)
	}
	if ch["hop"] != nil {
		t.Fatal("hop must not change")
	}
	if ch["other"] == nil {
		t.Fatal("other must change")
	}
	if e.Stats().DeltaRulesEvaluated != 1 {
		t.Fatalf("delta rules evaluated = %d, want 1", e.Stats().DeltaRulesEvaluated)
	}
}

func TestSelfJoinDeltaExactness(t *testing.T) {
	// Theorem 4.1 on the classic self-join trap: inserting a tuple that
	// joins with itself must produce exactly the new derivations, once.
	prog := rules(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	e, err := New(prog, load(t, `link(a,a).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	// hop(a,a) via (a,a)x(a,a): count 1.
	if e.Relation("hop").Count(value.T("a", "a")) != 1 {
		t.Fatal("initial")
	}
	// Insert link(a,b) and link(b,a): new derivations
	//   hop(a,a): (a,b)(b,a)  → +1
	//   hop(b,b): (b,a)(a,b)  → +1
	//   hop(b,a): (b,a)(a,a)  → +1
	//   hop(a,b): (a,a)(a,b)  → +1
	ch, err := e.Apply(delta(t, `+link(a,b). +link(b,a).`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"a,a": 1, "b,b": 1, "b,a": 1, "a,b": 1}
	got := make(map[string]int64)
	ch["hop"].Each(func(r relation.Row) {
		key := r.Tuple[0].String() + "," + r.Tuple[1].String()
		got[key] = r.Count
	})
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("Δhop[%s] = %d, want %d (%v)", k, got[k], c, got)
		}
	}
	if e.Relation("hop").Count(value.T("a", "a")) != 2 {
		t.Fatal("hop(a,a) must have 2 derivations now")
	}
}

func TestNegationInsertionDeletesView(t *testing.T) {
	prog := rules(t, `
		v(X) :- t(X), !q(X).
	`)
	e, err := New(prog, load(t, `t(a). t(b). q(b).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relation("v").Has(value.T("a")) || e.Relation("v").Has(value.T("b")) {
		t.Fatal("initial v")
	}
	ch, err := e.Apply(delta(t, `+q(a). -q(b).`))
	if err != nil {
		t.Fatal(err)
	}
	if ch["v"].Count(value.T("a")) != -1 || ch["v"].Count(value.T("b")) != 1 {
		t.Fatalf("Δv: %v", ch["v"])
	}
}

func TestNegationCountInvariance(t *testing.T) {
	// Example 6.1's remark: ¬q(t) only cares whether count(q(t)) > 0.
	prog := rules(t, `v(X) :- t(X), !q(X).`)
	e, err := New(prog, load(t, `t(a). q(a). q(a).`), eval.Duplicate) // q(a) count 2
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("v").Has(value.T("a")) {
		t.Fatal("v(a) false initially")
	}
	// Drop one of two q(a): still true, v unchanged.
	ch, err := e.Apply(delta(t, `-q(a).`))
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatalf("no view change expected: %v", ch)
	}
	// Drop the last: v(a) appears.
	ch, err = e.Apply(delta(t, `-q(a).`))
	if err != nil {
		t.Fatal(err)
	}
	if ch["v"].Count(value.T("a")) != 1 {
		t.Fatalf("Δv: %v", ch["v"])
	}
}

// TestRandomizedAgainstRecompute cross-checks counting maintenance against
// the recompute baseline over many random delta batches (experiment E11's
// engine-level form).
func TestRandomizedAgainstRecompute(t *testing.T) {
	progSrc := `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
		dead(X,Y)    :- hop(X,Y), !tri_hop(X,Y).
	`
	prog := rules(t, progSrc)
	rng := rand.New(rand.NewSource(7))
	base := eval.NewDB()
	base.Put("link", workload.RandomGraph(rng, 12, 30))

	for _, sem := range []eval.Semantics{eval.Set, eval.Duplicate} {
		ce, err := New(prog, base, sem)
		if err != nil {
			t.Fatal(err)
		}
		re, err := recompute.New(prog, base, sem)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 25; round++ {
			link := ce.Relation("link")
			d := workload.Mixed(rng, link, 12, 2, 2)
			if d.Empty() {
				continue
			}
			dm := map[string]*relation.Relation{"link": d}
			if _, err := ce.Apply(dm); err != nil {
				t.Fatalf("%v round %d: %v", sem, round, err)
			}
			if _, err := re.Apply(dm); err != nil {
				t.Fatalf("%v round %d: %v", sem, round, err)
			}
			for _, pred := range []string{"link", "hop", "tri_hop", "dead"} {
				a, b := ce.Relation(pred), re.Relation(pred)
				if sem == eval.Duplicate {
					if !relation.Equal(a, b) {
						t.Fatalf("%v round %d: %s counts diverge:\ncounting:  %v\nrecompute: %v", sem, round, pred, a, b)
					}
				} else if !relation.EqualAsSets(a, b) {
					t.Fatalf("%v round %d: %s sets diverge:\ncounting:  %v\nrecompute: %v", sem, round, pred, a, b)
				}
				// Theorem 4.1 / Lemma 4.1: no negative stored counts, ever.
				a.Each(func(r relation.Row) {
					if r.Count < 0 {
						t.Fatalf("negative stored count %s%v = %d", pred, r.Tuple, r.Count)
					}
				})
			}
		}
	}
}

// TestSetModeCountsEqualRecompute verifies the per-stratum counts of set
// semantics also match recompute exactly (not just as sets).
func TestSetModeCountsEqualRecompute(t *testing.T) {
	prog := rules(t, `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	rng := rand.New(rand.NewSource(11))
	base := eval.NewDB()
	base.Put("link", workload.RandomGraph(rng, 10, 25))
	ce, err := New(prog, base, eval.Set)
	if err != nil {
		t.Fatal(err)
	}
	re, err := recompute.New(prog, base, eval.Set)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		d := workload.Mixed(rng, ce.Relation("link"), 10, 2, 2)
		dm := map[string]*relation.Relation{"link": d}
		if _, err := ce.Apply(dm); err != nil {
			t.Fatal(err)
		}
		if _, err := re.Apply(dm); err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{"hop", "tri_hop"} {
			if !relation.Equal(ce.Relation(pred), re.Relation(pred)) {
				t.Fatalf("round %d: %s per-stratum counts diverge:\ncounting:  %v\nrecompute: %v",
					round, pred, ce.Relation(pred), re.Relation(pred))
			}
		}
	}
}

// TestAblationNoSetOptStillCorrect: with statement (2) disabled the
// results must still be correct as sets, just computed with more work.
func TestAblationNoSetOptStillCorrect(t *testing.T) {
	prog := rules(t, `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	rng := rand.New(rand.NewSource(3))
	base := eval.NewDB()
	base.Put("link", workload.RandomGraph(rng, 10, 25))
	opt, err := NewWithConfig(prog, base, Config{Semantics: eval.Set})
	if err != nil {
		t.Fatal(err)
	}
	noOpt, err := NewWithConfig(prog, base, Config{Semantics: eval.Set, DisableSetOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if noOpt.Semantics() != eval.Set {
		t.Fatal("external semantics must remain Set")
	}
	for round := 0; round < 15; round++ {
		d := workload.Mixed(rng, opt.Relation("link"), 10, 2, 2)
		dm := map[string]*relation.Relation{"link": d}
		if _, err := opt.Apply(dm); err != nil {
			t.Fatal(err)
		}
		if _, err := noOpt.Apply(dm); err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{"hop", "tri_hop"} {
			if !relation.EqualAsSets(opt.Relation(pred), noOpt.Relation(pred)) {
				t.Fatalf("round %d: %s diverges under ablation", round, pred)
			}
		}
	}
}

func TestAggregateMaintenanceAgainstRecompute(t *testing.T) {
	prog := rules(t, `
		cost(S,D,C1+C2)  :- link(S,I,C1), link(I,D,C2).
		mc(S,D,M)        :- groupby(cost(S,D,C), [S,D], M = min(C)).
		total(S,N)       :- groupby(cost(S,D,C), [S], N = sum(C)).
		cnt(S,N)         :- groupby(cost(S,D,C), [S], N = count(C)).
	`)
	rng := rand.New(rand.NewSource(5))
	base := eval.NewDB()
	base.Put("link", workload.RandomWeightedGraph(rng, 8, 20, 10))
	ce, err := New(prog, base, eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	re, err := recompute.New(prog, base, eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 25; round++ {
		link := ce.Relation("link")
		d := workload.SampleDeletes(rng, link, 1)
		// Random weighted insertion.
		ins := workload.RandomWeightedGraph(rng, 8, 1, 10)
		ins.Each(func(r relation.Row) {
			if !link.Has(r.Tuple) && d.Count(r.Tuple) == 0 {
				d.Add(r.Tuple, 1)
			}
		})
		if d.Empty() {
			continue
		}
		dm := map[string]*relation.Relation{"link": d}
		if _, err := ce.Apply(dm); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := re.Apply(dm); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, pred := range []string{"cost", "mc", "total", "cnt"} {
			if !relation.Equal(ce.Relation(pred), re.Relation(pred)) {
				t.Fatalf("round %d: %s diverges:\ncounting:  %v\nrecompute: %v",
					round, pred, ce.Relation(pred), re.Relation(pred))
			}
		}
	}
}

func TestMultiPredicateBatch(t *testing.T) {
	// One Apply touching several base relations at once: deltas must
	// combine within a single delta-rule pass per stratum.
	prog := rules(t, `
		edge(X,Y) :- road(X,Y).
		edge(X,Y) :- rail(X,Y).
		hop(X,Y)  :- edge(X,Z), edge(Z,Y).
	`)
	e, err := New(prog, load(t, `road(a,b). rail(b,c).`), eval.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("hop").Count(value.T("a", "c")) != 1 {
		t.Fatal("initial")
	}
	// Swap both legs in one batch: delete road(a,b)+rail(b,c), insert
	// rail(a,b)+road(b,c). hop(a,c) must survive with count 1 (net), and
	// the intermediate edge counts stay 1.
	ch, err := e.Apply(delta(t, `-road(a,b). -rail(b,c). +rail(a,b). +road(b,c).`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("hop").Count(value.T("a", "c")) != 1 {
		t.Fatalf("hop: %v", e.Relation("hop"))
	}
	if e.Relation("edge").Count(value.T("a", "b")) != 1 {
		t.Fatalf("edge: %v", e.Relation("edge"))
	}
	// Net change to hop is zero: the visible delta must be empty for hop.
	if d := ch["hop"]; d != nil && !d.Empty() {
		t.Fatalf("Δhop should be net empty: %v", d)
	}
}

package storage

// Replication wire format. A primary ships committed changes to
// followers as a stream of framed records:
//
//	[kind u8][epoch u64][version u64][unixnano i64][len u32][crc32c u32][payload]
//
// The CRC32C covers the first 29 header bytes plus the payload, so a
// record torn or damaged in transit is rejected before any of it is
// applied. The epoch is the leader fencing epoch: it increments on
// every promotion, and a follower that knows epoch N refuses records
// stamped with an older epoch — a revived pre-failover primary cannot
// feed it stale deltas. Three kinds exist:
//
//   - 'D' (delta): payload is a framing-v2 WAL body (keyed or bare
//     delta script); version is the snapshot version the primary
//     published when it applied the delta. Applying the stream of 'D'
//     records in version order reproduces the primary bit-for-bit.
//   - 'S' (state): payload is a JSON ReplState — the full program,
//     facts, and configuration at version. Sent when a follower's
//     resume point is too old to bridge with deltas; the follower
//     replaces its state wholesale and resumes tailing from version.
//   - 'H' (heartbeat): empty payload; version is the primary's current
//     published version. Keeps the connection demonstrably alive and
//     lets an idle follower track lag.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Replication record kinds.
const (
	ReplKindDelta     byte = 'D'
	ReplKindState     byte = 'S'
	ReplKindHeartbeat byte = 'H'
)

// replHeaderSize is the fixed record header: kind u8, epoch u64,
// version u64, unixnano i64, len u32, crc32c u32 (numbers big-endian).
const replHeaderSize = 33

// maxReplPayload bounds a record payload so a corrupt length header
// cannot force a multi-gigabyte allocation on either end.
const maxReplPayload = 1 << 30

// ReplRecord is one decoded replication stream record.
type ReplRecord struct {
	Kind byte
	// Epoch is the leader fencing epoch the record was shipped under.
	// Followers reject records older than the highest epoch they have
	// seen, so a deposed primary cannot split-brain the cluster.
	Epoch    uint64
	Version  uint64
	UnixNano int64
	// Script and Keys are set for 'D' records (the framing-v2 payload).
	Script string
	Keys   []string
	// State is the raw JSON ReplState payload of an 'S' record.
	State []byte
}

// ReplState is the full-state payload of an 'S' record: everything a
// follower needs to rebuild the primary's Views from scratch.
type ReplState struct {
	// Program is the view-definition source text.
	Program string `json:"program"`
	// Hidden lists internal auxiliary predicates filtered from
	// user-facing change sets.
	Hidden []string `json:"hidden,omitempty"`
	// Facts is a delta script (`+pred(tuple) * n.` lines) inserting
	// every stored base fact with its count.
	Facts string `json:"facts"`
	// Strategy and Semantics are the engine configuration names the
	// follower must match for bit-identical derived state.
	Strategy  string `json:"strategy,omitempty"`
	Semantics string `json:"semantics,omitempty"`
}

// AppendReplRecord encodes rec and appends it to dst. For 'D' records
// the payload is built from Script/Keys with the WAL framing-v2
// encoder; for 'S' records the State bytes are shipped as-is; 'H'
// records carry no payload.
func AppendReplRecord(dst []byte, rec ReplRecord) ([]byte, error) {
	var payload []byte
	switch rec.Kind {
	case ReplKindDelta:
		p, err := encodeKeyedPayload(rec.Script, rec.Keys)
		if err != nil {
			return nil, err
		}
		payload = p
	case ReplKindState:
		payload = rec.State
	case ReplKindHeartbeat:
		// empty
	default:
		return nil, fmt.Errorf("storage: unknown replication record kind %q", rec.Kind)
	}
	if len(payload) > maxReplPayload {
		return nil, fmt.Errorf("storage: replication payload of %d bytes exceeds the %d limit", len(payload), maxReplPayload)
	}
	var hdr [replHeaderSize]byte
	hdr[0] = rec.Kind
	binary.BigEndian.PutUint64(hdr[1:9], rec.Epoch)
	binary.BigEndian.PutUint64(hdr[9:17], rec.Version)
	binary.BigEndian.PutUint64(hdr[17:25], uint64(rec.UnixNano))
	binary.BigEndian.PutUint32(hdr[25:29], uint32(len(payload)))
	crc := crc32.Checksum(hdr[0:29], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[29:33], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ReadReplRecord reads and decodes one record from r. A clean EOF at a
// record boundary returns io.EOF; EOF inside a record returns
// io.ErrUnexpectedEOF. Any framing or checksum failure is an error —
// the stream cannot be resynchronized past damage, so callers drop the
// connection and reconnect from their applied version.
func ReadReplRecord(r *bufio.Reader) (ReplRecord, error) {
	var hdr [replHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return ReplRecord{}, err // io.EOF here is a clean boundary
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return ReplRecord{}, err
	}
	kind := hdr[0]
	switch kind {
	case ReplKindDelta, ReplKindState, ReplKindHeartbeat:
	default:
		return ReplRecord{}, fmt.Errorf("storage: unknown replication record kind 0x%02x", kind)
	}
	n := binary.BigEndian.Uint32(hdr[25:29])
	if n > maxReplPayload {
		return ReplRecord{}, fmt.Errorf("storage: replication record payload of %d bytes exceeds the %d limit", n, maxReplPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return ReplRecord{}, err
	}
	want := binary.BigEndian.Uint32(hdr[29:33])
	crc := crc32.Checksum(hdr[0:29], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return ReplRecord{}, fmt.Errorf("storage: replication record crc mismatch (stored %08x, computed %08x)", want, crc)
	}
	rec := ReplRecord{
		Kind:     kind,
		Epoch:    binary.BigEndian.Uint64(hdr[1:9]),
		Version:  binary.BigEndian.Uint64(hdr[9:17]),
		UnixNano: int64(binary.BigEndian.Uint64(hdr[17:25])),
	}
	switch kind {
	case ReplKindDelta:
		inner, err := decodeKeyedPayload(payload)
		if err != nil {
			return ReplRecord{}, err
		}
		rec.Script, rec.Keys = inner.Script, inner.Keys
	case ReplKindState:
		rec.State = payload
	}
	return rec, nil
}

// DecodeReplRecords decodes a byte buffer as a sequence of replication
// records (the fuzz-target entry point). A clean EOF at a record
// boundary ends the scan without error.
func DecodeReplRecords(data []byte) ([]ReplRecord, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	var out []ReplRecord
	for {
		rec, err := ReadReplRecord(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// EncodeReplState renders st as the JSON payload of an 'S' record.
func EncodeReplState(st ReplState) ([]byte, error) {
	return json.Marshal(st)
}

// DecodeReplState parses an 'S' record payload.
func DecodeReplState(data []byte) (ReplState, error) {
	var st ReplState
	if err := json.Unmarshal(data, &st); err != nil {
		return ReplState{}, fmt.Errorf("storage: decoding replication state payload: %w", err)
	}
	return st, nil
}

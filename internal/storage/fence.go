package storage

// Fencing-epoch persistence. The fencing epoch is the cluster
// leadership generation: it starts at 1 for a fresh primary and
// increments every time a follower is promoted. It is deliberately
// distinct from the store's checkpoint epoch (Store.Epoch), which
// counts local snapshot rotations and never crosses the wire.
//
// The epoch lives in a tiny sidecar file next to the WAL so a revived
// primary comes back up remembering the epoch it was deposed at — the
// cluster's fencing checks then reject it before it can ship or accept
// a single stale record.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// fenceFileName is the sidecar file holding the fencing epoch as
// decimal ASCII, written atomically (temp + rename + dir fsync).
const fenceFileName = "fence.epoch"

// LoadFenceEpoch reads the persisted fencing epoch from dir. A missing
// file returns (0, nil): the caller decides the default (a fresh
// primary starts at 1).
func LoadFenceEpoch(dir string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, fenceFileName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("storage: reading fence epoch: %w", err)
	}
	e, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("storage: corrupt fence epoch file %q: %w", fenceFileName, err)
	}
	return e, nil
}

// SaveFenceEpoch durably records epoch in dir. The write is atomic:
// a crash leaves either the old epoch or the new one, never garbage.
func SaveFenceEpoch(dir string, epoch uint64) error {
	path := filepath.Join(dir, fenceFileName)
	tmp := path + ".tmp"
	data := []byte(strconv.FormatUint(epoch, 10) + "\n")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: writing fence epoch: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing fence epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing fence epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: closing fence epoch: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: installing fence epoch: %w", err)
	}
	return syncDir(dir)
}

// Package crashtest is a deterministic fault-injection harness for the
// managed store. Each case builds a store, acknowledges a known
// sequence of deltas, simulates a crash by mutating the raw files the
// way an ill-timed power cut would (torn appends, bit flips, lost
// renames, the checkpoint-vs-truncate window), reopens the store, and
// checks the recovered state tuple-and-count against a full
// recomputation of what recovery must preserve.
package crashtest

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"ivm"
)

const program = `
	hop(X,Y)     :- link(X,Z), link(Z,Y).
	tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
`

const baseFacts = `link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`

var preds = []string{"link", "hop", "tri_hop"}

// scripts are the deltas every case acknowledges before its crash.
var scripts = []string{
	"+link(c,f).",
	"-link(a,b).",
	"+link(e,a). +link(f,b).",
	"-link(b,e). +link(a,b).",
}

// walHeader mirrors the store's WAL record header size
// (epoch u64 | seq u64 | len u32 | crc u32).
const walHeader = 24

// Result is the outcome of one crash case.
type Result struct {
	Name     string
	Fault    string // what the injected crash did to the files
	Recovery string // the store's recovery report after reopening
	OK       bool
	Detail   string // failure explanation when !OK
}

type crashCase struct {
	name  string
	fault string
	// prepare builds the store in dir, acknowledges deltas, and injects
	// the fault. It returns the scripts recovery must preserve.
	prepare func(dir string) (expect []string, err error)
	// reopen overrides how the case recovers after the fault (default:
	// plain open). The bit-flip case uses it to assert the default open
	// refuses mid-WAL corruption, then opts into repair.
	reopen func(dir string) (*ivm.Views, ivm.RecoveryInfo, error)
	// check validates the recovery report beyond state equality.
	check func(dir string, info ivm.RecoveryInfo) error
}

func walPath(dir string) string { return filepath.Join(dir, "wal.log") }

func open(dir string, opts ...ivm.Option) (*ivm.Views, ivm.RecoveryInfo, error) {
	return ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		if err := db.Load(baseFacts); err != nil {
			return nil, err
		}
		return db.Materialize(program)
	}, opts...)
}

// seed initializes the store and acknowledges scripts[:n], returning
// the WAL contents at that point.
func seed(dir string, n int) ([]byte, error) {
	v, _, err := open(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range scripts[:n] {
		if _, err := v.ApplyScript(s); err != nil {
			v.Close()
			return nil, err
		}
	}
	wal, err := os.ReadFile(walPath(dir))
	if err != nil {
		v.Close()
		return nil, err
	}
	if err := v.Close(); err != nil {
		return nil, err
	}
	return wal, nil
}

func appendRaw(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func flipByte(path string, off int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("flip offset %d out of range (file is %d bytes)", off, len(data))
	}
	data[off] ^= 0x40
	return os.WriteFile(path, data, 0o644)
}

// groundTruth recomputes the views from scratch: base facts plus the
// expected surviving scripts, under the Recompute strategy so it shares
// no maintenance code with the store-backed instance.
func groundTruth(expect []string) (*ivm.Views, error) {
	db := ivm.NewDatabase()
	if err := db.Load(baseFacts); err != nil {
		return nil, err
	}
	v, err := db.Materialize(program, ivm.WithStrategy(ivm.Recompute))
	if err != nil {
		return nil, err
	}
	for _, s := range expect {
		if _, err := v.ApplyScript(s); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// diffState returns "" when both views hold identical relations —
// every predicate, tuple and count — and a description otherwise.
func diffState(got, want *ivm.Views) string {
	for _, pred := range preds {
		g, w := got.Rows(pred), want.Rows(pred)
		if len(g) != len(w) {
			return fmt.Sprintf("%s: %d rows, want %d (got %v, want %v)", pred, len(g), len(w), g, w)
		}
		for i := range w {
			if !g[i].Tuple.Equal(w[i].Tuple) || g[i].Count != w[i].Count {
				return fmt.Sprintf("%s row %d: %v ×%d, want %v ×%d",
					pred, i, g[i].Tuple, g[i].Count, w[i].Tuple, w[i].Count)
			}
		}
	}
	return ""
}

var cases = []crashCase{
	{
		name:  "torn-header",
		fault: "crash mid-append left 3 bytes of a record header",
		prepare: func(dir string) ([]string, error) {
			if _, err := seed(dir, len(scripts)); err != nil {
				return nil, err
			}
			return scripts, appendRaw(walPath(dir), []byte{7, 7, 7})
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if !info.TornTail || info.Replayed != len(scripts) {
				return fmt.Errorf("want torn tail with %d replayed, got %+v", len(scripts), info)
			}
			return nil
		},
	},
	{
		name:  "torn-payload",
		fault: "crash mid-append left a full header but a truncated payload",
		prepare: func(dir string) ([]string, error) {
			if _, err := seed(dir, len(scripts)); err != nil {
				return nil, err
			}
			// A header promising 64 payload bytes, followed by only 5.
			hdr := make([]byte, walHeader)
			binary.BigEndian.PutUint64(hdr[0:], 1)  // epoch
			binary.BigEndian.PutUint64(hdr[8:], 99) // seq
			binary.BigEndian.PutUint32(hdr[16:], 64)
			return scripts, appendRaw(walPath(dir), append(hdr, 'x', 'y', 'z', 'z', 'y'))
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if !info.TornTail || info.Replayed != len(scripts) {
				return fmt.Errorf("want torn tail with %d replayed, got %+v", len(scripts), info)
			}
			return nil
		},
	},
	{
		name:  "bit-flip",
		fault: "storage corruption flipped a payload bit in the second WAL record",
		prepare: func(dir string) ([]string, error) {
			if _, err := seed(dir, len(scripts)); err != nil {
				return nil, err
			}
			// Record 2 starts after record 1; flip a byte inside its
			// payload. Records after the corrupt one must not be fed to
			// the engine, so only scripts[0] survives.
			off := int64(walHeader + len(scripts[0]) + walHeader + 1)
			return scripts[:1], flipByte(walPath(dir), off)
		},
		reopen: func(dir string) (*ivm.Views, ivm.RecoveryInfo, error) {
			// Acknowledged records sit behind the corruption, so the
			// default open must refuse rather than silently discard them.
			if v, _, err := open(dir); err == nil {
				v.Close()
				return nil, ivm.RecoveryInfo{}, fmt.Errorf("recovery must refuse mid-WAL corruption without the repair opt-in")
			}
			return open(dir, ivm.WithWALRepair())
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.CorruptRecords != 1 || info.Replayed != 1 {
				return fmt.Errorf("want 1 corrupt record after 1 replayed, got %+v", info)
			}
			return nil
		},
	},
	{
		name:  "partial-rename",
		fault: "crash mid-checkpoint left a half-written snapshot temp file",
		prepare: func(dir string) ([]string, error) {
			if _, err := seed(dir, len(scripts)); err != nil {
				return nil, err
			}
			garbage := []byte("half a gob stream")
			return scripts, os.WriteFile(filepath.Join(dir, "snapshot-2.gob.tmp"), garbage, 0o644)
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.Replayed != len(scripts) || info.BadSnapshots != 0 {
				return fmt.Errorf("temp file must be ignored, got %+v", info)
			}
			if _, err := os.Stat(filepath.Join(dir, "snapshot-2.gob.tmp")); !os.IsNotExist(err) {
				return fmt.Errorf("recovery must remove the stale temp file")
			}
			return nil
		},
	},
	{
		name:  "checkpoint-truncate-window",
		fault: "crash after the checkpoint rename but before the WAL truncate",
		prepare: func(dir string) ([]string, error) {
			wal, err := seed(dir, len(scripts))
			if err != nil {
				return nil, err
			}
			v, _, err := open(dir)
			if err != nil {
				return nil, err
			}
			if err := v.Sync(); err != nil { // checkpoint: scripts now in snapshot
				v.Close()
				return nil, err
			}
			if err := v.Close(); err != nil {
				return nil, err
			}
			// Resurrect the pre-checkpoint WAL: exactly what the disk
			// holds if the truncate never hit the platter.
			return scripts, os.WriteFile(walPath(dir), wal, 0o644)
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.SkippedStale != len(scripts) || info.Replayed != 0 {
				return fmt.Errorf("stale records must be skipped, not double-applied: %+v", info)
			}
			return nil
		},
	},
	{
		name:  "lost-snapshot-rename",
		fault: "crash where the checkpoint rename never became durable",
		prepare: func(dir string) ([]string, error) {
			wal, err := seed(dir, len(scripts))
			if err != nil {
				return nil, err
			}
			v, _, err := open(dir)
			if err != nil {
				return nil, err
			}
			if err := v.Sync(); err != nil {
				v.Close()
				return nil, err
			}
			if err := v.Close(); err != nil {
				return nil, err
			}
			// Without the directory fsync, the rename and the truncate
			// can both vanish: drop snapshot-2 and restore the old WAL.
			if err := os.Remove(filepath.Join(dir, "snapshot-2.gob")); err != nil {
				return nil, err
			}
			return scripts, os.WriteFile(walPath(dir), wal, 0o644)
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.Epoch != 1 || info.Replayed != len(scripts) {
				return fmt.Errorf("want fallback to epoch 1 replaying %d, got %+v", len(scripts), info)
			}
			return nil
		},
	},
	{
		name:  "snapshot-bit-flip",
		fault: "storage corruption inside the newest snapshot file",
		prepare: func(dir string) ([]string, error) {
			wal, err := seed(dir, len(scripts))
			if err != nil {
				return nil, err
			}
			v, _, err := open(dir)
			if err != nil {
				return nil, err
			}
			if err := v.Sync(); err != nil {
				v.Close()
				return nil, err
			}
			if err := v.Close(); err != nil {
				return nil, err
			}
			if err := flipByte(filepath.Join(dir, "snapshot-2.gob"), 40); err != nil {
				return nil, err
			}
			// The old WAL still holds every delta for the epoch-1
			// snapshot recovery falls back to.
			return scripts, os.WriteFile(walPath(dir), wal, 0o644)
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.BadSnapshots != 1 || info.Epoch != 1 || info.Replayed != len(scripts) {
				return fmt.Errorf("want fallback past 1 bad snapshot, got %+v", info)
			}
			return nil
		},
	},
}

func init() {
	cases = append(cases, crashCase{
		name:  "idempotent-retry-after-crash",
		fault: "crash between commit and ack; the client retries its idempotency key after recovery",
		prepare: func(dir string) ([]string, error) {
			v, _, err := open(dir)
			if err != nil {
				return nil, err
			}
			for i, s := range scripts {
				if _, _, err := v.ApplyScriptIdempotent(fmt.Sprintf("crash-key-%d", i), s); err != nil {
					v.Close()
					return nil, err
				}
			}
			// Close the WAL without a checkpoint: recovery must replay
			// every keyed record and re-seed the dedup window from them.
			return scripts, v.Close()
		},
		reopen: func(dir string) (*ivm.Views, ivm.RecoveryInfo, error) {
			v, info, err := open(dir)
			if err != nil {
				return nil, info, err
			}
			// The retry of an acked-but-unacknowledged apply. Its script
			// ("-link(a,b).") would SUCCEED if re-applied — link(a,b) was
			// re-added by a later script — so a dedup failure here is not
			// an error but silent state corruption, which diffState
			// catches; the deduped flag is asserted as well.
			cs, deduped, err := v.ApplyScriptIdempotent("crash-key-1", scripts[1])
			if err != nil {
				v.Close()
				return nil, info, fmt.Errorf("post-recovery retry: %w", err)
			}
			if !deduped {
				v.Close()
				return nil, info, fmt.Errorf("post-recovery retry was re-applied, not deduped")
			}
			if cs.Version() == 0 {
				v.Close()
				return nil, info, fmt.Errorf("deduped retry must carry the replayed committed version")
			}
			return v, info, nil
		},
		check: func(dir string, info ivm.RecoveryInfo) error {
			if info.Replayed != len(scripts) {
				return fmt.Errorf("want %d keyed records replayed, got %+v", len(scripts), info)
			}
			return nil
		},
	})
}

// Run executes every crash case in its own temp directory.
func Run() []Result {
	results := make([]Result, 0, len(cases))
	for _, c := range cases {
		results = append(results, runCase(c))
	}
	return results
}

func runCase(c crashCase) (res Result) {
	res = Result{Name: c.name, Fault: c.fault}
	dir, err := os.MkdirTemp("", "ivm-crash-"+c.name+"-*")
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	defer os.RemoveAll(dir)

	expect, err := c.prepare(dir)
	if err != nil {
		res.Detail = "prepare: " + err.Error()
		return res
	}
	reopen := c.reopen
	if reopen == nil {
		reopen = func(dir string) (*ivm.Views, ivm.RecoveryInfo, error) { return open(dir) }
	}
	v, info, err := reopen(dir)
	if err != nil {
		res.Detail = "recovery: " + err.Error()
		return res
	}
	defer v.Close()
	res.Recovery = info.String()
	if info.Initialized {
		res.Detail = "recovery re-initialized instead of loading a snapshot"
		return res
	}
	want, err := groundTruth(expect)
	if err != nil {
		res.Detail = "ground truth: " + err.Error()
		return res
	}
	if d := diffState(v, want); d != "" {
		res.Detail = "state diverged from recomputation: " + d
		return res
	}
	if c.check != nil {
		if err := c.check(dir, info); err != nil {
			res.Detail = err.Error()
			return res
		}
	}
	res.OK = true
	return res
}

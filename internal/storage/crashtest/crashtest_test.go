package crashtest

import "testing"

func TestCrashMatrix(t *testing.T) {
	for _, r := range Run() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			if !r.OK {
				t.Fatalf("%s\nfault:    %s\nrecovery: %s", r.Detail, r.Fault, r.Recovery)
			}
			t.Logf("fault: %s; recovery: %s", r.Fault, r.Recovery)
		})
	}
}

package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ivm/internal/eval"
	"ivm/internal/relation"
	"ivm/internal/value"
)

func sampleDB() *eval.DB {
	db := eval.NewDB()
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	link.Add(value.T("b", "c"), 3)
	db.Put("link", link)
	hop := relation.New(3)
	hop.Add(value.T("a", 2.5, int64(7)), 2)
	db.Put("hop", hop)
	db.Put("empty", relation.New(1))
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := Save(&buf, db, "hop(X,Y) :- link(X,Z), link(Z,Y).", []string{"aux_1", "aux_2"}); err != nil {
		t.Fatal(err)
	}
	got, prog, hidden, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if prog != "hop(X,Y) :- link(X,Z), link(Z,Y)." {
		t.Fatalf("program: %q", prog)
	}
	if len(hidden) != 2 || hidden[0] != "aux_1" || hidden[1] != "aux_2" {
		t.Fatalf("hidden: %v", hidden)
	}
	for _, pred := range []string{"link", "hop"} {
		if !relation.Equal(db.Get(pred), got.Get(pred)) {
			t.Fatalf("%s: %v vs %v", pred, db.Get(pred), got.Get(pred))
		}
	}
	if got.Get("empty") == nil || got.Get("empty").Len() != 0 {
		t.Fatal("empty relation must survive")
	}
}

func TestSnapshotFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	if err := SaveFile(path, sampleDB(), "p.", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file must be renamed away")
	}
	db, prog, hidden, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if prog != "p." || db.Get("link").Count(value.T("b", "c")) != 3 {
		t.Fatal("file round trip")
	}
	if len(hidden) != 0 {
		t.Fatalf("hidden: %v", hidden)
	}
}

func TestSnapshotChecksumFooter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gob")
	if err := SaveFile(path, sampleDB(), "p.", nil); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(path); err != nil {
		t.Fatalf("fresh snapshot must verify: %v", err)
	}
	// In-place corruption that gob decoding might survive must still be
	// caught by the whole-file checksum.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(path); err == nil {
		t.Fatal("bit-flipped snapshot must fail verification")
	}
	// A legacy snapshot (no footer) passes verification; decoding is its
	// only integrity check.
	var buf bytes.Buffer
	if err := Save(&buf, sampleDB(), "p.", nil); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.gob")
	if err := os.WriteFile(legacy, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifySnapshotFile(legacy); err != nil {
		t.Fatalf("legacy snapshot must pass: %v", err)
	}
	if _, _, _, err := LoadFile(legacy); err != nil {
		t.Fatalf("legacy snapshot must load: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestLoadAcceptsVersion1(t *testing.T) {
	// Version-1 snapshots predate the hidden-predicate set; they must
	// keep loading, with an empty hidden list.
	var buf bytes.Buffer
	snap := snapshot{Version: 1, Program: "p(X) :- q(X).", Relations: map[string][]row{
		"q": {{Tuple: []scalar{{Kind: 0, I: 7}}, Count: 1}},
	}}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	db, prog, hidden, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if prog != "p(X) :- q(X)." || len(hidden) != 0 {
		t.Fatalf("prog=%q hidden=%v", prog, hidden)
	}
	if db.Get("q").Count(value.T(int64(7))) != 1 {
		t.Fatal("version-1 relations must load")
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	snap := snapshot{Version: snapshotVersion + 1, Program: "p."}
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Load(&buf); err == nil {
		t.Fatal("future snapshot version must be rejected")
	}
}

func TestLogAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	scripts := []string{"+link(a,b).", "-link(a,b).", "+link(x,y). +link(y,z)."}
	for _, s := range scripts {
		if err := l.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(s string) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != scripts[0] || got[2] != scripts[2] {
		t.Fatalf("replay: %v", got)
	}
}

func TestLogIgnoresTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(a)."); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Simulate a crash mid-append: a header promising more bytes than
	// exist.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 0, 200, 'x', 'y'})
	f.Close()

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "+p(a)." {
		t.Fatalf("replay with torn tail: %v", got)
	}
}

func TestReplayBoundsLengthHeader(t *testing.T) {
	// A garbage header claiming ~4 GiB must not allocate 4 GiB: the
	// length is bounded by the bytes actually present, and the tail is
	// treated as torn.
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(a)."); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0xff, 0xff, 0xf0, 1, 2, 3, 4, 'j', 'u', 'n', 'k'})
	f.Close()

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "+p(a)." {
		t.Fatalf("replay: %v", got)
	}
}

func TestReplayFailsLoudlyOnMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(a)."); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(b)."); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload bit of the FIRST record: a later record exists, so
	// this cannot be a torn tail and replay must fail loudly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[logHeaderSize] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	err = l2.Replay(func(string) error { return nil })
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptRecordError, got %v", err)
	}
}

func TestReplayDropsCorruptFinalRecord(t *testing.T) {
	// A checksum failure on the very last record is indistinguishable
	// from a torn append; it is dropped without error.
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(a)."); err != nil {
		t.Fatal(err)
	}
	if err := l.Append("+p(b)."); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	if err := l2.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "+p(a)." {
		t.Fatalf("replay: %v", got)
	}
}

func TestReplayThenAppendContinues(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "delta.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append("+a(1)."); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// O_APPEND writes still go to the end after a replay seek.
	if err := l.Append("+b(2)."); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := l.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replay: %v", got)
	}
}

// legacyLogBytes renders records in the pre-checksum `[len u32][payload]`
// format the old Append wrote, for migration tests.
func legacyLogBytes(scripts ...string) []byte {
	var buf []byte
	for _, s := range scripts {
		var hdr [legacyLogHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(s)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, s...)
	}
	return buf
}

func TestReplayMigratesLegacyFormat(t *testing.T) {
	// Logs written before the checksummed record format must still
	// replay in full — a single-record legacy log is the trap case: read
	// as the new format its header overshoots the file, which looks like
	// a torn tail and used to migrate zero deltas without any error.
	for name, scripts := range map[string][]string{
		"single record": {"+link(a,b)."},
		"multi record":  {"+link(a,b).", "-link(a,b).", "+link(x,y). +link(y,z)."},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "delta.log")
			if err := os.WriteFile(path, legacyLogBytes(scripts...), 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := OpenLog(path)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			var got []string
			if err := l.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(scripts) {
				t.Fatalf("migrated %d of %d records: %v", len(got), len(scripts), got)
			}
			for i := range scripts {
				if got[i] != scripts[i] {
					t.Fatalf("record %d: %q, want %q", i, got[i], scripts[i])
				}
			}
		})
	}
}

func TestReplayLegacyFormatTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.log")
	data := legacyLogBytes("+p(a).", "+p(b).")
	data = append(data, 0, 0, 0, 50, 'x') // crashed legacy append
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var got []string
	if err := l.Replay(func(s string) error { got = append(got, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "+p(a)." || got[1] != "+p(b)." {
		t.Fatalf("replay: %v", got)
	}
}

func TestReplayEmptyLog(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "delta.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Replay(func(string) error { t.Fatal("no records expected"); return nil }); err != nil {
		t.Fatal(err)
	}
}

package storage

// Fuzz target for the WAL record decoder. Recovery hands scanLog raw
// file bytes that may have been torn by a crash or corrupted in place,
// so the decoder must never panic, never over-allocate past the file
// size, and must stay stable under re-encoding: whatever records it
// extracts, re-encoding them in the checksummed format and scanning
// again must yield the very same records.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// encodeRecords renders scripts in the current checksummed WAL layout,
// exactly as Log.Append writes them.
func encodeRecords(scripts []string) []byte {
	var buf bytes.Buffer
	var hdr [logHeaderSize]byte
	for _, s := range scripts {
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(s)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum([]byte(s), castagnoli))
		buf.Write(hdr[:])
		buf.WriteString(s)
	}
	return buf.Bytes()
}

func FuzzScanLog(f *testing.F) {
	// Well-formed logs in both layouts, torn tails, and in-place damage.
	valid := encodeRecords([]string{"+link(a,b).", "-link(a,b) * 2."})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn final record
	f.Add(valid[:5])            // torn first header
	corrupt := append([]byte(nil), valid...)
	corrupt[logHeaderSize] ^= 0xff // flip a payload byte of record 1
	f.Add(corrupt)
	legacy := []byte{0, 0, 0, 5, '+', 'p', '(', 'a', ')'}
	f.Add(legacy)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // absurd length header
	f.Fuzz(func(t *testing.T, data []byte) {
		scripts, err := scanLog(data)
		if err != nil {
			// Mid-file corruption must be reported as the typed error so
			// recovery can distinguish it from a torn tail.
			var ce *CorruptRecordError
			if !errors.As(err, &ce) {
				t.Fatalf("scanLog error is not a *CorruptRecordError: %v", err)
			}
			return
		}
		// Decode/encode stability: the extracted records survive a
		// round trip through the canonical encoding.
		again, err := scanLog(encodeRecords(scripts))
		if err != nil {
			t.Fatalf("re-scan of re-encoded records failed: %v", err)
		}
		if len(again) != len(scripts) {
			t.Fatalf("re-scan yields %d records, want %d", len(again), len(scripts))
		}
		for i := range again {
			if again[i] != scripts[i] {
				t.Fatalf("record %d changed across re-encode: %q vs %q", i, scripts[i], again[i])
			}
		}
	})
}

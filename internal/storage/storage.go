// Package storage persists databases (relations with derivation counts)
// and view programs: gob snapshots for full state, and an append-only,
// length-prefixed delta log that can be replayed on top of a snapshot —
// the usual checkpoint + log pairing.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"unicode/utf8"

	"ivm/internal/eval"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// castagnoli is the CRC32C table shared by the delta log and the WAL.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Platforms whose directory handles reject Sync (some network
// filesystems) report a benign error which callers may ignore; on a
// normal POSIX filesystem the sync is required for durability of the
// rename itself.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// scalar is the gob-encodable image of a value.Value.
type scalar struct {
	Kind uint8
	I    int64
	F    float64
	S    string
}

func toScalar(v value.Value) scalar {
	switch v.Kind() {
	case value.Int:
		return scalar{Kind: 0, I: v.Int()}
	case value.Float:
		return scalar{Kind: 1, F: v.Float()}
	default:
		return scalar{Kind: 2, S: v.Str()}
	}
}

func (s scalar) value() (value.Value, error) {
	switch s.Kind {
	case 0:
		return value.NewInt(s.I), nil
	case 1:
		return value.NewFloat(s.F), nil
	case 2:
		return value.NewString(s.S), nil
	default:
		return value.Value{}, fmt.Errorf("storage: unknown scalar kind %d", s.Kind)
	}
}

// row is the gob-encodable image of one counted tuple.
type row struct {
	Tuple []scalar
	Count int64
}

// snapshot is the on-disk image of a database plus its view program.
type snapshot struct {
	Version   int
	Program   string
	Relations map[string][]row
	// Hidden lists internal auxiliary predicates (version 2+) that the
	// front end filters out of user-facing change sets — e.g. the helper
	// predicates SQL GROUP BY translation generates. Version-1 snapshots
	// decode with an empty list (gob leaves absent fields zero).
	Hidden []string
	// BaseVersion (version 3+) is the published snapshot version the
	// saved state corresponds to, so a restarted process — or a replica
	// bootstrapping from a checkpoint — resumes the version counter
	// where the writer left it. Older snapshots decode as 0.
	BaseVersion uint64
}

const snapshotVersion = 3

// Save is SaveAt without a base-version stamp.
func Save(w io.Writer, db *eval.DB, program string, hidden []string) error {
	return SaveAt(w, db, program, hidden, 0)
}

// SaveAt writes a gob snapshot of db (every relation, with counts), the
// program text, the hidden-predicate set, and the base version to w.
func SaveAt(w io.Writer, db *eval.DB, program string, hidden []string, baseVersion uint64) error {
	snap := snapshot{
		Version:     snapshotVersion,
		Program:     program,
		Relations:   make(map[string][]row),
		Hidden:      append([]string(nil), hidden...),
		BaseVersion: baseVersion,
	}
	for _, pred := range db.Preds() {
		rel := db.Get(pred)
		rows := make([]row, 0, rel.Len())
		for _, r := range rel.SortedRows() {
			t := make([]scalar, len(r.Tuple))
			for i, v := range r.Tuple {
				t[i] = toScalar(v)
			}
			rows = append(rows, row{Tuple: t, Count: r.Count})
		}
		snap.Relations[pred] = rows
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a snapshot, returning the database, the program text, and
// the hidden-predicate set. Every snapshot version from 1 (no hidden
// set) up is accepted.
func Load(r io.Reader) (*eval.DB, string, []string, error) {
	db, program, hidden, _, err := LoadAt(r)
	return db, program, hidden, err
}

// LoadAt is Load plus the base version the snapshot was stamped with
// (0 for snapshots written before version stamping).
func LoadAt(r io.Reader) (*eval.DB, string, []string, uint64, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, "", nil, 0, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, "", nil, 0, fmt.Errorf("storage: unsupported snapshot version %d", snap.Version)
	}
	db := eval.NewDB()
	for pred, rows := range snap.Relations {
		var rel *relation.Relation
		for _, rw := range rows {
			t := make(value.Tuple, len(rw.Tuple))
			for i, s := range rw.Tuple {
				v, err := s.value()
				if err != nil {
					return nil, "", nil, 0, err
				}
				t[i] = v
			}
			if rel == nil {
				rel = relation.New(len(t))
			}
			rel.Add(t, rw.Count)
		}
		if rel == nil {
			rel = relation.New(-1)
		}
		db.Put(pred, rel)
	}
	return db, snap.Program, snap.Hidden, snap.BaseVersion, nil
}

// snapFooterMagic marks a snapshot file carrying a whole-file CRC32C
// footer (`magic | crc32c(body)`). The footer sits after the gob value,
// where decoders never look, so snapshots stay readable by older code
// and older snapshots (no footer) stay readable by newer code.
var snapFooterMagic = [4]byte{'I', 'V', 'S', '1'}

const snapFooterSize = 8

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// VerifySnapshotFile checks the whole-file checksum footer written by
// SaveFile. Gob decoding alone misses in-place corruption that still
// happens to parse — a flipped bit in a count, say. Legacy snapshots
// without a footer pass; decoding is their only integrity check.
func VerifySnapshotFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) < snapFooterSize || !bytes.Equal(data[len(data)-snapFooterSize:len(data)-4], snapFooterMagic[:]) {
		return nil
	}
	body := data[:len(data)-snapFooterSize]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return fmt.Errorf("storage: snapshot %s checksum mismatch (%08x != %08x)", path, got, want)
	}
	return nil
}

// SaveFile writes a snapshot to path, atomically and durably: the temp
// file is fsynced before the rename and the parent directory is fsynced
// after it, so a crash at any point leaves either the old snapshot or
// the complete new one — never a missing or empty file. A checksum
// footer covers the whole body so in-place corruption is detected at
// load time.
func SaveFile(path string, db *eval.DB, program string, hidden []string) error {
	return SaveFileAt(path, db, program, hidden, 0)
}

// SaveFileAt is SaveFile with a base-version stamp (see SaveAt).
func SaveFileAt(path string, db *eval.DB, program string, hidden []string, baseVersion uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriter(f)
	cw := &crcWriter{w: bw}
	if err := SaveAt(cw, db, program, hidden, baseVersion); err != nil {
		return fail(err)
	}
	var footer [snapFooterSize]byte
	copy(footer[:4], snapFooterMagic[:])
	binary.BigEndian.PutUint32(footer[4:], cw.crc)
	if _, err := bw.Write(footer[:]); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*eval.DB, string, []string, error) {
	db, program, hidden, _, err := LoadFileAt(path)
	return db, program, hidden, err
}

// LoadFileAt is LoadFile plus the snapshot's base version (see LoadAt).
func LoadFileAt(path string) (*eval.DB, string, []string, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, 0, err
	}
	defer f.Close()
	return LoadAt(bufio.NewReader(f))
}

// Log is an append-only log of delta scripts (the textual +fact/-fact
// form). Each record is `[len u32][crc32c u32][payload]`; the length
// lets replay detect partially written tails, the checksum lets it
// reject corrupt records instead of feeding garbage to the parser.
// Replay also recognizes the legacy pre-checksum record format
// (`[len u32][payload]`) so logs written before the format change
// still migrate — Append always writes the current format, so a legacy
// log must be replayed and truncated (as the cmd/ivm migration does)
// before new records are appended to it.
type Log struct {
	f *os.File
}

// logHeaderSize is the per-record header: big-endian length + CRC32C.
// legacyLogHeaderSize is the pre-checksum header: length only.
const (
	logHeaderSize       = 8
	legacyLogHeaderSize = 4
)

// OpenLog opens (creating if needed) a delta log for appending.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f}, nil
}

// Append durably appends one delta script: a single write of
// header+payload followed by fsync.
func (l *Log) Append(script string) error {
	rec := make([]byte, logHeaderSize+len(script))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(script)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum([]byte(script), castagnoli))
	copy(rec[logHeaderSize:], script)
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	return l.f.Sync()
}

// CorruptRecordError reports a record that is damaged in place: its
// checksum fails (or its length header is absurd) even though the log
// continues past it, so the damage cannot be a crash-truncated tail.
type CorruptRecordError struct {
	Offset int64
	Reason string
}

func (e *CorruptRecordError) Error() string {
	return fmt.Sprintf("storage: corrupt log record at offset %d: %s", e.Offset, e.Reason)
}

// Replay invokes fn for every complete record from the start of the log.
// A truncated or checksum-failing final record terminates replay without
// error (a crash mid-append; the record was never acknowledged). A bad
// record with further data behind it is in-place corruption and fails
// loudly with a *CorruptRecordError, delivering no records. Record
// lengths are bounded by the bytes actually remaining in the file, so a
// garbage header cannot force a multi-gigabyte allocation.
//
// The record format is detected: when the current checksummed layout
// yields no valid record from a non-empty file (or fails mid-file), the
// legacy pre-checksum `[len u32][payload]` layout is tried, so logs
// written before the format change still replay for migration.
func (l *Log) Replay(fn func(script string) error) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(bufio.NewReader(l.f))
	if err != nil {
		return err
	}
	scripts, err := scanLog(data)
	if err != nil {
		return err
	}
	for _, s := range scripts {
		if err := fn(s); err != nil {
			return err
		}
	}
	return nil
}

// scanLog parses raw log bytes, detecting the record format. The
// checksummed format is authoritative: one CRC-valid record proves it (a
// legacy record passing the check by accident is a 2^-32 event). Only
// when it yields nothing from a non-empty file — a single-record legacy
// log reads as one overshooting header — or trips over mid-file
// corruption — misaligned legacy records fail their CRCs — is the
// legacy layout tried; it is accepted when records chain through the
// file (modulo a torn tail) and every payload is text, which garbage
// reinterpretations of checksummed records essentially never are (the
// CRC bytes land inside the payload).
func scanLog(data []byte) ([]string, error) {
	scripts, err := scanChecksummedLog(data)
	if len(scripts) > 0 {
		return scripts, err
	}
	if len(data) > 0 {
		if legacy, ok := scanLegacyLog(data); ok {
			return legacy, nil
		}
	}
	return scripts, err
}

func scanChecksummedLog(data []byte) ([]string, error) {
	var scripts []string
	size := int64(len(data))
	offset := int64(0)
	for offset < size {
		if size-offset < logHeaderSize {
			return scripts, nil // torn header: ignore tail
		}
		n := int64(binary.BigEndian.Uint32(data[offset:]))
		want := binary.BigEndian.Uint32(data[offset+4:])
		if n > size-offset-logHeaderSize {
			// The header promises more bytes than the file holds. If the
			// record would end exactly at a torn tail this is a crashed
			// append; a length that overshoots the file with no way to
			// resync is indistinguishable, so both end the scan here.
			return scripts, nil
		}
		payload := data[offset+logHeaderSize : offset+logHeaderSize+n]
		end := offset + logHeaderSize + n
		if got := crc32.Checksum(payload, castagnoli); got != want {
			if end == size {
				return scripts, nil // torn or corrupted final record: never acknowledged
			}
			return scripts, &CorruptRecordError{Offset: offset, Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, got)}
		}
		scripts = append(scripts, string(payload))
		offset = end
	}
	return scripts, nil
}

// scanLegacyLog parses the pre-checksum `[len u32][payload]` layout,
// accepting it only when at least one complete record chains cleanly
// (a final record overshooting EOF is a torn tail and is dropped) and
// every payload is valid UTF-8 — legacy delta scripts are text.
func scanLegacyLog(data []byte) ([]string, bool) {
	var scripts []string
	size := int64(len(data))
	offset := int64(0)
	for offset < size {
		if size-offset < legacyLogHeaderSize {
			break // torn header
		}
		n := int64(binary.BigEndian.Uint32(data[offset:]))
		if n > size-offset-legacyLogHeaderSize {
			break // torn tail
		}
		payload := data[offset+legacyLogHeaderSize : offset+legacyLogHeaderSize+n]
		if !utf8.Valid(payload) {
			return nil, false
		}
		scripts = append(scripts, string(payload))
		offset += legacyLogHeaderSize + n
	}
	return scripts, len(scripts) > 0
}

// Truncate discards all logged records — called after a snapshot is
// taken, since the snapshot supersedes the log (checkpointing). The
// truncation is fsynced so it cannot reorder after later writes.
func (l *Log) Truncate() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

// Package storage persists databases (relations with derivation counts)
// and view programs: gob snapshots for full state, and an append-only,
// length-prefixed delta log that can be replayed on top of a snapshot —
// the usual checkpoint + log pairing.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ivm/internal/eval"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// scalar is the gob-encodable image of a value.Value.
type scalar struct {
	Kind uint8
	I    int64
	F    float64
	S    string
}

func toScalar(v value.Value) scalar {
	switch v.Kind() {
	case value.Int:
		return scalar{Kind: 0, I: v.Int()}
	case value.Float:
		return scalar{Kind: 1, F: v.Float()}
	default:
		return scalar{Kind: 2, S: v.Str()}
	}
}

func (s scalar) value() (value.Value, error) {
	switch s.Kind {
	case 0:
		return value.NewInt(s.I), nil
	case 1:
		return value.NewFloat(s.F), nil
	case 2:
		return value.NewString(s.S), nil
	default:
		return value.Value{}, fmt.Errorf("storage: unknown scalar kind %d", s.Kind)
	}
}

// row is the gob-encodable image of one counted tuple.
type row struct {
	Tuple []scalar
	Count int64
}

// snapshot is the on-disk image of a database plus its view program.
type snapshot struct {
	Version   int
	Program   string
	Relations map[string][]row
	// Hidden lists internal auxiliary predicates (version 2+) that the
	// front end filters out of user-facing change sets — e.g. the helper
	// predicates SQL GROUP BY translation generates. Version-1 snapshots
	// decode with an empty list (gob leaves absent fields zero).
	Hidden []string
}

const snapshotVersion = 2

// Save writes a gob snapshot of db (every relation, with counts), the
// program text, and the hidden-predicate set to w.
func Save(w io.Writer, db *eval.DB, program string, hidden []string) error {
	snap := snapshot{
		Version:   snapshotVersion,
		Program:   program,
		Relations: make(map[string][]row),
		Hidden:    append([]string(nil), hidden...),
	}
	for _, pred := range db.Preds() {
		rel := db.Get(pred)
		rows := make([]row, 0, rel.Len())
		for _, r := range rel.SortedRows() {
			t := make([]scalar, len(r.Tuple))
			for i, v := range r.Tuple {
				t[i] = toScalar(v)
			}
			rows = append(rows, row{Tuple: t, Count: r.Count})
		}
		snap.Relations[pred] = rows
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a snapshot, returning the database, the program text, and
// the hidden-predicate set. Both version-1 (no hidden set) and version-2
// snapshots are accepted.
func Load(r io.Reader) (*eval.DB, string, []string, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, "", nil, fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, "", nil, fmt.Errorf("storage: unsupported snapshot version %d", snap.Version)
	}
	db := eval.NewDB()
	for pred, rows := range snap.Relations {
		var rel *relation.Relation
		for _, rw := range rows {
			t := make(value.Tuple, len(rw.Tuple))
			for i, s := range rw.Tuple {
				v, err := s.value()
				if err != nil {
					return nil, "", nil, err
				}
				t[i] = v
			}
			if rel == nil {
				rel = relation.New(len(t))
			}
			rel.Add(t, rw.Count)
		}
		if rel == nil {
			rel = relation.New(-1)
		}
		db.Put(pred, rel)
	}
	return db, snap.Program, snap.Hidden, nil
}

// SaveFile writes a snapshot to path (atomically via a temp file + rename).
func SaveFile(path string, db *eval.DB, program string, hidden []string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := Save(bw, db, program, hidden); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (*eval.DB, string, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

// Log is an append-only log of delta scripts (the textual +fact/-fact
// form). Records are length-prefixed so partially written tails are
// detected and ignored on replay.
type Log struct {
	f *os.File
}

// OpenLog opens (creating if needed) a delta log for appending.
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Log{f: f}, nil
}

// Append durably appends one delta script.
func (l *Log) Append(script string) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(script)))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.f.WriteString(script); err != nil {
		return err
	}
	return l.f.Sync()
}

// Replay invokes fn for every complete record from the start of the log.
// A truncated final record terminates replay without error (it was never
// acknowledged).
func (l *Log) Replay(fn func(script string) error) error {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(l.f)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return nil // truncated header: ignore tail
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil // truncated record: ignore tail
		}
		if err := fn(string(buf)); err != nil {
			return err
		}
	}
}

// Truncate discards all logged records — called after a snapshot is
// taken, since the snapshot supersedes the log (checkpointing).
func (l *Log) Truncate() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	_, err := l.f.Seek(0, io.SeekStart)
	return err
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }

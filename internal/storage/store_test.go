package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ivm/internal/metrics"
	"ivm/internal/value"
)

func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func walPath(dir string) string { return filepath.Join(dir, walFileName) }

func TestStoreEmptyOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	defer s.Close()
	if _, _, _, ok := s.Snapshot(); ok {
		t.Fatal("empty store must have no snapshot")
	}
	if len(s.Scripts()) != 0 || s.Epoch() != 0 {
		t.Fatalf("scripts=%v epoch=%d", s.Scripts(), s.Epoch())
	}
}

func TestStoreAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < 5; i++ {
		if err := s.Append(fmt.Sprintf("+p(%d).", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if got := s2.Scripts(); len(got) != 5 || got[0] != "+p(0)." || got[4] != "+p(4)." {
		t.Fatalf("scripts: %v", got)
	}
	info := s2.Recovery()
	if info.SkippedStale != 0 || info.TornTail || info.CorruptRecords != 0 {
		t.Fatalf("info: %v", info)
	}
}

func TestStoreCheckpointSupersedesWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	if err := s.Append("+p(1)."); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(sampleDB(), "prog.", []string{"aux"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("+p(2)."); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	db, prog, hidden, ok := s2.Snapshot()
	if !ok || prog != "prog." || len(hidden) != 1 || hidden[0] != "aux" {
		t.Fatalf("snapshot: ok=%v prog=%q hidden=%v", ok, prog, hidden)
	}
	if db.Get("link").Count(value.T("b", "c")) != 3 {
		t.Fatal("snapshot db contents")
	}
	if got := s2.Scripts(); len(got) != 1 || got[0] != "+p(2)." {
		t.Fatalf("scripts: %v", got)
	}
	if s2.Epoch() != 1 {
		t.Fatalf("epoch: %d", s2.Epoch())
	}
}

func TestStoreSkipsStaleEpochRecords(t *testing.T) {
	// Simulate a crash between the checkpoint rename and the WAL
	// truncate: after Checkpoint, restore the pre-checkpoint WAL bytes.
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < 3; i++ {
		if err := s.Append(fmt.Sprintf("+p(%d).", i)); err != nil {
			t.Fatal(err)
		}
	}
	pre, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(sampleDB(), "prog.", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(walPath(dir), pre, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	info := s2.Recovery()
	if info.SkippedStale != 3 || info.Replayed != 0 {
		t.Fatalf("info: %v", info)
	}
	if len(s2.Scripts()) != 0 {
		t.Fatalf("stale records must not replay: %v", s2.Scripts())
	}
}

func TestStoreTornTail(t *testing.T) {
	for name, tail := range map[string][]byte{
		"torn header":  {1, 2, 3},
		"torn payload": encodeWALRecord(0, 99, []byte("+p(x)."))[:walHeaderSize+3],
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTestStore(t, dir, StoreOptions{})
			if err := s.Append("+p(1)."); err != nil {
				t.Fatal(err)
			}
			s.Close()
			f, err := os.OpenFile(walPath(dir), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(tail)
			f.Close()

			s2 := openTestStore(t, dir, StoreOptions{})
			defer s2.Close()
			info := s2.Recovery()
			if !info.TornTail || info.CorruptRecords != 0 {
				t.Fatalf("%s: info: %v", name, info)
			}
			if got := s2.Scripts(); len(got) != 1 || got[0] != "+p(1)." {
				t.Fatalf("%s: scripts: %v", name, got)
			}
			// The torn tail is truncated away, so appends resume cleanly.
			if err := s2.Append("+p(2)."); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3 := openTestStore(t, dir, StoreOptions{})
			defer s3.Close()
			if got := s3.Scripts(); len(got) != 2 || got[1] != "+p(2)." {
				t.Fatalf("%s: after tail truncation: %v", name, got)
			}
		})
	}
}

func TestStoreBitFlipRefusesWithoutRepairOptIn(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	for i := 0; i < 3; i++ {
		if err := s.Append(fmt.Sprintf("+p(%d).", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the middle record: acknowledged records sit
	// behind the damage.
	recLen := walHeaderSize + len("+p(0).")
	data[recLen+walHeaderSize] ^= 0x01
	if err := os.WriteFile(walPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Default recovery must fail loudly and leave the file untouched.
	_, err = OpenStore(dir, StoreOptions{})
	var ce *CorruptWALError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptWALError, got %v", err)
	}
	if ce.Offset != int64(recLen) {
		t.Fatalf("corrupt offset %d, want %d", ce.Offset, recLen)
	}
	after, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("refusing recovery must not truncate the WAL (%d -> %d bytes)", len(data), len(after))
	}

	// The repair opt-in keeps the valid prefix and discards the rest.
	s2 := openTestStore(t, dir, StoreOptions{RepairCorruptWAL: true})
	defer s2.Close()
	info := s2.Recovery()
	if info.CorruptRecords != 1 {
		t.Fatalf("info: %v", info)
	}
	if got := s2.Scripts(); len(got) != 1 || got[0] != "+p(0)." {
		t.Fatalf("only the valid prefix may replay: %v", got)
	}
	if info.DiscardedBytes == 0 {
		t.Fatal("discarded bytes must be reported")
	}
}

func TestStoreMissingSnapshotForNewerEpochFails(t *testing.T) {
	// WAL records stamped with an epoch newer than every readable
	// snapshot mean the covering snapshot is gone (e.g. its directory
	// entry was never synced); recovery must refuse rather than lose the
	// records truncated at that checkpoint.
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	if err := s.Checkpoint(sampleDB(), "prog.", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("+p(1)."); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, snapName(1))); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenStore(dir, StoreOptions{}); err == nil {
		t.Fatal("recovery must fail when the snapshot covering the WAL epoch is missing")
	} else if !strings.Contains(err.Error(), "not recoverable") {
		t.Fatalf("error: %v", err)
	}
}

func TestStoreFallsBackToPreviousSnapshot(t *testing.T) {
	// A corrupt newest snapshot with a WAL that never reached its epoch:
	// recovery falls back to the previous snapshot and replays.
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	if err := s.Checkpoint(sampleDB(), "v1.", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("+p(1)."); err != nil {
		t.Fatal(err)
	}
	pre, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(sampleDB(), "v2.", nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt snapshot-2 and restore the pre-checkpoint WAL (epoch-1
	// records), as if the second checkpoint never became durable.
	if err := os.WriteFile(filepath.Join(dir, snapName(2)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir), pre, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	info := s2.Recovery()
	if info.Epoch != 1 || info.BadSnapshots != 1 {
		t.Fatalf("info: %v", info)
	}
	if _, prog, _, ok := s2.Snapshot(); !ok || prog != "v1." {
		t.Fatalf("must fall back to snapshot 1 (prog=%q ok=%v)", prog, ok)
	}
	if got := s2.Scripts(); len(got) != 1 || got[0] != "+p(1)." {
		t.Fatalf("scripts: %v", got)
	}
}

func TestStorePartialRenameLeftoverIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	if err := s.Checkpoint(sampleDB(), "prog.", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("+p(1)."); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// A checkpoint that died before its rename leaves only a temp file.
	tmp := filepath.Join(dir, snapName(2)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if s2.Epoch() != 1 || len(s2.Scripts()) != 1 {
		t.Fatalf("epoch=%d scripts=%v", s2.Epoch(), s2.Scripts())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp leftovers must be removed")
	}
}

func TestStorePrunesOldSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Checkpoint(sampleDB(), "prog.", nil); err != nil {
			t.Fatal(err)
		}
	}
	for ep := uint64(1); ep <= 2; ep++ {
		if _, err := os.Stat(filepath.Join(dir, snapName(ep))); !os.IsNotExist(err) {
			t.Fatalf("snapshot %d must be pruned", ep)
		}
	}
	for ep := uint64(3); ep <= 4; ep++ {
		if _, err := os.Stat(filepath.Join(dir, snapName(ep))); err != nil {
			t.Fatalf("snapshot %d must be kept: %v", ep, err)
		}
	}
}

func TestStoreGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{GroupCommit: true})
	reg := metrics.NewRegistry()
	s.AttachMetrics(reg)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append(fmt.Sprintf("+p(%d,%d).", w, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("storage_wal_appends_total"); got != writers*perWriter {
		t.Fatalf("appends counter: %d", got)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	if got := len(s2.Scripts()); got != writers*perWriter {
		t.Fatalf("recovered %d of %d records", got, writers*perWriter)
	}
}

func TestStoreGroupCommitCloseNeverFailsDurableAppends(t *testing.T) {
	// Race Close against concurrent AppendAsync callers: any append that
	// passes the closed check has its record written, so its wait() must
	// report success (the final drain's fsync covers it), and the record
	// must be there on recovery. Before the fix, Close could capture the
	// committer's high-water mark between an append's write and its
	// registration, and a durable record was reported as ErrStoreClosed.
	for round := 0; round < 25; round++ {
		dir := t.TempDir()
		s := openTestStore(t, dir, StoreOptions{GroupCommit: true})
		const writers = 8
		var acked atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				wait, err := s.AppendAsync(fmt.Sprintf("+p(%d).", w))
				if err != nil {
					if err != ErrStoreClosed {
						t.Errorf("append: %v", err)
					}
					return
				}
				if werr := wait(); werr != nil {
					t.Errorf("a written record must not report failure on close: %v", werr)
					return
				}
				acked.Add(1)
			}(w)
		}
		close(start)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()

		s2 := openTestStore(t, dir, StoreOptions{})
		if got := int64(len(s2.Scripts())); got != acked.Load() {
			t.Fatalf("round %d: recovered %d records, acknowledged %d", round, got, acked.Load())
		}
		s2.Close()
	}
}

func TestStoreAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	s.Close()
	if err := s.Append("+p(1)."); err != ErrStoreClosed {
		t.Fatalf("err: %v", err)
	}
	if err := s.Checkpoint(sampleDB(), "p.", nil); err != ErrStoreClosed {
		t.Fatalf("err: %v", err)
	}
}

func TestWALPayloadRoundTrip(t *testing.T) {
	cases := []WALRecord{
		{Script: "+p(1).", Keys: nil},
		{Script: "+p(1).", Keys: []string{"k1"}},
		{Script: "+p(1). -q(2).", Keys: []string{"a", "b", "c"}},
		{Script: "", Keys: []string{"only-keys"}},
		{Script: "+p(1).", Keys: []string{""}},
		{Script: "+p(1).", Keys: []string{strings.Repeat("K", 300)}},
		{Script: "+p(1).", Keys: nil, Version: 1},
		{Script: "+p(1).", Keys: []string{"k1"}, Version: 42},
		{Script: "", Keys: nil, Version: 1<<64 - 1},
	}
	for _, want := range cases {
		payload, err := encodeWALPayload(want.Version, want.Script, want.Keys)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := decodeWALPayload(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Script != want.Script || len(got.Keys) != len(want.Keys) || got.Version != want.Version {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		for i := range want.Keys {
			if got.Keys[i] != want.Keys[i] {
				t.Fatalf("key %d: %q != %q", i, got.Keys[i], want.Keys[i])
			}
		}
	}
	// Keyless, unversioned records must keep the legacy bare-script
	// framing so stores written without either are byte-identical to
	// earlier versions.
	payload, _ := encodeWALPayload(0, "+p(1).", nil)
	if string(payload) != "+p(1)." {
		t.Fatalf("keyless payload not legacy framed: %q", payload)
	}
}

func TestWALPayloadDecodeMalformed(t *testing.T) {
	for name, payload := range map[string][]byte{
		"bare magic":      {walKeyedMagic},
		"wrong tag":       {walKeyedMagic, 'X', 0, 1},
		"truncated count": {walKeyedMagic, 'K', 0},
		"truncated klen":  {walKeyedMagic, 'K', 0, 2, 0, 1, 'a'},
		"truncated key":   {walKeyedMagic, 'K', 0, 1, 0, 9, 'a'},
	} {
		if _, err := decodeWALPayload(payload); err == nil {
			t.Errorf("%s: decode accepted malformed payload %v", name, payload)
		}
	}
}

func TestStoreKeyedRecordsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	appendRec := func(script string, keys ...string) {
		t.Helper()
		wait, err := s.AppendRecordAsync(script, keys)
		if err != nil {
			t.Fatal(err)
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
	}
	appendRec("+p(1).", "key-1")
	appendRec("+p(2).") // keyless, interleaved
	appendRec("+p(3). +p(4).", "key-3a", "key-3b")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, StoreOptions{})
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 3 {
		t.Fatalf("records: %+v", recs)
	}
	if recs[0].Script != "+p(1)." || len(recs[0].Keys) != 1 || recs[0].Keys[0] != "key-1" {
		t.Fatalf("record 0: %+v", recs[0])
	}
	if recs[1].Script != "+p(2)." || len(recs[1].Keys) != 0 {
		t.Fatalf("record 1: %+v", recs[1])
	}
	if recs[2].Script != "+p(3). +p(4)." || len(recs[2].Keys) != 2 || recs[2].Keys[1] != "key-3b" {
		t.Fatalf("record 2: %+v", recs[2])
	}
	// Scripts() must agree with the keyed view for replay call sites
	// that only need the text.
	if sc := s2.Scripts(); len(sc) != 3 || sc[2] != "+p(3). +p(4)." {
		t.Fatalf("scripts: %v", sc)
	}
}

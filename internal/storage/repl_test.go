package storage

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestReplRecordRoundTrip(t *testing.T) {
	state, err := EncodeReplState(ReplState{
		Program:   "p(X) :- q(X).",
		Hidden:    []string{"__aux1"},
		Facts:     "+q(1).\n+q(2) * 3.\n",
		Strategy:  "counting",
		Semantics: "set",
	})
	if err != nil {
		t.Fatalf("EncodeReplState: %v", err)
	}
	records := []ReplRecord{
		{Kind: ReplKindDelta, Epoch: 1, Version: 1, UnixNano: 123, Script: "+q(1)."},
		{Kind: ReplKindDelta, Epoch: 1, Version: 2, UnixNano: 456, Script: "", Keys: []string{"k1", "k2"}},
		{Kind: ReplKindDelta, Epoch: 2, Version: 3, Script: "+q(2). -q(1).", Keys: []string{"a"}},
		{Kind: ReplKindState, Epoch: 3, Version: 4, UnixNano: 789, State: state},
		{Kind: ReplKindHeartbeat, Epoch: 1<<63 + 7, Version: 4, UnixNano: 999},
	}
	var buf []byte
	for _, rec := range records {
		buf, err = AppendReplRecord(buf, rec)
		if err != nil {
			t.Fatalf("AppendReplRecord(%+v): %v", rec, err)
		}
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range records {
		got, err := ReadReplRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Epoch != want.Epoch || got.Version != want.Version || got.UnixNano != want.UnixNano {
			t.Fatalf("record %d header: got %+v want %+v", i, got, want)
		}
		if got.Script != want.Script || strings.Join(got.Keys, ",") != strings.Join(want.Keys, ",") {
			t.Fatalf("record %d body: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.State, want.State) {
			t.Fatalf("record %d state: got %q want %q", i, got.State, want.State)
		}
	}
	if _, err := ReadReplRecord(r); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}

	st, err := DecodeReplState(state)
	if err != nil {
		t.Fatalf("DecodeReplState: %v", err)
	}
	if st.Program != "p(X) :- q(X)." || st.Facts != "+q(1).\n+q(2) * 3.\n" ||
		len(st.Hidden) != 1 || st.Strategy != "counting" || st.Semantics != "set" {
		t.Fatalf("state round trip: %+v", st)
	}
}

func TestReplRecordRejectsDamage(t *testing.T) {
	rec := ReplRecord{Kind: ReplKindDelta, Version: 7, UnixNano: 1, Script: "+p(1).", Keys: []string{"k"}}
	buf, err := AppendReplRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}

	read := func(data []byte) error {
		_, err := ReadReplRecord(bufio.NewReader(bytes.NewReader(data)))
		return err
	}

	// Truncation anywhere inside a record is io.ErrUnexpectedEOF, never
	// a clean EOF and never a panic.
	for cut := 1; cut < len(buf); cut++ {
		if err := read(buf[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
	// A flipped bit anywhere fails the checksum (or the kind check).
	for i := range buf {
		mangled := append([]byte(nil), buf...)
		mangled[i] ^= 0x01
		if err := read(mangled); err == nil {
			t.Fatalf("flip at %d: damage accepted", i)
		}
	}
	// An unknown kind byte is rejected outright.
	if _, err := AppendReplRecord(nil, ReplRecord{Kind: 'Z'}); err == nil {
		t.Fatal("AppendReplRecord accepted unknown kind")
	}
}

func TestReplRecordPayloadBound(t *testing.T) {
	// A header promising more than maxReplPayload is rejected before any
	// allocation.
	buf, err := AppendReplRecord(nil, ReplRecord{Kind: ReplKindState, Version: 1, State: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	buf[25], buf[26], buf[27], buf[28] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadReplRecord(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Fatal("absurd length header accepted")
	}
}

package storage

// Fuzz target for the replication record decoder. Followers hand
// ReadReplRecord raw network bytes, so the decoder must never panic,
// never allocate past the payload bound, and must stay stable under
// re-encoding: whatever records it extracts, re-encoding and decoding
// again must yield the same records. The seed corpus reuses the WAL
// framing-v2 payloads ('D' records wrap them verbatim) plus state and
// heartbeat records, torn tails, and in-place damage.

import (
	"bytes"
	"testing"
)

// encodeReplRecords renders records exactly as the primary streams them.
func encodeReplRecords(t testing.TB, records []ReplRecord) []byte {
	var buf []byte
	var err error
	for _, rec := range records {
		buf, err = AppendReplRecord(buf, rec)
		if err != nil {
			t.Fatalf("AppendReplRecord(%+v): %v", rec, err)
		}
	}
	return buf
}

func FuzzReplRecord(f *testing.F) {
	// Well-formed streams whose 'D' payloads exercise every WAL framing:
	// bare scripts, keyed framing v2, and empty scripts.
	valid := encodeReplRecords(f, []ReplRecord{
		{Kind: ReplKindDelta, Epoch: 1, Version: 1, UnixNano: 111, Script: "+link(a,b)."},
		{Kind: ReplKindDelta, Epoch: 1, Version: 2, UnixNano: 222, Script: "-link(a,b) * 2.", Keys: []string{"k1", "k2"}},
		{Kind: ReplKindDelta, Epoch: 2, Version: 3, Script: "", Keys: []string{"only-keys"}},
		{Kind: ReplKindState, Epoch: 2, Version: 4, State: []byte(`{"program":"p(X) :- q(X).","facts":"+q(1).\n"}`)},
		{Kind: ReplKindHeartbeat, Epoch: 3, Version: 4, UnixNano: 333},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn final record
	f.Add(valid[:replHeaderSize-1])
	corrupt := append([]byte(nil), valid...)
	corrupt[replHeaderSize] ^= 0xff // flip a payload byte of record 1
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, replHeaderSize+4)) // absurd header
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeReplRecords(data)
		if err != nil {
			return // damage detected; nothing else to assert
		}
		// Decode/encode stability: the extracted records survive a round
		// trip through the canonical encoding.
		again, err := DecodeReplRecords(encodeReplRecords(t, records))
		if err != nil {
			t.Fatalf("re-decode of re-encoded records failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(records))
		}
		for i := range records {
			a, b := records[i], again[i]
			if a.Kind != b.Kind || a.Epoch != b.Epoch || a.Version != b.Version || a.UnixNano != b.UnixNano ||
				a.Script != b.Script || len(a.Keys) != len(b.Keys) || !bytes.Equal(a.State, b.State) {
				t.Fatalf("record %d changed in round trip: %+v != %+v", i, a, b)
			}
		}
	})
}

package storage

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFenceEpochPersistence(t *testing.T) {
	dir := t.TempDir()

	// Missing file: zero epoch, no error — the caller picks the default.
	e, err := LoadFenceEpoch(dir)
	if err != nil || e != 0 {
		t.Fatalf("LoadFenceEpoch on empty dir = (%d, %v), want (0, nil)", e, err)
	}

	if err := SaveFenceEpoch(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := SaveFenceEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	if e, err = LoadFenceEpoch(dir); err != nil || e != 7 {
		t.Fatalf("LoadFenceEpoch = (%d, %v), want (7, nil)", e, err)
	}

	// A corrupt file is an error, not a silent zero.
	if err := os.WriteFile(filepath.Join(dir, fenceFileName), []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFenceEpoch(dir); err == nil {
		t.Fatal("corrupt fence file accepted")
	}
}

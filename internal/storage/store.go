package storage

// Store is the managed crash-recovery layer: a directory of
// snapshot-<epoch>.gob checkpoints plus one checksummed, epoch-stamped
// write-ahead log (wal.log). The durability protocol:
//
//   - Append writes {epoch, seq, len, crc32c, payload} in a single
//     buffered write followed by fsync (optionally batched across
//     concurrent appenders — group commit).
//   - Checkpoint writes the snapshot to a temp file, fsyncs it, renames
//     it into place, fsyncs the directory, bumps the epoch, and only
//     then truncates (and fsyncs) the WAL. A crash anywhere in that
//     sequence leaves either the old snapshot + a replayable WAL, or
//     the new snapshot + stale-epoch WAL records that recovery skips —
//     never a double apply.
//   - OpenStore recovers: it loads the newest valid snapshot, then
//     scans the WAL, replaying only records stamped with the snapshot's
//     epoch; stale records are skipped, a torn tail is discarded, and a
//     checksum-failing record stops the scan instead of feeding garbage
//     to the parser.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ivm/internal/eval"
	"ivm/internal/metrics"
)

const (
	walFileName = "wal.log"
	snapPrefix  = "snapshot-"
	snapSuffix  = ".gob"

	// walHeaderSize is the fixed record header: epoch u64, seq u64,
	// len u32, crc32c u32 (all big-endian). The checksum covers the
	// first 20 header bytes plus the payload.
	walHeaderSize = 24
)

// ErrStoreClosed is returned by operations on a closed Store.
var ErrStoreClosed = errors.New("storage: store is closed")

// WALRecord is one logical WAL entry: the delta script plus the
// idempotency keys of the Apply calls it covers (a coalesced batch logs
// one record carrying every caller's key). Keys ride in the record so
// the dedup window survives crash recovery: replay hands them back and
// the engine re-seeds key → result before serving any retry. Version,
// when nonzero, is the snapshot version the record's apply published —
// the durable commit order replication and recovery align on; legacy
// records decode with Version 0.
type WALRecord struct {
	Script  string
	Keys    []string
	Version uint64
}

// walKeyedMagic opens a framed (non-legacy) WAL payload. Delta scripts
// are UTF-8 text and never start with a NUL byte, so legacy payloads
// (the bare script) and framed payloads are self-distinguishing. The
// second byte selects the frame: 'K' carries idempotency keys
// (framing v2), 'V' prefixes a u64 version stamp over a v2 remainder
// (framing v3).
const walKeyedMagic = 0x00

// encodeWALPayload frames a record payload: an optional version stamp
// (`0x00 'V' u64`) around the keyed-or-bare framing-v2 body. Records
// without keys or a version keep the legacy bare-script form, so stores
// that never use either stay byte-identical to what earlier versions
// wrote.
func encodeWALPayload(version uint64, script string, keys []string) ([]byte, error) {
	inner, err := encodeKeyedPayload(script, keys)
	if err != nil {
		return nil, err
	}
	if version == 0 {
		return inner, nil
	}
	out := make([]byte, 0, 10+len(inner))
	out = append(out, walKeyedMagic, 'V')
	out = binary.BigEndian.AppendUint64(out, version)
	return append(out, inner...), nil
}

// encodeKeyedPayload renders the framing-v2 body: keyed or bare script.
func encodeKeyedPayload(script string, keys []string) ([]byte, error) {
	if len(keys) == 0 {
		return []byte(script), nil
	}
	if len(keys) > 0xffff {
		return nil, fmt.Errorf("storage: %d idempotency keys in one record (max %d)", len(keys), 0xffff)
	}
	n := 4 // magic + 'K' + u16 count
	for _, k := range keys {
		if len(k) > 0xffff {
			return nil, fmt.Errorf("storage: idempotency key of %d bytes (max %d)", len(k), 0xffff)
		}
		n += 2 + len(k)
	}
	out := make([]byte, 0, n+len(script))
	out = append(out, walKeyedMagic, 'K')
	out = binary.BigEndian.AppendUint16(out, uint16(len(keys)))
	for _, k := range keys {
		out = binary.BigEndian.AppendUint16(out, uint16(len(k)))
		out = append(out, k...)
	}
	return append(out, script...), nil
}

// decodeWALPayload parses a record payload in any framing (bare, keyed
// v2, version-stamped v3). A framing error on a checksum-valid payload
// means a writer bug, not disk damage, so it is surfaced loudly rather
// than repaired around.
func decodeWALPayload(payload []byte) (WALRecord, error) {
	var version uint64
	if len(payload) >= 10 && payload[0] == walKeyedMagic && payload[1] == 'V' {
		version = binary.BigEndian.Uint64(payload[2:10])
		payload = payload[10:]
	}
	rec, err := decodeKeyedPayload(payload)
	if err != nil {
		return WALRecord{}, err
	}
	rec.Version = version
	return rec, nil
}

// decodeKeyedPayload parses a framing-v2 body (keyed or bare script).
func decodeKeyedPayload(payload []byte) (WALRecord, error) {
	if len(payload) == 0 || payload[0] != walKeyedMagic {
		return WALRecord{Script: string(payload)}, nil
	}
	if len(payload) < 4 || payload[1] != 'K' {
		return WALRecord{}, fmt.Errorf("storage: malformed keyed wal payload header")
	}
	nkeys := int(binary.BigEndian.Uint16(payload[2:4]))
	off := 4
	keys := make([]string, 0, nkeys)
	for i := 0; i < nkeys; i++ {
		if len(payload)-off < 2 {
			return WALRecord{}, fmt.Errorf("storage: keyed wal payload truncated in key %d length", i)
		}
		kl := int(binary.BigEndian.Uint16(payload[off : off+2]))
		off += 2
		if len(payload)-off < kl {
			return WALRecord{}, fmt.Errorf("storage: keyed wal payload truncated in key %d", i)
		}
		keys = append(keys, string(payload[off:off+kl]))
		off += kl
	}
	return WALRecord{Script: string(payload[off:]), Keys: keys}, nil
}

// StoreOptions tunes a Store.
type StoreOptions struct {
	// GroupCommit batches WAL fsyncs across concurrent appenders: each
	// Append still blocks until its record is durable, but one fsync can
	// cover many records. Recommended under concurrent writers; with a
	// single writer it adds one goroutine handoff per append.
	GroupCommit bool

	// RepairCorruptWAL lets recovery discard a mid-log corrupt record
	// and everything after it, keeping the valid prefix. Off by default:
	// the discarded suffix holds acknowledged (fsynced) appends, so
	// OpenStore instead fails with a *CorruptWALError and leaves the
	// file untouched for inspection. Torn tails — records a crash cut
	// short, never acknowledged — are always trimmed silently.
	RepairCorruptWAL bool
}

// CorruptWALError reports a WAL record damaged in place: its checksum
// fails even though further bytes follow, so the damage cannot be a
// torn tail. Recovery refuses to proceed past it (the records behind it
// were acknowledged) unless StoreOptions.RepairCorruptWAL opts in to
// discarding the suffix.
type CorruptWALError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptWALError) Error() string {
	return fmt.Sprintf("storage: corrupt wal record in %s at offset %d: %s (acknowledged records follow the damage; re-open with RepairCorruptWAL to keep the valid prefix and discard the rest)",
		e.Path, e.Offset, e.Reason)
}

// RecoveryInfo describes what OpenStore found on disk.
type RecoveryInfo struct {
	// Epoch of the snapshot recovery started from (0 when the store was
	// empty).
	Epoch uint64
	// HasSnapshot reports whether any valid snapshot was found.
	HasSnapshot bool
	// Replayed counts WAL records from the current epoch handed to the
	// caller for replay.
	Replayed int
	// SkippedStale counts WAL records from older epochs — evidence of a
	// crash between a checkpoint rename and the WAL truncate.
	SkippedStale int
	// TornTail reports that an incomplete (or checksum-failing final)
	// record was discarded — a crash mid-append; the record was never
	// acknowledged.
	TornTail bool
	// CorruptRecords counts checksum failures with further data behind
	// them: in-place corruption, not a torn tail. Nonzero only under
	// StoreOptions.RepairCorruptWAL (the scan stops at the first one and
	// the tail after it is discarded); without the opt-in, OpenStore
	// fails with a *CorruptWALError instead.
	CorruptRecords int
	// BadSnapshots counts snapshot files that failed to decode and were
	// set aside (renamed to .corrupt).
	BadSnapshots int
	// DiscardedBytes is the length of the WAL tail dropped by recovery
	// (torn or corrupt).
	DiscardedBytes int64
}

func (ri RecoveryInfo) String() string {
	return fmt.Sprintf("epoch=%d snapshot=%v replayed=%d skipped_stale=%d torn_tail=%v corrupt=%d bad_snapshots=%d discarded_bytes=%d",
		ri.Epoch, ri.HasSnapshot, ri.Replayed, ri.SkippedStale, ri.TornTail, ri.CorruptRecords, ri.BadSnapshots, ri.DiscardedBytes)
}

// Store owns a crash-recovery directory. Append and Checkpoint are safe
// for concurrent appenders, but Checkpoint must not race Append for the
// same logical state (callers serialize state mutation + Append under
// their own lock, as ivm.Views does).
type Store struct {
	dir  string
	opts StoreOptions

	mu     sync.Mutex // serializes WAL writes, checkpoint, close
	wal    *os.File
	epoch  uint64
	seq    uint64
	closed bool

	gc *groupCommitter

	// recovery results; immutable after OpenStore.
	info        RecoveryInfo
	snapDB      *eval.DB
	snapProgram string
	snapHidden  []string
	records     []WALRecord

	// snapVersion is the BaseVersion of the newest snapshot: set by
	// recovery from the snapshot file, advanced by CheckpointAt. Guarded
	// by mu after OpenStore.
	snapVersion uint64

	// instruments; nil until AttachMetrics (nil instruments are no-ops).
	mAppends, mAppendBytes, mFsyncs, mCheckpoints *metrics.Counter
	hFsync, hCheckpoint                           *metrics.Histogram
	gEpoch                                        *metrics.Gauge
}

func snapName(epoch uint64) string {
	return fmt.Sprintf("%s%d%s", snapPrefix, epoch, snapSuffix)
}

// snapEpoch parses a snapshot filename, returning (epoch, true) on match.
func snapEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	mid := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	e, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// OpenStore opens (creating if needed) the store directory and runs
// recovery. The recovered snapshot and the WAL scripts to replay on top
// of it are available via Snapshot and Scripts; Recovery reports what
// was found.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.recoverSnapshots(); err != nil {
		return nil, err
	}
	if err := s.recoverWAL(); err != nil {
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}
	if opts.GroupCommit {
		s.gc = newGroupCommitter(s.wal)
		go s.gc.run()
	}
	return s, nil
}

// recoverSnapshots finds the newest decodable snapshot, sets aside
// corrupt ones, and removes temp-file leftovers of partial checkpoints.
func (s *Store) recoverSnapshots() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	var epochs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A checkpoint died before its rename; the WAL still has
			// everything the snapshot would have contained.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if ep, ok := snapEpoch(name); ok {
			epochs = append(epochs, ep)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] > epochs[j] })
	for _, ep := range epochs {
		path := filepath.Join(s.dir, snapName(ep))
		err := VerifySnapshotFile(path)
		var db *eval.DB
		var program string
		var hidden []string
		var base uint64
		if err == nil {
			db, program, hidden, base, err = LoadFileAt(path)
		}
		if err != nil {
			// Unreadable snapshot: set it aside (keep the evidence out of
			// the next scan) and fall back to the previous epoch.
			s.info.BadSnapshots++
			os.Rename(path, path+".corrupt")
			continue
		}
		s.snapDB, s.snapProgram, s.snapHidden = db, program, hidden
		s.snapVersion = base
		s.info.Epoch, s.info.HasSnapshot = ep, true
		s.epoch = ep
		break
	}
	return nil
}

// recoverWAL scans wal.log, collecting current-epoch scripts and
// truncating any torn or corrupt tail so appends resume after the last
// valid record.
func (s *Store) recoverWAL() error {
	wal, err := os.OpenFile(filepath.Join(s.dir, walFileName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.wal = wal
	st, err := wal.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if _, err := wal.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(wal)
	var (
		offset   int64
		validEnd int64
		hdr      [walHeaderSize]byte
	)
	for offset < size {
		if size-offset < walHeaderSize {
			s.info.TornTail = true
			break
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			s.info.TornTail = true
			break
		}
		epoch := binary.BigEndian.Uint64(hdr[0:8])
		seq := binary.BigEndian.Uint64(hdr[8:16])
		n := int64(binary.BigEndian.Uint32(hdr[16:20]))
		want := binary.BigEndian.Uint32(hdr[20:24])
		if n > size-offset-walHeaderSize {
			// Record extends past EOF: a crashed append.
			s.info.TornTail = true
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			s.info.TornTail = true
			break
		}
		end := offset + walHeaderSize + n
		crc := crc32.Checksum(hdr[0:20], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			if end == size {
				// Final record: indistinguishable from a torn append.
				s.info.TornTail = true
				break
			}
			if !s.opts.RepairCorruptWAL {
				// Acknowledged records sit behind the damage; refuse to
				// open (and leave the file untouched) rather than silently
				// destroy them.
				return &CorruptWALError{
					Path:   filepath.Join(s.dir, walFileName),
					Offset: offset,
					Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, crc),
				}
			}
			s.info.CorruptRecords++
			break
		}
		switch {
		case epoch == s.epoch:
			rec, err := decodeWALPayload(payload)
			if err != nil {
				wal.Close()
				return fmt.Errorf("storage: wal record at offset %d: %w", offset, err)
			}
			s.records = append(s.records, rec)
			s.info.Replayed++
		case epoch < s.epoch:
			// Written before the snapshot we recovered from — the crash
			// hit between a checkpoint rename and the WAL truncate.
			s.info.SkippedStale++
		default:
			// A record newer than every readable snapshot: the snapshot
			// covering the records truncated at that checkpoint is gone.
			// Replaying onto older state would silently lose data.
			wal.Close()
			return fmt.Errorf("storage: wal record at offset %d has epoch %d but newest readable snapshot is epoch %d; state is not recoverable from this directory", offset, epoch, s.epoch)
		}
		if seq > s.seq {
			s.seq = seq
		}
		offset = end
		validEnd = end
	}
	if validEnd < size {
		s.info.DiscardedBytes = size - validEnd
		if err := wal.Truncate(validEnd); err != nil {
			return err
		}
		if err := wal.Sync(); err != nil {
			return err
		}
	}
	// O_APPEND writes go to EOF regardless of the read offset.
	return nil
}

// Recovery reports what OpenStore found.
func (s *Store) Recovery() RecoveryInfo { return s.info }

// Snapshot returns the recovered snapshot contents (ok=false when the
// store held none). The returned DB is the store's own copy; callers
// take ownership.
func (s *Store) Snapshot() (db *eval.DB, program string, hidden []string, ok bool) {
	return s.snapDB, s.snapProgram, s.snapHidden, s.info.HasSnapshot
}

// Scripts returns the WAL delta scripts to replay on top of the
// snapshot, in append order.
func (s *Store) Scripts() []string {
	out := make([]string, len(s.records))
	for i, r := range s.records {
		out[i] = r.Script
	}
	return out
}

// Records returns the WAL records to replay on top of the snapshot, in
// append order, including the idempotency keys each record carries.
func (s *Store) Records() []WALRecord { return s.records }

// SnapshotBaseVersion returns the published snapshot version the newest
// checkpoint was stamped with (0 for stores written before version
// stamping). After recovery this is the version the in-memory state sat
// at before any WAL replay.
func (s *Store) SnapshotBaseVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapVersion
}

// TailRecords re-reads the live WAL and returns every current-epoch
// record stamped with a version greater than fromExcl, in append order.
// Replication backfill uses this when a follower's resume point has
// fallen out of the in-memory window but is still newer than the last
// checkpoint. The scan runs under the store lock (appends are fully
// written before the lock is released, so the file never holds a torn
// record mid-stream); any decode or checksum error stops the scan and is
// returned — the caller falls back to a full snapshot reset rather than
// serve a gap.
func (s *Store) TailRecords(fromExcl uint64) ([]WALRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStoreClosed
	}
	f, err := os.Open(filepath.Join(s.dir, walFileName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	r := bufio.NewReader(f)
	var (
		out    []WALRecord
		offset int64
		hdr    [walHeaderSize]byte
	)
	for offset < size {
		if size-offset < walHeaderSize {
			return nil, fmt.Errorf("storage: wal tail scan: torn header at offset %d", offset)
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		epoch := binary.BigEndian.Uint64(hdr[0:8])
		n := int64(binary.BigEndian.Uint32(hdr[16:20]))
		want := binary.BigEndian.Uint32(hdr[20:24])
		if n > size-offset-walHeaderSize {
			return nil, fmt.Errorf("storage: wal tail scan: torn record at offset %d", offset)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		crc := crc32.Checksum(hdr[0:20], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != want {
			return nil, fmt.Errorf("storage: wal tail scan: crc mismatch at offset %d", offset)
		}
		offset += walHeaderSize + n
		if epoch != s.epoch {
			continue
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return nil, err
		}
		if rec.Version > fromExcl {
			out = append(out, rec)
		}
	}
	return out, nil
}

// Closed reports whether Close has been called. Callers that mutate
// in-memory state before appending can pre-check so a closed store
// rejects the whole operation instead of leaving memory ahead of the
// log (a concurrent Close can still land between the check and the
// append; AppendAsync then fails with ErrStoreClosed after the fact).
func (s *Store) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Epoch returns the current checkpoint epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// AttachMetrics resolves the store's instruments against reg (nil-safe)
// and publishes the recovery counters.
func (s *Store) AttachMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mAppends = reg.Counter("storage_wal_appends_total")
	s.mAppendBytes = reg.Counter("storage_wal_append_bytes_total")
	s.mFsyncs = reg.Counter("storage_wal_fsyncs_total")
	s.mCheckpoints = reg.Counter("storage_checkpoints_total")
	s.hFsync = reg.Histogram("storage_wal_fsync")
	s.hCheckpoint = reg.Histogram("storage_checkpoint")
	s.gEpoch = reg.Gauge("storage_epoch")
	reg.Counter("storage_recovery_replayed_total").Add(int64(s.info.Replayed))
	reg.Counter("storage_recovery_skipped_stale_total").Add(int64(s.info.SkippedStale))
	reg.Counter("storage_recovery_corrupt_records_total").Add(int64(s.info.CorruptRecords))
	s.gEpoch.Set(int64(s.epoch))
	if s.gc != nil {
		s.gc.setMetrics(s.mFsyncs, s.hFsync)
	}
}

// encodeWALRecord renders one record; the CRC32C covers the header
// (minus the crc field itself) and the payload.
func encodeWALRecord(epoch, seq uint64, payload []byte) []byte {
	rec := make([]byte, walHeaderSize+len(payload))
	binary.BigEndian.PutUint64(rec[0:8], epoch)
	binary.BigEndian.PutUint64(rec[8:16], seq)
	binary.BigEndian.PutUint32(rec[16:20], uint32(len(payload)))
	copy(rec[walHeaderSize:], payload)
	crc := crc32.Checksum(rec[0:20], castagnoli)
	crc = crc32.Update(crc, castagnoli, rec[walHeaderSize:])
	binary.BigEndian.PutUint32(rec[20:24], crc)
	return rec
}

// Append durably logs one delta script: it returns only after the
// record is written and fsynced (possibly by a shared group commit).
func (s *Store) Append(script string) error {
	wait, err := s.AppendAsync(script)
	if err != nil {
		return err
	}
	return wait()
}

// AppendAsync is AppendRecordAsync for a record without idempotency
// keys.
func (s *Store) AppendAsync(script string) (wait func() error, err error) {
	return s.AppendRecordAsync(script, nil)
}

// AppendRecordAsync is AppendVersionedAsync for a record without a
// version stamp (legacy framing).
func (s *Store) AppendRecordAsync(script string, keys []string) (wait func() error, err error) {
	return s.AppendVersionedAsync(0, script, keys)
}

// AppendVersionedAsync writes the record (establishing its position in
// the log) and returns a wait function that blocks until the record is
// durable. version, when nonzero, stamps the record with the snapshot
// version its apply publishes, so recovery and replication backfill can
// align on the durable commit order. keys are the idempotency keys the
// record's applies carried; recovery hands them back via Records so
// dedup survives replay. Callers that serialize appends under their own
// lock can write inside the critical section and wait outside it,
// letting group commit batch the fsyncs.
func (s *Store) AppendVersionedAsync(version uint64, script string, keys []string) (wait func() error, err error) {
	payload, err := encodeWALPayload(version, script, keys)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStoreClosed
	}
	s.seq++
	seq := s.seq
	rec := encodeWALRecord(s.epoch, seq, payload)
	if _, err := s.wal.Write(rec); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mAppends.Inc()
	s.mAppendBytes.Add(int64(len(rec)))
	if s.gc == nil {
		start := time.Now()
		err := s.wal.Sync()
		s.hFsync.Observe(time.Since(start))
		s.mFsyncs.Inc()
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return func() error { return nil }, nil
	}
	// Register with the committer before releasing the store lock: Close
	// marks the store closed under this same lock, so by the time it
	// asks the committer to drain, every record that passed the closed
	// check above has been noted and the final fsync covers it — a
	// record that was durably written can then never be reported back to
	// its appender as ErrStoreClosed.
	s.gc.noteAppended(seq)
	s.mu.Unlock()
	return func() error { return s.gc.waitSynced(seq) }, nil
}

// Checkpoint is CheckpointAt without a base-version stamp.
func (s *Store) Checkpoint(db *eval.DB, program string, hidden []string) error {
	return s.CheckpointAt(db, program, hidden, 0)
}

// CheckpointAt writes a new snapshot epoch and truncates the WAL. The
// sequence — fsync temp snapshot, rename, fsync directory, bump epoch,
// truncate + fsync WAL — guarantees a crash at any point recovers to
// exactly the checkpointed state plus later appends. baseVersion, when
// nonzero, records the snapshot version the checkpointed state was
// published as, so recovery restarts the version counter where the
// previous process left it.
func (s *Store) CheckpointAt(db *eval.DB, program string, hidden []string, baseVersion uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	start := time.Now()
	next := s.epoch + 1
	if err := SaveFileAt(filepath.Join(s.dir, snapName(next)), db, program, hidden, baseVersion); err != nil {
		return err
	}
	s.epoch = next
	s.snapVersion = baseVersion
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.mCheckpoints.Inc()
	s.hCheckpoint.Observe(time.Since(start))
	s.gEpoch.Set(int64(s.epoch))
	s.pruneLocked()
	return nil
}

// pruneLocked removes snapshots older than the previous epoch (the
// previous one is kept as a fallback against a newest-snapshot decode
// failure). Best effort: pruning failures never fail a checkpoint.
func (s *Store) pruneLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if ep, ok := snapEpoch(e.Name()); ok && ep+1 < s.epoch {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Close flushes and closes the WAL. Further operations fail with
// ErrStoreClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.gc != nil {
		s.gc.close()
	}
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// groupCommitter batches WAL fsyncs: appenders note their sequence
// number and wait; a dedicated goroutine fsyncs once per batch and
// releases every appender the sync covered.
type groupCommitter struct {
	f    *os.File
	mu   sync.Mutex
	cond *sync.Cond

	appended uint64
	synced   uint64
	err      error
	closed   bool
	done     chan struct{}

	fsyncs *metrics.Counter
	hFsync *metrics.Histogram
}

func newGroupCommitter(f *os.File) *groupCommitter {
	g := &groupCommitter{f: f, done: make(chan struct{})}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *groupCommitter) setMetrics(fsyncs *metrics.Counter, h *metrics.Histogram) {
	g.mu.Lock()
	g.fsyncs, g.hFsync = fsyncs, h
	g.mu.Unlock()
}

func (g *groupCommitter) noteAppended(seq uint64) {
	g.mu.Lock()
	if seq > g.appended {
		g.appended = seq
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *groupCommitter) waitSynced(seq uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.err == nil && g.synced < seq && !g.closed {
		g.cond.Wait()
	}
	if g.err != nil {
		return g.err
	}
	if g.synced < seq {
		return ErrStoreClosed
	}
	return nil
}

func (g *groupCommitter) run() {
	g.mu.Lock()
	for {
		for !g.closed && g.appended == g.synced && g.err == nil {
			g.cond.Wait()
		}
		if g.closed {
			// Final drain: one last fsync covers everything written.
			target := g.appended
			g.mu.Unlock()
			err := g.f.Sync()
			g.mu.Lock()
			if err != nil {
				// Waiters must see the real sync failure, not a generic
				// ErrStoreClosed for a record that may not be durable.
				if g.err == nil {
					g.err = err
				}
			} else if g.err == nil {
				g.synced = target
			}
			g.cond.Broadcast()
			g.mu.Unlock()
			close(g.done)
			return
		}
		target := g.appended
		fsyncs, h := g.fsyncs, g.hFsync
		g.mu.Unlock()
		start := time.Now()
		err := g.f.Sync()
		h.Observe(time.Since(start))
		fsyncs.Inc()
		g.mu.Lock()
		if err != nil {
			g.err = err
		} else if target > g.synced {
			g.synced = target
		}
		g.cond.Broadcast()
	}
}

func (g *groupCommitter) close() {
	g.mu.Lock()
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	<-g.done
}

// Package faultnet is a TCP fault-injection proxy for exercising the
// exactly-once apply protocol (DESIGN.md §13): it sits between a client
// and a server and, on a configurable fraction of connections, injects
// the network failures a retrying client must survive — dropped
// connections, added latency, resets mid-response, and the nastiest
// one, swallowed acks: the request reaches the server and commits, but
// the response never reaches the client, making "committed" and "never
// arrived" indistinguishable without idempotency keys.
//
// The proxy is deterministic per seed: which connections are faulted,
// and how, replays identically for a given (seed, connection-order)
// pair. Every decision is appended to an in-memory event log (and
// optionally a file) so a failed chaos run can be diagnosed offline.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Mode is one injected failure shape.
type Mode int

const (
	// Pass relays the connection untouched.
	Pass Mode = iota
	// Drop resets the connection immediately on accept: the request is
	// never delivered (client retries against an un-committed apply).
	Drop
	// Delay holds the connection for Options.Delay before relaying it
	// cleanly — long enough to trip client dial/header timeouts when
	// configured tighter than the delay.
	Delay
	// ResetMidBody relays the request and the first few response bytes,
	// then resets: the client sees a torn response after the server
	// committed.
	ResetMidBody
	// SwallowAck relays the request, waits until the server has produced
	// its response (the apply is committed and acked server-side), then
	// resets the client side without relaying a byte of it — the
	// canonical lost-ack fault.
	SwallowAck
)

func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case ResetMidBody:
		return "reset-mid-body"
	case SwallowAck:
		return "swallow-ack"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a Proxy.
type Options struct {
	// Target is the address the proxy forwards to (required; changeable
	// later with SetTarget, e.g. after restarting the server).
	Target string
	// Fraction of connections to fault, in [0, 1] (default 0 — pass
	// everything).
	Fraction float64
	// Modes are the fault shapes to draw from on a faulted connection
	// (default: Drop, Delay, ResetMidBody, SwallowAck).
	Modes []Mode
	// Delay is the hold time of the Delay mode (default 50ms).
	Delay time.Duration
	// Seed makes the fault sequence reproducible (default 1).
	Seed int64
	// LogPath, when non-empty, receives one line per connection decision
	// (appended; the file is created if missing).
	LogPath string
}

// Stats counts the proxy's decisions.
type Stats struct {
	Conns   int64
	Faulted int64
	ByMode  map[string]int64
}

// Proxy is the running fault injector. Start it with New, stop it with
// Close.
type Proxy struct {
	ln    net.Listener
	delay time.Duration

	mu       sync.Mutex
	target   string
	fraction float64
	modes    []Mode
	rng      *rand.Rand
	conns    int64
	faulted  int64
	byMode   map[string]int64
	events   []string
	logFile  *os.File
	closed   bool
}

// New starts a proxy listening on 127.0.0.1 (random port; see Addr).
func New(opts Options) (*Proxy, error) {
	if opts.Target == "" {
		return nil, fmt.Errorf("faultnet: Options.Target is required")
	}
	if len(opts.Modes) == 0 {
		opts.Modes = []Mode{Drop, Delay, ResetMidBody, SwallowAck}
	}
	if opts.Delay <= 0 {
		opts.Delay = 50 * time.Millisecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{
		ln:       ln,
		delay:    opts.Delay,
		target:   opts.Target,
		fraction: opts.Fraction,
		modes:    opts.Modes,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		byMode:   make(map[string]int64),
	}
	if opts.LogPath != "" {
		f, err := os.OpenFile(opts.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("faultnet: fault log: %w", err)
		}
		p.logFile = f
	}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's listen address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetTarget repoints the proxy (new connections only) — used when the
// backend restarts on a new port mid-run.
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = addr
}

// SetFraction changes the fault rate for new connections; 0 drains the
// run cleanly (used to let every applier finish once chaos is proven).
func (p *Proxy) SetFraction(f float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fraction = f
}

// Stats returns the decision counts so far.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	by := make(map[string]int64, len(p.byMode))
	for k, v := range p.byMode {
		by[k] = v
	}
	return Stats{Conns: p.conns, Faulted: p.faulted, ByMode: by}
}

// Events returns the decision log so far (one line per connection).
func (p *Proxy) Events() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.events...)
}

// Close stops accepting and closes the fault log. In-flight relays are
// left to finish on their own.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	f := p.logFile
	p.mu.Unlock()
	err := p.ln.Close()
	if f != nil {
		f.Close()
	}
	return err
}

func (p *Proxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		target, mode := p.decide()
		go p.serve(conn, target, mode)
	}
}

// decide picks the fault (or Pass) for one connection and logs it.
func (p *Proxy) decide() (target string, mode Mode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns++
	mode = Pass
	if p.rng.Float64() < p.fraction {
		mode = p.modes[p.rng.Intn(len(p.modes))]
	}
	if mode != Pass {
		p.faulted++
	}
	p.byMode[mode.String()]++
	line := fmt.Sprintf("conn=%d mode=%s target=%s", p.conns, mode, p.target)
	p.events = append(p.events, line)
	if p.logFile != nil {
		fmt.Fprintln(p.logFile, line)
	}
	return p.target, mode
}

// reset closes conn with an RST (SO_LINGER 0) rather than a clean FIN,
// so the peer sees ECONNRESET — the shape of a crashed middlebox.
func reset(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

func (p *Proxy) serve(client net.Conn, target string, mode Mode) {
	switch mode {
	case Drop:
		reset(client)
		return
	case Delay:
		time.Sleep(p.delay)
	}
	server, err := net.DialTimeout("tcp", target, 10*time.Second)
	if err != nil {
		reset(client)
		return
	}
	switch mode {
	case Pass, Delay:
		p.relay(client, server)
	case ResetMidBody:
		p.relayTornResponse(client, server, 12)
	case SwallowAck:
		p.relaySwallowedResponse(client, server)
	default:
		p.relay(client, server)
	}
}

// relay copies both directions until either side closes.
func (p *Proxy) relay(client, server net.Conn) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(server, client)
		// Request fully sent (or client gone): half-close toward the
		// server so it sees EOF but the response still flows back.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		io.Copy(client, server)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	wg.Wait()
	client.Close()
	server.Close()
}

// relayTornResponse forwards the request, then cuts the client off
// after n response bytes — a torn, unparseable ack.
func (p *Proxy) relayTornResponse(client, server net.Conn, n int64) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(server, client)
	}()
	io.CopyN(client, server, n)
	reset(client)
	server.Close()
	<-done
}

// relaySwallowedResponse forwards the request and drains the server's
// entire response without relaying any of it: the server has committed
// and acked, the client got nothing.
func (p *Proxy) relaySwallowedResponse(client, server net.Conn) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(server, client)
	}()
	// Wait for the first response byte — proof the server processed the
	// request — then cut the client off before any of it reaches them.
	// The server side is closed right after (not drained: the handler
	// has already committed; a torn write of the remaining ack bytes
	// changes nothing).
	var b [1]byte
	server.Read(b[:])
	reset(client)
	server.Close()
	<-done
}

// Parse converts a comma-separated mode list ("drop,swallow-ack") into
// Modes — the ivmbench -faults-modes flag format.
func Parse(list string) ([]Mode, error) {
	var out []Mode
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var m Mode
		switch name {
		case "drop":
			m = Drop
		case "delay":
			m = Delay
		case "reset-mid-body":
			m = ResetMidBody
		case "swallow-ack":
			m = SwallowAck
		case "pass":
			m = Pass
		default:
			return nil, fmt.Errorf("faultnet: unknown mode %q", name)
		}
		out = append(out, m)
	}
	return out, nil
}

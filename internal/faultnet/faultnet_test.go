package faultnet

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startEcho runs a line-echo backend that counts the requests it fully
// received — the ground truth for "did the server see it".
func startEcho(t *testing.T) (addr string, received *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	received = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					received.Add(1)
					fmt.Fprintf(c, "echo %s\n", sc.Text())
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), received
}

// roundTrip sends one line through addr and returns the echoed reply.
func roundTrip(addr, line string) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSpace(resp), err
}

func TestProxyPassThrough(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := New(Options{Target: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := roundTrip(p.Addr(), "hello")
	if err != nil || got != "echo hello" {
		t.Fatalf("pass-through = %q, %v", got, err)
	}
	st := p.Stats()
	if st.Conns != 1 || st.Faulted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyDrop(t *testing.T) {
	addr, received := startEcho(t)
	p, err := New(Options{Target: addr, Fraction: 1, Modes: []Mode{Drop}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(p.Addr(), "lost"); err == nil {
		t.Fatal("dropped connection must error client-side")
	}
	if received.Load() != 0 {
		t.Fatal("a dropped request must never reach the backend")
	}
	if st := p.Stats(); st.Faulted != 1 || st.ByMode["drop"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxySwallowAck(t *testing.T) {
	addr, received := startEcho(t)
	p, err := New(Options{Target: addr, Fraction: 1, Modes: []Mode{SwallowAck}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(p.Addr(), "committed"); err == nil {
		t.Fatal("swallowed ack must error client-side")
	}
	// The defining property: the backend processed the request even
	// though the client saw a failure.
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if received.Load() != 1 {
		t.Fatalf("backend received %d requests, want 1", received.Load())
	}
}

func TestProxyResetMidBody(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := New(Options{Target: addr, Fraction: 1, Modes: []Mode{ResetMidBody}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// The reply "echo <11 bytes>\n" exceeds the 12-byte torn prefix, so
	// the read errors or comes back truncated without a newline.
	resp, err := roundTrip(p.Addr(), "abcdefghijk")
	if err == nil {
		t.Fatalf("torn response read must error, got %q", resp)
	}
}

func TestProxyDelayStillDelivers(t *testing.T) {
	addr, _ := startEcho(t)
	p, err := New(Options{Target: addr, Fraction: 1, Modes: []Mode{Delay}, Delay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	start := time.Now()
	got, err := roundTrip(p.Addr(), "slow")
	if err != nil || got != "echo slow" {
		t.Fatalf("delayed roundtrip = %q, %v", got, err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delay mode finished in %v, want >= 30ms", elapsed)
	}
}

func TestProxySetTargetAndFraction(t *testing.T) {
	addrA, _ := startEcho(t)
	addrB, receivedB := startEcho(t)
	p, err := New(Options{Target: addrA, Fraction: 1, Modes: []Mode{Drop}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := roundTrip(p.Addr(), "x"); err == nil {
		t.Fatal("full-fraction drop must fail")
	}
	p.SetFraction(0)
	p.SetTarget(addrB)
	if got, err := roundTrip(p.Addr(), "y"); err != nil || got != "echo y" {
		t.Fatalf("after SetTarget/SetFraction(0): %q, %v", got, err)
	}
	if receivedB.Load() != 1 {
		t.Fatal("retargeted connection did not reach the new backend")
	}
}

func TestProxyDeterministicSeedAndLog(t *testing.T) {
	addr, _ := startEcho(t)
	logPath := filepath.Join(t.TempDir(), "faults.log")
	decisions := func(seed int64) []string {
		p, err := New(Options{Target: addr, Fraction: 0.5, Seed: seed, LogPath: logPath})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 20; i++ {
			roundTrip(p.Addr(), "probe") // errors expected on faulted conns
		}
		evs := p.Events()
		out := make([]string, len(evs))
		for i, e := range evs {
			// Strip the target (port differs across runs); keep the mode.
			out[i] = strings.Split(e, " target=")[0]
		}
		return out
	}
	a, b := decisions(42), decisions(42)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "conn="); n != 40 {
		t.Fatalf("fault log has %d decision lines, want 40", n)
	}
}

func TestParseModes(t *testing.T) {
	ms, err := Parse("drop, swallow-ack,delay")
	if err != nil || len(ms) != 3 || ms[0] != Drop || ms[1] != SwallowAck || ms[2] != Delay {
		t.Fatalf("Parse = %v, %v", ms, err)
	}
	if _, err := Parse("drop,bogus"); err == nil {
		t.Fatal("unknown mode must error")
	}
}

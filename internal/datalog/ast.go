// Package datalog defines the abstract syntax of the extended Datalog
// dialect used by the view-maintenance engine: positive and (safe,
// stratified) negated subgoals, GROUPBY aggregation subgoals in the style
// of [Mum91], arithmetic expressions in rule heads, and comparison
// conditions. It also provides the structural validation (safety / range
// restriction) required before a program may be evaluated.
package datalog

import (
	"fmt"
	"strings"

	"ivm/internal/value"
)

// Term is a head/body argument: a variable, a constant, or (in heads and
// conditions) an arithmetic expression.
type Term interface {
	isTerm()
	// Vars appends the variables occurring in the term to dst.
	Vars(dst []string) []string
	String() string
}

// Var is a Datalog variable (conventionally starting with an upper-case
// letter in the surface syntax).
type Var string

func (Var) isTerm()                      {}
func (v Var) Vars(dst []string) []string { return append(dst, string(v)) }
func (v Var) String() string             { return string(v) }

// Const is a constant term wrapping a scalar value.
type Const struct{ Value value.Value }

func (Const) isTerm()                      {}
func (c Const) Vars(dst []string) []string { return dst }
func (c Const) String() string             { return c.Value.String() }

// ArithOp enumerates arithmetic operators usable in expression terms.
type ArithOp uint8

const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// Arith is a binary arithmetic expression term, e.g. C1+C2 in
// hop(S,D,C1+C2) :- link(S,I,C1), link(I,D,C2).
type Arith struct {
	Op          ArithOp
	Left, Right Term
}

func (Arith) isTerm() {}

func (a Arith) Vars(dst []string) []string {
	dst = a.Left.Vars(dst)
	return a.Right.Vars(dst)
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.Left, a.Op, a.Right)
}

// Atom is a predicate applied to terms, e.g. link(X, Z).
type Atom struct {
	Pred string
	Args []Term
}

// Vars appends all variables in the atom's arguments to dst.
func (a Atom) Vars(dst []string) []string {
	for _, t := range a.Args {
		dst = t.Vars(dst)
	}
	return dst
}

func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CmpOp enumerates comparison operators in condition literals.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Eval applies the comparison to two values using the total order of the
// value package (numerics compare numerically across kinds).
func (op CmpOp) Eval(a, b value.Value) bool {
	// Equality across Int/Float should be numeric, like the comparisons.
	c := a.Compare(b)
	numEq := c == 0 || (a.IsNumeric() && b.IsNumeric() && a.Float() == b.Float())
	switch op {
	case CmpEq:
		return numEq
	case CmpNe:
		return !numEq
	case CmpLt:
		return c < 0 && !numEq
	case CmpLe:
		return c < 0 || numEq
	case CmpGt:
		return c > 0 && !numEq
	case CmpGe:
		return c > 0 || numEq
	}
	return false
}

// AggFunc names an aggregation function of a GROUPBY subgoal.
type AggFunc string

// Supported aggregate functions. MIN/MAX/COUNT/SUM are incrementally
// computable in the sense of [DAJ91]; AVG and VARIANCE are decomposed into
// incrementally computable parts (sum, sum of squares, count).
const (
	AggMin      AggFunc = "min"
	AggMax      AggFunc = "max"
	AggSum      AggFunc = "sum"
	AggCount    AggFunc = "count"
	AggAvg      AggFunc = "avg"
	AggVariance AggFunc = "variance"
)

// Aggregate is a GROUPBY subgoal:
//
//	GROUPBY(u(X,Y,C), [X,Y], M = min(C))
//
// It denotes a relation over GroupBy ∪ {Result}: one tuple per distinct
// binding of the grouping variables, carrying the aggregate of Arg over
// the group ([Mum91] semantics, paper Section 6.2).
type Aggregate struct {
	Inner   Atom    // the grouped subgoal u(...)
	GroupBy []Var   // grouping variables (must occur in Inner)
	Result  Var     // variable bound to the aggregate value
	Func    AggFunc // aggregation function
	Arg     Term    // aggregated expression over Inner's variables
}

func (g Aggregate) String() string {
	vars := make([]string, len(g.GroupBy))
	for i, v := range g.GroupBy {
		vars[i] = string(v)
	}
	return fmt.Sprintf("groupby(%s, [%s], %s = %s(%s))",
		g.Inner, strings.Join(vars, ", "), g.Result, g.Func, g.Arg)
}

// LiteralKind discriminates the kinds of body literals.
type LiteralKind uint8

const (
	// LitPositive is an ordinary positive subgoal.
	LitPositive LiteralKind = iota
	// LitNegated is a safe stratified negated subgoal (¬q(...)).
	LitNegated
	// LitAggregate is a GROUPBY subgoal.
	LitAggregate
	// LitCondition is a comparison filter (X < Y, C != 0, ...).
	LitCondition
)

// Literal is one subgoal of a rule body. Exactly one of the payload
// fields is meaningful, selected by Kind.
type Literal struct {
	Kind LiteralKind
	Atom Atom       // LitPositive, LitNegated
	Agg  *Aggregate // LitAggregate
	Cond *Condition // LitCondition
}

// Condition is a comparison literal over expressions.
type Condition struct {
	Op          CmpOp
	Left, Right Term
}

func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// Pred returns the predicate this literal references, or "" for conditions.
func (l Literal) Pred() string {
	switch l.Kind {
	case LitPositive, LitNegated:
		return l.Atom.Pred
	case LitAggregate:
		return l.Agg.Inner.Pred
	}
	return ""
}

// IsRelational reports whether the literal references a relation (i.e. is
// not a pure condition filter).
func (l Literal) IsRelational() bool { return l.Kind != LitCondition }

// BindsVars appends the variables this literal can bind (make safe) to dst:
// positive subgoals bind all their variables; aggregates bind their
// grouping variables and result variable; negations and conditions bind
// nothing.
func (l Literal) BindsVars(dst []string) []string {
	switch l.Kind {
	case LitPositive:
		return l.Atom.Vars(dst)
	case LitAggregate:
		for _, v := range l.Agg.GroupBy {
			dst = append(dst, string(v))
		}
		return append(dst, string(l.Agg.Result))
	}
	return dst
}

// UsesVars appends every variable occurring anywhere in the literal to dst.
func (l Literal) UsesVars(dst []string) []string {
	switch l.Kind {
	case LitPositive, LitNegated:
		return l.Atom.Vars(dst)
	case LitAggregate:
		dst = l.Agg.Inner.Vars(dst)
		for _, v := range l.Agg.GroupBy {
			dst = append(dst, string(v))
		}
		return append(dst, string(l.Agg.Result))
	case LitCondition:
		dst = l.Cond.Left.Vars(dst)
		return l.Cond.Right.Vars(dst)
	}
	return dst
}

func (l Literal) String() string {
	switch l.Kind {
	case LitPositive:
		return l.Atom.String()
	case LitNegated:
		return "!" + l.Atom.String()
	case LitAggregate:
		return l.Agg.String()
	case LitCondition:
		return l.Cond.String()
	}
	return "?"
}

// Rule is a single Datalog rule: Head :- Body.
type Rule struct {
	Head Atom
	Body []Literal
}

func (r Rule) String() string {
	var sb strings.Builder
	sb.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		sb.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(l.String())
		}
	}
	sb.WriteByte('.')
	return sb.String()
}

// Program is an ordered collection of rules defining derived predicates.
type Program struct {
	Rules []Rule
}

// Clone returns a shallow copy with an independent rule slice (rules share
// term structures, which are immutable).
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	copy(rules, p.Rules)
	return &Program{Rules: rules}
}

// DerivedPreds returns the set of predicates appearing in some rule head.
func (p *Program) DerivedPreds() map[string]bool {
	out := make(map[string]bool)
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// BasePreds returns the predicates referenced in rule bodies that are
// never defined by a rule head (the edb relations).
func (p *Program) BasePreds() map[string]bool {
	derived := p.DerivedPreds()
	out := make(map[string]bool)
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if pred := l.Pred(); pred != "" && !derived[pred] {
				out[pred] = true
			}
		}
	}
	return out
}

// RulesFor returns the indexes of rules whose head predicate is pred.
func (p *Program) RulesFor(pred string) []int {
	var out []int
	for i, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, i)
		}
	}
	return out
}

func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

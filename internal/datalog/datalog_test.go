package datalog

import (
	"strings"
	"testing"

	"ivm/internal/value"
)

func v(name string) Var { return Var(name) }
func c(s string) Const  { return Const{Value: value.NewString(s)} }
func ci(i int64) Const  { return Const{Value: value.NewInt(i)} }
func atom(p string, args ...Term) Atom {
	return Atom{Pred: p, Args: args}
}
func pos(p string, args ...Term) Literal {
	return Literal{Kind: LitPositive, Atom: atom(p, args...)}
}
func neg(p string, args ...Term) Literal {
	return Literal{Kind: LitNegated, Atom: atom(p, args...)}
}

func TestTermVars(t *testing.T) {
	a := Arith{Op: OpAdd, Left: v("X"), Right: Arith{Op: OpMul, Left: v("Y"), Right: ci(2)}}
	got := a.Vars(nil)
	if len(got) != 2 || got[0] != "X" || got[1] != "Y" {
		t.Fatalf("vars: %v", got)
	}
	if len(c("k").Vars(nil)) != 0 {
		t.Fatal("const has no vars")
	}
}

func TestCmpOpEval(t *testing.T) {
	i2, f2, i3 := value.NewInt(2), value.NewFloat(2), value.NewInt(3)
	if !CmpEq.Eval(i2, f2) {
		t.Error("2 = 2.0 numerically")
	}
	if CmpNe.Eval(i2, f2) {
		t.Error("2 != 2.0 is false")
	}
	if !CmpLt.Eval(i2, i3) || CmpLt.Eval(i3, i2) || CmpLt.Eval(i2, f2) {
		t.Error("Lt")
	}
	if !CmpLe.Eval(i2, f2) || !CmpGe.Eval(f2, i2) {
		t.Error("Le/Ge on numeric ties")
	}
	a, b := value.NewString("a"), value.NewString("b")
	if !CmpLt.Eval(a, b) || !CmpNe.Eval(a, b) {
		t.Error("string comparisons")
	}
}

func TestLiteralVarsAndBinding(t *testing.T) {
	g := &Aggregate{
		Inner:   atom("hop", v("S"), v("D"), v("C")),
		GroupBy: []Var{"S", "D"},
		Result:  "M",
		Func:    AggMin,
		Arg:     v("C"),
	}
	lit := Literal{Kind: LitAggregate, Agg: g}
	binds := lit.BindsVars(nil)
	if len(binds) != 3 { // S, D, M
		t.Fatalf("binds: %v", binds)
	}
	uses := lit.UsesVars(nil)
	joined := strings.Join(uses, ",")
	for _, want := range []string{"S", "D", "C", "M"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("uses missing %s: %v", want, uses)
		}
	}
	if len(neg("q", v("X")).BindsVars(nil)) != 0 {
		t.Fatal("negation binds nothing")
	}
}

func TestProgramPredSets(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: atom("hop", v("X"), v("Y")), Body: []Literal{pos("link", v("X"), v("Z")), pos("link", v("Z"), v("Y"))}},
		{Head: atom("tri", v("X"), v("Y")), Body: []Literal{pos("hop", v("X"), v("Z")), pos("link", v("Z"), v("Y"))}},
	}}
	if d := p.DerivedPreds(); !d["hop"] || !d["tri"] || len(d) != 2 {
		t.Fatalf("derived: %v", d)
	}
	if b := p.BasePreds(); !b["link"] || len(b) != 1 {
		t.Fatalf("base: %v", b)
	}
	if rs := p.RulesFor("hop"); len(rs) != 1 || rs[0] != 0 {
		t.Fatalf("rulesFor: %v", rs)
	}
}

func TestValidateAcceptsPaperPrograms(t *testing.T) {
	progs := []*Program{
		{Rules: []Rule{{
			Head: atom("hop", v("X"), v("Y")),
			Body: []Literal{pos("link", v("X"), v("Z")), pos("link", v("Z"), v("Y"))},
		}}},
		{Rules: []Rule{{
			Head: atom("oth", v("X")),
			Body: []Literal{pos("t", v("X")), neg("h", v("X"))},
		}}},
		{Rules: []Rule{{
			Head: atom("m", v("S"), v("M")),
			Body: []Literal{{Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("u", v("S"), v("C")), GroupBy: []Var{"S"}, Result: "M", Func: AggSum, Arg: v("C"),
			}}},
		}}},
	}
	for i, p := range progs {
		if err := Validate(p); err != nil {
			t.Errorf("program %d: %v", i, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := map[string]*Program{
		"unbound head var": {Rules: []Rule{{
			Head: atom("p", v("X"), v("Y")),
			Body: []Literal{pos("q", v("X"))},
		}}},
		"unsafe negation": {Rules: []Rule{{
			Head: atom("p", v("X")),
			Body: []Literal{pos("q", v("X")), neg("r", v("Y"))},
		}}},
		"unsafe condition": {Rules: []Rule{{
			Head: atom("p", v("X")),
			Body: []Literal{pos("q", v("X")), {Kind: LitCondition, Cond: &Condition{Op: CmpLt, Left: v("Z"), Right: ci(3)}}},
		}}},
		"arith in body atom": {Rules: []Rule{{
			Head: atom("p", v("X")),
			Body: []Literal{pos("q", v("X"), Arith{Op: OpAdd, Left: v("X"), Right: ci(1)})},
		}}},
		"groupvar not in inner": {Rules: []Rule{{
			Head: atom("p", v("S"), v("M")),
			Body: []Literal{{Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("u", v("A"), v("C")), GroupBy: []Var{"S"}, Result: "M", Func: AggSum, Arg: v("C"),
			}}, pos("x", v("S"))},
		}}},
		"result var occurs in inner": {Rules: []Rule{{
			Head: atom("p", v("S"), v("M")),
			Body: []Literal{{Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("u", v("S"), v("M")), GroupBy: []Var{"S"}, Result: "M", Func: AggSum, Arg: v("M"),
			}}},
		}}},
		"agg arg var foreign": {Rules: []Rule{{
			Head: atom("p", v("S"), v("M")),
			Body: []Literal{pos("w", v("Z")), {Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("u", v("S"), v("C")), GroupBy: []Var{"S"}, Result: "M", Func: AggSum, Arg: v("Z"),
			}}},
		}}},
		"unknown agg func": {Rules: []Rule{{
			Head: atom("p", v("S"), v("M")),
			Body: []Literal{{Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("u", v("S"), v("C")), GroupBy: []Var{"S"}, Result: "M", Func: "median", Arg: v("C"),
			}}},
		}}},
		"self-aggregate": {Rules: []Rule{{
			Head: atom("p", v("S"), v("M")),
			Body: []Literal{{Kind: LitAggregate, Agg: &Aggregate{
				Inner: atom("p", v("S"), v("C")), GroupBy: []Var{"S"}, Result: "M", Func: AggSum, Arg: v("C"),
			}}},
		}}},
		"arity mismatch": {Rules: []Rule{
			{Head: atom("p", v("X")), Body: []Literal{pos("q", v("X"))}},
			{Head: atom("p", v("X"), v("Y")), Body: []Literal{pos("q", v("X")), pos("q", v("Y"))}},
		}},
		"no relational subgoal": {Rules: []Rule{{
			Head: atom("p", v("X")),
			Body: []Literal{{Kind: LitCondition, Cond: &Condition{Op: CmpLt, Left: v("X"), Right: ci(3)}}},
		}}},
	}
	for name, p := range bad {
		if err := Validate(p); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestValidationErrorMessage(t *testing.T) {
	p := &Program{Rules: []Rule{{
		Head: atom("p", v("X"), v("Y")),
		Body: []Literal{pos("q", v("X"))},
	}}}
	err := Validate(p)
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("error type: %T", err)
	}
	if !strings.Contains(ve.Error(), "head variable Y") {
		t.Fatalf("message: %v", ve)
	}
}

func TestRuleStringZeroBody(t *testing.T) {
	r := Rule{Head: atom("p", c("a"))}
	if r.String() != "p(a)." {
		t.Fatalf("fact rule render: %q", r.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Program{Rules: []Rule{{Head: atom("p", v("X")), Body: []Literal{pos("q", v("X"))}}}}
	cl := p.Clone()
	cl.Rules = append(cl.Rules, Rule{Head: atom("r", v("X")), Body: []Literal{pos("q", v("X"))}})
	if len(p.Rules) != 1 {
		t.Fatal("clone must not share the rule slice")
	}
}

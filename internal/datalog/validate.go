package datalog

import (
	"fmt"
	"sort"
)

// ValidationError describes a structural problem with a rule.
type ValidationError struct {
	Rule   Rule
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("datalog: invalid rule %q: %s", e.Rule.String(), e.Reason)
}

// Validate checks the whole program for the structural properties the
// evaluation and maintenance algorithms rely on:
//
//   - range restriction / safety: every head variable is bound by a
//     positive subgoal, a grouping variable, or an aggregate result;
//   - safe negation: every variable of a negated subgoal occurs in some
//     positive subgoal of the same rule (paper Section 6.1);
//   - safe conditions: every variable of a comparison is bound;
//   - well-formed aggregation: grouping variables occur in the grouped
//     subgoal, the result variable is fresh, and the aggregated expression
//     only uses the grouped subgoal's variables;
//   - arity consistency: every predicate is used with a single arity;
//   - body atoms use only variables and constants (expressions belong in
//     heads and conditions).
func Validate(p *Program) error {
	arities := make(map[string]int)
	checkArity := func(r Rule, a Atom) error {
		if prev, ok := arities[a.Pred]; ok && prev != len(a.Args) {
			return &ValidationError{r, fmt.Sprintf("predicate %s used with arity %d and %d", a.Pred, prev, len(a.Args))}
		}
		arities[a.Pred] = len(a.Args)
		return nil
	}

	for _, r := range p.Rules {
		if err := validateRule(r); err != nil {
			return err
		}
		if err := checkArity(r, r.Head); err != nil {
			return err
		}
		for _, l := range r.Body {
			switch l.Kind {
			case LitPositive, LitNegated:
				if err := checkArity(r, l.Atom); err != nil {
					return err
				}
			case LitAggregate:
				if err := checkArity(r, l.Agg.Inner); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateRule(r Rule) error {
	bound := make(map[string]bool)
	for _, l := range r.Body {
		for _, v := range l.BindsVars(nil) {
			bound[v] = true
		}
	}

	// Body atoms: variables/constants only.
	for _, l := range r.Body {
		if l.Kind == LitPositive || l.Kind == LitNegated {
			for _, t := range l.Atom.Args {
				if _, ok := t.(Arith); ok {
					return &ValidationError{r, fmt.Sprintf("arithmetic term %s in body atom %s (only heads and conditions may contain expressions)", t, l.Atom)}
				}
			}
		}
	}

	// Head safety.
	for _, v := range r.Head.Vars(nil) {
		if !bound[v] {
			return &ValidationError{r, fmt.Sprintf("head variable %s is not bound by any positive subgoal", v)}
		}
	}

	// Negation safety.
	for _, l := range r.Body {
		if l.Kind != LitNegated {
			continue
		}
		for _, v := range l.Atom.Vars(nil) {
			if !bound[v] {
				return &ValidationError{r, fmt.Sprintf("variable %s of negated subgoal %s is not bound by a positive subgoal", v, l.Atom)}
			}
		}
	}

	// Condition safety.
	for _, l := range r.Body {
		if l.Kind != LitCondition {
			continue
		}
		for _, v := range l.UsesVars(nil) {
			if !bound[v] {
				return &ValidationError{r, fmt.Sprintf("variable %s of condition %s is not bound", v, l.Cond)}
			}
		}
	}

	// Aggregation shape.
	for _, l := range r.Body {
		if l.Kind != LitAggregate {
			continue
		}
		g := l.Agg
		innerVars := make(map[string]bool)
		for _, v := range g.Inner.Vars(nil) {
			innerVars[v] = true
		}
		for _, v := range g.GroupBy {
			if !innerVars[string(v)] {
				return &ValidationError{r, fmt.Sprintf("grouping variable %s does not occur in grouped subgoal %s", v, g.Inner)}
			}
		}
		if innerVars[string(g.Result)] {
			return &ValidationError{r, fmt.Sprintf("aggregate result variable %s must not occur in the grouped subgoal", g.Result)}
		}
		for _, v := range g.Arg.Vars(nil) {
			if !innerVars[v] {
				return &ValidationError{r, fmt.Sprintf("aggregated expression uses %s which does not occur in %s", v, g.Inner)}
			}
		}
		switch g.Func {
		case AggMin, AggMax, AggSum, AggCount, AggAvg, AggVariance:
		default:
			return &ValidationError{r, fmt.Sprintf("unknown aggregate function %q", g.Func)}
		}
		// Aggregates over the head predicate of the same rule would be
		// unstratifiable self-reference; the strata package catches the
		// general case, but catch the direct one early.
		if g.Inner.Pred == r.Head.Pred {
			return &ValidationError{r, fmt.Sprintf("aggregate over %s in a rule defining %s is not stratified", g.Inner.Pred, r.Head.Pred)}
		}
	}

	// A rule must have at least one relational subgoal (otherwise nothing
	// drives the bindings).
	hasRelational := false
	for _, l := range r.Body {
		if l.IsRelational() {
			hasRelational = true
			break
		}
	}
	if !hasRelational && len(r.Head.Vars(nil)) > 0 {
		return &ValidationError{r, "rule with head variables has no relational subgoal"}
	}
	return nil
}

// SortedPreds returns map keys in sorted order (deterministic iteration
// helper shared by several packages).
func SortedPreds(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

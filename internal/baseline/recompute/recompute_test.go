package recompute

import (
	"testing"

	"ivm/internal/eval"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
)

func load(t *testing.T, src string) *eval.DB {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	for _, f := range facts {
		db.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return db
}

func engine(t *testing.T, progSrc, facts string, sem eval.Semantics) *Engine {
	t.Helper()
	prog, err := parser.ParseRules(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, load(t, facts), sem)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecomputeHop(t *testing.T) {
	e := engine(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`,
		`link(a,b). link(b,c). link(b,e). link(a,d). link(d,c).`, eval.Duplicate)
	if e.Relation("hop").Count(value.T("a", "c")) != 2 {
		t.Fatalf("hop: %v", e.Relation("hop"))
	}
	d := relation.New(2)
	d.Add(value.T("a", "b"), -1)
	ch, err := e.Apply(map[string]*relation.Relation{"link": d})
	if err != nil {
		t.Fatal(err)
	}
	if ch["hop"].Count(value.T("a", "c")) != -1 || ch["hop"].Count(value.T("a", "e")) != -1 {
		t.Fatalf("Δhop: %v", ch["hop"])
	}
	if e.Relation("hop").Count(value.T("a", "c")) != 1 {
		t.Fatalf("hop after: %v", e.Relation("hop"))
	}
}

func TestRecomputeRecursive(t *testing.T) {
	e := engine(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`, `link(a,b). link(b,c).`, eval.Set)
	if e.Relation("tc").Len() != 3 {
		t.Fatalf("tc: %v", e.Relation("tc"))
	}
	d := relation.New(2)
	d.Add(value.T("b", "c"), -1)
	ch, err := e.Apply(map[string]*relation.Relation{"link": d})
	if err != nil {
		t.Fatal(err)
	}
	if e.Relation("tc").Len() != 1 {
		t.Fatalf("tc after: %v", e.Relation("tc"))
	}
	if len(ch["tc"].Rows()) != 2 {
		t.Fatalf("Δtc: %v", ch["tc"])
	}
}

func TestRejectsOverDeletion(t *testing.T) {
	// Duplicate semantics: deleting more copies than stored errors.
	e := engine(t, `v(X) :- p(X).`, `p(a).`, eval.Duplicate)
	d := relation.New(1)
	d.Add(value.T("a"), -2)
	if _, err := e.Apply(map[string]*relation.Relation{"p": d}); err == nil {
		t.Fatal("over-deletion must error under duplicate semantics")
	}
	// Set semantics: multiplicities collapse — deleting a present tuple
	// twice is one deletion, but deleting an absent tuple errors.
	es := engine(t, `v(X) :- p(X).`, `p(a).`, eval.Set)
	if _, err := es.Apply(map[string]*relation.Relation{"p": d}); err != nil {
		t.Fatalf("set-semantics collapse: %v", err)
	}
	if es.Relation("v").Len() != 0 {
		t.Fatal("v empty after delete")
	}
	d2 := relation.New(1)
	d2.Add(value.T("zz"), -1)
	if _, err := es.Apply(map[string]*relation.Relation{"p": d2}); err == nil {
		t.Fatal("deleting an absent tuple must error under set semantics")
	}
}

func TestRejectsDerivedDelta(t *testing.T) {
	e := engine(t, `v(X) :- p(X).`, `p(a).`, eval.Set)
	d := relation.New(1)
	d.Add(value.T("a"), 1)
	if _, err := e.Apply(map[string]*relation.Relation{"v": d}); err == nil {
		t.Fatal("derived delta must error")
	}
}

func TestDiffReportsExactChanges(t *testing.T) {
	e := engine(t, `v(X) :- p(X), q(X).`, `p(a). p(b). q(a).`, eval.Set)
	d := relation.New(1)
	d.Add(value.T("b"), 1)
	ch, err := e.Apply(map[string]*relation.Relation{"q": d})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || ch["v"].Count(value.T("b")) != 1 || ch["v"].Len() != 1 {
		t.Fatalf("Δv: %v", ch)
	}
	// Unchanged views report nothing.
	d2 := relation.New(1)
	d2.Add(value.T("zzz"), 1)
	ch, err = e.Apply(map[string]*relation.Relation{"p": d2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatalf("expected no view change: %v", ch)
	}
}

// Package recompute is the non-incremental baseline: after every batch of
// base changes it re-evaluates the whole view program from scratch and
// diffs the result against the previous materialization. Section 1 of the
// paper notes this is occasionally the *better* strategy (e.g. when an
// entire base relation is deleted) — experiment E6 locates the crossover.
package recompute

import (
	"fmt"
	"time"

	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/relation"
	"ivm/internal/strata"
)

// Engine materializes a view program by full recomputation.
type Engine struct {
	prog  *datalog.Program
	strat *strata.Stratification
	sem   eval.Semantics
	db    *eval.DB

	// Parallelism is the worker count the per-Apply re-evaluations use
	// (<= 1 sequential). Set it before the first Apply.
	Parallelism int

	// Metrics, when non-nil, receives the recompute_* counters and
	// timings (and the eval_* series of the per-Apply re-evaluations).
	// Set it before the first Apply.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives per-Apply trace events. Set it
	// before the first Apply.
	Tracer metrics.Tracer

	// DisablePlanner turns off the cost-based join planner for the
	// per-Apply re-evaluations. Set it before the first Apply.
	DisablePlanner bool

	// planner caches join plans across Applies (created lazily on the
	// first Apply so Metrics/DisablePlanner can be set after New).
	planner *eval.Planner

	// lastDeltas holds, per predicate, the exact signed count delta the
	// most recent Apply committed into stored content (base merges plus
	// the old-vs-new diff of every changed view). Snapshot publication
	// replays these onto the previous published version.
	lastDeltas map[string]*relation.Relation
}

// CommittedDeltas returns, per predicate, the exact signed count delta
// the most recent Apply merged into its stored relation.
func (e *Engine) CommittedDeltas() map[string]*relation.Relation { return e.lastDeltas }

// New validates prog and computes the initial materialization.
func New(prog *datalog.Program, base *eval.DB, sem eval.Semantics) (*Engine, error) {
	if err := datalog.Validate(prog); err != nil {
		return nil, err
	}
	st, err := strata.Compute(prog)
	if err != nil {
		return nil, err
	}
	db := base.Clone()
	if sem == eval.Set {
		// Under set semantics base relations are sets.
		for _, pred := range db.Preds() {
			db.Put(pred, db.Get(pred).ToSet())
		}
	}
	ev := eval.NewEvaluator(prog, st, sem)
	if err := ev.Evaluate(db); err != nil {
		return nil, err
	}
	return &Engine{prog: prog, strat: st, sem: sem, db: db}, nil
}

// Program returns the view program.
func (e *Engine) Program() *datalog.Program { return e.prog }

// Relation returns the stored relation for pred, or nil.
func (e *Engine) Relation(pred string) *relation.Relation { return e.db.Get(pred) }

// DB exposes the engine's storage (read-only use).
func (e *Engine) DB() *eval.DB { return e.db }

// Apply merges the base changes and recomputes every view from scratch,
// returning the count delta of each derived relation (diff of old vs new).
func (e *Engine) Apply(baseDelta map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	timing := e.Tracer != nil || e.Metrics != nil
	var applyStart time.Time
	if timing {
		applyStart = time.Now()
	}
	if e.Tracer != nil {
		e.Tracer.BatchStart("recompute", len(baseDelta))
	}
	derived := e.prog.DerivedPreds()
	commit := make(map[string]*relation.Relation)
	for pred, d := range baseDelta {
		if derived[pred] {
			return nil, fmt.Errorf("recompute: delta for derived predicate %s", pred)
		}
		stored := e.db.Ensure(pred, d.Arity())
		if stored.Arity() >= 0 && d.Arity() >= 0 && stored.Arity() != d.Arity() {
			return nil, fmt.Errorf("recompute: delta for %s has arity %d, relation has arity %d", pred, d.Arity(), stored.Arity())
		}
		var verr error
		cd := d
		if e.sem == eval.Set {
			// Base relations are sets: collapse the delta to transitions.
			cd = relation.New(d.Arity())
			d.Each(func(row relation.Row) {
				if verr != nil {
					return
				}
				has := stored.Has(row.Tuple)
				switch {
				case row.Count > 0 && !has:
					cd.Add(row.Tuple, 1)
				case row.Count < 0:
					if !has {
						verr = fmt.Errorf("recompute: deletion of absent tuple %s%s", pred, row.Tuple)
						return
					}
					cd.Add(row.Tuple, -1)
				}
			})
		} else {
			d.Each(func(row relation.Row) {
				if verr == nil && stored.Count(row.Tuple)+row.Count < 0 {
					verr = fmt.Errorf("recompute: deletion of %s%s exceeds its stored count", pred, row.Tuple)
				}
			})
		}
		if verr != nil {
			return nil, verr
		}
		commit[pred] = cd
	}
	old := make(map[string]*relation.Relation)
	for pred := range derived {
		old[pred] = e.db.Get(pred)
	}
	for pred, d := range commit {
		e.db.Ensure(pred, d.Arity()).MergeDelta(d)
	}
	if !e.DisablePlanner && e.planner == nil {
		e.planner = eval.NewPlanner(e.Metrics)
	}
	ev := eval.NewEvaluator(e.prog, e.strat, e.sem)
	ev.Parallelism = e.Parallelism
	ev.Instr = eval.NewInstruments(e.Metrics)
	ev.Planner = e.planner
	if err := ev.Evaluate(e.db); err != nil {
		return nil, err
	}
	deltas := make(map[string]*relation.Relation)
	for pred := range derived {
		d := diff(old[pred], e.db.Get(pred))
		if !d.Empty() {
			deltas[pred] = d
		}
	}
	e.lastDeltas = make(map[string]*relation.Relation, len(commit)+len(deltas))
	for pred, cd := range commit {
		if !cd.Empty() {
			e.lastDeltas[pred] = cd
		}
	}
	for pred, d := range deltas {
		e.lastDeltas[pred] = d
	}
	if r := e.Metrics; r != nil {
		r.Counter("recompute_applies_total").Inc()
	}
	if timing {
		d := time.Since(applyStart)
		if r := e.Metrics; r != nil {
			r.Histogram("recompute_apply_seconds").Observe(d)
		}
		if e.Tracer != nil {
			e.Tracer.BatchDone(d, len(deltas))
		}
	}
	return deltas, nil
}

// diff returns new − old as a signed count delta.
func diff(old, new *relation.Relation) *relation.Relation {
	out := relation.New(new.Arity())
	new.Each(func(row relation.Row) {
		if c := row.Count - old.Count(row.Tuple); c != 0 {
			out.Add(row.Tuple, c)
		}
	})
	old.Each(func(row relation.Row) {
		if new.Count(row.Tuple) == 0 {
			out.Add(row.Tuple, -row.Count)
		}
	})
	return out
}

// Semantics returns the engine's semantics.
func (e *Engine) Semantics() eval.Semantics { return e.sem }

// Package pf is a faithful-in-spirit baseline for the Propagation/
// Filtration family of recursive maintenance algorithms ([HD92], see the
// paper's Section 2): instead of propagating all base changes together,
// stratum by stratum, it computes the changes to the derived predicates
// one base predicate at a time (optionally one *tuple* at a time),
// re-attempting rederivation of deleted tuples on every pass. The paper
// argues this fragmentation "can rederive changed and deleted tuples
// again and again, and can be worse than our rederivation algorithm by an
// order of magnitude" — experiment E9 measures exactly that gap against
// DRed.
package pf

import (
	"sort"

	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/relation"
)

// Stats aggregates the work across all fragmented passes.
type Stats struct {
	// Passes counts the independent propagation passes performed.
	Passes int
	// Overestimated/Rederived/Inserted/RuleFirings sum the per-pass DRed
	// step counters; the repeated rederivation work is what separates PF
	// from a single DRed pass.
	Overestimated int
	Rederived     int
	Inserted      int
	RuleFirings   int
}

// Engine maintains views by per-base-predicate (or per-tuple) change
// propagation.
type Engine struct {
	d *dred.Engine

	// FragmentTuples, when set, propagates every changed tuple in its own
	// pass — the finest-grained (and most wasteful) PF schedule.
	FragmentTuples bool

	// LastStats reports the accumulated work of the most recent Apply.
	LastStats Stats
}

// New materializes prog over base (set semantics).
func New(prog *datalog.Program, base *eval.DB) (*Engine, error) {
	d, err := dred.New(prog, base)
	if err != nil {
		return nil, err
	}
	return &Engine{d: d}, nil
}

// Program returns the view program.
func (e *Engine) Program() *datalog.Program { return e.d.Program() }

// Relation returns the stored relation for pred, or nil.
func (e *Engine) Relation(pred string) *relation.Relation { return e.d.Relation(pred) }

// DB exposes the underlying storage (read-only use).
func (e *Engine) DB() *eval.DB { return e.d.DB() }

// Apply propagates the batch fragmented into one pass per base predicate
// (or per tuple with FragmentTuples), accumulating the net changes.
func (e *Engine) Apply(baseDelta map[string]*relation.Relation) (*dred.Changes, error) {
	e.LastStats = Stats{}
	preds := make([]string, 0, len(baseDelta))
	for p := range baseDelta {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	net := make(map[string]*relation.Relation)
	fold := func(ch *dred.Changes) {
		for pred, d := range ch.Del {
			n, ok := net[pred]
			if !ok {
				n = relation.New(d.Arity())
				net[pred] = n
			}
			n.MergeDelta(d.Negate())
		}
		for pred, a := range ch.Add {
			n, ok := net[pred]
			if !ok {
				n = relation.New(a.Arity())
				net[pred] = n
			}
			n.MergeDelta(a)
		}
	}
	pass := func(delta map[string]*relation.Relation) error {
		ch, err := e.d.Apply(delta)
		if err != nil {
			return err
		}
		st := e.d.LastStats
		e.LastStats.Passes++
		e.LastStats.Overestimated += st.Overestimated
		e.LastStats.Rederived += st.Rederived
		e.LastStats.Inserted += st.Inserted
		e.LastStats.RuleFirings += st.RuleFirings
		fold(ch)
		return nil
	}

	for _, pred := range preds {
		d := baseDelta[pred]
		if e.FragmentTuples {
			// Deletions first, then insertions, one tuple per pass.
			var rows []relation.Row
			d.Each(func(row relation.Row) { rows = append(rows, row) })
			sort.Slice(rows, func(i, j int) bool {
				if (rows[i].Count < 0) != (rows[j].Count < 0) {
					return rows[i].Count < 0
				}
				return rows[i].Tuple.Compare(rows[j].Tuple) < 0
			})
			for _, row := range rows {
				one := relation.New(d.Arity())
				one.Add(row.Tuple, row.Count)
				if err := pass(map[string]*relation.Relation{pred: one}); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := pass(map[string]*relation.Relation{pred: d}); err != nil {
			return nil, err
		}
	}

	out := &dred.Changes{
		Del: make(map[string]*relation.Relation),
		Add: make(map[string]*relation.Relation),
	}
	for pred, n := range net {
		if d := negSide(n); !d.Empty() {
			out.Del[pred] = d
		}
		if a := posSide(n); !a.Empty() {
			out.Add[pred] = a
		}
	}
	return out, nil
}

func negSide(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count < 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

func posSide(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count > 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

// Package pf is a faithful-in-spirit baseline for the Propagation/
// Filtration family of recursive maintenance algorithms ([HD92], see the
// paper's Section 2): instead of propagating all base changes together,
// stratum by stratum, it computes the changes to the derived predicates
// one base predicate at a time (optionally one *tuple* at a time),
// re-attempting rederivation of deleted tuples on every pass. The paper
// argues this fragmentation "can rederive changed and deleted tuples
// again and again, and can be worse than our rederivation algorithm by an
// order of magnitude" — experiment E9 measures exactly that gap against
// DRed.
package pf

import (
	"sort"
	"time"

	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/relation"
)

// Stats aggregates the work across all fragmented passes.
type Stats struct {
	// Passes counts the independent propagation passes performed.
	Passes int
	// Overestimated/Rederived/Inserted/RuleFirings sum the per-pass DRed
	// step counters; the repeated rederivation work is what separates PF
	// from a single DRed pass.
	Overestimated int
	Rederived     int
	Inserted      int
	RuleFirings   int
}

// Config carries the engine's observability hooks.
type Config struct {
	// Metrics, when non-nil, receives the pf_* counters and timings. The
	// inner DRed engine is left unobserved so its per-pass work is not
	// double-counted: the pf_* series already aggregates it.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives per-Apply trace events.
	Tracer metrics.Tracer
	// DisablePlanner turns off the inner engine's cost-based join
	// planner; delta rules then use the static greedy literal order.
	DisablePlanner bool
}

// Engine maintains views by per-base-predicate (or per-tuple) change
// propagation.
type Engine struct {
	d *dred.Engine

	// FragmentTuples, when set, propagates every changed tuple in its own
	// pass — the finest-grained (and most wasteful) PF schedule.
	FragmentTuples bool

	// last holds the accumulated work counters of the most recent Apply,
	// read via Stats(). Callers sharing the engine across goroutines must
	// serialize Apply against Stats (ivm.Views does so under its RWMutex).
	last Stats

	// lastDeltas accumulates, per predicate, the exact signed deltas the
	// most recent Apply's passes committed into stored content. Snapshot
	// publication replays these onto the previous published version.
	lastDeltas map[string]*relation.Relation

	// tracer and the resolved metric instruments; all nil-safe.
	tracer        metrics.Tracer
	mApplies      *metrics.Counter
	mPasses       *metrics.Counter
	mOverest      *metrics.Counter
	mRederived    *metrics.Counter
	mInserted     *metrics.Counter
	mRuleFirings  *metrics.Counter
	mApplySeconds *metrics.Histogram
}

// Stats returns the accumulated work counters of the most recent Apply.
func (e *Engine) Stats() Stats { return e.last }

// CommittedDeltas returns, per predicate, the exact signed count delta
// the most recent Apply merged into its stored relation, summed across
// all fragmented passes.
func (e *Engine) CommittedDeltas() map[string]*relation.Relation { return e.lastDeltas }

// New materializes prog over base (set semantics).
func New(prog *datalog.Program, base *eval.DB) (*Engine, error) {
	return NewWithConfig(prog, base, Config{})
}

// NewWithConfig is New with observability hooks.
func NewWithConfig(prog *datalog.Program, base *eval.DB, cfg Config) (*Engine, error) {
	d, err := dred.NewWithConfig(prog, base, dred.Config{DisablePlanner: cfg.DisablePlanner})
	if err != nil {
		return nil, err
	}
	e := &Engine{d: d, tracer: cfg.Tracer}
	if r := cfg.Metrics; r != nil {
		e.mApplies = r.Counter("pf_applies_total")
		e.mPasses = r.Counter("pf_passes_total")
		e.mOverest = r.Counter("pf_overestimated_total")
		e.mRederived = r.Counter("pf_rederived_total")
		e.mInserted = r.Counter("pf_inserted_total")
		e.mRuleFirings = r.Counter("pf_rule_firings_total")
		e.mApplySeconds = r.Histogram("pf_apply_seconds")
	}
	return e, nil
}

// Program returns the view program.
func (e *Engine) Program() *datalog.Program { return e.d.Program() }

// Relation returns the stored relation for pred, or nil.
func (e *Engine) Relation(pred string) *relation.Relation { return e.d.Relation(pred) }

// DB exposes the underlying storage (read-only use).
func (e *Engine) DB() *eval.DB { return e.d.DB() }

// Apply propagates the batch fragmented into one pass per base predicate
// (or per tuple with FragmentTuples), accumulating the net changes.
func (e *Engine) Apply(baseDelta map[string]*relation.Relation) (*dred.Changes, error) {
	e.last = Stats{}
	timing := e.tracer != nil || e.mApplySeconds != nil
	var applyStart time.Time
	if timing {
		applyStart = time.Now()
	}
	if e.tracer != nil {
		e.tracer.BatchStart("pf", len(baseDelta))
	}
	preds := make([]string, 0, len(baseDelta))
	for p := range baseDelta {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	net := make(map[string]*relation.Relation)
	fold := func(ch *dred.Changes) {
		for pred, d := range ch.Del {
			n, ok := net[pred]
			if !ok {
				n = relation.New(d.Arity())
				net[pred] = n
			}
			n.MergeDelta(d.Negate())
		}
		for pred, a := range ch.Add {
			n, ok := net[pred]
			if !ok {
				n = relation.New(a.Arity())
				net[pred] = n
			}
			n.MergeDelta(a)
		}
	}
	committed := make(map[string]*relation.Relation)
	pass := func(delta map[string]*relation.Relation) error {
		ch, err := e.d.Apply(delta)
		if err != nil {
			return err
		}
		st := e.d.Stats()
		e.last.Passes++
		e.last.Overestimated += st.Overestimated
		e.last.Rederived += st.Rederived
		e.last.Inserted += st.Inserted
		e.last.RuleFirings += st.RuleFirings
		// Base transitions are in the inner engine's committed net but
		// not in its visible Changes, so fold the former for snapshots.
		for pred, n := range e.d.CommittedDeltas() {
			acc, ok := committed[pred]
			if !ok {
				acc = relation.New(n.Arity())
				committed[pred] = acc
			}
			acc.MergeDelta(n)
		}
		fold(ch)
		return nil
	}

	for _, pred := range preds {
		d := baseDelta[pred]
		if e.FragmentTuples {
			// Deletions first, then insertions, one tuple per pass.
			var rows []relation.Row
			d.Each(func(row relation.Row) { rows = append(rows, row) })
			sort.Slice(rows, func(i, j int) bool {
				if (rows[i].Count < 0) != (rows[j].Count < 0) {
					return rows[i].Count < 0
				}
				return rows[i].Tuple.Compare(rows[j].Tuple) < 0
			})
			for _, row := range rows {
				one := relation.New(d.Arity())
				one.Add(row.Tuple, row.Count)
				if err := pass(map[string]*relation.Relation{pred: one}); err != nil {
					return nil, err
				}
			}
			continue
		}
		if err := pass(map[string]*relation.Relation{pred: d}); err != nil {
			return nil, err
		}
	}

	e.lastDeltas = make(map[string]*relation.Relation, len(committed))
	for pred, acc := range committed {
		if !acc.Empty() {
			e.lastDeltas[pred] = acc
		}
	}
	out := &dred.Changes{
		Del: make(map[string]*relation.Relation),
		Add: make(map[string]*relation.Relation),
	}
	for pred, n := range net {
		if d := negSide(n); !d.Empty() {
			out.Del[pred] = d
		}
		if a := posSide(n); !a.Empty() {
			out.Add[pred] = a
		}
	}
	e.mApplies.Inc()
	e.mPasses.Add(int64(e.last.Passes))
	e.mOverest.Add(int64(e.last.Overestimated))
	e.mRederived.Add(int64(e.last.Rederived))
	e.mInserted.Add(int64(e.last.Inserted))
	e.mRuleFirings.Add(int64(e.last.RuleFirings))
	if timing {
		d := time.Since(applyStart)
		e.mApplySeconds.Observe(d)
		if e.tracer != nil {
			e.tracer.BatchDone(d, len(out.Del)+len(out.Add))
		}
	}
	return out, nil
}

func negSide(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count < 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

func posSide(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Arity())
	r.Each(func(row relation.Row) {
		if row.Count > 0 {
			out.Add(row.Tuple, 1)
		}
	})
	return out
}

package pf

import (
	"math/rand"
	"testing"

	"ivm/internal/core/dred"
	"ivm/internal/eval"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/workload"
)

func load(t *testing.T, src string) *eval.DB {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	db := eval.NewDB()
	for _, f := range facts {
		db.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return db
}

func engine(t *testing.T, progSrc, facts string) *Engine {
	t.Helper()
	prog, err := parser.ParseRules(progSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(prog, load(t, facts))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

const tcProgram = `
	tc(X,Y) :- link(X,Y).
	tc(X,Y) :- tc(X,Z), link(Z,Y).
`

func TestPFMatchesDRedResults(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := eval.NewDB()
	base.Put("link", workload.GridGraph(3, 3))
	prog, err := parser.ParseRules(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	p.FragmentTuples = true
	d, err := dred.New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		batch := workload.Mixed(rng, d.Relation("link"), 9, 2, 2)
		if batch.Empty() {
			continue
		}
		dm := map[string]*relation.Relation{"link": batch}
		if _, err := p.Apply(dm); err != nil {
			t.Fatalf("pf round %d: %v", round, err)
		}
		if _, err := d.Apply(dm); err != nil {
			t.Fatalf("dred round %d: %v", round, err)
		}
		if !relation.EqualAsSets(p.Relation("tc"), d.Relation("tc")) {
			t.Fatalf("round %d: tc diverges\npf:   %v\ndred: %v", round, p.Relation("tc"), d.Relation("tc"))
		}
	}
}

func TestPFFragmentsWork(t *testing.T) {
	// The same batch costs PF strictly more rule firings than one DRed
	// pass — the paper's fragmentation critique, measured.
	base := eval.NewDB()
	base.Put("link", workload.ChainGraph(30))
	prog, err := parser.ParseRules(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	p.FragmentTuples = true
	d, err := dred.New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := workload.SampleDeletes(rng, base.Get("link"), 5)
	dm := map[string]*relation.Relation{"link": batch}
	if _, err := p.Apply(dm); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(dm); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Passes != 5 {
		t.Fatalf("passes = %d, want 5", p.Stats().Passes)
	}
	if p.Stats().RuleFirings <= d.Stats().RuleFirings {
		t.Fatalf("PF should do more work: pf=%d dred=%d",
			p.Stats().RuleFirings, d.Stats().RuleFirings)
	}
}

func TestPFChangeSetsMergeAcrossPasses(t *testing.T) {
	// A tuple deleted in one pass and restored in a later pass must not
	// appear in the merged changes.
	e := engine(t, tcProgram, `link(a,b). link(a,c). link(c,b).`)
	batch := relation.New(2)
	// Delete a→b (tc(a,b) survives via c); also delete c→b then re-check:
	// single batch fragmented per-tuple.
	batchFacts, err := parser.ParseDelta(`-link(a,b).`)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range batchFacts {
		batch.Add(f.Tuple, f.Count)
	}
	e.FragmentTuples = true
	ch, err := e.Apply(map[string]*relation.Relation{"link": batch})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Del["tc"] != nil {
		t.Fatalf("tc unchanged as a set, but Del=%v", ch.Del["tc"])
	}
}

package eval

import "ivm/internal/metrics"

// Instruments bundles the low-level evaluation instruments an engine
// resolves once from its metrics registry and threads through rule
// evaluation. All instruments are atomic, so workers of a parallel
// batch update them directly. A nil *Instruments disables collection
// entirely (one nil check per evaluation, none per probe).
type Instruments struct {
	// JoinProbes counts keyed relation accesses performed by joins: one
	// per point lookup, index lookup, or negation filter check.
	JoinProbes *metrics.Counter
	// JoinScans counts full-relation enumerations of join-mode literals
	// (no usable bound column). Kept separate from JoinProbes so the
	// planner's cost feedback distinguishes keyed accesses from scans.
	JoinScans *metrics.Counter
	// PartitionedJoins counts single-rule evaluations that were hash-
	// partitioned across workers.
	PartitionedJoins *metrics.Counter
	// BatchTasks counts rule-evaluation tasks submitted to RunBatch.
	BatchTasks *metrics.Counter
	// TaskBusy observes per-task evaluation wall time (worker busy time).
	TaskBusy *metrics.Histogram
	// QueueWait observes, per task, the time between batch submission
	// and a worker picking the task up.
	QueueWait *metrics.Histogram
}

// NewInstruments resolves the evaluation instruments from r. A nil
// registry yields nil (collection disabled).
func NewInstruments(r *metrics.Registry) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		JoinProbes:       r.Counter("eval_join_probes_total"),
		JoinScans:        r.Counter("eval_join_scans_total"),
		PartitionedJoins: r.Counter("eval_partitioned_joins_total"),
		BatchTasks:       r.Counter("eval_batch_tasks_total"),
		TaskBusy:         r.Histogram("eval_task_seconds"),
		QueueWait:        r.Histogram("eval_queue_wait_seconds"),
	}
}

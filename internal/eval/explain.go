package eval

import (
	"ivm/internal/datalog"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// GroundSubgoal is one instantiated body literal of a derivation: the
// subgoal's predicate (or GROUPBY image), the matched tuple, and how the
// literal participated.
type GroundSubgoal struct {
	Pred      string
	Tuple     value.Tuple
	Negated   bool // satisfied because the tuple is absent
	Aggregate bool // a GROUPBY image tuple (groupVals..., result)
	Count     int64
}

// Explain enumerates the instantiations of rule's body that derive the
// ground head tuple, one slice of ground subgoals per derivation — the
// derivations the counting algorithm counts but does not store ("we store
// only the number of derivations, not the derivations themselves",
// Section 1). srcs supplies the relation for each body literal exactly as
// for EvalRule.
func Explain(rule datalog.Rule, srcs []Source, head value.Tuple) ([][]GroundSubgoal, error) {
	if len(head) != len(rule.Head.Args) {
		return nil, nil
	}
	b := newBinding()
	simple := true
	for _, a := range rule.Head.Args {
		if _, ok := a.(datalog.Arith); ok {
			simple = false
			break
		}
	}
	var undo []string
	if simple {
		ok, bound := matchPattern(rule.Head.Args, head, b)
		if !ok {
			return nil, nil
		}
		undo = bound
	}
	defer undoBind(b, undo)

	order, err := orderLiterals(rule, srcs, -1)
	if err != nil {
		return nil, err
	}

	var out [][]GroundSubgoal
	trail := make([]GroundSubgoal, 0, len(rule.Body))
	var walk func(step int) error
	walk = func(step int) error {
		if step == len(order) {
			if !simple {
				// Expression heads: compute and compare.
				got, err := groundAtom(rule.Head.Args, b)
				if err != nil {
					return err
				}
				if !got.Equal(head) {
					return nil
				}
			}
			out = append(out, append([]GroundSubgoal(nil), trail...))
			return nil
		}
		idx := order[step]
		lit := rule.Body[idx]
		src := srcs[idx]

		switch {
		case lit.Kind == datalog.LitCondition:
			l, err := evalTerm(lit.Cond.Left, b)
			if err != nil {
				return err
			}
			r, err := evalTerm(lit.Cond.Right, b)
			if err != nil {
				return err
			}
			if lit.Cond.Op.Eval(l, r) {
				return walk(step + 1)
			}
			return nil

		case lit.Kind == datalog.LitNegated && !src.JoinDelta:
			t, err := groundAtom(lit.Atom.Args, b)
			if err != nil {
				return err
			}
			if src.Rel.Has(t) {
				return nil
			}
			trail = append(trail, GroundSubgoal{Pred: lit.Atom.Pred, Tuple: t, Negated: true, Count: 1})
			err = walk(step + 1)
			trail = trail[:len(trail)-1]
			return err

		default:
			args := joinArgs(lit)
			return joinLiteral(args, src.Rel, b, func(count int64) error {
				t, err := groundAtom(args, b)
				if err != nil {
					return err
				}
				trail = append(trail, GroundSubgoal{
					Pred:      lit.Pred(),
					Tuple:     t,
					Aggregate: lit.Kind == datalog.LitAggregate,
					Count:     count,
				})
				err = walk(step + 1)
				trail = trail[:len(trail)-1]
				return err
			}, nil)
		}
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

// SourcesAt resolves every literal of rule against db's current state,
// building group tables on demand from gts (creating and caching any that
// are missing). It is the common "current state" resolver engines use for
// explanation queries.
func SourcesAt(rule datalog.Rule, ri int, db *DB, sem Semantics, gts map[RuleLit]*GroupTable) ([]Source, error) {
	srcs := make([]Source, len(rule.Body))
	for li, lit := range rule.Body {
		switch lit.Kind {
		case datalog.LitPositive, datalog.LitNegated:
			var r relation.Reader = db.rel(lit.Atom.Pred)
			if sem == Set {
				r = relation.SetImage(r)
			}
			srcs[li] = Source{Rel: r}
		case datalog.LitAggregate:
			key := RuleLit{Rule: ri, Lit: li}
			gt, ok := gts[key]
			if !ok {
				var inner relation.Reader = db.rel(lit.Agg.Inner.Pred)
				if sem == Set {
					inner = relation.SetImage(inner)
				}
				var err error
				gt, err = BuildGroupTable(lit.Agg, inner)
				if err != nil {
					return nil, err
				}
				if gts != nil {
					gts[key] = gt
				}
			}
			srcs[li] = Source{Rel: gt.Rel()}
		case datalog.LitCondition:
		}
	}
	return srcs, nil
}

package eval

import (
	"fmt"
	"testing"

	"ivm/internal/relation"
	"ivm/internal/value"
)

// chainDB builds a link relation big enough to cross minPartitionRows so
// the partitioned path actually engages.
func chainDB(t testing.TB, n int) *DB {
	t.Helper()
	db := NewDB()
	link := db.Ensure("link", 2)
	for i := 0; i < n; i++ {
		link.Add(value.T(fmt.Sprintf("n%d", i%40), fmt.Sprintf("n%d", (i*7+3)%40)), int64(1+i%2))
	}
	return db
}

// TestParallelEvaluateMatchesSequential: full materialization with a
// worker pool must be tuple- and count-identical to sequential, across
// flat joins, negation, aggregation, and recursion.
func TestParallelEvaluateMatchesSequential(t *testing.T) {
	programs := []string{
		`hop(X,Y) :- link(X,Z), link(Z,Y).
		 tri(X,Y) :- hop(X,Z), link(Z,Y).`,
		`hop(X,Y) :- link(X,Z), link(Z,Y).
		 only(X,Y) :- link(X,Y), !hop(X,Y).`,
		`deg(X,C) :- groupby(link(X,Y), [X], C = count(Y)).
		 busy(X) :- deg(X,C), C > 2.`,
		`path(X,Y) :- link(X,Y).
		 path(X,Y) :- path(X,Z), link(Z,Y).`,
	}
	for pi, src := range programs {
		for _, workers := range []int{2, 4, 8} {
			prog, st := parseProgram(t, src)
			db1 := chainDB(t, 300)
			seq := NewEvaluator(prog, st, Set)
			if err := seq.Evaluate(db1); err != nil {
				t.Fatalf("prog %d seq: %v", pi, err)
			}

			prog2, st2 := parseProgram(t, src)
			db2 := chainDB(t, 300)
			par := NewEvaluator(prog2, st2, Set)
			par.Parallelism = workers
			if err := par.Evaluate(db2); err != nil {
				t.Fatalf("prog %d workers=%d: %v", pi, workers, err)
			}

			for pred := range prog.DerivedPreds() {
				if !relation.Equal(db1.rel(pred), db2.rel(pred)) {
					t.Fatalf("prog %d workers=%d: %s diverges\nseq %s\npar %s",
						pi, workers, pred, db1.rel(pred), db2.rel(pred))
				}
			}
		}
	}
}

// TestParallelDuplicateSemantics: derivation counts (not just tuple sets)
// must survive the partition/merge round trip.
func TestParallelDuplicateSemantics(t *testing.T) {
	src := `hop(X,Y) :- link(X,Z), link(Z,Y).`
	prog, st := parseProgram(t, src)
	db1 := chainDB(t, 300)
	seq := NewEvaluator(prog, st, Duplicate)
	if err := seq.Evaluate(db1); err != nil {
		t.Fatal(err)
	}
	prog2, st2 := parseProgram(t, src)
	db2 := chainDB(t, 300)
	par := NewEvaluator(prog2, st2, Duplicate)
	par.Parallelism = 4
	if err := par.Evaluate(db2); err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(db1.rel("hop"), db2.rel("hop")) {
		t.Fatalf("duplicate counts diverge:\nseq %s\npar %s", db1.rel("hop"), db2.rel("hop"))
	}
}

// TestEvalRuleParallelMatchesSequential exercises the intra-rule
// partitioned path directly against plain EvalRule.
func TestEvalRuleParallelMatchesSequential(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := relation.New(2)
	for i := 0; i < 500; i++ {
		link.Add(value.T(fmt.Sprintf("n%d", i%60), fmt.Sprintf("n%d", (i*11+5)%60)), int64(1+i%3))
	}
	srcs := []Source{{Rel: link}, {Rel: link}}

	want := relation.New(2)
	if err := EvalRule(prog.Rules[0], srcs, -1, want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := relation.New(2)
		if err := EvalRuleParallel(prog.Rules[0], srcs, -1, got, workers); err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("workers=%d: partitioned eval diverges\nwant %s\ngot  %s", workers, want, got)
		}
	}
}

// TestRunBatchErrorDeterministic: the first error in task order wins,
// regardless of scheduling.
func TestRunBatchErrorDeterministic(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	// A source-count mismatch makes EvalRule return an error.
	mk := func(broken bool) Task {
		srcs := []Source{{Rel: link}, {Rel: link}}
		if broken {
			srcs = srcs[:1]
		}
		return Task{Rule: prog.Rules[0], Srcs: srcs, FirstLit: -1, Out: relation.New(2)}
	}
	tasks := []Task{mk(false), mk(true), mk(true)}
	err4 := RunBatch(tasks, 4)
	err1 := RunBatch([]Task{mk(false), mk(true), mk(true)}, 1)
	if (err4 == nil) != (err1 == nil) {
		t.Fatalf("parallel err %v, sequential err %v", err4, err1)
	}
	if err4 != nil && err1 != nil && err4.Error() != err1.Error() {
		t.Fatalf("parallel err %q, sequential err %q", err4, err1)
	}
}

// TestWorkers pins the resolution rule: >=1 passes through, else auto.
func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatalf("Workers(3) = %d", Workers(3))
	}
	if Workers(1) != 1 {
		t.Fatalf("Workers(1) = %d", Workers(1))
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatalf("auto workers must be >= 1")
	}
}

package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ivm/internal/datalog"
	"ivm/internal/relation"
)

// Parallel rule evaluation.
//
// The delta rules of a stratum (and the rules of a nonrecursive stratum,
// and each round of a semi-naive fixpoint) are independent: they read
// shared relations and write disjoint outputs. RunBatch evaluates such a
// batch across a worker pool; EvalRuleParallel additionally splits one
// rule's work by hash-partitioning a join literal's relation across
// workers, each writing a private shard that is ⊎-merged deterministically
// afterwards. Both paths produce relations identical to sequential
// evaluation: ⊎ adds counts, counts are commutative, and every derivation
// is produced exactly once because the partitions of the chosen literal
// are disjoint and each derivation uses exactly one row of it.
//
// Readers shared between workers are never mutated during a batch; the
// only internal write a read can trigger — a lazy index build inside
// relation.Lookup — is synchronized by the relation package.

// Workers resolves a parallelism setting to a worker count: n >= 1 is
// used as-is, anything else (0 = "auto") means one worker per available
// CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// minPartitionRows gates hash-partitioned single-rule evaluation: below
// this size the scheduling and merge overhead dominates any win.
const minPartitionRows = 64

// Task is one independent rule evaluation of a batch, equivalent to
// EvalRule(Rule, Srcs, FirstLit, Out). Out must be private to the task
// until the batch completes.
type Task struct {
	Rule     datalog.Rule
	Srcs     []Source
	FirstLit int
	Out      *relation.Relation
	// Plan, when non-nil, is the cached cost-based plan to follow;
	// nil tasks evaluate with the greedy order.
	Plan *Plan
}

// RunBatch evaluates a batch of independent rule evaluations with up to
// `workers` goroutines, without instrumentation.
func RunBatch(tasks []Task, workers int) error {
	return RunBatchInstr(tasks, workers, nil)
}

// RunBatchInstr is RunBatch with instrumentation: task counts, per-task
// busy time, and queue wait are recorded into in when non-nil. With
// workers <= 1 the batch runs sequentially. When the batch has fewer
// tasks than workers, the surplus workers are spent partitioning
// individual tasks. The first error in task order is returned
// (deterministically, regardless of scheduling).
func RunBatchInstr(tasks []Task, workers int, in *Instruments) error {
	if len(tasks) == 0 {
		return nil
	}
	if in != nil {
		in.BatchTasks.Add(int64(len(tasks)))
	}
	var submitted time.Time
	if in != nil {
		submitted = time.Now()
	}
	// timed wraps one task evaluation with queue-wait and busy-time
	// observation; with in == nil it is a plain call.
	timed := func(i int, eval func(t *Task) error) error {
		t := &tasks[i]
		if in == nil {
			return eval(t)
		}
		start := time.Now()
		in.QueueWait.Observe(start.Sub(submitted))
		err := eval(t)
		in.TaskBusy.Observe(time.Since(start))
		return err
	}
	if workers <= 1 {
		for i := range tasks {
			if err := timed(i, func(t *Task) error {
				return EvalRulePlanInstr(t.Rule, t.Srcs, t.FirstLit, t.Plan, t.Out, in)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(tasks))
	if len(tasks) < workers {
		// Few big tasks: run them concurrently and give each a share of
		// the surplus workers for intra-rule partitioning.
		per := workers / len(tasks)
		var wg sync.WaitGroup
		for i := range tasks {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = timed(i, func(t *Task) error {
					return evalRuleParallel(t.Rule, t.Srcs, t.FirstLit, t.Plan, t.Out, per, in)
				})
			}(i)
		}
		wg.Wait()
	} else {
		// Many tasks: a plain pool, one task at a time per worker.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					errs[i] = timed(i, func(t *Task) error {
						return EvalRulePlanInstr(t.Rule, t.Srcs, t.FirstLit, t.Plan, t.Out, in)
					})
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EvalRuleParallel is EvalRule with the join work of one literal hash-
// partitioned across `workers` goroutines. Each worker evaluates the rule
// with that literal's relation restricted to its partition, writing a
// private shard; the shards are ⊎-merged into out in sorted key order.
// Falls back to sequential EvalRule when no literal is worth splitting.
func EvalRuleParallel(rule datalog.Rule, srcs []Source, firstLit int, out *relation.Relation, workers int) error {
	return evalRuleParallel(rule, srcs, firstLit, nil, out, workers, nil)
}

func evalRuleParallel(rule datalog.Rule, srcs []Source, firstLit int, plan *Plan, out *relation.Relation, workers int, in *Instruments) error {
	pl := -1
	if workers > 1 {
		pl = pickPartitionLit(rule, srcs, firstLit)
	}
	if pl < 0 {
		return EvalRulePlanInstr(rule, srcs, firstLit, plan, out, in)
	}
	if in != nil {
		in.PartitionedJoins.Inc()
	}
	sh := relation.NewShards(len(rule.Head.Args), workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := make([]Source, len(srcs))
			copy(ps, srcs)
			ps[pl].Rel = relation.PartitionView(srcs[pl].Rel, w, workers)
			// The plan stays valid under partition substitution: only one
			// source's contents shrink, the order and access paths hold.
			errs[w] = EvalRulePlanInstr(rule, ps, firstLit, plan, sh.Shard(w), in)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sh.MergeInto(out)
	return nil
}

// pickPartitionLit chooses the body literal whose relation to split:
// the designated first literal when it is join-mode and large enough
// (splitting the leading scan divides the whole walk), otherwise the
// largest join-mode literal. Returns -1 when nothing reaches
// minPartitionRows — correctness only requires the partitioned literal
// to be consumed in join mode (exactly one row per derivation), which
// positive, Δ-negated, and aggregate literals all are.
func pickPartitionLit(rule datalog.Rule, srcs []Source, firstLit int) int {
	joinMode := func(i int) bool {
		lit := rule.Body[i]
		switch lit.Kind {
		case datalog.LitPositive, datalog.LitAggregate:
			return srcs[i].Rel != nil
		case datalog.LitNegated:
			return srcs[i].JoinDelta && srcs[i].Rel != nil
		}
		return false
	}
	if firstLit >= 0 && firstLit < len(rule.Body) && joinMode(firstLit) &&
		srcs[firstLit].Rel.Len() >= minPartitionRows {
		return firstLit
	}
	best, bestLen := -1, minPartitionRows-1
	for i := range rule.Body {
		if !joinMode(i) {
			continue
		}
		if l := srcs[i].Rel.Len(); l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

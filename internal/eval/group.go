package eval

import (
	"fmt"

	"ivm/internal/agg"
	"ivm/internal/datalog"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// GroupTable materializes one GROUPBY subgoal: the relation T over
// (groupVars..., result) with one tuple per non-empty group, plus the
// per-group incremental aggregate state needed to run Algorithm 6.1.
// A group whose aggregate cannot be updated incrementally (MIN/MAX losing
// their extremum) is rebuilt by rescanning the grouped relation restricted
// to that group — the paper's fallback for non-incrementally-computable
// cases.
type GroupTable struct {
	g         *datalog.Aggregate
	groupCols []int // position of each grouping var in the inner atom (first occurrence)
	groups    map[string]*groupEntry
	rel       *relation.Relation // committed T
	// undo holds pre-ApplyDelta snapshots of touched groups until Commit
	// or Rollback resolves the pending delta.
	undo map[string]undoEntry
}

type groupEntry struct {
	groupVals value.Tuple
	state     agg.State
	cur       value.Tuple // current T tuple (nil if group empty)
}

// undoEntry snapshots one group before an uncommitted ApplyDelta touched
// it, so Rollback can restore the table if maintenance aborts.
type undoEntry struct {
	existed   bool
	groupVals value.Tuple
	state     agg.State
	cur       value.Tuple
}

// BuildGroupTable computes the GROUPBY relation for g over u.
func BuildGroupTable(g *datalog.Aggregate, u relation.Reader) (*GroupTable, error) {
	cols, err := groupColumns(g)
	if err != nil {
		return nil, err
	}
	t := &GroupTable{
		g:         g,
		groupCols: cols,
		groups:    make(map[string]*groupEntry),
		rel:       relation.New(len(g.GroupBy) + 1),
	}
	var ferr error
	u.Each(func(row relation.Row) {
		if ferr != nil {
			return
		}
		ferr = t.fold(row)
	})
	if ferr != nil {
		return nil, ferr
	}
	// Materialize T.
	for _, e := range t.groups {
		if v, ok := e.state.Result(); ok {
			e.cur = append(e.groupVals.Clone(), v)
			t.rel.Add(e.cur, 1)
		}
	}
	t.dropEmpty()
	return t, nil
}

// Rel returns the committed T relation. Callers must treat it as
// read-only; it advances only through Commit.
func (t *GroupTable) Rel() *relation.Relation { return t.rel }

// Agg returns the subgoal this table materializes.
func (t *GroupTable) Agg() *datalog.Aggregate { return t.g }

// fold routes one grouped-relation row into its group's state: positive
// counts Add, negative counts Remove. A group whose state can no longer
// answer exactly is marked for rescan (state == nil) and further rows for
// it are ignored until the rescan rebuilds it.
func (t *GroupTable) fold(row relation.Row) error {
	gv, av, ok, err := t.match(row.Tuple)
	if err != nil || !ok {
		return err
	}
	e := t.entry(gv)
	if e.state == nil {
		return nil // pending rescan; the rescan sees the full new relation
	}
	if row.Count > 0 {
		return e.state.Add(av, row.Count)
	}
	if row.Count < 0 {
		rescan, err := e.state.Remove(av, -row.Count)
		if err != nil {
			return err
		}
		if rescan {
			e.state = nil // rebuild from the grouped relation later
		}
	}
	return nil
}

// match checks row against the inner atom pattern; on success it returns
// the grouping values and the aggregated expression's value.
func (t *GroupTable) match(tuple value.Tuple) (gv value.Tuple, av value.Value, ok bool, err error) {
	b := newBinding()
	ok, bound := matchPattern(t.g.Inner.Args, tuple, b)
	if !ok {
		return nil, value.Value{}, false, nil
	}
	defer undoBind(b, bound)
	gv = make(value.Tuple, len(t.g.GroupBy))
	for i, v := range t.g.GroupBy {
		val, found := b.lookup(string(v))
		if !found {
			return nil, value.Value{}, false, fmt.Errorf("eval: grouping variable %s unbound by %s", v, t.g.Inner)
		}
		gv[i] = val
	}
	av, err = evalTerm(t.g.Arg, b)
	if err != nil {
		return nil, value.Value{}, false, err
	}
	return gv, av, true, nil
}

func (t *GroupTable) entry(gv value.Tuple) *groupEntry {
	k := gv.Key()
	e, ok := t.groups[k]
	if !ok {
		st, err := agg.New(t.g.Func)
		if err != nil {
			panic(err) // function validated at program validation time
		}
		e = &groupEntry{groupVals: gv.Clone(), state: st}
		t.groups[k] = e
	}
	return e
}

func (t *GroupTable) dropEmpty() {
	for k, e := range t.groups {
		if e.cur == nil {
			if _, ok := e.state.Result(); !ok {
				delete(t.groups, k)
			}
		}
	}
}

// ApplyDelta runs Algorithm 6.1: for every group touched by du it updates
// the group's state (rescanning uNew when the aggregate is not
// incrementally computable downward) and emits ΔT — the old group tuple
// with count −1 and the new one with +1 whenever the aggregate changed.
//
// The committed relation (Rel) is untouched until Commit(ΔT) is called, so
// callers can read old T, ΔT, and new T (= Overlay(Rel, ΔT)) while
// evaluating delta rules. ApplyDelta must be followed by exactly one
// Commit before the next ApplyDelta.
func (t *GroupTable) ApplyDelta(du relation.Reader, uNew relation.Reader) (*relation.Relation, error) {
	if t.undo == nil {
		t.undo = make(map[string]undoEntry)
	}
	dirty := make(map[string]bool)
	var ferr error
	du.Each(func(row relation.Row) {
		if ferr != nil {
			return
		}
		gv, _, ok, err := t.match(row.Tuple)
		if err != nil {
			ferr = err
			return
		}
		if !ok {
			return
		}
		k := gv.Key()
		if _, snapped := t.undo[k]; !snapped {
			ue := undoEntry{groupVals: gv.Clone()}
			if e, exists := t.groups[k]; exists {
				ue.existed = true
				if e.state != nil {
					ue.state = e.state.Clone()
				}
				ue.cur = e.cur
			}
			t.undo[k] = ue
		}
		dirty[k] = true
		ferr = t.fold(row)
	})
	if ferr != nil {
		return nil, ferr
	}

	deltaT := relation.New(len(t.g.GroupBy) + 1)
	for k := range dirty {
		e := t.groups[k]
		if e.state == nil {
			if err := t.rescan(e, uNew); err != nil {
				return nil, err
			}
		}
		var next value.Tuple
		if v, ok := e.state.Result(); ok {
			next = append(e.groupVals.Clone(), v)
		}
		switch {
		case e.cur == nil && next == nil:
			delete(t.groups, k)
		case e.cur != nil && next != nil && e.cur.Equal(next):
			// unchanged
		default:
			if e.cur != nil {
				deltaT.Add(e.cur, -1)
			}
			if next != nil {
				deltaT.Add(next, 1)
			}
			e.cur = next
			if next == nil {
				delete(t.groups, k)
			}
		}
	}
	return deltaT, nil
}

// rescan rebuilds a group's state from the new grouped relation.
func (t *GroupTable) rescan(e *groupEntry, uNew relation.Reader) error {
	st, err := agg.New(t.g.Func)
	if err != nil {
		return err
	}
	e.state = st
	for _, row := range uNew.Lookup(t.groupCols, e.groupVals) {
		gv, av, ok, err := t.match(row.Tuple)
		if err != nil {
			return err
		}
		if !ok || !gv.Equal(e.groupVals) {
			continue
		}
		if row.Count > 0 {
			if err := st.Add(av, row.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Commit folds a previously returned ΔT into the committed relation and
// discards the undo snapshots.
func (t *GroupTable) Commit(deltaT *relation.Relation) {
	t.rel.MergeDelta(deltaT)
	t.undo = nil
}

// Rollback restores the group states to their last committed values,
// undoing an ApplyDelta whose maintenance round aborted. The committed
// relation was never touched, so only group states and cached tuples
// revert.
func (t *GroupTable) Rollback() {
	for k, ue := range t.undo {
		if !ue.existed {
			delete(t.groups, k)
			continue
		}
		t.groups[k] = &groupEntry{groupVals: ue.groupVals, state: ue.state, cur: ue.cur}
	}
	t.undo = nil
}

// groupColumns locates each grouping variable's first position in the
// inner atom.
func groupColumns(g *datalog.Aggregate) ([]int, error) {
	cols := make([]int, len(g.GroupBy))
	for i, v := range g.GroupBy {
		cols[i] = -1
		for j, a := range g.Inner.Args {
			if av, ok := a.(datalog.Var); ok && av == v {
				cols[i] = j
				break
			}
		}
		if cols[i] < 0 {
			return nil, fmt.Errorf("eval: grouping variable %s not found in %s", v, g.Inner)
		}
	}
	return cols, nil
}

package eval

import (
	"strings"
	"testing"

	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// fillSeq populates a fresh arity-ar relation with n rows whose column 0
// is unique ("k<i>") and remaining columns cycle through mod values.
func fillSeq(ar, n, mod int) *relation.Relation {
	r := relation.New(ar)
	for i := 0; i < n; i++ {
		row := make([]any, ar)
		row[0] = "k" + itoa(i)
		for c := 1; c < ar; c++ {
			row[c] = "v" + itoa(i%mod)
		}
		r.Add(value.T(row...), 1)
	}
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestPlanSingleLiteralBodyIsOneScan(t *testing.T) {
	prog, _ := parseProgram(t, `copy(X,Y) :- link(X,Y).`)
	link := fillSeq(2, 10, 10)
	plan, err := PlanRule(prog.Rules[0], []Source{{Rel: link}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != AccessScan {
		t.Fatalf("want a single scan step, got %s", plan.Describe(prog.Rules[0]))
	}
	out := relation.New(2)
	if err := EvalRulePlanInstr(prog.Rules[0], []Source{{Rel: link}}, -1, plan, out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("planned copy produced %d rows, want 10", out.Len())
	}
}

func TestPlanAllFilterRuleFails(t *testing.T) {
	// A body of only condition literals can never bind X: both the
	// greedy order and the planner must reject it identically.
	prog, _ := parseProgram(t, `p(X) :- q(X), X > 1.`)
	rule := prog.Rules[0]
	rule.Body = rule.Body[1:] // strip the join, leaving the bare filter
	srcs := []Source{{}}
	_, perr := PlanRule(rule, srcs, -1)
	gerr := EvalRule(rule, srcs, -1, relation.New(1))
	if perr == nil || gerr == nil {
		t.Fatalf("planner err = %v, greedy err = %v; want both non-nil", perr, gerr)
	}
	if perr.Error() != gerr.Error() {
		t.Fatalf("planner and greedy disagree on the error:\n  plan:   %v\n  greedy: %v", perr, gerr)
	}
}

func TestPlanGroundFilterOnlyBody(t *testing.T) {
	// Filters with no variables are ready immediately; a rule with a
	// ground head and only such filters plans to pure filter steps.
	prog, _ := parseProgram(t, `p(1) :- 1 < 2, 3 > 2.`)
	plan, err := PlanRule(prog.Rules[0], []Source{{}, {}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Steps {
		if st.Kind != AccessFilter {
			t.Fatalf("want only filter steps, got %s", plan.Describe(prog.Rules[0]))
		}
	}
	out := relation.New(1)
	if err := EvalRulePlanInstr(prog.Rules[0], []Source{{}, {}}, -1, plan, out, nil); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("ground rule emitted %d rows, want 1", out.Len())
	}
}

func TestPlanAggregateInDeltaPositionPinnedFirst(t *testing.T) {
	prog, _ := parseProgram(t, `m(S,M) :- groupby(u(S,C), [S], M = sum(C)), big(S).`)
	rule := prog.Rules[0]
	dT := relation.New(2) // ΔT: changed group rows
	dT.Add(value.T("s1", int64(7)), 1)
	big := fillSeq(1, 50, 50)
	srcs := []Source{{Rel: dT}, {Rel: big}}
	plan, err := PlanRule(rule, srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) == 0 || plan.Steps[0].Lit != 0 {
		t.Fatalf("aggregate Δ-literal not pinned first: %s", plan.Describe(rule))
	}
	if !strings.HasPrefix(plan.Describe(rule), "Δ:") {
		t.Fatalf("Describe does not mark the pinned step: %s", plan.Describe(rule))
	}
	// The second step joins big(S) with S bound — a keyed access.
	if k := plan.Steps[1].Kind; k != AccessPoint {
		t.Fatalf("bound unary join should be a point lookup, got %v", k)
	}
}

func TestPlanNegationOrderedAfterBindingJoin(t *testing.T) {
	// blocked(X,Y) binds nothing; the planner must hold the negation
	// until link(X,Y) has bound X and Y, exactly like the greedy order.
	prog, _ := parseProgram(t, `ok(X,Y) :- !blocked(X,Y), link(X,Y).`)
	rule := prog.Rules[0]
	blocked := relation.New(2)
	blocked.Add(value.T("a", "b"), 1)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	link.Add(value.T("a", "c"), 1)
	srcs := []Source{{Rel: blocked.ToSet()}, {Rel: link}}
	plan, err := PlanRule(rule, srcs, -1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Steps[0].Lit != 1 || plan.Steps[1].Lit != 0 {
		t.Fatalf("negation not deferred past its binding join: %s", plan.Describe(rule))
	}
	if plan.Steps[1].Kind != AccessNegFilter {
		t.Fatalf("negation step kind = %v, want AccessNegFilter", plan.Steps[1].Kind)
	}
	out := relation.New(2)
	if err := EvalRulePlanInstr(rule, srcs, -1, plan, out, nil); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,c": 1})
}

func TestPlanNegationNeverBoundFails(t *testing.T) {
	// datalog.Validate rejects unsafe negation, so parse without
	// validating: PlanRule must still fail defensively.
	prog, err := parser.ParseRules(`ok(X) :- link(X,X), !blocked(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	rule := prog.Rules[0]
	// Z appears only under the negation: no join can ever bind it.
	link := relation.New(2)
	blocked := relation.New(2)
	srcs := []Source{{Rel: link}, {Rel: blocked}}
	if _, err := PlanRule(rule, srcs, -1); err == nil {
		t.Fatal("planner accepted a negation with a variable no join binds")
	}
}

func TestPlanPrefersLowFanoutSource(t *testing.T) {
	// hub(X,Y): 4 distinct X fanning out to ~250 Y each (small Len, huge
	// fan-out). flat(X,Z): 2000 rows, X unique (large Len, fan-out 1).
	// With X bound by Δreq, the planner must probe flat before hub; the
	// greedy order would pick hub (smaller Len on the bound-count tie).
	prog, _ := parseProgram(t, `out(Y,Z) :- req(X), hub(X,Y), flat(X,Z).`)
	rule := prog.Rules[0]
	hub := relation.New(2)
	for i := 0; i < 1000; i++ {
		hub.Add(value.T("h"+itoa(i%4), "y"+itoa(i)), 1)
	}
	flat := fillSeq(2, 2000, 2000)
	dreq := relation.New(1)
	dreq.Add(value.T("h0"), 1)
	srcs := []Source{{Rel: dreq}, {Rel: hub}, {Rel: flat}}
	plan, err := PlanRule(rule, srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{plan.Steps[0].Lit, plan.Steps[1].Lit, plan.Steps[2].Lit}
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("planned order %v, want [0 2 1] (flat before hub): %s", order, plan.Describe(rule))
	}
}

func TestPlanDescribeDeterministic(t *testing.T) {
	prog, _ := parseProgram(t, `out(Y,Z) :- req(X), hub(X,Y), flat(X,Z), Y != Z.`)
	rule := prog.Rules[0]
	hub := fillSeq(2, 300, 3)
	flat := fillSeq(2, 500, 500)
	dreq := relation.New(1)
	dreq.Add(value.T("k1"), 1)
	srcs := []Source{{Rel: dreq}, {Rel: hub}, {Rel: flat}, {}}
	first := ""
	for i := 0; i < 20; i++ {
		plan, err := PlanRule(rule, srcs, 0)
		if err != nil {
			t.Fatal(err)
		}
		d := plan.Describe(rule)
		if i == 0 {
			first = d
			continue
		}
		if d != first {
			t.Fatalf("Describe not deterministic:\n  run 0: %s\n  run %d: %s", first, i, d)
		}
	}
}

func TestPlanReusesExistingSubsetIndex(t *testing.T) {
	// Force an index on column 0 of a 3-ary relation, then plan a join
	// binding columns 0 and 1. The planner must reuse the existing
	// {0}-index rather than demand a fresh {0,1} index.
	r := relation.New(3)
	for i := 0; i < 100; i++ {
		r.Add(value.T("a"+itoa(i%10), "b"+itoa(i%20), "c"+itoa(i)), 1)
	}
	r.Lookup([]int{0}, value.T("a1")) // builds the {0} index
	prog, _ := parseProgram(t, `out(C) :- l(A), m(A,B), big(A,B,C).`)
	rule := prog.Rules[0]
	l := relation.New(1)
	l.Add(value.T("a1"), 1)
	m := relation.New(2)
	m.Add(value.T("a1", "b1"), 1)
	srcs := []Source{{Rel: l}, {Rel: m}, {Rel: r}}
	plan, err := PlanRule(rule, srcs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var bigStep *PlanStep
	for i := range plan.Steps {
		if plan.Steps[i].Lit == 2 {
			bigStep = &plan.Steps[i]
		}
	}
	if bigStep == nil || bigStep.Kind != AccessIndex {
		t.Fatalf("big not planned as an index access: %s", plan.Describe(rule))
	}
	if len(bigStep.Cols) != 1 || bigStep.Cols[0] != 0 {
		t.Fatalf("planner did not reuse the existing {0} index, probes cols %v", bigStep.Cols)
	}
	// And the reused subset index still yields exact rows.
	out := relation.New(1)
	if err := EvalRulePlanInstr(rule, srcs, 0, plan, out, nil); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for i := 0; i < 100; i++ {
		if i%10 == 1 && i%20 == 1 {
			want["c"+itoa(i)] = 1
		}
	}
	wantCounts(t, out, want)
}

func TestPlannerCacheHitMissReplan(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	rule := prog.Rules[0]
	link := fillSeq(2, 16, 16)
	srcs := []Source{{Rel: link}, {Rel: link}}
	p := NewPlanner(nil)
	key := PlanKey{Rule: 0, Kind: PlanEval, Delta: -1}
	if _, err := p.PlanFor(key, rule, srcs, -1); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("cache holds %d plans after first build, want 1", p.Len())
	}
	pl1, err := p.PlanFor(key, rule, srcs, -1)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := p.PlanFor(key, rule, srcs, -1)
	if err != nil {
		t.Fatal(err)
	}
	if pl1 != pl2 {
		t.Fatal("stable sources must hit the cached plan")
	}

	// Grow one source ~64×: the fingerprint drifts and PlanFor replans.
	grown := fillSeq(2, 1024, 1024)
	pl3, err := p.PlanFor(key, rule, []Source{{Rel: grown}, {Rel: grown}}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if pl3 == pl2 {
		t.Fatal("64× growth did not trigger a replan")
	}

	p.Reset()
	if p.Len() != 0 {
		t.Fatalf("Reset left %d plans cached", p.Len())
	}
}

func TestPlannerNilIsGreedyFallback(t *testing.T) {
	var p *Planner
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	plan, err := p.PlanFor(PlanKey{}, prog.Rules[0], []Source{{}, {}}, -1)
	if err != nil || plan != nil {
		t.Fatalf("nil planner: plan=%v err=%v, want nil,nil", plan, err)
	}
	link := relation.New(2)
	link.Add(value.T("a", "b"), 2)
	link.Add(value.T("b", "c"), 3)
	out := relation.New(2)
	if err := EvalRulePlanInstr(prog.Rules[0], []Source{{Rel: link}, {Rel: link}}, -1, nil, out, nil); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,c": 6})
}

// TestPlanMatchesGreedyOutput drives planned and greedy evaluation over
// the same rule shapes and asserts identical multisets.
func TestPlanMatchesGreedyOutput(t *testing.T) {
	progs := []string{
		`hop(X,Y) :- link(X,Z), link(Z,Y).`,
		`out(Y,Z) :- req(X), hub(X,Y), flat(X,Z).`,
		`ok(X,Y) :- !blocked(X,Y), link(X,Y).`,
		`big(X) :- link(X,Y), link(Y,Z), link(Z,X), X != Y.`,
	}
	mkSrcs := func(rule int, prog string) []Source {
		link := relation.New(2)
		for i := 0; i < 60; i++ {
			link.Add(value.T("n"+itoa(i%12), "n"+itoa((i*7)%12)), 1)
		}
		switch prog {
		case progs[1]:
			hub := relation.New(2)
			for i := 0; i < 200; i++ {
				hub.Add(value.T("n"+itoa(i%3), "y"+itoa(i)), 1)
			}
			flat := fillSeq(2, 300, 300)
			req := relation.New(1)
			req.Add(value.T("n1"), 1)
			return []Source{{Rel: req}, {Rel: hub}, {Rel: flat}}
		case progs[2]:
			blocked := relation.New(2)
			blocked.Add(value.T("n1", "n7"), 1)
			return []Source{{Rel: blocked.ToSet()}, {Rel: link}}
		default:
			if prog == progs[0] {
				return []Source{{Rel: link}, {Rel: link}}
			}
			return []Source{{Rel: link}, {Rel: link}, {Rel: link}, {}}
		}
	}
	for _, src := range progs {
		prog, _ := parseProgram(t, src)
		rule := prog.Rules[0]
		srcs := mkSrcs(0, src)
		plan, err := PlanRule(rule, srcs, -1)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		planned := relation.New(len(rule.Head.Args))
		if err := EvalRulePlanInstr(rule, srcs, -1, plan, planned, nil); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		greedy := relation.New(len(rule.Head.Args))
		if err := EvalRule(rule, srcs, -1, greedy); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		wantCounts(t, planned, counts(greedy))
	}
}

package eval

import (
	"testing"

	"ivm/internal/relation"
	"ivm/internal/value"
)

func TestExplainEnumeratesDerivations(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	link.Add(value.T("b", "c"), 1)
	link.Add(value.T("a", "d"), 1)
	link.Add(value.T("d", "c"), 1)
	srcs := []Source{{Rel: link}, {Rel: link}}

	ds, err := Explain(prog.Rules[0], srcs, value.T("a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("derivations: %v", ds)
	}
	for _, d := range ds {
		if len(d) != 2 || d[0].Pred != "link" || d[1].Pred != "link" {
			t.Fatalf("subgoals: %v", d)
		}
		// The chain must connect a → mid → c.
		if !d[0].Tuple[0].Equal(value.NewString("a")) || !d[1].Tuple[1].Equal(value.NewString("c")) {
			t.Fatalf("chain: %v", d)
		}
		if !d[0].Tuple[1].Equal(d[1].Tuple[0]) {
			t.Fatalf("mid mismatch: %v", d)
		}
	}

	// Head mismatch: no derivations, no error.
	ds, err = Explain(prog.Rules[0], srcs, value.T("q", "q"))
	if err != nil || len(ds) != 0 {
		t.Fatalf("absent: %v %v", ds, err)
	}
	// Arity mismatch is a miss, not an error.
	ds, err = Explain(prog.Rules[0], srcs, value.T("a"))
	if err != nil || ds != nil {
		t.Fatalf("arity: %v %v", ds, err)
	}
}

func TestExplainMultiplicities(t *testing.T) {
	prog, _ := parseProgram(t, `v(X) :- p(X).`)
	p := relation.New(1)
	p.Add(value.T("a"), 3)
	ds, err := Explain(prog.Rules[0], []Source{{Rel: p}}, value.T("a"))
	if err != nil {
		t.Fatal(err)
	}
	// One instantiation whose subgoal carries multiplicity 3: the caller
	// multiplies counts to recover count(v(a)) = 3.
	if len(ds) != 1 || ds[0][0].Count != 3 {
		t.Fatalf("multiplicity: %v", ds)
	}
}

func TestExplainExpressionHead(t *testing.T) {
	prog, _ := parseProgram(t, `sum(X, A+B) :- p(X, A, B).`)
	p := relation.New(3)
	p.Add(value.T("k", 2, 3), 1)
	p.Add(value.T("k", 1, 4), 1)
	p.Add(value.T("k", 9, 9), 1)
	ds, err := Explain(prog.Rules[0], []Source{{Rel: p}}, value.T("k", 5))
	if err != nil {
		t.Fatal(err)
	}
	// Two rows sum to 5.
	if len(ds) != 2 {
		t.Fatalf("expression head: %v", ds)
	}
}

func TestSourcesAtBuildsAndCachesGroupTables(t *testing.T) {
	prog, _ := parseProgram(t, `m(S,M) :- groupby(u(S,C), [S], M = min(C)).`)
	db := loadDB(t, `u(a, 5). u(a, 3).`)
	gts := make(map[RuleLit]*GroupTable)
	srcs, err := SourcesAt(prog.Rules[0], 0, db, Duplicate, gts)
	if err != nil {
		t.Fatal(err)
	}
	if len(gts) != 1 {
		t.Fatalf("group tables: %d", len(gts))
	}
	ds, err := Explain(prog.Rules[0], srcs, value.T("a", 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || !ds[0][0].Aggregate {
		t.Fatalf("aggregate derivation: %v", ds)
	}
	// Second call reuses the cached table.
	if _, err := SourcesAt(prog.Rules[0], 0, db, Duplicate, gts); err != nil {
		t.Fatal(err)
	}
	if len(gts) != 1 {
		t.Fatal("cache must be reused")
	}
}

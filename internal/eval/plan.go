package eval

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
	"sync"

	"ivm/internal/datalog"
	"ivm/internal/metrics"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// Cost-based join planning for delta-rule evaluation.
//
// orderLiterals (rule.go) picks a join order syntactically: most bound
// columns first, smaller Len on ties — recomputed on every EvalRule call
// and blind to how selective a bound column actually is. PlanRule instead
// orders the body by estimated join fan-out, using the per-column
// distinct statistics relations maintain (relation.CardEstimator), and
// freezes the per-literal access path (point / index / scan / filter)
// into the plan so execution does no per-call classification. The
// Δ-subgoal stays pinned first (paper Section 6.1) and filters still run
// as soon as their variables are bound, so a plan accepts exactly the
// rules the greedy order accepts and produces bit-identical output: the
// head relation merges counts commutatively, so only cost depends on the
// order.
//
// Planner caches plans per (rule, kind, Δ-position); steady-state
// maintenance hits the cache and pays no planning cost. Plans carry a
// coarse log₂-size fingerprint of their non-Δ join sources and are
// replanned when any source drifts past 4× — the Δ source is excluded
// because its size varies batch to batch by design.

// AccessKind is the access path chosen for one plan step.
type AccessKind uint8

const (
	// AccessFilter evaluates a condition literal over bound variables.
	AccessFilter AccessKind = iota
	// AccessNegFilter checks a negated literal's absence (Has probe).
	AccessNegFilter
	// AccessPoint is a full-tuple point lookup (all columns bound).
	AccessPoint
	// AccessIndex is a hash-index lookup on Cols.
	AccessIndex
	// AccessScan enumerates the whole relation.
	AccessScan
)

func (k AccessKind) String() string {
	switch k {
	case AccessFilter:
		return "filter"
	case AccessNegFilter:
		return "!filter"
	case AccessPoint:
		return "point"
	case AccessIndex:
		return "index"
	case AccessScan:
		return "scan"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// PlanStep evaluates body literal Lit with the given access path.
type PlanStep struct {
	Lit  int
	Kind AccessKind
	// Cols are the columns probed on an AccessIndex step (ascending).
	// They are a subset of the step's bound columns when an existing
	// index is reused; the residual columns are checked by pattern match.
	Cols []int
}

// Plan is a frozen evaluation order with per-step access paths for one
// rule shape. Plans are immutable once built.
type Plan struct {
	Steps []PlanStep
	// pinned is the Δ-literal forced first (-1 when none).
	pinned int
	// fp is the log₂(Len+1) fingerprint per body literal recorded at
	// plan time; -1 marks literals not tracked (filters, the Δ literal).
	fp []int8
}

// driftThreshold is the log₂ distance at which a cached plan is
// considered stale: a source growing or shrinking ~4× can change the
// best order.
const driftThreshold = 2

func sizeClass(n int) int8 { return int8(bits.Len(uint(n))) }

// drifted reports whether any tracked source moved a factor ≥ 2^driftThreshold
// away from its size at plan time.
func (p *Plan) drifted(srcs []Source) bool {
	for i, f := range p.fp {
		if f < 0 || srcs[i].Rel == nil {
			continue
		}
		d := sizeClass(srcs[i].Rel.Len()) - f
		if d >= driftThreshold || d <= -driftThreshold {
			return true
		}
	}
	return false
}

// PlanRule builds a cost-based plan for one rule. firstLit, when >= 0
// and join-capable, is pinned first (the Δ-subgoal of a delta rule).
// Remaining join literals are taken in order of estimated fan-out
// (Len / ∏ distinct(boundCol), ties toward the original literal order);
// filters run as soon as their variables are bound. PlanRule fails on
// exactly the rules orderLiterals fails on: filters whose variables no
// remaining join can bind.
func PlanRule(rule datalog.Rule, srcs []Source, firstLit int) (*Plan, error) {
	n := len(rule.Body)
	if len(srcs) != n {
		return nil, fmt.Errorf("eval: rule has %d literals but %d sources given", n, len(srcs))
	}
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	bound := make(map[string]bool)
	p := &Plan{Steps: make([]PlanStep, 0, n), pinned: -1, fp: make([]int8, n)}
	for i := range p.fp {
		p.fp[i] = -1
	}

	isFilter := func(i int) bool {
		l := rule.Body[i]
		return l.Kind == datalog.LitCondition || (l.Kind == datalog.LitNegated && !srcs[i].JoinDelta)
	}
	ready := func(i int) bool {
		for _, v := range rule.Body[i].UsesVars(nil) {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	// boundCols classifies a join literal's columns under the current
	// bound set; this matches exactly what joinLiteral would compute at
	// runtime, because at step k a variable is bound iff an earlier join
	// step's literal mentioned it.
	boundCols := func(i int) (cols []int, all bool) {
		all = true
		for ci, a := range joinArgs(rule.Body[i]) {
			switch x := a.(type) {
			case datalog.Const:
				cols = append(cols, ci)
			case datalog.Var:
				if bound[string(x)] {
					cols = append(cols, ci)
				} else {
					all = false
				}
			default:
				all = false
			}
		}
		return cols, all
	}
	take := func(i int) {
		remaining[i] = false
		step := PlanStep{Lit: i}
		switch {
		case rule.Body[i].Kind == datalog.LitCondition:
			step.Kind = AccessFilter
		case rule.Body[i].Kind == datalog.LitNegated && !srcs[i].JoinDelta:
			step.Kind = AccessNegFilter
		default:
			args := joinArgs(rule.Body[i])
			cols, all := boundCols(i)
			switch {
			case all && len(args) > 0:
				step.Kind = AccessPoint
			case len(cols) > 0:
				step.Kind = AccessIndex
				if reuse := relation.PreferredIndexFor(srcs[i].Rel, cols); reuse != nil {
					cols = reuse
				}
				step.Cols = cols
			default:
				step.Kind = AccessScan
			}
			for _, t := range args {
				for _, v := range t.Vars(nil) {
					bound[v] = true
				}
			}
		}
		p.Steps = append(p.Steps, step)
	}
	flushFilters := func() {
		for i := 0; i < n; i++ {
			if remaining[i] && isFilter(i) && ready(i) {
				take(i)
			}
		}
	}

	if firstLit >= 0 && firstLit < n && !isFilter(firstLit) {
		p.pinned = firstLit
		take(firstLit)
	}
	flushFilters()

	for {
		done := true
		for i := 0; i < n; i++ {
			if remaining[i] {
				done = false
				break
			}
		}
		if done {
			break
		}
		best, bestCost := -1, 0.0
		for i := 0; i < n; i++ {
			if !remaining[i] || isFilter(i) {
				continue
			}
			bc, _ := boundCols(i)
			if c := fanoutEstimate(srcs[i].Rel, bc); best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eval: rule %q has filters with unbound variables and no remaining joins", rule.String())
		}
		take(best)
		flushFilters()
	}

	// Fingerprint the non-Δ join sources for drift detection.
	for _, st := range p.Steps {
		if st.Lit == p.pinned || st.Kind == AccessFilter || st.Kind == AccessNegFilter {
			continue
		}
		if rel := srcs[st.Lit].Rel; rel != nil {
			p.fp[st.Lit] = sizeClass(rel.Len())
		}
	}
	return p, nil
}

// fanoutEstimate is the expected number of rows a join step emits per
// incoming binding: Len divided by the distinct count of every bound
// column. Unbound scans cost the full Len; a well-keyed probe costs ≤ 1.
func fanoutEstimate(rel relation.Reader, boundCols []int) float64 {
	if rel == nil {
		return 0
	}
	f := float64(rel.Len())
	for _, c := range boundCols {
		if d := relation.DistinctEstimate(rel, c); d > 1 {
			f /= float64(d)
		}
	}
	return f
}

// Describe renders the plan deterministically, one step per " -> "
// segment: the access path, the literal, and for index steps the probed
// columns. The Δ-pinned step is marked with a leading Δ.
func (p *Plan) Describe(rule datalog.Rule) string {
	var sb strings.Builder
	for i, st := range p.Steps {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		if st.Lit == p.pinned && p.pinned >= 0 {
			sb.WriteString("Δ:")
		}
		sb.WriteString(st.Kind.String())
		sb.WriteByte(' ')
		sb.WriteString(rule.Body[st.Lit].String())
		if st.Kind == AccessIndex {
			sb.WriteString(" [cols ")
			for j, c := range st.Cols {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.Itoa(c))
			}
			sb.WriteByte(']')
		}
	}
	return sb.String()
}

// PlanKind distinguishes the evaluation contexts a rule is planned for:
// the same rule body joins against different source shapes in each.
type PlanKind uint8

const (
	// PlanEval is full (re-)evaluation: seed rounds, recomputation,
	// initial materialization. Delta holds the restricted literal of a
	// semi-naive round, or -1.
	PlanEval PlanKind = iota
	// PlanDeltaOld is a delta rule joined against the pre-update state
	// (DRed's deletion step). Delta is the Δ-position.
	PlanDeltaOld
	// PlanDeltaNew is a delta rule joined against the post-update state
	// (counting maintenance, DRed's insertion step). Delta is the
	// Δ-position.
	PlanDeltaNew
	// PlanRederive is a DRed rederivation aux rule (the head-candidate
	// literal prepended to the body). Delta is the pinned literal.
	PlanRederive
)

// PlanKey identifies one cached plan. Semantics is implicit: each engine
// owns its Planner, and an engine evaluates under one semantics.
type PlanKey struct {
	Rule  int
	Kind  PlanKind
	Delta int
}

// Planner caches plans per PlanKey. A nil *Planner disables planning:
// PlanFor returns a nil plan and execution falls back to the greedy
// order. All methods are safe for concurrent use.
type Planner struct {
	mu    sync.RWMutex
	plans map[PlanKey]*Plan

	plansGauge *metrics.Gauge
	hits       *metrics.Counter
	misses     *metrics.Counter
	replans    *metrics.Counter
}

// NewPlanner returns an empty plan cache. reg may be nil (metrics off).
func NewPlanner(reg *metrics.Registry) *Planner {
	p := &Planner{plans: make(map[PlanKey]*Plan)}
	if reg != nil {
		p.plansGauge = reg.Gauge("planner_plans")
		p.hits = reg.Counter("planner_hits_total")
		p.misses = reg.Counter("planner_misses_total")
		p.replans = reg.Counter("planner_replans_total")
	}
	return p
}

// PlanFor returns the cached plan for key, building (and caching) one
// when absent or drifted. On a nil Planner it returns (nil, nil).
func (p *Planner) PlanFor(key PlanKey, rule datalog.Rule, srcs []Source, firstLit int) (*Plan, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.RLock()
	pl := p.plans[key]
	p.mu.RUnlock()
	if pl != nil && !pl.drifted(srcs) {
		p.hits.Inc()
		return pl, nil
	}
	npl, err := PlanRule(rule, srcs, firstLit)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.plans[key] = npl
	size := len(p.plans)
	p.mu.Unlock()
	if pl != nil {
		p.replans.Inc()
	} else {
		p.misses.Inc()
	}
	p.plansGauge.Set(int64(size))
	return npl, nil
}

// Reset drops every cached plan. Rule edits must call it: rule indices
// shift, so stale keys would serve plans for the wrong rule.
func (p *Planner) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.plans = make(map[PlanKey]*Plan)
	p.mu.Unlock()
	p.plansGauge.Set(0)
}

// Len returns the number of cached plans.
func (p *Planner) Len() int {
	if p == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.plans)
}

// EvalRulePlanInstr evaluates rule following plan; with a nil plan it
// falls back to EvalRuleInstr's greedy order. The output relation is
// identical either way — only the join order and access paths differ.
func EvalRulePlanInstr(rule datalog.Rule, srcs []Source, firstLit int, plan *Plan, out *relation.Relation, in *Instruments) error {
	if plan == nil {
		return EvalRuleInstr(rule, srcs, firstLit, out, in)
	}
	if len(srcs) != len(rule.Body) {
		return fmt.Errorf("eval: rule has %d literals but %d sources given", len(rule.Body), len(srcs))
	}
	var ctr joinCounters
	b := newBinding()
	var walk func(step int, count int64) error
	walk = func(step int, count int64) error {
		if step == len(plan.Steps) {
			head, err := groundAtom(rule.Head.Args, b)
			if err != nil {
				return err
			}
			out.Add(head, count)
			return nil
		}
		st := plan.Steps[step]
		lit := rule.Body[st.Lit]
		src := srcs[st.Lit]

		switch st.Kind {
		case AccessFilter:
			l, err := evalTerm(lit.Cond.Left, b)
			if err != nil {
				return err
			}
			r, err := evalTerm(lit.Cond.Right, b)
			if err != nil {
				return err
			}
			if lit.Cond.Op.Eval(l, r) {
				return walk(step+1, count)
			}
			return nil

		case AccessNegFilter:
			t, err := groundAtom(lit.Atom.Args, b)
			if err != nil {
				return err
			}
			ctr.probes++
			if !src.Rel.Has(t) {
				return walk(step+1, count)
			}
			return nil

		default:
			return joinPlanned(joinArgs(lit), src.Rel, st, b, func(rowCount int64) error {
				return walk(step+1, count*rowCount)
			}, &ctr)
		}
	}
	err := walk(0, 1)
	if in != nil {
		in.JoinProbes.Add(ctr.probes)
		in.JoinScans.Add(ctr.scans)
	}
	return err
}

// joinPlanned enumerates rel's rows matching args through the plan step's
// frozen access path. Bound/unbound classification was done at plan time;
// matchPattern still verifies every column, so a reused subset index (or
// a conservative plan) only costs extra candidates, never wrong rows.
func joinPlanned(args []datalog.Term, rel relation.Reader, st PlanStep, b *binding, each func(count int64) error, ctr *joinCounters) error {
	emit := func(row relation.Row) error {
		ok, newly := matchPattern(args, row.Tuple, b)
		if !ok {
			return nil
		}
		err := each(row.Count)
		undoBind(b, newly)
		return err
	}

	switch st.Kind {
	case AccessPoint:
		t, err := groundAtom(args, b)
		if err != nil {
			return err
		}
		ctr.probes++
		if c := rel.Count(t); c != 0 {
			return each(c)
		}
		return nil
	case AccessIndex:
		keyVals := make(value.Tuple, len(st.Cols))
		for i, c := range st.Cols {
			switch x := args[c].(type) {
			case datalog.Const:
				keyVals[i] = x.Value
			case datalog.Var:
				v, ok := b.lookup(string(x))
				if !ok {
					return fmt.Errorf("eval: internal error: plan probes unbound column %d", c)
				}
				keyVals[i] = v
			default:
				return fmt.Errorf("eval: expression %s in join pattern", args[c])
			}
		}
		ctr.probes++
		for _, row := range rel.Lookup(st.Cols, keyVals) {
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	default: // AccessScan
		ctr.scans++
		var err error
		rel.Each(func(row relation.Row) {
			if err != nil {
				return
			}
			err = emit(row)
		})
		return err
	}
}

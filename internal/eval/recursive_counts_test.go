package eval

import (
	"testing"

	"ivm/internal/value"
)

func TestRecursiveCountsDiamond(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	// Diamond: a→b, a→c, b→d, c→d — two paths a⇝d.
	db := loadDB(t, `link(a,b). link(a,c). link(b,d). link(c,d).`)
	ev := NewEvaluator(prog, st, Duplicate)
	ev.RecursiveCounts = true
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("tc"), map[string]int64{
		"a,b": 1, "a,c": 1, "b,d": 1, "c,d": 1, "a,d": 2,
	})
}

func TestRecursiveCountsLongChainWithShortcuts(t *testing.T) {
	// Chain 0→1→2→3 plus shortcut edges 0→2 and 1→3: path counts follow
	// a Fibonacci-like recurrence.
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(0,1). link(1,2). link(2,3). link(0,2). link(1,3).`)
	ev := NewEvaluator(prog, st, Duplicate)
	ev.RecursiveCounts = true
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	// paths 0⇝3: 0-1-2-3, 0-2-3, 0-1-3 → 3
	if got := db.Get("tc").Count(value.T(int64(0), int64(3))); got != 3 {
		t.Fatalf("tc(0,3) = %d, want 3: %v", got, db.Get("tc"))
	}
	// paths 0⇝2: direct, via 1 → 2
	if got := db.Get("tc").Count(value.T(int64(0), int64(2))); got != 2 {
		t.Fatalf("tc(0,2) = %d, want 2", got)
	}
}

func TestRecursiveCountsDivergeOnCycle(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b). link(b,a).`)
	ev := NewEvaluator(prog, st, Duplicate)
	ev.RecursiveCounts = true
	ev.MaxIterations = 50
	err := ev.Evaluate(db)
	if _, ok := err.(*ErrCountsDiverge); !ok {
		t.Fatalf("err = %v, want ErrCountsDiverge", err)
	}
}

package eval

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/relation"
)

// ErrCountsDiverge is returned when a recursive stratum's derivation
// counts do not reach a fixpoint within the iteration budget — the
// infinite-count case the paper warns about for counting on recursive
// views (Section 8; [GKM92], [MS93a]). Cyclic data under duplicate
// semantics has tuples with infinitely many derivations; use DRed.
type ErrCountsDiverge struct {
	Stratum    int
	Iterations int
}

func (e *ErrCountsDiverge) Error() string {
	return fmt.Sprintf("eval: derivation counts in stratum %d did not converge after %d iterations (cyclic derivations have infinite counts — use set semantics / DRed)", e.Stratum, e.Iterations)
}

// DefaultMaxIterations bounds counted recursive fixpoints. Derivation
// depth on acyclic data is at most the longest derivation chain; anything
// past this budget is treated as divergence.
const DefaultMaxIterations = 10000

// evalRecursiveStratumCounted computes the duplicate-semantics fixpoint
// of a recursive stratum: count(t) = number of derivation trees of t,
// finite exactly when no derivation cycles feed t ([GKM92]). It uses the
// counted semi-naive recurrence
//
//	Δ_r = T(P_{r-1}) − T(P_{r-2})
//
// expanded through delta rules: position k takes Δ_{r-1}, positions
// before k see P_{r-1} (old ⊎ all deltas through r-1), positions after k
// see P_{r-2} (old ⊎ all deltas through r-2). Exact multiset difference —
// no derivation is counted twice.
func (e *Evaluator) evalRecursiveStratumCounted(db *DB, s int, rules []int) error {
	maxIter := e.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	inStratum := make(map[string]bool)
	for _, ri := range rules {
		inStratum[e.prog.Rules[ri].Head.Pred] = true
	}

	// acc[pred] holds all deltas merged so far (P_{r-1} = stored ⊎ acc);
	// accPrev excludes the previous round (P_{r-2}).
	// The stored relations start empty for this stratum, so P_0 = ∅.
	acc := make(map[string]*relation.Relation)
	prev := make(map[string]*relation.Relation) // Δ_{r-1}
	for pred := range inStratum {
		acc[pred] = relation.New(arityOf(e.prog, pred))
		prev[pred] = relation.New(arityOf(e.prog, pred))
	}
	readerAt := func(pred string, includePrev bool) relation.Reader {
		base := db.rel(pred)
		if !inStratum[pred] {
			if e.sem == Set {
				return relation.SetImage(base)
			}
			return base
		}
		if includePrev {
			return relation.Overlay(base, acc[pred])
		}
		// P_{r-2}: acc without the previous round.
		return relation.Overlay(relation.Overlay(base, acc[pred]), prev[pred].Negate())
	}

	// Round 1: Δ_1 = T(∅-stratum state) — every rule evaluated with
	// in-stratum relations empty (only non-recursive rule bodies fire).
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		srcs, err := e.sources(db, ri, readersFor(rule, func(pred string) relation.Reader {
			if inStratum[pred] {
				return acc[pred] // empty
			}
			return nil
		}))
		if err != nil {
			return err
		}
		plan, err := e.planFor(ri, -1, rule, srcs)
		if err != nil {
			return err
		}
		tmp := relation.New(len(rule.Head.Args))
		if err := EvalRulePlanInstr(rule, srcs, -1, plan, tmp, e.Instr); err != nil {
			return err
		}
		prev[rule.Head.Pred].MergeDelta(tmp)
	}
	for pred := range inStratum {
		acc[pred].MergeDelta(prev[pred])
	}

	for iter := 1; ; iter++ {
		quiet := true
		for _, d := range prev {
			if !d.Empty() {
				quiet = false
				break
			}
		}
		if quiet {
			break
		}
		if iter > maxIter {
			return &ErrCountsDiverge{Stratum: s, Iterations: maxIter}
		}
		next := make(map[string]*relation.Relation)
		for pred := range inStratum {
			next[pred] = relation.New(arityOf(e.prog, pred))
		}
		for _, ri := range rules {
			rule := e.prog.Rules[ri]
			for li, lit := range rule.Body {
				if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
					continue
				}
				d := prev[lit.Atom.Pred]
				if d.Empty() {
					continue
				}
				srcs := make([]Source, len(rule.Body))
				for j, l2 := range rule.Body {
					switch {
					case j == li:
						srcs[j] = Source{Rel: d}
					case l2.Kind == datalog.LitPositive || l2.Kind == datalog.LitNegated:
						srcs[j] = Source{Rel: readerAt(l2.Atom.Pred, j < li)}
					case l2.Kind == datalog.LitAggregate:
						// Aggregates reference lower strata only; reuse the
						// evaluator's cached group tables.
						s2, err := e.sources(db, ri, nil)
						if err != nil {
							return err
						}
						srcs[j] = s2[j]
					}
				}
				plan, err := e.planFor(ri, li, rule, srcs)
				if err != nil {
					return err
				}
				tmp := relation.New(len(rule.Head.Args))
				if err := EvalRulePlanInstr(rule, srcs, li, plan, tmp, e.Instr); err != nil {
					return err
				}
				next[rule.Head.Pred].MergeDelta(tmp)
			}
		}
		for pred := range inStratum {
			acc[pred].MergeDelta(next[pred])
		}
		prev = next
	}

	for pred := range inStratum {
		db.rel(pred).MergeDelta(acc[pred])
	}
	return nil
}

// readersFor builds the inStratum override map used by sources().
func readersFor(rule datalog.Rule, pick func(pred string) relation.Reader) map[string]relation.Reader {
	out := make(map[string]relation.Reader)
	for _, lit := range rule.Body {
		if pred := lit.Pred(); pred != "" {
			if r := pick(pred); r != nil {
				out[pred] = r
			}
		}
	}
	return out
}

package eval

import (
	"math/rand"
	"testing"

	"ivm/internal/relation"
	"ivm/internal/value"
	"ivm/internal/workload"
)

func benchGraph(n, m int) *relation.Relation {
	return workload.RandomGraph(rand.New(rand.NewSource(1)), n, m)
}

func BenchmarkEvalRuleJoin(b *testing.B) {
	prog, st := parseProgram(b, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	_ = st
	link := benchGraph(200, 1200)
	srcs := []Source{{Rel: link}, {Rel: link}}
	// Warm the index.
	out := relation.New(2)
	if err := EvalRule(prog.Rules[0], srcs, -1, out); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := relation.New(2)
		if err := EvalRule(prog.Rules[0], srcs, -1, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRuleDeltaJoin(b *testing.B) {
	prog, _ := parseProgram(b, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := benchGraph(200, 1200)
	delta := relation.New(2)
	link.Each(func(r relation.Row) {
		if delta.Len() < 4 {
			delta.Add(r.Tuple, -1)
		}
	})
	srcs := []Source{{Rel: delta}, {Rel: link}}
	out := relation.New(2)
	if err := EvalRule(prog.Rules[0], srcs, 0, out); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := relation.New(2)
		if err := EvalRule(prog.Rules[0], srcs, 0, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemiNaiveTC(b *testing.B) {
	prog, st := parseProgram(b, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	link := workload.LayeredDAG(rand.New(rand.NewSource(2)), 10, 6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := NewDB()
		db.Put("link", link.Clone())
		ev := NewEvaluator(prog, st, Set)
		if err := ev.Evaluate(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupTableBuild(b *testing.B) {
	prog, _ := parseProgram(b, `m(S,M) :- groupby(u(S,C), [S], M = min(C)).`)
	g := prog.Rules[0].Body[0].Agg
	u := relation.New(2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		u.Add(value.T(int64(rng.Intn(200)), int64(rng.Intn(1000))), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGroupTable(g, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupTableDelta(b *testing.B) {
	prog, _ := parseProgram(b, `m(S,M) :- groupby(u(S,C), [S], M = sum(C)).`)
	g := prog.Rules[0].Body[0].Agg
	u := relation.New(2)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		u.Add(value.T(int64(rng.Intn(200)), int64(1+rng.Intn(1000))), 1)
	}
	gt, err := BuildGroupTable(g, u)
	if err != nil {
		b.Fatal(err)
	}
	ins := relation.New(2)
	ins.Add(value.T(int64(7), int64(5)), 1)
	del := ins.Negate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := ins
		if i%2 == 1 {
			d = del
		}
		dt, err := gt.ApplyDelta(d, relation.Overlay(u, d))
		if err != nil {
			b.Fatal(err)
		}
		gt.Commit(dt)
		u.MergeDelta(d)
	}
}

package eval

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

// binding is a mutable variable assignment with O(1) set/unset, used by
// the nested-loop join. Variables are identified by name.
type binding struct {
	vals map[string]value.Value
}

func newBinding() *binding { return &binding{vals: make(map[string]value.Value)} }

func (b *binding) lookup(v string) (value.Value, bool) {
	val, ok := b.vals[v]
	return val, ok
}

func (b *binding) set(v string, val value.Value) { b.vals[v] = val }
func (b *binding) unset(v string)                { delete(b.vals, v) }

// evalTerm evaluates a term under b. Unbound variables are an error
// (callers arrange evaluation order so this never fires for valid rules).
func evalTerm(t datalog.Term, b *binding) (value.Value, error) {
	switch x := t.(type) {
	case datalog.Const:
		return x.Value, nil
	case datalog.Var:
		val, ok := b.lookup(string(x))
		if !ok {
			return value.Value{}, fmt.Errorf("eval: unbound variable %s", x)
		}
		return val, nil
	case datalog.Arith:
		l, err := evalTerm(x.Left, b)
		if err != nil {
			return value.Value{}, err
		}
		r, err := evalTerm(x.Right, b)
		if err != nil {
			return value.Value{}, err
		}
		switch x.Op {
		case datalog.OpAdd:
			return value.Add(l, r)
		case datalog.OpSub:
			return value.Sub(l, r)
		case datalog.OpMul:
			return value.Mul(l, r)
		case datalog.OpDiv:
			return value.Div(l, r)
		}
		return value.Value{}, fmt.Errorf("eval: unknown arithmetic operator %v", x.Op)
	default:
		return value.Value{}, fmt.Errorf("eval: unknown term type %T", t)
	}
}

// groundAtom instantiates an atom's arguments under b into a tuple.
// Every argument must be a constant or a bound variable.
func groundAtom(args []datalog.Term, b *binding) (value.Tuple, error) {
	t := make(value.Tuple, len(args))
	for i, a := range args {
		v, err := evalTerm(a, b)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// matchPattern attempts to match tuple against args under b, extending b
// for previously unbound variables. It returns ok and the list of
// variables newly bound (for undo). Constants and bound variables must
// match exactly; repeated variables within args must agree.
func matchPattern(args []datalog.Term, tuple value.Tuple, b *binding) (ok bool, boundVars []string) {
	for i, a := range args {
		switch x := a.(type) {
		case datalog.Const:
			if !x.Value.Equal(tuple[i]) {
				undoBind(b, boundVars)
				return false, nil
			}
		case datalog.Var:
			name := string(x)
			if cur, bound := b.lookup(name); bound {
				if !cur.Equal(tuple[i]) {
					undoBind(b, boundVars)
					return false, nil
				}
			} else {
				b.set(name, tuple[i])
				boundVars = append(boundVars, name)
			}
		default:
			// Expressions never appear in body atoms (validated).
			undoBind(b, boundVars)
			return false, nil
		}
	}
	return true, boundVars
}

func undoBind(b *binding, vars []string) {
	for _, v := range vars {
		b.unset(v)
	}
}

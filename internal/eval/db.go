// Package eval implements bottom-up evaluation of the extended Datalog
// dialect: nested-loop joins with on-demand hash indexes, stratified
// naive and semi-naive fixpoints, duplicate-counting semantics ([Mum91]),
// negation-as-filter and GROUPBY aggregation. The counting and DRed
// maintenance algorithms are built on the rule evaluator exported here.
package eval

import (
	"fmt"
	"sort"

	"ivm/internal/datalog"
	"ivm/internal/relation"
)

// Semantics selects between set semantics (counts are 1, duplicates
// eliminated per stratum, §5.1 of the paper) and duplicate semantics
// (SQL multiset semantics; counts are true multiplicities).
type Semantics uint8

const (
	// Set semantics: relations are sets; stored counts are numbers of
	// derivations treating lower-stratum tuples as count 1.
	Set Semantics = iota
	// Duplicate semantics: SQL multiset semantics; counts multiply across
	// strata.
	Duplicate
)

func (s Semantics) String() string {
	if s == Set {
		return "set"
	}
	return "duplicate"
}

// DB maps predicate names to counted relations. It is the storage
// substrate both for base (edb) and derived (idb) relations.
type DB struct {
	rels map[string]*relation.Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: make(map[string]*relation.Relation)} }

// Get returns the relation for pred, or nil if absent.
func (db *DB) Get(pred string) *relation.Relation { return db.rels[pred] }

// Ensure returns the relation for pred, creating an empty one with the
// given arity if absent.
func (db *DB) Ensure(pred string, arity int) *relation.Relation {
	r, ok := db.rels[pred]
	if !ok {
		r = relation.New(arity)
		db.rels[pred] = r
	}
	return r
}

// Put installs (replacing) the relation for pred.
func (db *DB) Put(pred string, r *relation.Relation) { db.rels[pred] = r }

// Delete removes pred's relation entirely.
func (db *DB) Delete(pred string) { delete(db.rels, pred) }

// Preds returns the predicate names present, sorted.
func (db *DB) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone returns a database with cloned relations.
func (db *DB) Clone() *DB {
	c := NewDB()
	for p, r := range db.rels {
		c.rels[p] = r.Clone()
	}
	return c
}

// rel returns pred's relation or an empty placeholder of unknown arity
// (reads of missing relations behave as empty).
func (db *DB) rel(pred string) *relation.Relation {
	if r := db.rels[pred]; r != nil {
		return r
	}
	return relation.New(-1)
}

// String renders the database deterministically for debugging and tests.
func (db *DB) String() string {
	var out string
	for _, p := range db.Preds() {
		out += fmt.Sprintf("%s = %s\n", p, db.rels[p])
	}
	return out
}

// arityOf determines the arity a program uses pred with (-1 if unseen).
func arityOf(p *datalog.Program, pred string) int {
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			return len(r.Head.Args)
		}
		for _, l := range r.Body {
			switch l.Kind {
			case datalog.LitPositive, datalog.LitNegated:
				if l.Atom.Pred == pred {
					return len(l.Atom.Args)
				}
			case datalog.LitAggregate:
				if l.Agg.Inner.Pred == pred {
					return len(l.Agg.Inner.Args)
				}
			}
		}
	}
	return -1
}

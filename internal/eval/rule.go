package eval

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/relation"
	"ivm/internal/value"
)

// Source supplies the concrete relation a body literal is evaluated
// against, decoupling rule evaluation from *which* version of a relation
// (old, new, or Δ) a maintenance algorithm wants at each position — the
// essence of the paper's delta rules.
type Source struct {
	// Rel is the relation for this literal. For positive literals it is
	// the predicate's relation; for aggregate literals it is the GROUPBY
	// image over (groupVars..., result); for negated literals it is either
	// the predicate's relation (filter mode) or, with JoinDelta set, the
	// precomputed Δ(¬Q) image of Definition 6.1 (join mode). Conditions
	// take no relation.
	Rel relation.Reader
	// JoinDelta marks a negated literal sitting in the Δ-position of a
	// delta rule: its Rel is joined positively (counts ±1) instead of
	// being used as an absence filter.
	JoinDelta bool
}

// EvalRule evaluates one rule with the given per-literal sources and adds
// every derived head tuple (with its derivation count — the product of
// the joined tuples' counts, summed over derivations) into out.
//
// firstLit, when >= 0, forces that body literal to be scanned first: delta
// rules put the Δ-subgoal first because it is usually the most restrictive
// (paper Section 6.1 notes Δ-subgoals lead the join order). The remaining
// literals are ordered greedily, with filters (conditions, negations)
// evaluated as soon as their variables are bound.
func EvalRule(rule datalog.Rule, srcs []Source, firstLit int, out *relation.Relation) error {
	return EvalRuleInstr(rule, srcs, firstLit, out, nil)
}

// joinCounters accumulates access-path counts locally during one rule
// evaluation; they are flushed to Instruments in a single atomic add per
// counter afterwards. Probes are keyed accesses (point lookups, index
// lookups, negation Has checks); scans are full-relation enumerations —
// kept separate so the planner's cost feedback can tell them apart.
type joinCounters struct {
	probes, scans int64
}

// EvalRuleInstr is EvalRule with instrumentation: join probes and scans
// are counted locally during the walk and flushed to in (if non-nil) in
// a single atomic add per counter afterwards, so the instrumented hot
// path differs from the bare one only by a local integer increment per
// access.
func EvalRuleInstr(rule datalog.Rule, srcs []Source, firstLit int, out *relation.Relation, in *Instruments) error {
	if len(srcs) != len(rule.Body) {
		return fmt.Errorf("eval: rule has %d literals but %d sources given", len(rule.Body), len(srcs))
	}
	order, err := orderLiterals(rule, srcs, firstLit)
	if err != nil {
		return err
	}

	var ctr joinCounters
	b := newBinding()
	var walk func(step int, count int64) error
	walk = func(step int, count int64) error {
		if step == len(order) {
			head, err := groundAtom(rule.Head.Args, b)
			if err != nil {
				return err
			}
			out.Add(head, count)
			return nil
		}
		idx := order[step]
		lit := rule.Body[idx]
		src := srcs[idx]

		switch {
		case lit.Kind == datalog.LitCondition:
			l, err := evalTerm(lit.Cond.Left, b)
			if err != nil {
				return err
			}
			r, err := evalTerm(lit.Cond.Right, b)
			if err != nil {
				return err
			}
			if lit.Cond.Op.Eval(l, r) {
				return walk(step+1, count)
			}
			return nil

		case lit.Kind == datalog.LitNegated && !src.JoinDelta:
			t, err := groundAtom(lit.Atom.Args, b)
			if err != nil {
				return err
			}
			ctr.probes++
			if !src.Rel.Has(t) {
				return walk(step+1, count)
			}
			return nil

		default:
			// Join: positive atoms, Δ-images of negations, aggregate images.
			args := joinArgs(lit)
			return joinLiteral(args, src.Rel, b, func(rowCount int64) error {
				return walk(step+1, count*rowCount)
			}, &ctr)
		}
	}
	err = walk(0, 1)
	if in != nil {
		in.JoinProbes.Add(ctr.probes)
		in.JoinScans.Add(ctr.scans)
	}
	return err
}

// joinArgs returns the term pattern a join-mode literal exposes: the
// atom's arguments, or for aggregates the grouping variables followed by
// the result variable (the schema of the GROUPBY relation).
func joinArgs(lit datalog.Literal) []datalog.Term {
	switch lit.Kind {
	case datalog.LitPositive, datalog.LitNegated:
		return lit.Atom.Args
	case datalog.LitAggregate:
		args := make([]datalog.Term, 0, len(lit.Agg.GroupBy)+1)
		for _, v := range lit.Agg.GroupBy {
			args = append(args, v)
		}
		return append(args, lit.Agg.Result)
	}
	return nil
}

// joinLiteral enumerates the rows of rel matching args under the current
// binding, using a hash index on the bound columns when one helps, and
// invokes each with the row's count, extending/retracting the binding
// around the call. ctr (which may be nil) records whether the access was
// a keyed probe or a full scan.
func joinLiteral(args []datalog.Term, rel relation.Reader, b *binding, each func(count int64) error, ctr *joinCounters) error {
	// Classify columns under the current binding.
	var boundCols []int
	var keyVals value.Tuple
	allBound := true
	for i, a := range args {
		switch x := a.(type) {
		case datalog.Const:
			boundCols = append(boundCols, i)
			keyVals = append(keyVals, x.Value)
		case datalog.Var:
			if v, ok := b.lookup(string(x)); ok {
				boundCols = append(boundCols, i)
				keyVals = append(keyVals, v)
			} else {
				allBound = false
			}
		default:
			return fmt.Errorf("eval: expression %s in join pattern", a)
		}
	}

	emit := func(row relation.Row) error {
		ok, newly := matchPattern(args, row.Tuple, b)
		if !ok {
			return nil
		}
		err := each(row.Count)
		undoBind(b, newly)
		return err
	}

	switch {
	case allBound && len(args) > 0:
		// Point lookup.
		t, err := groundAtom(args, b)
		if err != nil {
			return err
		}
		if ctr != nil {
			ctr.probes++
		}
		if c := rel.Count(t); c != 0 {
			return each(c)
		}
		return nil
	case len(boundCols) > 0:
		if ctr != nil {
			ctr.probes++
		}
		for _, row := range rel.Lookup(boundCols, keyVals) {
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	default:
		if ctr != nil {
			ctr.scans++
		}
		var err error
		rel.Each(func(row relation.Row) {
			if err != nil {
				return
			}
			err = emit(row)
		})
		return err
	}
}

// orderLiterals produces a safe, greedy evaluation order: the designated
// first literal (if join-capable) leads; filters run as soon as all their
// variables are bound; remaining joins are chosen by most-bound-columns
// first (original order breaking ties).
func orderLiterals(rule datalog.Rule, srcs []Source, firstLit int) ([]int, error) {
	n := len(rule.Body)
	remaining := make([]bool, n)
	for i := range remaining {
		remaining[i] = true
	}
	bound := make(map[string]bool)
	order := make([]int, 0, n)

	isFilter := func(i int) bool {
		l := rule.Body[i]
		return l.Kind == datalog.LitCondition || (l.Kind == datalog.LitNegated && !srcs[i].JoinDelta)
	}
	ready := func(i int) bool {
		for _, v := range rule.Body[i].UsesVars(nil) {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	take := func(i int) {
		remaining[i] = false
		order = append(order, i)
		if !isFilter(i) {
			for _, t := range joinArgs(rule.Body[i]) {
				for _, v := range t.Vars(nil) {
					bound[v] = true
				}
			}
		}
	}
	flushFilters := func() {
		for i := 0; i < n; i++ {
			if remaining[i] && isFilter(i) && ready(i) {
				take(i)
			}
		}
	}

	if firstLit >= 0 && firstLit < n && !isFilter(firstLit) {
		take(firstLit)
	}
	flushFilters()

	for {
		done := true
		for i := 0; i < n; i++ {
			if remaining[i] {
				done = false
				break
			}
		}
		if done {
			return order, nil
		}
		// Pick the join literal with the most variables already bound;
		// break ties toward the smaller relation (cheaper fan-out).
		best, bestScore, bestLen := -1, -1, 0
		for i := 0; i < n; i++ {
			if !remaining[i] || isFilter(i) {
				continue
			}
			score := 0
			for _, t := range joinArgs(rule.Body[i]) {
				for _, v := range t.Vars(nil) {
					if bound[v] {
						score++
					}
				}
				if _, isConst := t.(datalog.Const); isConst {
					score++
				}
			}
			size := 0
			if srcs[i].Rel != nil {
				size = srcs[i].Rel.Len()
			}
			if score > bestScore || (score == bestScore && size < bestLen) {
				best, bestScore, bestLen = i, score, size
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eval: rule %q has filters with unbound variables and no remaining joins", rule.String())
		}
		take(best)
		flushFilters()
	}
}

package eval

import (
	"testing"

	"ivm/internal/datalog"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/strata"
	"ivm/internal/value"
)

func parseProgram(t testing.TB, src string) (*datalog.Program, *strata.Stratification) {
	t.Helper()
	prog, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := datalog.Validate(prog); err != nil {
		t.Fatal(err)
	}
	st, err := strata.Compute(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, st
}

func loadDB(t testing.TB, src string) *DB {
	t.Helper()
	facts, err := parser.ParseDelta(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	for _, f := range facts {
		db.Ensure(f.Pred, len(f.Tuple)).Add(f.Tuple, f.Count)
	}
	return db
}

func counts(r *relation.Relation) map[string]int64 {
	out := make(map[string]int64)
	r.Each(func(row relation.Row) {
		key := ""
		for i, v := range row.Tuple {
			if i > 0 {
				key += ","
			}
			key += v.String()
		}
		out[key] = row.Count
	})
	return out
}

func wantCounts(t *testing.T, r *relation.Relation, want map[string]int64) {
	t.Helper()
	got := counts(r)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("tuple %s: count %d, want %d (full %v)", k, got[k], c, got)
		}
	}
}

func TestEvalRuleCountsMultiply(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 2)
	link.Add(value.T("b", "c"), 3)
	out := relation.New(2)
	err := EvalRule(prog.Rules[0], []Source{{Rel: link}, {Rel: link}}, -1, out)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,c": 6})
}

func TestEvalRuleRepeatedVariables(t *testing.T) {
	prog, _ := parseProgram(t, `loop(X) :- link(X,X).`)
	link := relation.New(2)
	link.Add(value.T("a", "a"), 1)
	link.Add(value.T("a", "b"), 1)
	out := relation.New(1)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: link}}, -1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a": 1})
}

func TestEvalRuleConstantsInBody(t *testing.T) {
	prog, _ := parseProgram(t, `fromA(Y) :- link(a, Y).`)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	link.Add(value.T("x", "y"), 1)
	out := relation.New(1)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: link}}, -1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"b": 1})
}

func TestEvalRuleNegationFilter(t *testing.T) {
	prog, _ := parseProgram(t, `only(X,Y) :- t(X,Y), !h(X,Y).`)
	tRel := relation.New(2)
	tRel.Add(value.T("a", "b"), 2)
	tRel.Add(value.T("a", "c"), 1)
	h := relation.New(2)
	h.Add(value.T("a", "c"), 5)
	out := relation.New(2)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: tRel}, {Rel: h}}, -1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,b": 2})
}

func TestEvalRuleNegationJoinDelta(t *testing.T) {
	// Δ(¬h) join mode: the negation's relation is a signed delta image.
	prog, _ := parseProgram(t, `only(X,Y) :- t(X,Y), !h(X,Y).`)
	tRel := relation.New(2)
	tRel.Add(value.T("a", "b"), 1)
	tRel.Add(value.T("a", "c"), 1)
	dNotH := relation.New(2)
	dNotH.Add(value.T("a", "b"), -1) // h(a,b) became true
	out := relation.New(2)
	srcs := []Source{{Rel: tRel}, {Rel: dNotH, JoinDelta: true}}
	if err := EvalRule(prog.Rules[0], srcs, 1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,b": -1})
}

func TestEvalRuleConditionsAndArithmetic(t *testing.T) {
	prog, _ := parseProgram(t, `big(X, C*2) :- p(X, C), C > 2, C != 4.`)
	p := relation.New(2)
	p.Add(value.T("a", 1), 1)
	p.Add(value.T("b", 3), 1)
	p.Add(value.T("c", 4), 1)
	p.Add(value.T("d", 9), 2)
	out := relation.New(2)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: p}, {}, {}}, -1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"b,6": 1, "d,18": 2})
}

func TestEvalRuleFirstLiteralOverride(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	link := relation.New(2)
	link.Add(value.T("a", "b"), 1)
	link.Add(value.T("b", "c"), 1)
	delta := relation.New(2)
	delta.Add(value.T("b", "c"), -1)
	// Δ at position 1: hop(X,Y) :- link(X,Z), Δlink(Z,Y).
	out := relation.New(2)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: link}, {Rel: delta}}, 1, out); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, out, map[string]int64{"a,c": -1})
}

func TestEvalRuleSourceCountMismatch(t *testing.T) {
	prog, _ := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err := EvalRule(prog.Rules[0], []Source{{Rel: relation.New(2)}}, -1, relation.New(2)); err == nil {
		t.Fatal("source count mismatch must error")
	}
}

func TestEvaluateNonrecursiveDuplicate(t *testing.T) {
	prog, st := parseProgram(t, `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).`)
	ev := NewEvaluator(prog, st, Duplicate)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("hop"), map[string]int64{"a,c": 2, "d,h": 1, "b,h": 1})
	wantCounts(t, db.Get("tri_hop"), map[string]int64{"a,h": 2})
}

func TestEvaluateSetSemanticsPerStratumCounts(t *testing.T) {
	// Section 5.1: under set semantics, a stratum-2 predicate counts
	// derivations treating stratum-1 tuples as count 1.
	prog, st := parseProgram(t, `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b). link(a,d). link(d,c). link(b,c). link(c,h). link(f,g).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	// hop(a,c) still has 2 derivations within its stratum...
	wantCounts(t, db.Get("hop"), map[string]int64{"a,c": 2, "d,h": 1, "b,h": 1})
	// ...but tri_hop(a,h) counts hop(a,c) once.
	wantCounts(t, db.Get("tri_hop"), map[string]int64{"a,h": 1})
}

func TestEvaluateRecursiveTransitiveClosure(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b). link(b,c). link(c,d).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("tc"), map[string]int64{
		"a,b": 1, "a,c": 1, "a,d": 1, "b,c": 1, "b,d": 1, "c,d": 1,
	})
}

func TestEvaluateRecursiveCycle(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b). link(b,a).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("tc"), map[string]int64{
		"a,b": 1, "b,a": 1, "a,a": 1, "b,b": 1,
	})
}

func TestEvaluateMutualRecursion(t *testing.T) {
	prog, st := parseProgram(t, `
		even(X) :- zero(X).
		even(Y) :- odd(X), succ(X,Y).
		odd(Y)  :- even(X), succ(X,Y).
	`)
	db := loadDB(t, `zero(0). succ(0,1). succ(1,2). succ(2,3). succ(3,4).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("even"), map[string]int64{"0": 1, "2": 1, "4": 1})
	wantCounts(t, db.Get("odd"), map[string]int64{"1": 1, "3": 1})
}

func TestEvaluateRecursiveDuplicateRejected(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`)
	db := loadDB(t, `link(a,b).`)
	ev := NewEvaluator(prog, st, Duplicate)
	if err := ev.Evaluate(db); err != ErrRecursiveDuplicates {
		t.Fatalf("err = %v, want ErrRecursiveDuplicates", err)
	}
}

func TestEvaluateNegationAboveRecursion(t *testing.T) {
	prog, st := parseProgram(t, `
		tc(X,Y)      :- link(X,Y).
		tc(X,Y)      :- tc(X,Z), link(Z,Y).
		unreach(X,Y) :- node(X), node(Y), !tc(X,Y).
	`)
	db := loadDB(t, `link(a,b). node(a). node(b).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("unreach"), map[string]int64{
		"a,a": 1, "b,a": 1, "b,b": 1,
	})
}

func TestEvaluateMatchesNaiveOracle(t *testing.T) {
	src := `
		hop(X,Y)    :- link(X,Z), link(Z,Y).
		tc(X,Y)     :- link(X,Y).
		tc(X,Y)     :- tc(X,Z), link(Z,Y).
		both(X,Y)   :- hop(X,Y), tc(X,Y).
		lonely(X,Y) :- tc(X,Y), !hop(X,Y).
	`
	prog, st := parseProgram(t, src)
	facts := `link(a,b). link(b,c). link(c,a). link(c,d). link(d,e). link(a,e).`
	db1 := loadDB(t, facts)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db1); err != nil {
		t.Fatal(err)
	}
	db2 := loadDB(t, facts)
	if err := NaiveEvaluate(prog, st, db2); err != nil {
		t.Fatal(err)
	}
	for pred := range prog.DerivedPreds() {
		if !relation.EqualAsSets(db1.Get(pred), db2.Get(pred)) {
			t.Fatalf("%s: semi-naive %v vs naive %v", pred, db1.Get(pred), db2.Get(pred))
		}
	}
}

func TestTrackCountsOffCollapsesToSets(t *testing.T) {
	prog, st := parseProgram(t, `hop(X,Y) :- link(X,Z), link(Z,Y).`)
	db := loadDB(t, `link(a,b). link(a,d). link(d,c). link(b,c).`)
	ev := NewEvaluator(prog, st, Duplicate)
	ev.TrackCounts = false
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("hop"), map[string]int64{"a,c": 1})
}

func TestGroupTableBuildAndDeltas(t *testing.T) {
	prog, _ := parseProgram(t, `m(S,M) :- groupby(u(S,C), [S], M = min(C)).`)
	g := prog.Rules[0].Body[0].Agg

	u := relation.New(2)
	u.Add(value.T("a", 5), 1)
	u.Add(value.T("a", 3), 1)
	u.Add(value.T("b", 7), 1)

	gt, err := BuildGroupTable(g, u)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, gt.Rel(), map[string]int64{"a,3": 1, "b,7": 1})

	// Insert a new minimum for a; delete b entirely; create group c.
	du := relation.New(2)
	du.Add(value.T("a", 1), 1)
	du.Add(value.T("b", 7), -1)
	du.Add(value.T("c", 9), 1)
	uNew := relation.Overlay(u, du)
	dt, err := gt.ApplyDelta(du, uNew)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, dt, map[string]int64{"a,3": -1, "a,1": 1, "b,7": -1, "c,9": 1})
	gt.Commit(dt)
	u.MergeDelta(du)
	wantCounts(t, gt.Rel(), map[string]int64{"a,1": 1, "c,9": 1})

	// Now delete the minimum of a: rescan path must find 3 … wait, 3 is
	// still present (we only inserted 1); removing 1 rescans to 3.
	du2 := relation.New(2)
	du2.Add(value.T("a", 1), -1)
	dt2, err := gt.ApplyDelta(du2, relation.Overlay(u, du2))
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, dt2, map[string]int64{"a,1": -1, "a,3": 1})
	gt.Commit(dt2)
	u.MergeDelta(du2)

	// Unchanged aggregate emits nothing (delete a non-extremal member).
	u.Add(value.T("a", 99), 1)
	du3 := relation.New(2)
	du3.Add(value.T("a", 99), -1)
	dt3, err := gt.ApplyDelta(du3, relation.Overlay(u, du3))
	if err != nil {
		t.Fatal(err)
	}
	if dt3.Len() != 0 {
		t.Fatalf("unchanged group must emit no ΔT: %v", dt3)
	}
	gt.Commit(dt3)
}

func TestGroupTableConstPatternFilters(t *testing.T) {
	prog, _ := parseProgram(t, `m(S,M) :- groupby(u(S,k,C), [S], M = sum(C)).`)
	g := prog.Rules[0].Body[0].Agg
	u := relation.New(3)
	u.Add(value.T("a", "k", 5), 1)
	u.Add(value.T("a", "other", 100), 1) // filtered by the constant
	gt, err := BuildGroupTable(g, u)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, gt.Rel(), map[string]int64{"a,5": 1})
}

func TestGroupTableDuplicateMultiplicities(t *testing.T) {
	prog, _ := parseProgram(t, `m(S,M) :- groupby(u(S,C), [S], M = count(C)).`)
	g := prog.Rules[0].Body[0].Agg
	u := relation.New(2)
	u.Add(value.T("a", 5), 3) // three duplicates
	gt, err := BuildGroupTable(g, u)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts(t, gt.Rel(), map[string]int64{"a,3": 1})
}

func TestEvaluateWithAggregate(t *testing.T) {
	prog, st := parseProgram(t, `
		m(S, M)   :- groupby(u(S, C), [S], M = sum(C)).
		big(S)    :- m(S, M), M > 10.
	`)
	db := loadDB(t, `u(a, 5). u(a, 7). u(b, 2).`)
	ev := NewEvaluator(prog, st, Set)
	if err := ev.Evaluate(db); err != nil {
		t.Fatal(err)
	}
	wantCounts(t, db.Get("m"), map[string]int64{"a,12": 1, "b,2": 1})
	wantCounts(t, db.Get("big"), map[string]int64{"a": 1})
	if len(ev.GroupTables) != 1 {
		t.Fatalf("group tables: %d", len(ev.GroupTables))
	}
}

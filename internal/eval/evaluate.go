package eval

import (
	"fmt"

	"ivm/internal/datalog"
	"ivm/internal/relation"
	"ivm/internal/strata"
)

// RuleLit addresses one body literal of one program rule; it keys the
// group tables an Evaluator builds for aggregate subgoals.
type RuleLit struct {
	Rule, Lit int
}

// Evaluator computes the materialization of a validated, stratified
// program bottom-up, stratum by stratum. Nonrecursive strata are
// evaluated in a single pass with derivation counting; recursive strata
// run a semi-naive fixpoint under set semantics (counting recursive views
// may not terminate — the paper restricts counting to nonrecursive views).
type Evaluator struct {
	prog  *datalog.Program
	strat *strata.Stratification
	sem   Semantics

	// TrackCounts, when false, collapses every derived relation to its
	// set image after evaluation — the "duplicate elimination without
	// counting" baseline of Section 5 used to measure counting overhead.
	TrackCounts bool

	// RecursiveCounts enables duplicate-semantics evaluation of recursive
	// strata via counted semi-naive fixpoints ([GKM92]): count(t) becomes
	// the number of derivation trees, finite only on acyclic derivations.
	// Divergent strata return *ErrCountsDiverge after MaxIterations.
	RecursiveCounts bool

	// MaxIterations bounds counted recursive fixpoints (0 = the package
	// default).
	MaxIterations int

	// Parallelism is the number of worker goroutines used to evaluate the
	// independent rules of a stratum (and the rounds of a semi-naive
	// fixpoint) concurrently. Values <= 1 evaluate sequentially. Results
	// are identical either way: workers write private buffers that are
	// ⊎-merged deterministically.
	Parallelism int

	// Instr, when non-nil, collects low-level evaluation metrics (join
	// probes, batch tasks, worker timings) during Evaluate.
	Instr *Instruments

	// Planner, when non-nil, supplies cached cost-based plans for rule
	// evaluation; nil keeps the greedy per-call join order.
	Planner *Planner

	// GroupTables holds the GROUPBY materializations built during
	// Evaluate, keyed by (rule index, literal index). Maintenance engines
	// adopt these to run Algorithm 6.1 incrementally.
	GroupTables map[RuleLit]*GroupTable
}

// NewEvaluator builds an evaluator. The program must already validate.
func NewEvaluator(prog *datalog.Program, st *strata.Stratification, sem Semantics) *Evaluator {
	return &Evaluator{
		prog:        prog,
		strat:       st,
		sem:         sem,
		TrackCounts: true,
		GroupTables: make(map[RuleLit]*GroupTable),
	}
}

// ErrRecursiveDuplicates is returned when duplicate semantics is requested
// for a recursive program: recursive counts can be infinite (Section 8).
var ErrRecursiveDuplicates = fmt.Errorf("eval: duplicate semantics is not supported for recursive programs (counts may be infinite)")

// source returns the reader for a subgoal over pred: under set semantics
// lower-stratum relations are consumed as set images (Section 5.1).
func (e *Evaluator) source(db *DB, pred string) relation.Reader {
	r := db.rel(pred)
	if e.sem == Set {
		return relation.SetImage(r)
	}
	return r
}

// Evaluate materializes every derived predicate of the program into db
// (which supplies the base relations). Derived relations already in db
// are replaced.
func (e *Evaluator) Evaluate(db *DB) error {
	byStratum := e.strat.RulesByStratum(e.prog)
	// Reset derived relations.
	for pred := range e.prog.DerivedPreds() {
		db.Put(pred, relation.New(arityOf(e.prog, pred)))
	}
	for s := 1; s <= e.strat.MaxStratum; s++ {
		rules := byStratum[s]
		if len(rules) == 0 {
			continue
		}
		recursive := false
		for _, ri := range rules {
			if e.strat.Recursive[e.prog.Rules[ri].Head.Pred] {
				recursive = true
				break
			}
		}
		var err error
		switch {
		case recursive && e.sem == Duplicate && e.RecursiveCounts:
			err = e.evalRecursiveStratumCounted(db, s, rules)
		case recursive && e.sem == Duplicate:
			return ErrRecursiveDuplicates
		case recursive:
			err = e.evalRecursiveStratum(db, s, rules)
		default:
			err = e.evalFlatStratum(db, rules)
		}
		if err != nil {
			return err
		}
	}
	if !e.TrackCounts {
		for pred := range e.prog.DerivedPreds() {
			db.Put(pred, db.rel(pred).ToSet())
		}
	}
	return nil
}

// sources resolves every literal of rule ri against db, building group
// tables for aggregate subgoals. inStratum optionally overrides readers
// for same-stratum predicates (semi-naive fixpoints pass the working
// relations); it may be nil.
func (e *Evaluator) sources(db *DB, ri int, inStratum map[string]relation.Reader) ([]Source, error) {
	rule := e.prog.Rules[ri]
	srcs := make([]Source, len(rule.Body))
	for li, lit := range rule.Body {
		switch lit.Kind {
		case datalog.LitPositive, datalog.LitNegated:
			if r, ok := inStratum[lit.Atom.Pred]; ok {
				srcs[li] = Source{Rel: r}
			} else {
				srcs[li] = Source{Rel: e.source(db, lit.Atom.Pred)}
			}
		case datalog.LitAggregate:
			key := RuleLit{ri, li}
			gt, ok := e.GroupTables[key]
			if !ok {
				var err error
				gt, err = BuildGroupTable(lit.Agg, e.source(db, lit.Agg.Inner.Pred))
				if err != nil {
					return nil, err
				}
				e.GroupTables[key] = gt
			}
			srcs[li] = Source{Rel: gt.Rel()}
		case datalog.LitCondition:
			// no relation
		}
	}
	return srcs, nil
}

// planFor is the Evaluator's planner lookup: full-evaluation plans keyed
// by rule and restricted literal (-1 outside semi-naive rounds). A nil
// Planner yields a nil plan (greedy order).
func (e *Evaluator) planFor(ri, delta int, rule datalog.Rule, srcs []Source) (*Plan, error) {
	return e.Planner.PlanFor(PlanKey{Rule: ri, Kind: PlanEval, Delta: delta}, rule, srcs, delta)
}

// evalFlatStratum evaluates a nonrecursive stratum in one pass, with
// full derivation counting. Stratum numbers strictly increase along
// every cross-component dependency edge (see strata.computeSN), so the
// rules of a flat stratum never read each other's heads and can be
// evaluated concurrently.
func (e *Evaluator) evalFlatStratum(db *DB, rules []int) error {
	if e.Parallelism > 1 {
		return e.evalFlatStratumParallel(db, rules)
	}
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		out := db.Ensure(rule.Head.Pred, len(rule.Head.Args))
		srcs, err := e.sources(db, ri, nil)
		if err != nil {
			return err
		}
		plan, err := e.planFor(ri, -1, rule, srcs)
		if err != nil {
			return err
		}
		if err := EvalRulePlanInstr(rule, srcs, -1, plan, out, e.Instr); err != nil {
			return err
		}
	}
	return nil
}

// evalFlatStratumParallel is evalFlatStratum over a worker pool: sources
// (including group-table builds, which memoize into e.GroupTables) are
// resolved sequentially up front, each rule evaluates into a private
// output, and the outputs are merged in rule order.
func (e *Evaluator) evalFlatStratumParallel(db *DB, rules []int) error {
	tasks := make([]Task, 0, len(rules))
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		db.Ensure(rule.Head.Pred, len(rule.Head.Args))
		srcs, err := e.sources(db, ri, nil)
		if err != nil {
			return err
		}
		plan, err := e.planFor(ri, -1, rule, srcs)
		if err != nil {
			return err
		}
		tasks = append(tasks, Task{
			Rule: rule, Srcs: srcs, FirstLit: -1, Plan: plan,
			Out: relation.New(len(rule.Head.Args)),
		})
	}
	if err := RunBatchInstr(tasks, e.Parallelism, e.Instr); err != nil {
		return err
	}
	for k, ri := range rules {
		rule := e.prog.Rules[ri]
		db.Ensure(rule.Head.Pred, len(rule.Head.Args)).MergeDelta(tasks[k].Out)
	}
	return nil
}

// evalRecursiveStratum runs a semi-naive fixpoint over the stratum's
// rules under set semantics: every derived tuple is stored with count 1;
// per round, each rule is re-evaluated once per same-stratum body literal
// with that literal restricted to the previous round's delta.
func (e *Evaluator) evalRecursiveStratum(db *DB, s int, rules []int) error {
	inStratum := make(map[string]bool)
	for _, ri := range rules {
		inStratum[e.prog.Rules[ri].Head.Pred] = true
	}

	// Working relations (the stratum's predicates start empty).
	work := make(map[string]relation.Reader)
	for pred := range inStratum {
		work[pred] = db.rel(pred)
	}

	collect := func(tmp *relation.Relation, pred string, delta *relation.Relation) {
		full := db.rel(pred)
		tmp.Each(func(row relation.Row) {
			if row.Count > 0 && !full.Has(row.Tuple) {
				full.Add(row.Tuple, 1)
				delta.Add(row.Tuple, 1)
			}
		})
	}

	// Seed round: evaluate every rule against the (empty) stratum
	// relations — this covers all derivations not using in-stratum
	// predicates (the base cases). Each round's evaluations are
	// independent (they read the working relations and write private
	// outputs), so they form a batch that RunBatch may spread over
	// workers; the folds run sequentially afterwards, in task order.
	delta := make(map[string]*relation.Relation)
	for pred := range inStratum {
		delta[pred] = relation.New(arityOf(e.prog, pred))
	}
	seed := make([]Task, 0, len(rules))
	for _, ri := range rules {
		rule := e.prog.Rules[ri]
		srcs, err := e.sources(db, ri, work)
		if err != nil {
			return err
		}
		plan, err := e.planFor(ri, -1, rule, srcs)
		if err != nil {
			return err
		}
		seed = append(seed, Task{
			Rule: rule, Srcs: srcs, FirstLit: -1, Plan: plan,
			Out: relation.New(len(rule.Head.Args)),
		})
	}
	if err := RunBatchInstr(seed, e.Parallelism, e.Instr); err != nil {
		return err
	}
	for _, t := range seed {
		collect(t.Out, t.Rule.Head.Pred, delta[t.Rule.Head.Pred])
	}

	for {
		advanced := false
		for _, d := range delta {
			if !d.Empty() {
				advanced = true
				break
			}
		}
		if !advanced {
			return nil
		}
		next := make(map[string]*relation.Relation)
		for pred := range inStratum {
			next[pred] = relation.New(arityOf(e.prog, pred))
		}
		var round []Task
		for _, ri := range rules {
			rule := e.prog.Rules[ri]
			for li, lit := range rule.Body {
				if lit.Kind != datalog.LitPositive || !inStratum[lit.Atom.Pred] {
					continue
				}
				d := delta[lit.Atom.Pred]
				if d.Empty() {
					continue
				}
				srcs, err := e.sources(db, ri, work)
				if err != nil {
					return err
				}
				srcs[li] = Source{Rel: d}
				plan, err := e.planFor(ri, li, rule, srcs)
				if err != nil {
					return err
				}
				round = append(round, Task{
					Rule: rule, Srcs: srcs, FirstLit: li, Plan: plan,
					Out: relation.New(len(rule.Head.Args)),
				})
			}
		}
		if err := RunBatchInstr(round, e.Parallelism, e.Instr); err != nil {
			return err
		}
		for _, t := range round {
			collect(t.Out, t.Rule.Head.Pred, next[t.Rule.Head.Pred])
		}
		delta = next
	}
}

// NaiveEvaluate evaluates the program by naive fixpoint iteration under
// set semantics — slow but obviously correct; used as a test oracle.
func NaiveEvaluate(prog *datalog.Program, st *strata.Stratification, db *DB) error {
	for pred := range prog.DerivedPreds() {
		db.Put(pred, relation.New(arityOf(prog, pred)))
	}
	byStratum := st.RulesByStratum(prog)
	for s := 1; s <= st.MaxStratum; s++ {
		rules := byStratum[s]
		for {
			changed := false
			for _, ri := range rules {
				rule := prog.Rules[ri]
				srcs := make([]Source, len(rule.Body))
				for li, lit := range rule.Body {
					switch lit.Kind {
					case datalog.LitPositive, datalog.LitNegated:
						srcs[li] = Source{Rel: relation.SetImage(db.rel(lit.Atom.Pred))}
					case datalog.LitAggregate:
						gt, err := BuildGroupTable(lit.Agg, relation.SetImage(db.rel(lit.Agg.Inner.Pred)))
						if err != nil {
							return err
						}
						srcs[li] = Source{Rel: gt.Rel()}
					}
				}
				tmp := relation.New(len(rule.Head.Args))
				if err := EvalRule(rule, srcs, -1, tmp); err != nil {
					return err
				}
				full := db.rel(rule.Head.Pred)
				var cerr error
				tmp.Each(func(row relation.Row) {
					if cerr == nil && row.Count > 0 && !full.Has(row.Tuple) {
						full.Add(row.Tuple, 1)
						changed = true
					}
				})
				if cerr != nil {
					return cerr
				}
			}
			if !changed {
				break
			}
		}
	}
	return nil
}

package agg

import (
	"math"
	"testing"
	"testing/quick"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

func mustNew(t *testing.T, f datalog.AggFunc) State {
	t.Helper()
	s, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func addAll(t *testing.T, s State, vals ...int64) {
	t.Helper()
	for _, v := range vals {
		if err := s.Add(value.NewInt(v), 1); err != nil {
			t.Fatal(err)
		}
	}
}

func result(t *testing.T, s State) value.Value {
	t.Helper()
	v, ok := s.Result()
	if !ok {
		t.Fatal("empty group")
	}
	return v
}

func TestUnknownFunc(t *testing.T) {
	if _, err := New("median"); err == nil {
		t.Fatal("unknown function must error")
	}
}

func TestIncrementalClassification(t *testing.T) {
	if Incremental(datalog.AggMin) || Incremental(datalog.AggMax) {
		t.Error("MIN/MAX are not incrementally computable downward")
	}
	for _, f := range []datalog.AggFunc{datalog.AggSum, datalog.AggCount, datalog.AggAvg, datalog.AggVariance} {
		if !Incremental(f) {
			t.Errorf("%s is incrementally computable", f)
		}
	}
}

func TestMinBasics(t *testing.T) {
	s := mustNew(t, datalog.AggMin)
	if _, ok := s.Result(); ok {
		t.Fatal("empty min")
	}
	addAll(t, s, 5, 3, 9)
	if result(t, s).Int() != 3 {
		t.Fatalf("min = %v", result(t, s))
	}
	// Removing a non-minimum is exact.
	if rescan, err := s.Remove(value.NewInt(9), 1); err != nil || rescan {
		t.Fatalf("remove 9: rescan=%v err=%v", rescan, err)
	}
	if result(t, s).Int() != 3 {
		t.Fatal("min unchanged")
	}
	// Removing the unique minimum forces a rescan.
	rescan, err := s.Remove(value.NewInt(3), 1)
	if err != nil || !rescan {
		t.Fatalf("remove min: rescan=%v err=%v", rescan, err)
	}
	if _, ok := s.Result(); ok {
		t.Fatal("state is invalid after a rescan request")
	}
}

func TestMinDuplicatedExtremum(t *testing.T) {
	s := mustNew(t, datalog.AggMin)
	addAll(t, s, 3, 3, 7)
	if rescan, err := s.Remove(value.NewInt(3), 1); err != nil || rescan {
		t.Fatalf("removing one of two minima must stay exact: rescan=%v err=%v", rescan, err)
	}
	if result(t, s).Int() != 3 {
		t.Fatal("min still 3")
	}
}

func TestMinRemoveLastMember(t *testing.T) {
	s := mustNew(t, datalog.AggMin)
	addAll(t, s, 4)
	rescan, err := s.Remove(value.NewInt(4), 1)
	if err != nil || rescan {
		t.Fatalf("emptying the group is exact: rescan=%v err=%v", rescan, err)
	}
	if _, ok := s.Result(); ok {
		t.Fatal("group empty")
	}
}

func TestMinMultiplicity(t *testing.T) {
	s := mustNew(t, datalog.AggMin)
	if err := s.Add(value.NewInt(2), 3); err != nil {
		t.Fatal(err)
	}
	if rescan, _ := s.Remove(value.NewInt(2), 2); rescan {
		t.Fatal("two of three copies removed: exact")
	}
	if result(t, s).Int() != 2 {
		t.Fatal("min still 2")
	}
}

func TestMaxMirrorsMin(t *testing.T) {
	s := mustNew(t, datalog.AggMax)
	addAll(t, s, 5, 3, 9)
	if result(t, s).Int() != 9 {
		t.Fatal("max = 9")
	}
	if rescan, _ := s.Remove(value.NewInt(3), 1); rescan {
		t.Fatal("removing non-max is exact")
	}
	if rescan, _ := s.Remove(value.NewInt(9), 1); !rescan {
		t.Fatal("removing the max needs a rescan")
	}
}

func TestMinOverStrings(t *testing.T) {
	s := mustNew(t, datalog.AggMin)
	for _, x := range []string{"pear", "apple", "fig"} {
		if err := s.Add(value.NewString(x), 1); err != nil {
			t.Fatal(err)
		}
	}
	if result(t, s).Str() != "apple" {
		t.Fatalf("min string = %v", result(t, s))
	}
}

func TestSumIntExactAndFloatSwitch(t *testing.T) {
	s := mustNew(t, datalog.AggSum)
	addAll(t, s, 1, 2, 3)
	if got := result(t, s); got.Kind() != value.Int || got.Int() != 6 {
		t.Fatalf("sum = %v", got)
	}
	if err := s.Add(value.NewFloat(0.5), 1); err != nil {
		t.Fatal(err)
	}
	if got := result(t, s); got.Kind() != value.Float || got.Float() != 6.5 {
		t.Fatalf("sum after float = %v", got)
	}
	if _, err := s.Remove(value.NewInt(2), 1); err != nil {
		t.Fatal(err)
	}
	if got := result(t, s); math.Abs(got.Float()-4.5) > 1e-12 {
		t.Fatalf("sum after remove = %v", got)
	}
}

func TestSumRejectsStrings(t *testing.T) {
	s := mustNew(t, datalog.AggSum)
	if err := s.Add(value.NewString("x"), 1); err == nil {
		t.Fatal("sum over strings must error")
	}
}

func TestCount(t *testing.T) {
	s := mustNew(t, datalog.AggCount)
	if err := s.Add(value.NewString("anything"), 2); err != nil {
		t.Fatal(err)
	}
	addAll(t, s, 7)
	if result(t, s).Int() != 3 {
		t.Fatalf("count = %v", result(t, s))
	}
	if _, err := s.Remove(value.NewInt(7), 1); err != nil {
		t.Fatal(err)
	}
	if result(t, s).Int() != 2 {
		t.Fatal("count = 2")
	}
	if _, err := s.Remove(value.NewString("anything"), 3); err == nil {
		t.Fatal("underflow must error")
	}
}

func TestAvg(t *testing.T) {
	s := mustNew(t, datalog.AggAvg)
	addAll(t, s, 2, 4, 6)
	if got := result(t, s).Float(); got != 4 {
		t.Fatalf("avg = %v", got)
	}
	if _, err := s.Remove(value.NewInt(6), 1); err != nil {
		t.Fatal(err)
	}
	if got := result(t, s).Float(); got != 3 {
		t.Fatalf("avg = %v", got)
	}
}

func TestVariance(t *testing.T) {
	s := mustNew(t, datalog.AggVariance)
	addAll(t, s, 2, 4, 4, 4, 5, 5, 7, 9)
	if got := result(t, s).Float(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("variance = %v, want 4", got)
	}
	// Removing back to a singleton gives variance 0.
	for _, x := range []int64{2, 4, 4, 4, 5, 5, 7} {
		if _, err := s.Remove(value.NewInt(x), 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := result(t, s).Float(); got != 0 {
		t.Fatalf("singleton variance = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	for _, f := range []datalog.AggFunc{datalog.AggMin, datalog.AggMax, datalog.AggSum, datalog.AggCount, datalog.AggAvg, datalog.AggVariance} {
		s := mustNew(t, f)
		addAll(t, s, 5)
		c := s.Clone()
		addAll(t, c, 100)
		v1, _ := s.Result()
		if f == datalog.AggMin && v1.Int() != 5 {
			t.Errorf("%s: clone leaked into original", f)
		}
		if f == datalog.AggCount && v1.Int() != 1 {
			t.Errorf("%s: clone leaked into original", f)
		}
	}
}

// TestSumQuickAddRemoveInverse: any interleaving of adds then removes of
// the same multiset returns the state to empty.
func TestSumQuickAddRemoveInverse(t *testing.T) {
	f := func(vals []int16) bool {
		s, _ := New(datalog.AggSum)
		for _, v := range vals {
			if s.Add(value.NewInt(int64(v)), 1) != nil {
				return false
			}
		}
		for _, v := range vals {
			if _, err := s.Remove(value.NewInt(int64(v)), 1); err != nil {
				return false
			}
		}
		_, ok := s.Result()
		return !ok // empty again
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMinQuickAgainstOracle: MIN with arbitrary add/remove sequences
// matches a recomputed oracle whenever Remove stayed exact.
func TestMinQuickAgainstOracle(t *testing.T) {
	f := func(ops []int8) bool {
		s, _ := New(datalog.AggMin)
		multiset := map[int64]int64{}
		for _, op := range ops {
			v := int64(op % 8)
			if op >= 0 {
				if s.Add(value.NewInt(v), 1) != nil {
					return false
				}
				multiset[v]++
				continue
			}
			if multiset[v] == 0 {
				continue // invalid removal; skip
			}
			rescan, err := s.Remove(value.NewInt(v), 1)
			if err != nil {
				return false
			}
			multiset[v]--
			if rescan {
				// rebuild, as the engine would
				s, _ = New(datalog.AggMin)
				for mv, n := range multiset {
					if n > 0 {
						if s.Add(value.NewInt(mv), n) != nil {
							return false
						}
					}
				}
			}
		}
		// Compare with oracle.
		var want *int64
		for mv, n := range multiset {
			if n > 0 && (want == nil || mv < *want) {
				v := mv
				want = &v
			}
		}
		got, ok := s.Result()
		if want == nil {
			return !ok
		}
		return ok && got.Int() == *want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

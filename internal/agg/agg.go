// Package agg implements the aggregate functions of the paper's GROUPBY
// subgoals (Section 6.2) with the incremental group state needed by
// Algorithm 6.1: MIN, MAX, SUM and COUNT are incrementally computable in
// the sense of [DAJ91]; AVG and VARIANCE are decomposed into incrementally
// computable parts (count, sum, sum of squares).
//
// A State accumulates one group's values (with multiplicities, so it works
// under both set and duplicate semantics). Add is always O(1). Remove is
// O(1) whenever the function is incrementally computable downward; for
// MIN/MAX, removing the last copy of the current extremum is not — Remove
// then reports needRescan=true and the caller must rebuild the group from
// the underlying relation, exactly the fallback the paper prescribes for
// non-incrementally-computable cases.
package agg

import (
	"fmt"
	"math"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

// State is the running aggregate of one group.
type State interface {
	// Add folds mult copies of v into the group. mult must be positive.
	Add(v value.Value, mult int64) error
	// Remove removes mult copies of v. needRescan reports that the state
	// can no longer answer exactly and the group must be recomputed from
	// scratch. mult must be positive.
	Remove(v value.Value, mult int64) (needRescan bool, err error)
	// Result returns the aggregate value; ok is false for an empty group
	// (an empty group contributes no tuple to the GROUPBY relation).
	Result() (v value.Value, ok bool)
	// Clone returns an independent copy.
	Clone() State
}

// New returns a fresh State for the named function.
func New(f datalog.AggFunc) (State, error) {
	switch f {
	case datalog.AggMin:
		return &extremum{min: true}, nil
	case datalog.AggMax:
		return &extremum{min: false}, nil
	case datalog.AggSum:
		return &sum{}, nil
	case datalog.AggCount:
		return &counter{}, nil
	case datalog.AggAvg:
		return &avg{}, nil
	case datalog.AggVariance:
		return &variance{}, nil
	default:
		return nil, fmt.Errorf("agg: unknown aggregate function %q", f)
	}
}

// Incremental reports whether f's Remove is always exact (never needs a
// group rescan). MIN and MAX are only incrementally computable upward.
func Incremental(f datalog.AggFunc) bool {
	return f != datalog.AggMin && f != datalog.AggMax
}

type nonNumericError struct {
	fn string
	v  value.Value
}

func (e *nonNumericError) Error() string {
	return fmt.Sprintf("agg: %s over non-numeric value %s", e.fn, e.v)
}

// extremum implements MIN/MAX over any totally ordered values. It tracks
// the current extremum and how many copies of it the group holds, so
// removals of non-extremal values and of duplicated extrema stay O(1).
type extremum struct {
	min     bool
	n       int64 // total multiplicity in the group
	best    value.Value
	bestN   int64 // multiplicity of best
	invalid bool  // set after an inexact Remove until rebuilt
}

func (e *extremum) name() string {
	if e.min {
		return "min"
	}
	return "max"
}

func (e *extremum) better(a, b value.Value) bool {
	if e.min {
		return a.Compare(b) < 0
	}
	return a.Compare(b) > 0
}

func (e *extremum) Add(v value.Value, mult int64) error {
	if e.invalid {
		return fmt.Errorf("agg: %s state used after it required a rescan", e.name())
	}
	if e.n == 0 || e.better(v, e.best) {
		e.best = v
		e.bestN = mult
	} else if v.Compare(e.best) == 0 {
		e.bestN += mult
	}
	e.n += mult
	return nil
}

func (e *extremum) Remove(v value.Value, mult int64) (bool, error) {
	if e.invalid {
		return true, nil
	}
	if e.n < mult {
		return false, fmt.Errorf("agg: %s group underflow", e.name())
	}
	if v.Compare(e.best) == 0 {
		e.bestN -= mult
		if e.bestN <= 0 {
			e.n -= mult
			if e.n > 0 {
				// The extremum left the group and survivors exist: the new
				// extremum is unknown without a rescan.
				e.invalid = true
				return true, nil
			}
			return false, nil
		}
	} else if e.better(v, e.best) {
		return false, fmt.Errorf("agg: %s removal of %s beyond current extremum %s", e.name(), v, e.best)
	}
	e.n -= mult
	return false, nil
}

func (e *extremum) Result() (value.Value, bool) {
	if e.n == 0 || e.invalid {
		return value.Value{}, false
	}
	return e.best, true
}

func (e *extremum) Clone() State {
	c := *e
	return &c
}

// sum implements SUM. Integer groups stay exact in int64; a single float
// member switches the group to float accumulation.
type sum struct {
	n     int64
	i     int64
	f     float64
	float bool
}

func (s *sum) Add(v value.Value, mult int64) error {
	if !v.IsNumeric() {
		return &nonNumericError{"sum", v}
	}
	if v.Kind() == value.Float {
		s.float = true
	}
	if v.Kind() == value.Int && !s.float {
		s.i += v.Int() * mult
	} else {
		s.f += v.Float() * float64(mult)
	}
	s.n += mult
	return nil
}

func (s *sum) Remove(v value.Value, mult int64) (bool, error) {
	if !v.IsNumeric() {
		return false, &nonNumericError{"sum", v}
	}
	if v.Kind() == value.Int && !s.float {
		s.i -= v.Int() * mult
	} else {
		s.f -= v.Float() * float64(mult)
	}
	s.n -= mult
	if s.n < 0 {
		return false, fmt.Errorf("agg: sum group underflow")
	}
	return false, nil
}

func (s *sum) Result() (value.Value, bool) {
	if s.n == 0 {
		return value.Value{}, false
	}
	if s.float {
		return value.NewFloat(s.f + float64(s.i)), true
	}
	return value.NewInt(s.i), true
}

func (s *sum) Clone() State {
	c := *s
	return &c
}

// counter implements COUNT (of group members, with multiplicity).
type counter struct {
	n int64
}

func (c *counter) Add(_ value.Value, mult int64) error {
	c.n += mult
	return nil
}

func (c *counter) Remove(_ value.Value, mult int64) (bool, error) {
	c.n -= mult
	if c.n < 0 {
		return false, fmt.Errorf("agg: count group underflow")
	}
	return false, nil
}

func (c *counter) Result() (value.Value, bool) {
	if c.n == 0 {
		return value.Value{}, false
	}
	return value.NewInt(c.n), true
}

func (c *counter) Clone() State {
	x := *c
	return &x
}

// avg implements AVERAGE, decomposed into sum and count.
type avg struct {
	n   int64
	sum float64
}

func (a *avg) Add(v value.Value, mult int64) error {
	if !v.IsNumeric() {
		return &nonNumericError{"avg", v}
	}
	a.sum += v.Float() * float64(mult)
	a.n += mult
	return nil
}

func (a *avg) Remove(v value.Value, mult int64) (bool, error) {
	if !v.IsNumeric() {
		return false, &nonNumericError{"avg", v}
	}
	a.sum -= v.Float() * float64(mult)
	a.n -= mult
	if a.n < 0 {
		return false, fmt.Errorf("agg: avg group underflow")
	}
	return false, nil
}

func (a *avg) Result() (value.Value, bool) {
	if a.n == 0 {
		return value.Value{}, false
	}
	return value.NewFloat(a.sum / float64(a.n)), true
}

func (a *avg) Clone() State {
	c := *a
	return &c
}

// variance implements the population variance, decomposed into count, sum
// and sum of squares: Var = E[X²] − E[X]².
type variance struct {
	n     int64
	sum   float64
	sumSq float64
}

func (s *variance) Add(v value.Value, mult int64) error {
	if !v.IsNumeric() {
		return &nonNumericError{"variance", v}
	}
	f := v.Float()
	s.sum += f * float64(mult)
	s.sumSq += f * f * float64(mult)
	s.n += mult
	return nil
}

func (s *variance) Remove(v value.Value, mult int64) (bool, error) {
	if !v.IsNumeric() {
		return false, &nonNumericError{"variance", v}
	}
	f := v.Float()
	s.sum -= f * float64(mult)
	s.sumSq -= f * f * float64(mult)
	s.n -= mult
	if s.n < 0 {
		return false, fmt.Errorf("agg: variance group underflow")
	}
	return false, nil
}

func (s *variance) Result() (value.Value, bool) {
	if s.n == 0 {
		return value.Value{}, false
	}
	mean := s.sum / float64(s.n)
	v := s.sumSq/float64(s.n) - mean*mean
	// Guard tiny negative results from floating-point cancellation.
	if v < 0 && v > -1e-9 {
		v = 0
	}
	return value.NewFloat(math.Max(v, 0)), true
}

func (s *variance) Clone() State {
	c := *s
	return &c
}

package sqlview

import (
	"fmt"
	"strings"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

// Result is the output of translating a script.
type Result struct {
	Program *datalog.Program
	// RequiresSet is true when any view uses SELECT DISTINCT, which is
	// only honored under set semantics.
	RequiresSet bool
	// Schemas maps every table and view to its column names.
	Schemas map[string][]string
	// AuxPreds lists the internal helper predicates generated for
	// GROUP BY joins; front ends typically hide them from users.
	AuxPreds []string
}

// TranslateError reports a semantic translation problem.
type TranslateError struct {
	View string
	Msg  string
}

func (e *TranslateError) Error() string {
	if e.View == "" {
		return "sqlview: " + e.Msg
	}
	return fmt.Sprintf("sqlview: view %s: %s", e.View, e.Msg)
}

// Translate converts a parsed SQL script into a Datalog program. INSERT
// facts remain on the script for the caller to load.
func Translate(s *Script) (*Result, error) {
	res := &Result{
		Program: &datalog.Program{},
		Schemas: make(map[string][]string, len(s.Tables)),
	}
	for t, cols := range s.Tables {
		res.Schemas[t] = cols
	}
	for _, f := range s.Facts {
		cols, ok := s.Tables[f.Table]
		if !ok {
			return nil, &TranslateError{Msg: fmt.Sprintf("INSERT into undeclared table %s", f.Table)}
		}
		if len(f.Row) != len(cols) {
			return nil, &TranslateError{Msg: fmt.Sprintf("INSERT into %s has %d values, table has %d columns", f.Table, len(f.Row), len(cols))}
		}
	}
	for _, v := range s.Views {
		if _, dup := res.Schemas[v.Name]; dup {
			return nil, &TranslateError{View: v.Name, Msg: "name already declared"}
		}
		cols, err := viewColumns(v)
		if err != nil {
			return nil, err
		}
		for i, sel := range v.Selects {
			if sel.Distinct {
				res.RequiresSet = true
			}
			tr := &selTranslator{view: v.Name, schemas: res.Schemas, auxTag: fmt.Sprintf("%s__g%d", v.Name, i)}
			before := len(res.Program.Rules)
			if err := tr.translate(sel, v.Name, cols, res.Program); err != nil {
				return nil, err
			}
			for _, r := range res.Program.Rules[before:] {
				if r.Head.Pred == tr.auxTag {
					res.AuxPreds = append(res.AuxPreds, tr.auxTag)
					break
				}
			}
		}
		res.Schemas[v.Name] = cols
	}
	return res, nil
}

// viewColumns determines a view's column names from its declaration or
// its first SELECT's aliases/column names.
func viewColumns(v ViewDef) ([]string, error) {
	if len(v.Selects) == 0 {
		return nil, &TranslateError{View: v.Name, Msg: "no SELECT"}
	}
	first := v.Selects[0]
	if len(first.Items) == 0 {
		return nil, &TranslateError{View: v.Name, Msg: "SELECT * is only allowed inside EXISTS subqueries"}
	}
	for _, sel := range v.Selects {
		if len(sel.Items) != len(first.Items) {
			return nil, &TranslateError{View: v.Name, Msg: "UNION branches project different column counts"}
		}
	}
	if v.Cols != nil {
		if len(v.Cols) != len(first.Items) {
			return nil, &TranslateError{View: v.Name, Msg: fmt.Sprintf("declares %d columns but SELECT projects %d", len(v.Cols), len(first.Items))}
		}
		return v.Cols, nil
	}
	cols := make([]string, len(first.Items))
	for i, item := range first.Items {
		switch {
		case item.Alias != "":
			cols[i] = item.Alias
		default:
			if ce, ok := item.Expr.(ColExpr); ok {
				cols[i] = ce.Ref.Col
			} else {
				return nil, &TranslateError{View: v.Name, Msg: fmt.Sprintf("column %d needs an alias (AS name)", i+1)}
			}
		}
	}
	return cols, nil
}

// node identifies one column position of one FROM entry.
type node struct{ table, col int }

// selTranslator translates one SELECT block into one or two rules.
type selTranslator struct {
	view    string
	schemas map[string][]string
	auxTag  string

	from    []TableRef
	colsOf  [][]string // column names per FROM entry
	parent  map[node]node
	constOf map[node]*value.Value // root → forced constant
	varOf   map[node]string       // root → assigned variable
	nextVar int
}

func (t *selTranslator) errf(format string, args ...any) error {
	return &TranslateError{View: t.view, Msg: fmt.Sprintf(format, args...)}
}

func (t *selTranslator) translate(sel Select, headPred string, headCols []string, prog *datalog.Program) error {
	// Resolve FROM entries.
	t.from = sel.From
	t.colsOf = make([][]string, len(sel.From))
	seen := map[string]bool{}
	for i, tr := range sel.From {
		cols, ok := t.schemas[tr.Table]
		if !ok {
			return t.errf("unknown table or view %s", tr.Table)
		}
		if seen[tr.Alias] {
			return t.errf("duplicate alias %s", tr.Alias)
		}
		seen[tr.Alias] = true
		t.colsOf[i] = cols
	}
	t.parent = make(map[node]node)
	t.constOf = make(map[node]*value.Value)
	t.varOf = make(map[node]string)

	// Partition WHERE conjuncts.
	var filters []Cond
	var negations []Cond
	for _, c := range sel.Where {
		switch c.Kind {
		case CondNotExists:
			negations = append(negations, c)
		case CondCmp:
			if c.Op == "=" {
				lc, lok := c.Left.(ColExpr)
				rc, rok := c.Right.(ColExpr)
				switch {
				case lok && rok:
					ln, err := t.resolve(lc.Ref)
					if err != nil {
						return err
					}
					rn, err := t.resolve(rc.Ref)
					if err != nil {
						return err
					}
					t.union(ln, rn)
					continue
				case lok:
					if lit, ok := c.Right.(LitExpr); ok {
						if err := t.bindConst(lc.Ref, lit.Val); err != nil {
							return err
						}
						continue
					}
				case rok:
					if lit, ok := c.Left.(LitExpr); ok {
						if err := t.bindConst(rc.Ref, lit.Val); err != nil {
							return err
						}
						continue
					}
				}
			}
			filters = append(filters, c)
		}
	}

	// Body atoms.
	var body []datalog.Literal
	for i, tr := range sel.From {
		args := make([]datalog.Term, len(t.colsOf[i]))
		for c := range t.colsOf[i] {
			args[c] = t.term(node{i, c})
		}
		body = append(body, datalog.Literal{
			Kind: datalog.LitPositive,
			Atom: datalog.Atom{Pred: tr.Table, Args: args},
		})
	}
	// Comparison filters.
	for _, c := range filters {
		lit, err := t.condLiteral(c)
		if err != nil {
			return err
		}
		body = append(body, lit)
	}
	// NOT EXISTS → negation.
	for _, c := range negations {
		lit, err := t.negation(c.Sub)
		if err != nil {
			return err
		}
		body = append(body, lit)
	}

	if len(sel.GroupBy) > 0 || hasAgg(sel) {
		return t.aggregateRules(sel, headPred, body, prog)
	}
	if len(sel.Having) > 0 {
		return t.errf("HAVING requires GROUP BY")
	}

	// Plain rule.
	head := datalog.Atom{Pred: headPred, Args: make([]datalog.Term, len(sel.Items))}
	for i, item := range sel.Items {
		term, err := t.exprTerm(item.Expr)
		if err != nil {
			return err
		}
		head.Args[i] = term
	}
	prog.Rules = append(prog.Rules, datalog.Rule{Head: head, Body: body})
	return nil
}

func hasAgg(sel Select) bool {
	for _, item := range sel.Items {
		if containsAgg(item.Expr) {
			return true
		}
	}
	for _, c := range sel.Having {
		if c.Kind == CondCmp && (containsAgg(c.Left) || containsAgg(c.Right)) {
			return true
		}
	}
	return false
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case AggExpr:
		return true
	case BinExpr:
		return containsAgg(x.Left) || containsAgg(x.Right)
	}
	return false
}

// aggregateRules emits the auxiliary join rule and the GROUPBY rule:
//
//	view__gN(G1..Gk, R1..Rm, AggArg) :- <join body>.
//	view(...) :- groupby(view__gN(G1..Gk, R1..Rm, C), [G1..Gk], M = fn(C)), <having>.
//
// The R columns are the body variables not already in the head; they keep
// each source row a distinct aux tuple (see below).
func (t *selTranslator) aggregateRules(sel Select, headPred string, body []datalog.Literal, prog *datalog.Program) error {
	// Locate the single aggregate among the select items.
	aggIdx := -1
	var agg AggExpr
	for i, item := range sel.Items {
		if containsAgg(item.Expr) {
			ae, ok := item.Expr.(AggExpr)
			if !ok {
				return t.errf("aggregates must be top-level select items (no arithmetic around them)")
			}
			if aggIdx >= 0 {
				return t.errf("at most one aggregate per SELECT is supported")
			}
			aggIdx = i
			agg = ae
		}
	}
	if aggIdx < 0 {
		return t.errf("GROUP BY without an aggregate in the select list")
	}
	if len(sel.GroupBy) == 0 && len(sel.Items) > 1 {
		return t.errf("non-aggregate select items require GROUP BY")
	}

	// Resolve grouping columns to their classes.
	groupRoots := make([]node, len(sel.GroupBy))
	for i, ref := range sel.GroupBy {
		n, err := t.resolve(ref)
		if err != nil {
			return err
		}
		groupRoots[i] = t.find(n)
	}

	// Non-aggregate select items must be grouping columns.
	itemGroup := make([]int, len(sel.Items)) // select item → group index (or -1 for the aggregate)
	for i, item := range sel.Items {
		if i == aggIdx {
			itemGroup[i] = -1
			continue
		}
		ce, ok := item.Expr.(ColExpr)
		if !ok {
			return t.errf("select item %d must be a grouping column or the aggregate", i+1)
		}
		n, err := t.resolve(ce.Ref)
		if err != nil {
			return err
		}
		root := t.find(n)
		found := -1
		for g, gr := range groupRoots {
			if gr == root {
				found = g
				break
			}
		}
		if found < 0 {
			return t.errf("select item %s is not in GROUP BY", ce.Ref.Col)
		}
		itemGroup[i] = found
	}

	// Aux rule: view__gN(G1..Gk, R1..Rm, AggArg) :- body. The R columns
	// carry every remaining body variable so distinct source rows stay
	// distinct in the aux relation. Without them, set semantics collapses
	// rows that agree on (grouping columns, aggregate argument) and
	// COUNT/SUM/AVG undercount — COUNT(*)'s constant argument would fold a
	// whole group into one row.
	auxArgs := make([]datalog.Term, 0, len(groupRoots)+1)
	inHead := map[datalog.Var]bool{}
	for _, gr := range groupRoots {
		tm := t.term(gr)
		auxArgs = append(auxArgs, tm)
		if v, ok := tm.(datalog.Var); ok {
			inHead[v] = true
		}
	}
	var argTerm datalog.Term
	if agg.Arg == nil { // COUNT(*)
		argTerm = datalog.Const{Value: value.NewInt(1)}
	} else {
		at, err := t.exprTerm(agg.Arg)
		if err != nil {
			return err
		}
		argTerm = at
	}
	if v, ok := argTerm.(datalog.Var); ok {
		inHead[v] = true
	}
	rowCols := 0
	for _, lit := range body {
		if lit.Kind != datalog.LitPositive {
			continue
		}
		for _, a := range lit.Atom.Args {
			if v, ok := a.(datalog.Var); ok && !inHead[v] {
				inHead[v] = true
				auxArgs = append(auxArgs, v)
				rowCols++
			}
		}
	}
	auxArgs = append(auxArgs, argTerm)
	prog.Rules = append(prog.Rules, datalog.Rule{
		Head: datalog.Atom{Pred: t.auxTag, Args: auxArgs},
		Body: body,
	})

	// Main rule over the aux predicate.
	groupVars := make([]datalog.Var, len(groupRoots))
	innerArgs := make([]datalog.Term, 0, len(auxArgs))
	for i := range groupRoots {
		groupVars[i] = datalog.Var(fmt.Sprintf("G%d", i))
		innerArgs = append(innerArgs, groupVars[i])
	}
	for i := 0; i < rowCols; i++ {
		innerArgs = append(innerArgs, datalog.Var(fmt.Sprintf("R%d", i)))
	}
	cVar := datalog.Var("C")
	innerArgs = append(innerArgs, cVar)
	resVar := datalog.Var("M")
	gLit := datalog.Literal{Kind: datalog.LitAggregate, Agg: &datalog.Aggregate{
		Inner:   datalog.Atom{Pred: t.auxTag, Args: innerArgs},
		GroupBy: groupVars,
		Result:  resVar,
		Func:    datalog.AggFunc(agg.Fn),
		Arg:     cVar,
	}}
	mainBody := []datalog.Literal{gLit}

	// HAVING conditions: grouping columns → G vars, the aggregate → M.
	for _, c := range sel.Having {
		if c.Kind != CondCmp {
			return t.errf("only comparisons are supported in HAVING")
		}
		l, err := t.havingTerm(c.Left, agg, groupRoots, groupVars, resVar)
		if err != nil {
			return err
		}
		r, err := t.havingTerm(c.Right, agg, groupRoots, groupVars, resVar)
		if err != nil {
			return err
		}
		op, err := cmpOp(c.Op)
		if err != nil {
			return t.errf("%v", err)
		}
		mainBody = append(mainBody, datalog.Literal{Kind: datalog.LitCondition,
			Cond: &datalog.Condition{Op: op, Left: l, Right: r}})
	}

	head := datalog.Atom{Pred: headPred, Args: make([]datalog.Term, len(sel.Items))}
	for i := range sel.Items {
		if itemGroup[i] < 0 {
			head.Args[i] = resVar
		} else {
			head.Args[i] = groupVars[itemGroup[i]]
		}
	}
	prog.Rules = append(prog.Rules, datalog.Rule{Head: head, Body: mainBody})
	return nil
}

// havingTerm translates a HAVING expression into the main rule's scope.
func (t *selTranslator) havingTerm(e Expr, agg AggExpr, groupRoots []node, groupVars []datalog.Var, resVar datalog.Var) (datalog.Term, error) {
	switch x := e.(type) {
	case AggExpr:
		if x.Fn != agg.Fn {
			return nil, t.errf("HAVING aggregate %s must match the select's %s", strings.ToUpper(x.Fn), strings.ToUpper(agg.Fn))
		}
		return resVar, nil
	case LitExpr:
		return datalog.Const{Value: x.Val}, nil
	case ColExpr:
		n, err := t.resolve(x.Ref)
		if err != nil {
			return nil, err
		}
		root := t.find(n)
		for g, gr := range groupRoots {
			if gr == root {
				return groupVars[g], nil
			}
		}
		return nil, t.errf("HAVING column %s is not in GROUP BY", x.Ref.Col)
	case BinExpr:
		l, err := t.havingTerm(x.Left, agg, groupRoots, groupVars, resVar)
		if err != nil {
			return nil, err
		}
		r, err := t.havingTerm(x.Right, agg, groupRoots, groupVars, resVar)
		if err != nil {
			return nil, err
		}
		return datalog.Arith{Op: arithOp(x.Op), Left: l, Right: r}, nil
	default:
		return nil, t.errf("unsupported HAVING expression")
	}
}

// negation turns a NOT EXISTS subquery into a safe negated atom: the
// subquery must range over a single table with every column constrained
// by equality to an outer expression or literal.
func (t *selTranslator) negation(sub *Select) (datalog.Literal, error) {
	if len(sub.From) != 1 {
		return datalog.Literal{}, t.errf("NOT EXISTS subqueries must use a single table")
	}
	if len(sub.GroupBy) > 0 || len(sub.Having) > 0 {
		return datalog.Literal{}, t.errf("NOT EXISTS subqueries cannot aggregate")
	}
	inner := sub.From[0]
	cols, ok := t.schemas[inner.Table]
	if !ok {
		return datalog.Literal{}, t.errf("unknown table or view %s", inner.Table)
	}
	colIdx := make(map[string]int, len(cols))
	for i, c := range cols {
		colIdx[c] = i
	}
	args := make([]datalog.Term, len(cols))
	for _, c := range sub.Where {
		if c.Kind != CondCmp || c.Op != "=" {
			return datalog.Literal{}, t.errf("NOT EXISTS subqueries support only equality conditions")
		}
		innerRef, outer, ok := t.splitInnerOuter(c, inner.Alias, colIdx)
		if !ok {
			return datalog.Literal{}, t.errf("each NOT EXISTS condition must equate a subquery column with an outer expression")
		}
		term, err := t.exprTerm(outer)
		if err != nil {
			return datalog.Literal{}, err
		}
		i := colIdx[innerRef.Col]
		if args[i] != nil {
			return datalog.Literal{}, t.errf("column %s of the NOT EXISTS subquery is constrained twice", innerRef.Col)
		}
		args[i] = term
	}
	for i, a := range args {
		if a == nil {
			return datalog.Literal{}, t.errf("column %s of the NOT EXISTS subquery must be constrained (safe negation needs every column bound)", cols[i])
		}
	}
	return datalog.Literal{Kind: datalog.LitNegated, Atom: datalog.Atom{Pred: inner.Table, Args: args}}, nil
}

// splitInnerOuter splits an equality condition into (inner column, outer
// expression) if exactly one side references the subquery table.
func (t *selTranslator) splitInnerOuter(c Cond, innerAlias string, colIdx map[string]int) (ColRef, Expr, bool) {
	isInner := func(e Expr) (ColRef, bool) {
		ce, ok := e.(ColExpr)
		if !ok {
			return ColRef{}, false
		}
		if ce.Ref.Qualifier == innerAlias {
			return ce.Ref, true
		}
		if ce.Ref.Qualifier == "" {
			if _, ok := colIdx[ce.Ref.Col]; ok {
				// Unqualified: prefer the inner table if the column exists
				// there and nowhere in the outer scope.
				if _, err := t.resolve(ce.Ref); err != nil {
					return ce.Ref, true
				}
			}
		}
		return ColRef{}, false
	}
	if ref, ok := isInner(c.Left); ok {
		if _, also := isInner(c.Right); !also {
			return ref, c.Right, true
		}
		return ColRef{}, nil, false
	}
	if ref, ok := isInner(c.Right); ok {
		if _, also := isInner(c.Left); !also {
			return ref, c.Left, true
		}
	}
	return ColRef{}, nil, false
}

// ---- column resolution and union-find ----

// resolve maps a column reference to its FROM node.
func (t *selTranslator) resolve(ref ColRef) (node, error) {
	if ref.Qualifier != "" {
		for i, tr := range t.from {
			if tr.Alias == ref.Qualifier {
				for c, col := range t.colsOf[i] {
					if col == ref.Col {
						return node{i, c}, nil
					}
				}
				return node{}, t.errf("table %s has no column %s", ref.Qualifier, ref.Col)
			}
		}
		return node{}, t.errf("unknown table alias %s", ref.Qualifier)
	}
	found := node{-1, -1}
	for i := range t.from {
		for c, col := range t.colsOf[i] {
			if col == ref.Col {
				if found.table >= 0 {
					return node{}, t.errf("column %s is ambiguous", ref.Col)
				}
				found = node{i, c}
			}
		}
	}
	if found.table < 0 {
		return node{}, t.errf("unknown column %s", ref.Col)
	}
	return found, nil
}

func (t *selTranslator) find(n node) node {
	p, ok := t.parent[n]
	if !ok || p == n {
		return n
	}
	root := t.find(p)
	t.parent[n] = root
	return root
}

func (t *selTranslator) union(a, b node) {
	ra, rb := t.find(a), t.find(b)
	if ra == rb {
		return
	}
	t.parent[ra] = rb
	// Merge constant bindings.
	if cv := t.constOf[ra]; cv != nil {
		if other := t.constOf[rb]; other == nil {
			t.constOf[rb] = cv
		}
		delete(t.constOf, ra)
	}
}

func (t *selTranslator) bindConst(ref ColRef, v value.Value) error {
	n, err := t.resolve(ref)
	if err != nil {
		return err
	}
	root := t.find(n)
	t.constOf[root] = &v
	return nil
}

// term returns the datalog term for a column node: its class constant if
// bound, otherwise the class variable.
func (t *selTranslator) term(n node) datalog.Term {
	root := t.find(n)
	if cv := t.constOf[root]; cv != nil {
		return datalog.Const{Value: *cv}
	}
	v, ok := t.varOf[root]
	if !ok {
		v = fmt.Sprintf("V%d", t.nextVar)
		t.nextVar++
		t.varOf[root] = v
	}
	return datalog.Var(v)
}

// exprTerm translates a scalar expression into a datalog term.
func (t *selTranslator) exprTerm(e Expr) (datalog.Term, error) {
	switch x := e.(type) {
	case ColExpr:
		n, err := t.resolve(x.Ref)
		if err != nil {
			return nil, err
		}
		return t.term(n), nil
	case LitExpr:
		return datalog.Const{Value: x.Val}, nil
	case BinExpr:
		l, err := t.exprTerm(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := t.exprTerm(x.Right)
		if err != nil {
			return nil, err
		}
		return datalog.Arith{Op: arithOp(x.Op), Left: l, Right: r}, nil
	case AggExpr:
		return nil, t.errf("aggregate outside GROUP BY context")
	default:
		return nil, t.errf("unsupported expression")
	}
}

func (t *selTranslator) condLiteral(c Cond) (datalog.Literal, error) {
	l, err := t.exprTerm(c.Left)
	if err != nil {
		return datalog.Literal{}, err
	}
	r, err := t.exprTerm(c.Right)
	if err != nil {
		return datalog.Literal{}, err
	}
	op, err := cmpOp(c.Op)
	if err != nil {
		return datalog.Literal{}, t.errf("%v", err)
	}
	return datalog.Literal{Kind: datalog.LitCondition, Cond: &datalog.Condition{Op: op, Left: l, Right: r}}, nil
}

func cmpOp(op string) (datalog.CmpOp, error) {
	switch op {
	case "=":
		return datalog.CmpEq, nil
	case "!=":
		return datalog.CmpNe, nil
	case "<":
		return datalog.CmpLt, nil
	case "<=":
		return datalog.CmpLe, nil
	case ">":
		return datalog.CmpGt, nil
	case ">=":
		return datalog.CmpGe, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", op)
}

func arithOp(op byte) datalog.ArithOp {
	switch op {
	case '+':
		return datalog.OpAdd
	case '-':
		return datalog.OpSub
	case '*':
		return datalog.OpMul
	default:
		return datalog.OpDiv
	}
}

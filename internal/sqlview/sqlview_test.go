package sqlview

import (
	"strings"
	"testing"

	"ivm/internal/datalog"
	"ivm/internal/value"
)

func translate(t *testing.T, src string) *Result {
	t.Helper()
	script, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(script)
	if err != nil {
		t.Fatal(err)
	}
	if err := datalog.Validate(res.Program); err != nil {
		t.Fatalf("translated program invalid: %v\n%s", err, res.Program)
	}
	return res
}

func mustFail(t *testing.T, src, wantSub string) {
	t.Helper()
	script, err := Parse(src)
	if err == nil {
		_, err = Translate(script)
	}
	if err == nil {
		t.Fatalf("expected error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

// TestExample11SQL translates the paper's Example 1.1 CREATE VIEW.
func TestExample11SQL(t *testing.T) {
	res := translate(t, `
		CREATE TABLE link(s, d);
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
	`)
	if len(res.Program.Rules) != 1 {
		t.Fatalf("rules: %s", res.Program)
	}
	r := res.Program.Rules[0]
	if r.Head.Pred != "hop" || len(r.Body) != 2 {
		t.Fatalf("rule: %s", r)
	}
	// The join variable must be shared between the two link atoms.
	a1 := r.Body[0].Atom.Args[1].(datalog.Var)
	a2 := r.Body[1].Atom.Args[0].(datalog.Var)
	if a1 != a2 {
		t.Fatalf("join variable not unified: %s", r)
	}
}

func TestInsertFacts(t *testing.T) {
	script, err := Parse(`
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a', 'b'), ('b', 'c');
		INSERT INTO link VALUES ('c', 'd');
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Facts) != 3 {
		t.Fatalf("facts: %d", len(script.Facts))
	}
	if !script.Facts[0].Row[0].Equal(value.NewString("a")) {
		t.Fatalf("fact 0: %v", script.Facts[0])
	}
	if _, err := Translate(script); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	mustFail(t, `
		CREATE TABLE link(s, d);
		INSERT INTO link VALUES ('a');
	`, "columns")
	mustFail(t, `INSERT INTO nope VALUES (1);`, "undeclared")
}

func TestLiteralTypes(t *testing.T) {
	script, err := Parse(`
		CREATE TABLE m(a, b, c);
		INSERT INTO m VALUES (42, -3.5, 'it''s');
	`)
	if err != nil {
		t.Fatal(err)
	}
	row := script.Facts[0].Row
	if row[0].Int() != 42 || row[1].Float() != -3.5 || row[2].Str() != "it's" {
		t.Fatalf("row: %v", row)
	}
}

func TestConstantsInWhere(t *testing.T) {
	res := translate(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW fromA(y) AS SELECT y FROM p WHERE x = 'a';
	`)
	r := res.Program.Rules[0]
	c, ok := r.Body[0].Atom.Args[0].(datalog.Const)
	if !ok || c.Value.Str() != "a" {
		t.Fatalf("constant not inlined: %s", r)
	}
}

func TestComparisonFilters(t *testing.T) {
	res := translate(t, `
		CREATE TABLE p(x, c);
		CREATE VIEW big(x) AS SELECT x FROM p WHERE c > 5 AND c != 42;
	`)
	r := res.Program.Rules[0]
	nconds := 0
	for _, l := range r.Body {
		if l.Kind == datalog.LitCondition {
			nconds++
		}
	}
	if nconds != 2 {
		t.Fatalf("conditions: %s", r)
	}
}

func TestArithmeticProjection(t *testing.T) {
	res := translate(t, `
		CREATE TABLE link(s, i, c);
		CREATE VIEW cost(s, d, total) AS
		  SELECT l1.s, l2.i, l1.c + l2.c AS total
		  FROM link l1, link l2 WHERE l1.i = l2.s;
	`)
	r := res.Program.Rules[0]
	if _, ok := r.Head.Args[2].(datalog.Arith); !ok {
		t.Fatalf("arith head: %s", r)
	}
}

func TestNotExistsBecomesNegation(t *testing.T) {
	res := translate(t, `
		CREATE TABLE tri_hop(s, d);
		CREATE TABLE hop(s, d);
		CREATE VIEW only_tri_hop(s, d) AS
		  SELECT t.s, t.d FROM tri_hop t
		  WHERE NOT EXISTS (SELECT * FROM hop h WHERE h.s = t.s AND h.d = t.d);
	`)
	r := res.Program.Rules[0]
	var neg *datalog.Literal
	for i := range r.Body {
		if r.Body[i].Kind == datalog.LitNegated {
			neg = &r.Body[i]
		}
	}
	if neg == nil || neg.Atom.Pred != "hop" {
		t.Fatalf("negation: %s", r)
	}
}

func TestNotExistsWithConstant(t *testing.T) {
	res := translate(t, `
		CREATE TABLE emp(name, dept);
		CREATE TABLE banned(name, why);
		CREATE VIEW ok_emp(name) AS
		  SELECT e.name FROM emp e
		  WHERE NOT EXISTS (SELECT * FROM banned b WHERE b.name = e.name AND b.why = 'fraud');
	`)
	r := res.Program.Rules[0]
	for _, l := range r.Body {
		if l.Kind == datalog.LitNegated {
			if c, ok := l.Atom.Args[1].(datalog.Const); !ok || c.Value.Str() != "fraud" {
				t.Fatalf("constant arg: %s", r)
			}
			return
		}
	}
	t.Fatalf("no negation: %s", r)
}

func TestNotExistsUnconstrainedRejected(t *testing.T) {
	mustFail(t, `
		CREATE TABLE p(x);
		CREATE TABLE q(x, y);
		CREATE VIEW v(x) AS SELECT x FROM p
		  WHERE NOT EXISTS (SELECT * FROM q WHERE q.x = p.x);
	`, "must be constrained")
}

func TestGroupByMinCostHop(t *testing.T) {
	// Example 6.2 in SQL.
	res := translate(t, `
		CREATE TABLE hop(s, d, c);
		CREATE VIEW min_cost_hop(s, d, m) AS
		  SELECT s, d, MIN(c) FROM hop GROUP BY s, d;
	`)
	if len(res.Program.Rules) != 2 {
		t.Fatalf("expected aux + main rule: %s", res.Program)
	}
	main := res.Program.Rules[1]
	if main.Body[0].Kind != datalog.LitAggregate {
		t.Fatalf("main rule: %s", main)
	}
	g := main.Body[0].Agg
	if g.Func != datalog.AggMin || len(g.GroupBy) != 2 {
		t.Fatalf("aggregate: %s", g)
	}
}

func TestGroupByJoinAndHaving(t *testing.T) {
	res := translate(t, `
		CREATE TABLE orders(id, cust, amt);
		CREATE TABLE region(cust, area);
		CREATE VIEW spend(area, total) AS
		  SELECT r.area, SUM(o.amt) AS total
		  FROM orders o, region r
		  WHERE o.cust = r.cust
		  GROUP BY r.area
		  HAVING SUM(o.amt) > 100;
	`)
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules: %s", res.Program)
	}
	main := res.Program.Rules[1]
	if len(main.Body) != 2 || main.Body[1].Kind != datalog.LitCondition {
		t.Fatalf("having: %s", main)
	}
}

func TestCountStar(t *testing.T) {
	res := translate(t, `
		CREATE TABLE follows(a, b);
		CREATE VIEW followers(b, n) AS
		  SELECT b, COUNT(*) AS n FROM follows GROUP BY b;
	`)
	aux := res.Program.Rules[0]
	if c, ok := aux.Head.Args[len(aux.Head.Args)-1].(datalog.Const); !ok || c.Value.Int() != 1 {
		t.Fatalf("COUNT(*) aux: %s", aux)
	}
}

func TestUnionBecomesRules(t *testing.T) {
	res := translate(t, `
		CREATE TABLE p(x, y);
		CREATE TABLE q(x, y);
		CREATE VIEW v(x, y) AS
		  SELECT x, y FROM p UNION SELECT x, y FROM q;
	`)
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules: %s", res.Program)
	}
	if res.Program.Rules[0].Head.Pred != "v" || res.Program.Rules[1].Head.Pred != "v" {
		t.Fatalf("heads: %s", res.Program)
	}
}

func TestViewOverView(t *testing.T) {
	res := translate(t, `
		CREATE TABLE link(s, d);
		CREATE VIEW hop(s, d) AS
		  SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
		CREATE VIEW tri_hop(s, d) AS
		  SELECT h.s, l.d FROM hop h, link l WHERE h.d = l.s;
	`)
	if len(res.Program.Rules) != 2 {
		t.Fatalf("rules: %s", res.Program)
	}
	if res.Schemas["tri_hop"][1] != "d" {
		t.Fatalf("schema: %v", res.Schemas)
	}
}

func TestDistinctRequiresSet(t *testing.T) {
	res := translate(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW v(x) AS SELECT DISTINCT x FROM p;
	`)
	if !res.RequiresSet {
		t.Fatal("DISTINCT must set RequiresSet")
	}
}

func TestColumnNamesFromAliases(t *testing.T) {
	res := translate(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW v AS SELECT x AS a, y FROM p;
	`)
	if got := res.Schemas["v"]; len(got) != 2 || got[0] != "a" || got[1] != "y" {
		t.Fatalf("cols: %v", got)
	}
}

func TestErrorCases(t *testing.T) {
	mustFail(t, `CREATE VIEW v(x) AS SELECT x FROM nope;`, "unknown table")
	mustFail(t, `
		CREATE TABLE p(x);
		CREATE TABLE q(x);
		CREATE VIEW v(x) AS SELECT x FROM p, q;
	`, "ambiguous")
	mustFail(t, `
		CREATE TABLE p(x);
		CREATE VIEW v(a, b) AS SELECT x FROM p;
	`, "declares 2 columns")
	mustFail(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW v(x) AS SELECT x FROM p HAVING x > 1;
	`, "HAVING requires GROUP BY")
	mustFail(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW v(x, n) AS SELECT x, COUNT(*) FROM p;
	`, "GROUP BY")
	mustFail(t, `
		CREATE TABLE p(x, y);
		CREATE VIEW v(y, n) AS SELECT y, COUNT(*) AS n FROM p GROUP BY x;
	`, "not in GROUP BY")
	mustFail(t, `
		CREATE TABLE p(x);
		CREATE VIEW p(x) AS SELECT x FROM p;
	`, "already declared")
	mustFail(t, `
		CREATE TABLE p(x, c);
		CREATE VIEW v(x, a, b) AS SELECT x, MIN(c), MAX(c) FROM p GROUP BY x;
	`, "at most one aggregate")
	mustFail(t, `CREATE TABLE p(x); CREATE TABLE p(y);`, "declared twice")
	mustFail(t, `SELECT x FROM p;`, "expected CREATE or INSERT")
	mustFail(t, `CREATE TABLE p(x); CREATE VIEW v(x) AS SELECT * FROM p;`, "SELECT *")
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("CREATE VIEW v AS\n SELECT x FROM")
	if err == nil {
		t.Fatal("expected error")
	}
	if e, ok := err.(*Error); ok {
		if e.Line < 1 {
			t.Fatalf("position: %v", e)
		}
	} else {
		t.Fatalf("error type: %T", err)
	}
}

func TestTypedCreateTable(t *testing.T) {
	res := translate(t, `
		CREATE TABLE emp(name varchar, salary int, rate float);
		CREATE VIEW rich(name) AS SELECT name FROM emp WHERE salary > 100000;
	`)
	if got := res.Schemas["emp"]; len(got) != 3 || got[1] != "salary" {
		t.Fatalf("typed schema: %v", got)
	}
}

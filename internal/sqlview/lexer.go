package sqlview

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tString
	tPunct // single/double character punctuation, text in tok.text
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

// Error reports an SQL parse problem with its position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sql parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skip() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (tok, error) {
	l.skip()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) tok { return tok{kind: k, text: text, line: line, col: col} }
	if l.pos >= len(l.src) {
		return mk(tEOF, ""), nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', ';', '*', '+', '-', '/', '.':
		l.advance(1)
		return mk(tPunct, string(c)), nil
	case '=':
		l.advance(1)
		return mk(tPunct, "="), nil
	case '<':
		if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '=' || l.src[l.pos+1] == '>') {
			t := l.src[l.pos : l.pos+2]
			l.advance(2)
			if t == "<>" {
				return mk(tPunct, "!="), nil
			}
			return mk(tPunct, t), nil
		}
		l.advance(1)
		return mk(tPunct, "<"), nil
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tPunct, ">="), nil
		}
		l.advance(1)
		return mk(tPunct, ">"), nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.advance(2)
			return mk(tPunct, "!="), nil
		}
		return tok{}, l.errf("unexpected '!'")
	case '\'':
		l.advance(1)
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.advance(2)
					continue
				}
				l.advance(1)
				return mk(tString, sb.String()), nil
			}
			sb.WriteByte(ch)
			l.advance(1)
		}
		return tok{}, l.errf("unterminated string literal")
	}
	if c >= '0' && c <= '9' {
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.advance(1)
		}
		if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.advance(1)
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.advance(1)
			}
		}
		if isFloat {
			return mk(tFloat, l.src[start:l.pos]), nil
		}
		return mk(tInt, l.src[start:l.pos]), nil
	}
	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.pos
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if unicode.IsLetter(rune(ch)) || unicode.IsDigit(rune(ch)) || ch == '_' {
				l.advance(1)
				continue
			}
			break
		}
		return mk(tIdent, l.src[start:l.pos]), nil
	}
	return tok{}, l.errf("unexpected character %q", c)
}

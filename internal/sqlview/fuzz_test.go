package sqlview

import "testing"

// FuzzSQLParse checks the SQL parser and translator never panic.
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		`CREATE TABLE link(s, d);`,
		`CREATE TABLE t(a,b); CREATE VIEW v(a) AS SELECT a FROM t WHERE b = 1;`,
		`INSERT INTO t VALUES ('a', 2), (3.5, 'x');`,
		`CREATE TABLE h(s,d,c); CREATE VIEW m(s,m) AS SELECT s, MIN(c) FROM h GROUP BY s HAVING MIN(c) > 2;`,
		`CREATE TABLE p(x); CREATE TABLE q(x); CREATE VIEW u(x) AS SELECT x FROM p UNION SELECT x FROM q;`,
		`CREATE TABLE a(x); CREATE VIEW v(x) AS SELECT x FROM a WHERE NOT EXISTS (SELECT * FROM a b WHERE b.x = a.x);`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Translate(script)
	})
}

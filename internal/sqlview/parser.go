package sqlview

import (
	"fmt"
	"strconv"
	"strings"

	"ivm/internal/value"
)

type parser struct {
	lex    *lexer
	tok    tok
	peeked *tok
}

// Parse parses an SQL script (CREATE TABLE / CREATE VIEW / INSERT
// statements separated by ';').
func Parse(src string) (*Script, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	s := &Script{Tables: make(map[string][]string)}
	for p.tok.kind != tEOF {
		if p.isPunct(";") { // stray semicolons
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		kw, err := p.keyword()
		if err != nil {
			return nil, err
		}
		switch kw {
		case "create":
			if err := p.create(s); err != nil {
				return nil, err
			}
		case "insert":
			if err := p.insert(s); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected CREATE or INSERT, got %q", kw)
		}
	}
	return s, nil
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peek() (tok, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return tok{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool { return p.tok.kind == tPunct && p.tok.text == s }

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tIdent && strings.EqualFold(p.tok.text, kw)
}

// keyword consumes the current identifier and returns it lower-cased.
func (p *parser) keyword() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected a keyword, got %q", p.tok.text)
	}
	kw := strings.ToLower(p.tok.text)
	return kw, p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

// ident consumes an identifier, lower-casing it (the engine's constants
// and predicates are case-insensitive SQL identifiers).
func (p *parser) ident() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errf("expected an identifier, got %q", p.tok.text)
	}
	name := strings.ToLower(p.tok.text)
	return name, p.advance()
}

func (p *parser) create(s *Script) error {
	kw, err := p.keyword()
	if err != nil {
		return err
	}
	switch kw {
	case "table":
		name, err := p.ident()
		if err != nil {
			return err
		}
		cols, err := p.columnList()
		if err != nil {
			return err
		}
		if _, dup := s.Tables[name]; dup {
			return p.errf("table %s declared twice", name)
		}
		s.Tables[name] = cols
		return p.expectPunct(";")
	case "view":
		name, err := p.ident()
		if err != nil {
			return err
		}
		v := ViewDef{Name: name}
		if p.isPunct("(") {
			cols, err := p.columnList()
			if err != nil {
				return err
			}
			v.Cols = cols
		}
		if err := p.expectKeyword("as"); err != nil {
			return err
		}
		for {
			sel, err := p.selectStmt()
			if err != nil {
				return err
			}
			v.Selects = append(v.Selects, *sel)
			if p.isKeyword("union") {
				if err := p.advance(); err != nil {
					return err
				}
				if p.isKeyword("all") {
					if err := p.advance(); err != nil {
						return err
					}
				}
				continue
			}
			break
		}
		s.Views = append(s.Views, v)
		return p.expectPunct(";")
	default:
		return p.errf("expected TABLE or VIEW after CREATE, got %q", kw)
	}
}

func (p *parser) columnList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		// Ignore an optional type name (CREATE TABLE t(x int, ...)).
		if p.tok.kind == tIdent && !p.isPunct(",") {
			switch strings.ToLower(p.tok.text) {
			case "int", "integer", "bigint", "float", "double", "real", "text", "varchar", "char", "string":
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		cols = append(cols, c)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return cols, p.expectPunct(")")
	}
}

func (p *parser) insert(s *Script) error {
	if err := p.expectKeyword("into"); err != nil {
		return err
	}
	table, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("values"); err != nil {
		return err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return err
		}
		var row []value.Value
		for {
			v, err := p.literalValue()
			if err != nil {
				return err
			}
			row = append(row, v)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		s.Facts = append(s.Facts, Fact{Table: table, Row: row})
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		break
	}
	return p.expectPunct(";")
}

func (p *parser) literalValue() (value.Value, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		if err := p.advance(); err != nil {
			return value.Value{}, err
		}
	}
	switch p.tok.kind {
	case tInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return value.Value{}, p.errf("bad integer %q", p.tok.text)
		}
		if neg {
			n = -n
		}
		return value.NewInt(n), p.advance()
	case tFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return value.Value{}, p.errf("bad float %q", p.tok.text)
		}
		if neg {
			f = -f
		}
		return value.NewFloat(f), p.advance()
	case tString:
		if neg {
			return value.Value{}, p.errf("cannot negate a string")
		}
		return value.NewString(p.tok.text), p.advance()
	default:
		return value.Value{}, p.errf("expected a literal, got %q", p.tok.text)
	}
}

func (p *parser) selectStmt() (*Select, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.isKeyword("distinct") {
		sel.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// projection
	if p.isPunct("*") {
		// SELECT * is only allowed in EXISTS subqueries; represented by an
		// empty item list.
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelItem{Expr: e}
			if p.isKeyword("as") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			}
			sel.Items = append(sel.Items, item)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr := TableRef{Table: table, Alias: table}
		if p.tok.kind == tIdent && !p.reservedHere() {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			tr.Alias = a
		}
		sel.From = append(sel.From, tr)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.isKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		conds, err := p.conds()
		if err != nil {
			return nil, err
		}
		sel.Where = conds
	}
	if p.isKeyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, ref)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("having") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		conds, err := p.conds()
		if err != nil {
			return nil, err
		}
		sel.Having = conds
	}
	return sel, nil
}

// reservedHere reports whether the current identifier is a clause keyword
// (so a bare identifier after a table name is an alias only when it is
// not one of these).
func (p *parser) reservedHere() bool {
	switch strings.ToLower(p.tok.text) {
	case "where", "group", "having", "union", "on", "order", "select", "from", "as":
		return true
	}
	return false
}

func (p *parser) conds() ([]Cond, error) {
	var out []Cond
	for {
		c, err := p.cond()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.isKeyword("and") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return out, nil
	}
}

func (p *parser) cond() (Cond, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return Cond{}, err
		}
		if err := p.expectKeyword("exists"); err != nil {
			return Cond{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return Cond{}, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondNotExists, Sub: sub}, nil
	}
	left, err := p.expr()
	if err != nil {
		return Cond{}, err
	}
	if p.tok.kind != tPunct {
		return Cond{}, p.errf("expected a comparison operator, got %q", p.tok.text)
	}
	op := p.tok.text
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return Cond{}, p.errf("expected a comparison operator, got %q", op)
	}
	if err := p.advance(); err != nil {
		return Cond{}, err
	}
	right, err := p.expr()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Kind: CondCmp, Op: op, Left: left, Right: right}, nil
}

func (p *parser) colRef() (ColRef, error) {
	name, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.isPunct(".") {
		if err := p.advance(); err != nil {
			return ColRef{}, err
		}
		col, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: name, Col: col}, nil
	}
	return ColRef{Col: name}, nil
}

var aggFuncs = map[string]bool{
	"min": true, "max": true, "sum": true, "count": true, "avg": true, "variance": true,
}

func (p *parser) expr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.tok.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") {
		op := p.tok.text[0]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.primary()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.tok.kind == tIdent:
		name := strings.ToLower(p.tok.text)
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if aggFuncs[name] && nt.kind == tPunct && nt.text == "(" {
			if err := p.advance(); err != nil { // func name
				return nil, err
			}
			if err := p.advance(); err != nil { // '('
				return nil, err
			}
			if p.isPunct("*") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				if name != "count" {
					return nil, p.errf("%s(*) is not valid (only COUNT(*))", strings.ToUpper(name))
				}
				return AggExpr{Fn: name}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return AggExpr{Fn: name, Arg: arg}, nil
		}
		ref, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return ColExpr{Ref: ref}, nil
	case p.tok.kind == tInt || p.tok.kind == tFloat || p.tok.kind == tString || p.isPunct("-"):
		v, err := p.literalValue()
		if err != nil {
			return nil, err
		}
		return LitExpr{Val: v}, nil
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, p.errf("expected an expression, got %q", p.tok.text)
	}
}

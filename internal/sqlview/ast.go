// Package sqlview translates a subset of SQL view definitions — the form
// the paper itself uses in Example 1.1 — into the engine's Datalog
// programs. Supported:
//
//	CREATE TABLE link(s, d);
//	CREATE VIEW hop(s, d) AS
//	    SELECT r1.s, r2.d FROM link r1, link r2 WHERE r1.d = r2.s;
//	CREATE VIEW mch(s, d, m) AS
//	    SELECT s, d, MIN(c) FROM hop GROUP BY s, d HAVING MIN(c) < 100;
//	CREATE VIEW only_tri_hop(s, d) AS
//	    SELECT t.s, t.d FROM tri_hop t
//	    WHERE NOT EXISTS (SELECT * FROM hop h WHERE h.s = t.s AND h.d = t.d);
//	CREATE VIEW v(x) AS SELECT a FROM p UNION SELECT b FROM q;
//	INSERT INTO link VALUES ('a', 'b'), ('b', 'c');
//
// Joins become conjunctive rules (variables unified through equality
// predicates), NOT EXISTS becomes safe negation, GROUP BY + an aggregate
// becomes a GROUPBY subgoal (with an auxiliary rule for the join part),
// UNION becomes multiple rules, and INSERT statements become facts.
package sqlview

import "ivm/internal/value"

// Script is a parsed SQL script.
type Script struct {
	// Tables maps declared base tables to their column names.
	Tables map[string][]string
	// Views holds the view definitions in declaration order.
	Views []ViewDef
	// Facts holds rows from INSERT statements.
	Facts []Fact
}

// Fact is one inserted row.
type Fact struct {
	Table string
	Row   []value.Value
}

// ViewDef is one CREATE VIEW statement.
type ViewDef struct {
	Name    string
	Cols    []string // declared column names ("" entries filled from aliases)
	Selects []Select // UNION branches
}

// Select is one SELECT block.
type Select struct {
	Distinct bool
	Items    []SelItem
	From     []TableRef
	Where    []Cond
	GroupBy  []ColRef
	Having   []Cond
}

// SelItem is one projection item.
type SelItem struct {
	Expr  Expr
	Alias string
}

// TableRef is one FROM entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// ColRef names a column, optionally qualified by a table alias.
type ColRef struct {
	Qualifier string
	Col       string
}

// Expr is a scalar SQL expression.
type Expr interface{ isExpr() }

// ColExpr references a column.
type ColExpr struct{ Ref ColRef }

// LitExpr is a literal constant.
type LitExpr struct{ Val value.Value }

// BinExpr is arithmetic.
type BinExpr struct {
	Op          byte // '+', '-', '*', '/'
	Left, Right Expr
}

// AggExpr is an aggregate call; Arg == nil means COUNT(*).
type AggExpr struct {
	Fn  string // MIN MAX SUM COUNT AVG VARIANCE (lower-cased by parser)
	Arg Expr
}

func (ColExpr) isExpr() {}
func (LitExpr) isExpr() {}
func (BinExpr) isExpr() {}
func (AggExpr) isExpr() {}

// CondKind discriminates WHERE conjuncts.
type CondKind uint8

const (
	// CondCmp is expr <op> expr.
	CondCmp CondKind = iota
	// CondNotExists is NOT EXISTS (subselect).
	CondNotExists
)

// Cond is one conjunct of a WHERE/HAVING clause.
type Cond struct {
	Kind CondKind
	// CondCmp:
	Op          string // = != < <= > >=
	Left, Right Expr
	// CondNotExists:
	Sub *Select
}

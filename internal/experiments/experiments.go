// Package experiments builds the workloads, engines and measurement
// tables for the reproduction experiments E1–E14 listed in DESIGN.md.
// Every table/claim of the paper's evaluation maps to one Run* function;
// cmd/ivmbench prints them and the root bench_test.go benchmarks reuse
// the same scenario builders.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"ivm/internal/baseline/pf"
	"ivm/internal/baseline/recompute"
	"ivm/internal/core/counting"
	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/metrics"
	"ivm/internal/parser"
	"ivm/internal/relation"
	"ivm/internal/strata"
	"ivm/internal/workload"
)

// Table is one experiment's output: the rows the paper-equivalent
// table/figure would show.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's claim this table checks
	Header []string
	Rows   [][]string
}

// Render formats the table for terminals.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// metricsReg, when non-nil, is threaded into every engine the helper
// constructors below build, so one harness run accumulates a single
// cross-experiment metrics snapshot.
var metricsReg *metrics.Registry

// EnableMetrics turns on metrics collection for engines built after the
// call and returns the shared registry. Idempotent.
func EnableMetrics() *metrics.Registry {
	if metricsReg == nil {
		metricsReg = metrics.NewRegistry()
	}
	return metricsReg
}

// MetricsSnapshot returns the current state of the shared registry
// (empty if EnableMetrics was never called).
func MetricsSnapshot() metrics.Snapshot {
	return metricsReg.Snapshot()
}

// MustRules parses a rule program, panicking on error (experiment
// programs are constants).
func MustRules(src string) *datalog.Program {
	prog, err := parser.ParseRules(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Programs used across the experiments.
const (
	HopProgram = `hop(X,Y) :- link(X,Z), link(Z,Y).`

	TriHopProgram = `
		hop(X,Y)     :- link(X,Z), link(Z,Y).
		tri_hop(X,Y) :- hop(X,Z), link(Z,Y).
	`

	OnlyTriHopProgram = `
		hop(X,Y)          :- link(X,Z), link(Z,Y).
		tri_hop(X,Y)      :- hop(X,Z), link(Z,Y).
		only_tri_hop(X,Y) :- tri_hop(X,Y), !hop(X,Y).
	`

	MinCostHopProgram = `
		hop(S,D,C1+C2)      :- link(S,I,C1), link(I,D,C2).
		min_cost_hop(S,D,M) :- groupby(hop(S,D,C), [S,D], M = min(C)).
	`

	TCProgram = `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
	`
)

// LinkDB wraps a link relation in a DB.
func LinkDB(link *relation.Relation) *eval.DB {
	db := eval.NewDB()
	db.Put("link", link)
	return db
}

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// medianOf runs f trials times on fresh state from setup and reports the
// median duration. setup must return an independent f each time.
func medianOf(trials int, setup func() func() error) (time.Duration, error) {
	durs := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		f := setup()
		d, err := timeIt(f)
		if err != nil {
			return 0, err
		}
		durs = append(durs, d)
	}
	for i := 1; i < len(durs); i++ {
		for j := i; j > 0 && durs[j] < durs[j-1]; j-- {
			durs[j], durs[j-1] = durs[j-1], durs[j]
		}
	}
	return durs[len(durs)/2], nil
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	}
}

func ratio(a, b time.Duration) string {
	if a == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(b)/float64(a))
}

// CountingEngine materializes prog over link with the given semantics.
func CountingEngine(progSrc string, db *eval.DB, sem eval.Semantics) *counting.Engine {
	e, err := counting.NewWithConfig(MustRules(progSrc), db,
		counting.Config{Semantics: sem, Metrics: metricsReg})
	if err != nil {
		panic(err)
	}
	return e
}

// DRedEngine materializes prog over db.
func DRedEngine(progSrc string, db *eval.DB) *dred.Engine {
	e, err := dred.NewWithConfig(MustRules(progSrc), db, dred.Config{Metrics: metricsReg})
	if err != nil {
		panic(err)
	}
	return e
}

// RecomputeEngine materializes prog over db.
func RecomputeEngine(progSrc string, db *eval.DB, sem eval.Semantics) *recompute.Engine {
	e, err := recompute.New(MustRules(progSrc), db, sem)
	if err != nil {
		panic(err)
	}
	e.Metrics = metricsReg
	return e
}

// PFEngine materializes prog over db.
func PFEngine(progSrc string, db *eval.DB, fragmentTuples bool) *pf.Engine {
	e, err := pf.NewWithConfig(MustRules(progSrc), db, pf.Config{Metrics: metricsReg})
	if err != nil {
		panic(err)
	}
	e.FragmentTuples = fragmentTuples
	return e
}

// Evaluate materializes a program once (for E7-style measurements) and
// returns the DB.
func Evaluate(progSrc string, db *eval.DB, sem eval.Semantics, trackCounts bool) *eval.DB {
	prog := MustRules(progSrc)
	st, err := strata.Compute(prog)
	if err != nil {
		panic(err)
	}
	work := db.Clone()
	ev := eval.NewEvaluator(prog, st, sem)
	ev.TrackCounts = trackCounts
	if err := ev.Evaluate(work); err != nil {
		panic(err)
	}
	return work
}

// DeltaOf builds the map form of a link delta.
func DeltaOf(d *relation.Relation) map[string]*relation.Relation {
	return map[string]*relation.Relation{"link": d}
}

// Rng returns a deterministic RNG for an experiment.
func Rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Pct renders a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2g%%", f*100) }

var _ = workload.RandomGraph // imported for the Run* files

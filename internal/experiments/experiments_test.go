package experiments

import (
	"strings"
	"testing"
)

// TestRunAllSmoke executes every experiment at a tiny scale: the tables
// must render with their headers and at least one data row (this keeps
// the harness itself under test).
func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tiny := Scale{Nodes: 30, Edges: 90, Trials: 1}
	tables := RunAll(tiny)
	if len(tables) != 13 {
		t.Fatalf("tables: %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if seen[tab.ID] {
			t.Fatalf("duplicate id %s", tab.ID)
		}
		seen[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: no rows", tab.ID)
		}
		out := tab.Render()
		if !strings.Contains(out, tab.ID) || !strings.Contains(out, tab.Header[0]) {
			t.Fatalf("%s: render missing pieces:\n%s", tab.ID, out)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: row width %d vs header %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"ivm/internal/core/counting"
	"ivm/internal/core/dred"
	"ivm/internal/datalog"
	"ivm/internal/eval"
	"ivm/internal/relation"
	"ivm/internal/workload"
)

// Scale tunes experiment sizes: 1 is the default benchmark scale; smaller
// values keep smoke runs fast.
type Scale struct {
	Nodes  int // graph nodes for the main sweeps
	Edges  int // graph edges
	Trials int // timing repetitions (median reported)
}

// DefaultScale is used by cmd/ivmbench.
var DefaultScale = Scale{Nodes: 300, Edges: 1800, Trials: 5}

// SmokeScale runs everything in well under a second.
var SmokeScale = Scale{Nodes: 60, Edges: 240, Trials: 3}

// RunAll executes every experiment at the given scale.
func RunAll(s Scale) []*Table {
	return []*Table{
		RunE1(s), RunE2(s), RunE3(s), RunE4(s), RunE5(s), RunE6(s),
		RunE7(s), RunE8(s), RunE9(s), RunE10(s), RunE12(s), RunE13(s),
		RunE14(s),
	}
}

// RunE1 — Example 1.1 at scale: single-edge deletions of the hop view,
// counting vs DRed vs recompute.
func RunE1(s Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "hop view, single base deletion (Example 1.1 at scale)",
		Claim:  "counting deletes exactly the tuples whose last derivation died; both incremental engines beat recomputation",
		Header: []string{"engine", "n", "m", "|hop|", "median maint", "vs recompute"},
	}
	rng := Rng(1)
	link := workload.RandomGraph(rng, s.Nodes, s.Edges)

	var recompMedian time.Duration
	for _, engine := range []string{"recompute", "counting", "dred"} {
		engine := engine
		med, err := medianOf(s.Trials, func() func() error {
			d := workload.SampleDeletes(Rng(rng.Int63()), link, 1)
			switch engine {
			case "counting":
				e := CountingEngine(HopProgram, LinkDB(link.Clone()), eval.Duplicate)
				return func() error { _, err := e.Apply(DeltaOf(d)); return err }
			case "dred":
				e := DRedEngine(HopProgram, LinkDB(link.Clone()))
				return func() error { _, err := e.Apply(DeltaOf(d)); return err }
			default:
				e := RecomputeEngine(HopProgram, LinkDB(link.Clone()), eval.Duplicate)
				return func() error { _, err := e.Apply(DeltaOf(d)); return err }
			}
		})
		if err != nil {
			panic(err)
		}
		if engine == "recompute" {
			recompMedian = med
		}
		hopSize := CountingEngine(HopProgram, LinkDB(link.Clone()), eval.Duplicate).Relation("hop").Len()
		t.Rows = append(t.Rows, []string{
			engine, fmt.Sprint(s.Nodes), fmt.Sprint(link.Len()), fmt.Sprint(hopSize),
			dur(med), ratio(med, recompMedian),
		})
	}
	return t
}

// RunE2 — Example 4.2 at scale: two-stratum hop/tri_hop maintenance under
// mixed batches.
func RunE2(s Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "hop + tri_hop, mixed insert/delete batches (Example 4.2 at scale)",
		Claim:  "delta rules propagate stratum by stratum; cost tracks |Δ|, not |view|",
		Header: []string{"batch |Δ|", "median maint (counting)", "median recompute", "speedup"},
	}
	rng := Rng(2)
	link := workload.RandomGraph(rng, s.Nodes, s.Edges)
	for _, k := range []int{1, 4, 16, 64} {
		d := workload.Mixed(Rng(20+int64(k)), link, s.Nodes, k/2, k-k/2)
		cm, err := medianOf(s.Trials, func() func() error {
			e := CountingEngine(TriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(TriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), dur(cm), dur(rm), ratio(cm, rm)})
	}
	return t
}

// RunE3 — statement (2) ablation (Example 5.1): with the set-semantics
// optimization on, count-only changes stop cascading.
func RunE3(s Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "set-semantics cascade cut (Algorithm 4.1 statement (2), Example 5.1)",
		Claim:  "without statement (2) every count change cascades; with it, unchanged set images stop propagation",
		Header: []string{"variant", "median maint", "Δ-rules fired", "Δ tuples", "cascades stopped"},
	}
	// A dense graph where most hop tuples have many alternative
	// derivations, so single deletions rarely change set images.
	rng := Rng(3)
	link := workload.RandomGraph(rng, s.Nodes/4, s.Edges/2)
	d := workload.SampleDeletes(Rng(33), link, 4)

	type variant struct {
		name       string
		disableOpt bool
	}
	for _, v := range []variant{{"with stmt (2)", false}, {"without stmt (2)", true}} {
		var fired, tuples, stopped int
		med, err := medianOf(s.Trials, func() func() error {
			db := LinkDB(link.Clone())
			prog := MustRules(TriHopProgram)
			e, err := newCountingWithOpt(prog, db, v.disableOpt)
			if err != nil {
				panic(err)
			}
			return func() error {
				_, err := e.Apply(DeltaOf(d))
				fired = e.Stats().DeltaRulesEvaluated
				tuples = e.Stats().DeltaTuples
				stopped = e.Stats().CascadeStopped
				return err
			}
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			v.name, dur(med), fmt.Sprint(fired), fmt.Sprint(tuples), fmt.Sprint(stopped),
		})
	}
	return t
}

// RunE4 — negation maintenance (Example 6.1 / Theorem 6.1).
func RunE4(s Scale) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "negation: only_tri_hop maintenance (Example 6.1, Definition 6.1)",
		Claim:  "Δ(¬q) is computed from ΔQ and Q alone, without evaluating the positive subgoals",
		Header: []string{"batch |Δ|", "median maint (counting)", "median recompute", "speedup"},
	}
	rng := Rng(4)
	link := workload.RandomGraph(rng, s.Nodes/2, s.Edges/2)
	for _, k := range []int{1, 8, 32} {
		d := workload.Mixed(Rng(40+int64(k)), link, s.Nodes/2, k/2, k-k/2)
		cm, err := medianOf(s.Trials, func() func() error {
			e := CountingEngine(OnlyTriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(OnlyTriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), dur(cm), dur(rm), ratio(cm, rm)})
	}
	return t
}

// RunE5 — aggregation maintenance (Example 6.2 / Algorithm 6.1).
func RunE5(s Scale) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "aggregation: min_cost_hop maintenance (Example 6.2, Algorithm 6.1)",
		Claim:  "only groups touched by ΔU are recomputed; MIN rescans only when the minimum leaves",
		Header: []string{"batch |Δ|", "median maint (counting)", "median recompute", "speedup"},
	}
	rng := Rng(5)
	link := workload.RandomWeightedGraph(rng, s.Nodes/2, s.Edges/2, 100)
	for _, k := range []int{1, 8, 32} {
		d := weightedMixed(Rng(50+int64(k)), link, s.Nodes/2, k)
		cm, err := medianOf(s.Trials, func() func() error {
			e := CountingEngine(MinCostHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(MinCostHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), dur(cm), dur(rm), ratio(cm, rm)})
	}
	return t
}

// RunE6 — counting vs recompute as |Δ| sweeps toward |base|: the
// heuristic-of-inertia crossover (Section 1).
func RunE6(s Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "counting vs recompute across |Δ|/|base| (Section 1's heuristic of inertia)",
		Claim:  "incremental wins by orders of magnitude for small Δ and loses near full-relation churn",
		Header: []string{"Δ fraction", "|Δ|", "counting", "recompute", "counting/recompute"},
	}
	rng := Rng(6)
	link := workload.RandomGraph(rng, s.Nodes, s.Edges)
	fractions := []float64{0.001, 0.01, 0.1, 0.5, 1.0}
	for _, f := range fractions {
		k := int(float64(link.Len()) * f)
		if k < 1 {
			k = 1
		}
		d := workload.SampleDeletes(Rng(60), link, k)
		cm, err := medianOf(s.Trials, func() func() error {
			e := CountingEngine(TriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(TriHopProgram, LinkDB(link.Clone()), eval.Duplicate)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			Pct(f), fmt.Sprint(k), dur(cm), dur(rm),
			fmt.Sprintf("%.2f", float64(cm)/float64(rm)),
		})
	}
	return t
}

// RunE7 — cost of tracking counts during view evaluation (Section 5).
func RunE7(s Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "count-tracking cost at view build time (Section 5)",
		Claim:  "duplicate elimination can be augmented to count at no extra cost: counting evaluation is never slower than count-free duplicate elimination (negative = counting is cheaper, since the count-free pipeline still pays a collapse pass)",
		Header: []string{"program", "counting eval", "dup-elim eval (no counts)", "counting vs dup-elim"},
	}
	rng := Rng(7)
	link := workload.RandomGraph(rng, s.Nodes, s.Edges)
	wlink := workload.RandomWeightedGraph(rng, s.Nodes/2, s.Edges/2, 100)
	cases := []struct {
		name string
		prog string
		db   *eval.DB
	}{
		{"hop", HopProgram, LinkDB(link)},
		{"hop+tri_hop", TriHopProgram, LinkDB(link)},
		{"min_cost_hop", MinCostHopProgram, LinkDB(wlink)},
	}
	trials := s.Trials*2 + 3
	for _, c := range cases {
		withCounts, err := medianOf(trials, func() func() error {
			return func() error { Evaluate(c.prog, c.db, eval.Set, true); return nil }
		})
		if err != nil {
			panic(err)
		}
		withoutCounts, err := medianOf(trials, func() func() error {
			return func() error { Evaluate(c.prog, c.db, eval.Set, false); return nil }
		})
		if err != nil {
			panic(err)
		}
		overhead := (float64(withCounts)/float64(withoutCounts) - 1) * 100
		t.Rows = append(t.Rows, []string{
			c.name, dur(withCounts), dur(withoutCounts), fmt.Sprintf("%+.1f%%", overhead),
		})
	}
	return t
}

// RunE8 — DRed on recursive transitive closure vs recompute (Section 7,
// Theorem 7.1).
func RunE8(s Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "DRed on transitive closure: deletions with alternative derivations (Section 7)",
		Claim:  "DRed beats recomputation for small deletions on large closures; recompute wins when most of the base dies",
		Header: []string{"deleted edges", "dred", "recompute", "dred/recompute", "overestimated", "rederived"},
	}
	t.Header = []string{"deleted edges", "dred p50", "dred min…max", "recompute p50", "p50 ratio", "overest p50"}
	// A sparse random digraph: the transitive closure is large relative to
	// the base and a *typical* deletion has a small affected cone — the
	// regime where incremental maintenance pays. The distribution is
	// bimodal: a minority of deletions hit the giant component and
	// invalidate most of the closure (dred min…max makes both modes
	// visible). The |base|/2 row shows the crossover where recompute wins.
	n, m := 2*s.Nodes, 5*s.Nodes/2
	link := workload.RandomGraph(Rng(81), n, m)
	trials := s.Trials*2 + 1
	for _, k := range []int{1, 4, 16, m / 2} {
		var dred []e8Sample
		var reco []time.Duration
		for trial := 0; trial < trials; trial++ {
			d := workload.SampleDeletes(Rng(int64(800+trial)), link, k)
			e := DRedEngine(TCProgram, LinkDB(link.Clone()))
			warmDRed(e, d)
			el, err := timeIt(func() error { _, err := e.Apply(DeltaOf(d)); return err })
			if err != nil {
				panic(err)
			}
			dred = append(dred, e8Sample{el, e.Stats().Overestimated})

			r := RecomputeEngine(TCProgram, LinkDB(link.Clone()), eval.Set)
			el, err = timeIt(func() error { _, err := r.Apply(DeltaOf(d)); return err })
			if err != nil {
				panic(err)
			}
			reco = append(reco, el)
		}
		sortSamples(dred)
		sortDurations(reco)
		p50, rp50 := dred[len(dred)/2], reco[len(reco)/2]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), dur(p50.d),
			fmt.Sprintf("%s…%s", dur(dred[0].d), dur(dred[len(dred)-1].d)),
			dur(rp50), fmt.Sprintf("%.2f", float64(p50.d)/float64(rp50)),
			fmt.Sprint(p50.over),
		})
	}
	return t
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// e8Sample is one timed DRed trial of experiment E8.
type e8Sample struct {
	d    time.Duration
	over int
}

// sortSamples orders E8 samples by duration (insertion sort; tiny n).
func sortSamples(ss []e8Sample) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].d < ss[j-1].d; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// warmDRed applies d and its inverse once so lazy index builds and
// allocator warm-up do not bias the timed run; the engine's set state is
// unchanged afterwards.
func warmDRed(e *dred.Engine, d *relation.Relation) {
	if _, err := e.Apply(DeltaOf(d)); err != nil {
		panic(err)
	}
	if _, err := e.Apply(DeltaOf(d.Negate())); err != nil {
		panic(err)
	}
}

// RunE9 — DRed vs the fragmented PF baseline (Section 2's order-of-
// magnitude claim).
func RunE9(s Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "DRed vs PF-style fragmented propagation ([HD92], Section 2)",
		Claim:  "PF fragments computation and re-attempts rederivation per change; DRed recomputes deleted tuples once — up to an order of magnitude apart",
		Header: []string{"engine", "batch", "median maint", "rule firings", "rederived", "vs dred"},
	}
	n, m := s.Nodes, 3*s.Nodes/2
	link := workload.RandomGraph(Rng(91), n, m)
	k := 16
	// Clustered deletions overlap in their effect cones: per-change
	// propagation rederives the same region again and again.
	d := workload.ClusteredDeletes(link, k)

	var dredTime time.Duration
	var rows [][]string
	{
		var firings, reder int
		med, err := medianOf(s.Trials, func() func() error {
			e := DRedEngine(TCProgram, LinkDB(link.Clone()))
			warmDRed(e, d)
			return func() error {
				_, err := e.Apply(DeltaOf(d))
				firings, reder = e.Stats().RuleFirings, e.Stats().Rederived
				return err
			}
		})
		if err != nil {
			panic(err)
		}
		dredTime = med
		rows = append(rows, []string{"dred (one pass)", fmt.Sprintf("%d dels", k), dur(med), fmt.Sprint(firings), fmt.Sprint(reder), "1.0x"})
	}
	for _, frag := range []bool{false, true} {
		name := "pf (per-relation)"
		if frag {
			name = "pf (per-tuple)"
		}
		var firings, reder int
		med, err := medianOf(s.Trials, func() func() error {
			e := PFEngine(TCProgram, LinkDB(link.Clone()), frag)
			// Warm the lazy indexes with a no-op round trip.
			if _, err := e.Apply(DeltaOf(d)); err != nil {
				panic(err)
			}
			if _, err := e.Apply(DeltaOf(d.Negate())); err != nil {
				panic(err)
			}
			return func() error {
				_, err := e.Apply(DeltaOf(d))
				firings, reder = e.Stats().RuleFirings, e.Stats().Rederived
				return err
			}
		})
		if err != nil {
			panic(err)
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d dels", k), dur(med), fmt.Sprint(firings), fmt.Sprint(reder),
			fmt.Sprintf("%.1fx", float64(med)/float64(dredTime))})
	}
	t.Rows = rows
	return t
}

// RunE10 — view-definition changes (Section 7's rule insertion/deletion).
func RunE10(s Scale) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "rule insertion/deletion maintenance (Section 7)",
		Claim:  "DRed maintains views across definition changes without recomputing from scratch",
		Header: []string{"operation", "incremental (dred)", "rematerialize", "speedup"},
	}
	rng := Rng(10)
	link := workload.RandomGraph(rng, s.Nodes/2, s.Edges/3)
	hyper := workload.RandomGraph(rng, s.Nodes/2, 8)
	db := LinkDB(link)
	db.Put("hyperlink", hyper)

	addRule := MustRules(`tc(X,Y) :- hyperlink(X,Y).`).Rules[0]
	progWith := `
		tc(X,Y) :- link(X,Y).
		tc(X,Y) :- tc(X,Z), link(Z,Y).
		tc(X,Y) :- hyperlink(X,Y).
	`

	// AddRule vs rebuilding the three-rule program.
	am, err := medianOf(s.Trials, func() func() error {
		e := DRedEngine(TCProgram, db.Clone())
		return func() error { _, err := e.AddRule(addRule); return err }
	})
	if err != nil {
		panic(err)
	}
	rm, err := medianOf(s.Trials, func() func() error {
		work := db.Clone()
		return func() error {
			_ = DRedEngine(progWith, work)
			return nil
		}
	})
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"add rule", dur(am), dur(rm), ratio(am, rm)})

	// RemoveRule vs rebuilding the two-rule program.
	dm, err := medianOf(s.Trials, func() func() error {
		e := DRedEngine(progWith, db.Clone())
		return func() error { _, err := e.RemoveRule(2); return err }
	})
	if err != nil {
		panic(err)
	}
	rm2, err := medianOf(s.Trials, func() func() error {
		work := db.Clone()
		return func() error {
			_ = DRedEngine(TCProgram, work)
			return nil
		}
	})
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{"remove rule", dur(dm), dur(rm2), ratio(dm, rm2)})
	return t
}

// RunE12 — insertion-only maintenance on recursive views: semi-naive
// propagation vs full re-evaluation (Section 7's observation that
// insertions need only semi-naive evaluation).
func RunE12(s Scale) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "insertion-only maintenance of transitive closure (Section 7)",
		Claim:  "a semi-naive pass suffices for insertions; no deletion machinery runs",
		Header: []string{"inserted edges", "dred", "recompute", "speedup", "overestimated"},
	}
	rng := Rng(12)
	link := workload.RandomGraph(rng, s.Nodes/2, s.Edges/4)
	for _, k := range []int{1, 8, 32} {
		d := workload.SampleInserts(Rng(120+int64(k)), link, s.Nodes/2, k)
		var over int
		dm, err := medianOf(s.Trials, func() func() error {
			e := DRedEngine(TCProgram, LinkDB(link.Clone()))
			warmDRed(e, d) // apply + undo: warms the lazy indexes
			return func() error {
				_, err := e.Apply(DeltaOf(d))
				over = e.Stats().Overestimated
				return err
			}
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(TCProgram, LinkDB(link.Clone()), eval.Set)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), dur(dm), dur(rm), ratio(dm, rm), fmt.Sprint(over)})
	}
	return t
}

// weightedMixed builds a mixed delta for a weighted link relation.
func weightedMixed(rng interface {
	Intn(int) int
	Int63() int64
}, link *relation.Relation, nodes, k int) *relation.Relation {
	d := workload.SampleDeletes(Rng(rng.Int63()), link, k/2)
	ins := workload.RandomWeightedGraph(Rng(rng.Int63()), nodes, k-k/2, 100)
	ins.Each(func(r relation.Row) {
		if !link.Has(r.Tuple) && d.Count(r.Tuple) == 0 {
			d.Add(r.Tuple, 1)
		}
	})
	return d
}

func isqrt(n int) int {
	i := 1
	for (i+1)*(i+1) <= n {
		i++
	}
	return i
}

// newCountingWithOpt builds a counting engine with or without statement
// (2) of Algorithm 4.1 (E3's ablation).
func newCountingWithOpt(prog *datalog.Program, db *eval.DB, disable bool) (*counting.Engine, error) {
	return counting.NewWithConfig(prog, db, counting.Config{
		Semantics:     eval.Set,
		DisableSetOpt: disable,
	})
}

// RunE13 — counting on recursive views (Section 8's future work,
// [GKM92]): on acyclic data, counted delta fixpoints maintain exact
// derivation (path) counts; compared against DRed and recompute.
func RunE13(s Scale) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "recursive counting on DAG transitive closure ([GKM92], Section 8)",
		Claim:  "counting extends to recursive views with finite counts; deltas quiesce on acyclic derivations",
		Header: []string{"deleted edges", "counting", "dred", "recompute", "counting/dred"},
	}
	layers, width := s.Nodes/20, 6
	if layers < 5 {
		layers = 5
	}
	link := workload.LayeredDAG(Rng(130), layers, width, 2)
	cfg := counting.Config{Semantics: eval.Duplicate, AllowRecursion: true, MaxIterations: 10 * layers}
	prog := MustRules(TCProgram)
	for _, k := range []int{1, 4, 16} {
		d := workload.SampleDeletes(Rng(131+int64(k)), link, k)
		cm, err := medianOf(s.Trials, func() func() error {
			e, err := counting.NewWithConfig(prog, LinkDB(link.Clone()), cfg)
			if err != nil {
				panic(err)
			}
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		dm, err := medianOf(s.Trials, func() func() error {
			e := DRedEngine(TCProgram, LinkDB(link.Clone()))
			warmDRed(e, d)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		rm, err := medianOf(s.Trials, func() func() error {
			e := RecomputeEngine(TCProgram, LinkDB(link.Clone()), eval.Set)
			return func() error { _, err := e.Apply(DeltaOf(d)); return err }
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), dur(cm), dur(dm), dur(rm),
			fmt.Sprintf("%.2f", float64(cm)/float64(dm)),
		})
	}
	return t
}

// RunE14 — parallel delta-rule evaluation: maintenance latency of the
// tri_hop view (counting) and transitive closure (DRed) across worker
// counts, with the speedup over the sequential engine. The maintained
// views are bit-identical at every worker count (the parallel property
// tests pin this); only latency changes. On a single-CPU host the
// speedups hover around 1.0 — the sweep shows its spread on multicore CI.
func RunE14(s Scale) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "parallel delta-rule evaluation (workers sweep)",
		Claim:  "independent delta rules and hash-partitioned joins spread across workers with identical results",
		Header: []string{"deleted edges", "workers", "counting", "speedup", "dred", "speedup"},
	}
	link := workload.RandomGraph(Rng(140), s.Nodes, s.Edges)
	for _, k := range []int{4, 16} {
		d := workload.SampleDeletes(Rng(141+int64(k)), link, k)
		var seqC, seqD time.Duration
		for _, w := range []int{1, 2, 4, 8} {
			w := w
			cm, err := medianOf(s.Trials, func() func() error {
				e, err := counting.NewWithConfig(MustRules(TriHopProgram), LinkDB(link.Clone()),
					counting.Config{Semantics: eval.Set, Parallelism: w})
				if err != nil {
					panic(err)
				}
				return func() error { _, err := e.Apply(DeltaOf(d)); return err }
			})
			if err != nil {
				panic(err)
			}
			dm, err := medianOf(s.Trials, func() func() error {
				e, err := dred.NewWithConfig(MustRules(TCProgram), LinkDB(link.Clone()),
					dred.Config{Parallelism: w})
				if err != nil {
					panic(err)
				}
				warmDRed(e, d)
				return func() error { _, err := e.Apply(DeltaOf(d)); return err }
			})
			if err != nil {
				panic(err)
			}
			if w == 1 {
				seqC, seqD = cm, dm
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(k), fmt.Sprint(w), dur(cm),
				fmt.Sprintf("%.2fx", float64(seqC)/float64(cm)),
				dur(dm),
				fmt.Sprintf("%.2fx", float64(seqD)/float64(dm)),
			})
		}
	}
	return t
}

package metrics

import "time"

// Tracer receives maintenance trace events. Implementations must be
// safe for use from the goroutine running the maintenance operation
// (events are emitted synchronously, in order, from under the engine's
// lock — keep handlers fast or hand off to a channel).
//
// A nil Tracer costs a single nil check per event site: the engines
// guard every emission, and the hot evaluation loops never construct
// event arguments unless a tracer is installed.
type Tracer interface {
	// BatchStart fires when a maintenance operation (Apply, AddRule,
	// RemoveRule) begins. strategy is "counting", "dred", "recompute",
	// or "pf"; deltaPreds is the number of base predicates with changes.
	BatchStart(strategy string, deltaPreds int)
	// StratumDone fires after each stratum's delta propagation, with
	// the stratum number (1-based, least first) and its wall time.
	StratumDone(stratum int, d time.Duration)
	// RuleEvaluated fires after each delta-rule evaluation with the
	// rule's text and the number of delta tuples it produced.
	RuleEvaluated(rule string, tuples int)
	// BatchDone fires when the operation completes, with its total wall
	// time and the number of derived predicates that changed.
	BatchDone(d time.Duration, changedPreds int)
}

// FuncTracer adapts optional callbacks to the Tracer interface; nil
// callbacks are skipped. The zero value is a valid no-op tracer.
type FuncTracer struct {
	OnBatchStart    func(strategy string, deltaPreds int)
	OnStratumDone   func(stratum int, d time.Duration)
	OnRuleEvaluated func(rule string, tuples int)
	OnBatchDone     func(d time.Duration, changedPreds int)
}

func (t *FuncTracer) BatchStart(strategy string, deltaPreds int) {
	if t.OnBatchStart != nil {
		t.OnBatchStart(strategy, deltaPreds)
	}
}

func (t *FuncTracer) StratumDone(stratum int, d time.Duration) {
	if t.OnStratumDone != nil {
		t.OnStratumDone(stratum, d)
	}
}

func (t *FuncTracer) RuleEvaluated(rule string, tuples int) {
	if t.OnRuleEvaluated != nil {
		t.OnRuleEvaluated(rule, tuples)
	}
}

func (t *FuncTracer) BatchDone(d time.Duration, changedPreds int) {
	if t.OnBatchDone != nil {
		t.OnBatchDone(d, changedPreds)
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Add(-10) // ignored: counters are monotonic
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
}

func TestGaugeSet(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(42)
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge = %d, want -7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)      // bucket 0 (<= 1ms)
	h.Observe(time.Millisecond)      // bucket 0 (bound inclusive)
	h.Observe(10 * time.Millisecond) // bucket 1
	h.Observe(time.Minute)           // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	want := time.Microsecond + time.Millisecond + 10*time.Millisecond + time.Minute
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	got := []int64{h.counts[0].Load(), h.counts[1].Load(), h.counts[2].Load()}
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("bucket counts = %v, want [2 1 1]", got)
	}
}

func TestSnapshotIsImmutableCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Snapshot()
	r.Counter("a").Add(10)
	r.Histogram("h").Observe(time.Second)
	if s.Counter("a") != 1 || s.Gauge("b") != 2 {
		t.Fatalf("snapshot mutated: a=%d b=%d", s.Counter("a"), s.Gauge("b"))
	}
	if hs := s.Histograms["h"]; hs.Count != 1 {
		t.Fatalf("histogram snapshot mutated: count=%d", hs.Count)
	}
	if s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Fatal("absent series must read 0")
	}
}

func TestWriteToExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total").Add(3)
	r.Counter("alpha_total").Add(1)
	r.Gauge("mid_gauge").Set(9)
	r.Histogram("lat_seconds").Observe(5 * time.Microsecond)
	r.Histogram("lat_seconds").Observe(time.Hour)

	var b strings.Builder
	if _, err := r.Snapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")

	// Scalars first, sorted.
	if lines[0] != "alpha_total 1" || lines[1] != "mid_gauge 9" || lines[2] != "zeta_total 3" {
		t.Fatalf("scalar lines: %v", lines[:3])
	}
	for _, want := range []string{
		"lat_seconds_count 2",
		"lat_seconds_le_10µs 1", // cumulative
		"lat_seconds_le_10s 1",  // still cumulative below overflow
		"lat_seconds_le_inf 2",  // overflow closes the distribution
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_seconds").Observe(time.Duration(i))
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("shared_seconds").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestFuncTracerNilCallbacks(t *testing.T) {
	// A FuncTracer with no callbacks must be safe to drive.
	ft := &FuncTracer{}
	ft.BatchStart("counting", 1)
	ft.StratumDone(1, time.Millisecond)
	ft.RuleEvaluated("p", 3)
	ft.BatchDone(time.Millisecond, 1)

	var events []string
	ft2 := &FuncTracer{
		OnBatchStart: func(strategy string, n int) { events = append(events, "start:"+strategy) },
		OnBatchDone:  func(d time.Duration, n int) { events = append(events, "done") },
	}
	ft2.BatchStart("dred", 2)
	ft2.StratumDone(1, 0) // nil callback skipped
	ft2.BatchDone(0, 0)
	if len(events) != 2 || events[0] != "start:dred" || events[1] != "done" {
		t.Fatalf("events = %v", events)
	}
}

func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("active")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after +3 -1 = %d, want 2", got)
	}
	var nilGauge *Gauge
	nilGauge.Add(5) // must not panic
}

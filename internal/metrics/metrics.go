// Package metrics is a small, dependency-free observability substrate:
// a thread-safe registry of named monotonic counters, gauges, and
// fixed-bucket duration histograms, plus snapshot/exposition helpers.
//
// The package is built for hot-path use by the maintenance engines:
//   - Counter/Gauge mutations are single atomic adds/stores;
//   - Histogram.Observe is a bucket search over a fixed bound table plus
//     three atomic adds (no locks, no allocation);
//   - registry lookups (Registry.Counter etc.) take a lock, so callers
//     resolve instruments once at construction time and hold pointers.
//
// Snapshot produces an immutable copy that can be read, diffed, or
// rendered (expvar-style `name value` lines via WriteTo) without any
// coordination with concurrent writers.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters are
// monotonic).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (d may be negative) — the up/down shape
// level gauges such as active-subscriber counts need.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBuckets are the histogram upper bounds: decades from 10µs to
// 10s — maintenance batches below 10µs land in the first bucket,
// anything above 10s in the implicit +Inf bucket.
var DefaultBuckets = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// Histogram accumulates duration observations into fixed buckets.
// Observations are lock-free; all fields are atomics.
type Histogram struct {
	bounds []time.Duration // sorted upper bounds; +Inf is implicit
	counts []atomic.Int64  // len(bounds)+1, last = overflow
	sum    atomic.Int64    // nanoseconds
	n      atomic.Int64
}

func newHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Registry is a thread-safe collection of named instruments. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter named name.
// A nil registry returns nil — every instrument method on a nil
// instrument is a no-op, so disabled metrics cost one nil check.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the gauge named name.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the duration histogram named
// name, with DefaultBuckets.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = newHistogram(DefaultBuckets)
	r.histograms[name] = h
	return h
}

// HistogramSnapshot is the immutable image of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow (+Inf) bucket. Counts are per-bucket, not cumulative.
	Bounds []time.Duration
	Counts []int64
	Sum    time.Duration
	Count  int64
}

// Snapshot is an immutable point-in-time copy of a registry. The zero
// value behaves as an empty snapshot.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies every instrument's current value. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: h.bounds, // bounds are immutable after construction
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Counter returns the snapshotted value of a counter (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted value of a gauge (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// WriteTo renders the snapshot as sorted expvar-style `name value`
// lines. Histograms expand to `<name>_count`, `<name>_sum_ns`, and one
// `<name>_le_<bound>` line per bucket (cumulative counts, Prometheus
// style; the overflow bucket is `<name>_le_inf`).
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(name string, value int64) error {
		n, err := fmt.Fprintf(w, "%s %d\n", name, value)
		total += int64(n)
		return err
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v, ok := s.Counters[name]
		if !ok {
			v = s.Gauges[name]
		}
		if err := emit(name, v); err != nil {
			return total, err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		if err := emit(name+"_count", h.Count); err != nil {
			return total, err
		}
		if err := emit(name+"_sum_ns", int64(h.Sum)); err != nil {
			return total, err
		}
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			label := "inf"
			if i < len(h.Bounds) {
				label = h.Bounds[i].String()
			}
			if err := emit(fmt.Sprintf("%s_le_%s", name, label), cum); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

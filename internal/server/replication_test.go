package server

// Tests for the replication serving surface: the /v1/replicate stream
// (bootstrap, tail, window resume, WAL backfill, state fallback,
// heartbeats), follower write rejection, bounded-staleness min_version
// reads, and subscription resume over the hub's ring.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/storage"
)

// startReplServer builds a memory-only primary and serves it.
func startReplServer(t *testing.T, opts Options) (*ivm.Views, *Server) {
	t.Helper()
	v := buildTestViews(t)
	srv := New(v, opts)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		v.Shutdown()
	})
	return v, srv
}

// openStream connects to /v1/replicate and returns a record reader.
func openStream(t *testing.T, url string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// nextRecord reads one record, failing the test on error.
func nextRecord(t *testing.T, br *bufio.Reader) storage.ReplRecord {
	t.Helper()
	rec, err := storage.ReadReplRecord(br)
	if err != nil {
		t.Fatalf("reading replication record: %v", err)
	}
	return rec
}

// nextDataRecord skips heartbeats and returns the next 'D' or 'S'.
func nextDataRecord(t *testing.T, br *bufio.Reader) storage.ReplRecord {
	t.Helper()
	for {
		rec := nextRecord(t, br)
		if rec.Kind != storage.ReplKindHeartbeat {
			return rec
		}
	}
}

// TestReplicateBootstrapAndTail is the happy path: no ?from= leads with
// a full state record at the current version, then every commit arrives
// as a delta in version order, and an idle stream heartbeats.
func TestReplicateBootstrapAndTail(t *testing.T) {
	v, srv := startReplServer(t, Options{ReplHeartbeat: 25 * time.Millisecond})

	br, closeStream := openStream(t, srv.URL()+"/v1/replicate")
	defer closeStream()

	rec := nextDataRecord(t, br)
	if rec.Kind != storage.ReplKindState {
		t.Fatalf("first record kind %q, want state", rec.Kind)
	}
	if got, want := rec.Version, v.Snapshot().Version(); got != want {
		t.Fatalf("state version %d, want %d", got, want)
	}
	st, err := storage.DecodeReplState(rec.State)
	if err != nil {
		t.Fatal(err)
	}
	if st.Program != v.ProgramSource() {
		t.Fatalf("state program %q, want the primary's", st.Program)
	}

	var want []uint64
	for i := 0; i < 5; i++ {
		cs, err := v.Apply(ivm.NewUpdate().Insert("link", fmt.Sprintf("r%d", i), "z"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs.Version())
	}
	for _, wv := range want {
		rec := nextDataRecord(t, br)
		if rec.Kind != storage.ReplKindDelta || rec.Version != wv {
			t.Fatalf("got kind %q version %d, want delta version %d", rec.Kind, rec.Version, wv)
		}
	}

	// Idle now: a heartbeat must arrive carrying the published version.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := nextRecord(t, br)
		if rec.Kind == storage.ReplKindHeartbeat {
			if rec.Version != want[len(want)-1] {
				t.Fatalf("heartbeat version %d, want %d", rec.Version, want[len(want)-1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat within deadline")
		}
	}
}

// TestReplicateResumeFromWindow: a ?from= inside the in-memory window
// replays deltas only — no state transfer.
func TestReplicateResumeFromWindow(t *testing.T) {
	v, srv := startReplServer(t, Options{ReplHeartbeat: 25 * time.Millisecond})

	base := v.Snapshot().Version()
	var want []uint64
	for i := 0; i < 4; i++ {
		cs, err := v.Apply(ivm.NewUpdate().Insert("link", fmt.Sprintf("w%d", i), "z"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs.Version())
	}

	br, closeStream := openStream(t, fmt.Sprintf("%s/v1/replicate?from=%d", srv.URL(), base))
	defer closeStream()
	for _, wv := range want {
		rec := nextDataRecord(t, br)
		if rec.Kind != storage.ReplKindDelta || rec.Version != wv {
			t.Fatalf("got kind %q version %d, want delta version %d (no state transfer on window resume)", rec.Kind, rec.Version, wv)
		}
	}
}

// TestReplicateBackfillFromWAL: a resume point that has aged out of the
// in-memory window is bridged from the WAL with contiguous deltas.
func TestReplicateBackfillFromWAL(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(v, Options{ReplWindow: 2, ReplHeartbeat: 25 * time.Millisecond, OwnViews: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	base := v.Snapshot().Version()
	var want []uint64
	for i := 0; i < 6; i++ {
		cs, err := v.Apply(ivm.NewUpdate().Insert("link", fmt.Sprintf("b%d", i), "z"))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs.Version())
	}

	// from=base is 6 commits back; the window holds 2, so the bridge
	// must come from the WAL — still all deltas, in order, gapless.
	br, closeStream := openStream(t, fmt.Sprintf("%s/v1/replicate?from=%d", srv.URL(), base))
	defer closeStream()
	for _, wv := range want {
		rec := nextDataRecord(t, br)
		if rec.Kind != storage.ReplKindDelta || rec.Version != wv {
			t.Fatalf("got kind %q version %d, want delta version %d (WAL backfill)", rec.Kind, rec.Version, wv)
		}
	}
}

// TestReplicateStaleResumeFallsBackToState: with no WAL to bridge from,
// a resume point behind the window gets a full state record at the
// current version instead of a gap.
func TestReplicateStaleResumeFallsBackToState(t *testing.T) {
	v, srv := startReplServer(t, Options{ReplWindow: 2, ReplHeartbeat: 25 * time.Millisecond})

	base := v.Snapshot().Version()
	var last uint64
	for i := 0; i < 6; i++ {
		cs, err := v.Apply(ivm.NewUpdate().Insert("link", fmt.Sprintf("s%d", i), "z"))
		if err != nil {
			t.Fatal(err)
		}
		last = cs.Version()
	}

	br, closeStream := openStream(t, fmt.Sprintf("%s/v1/replicate?from=%d", srv.URL(), base))
	defer closeStream()
	rec := nextDataRecord(t, br)
	if rec.Kind != storage.ReplKindState {
		t.Fatalf("got kind %q version %d, want a state transfer (memory-only primary cannot bridge)", rec.Kind, rec.Version)
	}
	if rec.Version < last {
		t.Fatalf("state version %d, want >= %d", rec.Version, last)
	}
}

// TestFollowerForwardsWrites: a server with LeaderURL proxies applies
// to the leader — Idempotency-Key and fencing epoch ride along, the
// leader's ack comes back verbatim — and reads keep serving locally.
func TestFollowerForwardsWrites(t *testing.T) {
	type seen struct {
		method, path, key, epoch, body string
	}
	var mu sync.Mutex
	var got []seen
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got = append(got, seen{r.Method, r.URL.Path, r.Header.Get("Idempotency-Key"), r.Header.Get("X-Ivm-Epoch"), string(body)})
		mu.Unlock()
		if r.Method != http.MethodPost || r.URL.Path != "/v1/apply" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"version":42}`)
	}))
	defer leader.Close()

	_, srv := startReplServer(t, Options{LeaderURL: leader.URL})
	c := client.New(srv.URL(), nil)
	ctx := context.Background()

	res, err := c.ApplyWithKey(ctx, "k1", "+link(x,y).")
	if err != nil {
		t.Fatalf("forwarded apply failed: %v", err)
	}
	if res.Version != 42 {
		t.Fatalf("forwarded ack version %d, want the leader's 42", res.Version)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("leader saw %d requests, want exactly 1: %+v", len(got), got)
	}
	fwd := got[0]
	if fwd.method != http.MethodPost || fwd.path != "/v1/apply" {
		t.Fatalf("leader saw %s %s, want POST /v1/apply", fwd.method, fwd.path)
	}
	if fwd.key != "k1" {
		t.Fatalf("leader saw Idempotency-Key %q, want k1", fwd.key)
	}
	if fwd.epoch != "1" {
		t.Fatalf("leader saw X-Ivm-Epoch %q, want 1", fwd.epoch)
	}
	if fwd.body != "+link(x,y)." {
		t.Fatalf("leader saw body %q", fwd.body)
	}
	if _, err := c.Rows(ctx, "hop"); err != nil {
		t.Fatalf("read on follower failed: %v", err)
	}
}

// TestFollowerForwardUnreachableLeader: when the leader is down the
// forward fails closed — 503 plus a Leader-URL header so the client can
// redirect once a new leader exists.
func TestFollowerForwardUnreachableLeader(t *testing.T) {
	const leader = "http://127.0.0.1:1" // nothing listens here
	_, srv := startReplServer(t, Options{LeaderURL: leader})

	c := client.New(srv.URL(), nil)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 1})
	_, err := c.Apply(context.Background(), "+link(x,y).")
	if err == nil {
		t.Fatal("apply against a dead leader succeeded")
	}
	if got := client.StatusOf(err); got != http.StatusServiceUnavailable {
		t.Fatalf("apply status %d, want 503", got)
	}
	if got := client.LeaderURLOf(err); got != leader {
		t.Fatalf("Leader-URL %q, want %q", got, leader)
	}
}

// TestPrimaryFencesNewerEpoch: a primary that sees a forwarded apply
// stamped with a newer fencing epoch knows it was deposed — the write
// is refused with 409 and counted, never committed.
func TestPrimaryFencesNewerEpoch(t *testing.T) {
	v, srv := startReplServer(t, Options{})
	before := v.Snapshot().Version()

	req, err := http.NewRequest(http.MethodPost, srv.URL()+"/v1/apply", strings.NewReader("+link(q,r)."))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Ivm-Epoch", "7") // the cluster moved on without us
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-primary apply status %d, want 409", resp.StatusCode)
	}
	if got := v.Snapshot().Version(); got != before {
		t.Fatalf("fenced apply still committed: version %d -> %d", before, got)
	}
	m, err := client.New(srv.URL(), nil).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m["replica_fenced_total"] < 1 {
		t.Fatalf("replica_fenced_total = %d, want >= 1", m["replica_fenced_total"])
	}
}

// TestMinVersionReads: a read bounded by min_version waits for the
// version to publish, and times out with 412 + Leader-URL when it
// never does.
func TestMinVersionReads(t *testing.T) {
	const leader = "http://leader.example:7199"
	v, srv := startReplServer(t, Options{LeaderURL: leader, MinVersionWait: 100 * time.Millisecond})
	c := client.New(srv.URL(), nil)
	ctx := context.Background()

	cs, err := v.Apply(ivm.NewUpdate().Insert("link", "m1", "m2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RowsOpts(ctx, "link", client.ReadOptions{MinVersion: cs.Version()}); err != nil {
		t.Fatalf("read at published min_version failed: %v", err)
	}

	// One version ahead of anything published: the wait must lapse into
	// a 412 that names the leader.
	_, err = c.RowsOpts(ctx, "link", client.ReadOptions{MinVersion: cs.Version() + 1})
	if err == nil {
		t.Fatal("read above the published version succeeded")
	}
	if got := client.StatusOf(err); got != http.StatusPreconditionFailed {
		t.Fatalf("status %d, want 412", got)
	}
	if got := client.LeaderURLOf(err); got != leader {
		t.Fatalf("Leader-URL %q, want %q", got, leader)
	}

	// A waiter that starts early must be released by the publish itself.
	done := make(chan error, 1)
	go func() {
		_, err := c.RowsOpts(ctx, "link", client.ReadOptions{MinVersion: cs.Version() + 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := v.Apply(ivm.NewUpdate().Insert("link", "m3", "m4")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter not released by publish: %v", err)
	}
}

// TestSubscribeResumeAfterEviction: a subscriber that stalls past its
// buffer is evicted server-side; the client must reconnect with its
// resume point and the hub ring must replay every missed event — the
// consumer sees every committed version exactly once, in order.
func TestSubscribeResumeAfterEviction(t *testing.T) {
	v, srv := startReplServer(t, Options{})
	c := client.New(srv.URL(), nil)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Server-side buffer of 1: not reading while commits land evicts us.
	sub, err := c.Subscribe(ctx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var want []uint64
	for i := 0; i < 30; i++ {
		cs, err := v.Apply(ivm.NewUpdate().
			Insert("link", fmt.Sprintf("e%d", i), fmt.Sprintf("f%d", i)).
			Insert("link", fmt.Sprintf("f%d", i), fmt.Sprintf("g%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, cs.Version())
	}

	// Drain: with resume, every committed version arrives despite the
	// eviction(s) that the stall above must have caused.
	got := make(map[uint64]bool)
	var last uint64
	for len(got) < len(want) {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("stream closed early: err=%v got=%d/%d", sub.Err(), len(got), len(want))
			}
			if ev.Hello {
				continue
			}
			if ev.Version <= last {
				t.Fatalf("version %d after %d: duplicates or reordering", ev.Version, last)
			}
			last = ev.Version
			got[ev.Version] = true
		case <-ctx.Done():
			t.Fatalf("timed out with %d/%d events", len(got), len(want))
		}
	}
	for _, wv := range want {
		if !got[wv] {
			t.Fatalf("version %d never delivered", wv)
		}
	}

	// The hub must have recorded at least one eviction and one resume.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server_sub_evicted_total"] < 1 {
		t.Fatalf("server_sub_evicted_total = %d, want >= 1 (the stall must evict)", m["server_sub_evicted_total"])
	}
	if m["server_sub_resumes_total"] < 1 {
		t.Fatalf("server_sub_resumes_total = %d, want >= 1", m["server_sub_resumes_total"])
	}
}

package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"ivm"
	"ivm/internal/metrics"
)

// session pins one snapshot version for repeatable reads across
// requests: every read issued with the session's id is served from the
// same ivm.Snapshot, no matter how many updates commit in between.
// Snapshots hold only immutable version data, so a pinned session costs
// nothing beyond keeping that version reachable.
type session struct {
	id      string
	snap    *ivm.Snapshot
	expires time.Time
}

// sessionTable tracks live sessions. Expiry is enforced on access
// (expired entries are rejected and dropped) and by a background sweep,
// so an expired session's pinned snapshot becomes collectible even when
// no new sessions are created — without the sweep, the last burst of
// sessions before a quiet period would pin their versions forever.
type sessionTable struct {
	ttl time.Duration

	mu sync.Mutex
	m  map[string]*session

	// sweep goroutine lifecycle (startSweeper/stopSweeper).
	stop chan struct{}
	done chan struct{}

	gActive  *metrics.Gauge
	cCreated *metrics.Counter
	cExpired *metrics.Counter
}

func newSessionTable(ttl time.Duration, reg *metrics.Registry) *sessionTable {
	return &sessionTable{
		ttl:      ttl,
		m:        make(map[string]*session),
		gActive:  reg.Gauge("server_sessions_active"),
		cCreated: reg.Counter("server_sessions_created_total"),
		cExpired: reg.Counter("server_sessions_expired_total"),
	}
}

// create pins the current version of v under a fresh random id.
func (t *sessionTable) create(v *ivm.Views) *session {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	s := &session{id: hex.EncodeToString(buf[:]), snap: v.Snapshot()}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	s.expires = time.Now().Add(t.ttl)
	t.m[s.id] = s
	t.gActive.Add(1)
	t.cCreated.Inc()
	return s
}

// get returns the live session for id, refreshing its expiry clock
// (reads keep a session alive).
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	if !ok {
		return nil, false
	}
	now := time.Now()
	if now.After(s.expires) {
		delete(t.m, id)
		t.gActive.Add(-1)
		t.cExpired.Inc()
		return nil, false
	}
	s.expires = now.Add(t.ttl)
	return s, true
}

// drop removes a session; reports whether it existed (and was live).
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[id]; !ok {
		return false
	}
	delete(t.m, id)
	t.gActive.Add(-1)
	return true
}

func (t *sessionTable) sweepLocked(now time.Time) {
	for id, s := range t.m {
		if now.After(s.expires) {
			delete(t.m, id)
			t.gActive.Add(-1)
			t.cExpired.Inc()
		}
	}
}

// startSweeper launches the background expiry sweep. The interval is a
// quarter of the TTL, clamped to [100ms, 1min]: fine enough that an
// expired session's snapshot is released promptly, coarse enough to be
// free at idle.
func (t *sessionTable) startSweeper() {
	if t.stop != nil {
		return
	}
	interval := t.ttl / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				t.mu.Lock()
				t.sweepLocked(now)
				t.mu.Unlock()
			}
		}
	}(t.stop, t.done)
}

// stopSweeper stops the background sweep and waits for it to exit.
// Safe to call without a prior startSweeper, and idempotent.
func (t *sessionTable) stopSweeper() {
	if t.stop == nil {
		return
	}
	close(t.stop)
	<-t.done
	t.stop, t.done = nil, nil
}

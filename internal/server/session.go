package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"ivm"
	"ivm/internal/metrics"
)

// session pins one snapshot version for repeatable reads across
// requests: every read issued with the session's id is served from the
// same ivm.Snapshot, no matter how many updates commit in between.
// Snapshots hold only immutable version data, so a pinned session costs
// nothing beyond keeping that version reachable.
type session struct {
	id      string
	snap    *ivm.Snapshot
	expires time.Time
}

// sessionTable tracks live sessions. Expiry is lazy: expired entries
// are rejected on access and swept on every create, so no background
// goroutine is needed.
type sessionTable struct {
	ttl time.Duration

	mu sync.Mutex
	m  map[string]*session

	gActive  *metrics.Gauge
	cCreated *metrics.Counter
	cExpired *metrics.Counter
}

func newSessionTable(ttl time.Duration, reg *metrics.Registry) *sessionTable {
	return &sessionTable{
		ttl:      ttl,
		m:        make(map[string]*session),
		gActive:  reg.Gauge("server_sessions_active"),
		cCreated: reg.Counter("server_sessions_created_total"),
		cExpired: reg.Counter("server_sessions_expired_total"),
	}
}

// create pins the current version of v under a fresh random id.
func (t *sessionTable) create(v *ivm.Views) *session {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	s := &session{id: hex.EncodeToString(buf[:]), snap: v.Snapshot()}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	s.expires = time.Now().Add(t.ttl)
	t.m[s.id] = s
	t.gActive.Add(1)
	t.cCreated.Inc()
	return s
}

// get returns the live session for id, refreshing its expiry clock
// (reads keep a session alive).
func (t *sessionTable) get(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[id]
	if !ok {
		return nil, false
	}
	now := time.Now()
	if now.After(s.expires) {
		delete(t.m, id)
		t.gActive.Add(-1)
		t.cExpired.Inc()
		return nil, false
	}
	s.expires = now.Add(t.ttl)
	return s, true
}

// drop removes a session; reports whether it existed (and was live).
func (t *sessionTable) drop(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[id]; !ok {
		return false
	}
	delete(t.m, id)
	t.gActive.Add(-1)
	return true
}

func (t *sessionTable) sweepLocked(now time.Time) {
	for id, s := range t.m {
		if now.After(s.expires) {
			delete(t.m, id)
			t.gActive.Add(-1)
			t.cExpired.Inc()
		}
	}
}

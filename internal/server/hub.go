// Package server is the network serving layer over ivm.Views: an
// HTTP/JSON (and line-protocol) front end exposing apply, lock-free
// reads, snapshot-pinned repeatable-read sessions, and a streaming
// change-subscription endpoint that fans committed deltas out to N
// subscribers with per-client bounded buffers and slow-consumer
// eviction. See DESIGN.md §11.
package server

import (
	"sync"
	"sync/atomic"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
)

// Hub fans committed change sets out to subscribers. It drains
// ivm.Views.OnCommit — one event per committed maintenance batch, in
// commit order — and delivers each event to every subscriber whose
// predicate filter matches, over a per-subscriber bounded channel.
//
// Backpressure policy: the commit path never blocks on a consumer. A
// subscriber whose buffer is full when an event arrives is evicted —
// removed from the hub and its channel closed — rather than silently
// dropping that one event, because a gap in a delta stream is worse
// than a clean break: the consumer knows it must resync (re-read and
// resubscribe) instead of acting on state it silently missed. Fast
// consumers observe every matching ChangeSet version in commit order.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool

	gActive    *metrics.Gauge
	cEvents    *metrics.Counter
	cDelivered *metrics.Counter
	cEvicted   *metrics.Counter
}

// NewHub builds a hub over v, registering its commit hook. Backpressure
// counters land in reg: server_subscribers_active (gauge),
// server_sub_events_total (committed events fanned out),
// server_sub_delivered_total (per-subscriber deliveries), and
// server_sub_evicted_total (slow consumers dropped).
func NewHub(v *ivm.Views, reg *metrics.Registry) *Hub {
	h := &Hub{
		subs:       make(map[*Subscriber]struct{}),
		gActive:    reg.Gauge("server_subscribers_active"),
		cEvents:    reg.Counter("server_sub_events_total"),
		cDelivered: reg.Counter("server_sub_delivered_total"),
		cEvicted:   reg.Counter("server_sub_evicted_total"),
	}
	v.OnCommit(h.publish)
	return h
}

// Subscriber is one consumer of the hub's event stream. Events() yields
// matching events in commit order until Close is called, the hub shuts
// down, or the subscriber falls behind and is evicted (Evicted then
// reports true); in every case the channel is closed.
type Subscriber struct {
	hub     *Hub
	preds   map[string]bool // nil = every predicate
	ch      chan client.Event
	evicted atomic.Bool
}

// Subscribe registers a consumer for the given predicates (none =
// every predicate) with a buffer of cap events. Returns nil if the hub
// has shut down.
func (h *Hub) Subscribe(preds []string, buffer int) *Subscriber {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscriber{hub: h, ch: make(chan client.Event, buffer)}
	if len(preds) > 0 {
		s.preds = make(map[string]bool, len(preds))
		for _, p := range preds {
			s.preds[p] = true
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.subs[s] = struct{}{}
	h.gActive.Add(1)
	return s
}

// Events returns the subscriber's delivery channel.
func (s *Subscriber) Events() <-chan client.Event { return s.ch }

// Evicted reports whether the hub dropped this subscriber for falling
// behind its buffer (meaningful once Events() is closed).
func (s *Subscriber) Evicted() bool { return s.evicted.Load() }

// Close unsubscribes and closes the event channel. Safe to call
// concurrently with delivery and after eviction (then a no-op).
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return // already evicted or closed
	}
	delete(h.subs, s)
	h.gActive.Add(-1)
	close(s.ch)
}

// CloseAll shuts the hub down: every subscriber's channel is closed and
// later Subscribe calls return nil. Commit events arriving afterwards
// are discarded. Used by graceful shutdown, before the HTTP server
// drains, so streaming handlers unblock.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		h.gActive.Add(-1)
		close(s.ch)
	}
}

// publish runs on the maintainer goroutine for every committed batch.
// It holds the hub lock across the (non-blocking) deliveries so a
// concurrent Close never closes a channel mid-send.
func (h *Hub) publish(cs *ivm.ChangeSet) {
	deltas := DeltasFromChangeSet(cs)
	if len(deltas) == 0 {
		return // nothing visible changed; subscribers see no event
	}
	ev := client.Event{Version: cs.Version(), Deltas: deltas}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.cEvents.Inc()
	for s := range h.subs {
		sev := ev
		if s.preds != nil {
			var match []client.Delta
			for _, d := range deltas {
				if s.preds[d.Pred] {
					match = append(match, d)
				}
			}
			if len(match) == 0 {
				continue
			}
			sev.Deltas = match
		}
		select {
		case s.ch <- sev:
			h.cDelivered.Inc()
		default:
			// Full buffer: the consumer is slower than the commit rate.
			// Evict it — a closed stream it can detect beats a silent gap.
			delete(h.subs, s)
			h.gActive.Add(-1)
			h.cEvicted.Inc()
			s.evicted.Store(true)
			close(s.ch)
		}
	}
}

// DeltasFromChangeSet renders a change set's per-predicate deltas into
// wire form (sorted by predicate; empty change sets yield nil).
func DeltasFromChangeSet(cs *ivm.ChangeSet) []client.Delta {
	if cs == nil {
		return nil
	}
	var out []client.Delta
	for _, pred := range cs.Preds() {
		d := client.Delta{
			Pred:     pred,
			Inserted: wireRows(cs.Inserted(pred)),
			Deleted:  wireRows(cs.Deleted(pred)),
		}
		if len(d.Inserted) == 0 && len(d.Deleted) == 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

// wireRows renders rows for the wire: one surface-syntax string per
// value.
func wireRows(rows []ivm.Row) []client.Row {
	if len(rows) == 0 {
		return nil
	}
	out := make([]client.Row, len(rows))
	for i, r := range rows {
		out[i] = client.Row{Tuple: wireTuple(r.Tuple), Count: r.Count}
	}
	return out
}

func wireTuple(t ivm.Tuple) []string {
	vals := make([]string, len(t))
	for i, v := range t {
		vals[i] = v.String()
	}
	return vals
}

// Package server is the network serving layer over ivm.Views: an
// HTTP/JSON (and line-protocol) front end exposing apply, lock-free
// reads, snapshot-pinned repeatable-read sessions, and a streaming
// change-subscription endpoint that fans committed deltas out to N
// subscribers with per-client bounded buffers and slow-consumer
// eviction. See DESIGN.md §11.
package server

import (
	"sync"
	"sync/atomic"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
	"ivm/internal/sched"
)

// Hub fans committed change sets out to subscribers. It drains
// ivm.Views.OnCommit — one event per committed maintenance batch, in
// commit order — and delivers each event to every subscriber whose
// predicate filter matches, over a per-subscriber bounded channel.
//
// Backpressure policy: the commit path never blocks on a consumer. A
// subscriber whose buffer is full when an event arrives is evicted —
// removed from the hub and its channel closed — rather than silently
// dropping that one event, because a gap in a delta stream is worse
// than a clean break: the consumer knows it must resync (re-read and
// resubscribe) instead of acting on state it silently missed. Fast
// consumers observe every matching ChangeSet version in commit order.
type Hub struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
	// ring retains recent published events (guarded by mu) so a consumer
	// that reconnects with ?from=<last seen version> can be replayed the
	// events it missed instead of forced to resync.
	ring *sched.Window[client.Event]

	gActive    *metrics.Gauge
	cEvents    *metrics.Counter
	cDelivered *metrics.Counter
	cEvicted   *metrics.Counter
	cResumes   *metrics.Counter
	cResyncs   *metrics.Counter
}

// NewHub builds a hub over v, registering its commit hook. ringCap
// bounds the resume replay ring. Backpressure counters land in reg:
// server_subscribers_active (gauge), server_sub_events_total (committed
// events fanned out), server_sub_delivered_total (per-subscriber
// deliveries), server_sub_evicted_total (slow consumers dropped),
// server_sub_resumes_total (?from= reconnects replayed gaplessly), and
// server_sub_resyncs_total (reconnects refused for having aged out).
func NewHub(v *ivm.Views, reg *metrics.Registry, ringCap int) *Hub {
	h := &Hub{
		subs:       make(map[*Subscriber]struct{}),
		ring:       sched.NewWindow[client.Event](ringCap),
		gActive:    reg.Gauge("server_subscribers_active"),
		cEvents:    reg.Counter("server_sub_events_total"),
		cDelivered: reg.Counter("server_sub_delivered_total"),
		cEvicted:   reg.Counter("server_sub_evicted_total"),
		cResumes:   reg.Counter("server_sub_resumes_total"),
		cResyncs:   reg.Counter("server_sub_resyncs_total"),
	}
	// Commit hook before seed: an event landing in between establishes
	// the ring's bounds itself and the seed no-ops (the reverse order
	// could claim coverage over an event the ring never saw).
	v.OnCommit(h.publish)
	h.ring.Seed(v.Snapshot().Version())
	return h
}

// Subscriber is one consumer of the hub's event stream. Events() yields
// matching events in commit order until Close is called, the hub shuts
// down, or the subscriber falls behind and is evicted (Evicted then
// reports true); in every case the channel is closed.
type Subscriber struct {
	hub     *Hub
	preds   map[string]bool // nil = every predicate
	ch      chan client.Event
	evicted atomic.Bool
}

// Subscribe registers a consumer for the given predicates (none =
// every predicate) with a buffer of cap events. Returns nil if the hub
// has shut down.
func (h *Hub) Subscribe(preds []string, buffer int) *Subscriber {
	sub, _, _ := h.subscribe(preds, buffer, 0, false)
	return sub
}

// SubscribeFrom registers a consumer resuming after version from. The
// returned backlog holds every retained matching event after from, in
// commit order, captured atomically with registration — the caller
// delivers the backlog first and then drains the live channel, and the
// resumed stream is gapless (live events all carry versions above the
// backlog's tail). The backlog is returned as a slice rather than
// pre-loaded into the buffer so a resume can bridge gaps far larger
// than the consumer's buffer: the ring's retention is the only limit.
// resync reports that the gap could not be bridged — events after from
// have aged out of the ring; the caller must tell the consumer to
// re-read state and subscribe afresh. A nil subscriber with resync
// false means the hub has shut down.
func (h *Hub) SubscribeFrom(preds []string, buffer int, from uint64) (sub *Subscriber, backlog []client.Event, resync bool) {
	return h.subscribe(preds, buffer, from, true)
}

func (h *Hub) subscribe(preds []string, buffer int, from uint64, resume bool) (*Subscriber, []client.Event, bool) {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscriber{hub: h, ch: make(chan client.Event, buffer)}
	if len(preds) > 0 {
		s.preds = make(map[string]bool, len(preds))
		for _, p := range preds {
			s.preds[p] = true
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, false
	}
	var backlog []client.Event
	if resume {
		ca, _, ok := h.ring.Bounds()
		if !ok || from < ca {
			// The resume point predates the ring's coverage: a replay
			// could silently skip events, which is exactly what resume
			// exists to prevent.
			h.cResyncs.Inc()
			return nil, nil, true
		}
		for after := from; ; {
			e, ok := h.ring.Next(after)
			if !ok {
				break
			}
			after = e.Version
			if ev, match := filterEvent(e.Item, s.preds); match {
				backlog = append(backlog, ev)
			}
		}
		h.cResumes.Inc()
	}
	h.subs[s] = struct{}{}
	h.gActive.Add(1)
	return s, backlog, false
}

// filterEvent narrows an event to the subscriber's predicates; match is
// false when nothing remains.
func filterEvent(ev client.Event, preds map[string]bool) (client.Event, bool) {
	if preds == nil {
		return ev, true
	}
	var keep []client.Delta
	for _, d := range ev.Deltas {
		if preds[d.Pred] {
			keep = append(keep, d)
		}
	}
	if len(keep) == 0 {
		return ev, false
	}
	ev.Deltas = keep
	return ev, true
}

// Events returns the subscriber's delivery channel.
func (s *Subscriber) Events() <-chan client.Event { return s.ch }

// Evicted reports whether the hub dropped this subscriber for falling
// behind its buffer (meaningful once Events() is closed).
func (s *Subscriber) Evicted() bool { return s.evicted.Load() }

// Close unsubscribes and closes the event channel. Safe to call
// concurrently with delivery and after eviction (then a no-op).
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return // already evicted or closed
	}
	delete(h.subs, s)
	h.gActive.Add(-1)
	close(s.ch)
}

// CloseAll shuts the hub down: every subscriber's channel is closed and
// later Subscribe calls return nil. Commit events arriving afterwards
// are discarded. Used by graceful shutdown, before the HTTP server
// drains, so streaming handlers unblock.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		h.gActive.Add(-1)
		close(s.ch)
	}
}

// publish runs on the maintainer goroutine for every committed batch.
// It holds the hub lock across the (non-blocking) deliveries so a
// concurrent Close never closes a channel mid-send.
func (h *Hub) publish(cs *ivm.ChangeSet) {
	deltas := DeltasFromChangeSet(cs)
	if len(deltas) == 0 {
		return // nothing visible changed; subscribers see no event
	}
	ev := client.Event{Version: cs.Version(), Deltas: deltas}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.cEvents.Inc()
	h.ring.Append(ev.Version, ev)
	for s := range h.subs {
		sev, match := filterEvent(ev, s.preds)
		if !match {
			continue
		}
		select {
		case s.ch <- sev:
			h.cDelivered.Inc()
		default:
			// Full buffer: the consumer is slower than the commit rate.
			// Evict it — a closed stream it can detect beats a silent gap.
			delete(h.subs, s)
			h.gActive.Add(-1)
			h.cEvicted.Inc()
			s.evicted.Store(true)
			close(s.ch)
		}
	}
}

// DeltasFromChangeSet renders a change set's per-predicate deltas into
// wire form (sorted by predicate; empty change sets yield nil).
func DeltasFromChangeSet(cs *ivm.ChangeSet) []client.Delta {
	if cs == nil {
		return nil
	}
	var out []client.Delta
	for _, pred := range cs.Preds() {
		d := client.Delta{
			Pred:     pred,
			Inserted: wireRows(cs.Inserted(pred)),
			Deleted:  wireRows(cs.Deleted(pred)),
		}
		if len(d.Inserted) == 0 && len(d.Deleted) == 0 {
			continue
		}
		out = append(out, d)
	}
	return out
}

// wireRows renders rows for the wire: one surface-syntax string per
// value.
func wireRows(rows []ivm.Row) []client.Row {
	if len(rows) == 0 {
		return nil
	}
	out := make([]client.Row, len(rows))
	for i, r := range rows {
		out[i] = client.Row{Tuple: wireTuple(r.Tuple), Count: r.Count}
	}
	return out
}

func wireTuple(t ivm.Tuple) []string {
	vals := make([]string, len(t))
	for i, v := range t {
		vals[i] = v.String()
	}
	return vals
}

package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"

	"ivm"
	"ivm/client"
)

// The line protocol: a minimal text protocol for clients that want the
// engine without HTTP machinery (telnet/netcat debuggable, one request
// per line, one response per line):
//
//	apply +link(a,b). -link(b,c).   -> ok {"version":7,...}
//	apply @key1 +link(a,b).         -> ok {"version":7,...} — idempotent
//	                                   under key1; a retry answers
//	                                   {"deduped":true,...}
//	query hop(a,X)                  -> ok {"version":7,"results":[...]}
//	rows hop                        -> ok {"version":7,"pred":"hop","rows":[...]}
//	count hop(a,c)                  -> ok {"version":7,"count":2,"has":true}
//	has hop(a,c)                    -> ok {"version":7,"count":2,"has":true}
//	version                         -> ok {"version":7}
//	ping                            -> ok {}
//	sub [pred ...]                  -> ok {"version":7,"hello":true}, then
//	                                   event {...} lines until the next
//	                                   input line, eviction (bye evicted),
//	                                   or shutdown (bye closed)
//	quit                            -> bye
//
// Errors answer `err <message>`. Responses after the status word are
// the same JSON documents the HTTP endpoints serve, so a line client
// shares the wire types. Sessions are HTTP-only.
func (s *Server) acceptLineConns(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.lineConns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveLineConn(conn)
	}
}

func (s *Server) serveLineConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.lineConns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	s.opts.Logf("ivmd: line conn %s connected", conn.RemoteAddr())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), int(s.opts.MaxBodyBytes))
	out := bufio.NewWriter(conn)
	reply := func(status string, v any) bool {
		out.WriteString(status)
		if v != nil {
			out.WriteByte(' ')
			data, err := json.Marshal(v)
			if err != nil {
				return false
			}
			out.Write(data)
		}
		out.WriteByte('\n')
		return out.Flush() == nil
	}
	fail := func(format string, args ...any) bool {
		out.WriteString("err ")
		fmt.Fprintf(out, format, args...)
		out.WriteByte('\n')
		return out.Flush() == nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var ok bool
		switch cmd {
		case "ping":
			ok = reply("ok", struct{}{})
		case "version":
			ok = reply("ok", map[string]uint64{"version": s.v.Snapshot().Version()})
		case "apply":
			var key string
			if strings.HasPrefix(rest, "@") {
				key, rest, _ = strings.Cut(rest[1:], " ")
				rest = strings.TrimSpace(rest)
				if key == "" {
					ok = fail("apply @ needs a key before the script")
					break
				}
				if len(key) > ivm.MaxIdempotencyKeyLen {
					ok = fail("apply: idempotency key of %d bytes exceeds the %d-byte limit", len(key), ivm.MaxIdempotencyKeyLen)
					break
				}
			}
			if rest == "" {
				ok = fail("apply needs a delta script")
				break
			}
			if leader := s.LeaderURL(); leader != "" {
				// Follower: forward to the leader, key and all, and relay
				// its ack — line clients get the same transparent
				// forwarding as HTTP ones.
				if !s.beginApply() {
					ok = fail("server is shutting down")
					break
				}
				res, err := s.forwardApplyLine(leader, key, rest)
				s.applyWG.Done()
				if err != nil {
					ok = fail("%v", err)
					break
				}
				if res.Deduped {
					s.cDedups.Inc()
				}
				ok = reply("ok", res)
				break
			}
			cs, deduped, err := s.v.ApplyScriptIdempotent(key, rest)
			if err != nil {
				ok = fail("apply: %v", err)
				break
			}
			if deduped {
				s.cDedups.Inc()
			}
			ok = reply("ok", client.ApplyResult{Version: cs.Version(), Deltas: DeltasFromChangeSet(cs), Deduped: deduped})
		case "query":
			if rest == "" {
				ok = fail("query needs a goal")
				break
			}
			snap := s.v.Snapshot()
			results, err := snap.Query(rest)
			if err != nil {
				ok = fail("query: %v", err)
				break
			}
			resp := client.QueryResponse{Version: snap.Version(), Results: []client.QueryResult{}}
			for _, qr := range results {
				r := client.QueryResult{Tuple: wireTuple(qr.Row.Tuple), Count: qr.Row.Count}
				if len(qr.Bindings) > 0 {
					r.Bindings = make(map[string]string, len(qr.Bindings))
					for name, val := range qr.Bindings {
						r.Bindings[name] = val.String()
					}
				}
				resp.Results = append(resp.Results, r)
			}
			ok = reply("ok", resp)
		case "rows":
			if rest == "" {
				ok = fail("rows needs a predicate")
				break
			}
			snap := s.v.Snapshot()
			ok = reply("ok", client.RowsResponse{Version: snap.Version(), Pred: rest, Rows: wireRows(snap.Rows(rest))})
		case "count", "has":
			pred, vals, err := groundGoal(rest)
			if err != nil {
				ok = fail("%s: %v", cmd, err)
				break
			}
			snap := s.v.Snapshot()
			n := snap.Count(pred, vals...)
			ok = reply("ok", client.CountResponse{Version: snap.Version(), Count: n, Has: n > 0})
		case "sub":
			s.serveLineSub(conn, sc, out, strings.Fields(rest))
			return
		case "quit":
			reply("bye", nil)
			return
		default:
			ok = fail("unknown command %q", cmd)
		}
		if !ok {
			return
		}
	}
}

// serveLineSub switches the connection into streaming mode: events go
// out as `event {json}` lines until the client sends another line (or
// disconnects), the hub evicts the subscriber, or the server shuts
// down.
func (s *Server) serveLineSub(conn net.Conn, sc *bufio.Scanner, out *bufio.Writer, preds []string) {
	sub := s.hub.Subscribe(preds, s.opts.SubscriberBuffer)
	if sub == nil {
		out.WriteString("err server is shutting down\n")
		out.Flush()
		return
	}
	defer sub.Close()
	hello, _ := json.Marshal(client.Event{Version: s.v.Snapshot().Version(), Hello: true})
	out.WriteString("ok ")
	out.Write(hello)
	out.WriteByte('\n')
	if out.Flush() != nil {
		return
	}
	// Any further input (or EOF) ends the subscription.
	done := make(chan struct{})
	go func() {
		sc.Scan()
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		case ev, ok := <-sub.Events():
			if !ok {
				if sub.Evicted() {
					out.WriteString("bye evicted\n")
				} else {
					out.WriteString("bye closed\n")
				}
				out.Flush()
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			out.WriteString("event ")
			out.Write(data)
			out.WriteByte('\n')
			if out.Flush() != nil {
				return
			}
		}
	}
}

package server

import (
	"fmt"
	"sync"
	"testing"

	"ivm"
	"ivm/client"
	"ivm/internal/metrics"
)

func buildTestViews(t *testing.T) *ivm.Views {
	t.Helper()
	db := ivm.NewDatabase()
	db.MustLoad(`link(a,b). link(b,c).`)
	v, err := db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHubBackpressure is the subscriber-backpressure contract: a slow
// consumer (full buffer) is evicted with a metrics increment while a
// fast consumer observes every committed ChangeSet version, in order.
func TestHubBackpressure(t *testing.T) {
	v := buildTestViews(t)
	reg := metrics.NewRegistry()
	h := NewHub(v, reg, 256)

	fast := h.Subscribe(nil, 1024)
	slow := h.Subscribe(nil, 1)

	var mu sync.Mutex
	var fastSeen []client.Event
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range fast.Events() {
			mu.Lock()
			fastSeen = append(fastSeen, ev)
			mu.Unlock()
		}
	}()
	// The slow subscriber never reads: its 1-slot buffer fills on the
	// first commit and the second commit must evict it.

	const updates = 40
	var want []uint64
	for i := 0; i < updates; i++ {
		cs, err := v.Apply(ivm.NewUpdate().
			Insert("link", fmt.Sprintf("s%d", i), fmt.Sprintf("m%d", i)).
			Insert("link", fmt.Sprintf("m%d", i), fmt.Sprintf("d%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if !cs.Empty() {
			want = append(want, cs.Version())
		}
	}
	if len(want) < updates {
		t.Fatalf("expected every update to change views, got %d/%d", len(want), updates)
	}

	// Commit handlers run before Apply returns, so eviction has already
	// happened; the slow channel must be closed with the evicted flag.
	if _, open := <-slow.Events(); open {
		// first buffered event is fine; channel must then be closed
		if _, open := <-slow.Events(); open {
			t.Fatal("slow subscriber still open after overflowing its buffer")
		}
	}
	if !slow.Evicted() {
		t.Fatal("slow subscriber not marked evicted")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("server_sub_evicted_total"); got != 1 {
		t.Fatalf("server_sub_evicted_total = %d, want 1", got)
	}
	if got := snap.Gauge("server_subscribers_active"); got != 1 {
		t.Fatalf("server_subscribers_active = %d, want 1 (fast only)", got)
	}

	fast.Close()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(fastSeen) != len(want) {
		t.Fatalf("fast subscriber saw %d events, want %d", len(fastSeen), len(want))
	}
	for i, ev := range fastSeen {
		if ev.Version != want[i] {
			t.Fatalf("event %d: version %d, want %d (order must match commit order)", i, ev.Version, want[i])
		}
		if len(ev.Deltas) == 0 {
			t.Fatalf("event %d: empty deltas", i)
		}
	}
}

// TestHubConcurrentAppliesDeliverInOrder hammers the hub from many
// Apply goroutines and checks a fast subscriber observes nondecreasing
// versions with every event matching a published ChangeSet version.
func TestHubConcurrentAppliesDeliverInOrder(t *testing.T) {
	v := buildTestViews(t)
	reg := metrics.NewRegistry()
	h := NewHub(v, reg, 256)
	sub := h.Subscribe([]string{"hop"}, 4096)

	var mu sync.Mutex
	acked := make(map[uint64]bool)
	var wg sync.WaitGroup
	const writers, rounds = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				mid := fmt.Sprintf("w%d_%d", w, i)
				cs, err := v.Apply(ivm.NewUpdate().
					Insert("link", "s_"+mid, mid).Insert("link", mid, "d_"+mid))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acked[cs.Version()] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	sub.Close()

	var last uint64
	n := 0
	for ev := range sub.Events() {
		if ev.Version < last {
			t.Fatalf("version went backwards: %d after %d", ev.Version, last)
		}
		last = ev.Version
		if !acked[ev.Version] {
			t.Fatalf("event version %d was never returned by an Apply", ev.Version)
		}
		n++
	}
	if n == 0 {
		t.Fatal("subscriber saw no events")
	}
	if sub.Evicted() {
		t.Fatal("fast subscriber was evicted")
	}
}

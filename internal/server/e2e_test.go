package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ivm"
	"ivm/client"
)

// TestE2EServedTraffic is the acceptance gauntlet: 50 concurrent
// clients mixing applies, snapshot-pinned reads, and subscriptions
// against a store-bound ivmd; every subscriber delta must match a
// published ChangeSet version, session reads must be repeatable, and a
// graceful shutdown under late apply traffic must lose no durably-acked
// apply (verified by reopening the store).
func TestE2EServedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e gauntlet skipped in -short")
	}
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	}, ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(v, Options{OwnViews: true, SubscriberBuffer: 8192})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c := client.New(srv.URL(), nil)
	ctx := context.Background()

	const (
		appliers    = 20
		readers     = 15
		subscribers = 15
		rounds      = 8
	)

	type ack struct {
		version  uint64
		src, dst string
	}
	var ackMu sync.Mutex
	var acked []ack

	var wg sync.WaitGroup

	// Appliers: unique link pairs, so every acked apply derives a unique
	// hop tuple whose survival we can check after recovery.
	for a := 0; a < appliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				src := fmt.Sprintf("s%d_%d", a, i)
				mid := fmt.Sprintf("m%d_%d", a, i)
				dst := fmt.Sprintf("d%d_%d", a, i)
				res, err := c.Apply(ctx, fmt.Sprintf("+link(%s,%s). +link(%s,%s).", src, mid, mid, dst))
				if err != nil {
					t.Errorf("applier %d: %v", a, err)
					return
				}
				ackMu.Lock()
				acked = append(acked, ack{res.Version, src, dst})
				ackMu.Unlock()
			}
		}(a)
	}

	// Session readers: repeatable reads — two reads through one session
	// must agree byte-for-byte and report the pinned version, and
	// session versions must never move backwards across sessions.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < rounds; i++ {
				sess, err := c.NewSession(ctx)
				if err != nil {
					t.Errorf("reader %d: session: %v", r, err)
					return
				}
				if sess.Version < lastVersion {
					t.Errorf("reader %d: session version went backwards: %d after %d", r, sess.Version, lastVersion)
				}
				lastVersion = sess.Version
				first, err := sess.Rows(ctx, "hop")
				if err != nil {
					t.Errorf("reader %d: rows: %v", r, err)
					return
				}
				second, err := sess.Rows(ctx, "hop")
				if err != nil {
					t.Errorf("reader %d: rows: %v", r, err)
					return
				}
				if first.Version != sess.Version || second.Version != sess.Version {
					t.Errorf("reader %d: session reads at %d/%d, pinned %d", r, first.Version, second.Version, sess.Version)
				}
				if len(first.Rows) != len(second.Rows) {
					t.Errorf("reader %d: repeatable read changed size: %d then %d rows", r, len(first.Rows), len(second.Rows))
				}
				sess.Close(ctx)
			}
		}(r)
	}

	// Subscribers: collect every event; verified against acked versions
	// after the applies settle.
	type subResult struct {
		versions []uint64
		err      error
	}
	subResults := make([]subResult, subscribers)
	subCtx, cancelSubs := context.WithCancel(ctx)
	var subWg sync.WaitGroup
	for sI := 0; sI < subscribers; sI++ {
		sub, err := c.Subscribe(subCtx, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		subWg.Add(1)
		go func(sI int, sub *client.Subscription) {
			defer subWg.Done()
			var last uint64
			for ev := range sub.Events() {
				if ev.Hello {
					continue
				}
				if ev.Version < last {
					subResults[sI].err = fmt.Errorf("versions out of order: %d after %d", ev.Version, last)
					return
				}
				last = ev.Version
				subResults[sI].versions = append(subResults[sI].versions, ev.Version)
			}
			subResults[sI].err = sub.Err()
		}(sI, sub)
	}

	wg.Wait() // all applies acked, all reader sessions done

	// Late appliers keep firing while the server shuts down: whatever
	// the server acked must survive; whatever it refused must not be
	// required. Tuples are tagged so stray events past the collected
	// ack set can be attributed.
	var lateWg sync.WaitGroup
	stopLate := make(chan struct{})
	for a := 0; a < 4; a++ {
		lateWg.Add(1)
		go func(a int) {
			defer lateWg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLate:
					return
				default:
				}
				src := fmt.Sprintf("late_s%d_%d", a, i)
				mid := fmt.Sprintf("late_m%d_%d", a, i)
				dst := fmt.Sprintf("late_d%d_%d", a, i)
				res, err := c.Apply(ctx, fmt.Sprintf("+link(%s,%s). +link(%s,%s).", src, mid, mid, dst))
				if err != nil {
					return // shutdown reached this client
				}
				ackMu.Lock()
				acked = append(acked, ack{res.Version, src, dst})
				ackMu.Unlock()
			}
		}(a)
	}
	time.Sleep(50 * time.Millisecond) // let late traffic overlap the drain

	shutdownCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	close(stopLate)
	lateWg.Wait()
	cancelSubs()
	subWg.Wait()

	// Every subscriber event must match a published ChangeSet version.
	// Late-apply events may outrun the ack bookkeeping when the HTTP
	// response races the event stream, so versions beyond the last
	// pre-shutdown ack are only required to be monotonic (checked in
	// the consumer loop).
	ackMu.Lock()
	ackedVersions := make(map[uint64]bool, len(acked))
	var maxAcked uint64
	for _, a := range acked {
		ackedVersions[a.version] = true
		if a.version > maxAcked {
			maxAcked = a.version
		}
	}
	ackMu.Unlock()
	for sI, res := range subResults {
		if res.err != nil && !errors.Is(res.err, context.Canceled) {
			t.Errorf("subscriber %d: %v", sI, res.err)
		}
		if len(res.versions) == 0 {
			t.Errorf("subscriber %d saw no events", sI)
		}
		for _, ver := range res.versions {
			if !ackedVersions[ver] && ver <= maxAcked {
				t.Errorf("subscriber %d: event version %d matches no acked apply", sI, ver)
				break
			}
		}
	}

	// Reopen the store: every durably-acked apply must have survived the
	// shutdown, and the clean shutdown checkpoint means zero WAL replay.
	v2, info, err := ivm.OpenStore(dir, nil)
	if err != nil {
		t.Fatalf("reopening store after shutdown: %v", err)
	}
	defer v2.Close()
	if info.Replayed != 0 {
		t.Errorf("clean shutdown should checkpoint: recovery replayed %d WAL records", info.Replayed)
	}
	for _, a := range acked {
		if !v2.Has("hop", a.src, a.dst) {
			t.Fatalf("durably-acked apply lost: hop(%s,%s) missing after recovery", a.src, a.dst)
		}
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ivm/client"
)

// startTestServer boots a real server on a random port over fresh
// views and returns a client for it. The server is shut down with the
// test.
func startTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	v := buildTestViews(t)
	opts.OwnViews = true
	srv := New(v, opts)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, client.New(srv.URL(), nil)
}

func TestHTTPApplyQueryRoundtrip(t *testing.T) {
	_, c := startTestServer(t, Options{})
	ctx := context.Background()

	res, err := c.Apply(ctx, `+link(a,d). +link(d,e).`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version == 0 {
		t.Fatal("apply did not report a version")
	}
	found := false
	for _, d := range res.Deltas {
		if d.Pred == "hop" {
			found = true
		}
	}
	if !found {
		t.Fatalf("apply deltas missing hop: %+v", res.Deltas)
	}

	q, err := c.Query(ctx, `hop(a,X)`)
	if err != nil {
		t.Fatal(err)
	}
	var bound []string
	for _, r := range q.Results {
		bound = append(bound, r.Bindings["X"])
	}
	if strings.Join(bound, ",") != "c,e" {
		t.Fatalf("hop(a,X) bindings = %v, want [c e]", bound)
	}

	cnt, err := c.Count(ctx, `hop(a,c)`)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 1 || !cnt.Has {
		t.Fatalf("count hop(a,c) = %+v", cnt)
	}
	has, err := c.Has(ctx, `hop(z,z)`)
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Fatal("hop(z,z) should be absent")
	}

	rows, err := c.Rows(ctx, "hop")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Rows) != 2 {
		t.Fatalf("hop rows = %+v, want 2", rows.Rows)
	}

	ex, err := c.Explain(ctx, `hop(a,c)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Derivations) != 1 || len(ex.Derivations[0].Subgoals) != 2 {
		t.Fatalf("explain hop(a,c) = %+v", ex.Derivations)
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "counting" || info.Rules != 1 {
		t.Fatalf("info = %+v", info)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server_requests_total"] == 0 {
		t.Fatalf("metrics missing server_requests_total: %d keys", len(m))
	}
	if _, ok := m["counting_applies_total"]; !ok {
		t.Fatal("metrics missing engine series counting_applies_total")
	}
}

func TestHTTPApplyErrors(t *testing.T) {
	_, c := startTestServer(t, Options{MaxBodyBytes: 128})
	ctx := context.Background()

	if _, err := c.Apply(ctx, `+link(a,b`); err == nil {
		t.Fatal("malformed script did not error")
	}
	if _, err := c.Apply(ctx, `-link(zz,zz).`); err == nil {
		t.Fatal("deleting an absent tuple did not error")
	}
	if _, err := c.Apply(ctx, "   "); err == nil {
		t.Fatal("empty script did not error")
	}
	big := strings.Repeat("+link(a,b). ", 100)
	if _, err := c.Apply(ctx, big); err == nil || !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized body: got %v, want http 413", err)
	}
}

func TestSessionRepeatableRead(t *testing.T) {
	_, c := startTestServer(t, Options{})
	ctx := context.Background()

	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sess.Count(ctx, `hop(a,c)`)
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent update: the live view moves, the session must not.
	if _, err := c.Apply(ctx, `-link(a,b).`); err != nil {
		t.Fatal(err)
	}
	liveCnt, err := c.Count(ctx, `hop(a,c)`)
	if err != nil {
		t.Fatal(err)
	}
	if liveCnt.Has {
		t.Fatal("live view still has hop(a,c) after deleting link(a,b)")
	}
	after, err := sess.Count(ctx, `hop(a,c)`)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count || !after.Has {
		t.Fatalf("session read moved: before %+v after %+v", before, after)
	}
	if after.Version != sess.Version {
		t.Fatalf("session read at version %d, pinned %d", after.Version, sess.Version)
	}

	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Count(ctx, `hop(a,c)`); err == nil {
		t.Fatal("read through a closed session did not error")
	}
	if err := sess.Close(ctx); err == nil {
		t.Fatal("double session close did not error")
	}
}

func TestSessionExpiry(t *testing.T) {
	_, c := startTestServer(t, Options{SessionTTL: 50 * time.Millisecond})
	ctx := context.Background()
	sess, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	if _, err := sess.Rows(ctx, "hop"); err == nil {
		t.Fatal("expired session still served reads")
	}
}

func TestSubscribeStream(t *testing.T) {
	_, c := startTestServer(t, Options{})
	ctx := context.Background()

	sub, err := c.Subscribe(ctx, []string{"hop"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	hello, ok := <-sub.Events()
	if !ok || !hello.Hello {
		t.Fatalf("expected hello event, got %+v (open=%v)", hello, ok)
	}

	res, err := c.Apply(ctx, `+link(a,f). +link(f,g).`)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		if ev.Version != res.Version {
			t.Fatalf("event version %d, apply acked %d", ev.Version, res.Version)
		}
		if len(ev.Deltas) != 1 || ev.Deltas[0].Pred != "hop" {
			t.Fatalf("event deltas = %+v, want hop only (pred filter)", ev.Deltas)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event within 5s of an acked apply")
	}

	// A link-only filter must not see hop-only noise — apply a change
	// that touches hop but subscribe to a predicate that never changes.
	other, err := c.Subscribe(ctx, []string{"never_changes"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	<-other.Events() // hello
	if _, err := c.Apply(ctx, `+link(f,h).`); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-other.Events():
		if ok {
			t.Fatalf("filtered subscriber got unexpected event %+v", ev)
		}
	case <-time.After(200 * time.Millisecond):
		// expected: nothing delivered
	}
}

func TestSubscribeShutdownClosesStream(t *testing.T) {
	v := buildTestViews(t)
	srv := New(v, Options{OwnViews: true})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	c := client.New(srv.URL(), nil)
	sub, err := c.Subscribe(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-sub.Events() // hello

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-sub.Events():
			if !ok {
				if err := sub.Err(); err != nil && !errors.Is(err, context.Canceled) {
					t.Fatalf("stream ended with %v, want clean close", err)
				}
				if err := <-done; err != nil {
					t.Fatalf("shutdown: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("subscription did not close on shutdown")
		}
	}
}

func TestLineProtocol(t *testing.T) {
	srv, _ := startTestServer(t, Options{LineAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", srv.LineAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(conn)

	send := func(line string) string {
		t.Helper()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if resp := send("ping"); !strings.HasPrefix(resp, "ok") {
		t.Fatalf("ping -> %q", resp)
	}
	resp := send("apply +link(a,f). +link(f,g).")
	if !strings.HasPrefix(resp, "ok ") {
		t.Fatalf("apply -> %q", resp)
	}
	var ar client.ApplyResult
	if err := json.Unmarshal([]byte(resp[3:]), &ar); err != nil {
		t.Fatalf("apply response not JSON: %v", err)
	}
	if ar.Version == 0 {
		t.Fatal("line apply did not report a version")
	}
	resp = send("count hop(a,g)")
	var cr client.CountResponse
	if !strings.HasPrefix(resp, "ok ") || json.Unmarshal([]byte(resp[3:]), &cr) != nil {
		t.Fatalf("count -> %q", resp)
	}
	if !cr.Has {
		t.Fatal("count hop(a,g) should hold after the line apply")
	}
	if resp := send("query hop(a,X)"); !strings.HasPrefix(resp, "ok ") {
		t.Fatalf("query -> %q", resp)
	}
	if resp := send("bogus"); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("bogus -> %q", resp)
	}
	if resp := send("count hop(a,X)"); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("non-ground count -> %q", resp)
	}
	if resp := send("quit"); resp != "bye" {
		t.Fatalf("quit -> %q", resp)
	}
}

func TestLineProtocolSubscribe(t *testing.T) {
	srv, c := startTestServer(t, Options{LineAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", srv.LineAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(conn)

	if _, err := conn.Write([]byte("sub hop\n")); err != nil {
		t.Fatal(err)
	}
	hello, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(hello, "ok ") {
		t.Fatalf("sub hello -> %q (%v)", hello, err)
	}
	res, err := c.Apply(context.Background(), `+link(a,m). +link(m,n).`)
	if err != nil {
		t.Fatal(err)
	}
	line, err := rd.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, "event ") {
		t.Fatalf("sub event -> %q (%v)", line, err)
	}
	var ev client.Event
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "event ")), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Version != res.Version {
		t.Fatalf("line event version %d, acked %d", ev.Version, res.Version)
	}
}

func TestRequestTimeout(t *testing.T) {
	srv, _ := startTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp, err := http.Get(srv.URL() + "/v1/rows?pred=hop")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 on timeout", resp.StatusCode)
	}
}

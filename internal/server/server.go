package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/datalog"
	"ivm/internal/metrics"
	"ivm/internal/parser"
	"ivm/internal/sched"
)

// Options configures a Server. The zero value serves HTTP on a random
// localhost port with the documented defaults.
type Options struct {
	// Addr is the HTTP listen address (default "127.0.0.1:0").
	Addr string
	// LineAddr, when non-empty, additionally serves the text line
	// protocol on this TCP address (see lineproto.go).
	LineAddr string
	// RequestTimeout bounds every non-streaming request (default 15s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps apply request bodies (default 4 MiB).
	MaxBodyBytes int64
	// SubscriberBuffer is the default per-subscriber event buffer; a
	// subscriber that falls this many committed batches behind is
	// evicted (default 256). Clients may request less, never more.
	SubscriberBuffer int
	// SessionTTL is the idle lifetime of a snapshot-pinned session;
	// every read through the session refreshes it (default 5m).
	SessionTTL time.Duration
	// OwnViews makes Shutdown also shut the Views down (drain, then
	// checkpoint + close a bound store). Set by cmd/ivmd, which owns its
	// views; leave false when the views outlive the server.
	OwnViews bool
	// LeaderURL marks this server a replication follower: applies are
	// transparently forwarded to the primary at this URL (preserving the
	// Idempotency-Key), and reads whose ?min_version= wait times out
	// carry a Leader-URL header so clients can redirect. The value is
	// only the initial leader; SetLeaderURL moves it when the follower
	// re-resolves after a failover, and clears it on promotion.
	LeaderURL string
	// Promote, when set on a follower, is invoked by POST /v1/promote:
	// it must stop tailing the old primary and raise the fencing epoch,
	// returning the new epoch this node now leads at. After it returns
	// the server clears its leader URL and serves applies locally.
	Promote func() (uint64, error)
	// ReplWindow is how many committed records the in-memory replication
	// window retains (default 1024). Followers resuming further behind
	// are backfilled from the WAL, or from a full state transfer.
	ReplWindow int
	// ReplHeartbeat is the keepalive cadence of idle /v1/replicate
	// streams (default 500ms). Heartbeats carry the current published
	// version, so an idle follower still tracks lag.
	ReplHeartbeat time.Duration
	// MinVersionWait bounds how long a ?min_version= read waits for the
	// published version to catch up before answering 412 (default 2s).
	MinVersionWait time.Duration
	// ExtraMetrics are appended to the /v1/metrics exposition after the
	// engine and server series — e.g. a follower's replica_* registry.
	ExtraMetrics []*metrics.Registry
	// Logf receives one line per lifecycle event and served request
	// (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 15 * time.Second
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 4 << 20
	}
	if out.SubscriberBuffer <= 0 {
		out.SubscriberBuffer = 256
	}
	if out.SessionTTL <= 0 {
		out.SessionTTL = 5 * time.Minute
	}
	if out.ReplWindow <= 0 {
		out.ReplWindow = 1024
	}
	if out.ReplHeartbeat <= 0 {
		out.ReplHeartbeat = 500 * time.Millisecond
	}
	if out.MinVersionWait <= 0 {
		out.MinVersionWait = 2 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Server serves a Views instance over HTTP/JSON (and optionally the
// line protocol): apply, lock-free reads, snapshot-pinned sessions, a
// streaming subscription endpoint, and a metrics exposition. See
// DESIGN.md §11 for the shutdown and backpressure contracts.
type Server struct {
	v    *ivm.Views
	opts Options
	hub  *Hub
	sess *sessionTable
	reg  *metrics.Registry

	http   *http.Server
	httpLn net.Listener
	lineLn net.Listener

	// replWin is the in-memory tail of committed records that
	// /v1/replicate streams from; stop unblocks idle streams at
	// shutdown.
	replWin  *sched.Window[ivm.CommitRecord]
	stop     chan struct{}
	stopOnce sync.Once

	// leader is the current leader base URL ("" = this node is the
	// primary). It moves when a follower re-resolves after a failover
	// and clears on promotion, so it is read atomically on every apply.
	leader atomic.Value // string

	// fwd is the HTTP client follower applies are proxied through.
	fwd *http.Client

	// applyWG tracks in-flight applies and forwards so Shutdown can
	// drain them before the replication window closes — an acked apply
	// is always shipped to connected followers. Admission goes through
	// beginApply (Add under mu, gated on draining): once Shutdown has
	// flipped draining and started waiting, no new apply can slip in.
	applyWG sync.WaitGroup

	mu        sync.Mutex
	lineConns map[net.Conn]struct{}
	// replStreams tracks each live /v1/replicate stream's shipped
	// version so Shutdown can wait for connected followers to receive
	// the final commits before cutting them off.
	replStreams map[*atomic.Uint64]struct{}
	draining    bool

	cRequests  *metrics.Counter
	cErrors    *metrics.Counter
	cDedups    *metrics.Counter
	cForwarded *metrics.Counter
	cFwdErrors *metrics.Counter
	hRequest   *metrics.Histogram
}

// New builds a server over v. Call Start to begin serving.
func New(v *ivm.Views, opts Options) *Server {
	opts = opts.withDefaults()
	reg := metrics.NewRegistry()
	s := &Server{
		v:           v,
		opts:        opts,
		hub:         NewHub(v, reg, opts.SubscriberBuffer),
		sess:        newSessionTable(opts.SessionTTL, reg),
		reg:         reg,
		lineConns:   make(map[net.Conn]struct{}),
		replStreams: make(map[*atomic.Uint64]struct{}),
		fwd:         &http.Client{Timeout: opts.RequestTimeout},
		cRequests:   reg.Counter("server_requests_total"),
		cErrors:     reg.Counter("server_request_errors_total"),
		cDedups:     reg.Counter("server_apply_dedup_total"),
		cForwarded:  reg.Counter("server_forwarded_total"),
		cFwdErrors:  reg.Counter("server_forward_errors_total"),
		hRequest:    reg.Histogram("server_request_seconds"),
		stop:        make(chan struct{}),
	}
	s.leader.Store(opts.LeaderURL)
	// Register the window's feed before seeding it: a commit landing in
	// between appends (establishing tighter bounds) and the seed becomes
	// a no-op, whereas the reverse order could lose that commit from the
	// window's claimed coverage.
	s.replWin = sched.NewWindow[ivm.CommitRecord](opts.ReplWindow)
	v.OnCommitRecord(func(rec ivm.CommitRecord) { s.replWin.Append(rec.Version, rec) })
	s.replWin.Seed(v.Snapshot().Version())
	mux := http.NewServeMux()
	timed := func(h http.HandlerFunc) http.Handler {
		inner := http.TimeoutHandler(h, opts.RequestTimeout, `{"error":"request timed out"}`)
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// TimeoutHandler writes its 503 body with whatever headers the
			// outer writer already carries — it never sets Content-Type, so
			// clients would misparse the JSON error. Pre-set it here; the
			// success path copies the inner handler's headers over this
			// same key (e.g. the metrics exposition stays text/plain).
			w.Header().Set("Content-Type", "application/json")
			inner.ServeHTTP(w, r)
		})
	}
	mux.Handle("POST /v1/apply", timed(s.handleApply))
	mux.Handle("GET /v1/query", timed(s.handleQuery))
	mux.Handle("GET /v1/rows", timed(s.handleRows))
	mux.Handle("GET /v1/count", timed(s.handleCount))
	mux.Handle("GET /v1/has", timed(s.handleCount))
	mux.Handle("GET /v1/explain", timed(s.handleExplain))
	mux.Handle("GET /v1/metrics", timed(s.handleMetrics))
	mux.Handle("GET /v1/info", timed(s.handleInfo))
	mux.Handle("POST /v1/promote", timed(s.handlePromote))
	mux.Handle("POST /v1/session", timed(s.handleSessionCreate))
	mux.Handle("DELETE /v1/session/{id}", timed(s.handleSessionDelete))
	// Streaming: no timeout handler (the response never ends on its
	// own) and no response buffering.
	mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /v1/replicate", s.handleReplicate)
	s.http = &http.Server{
		Handler:           s.logMiddleware(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Start binds the listeners and begins serving in the background. The
// bound addresses are available from Addr/LineAddr once Start returns.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.opts.Addr, err)
	}
	s.httpLn = ln
	if s.opts.LineAddr != "" {
		lln, err := net.Listen("tcp", s.opts.LineAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("server: listen %s: %w", s.opts.LineAddr, err)
		}
		s.lineLn = lln
		go s.acceptLineConns(lln)
		s.opts.Logf("ivmd: line protocol on %s", lln.Addr())
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.opts.Logf("ivmd: http serve: %v", err)
		}
	}()
	s.sess.startSweeper()
	s.opts.Logf("ivmd: serving HTTP on %s", ln.Addr())
	return nil
}

// Addr returns the bound HTTP address (valid after Start).
func (s *Server) Addr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// LineAddr returns the bound line-protocol address ("" if disabled).
func (s *Server) LineAddr() string {
	if s.lineLn == nil {
		return ""
	}
	return s.lineLn.Addr().String()
}

// URL returns the base HTTP URL (valid after Start).
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops the server gracefully:
//
//  1. new streams (subscribe, replicate, line) are refused, and
//     in-flight applies — including applies this follower is forwarding
//     to its leader — are drained: an Apply that was admitted completes,
//     is durably logged, and its acknowledgment is delivered;
//  2. the update scheduler is drained and connected replication
//     streams are given a bounded grace period to ship the final
//     commits, so an acked apply is never left unshipped by a graceful
//     shutdown;
//  3. subscription and replication streams are closed (so streaming
//     handlers unblock), the HTTP server stops accepting and drains
//     what remains, and line-protocol connections are closed;
//  4. (with Options.OwnViews) the store is checkpointed and its WAL
//     closed via Views.Shutdown.
//
// The apply drain and forwarding proxy MUST drain before the streams
// close — the reverse order acks applies whose commit records the
// closed window can no longer ship, which is exactly the write a
// promoted follower would then be missing.
//
// ctx bounds each wait; on expiry remaining connections are cut but the
// views are still drained and synced (a durably-acked apply is never
// lost — at worst its ack is).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sess.stopSweeper()
	s.opts.Logf("ivmd: shutdown: draining applies and forwards")
	waitCtx(ctx, &s.applyWG)
	s.v.Drain()
	s.opts.Logf("ivmd: shutdown: waiting for replication streams")
	s.waitReplStreams(ctx)
	s.opts.Logf("ivmd: shutdown: closing subscriptions")
	s.hub.CloseAll()
	s.stopOnce.Do(func() { close(s.stop) })
	s.replWin.Close()
	if s.lineLn != nil {
		s.lineLn.Close()
	}
	s.opts.Logf("ivmd: shutdown: draining http")
	err := s.http.Shutdown(ctx)
	s.mu.Lock()
	for c := range s.lineConns {
		c.Close()
	}
	s.mu.Unlock()
	if s.opts.OwnViews {
		s.opts.Logf("ivmd: shutdown: checkpointing store")
		if serr := s.v.Shutdown(); serr != nil && err == nil {
			err = serr
		}
	}
	s.opts.Logf("ivmd: shutdown complete")
	return err
}

// beginApply admits one apply (or forward) into applyWG, refusing when
// the server is draining. The Add happens under mu, which Shutdown also
// holds while flipping draining — so an admitted apply is always seen
// by the drain's Wait, and a WaitGroup Add can never race a Wait that
// already observed a zero counter.
func (s *Server) beginApply() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.applyWG.Add(1)
	return true
}

// waitCtx waits for wg, giving up when ctx expires.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// replStreamGrace bounds how long Shutdown waits for connected
// followers to receive the final committed version.
const replStreamGrace = 2 * time.Second

// waitReplStreams polls the live replication streams until each has
// shipped everything committed, or the grace period (or ctx) expires.
// Streams register their progress in replStreams; a stream that
// disconnects mid-wait simply drops out of the set.
func (s *Server) waitReplStreams(ctx context.Context) {
	target := s.v.Snapshot().Version()
	deadline := time.Now().Add(replStreamGrace)
	for {
		caughtUp := true
		s.mu.Lock()
		for p := range s.replStreams {
			if p.Load() < target {
				caughtUp = false
				break
			}
		}
		s.mu.Unlock()
		if caughtUp || time.Now().After(deadline) || ctx.Err() != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// logMiddleware counts and (when Logf is set) logs every request.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		lw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(lw, r)
		d := time.Since(start)
		s.cRequests.Inc()
		if lw.status >= 400 {
			s.cErrors.Inc()
		}
		s.hRequest.Observe(d)
		s.opts.Logf("ivmd: %s %s -> %d (%s)", r.Method, r.URL.Path, lw.status, d)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	// Every 503 this server produces — shutdown, ErrStoreClosed, a
	// TimeoutHandler expiry — is retryable by design, so advertise that
	// to clients uniformly here (logMiddleware wraps every route).
	if code == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (http.TimeoutHandler does not, but
// the subscribe route bypasses it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, client.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// reader is the read surface shared by the live views and pinned
// session snapshots; *ivm.Snapshot satisfies it.
type reader interface {
	Version() uint64
	Rows(pred string) []ivm.Row
	Count(pred string, vals ...any) int64
	Query(goal string) ([]ivm.QueryResult, error)
	Explain(goal string) ([]ivm.Derivation, error)
}

// LeaderURL returns the leader as this server currently knows it: ""
// when this node is the primary, the primary's base URL on a follower.
func (s *Server) LeaderURL() string {
	u, _ := s.leader.Load().(string)
	return u
}

// SetLeaderURL moves the follower's notion of the leader (the forward
// target and the Leader-URL header). An empty URL makes this server a
// primary — promotion's serving-layer half.
func (s *Server) SetLeaderURL(u string) {
	s.leader.Store(u)
}

// setLeaderHeader advertises the primary on responses a client should
// redirect away from (forwarding failures, min_version timeouts).
func (s *Server) setLeaderHeader(w http.ResponseWriter) {
	if u := s.LeaderURL(); u != "" {
		w.Header().Set("Leader-URL", u)
	}
}

// readerFor resolves the read target: the request's session snapshot
// when ?session= is present (404 on unknown/expired ids), the current
// published version otherwise. A ?min_version= parameter makes the read
// bounded-staleness: the handler waits up to Options.MinVersionWait for
// the published version to reach it, then answers 412 (with a
// Leader-URL header on followers) instead of serving stale data — the
// wait-or-redirect contract read-your-writes across replication lag
// relies on. The bool reports whether a response was already written.
func (s *Server) readerFor(w http.ResponseWriter, r *http.Request) (reader, bool) {
	q := r.URL.Query()
	var min uint64
	if ms := q.Get("min_version"); ms != "" {
		n, err := strconv.ParseUint(ms, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid min_version %q", ms)
			return nil, true
		}
		min = n
	}
	if min > 0 && !s.v.WaitForVersion(min, s.opts.MinVersionWait) {
		s.setLeaderHeader(w)
		writeError(w, http.StatusPreconditionFailed,
			"published version %d below min_version %d after %s", s.v.Snapshot().Version(), min, s.opts.MinVersionWait)
		return nil, true
	}
	id := q.Get("session")
	if id == "" {
		return s.v.Snapshot(), false
	}
	sess, ok := s.sess.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", id)
		return nil, true
	}
	if min > 0 && sess.snap.Version() < min {
		writeError(w, http.StatusPreconditionFailed,
			"session %q pins version %d below min_version %d", id, sess.snap.Version(), min)
		return nil, true
	}
	return sess.snap, false
}

// handleApply applies a delta script. The body is either raw script
// text or JSON {"script": "..."}; the response acknowledges the version
// the batch published. For store-bound views the WAL record is fsynced
// before this handler returns.
//
// An Idempotency-Key header makes the apply exactly-once under retries:
// the first commit under a key is the only one applied, and duplicate
// requests are answered with the original result (Deduped: true)
// instead of re-applying — see DESIGN.md §13.
//
// On a follower the apply is transparently forwarded to the leader
// (Idempotency-Key preserved, the leader's version-stamped ack returned
// verbatim); on a primary an X-Ivm-Epoch header from a newer fencing
// epoch means this node was deposed while it was away — the apply is
// refused with 409 rather than split-braining the cluster.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if !s.beginApply() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.applyWG.Done()
	if leader := s.LeaderURL(); leader != "" {
		s.forwardApply(w, r, leader)
		return
	}
	if eh := r.Header.Get("X-Ivm-Epoch"); eh != "" {
		e, err := strconv.ParseUint(eh, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid X-Ivm-Epoch %q", eh)
			return
		}
		if own := s.v.FenceEpoch(); e > own {
			s.reg.Counter("replica_fenced_total").Inc()
			writeError(w, http.StatusConflict,
				"fenced: request carries epoch %d but this node leads epoch %d; it was deposed", e, own)
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "apply body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	script := string(body)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req struct {
			Script string `json:"script"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding apply request: %v", err)
			return
		}
		script = req.Script
	}
	if strings.TrimSpace(script) == "" {
		writeError(w, http.StatusBadRequest, "empty delta script")
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if len(key) > ivm.MaxIdempotencyKeyLen {
		writeError(w, http.StatusBadRequest, "Idempotency-Key of %d bytes exceeds the %d-byte limit", len(key), ivm.MaxIdempotencyKeyLen)
		return
	}
	cs, deduped, err := s.v.ApplyScriptIdempotent(key, script)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ivm.ErrStoreClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "apply: %v", err)
		return
	}
	if deduped {
		s.cDedups.Inc()
	}
	writeJSON(w, http.StatusOK, client.ApplyResult{
		Version: cs.Version(),
		Deltas:  DeltasFromChangeSet(cs),
		Deduped: deduped,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	goal := r.URL.Query().Get("goal")
	if goal == "" {
		writeError(w, http.StatusBadRequest, "missing goal parameter")
		return
	}
	rd, done := s.readerFor(w, r)
	if done {
		return
	}
	results, err := rd.Query(goal)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	resp := client.QueryResponse{Version: rd.Version(), Results: []client.QueryResult{}}
	for _, qr := range results {
		out := client.QueryResult{Tuple: wireTuple(qr.Row.Tuple), Count: qr.Row.Count}
		if len(qr.Bindings) > 0 {
			out.Bindings = make(map[string]string, len(qr.Bindings))
			for name, val := range qr.Bindings {
				out.Bindings[name] = val.String()
			}
		}
		resp.Results = append(resp.Results, out)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	pred := r.URL.Query().Get("pred")
	if pred == "" {
		writeError(w, http.StatusBadRequest, "missing pred parameter")
		return
	}
	rd, done := s.readerFor(w, r)
	if done {
		return
	}
	writeJSON(w, http.StatusOK, client.RowsResponse{
		Version: rd.Version(),
		Pred:    pred,
		Rows:    wireRows(rd.Rows(pred)),
	})
}

// handleCount serves /v1/count and /v1/has: the goal must be ground
// (every argument a constant).
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	goal := r.URL.Query().Get("goal")
	if goal == "" {
		writeError(w, http.StatusBadRequest, "missing goal parameter")
		return
	}
	pred, vals, err := groundGoal(goal)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rd, done := s.readerFor(w, r)
	if done {
		return
	}
	n := rd.Count(pred, vals...)
	writeJSON(w, http.StatusOK, client.CountResponse{Version: rd.Version(), Count: n, Has: n > 0})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	goal := r.URL.Query().Get("goal")
	if goal == "" {
		writeError(w, http.StatusBadRequest, "missing goal parameter")
		return
	}
	rd, done := s.readerFor(w, r)
	if done {
		return
	}
	ds, err := rd.Explain(goal)
	if err != nil {
		writeError(w, http.StatusBadRequest, "explain: %v", err)
		return
	}
	resp := client.ExplainResponse{Version: rd.Version(), Derivations: []client.Derivation{}}
	for _, d := range ds {
		wd := client.Derivation{Rule: d.Rule, RuleIndex: d.RuleIndex}
		for _, g := range d.Subgoals {
			wd.Subgoals = append(wd.Subgoals, client.Subgoal{
				Pred: g.Pred, Tuple: wireTuple(g.Tuple),
				Negated: g.Negated, Aggregate: g.Aggregate, Count: g.Count,
			})
		}
		resp.Derivations = append(resp.Derivations, wd)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics writes the engine registry's exposition followed by the
// server's own (server_* series), in the shared `name value` format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := s.v.Metrics().WriteTo(w); err != nil {
		return
	}
	if _, err := s.reg.Snapshot().WriteTo(w); err != nil {
		return
	}
	for _, extra := range s.opts.ExtraMetrics {
		if _, err := extra.Snapshot().WriteTo(w); err != nil {
			return
		}
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	snap := s.v.Snapshot()
	info := client.Info{
		Strategy:  s.v.Strategy().String(),
		Semantics: semanticsName(s.v),
		Rules:     len(s.v.Program().Rules),
		Version:   snap.Version(),
		Preds:     snap.Preds(),
		Role:      "primary",
		Epoch:     s.v.FenceEpoch(),
	}
	if leader := s.LeaderURL(); leader != "" {
		info.Role, info.LeaderURL = "follower", leader
	}
	if dir, ok := s.v.Store(); ok {
		info.StoreDir = dir
	}
	writeJSON(w, http.StatusOK, info)
}

// handlePromote serves POST /v1/promote: turn this follower into the
// primary at epoch+1. Idempotent — promoting a primary answers 200 with
// Promoted: false. The heavy lifting (stop tailing, raise and persist
// the fencing epoch) happens in Options.Promote, wired by cmd/ivmd to
// the replica's Promote.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.LeaderURL() == "" {
		writeJSON(w, http.StatusOK, client.PromoteResult{Role: "primary", Epoch: s.v.FenceEpoch()})
		return
	}
	if s.opts.Promote == nil {
		writeError(w, http.StatusNotImplemented, "this follower has no promotion hook")
		return
	}
	epoch, err := s.opts.Promote()
	if err != nil {
		writeError(w, http.StatusConflict, "promote: %v", err)
		return
	}
	s.SetLeaderURL("")
	s.opts.Logf("ivmd: promoted to primary at epoch %d", epoch)
	writeJSON(w, http.StatusOK, client.PromoteResult{Role: "primary", Epoch: epoch, Promoted: true})
}

func semanticsName(v *ivm.Views) string {
	if v.Semantics() == ivm.DuplicateSemantics {
		return "duplicate"
	}
	return "set"
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	sess := s.sess.create(s.v)
	writeJSON(w, http.StatusOK, client.SessionInfo{
		ID:          sess.id,
		Version:     sess.snap.Version(),
		ExpiresUnix: sess.expires.Unix(),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sess.drop(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown or expired session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleSubscribe streams committed change sets as NDJSON, one
// client.Event per line: a hello carrying the current version, then
// every committed batch matching the ?pred= filters (repeatable; none =
// all), until the client disconnects, the server shuts down, or the
// subscriber falls behind its buffer and is evicted (final event has
// "evicted": true).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	q := r.URL.Query()
	buffer := s.opts.SubscriberBuffer
	if bs := q.Get("buffer"); bs != "" {
		n, err := strconv.Atoi(bs)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid buffer %q", bs)
			return
		}
		if n < buffer {
			buffer = n
		}
	}
	// Subscribe before reading the hello version: a commit between the
	// two lands both in the hello version and the event stream (benign
	// overlap) rather than in neither (a gap).
	var sub *Subscriber
	var backlog []client.Event
	if fs := q.Get("from"); fs != "" {
		from, err := strconv.ParseUint(fs, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid from %q", fs)
			return
		}
		var resync bool
		sub, backlog, resync = s.hub.SubscribeFrom(q["pred"], buffer, from)
		if resync {
			// The gap cannot be bridged gaplessly: tell the consumer to
			// re-read current state and subscribe afresh.
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(client.Event{Resync: true})
			flusher.Flush()
			return
		}
	} else {
		sub = s.hub.Subscribe(q["pred"], buffer)
	}
	if sub == nil {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.Encode(client.Event{Version: s.v.Snapshot().Version(), Hello: true})
	flusher.Flush()
	// Resume backlog first: these precede (by version) everything the
	// live channel will deliver, so writing them up front keeps the
	// resumed stream gapless and ordered.
	for _, ev := range backlog {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	if len(backlog) > 0 {
		flusher.Flush()
	}

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				// Hub shutdown or eviction; tell the client which.
				if sub.Evicted() {
					enc.Encode(client.Event{Evicted: true})
					flusher.Flush()
				}
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// groundGoal parses a goal and requires it ground, returning the
// predicate and argument values for Count/Has.
func groundGoal(goal string) (string, []any, error) {
	a, err := parser.ParseGoal(goal)
	if err != nil {
		return "", nil, err
	}
	vals := make([]any, len(a.Args))
	for i, t := range a.Args {
		c, ok := t.(datalog.Const)
		if !ok {
			return "", nil, fmt.Errorf("goal must be ground: %s is a variable", t)
		}
		vals[i] = c.Value
	}
	return a.Pred, vals, nil
}

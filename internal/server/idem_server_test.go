package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ivm"
	"ivm/client"
)

// postApply sends POST /v1/apply with an optional Idempotency-Key and
// decodes the response.
func postApply(t *testing.T, url, key, script string) (*http.Response, client.ApplyResult, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/apply", strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ar client.ApplyResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatalf("apply response not JSON: %v (%s)", err, body)
		}
	}
	return resp, ar, string(body)
}

func TestHTTPApplyIdempotencyKey(t *testing.T) {
	srv, c := startTestServer(t, Options{})
	ctx := context.Background()

	resp, first, _ := postApply(t, srv.URL(), "req-1", "+link(a,z).")
	if resp.StatusCode != http.StatusOK || first.Deduped {
		t.Fatalf("first keyed apply: status %d deduped=%v", resp.StatusCode, first.Deduped)
	}
	resp, second, _ := postApply(t, srv.URL(), "req-1", "+link(a,z).")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d", resp.StatusCode)
	}
	if !second.Deduped {
		t.Fatal("retry with the same Idempotency-Key must report deduped")
	}
	if second.Version != first.Version {
		t.Fatalf("retry acked version %d, original %d — must return the original result", second.Version, first.Version)
	}
	cnt, err := c.Count(ctx, "link(a,z)")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 1 {
		t.Fatalf("link(a,z) count = %d, want 1 (retry double-applied)", cnt.Count)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server_apply_dedup_total"] != 1 {
		t.Fatalf("server_apply_dedup_total = %d, want 1", m["server_apply_dedup_total"])
	}
	if m["sched_idem_dedup_total"] != 1 {
		t.Fatalf("sched_idem_dedup_total = %d, want 1", m["sched_idem_dedup_total"])
	}

	// An unkeyed apply of the same script is a fresh application.
	if _, res, _ := postApply(t, srv.URL(), "", "+link(a,z)."); res.Deduped {
		t.Fatal("unkeyed apply must never dedup")
	}

	// Over-long keys are rejected up front, before touching the engine.
	resp, _, body := postApply(t, srv.URL(), strings.Repeat("k", ivm.MaxIdempotencyKeyLen+1), "+link(q,q).")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-long key: status %d (%s), want 400", resp.StatusCode, body)
	}
	if has, err := c.Has(ctx, "link(q,q)"); err != nil || has {
		t.Fatalf("rejected keyed apply must not apply (has=%v err=%v)", has, err)
	}
}

// The TimeoutHandler 503 must be parseable by client.do: JSON body,
// application/json Content-Type, and a Retry-After hint.
func TestTimeoutResponseIsJSONWithRetryAfter(t *testing.T) {
	srv, _ := startTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp, err := http.Get(srv.URL() + "/v1/rows?pred=hop")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("timeout Content-Type = %q, want application/json", ct)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout 503 must carry Retry-After")
	}
	var er client.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Fatalf("timeout body must be an ErrorResponse: %v (%+v)", err, er)
	}
}

// The success path must keep each handler's own Content-Type despite
// the timed wrapper pre-setting application/json (the metrics
// exposition is the one non-JSON route).
func TestMetricsContentTypeSurvivesTimedWrapper(t *testing.T) {
	srv, _ := startTestServer(t, Options{})
	resp, err := http.Get(srv.URL() + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q, want text/plain", ct)
	}
}

// A 503 from the store-closed path carries Retry-After so clients know
// the condition is retryable (e.g. a daemon restarting behind a proxy).
func TestStoreClosedRetryAfter(t *testing.T) {
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, func() (*ivm.Views, error) {
		db := ivm.NewDatabase()
		db.MustLoad(`link(a,b). link(b,c).`)
		return db.Materialize(`hop(X,Y) :- link(X,Z), link(Z,Y).`)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(v, Options{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	resp, _, _ := postApply(t, srv.URL(), "", "+link(x,y).")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("apply on closed store: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("store-closed 503 must carry Retry-After")
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("store-closed Content-Type = %q, want application/json", ct)
	}
}

func TestLineProtocolIdempotencyKey(t *testing.T) {
	srv, _ := startTestServer(t, Options{LineAddr: "127.0.0.1:0"})
	conn, err := net.Dial("tcp", srv.LineAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(conn)
	send := func(line string) string {
		t.Helper()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	resp := send("apply @line-key +link(a,w).")
	var first client.ApplyResult
	if !strings.HasPrefix(resp, "ok ") || json.Unmarshal([]byte(resp[3:]), &first) != nil {
		t.Fatalf("keyed apply -> %q", resp)
	}
	if first.Deduped {
		t.Fatal("first keyed line apply must not dedup")
	}
	resp = send("apply @line-key +link(a,w).")
	var second client.ApplyResult
	if !strings.HasPrefix(resp, "ok ") || json.Unmarshal([]byte(resp[3:]), &second) != nil {
		t.Fatalf("keyed retry -> %q", resp)
	}
	if !second.Deduped || second.Version != first.Version {
		t.Fatalf("keyed retry = %+v, want deduped at version %d", second, first.Version)
	}
	if resp := send("apply @"); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("apply @ without key -> %q, want err", resp)
	}
	if resp := send("apply @k"); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("apply @k without script -> %q, want err", resp)
	}
	if resp := send("apply @" + strings.Repeat("x", ivm.MaxIdempotencyKeyLen+1) + " +link(a,b)."); !strings.HasPrefix(resp, "err ") {
		t.Fatalf("over-long line key -> %q, want err", resp)
	}
}

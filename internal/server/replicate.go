package server

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ivm"
	"ivm/internal/storage"
)

// handleReplicate serves GET /v1/replicate: the resumable replication
// stream a follower tails. The response is a raw sequence of framed
// replication records (see internal/storage repl.go): 'D' records ship
// committed delta scripts in version order, 'S' records ship a full
// state snapshot, 'H' heartbeats keep idle streams demonstrably alive.
//
// Resume protocol: ?from=<version> asks for every commit after that
// version. The handler serves it from a ladder of sources —
//
//  1. the in-memory window of recent commits (the common case);
//  2. the WAL, when the resume point has aged out of the window and the
//     durable records still bridge the gap contiguously;
//  3. a full state snapshot ('S'), when neither can prove a gapless
//     bridge — the follower replaces its state wholesale and tails on.
//
// A missing ?from= means "bootstrap me": the handler leads with an 'S'
// record. Commits whose effects a delta cannot express (rule edits,
// marked Reset) are also shipped as a fresh 'S'.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var cur uint64
	haveFrom := false
	if fs := r.URL.Query().Get("from"); fs != "" {
		n, err := strconv.ParseUint(fs, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid from %q", fs)
			return
		}
		cur, haveFrom = n, true
	}
	// ?epoch= is the follower's known fencing epoch. A follower ahead of
	// us has seen a newer leader — we were deposed while away. Refuse
	// loudly rather than feed it stale records it would reject anyway.
	if es := r.URL.Query().Get("epoch"); es != "" {
		e, err := strconv.ParseUint(es, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid epoch %q", es)
			return
		}
		if own := s.v.FenceEpoch(); e > own {
			s.reg.Counter("replica_fenced_total").Inc()
			writeError(w, http.StatusConflict,
				"fenced: follower is at epoch %d but this node leads epoch %d; it was deposed", e, own)
			return
		}
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	// Register this stream's shipped-version progress so a graceful
	// shutdown can wait for connected followers to receive the final
	// commits (Shutdown's replication grace) before cutting them off.
	progress := new(atomic.Uint64)
	s.mu.Lock()
	s.replStreams[progress] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.replStreams, progress)
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(rec storage.ReplRecord) bool {
		// Every record carries the node's current fencing epoch: the
		// follower's split-brain guard rides the stream itself.
		rec.Epoch = s.v.FenceEpoch()
		buf, err := storage.AppendReplRecord(nil, rec)
		if err != nil {
			s.opts.Logf("ivmd: replicate: encoding record v%d: %v", rec.Version, err)
			return false
		}
		if _, err := w.Write(buf); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	sendDelta := func(rec ivm.CommitRecord) bool {
		return send(storage.ReplRecord{
			Kind:     storage.ReplKindDelta,
			Version:  rec.Version,
			UnixNano: rec.UnixNano,
			Script:   rec.Script,
			Keys:     rec.Keys,
		})
	}
	// sendState ships the current published state as an 'S' record and
	// returns its version — the follower's new resume point.
	sendState := func() (uint64, bool) {
		snap := s.v.Snapshot()
		st := snap.ReplicaState()
		payload, err := storage.EncodeReplState(storage.ReplState{
			Program:   st.Program,
			Hidden:    st.Hidden,
			Facts:     st.Facts,
			Strategy:  st.Strategy,
			Semantics: st.Semantics,
		})
		if err != nil {
			s.opts.Logf("ivmd: replicate: encoding state: %v", err)
			return 0, false
		}
		ok := send(storage.ReplRecord{
			Kind:     storage.ReplKindState,
			Version:  snap.Version(),
			UnixNano: time.Now().UnixNano(),
			State:    payload,
		})
		return snap.Version(), ok
	}
	// backfill bridges (cur, coversAfter] from the WAL; when the durable
	// records cannot prove a contiguous bridge (legacy unstamped records,
	// a checkpoint that truncated them, no store at all) it falls back to
	// a full state transfer. Returns the new resume point.
	backfill := func(coversAfter uint64) (uint64, bool) {
		recs, ok, err := s.v.CommittedRecordsAfter(cur)
		if ok && err == nil && len(recs) > 0 && recs[0].Version == cur+1 {
			contiguous := recs[len(recs)-1].Version >= coversAfter
			for i := 1; contiguous && i < len(recs); i++ {
				if recs[i].Version != recs[i-1].Version+1 {
					contiguous = false
				}
			}
			if contiguous {
				for _, rec := range recs {
					if !sendDelta(rec) {
						return 0, false
					}
				}
				return recs[len(recs)-1].Version, true
			}
		}
		if err != nil {
			s.opts.Logf("ivmd: replicate: WAL backfill after v%d: %v", cur, err)
		}
		return sendState()
	}

	if !haveFrom {
		v, ok := sendState()
		if !ok {
			return
		}
		cur = v
	}

	hb := time.NewTicker(s.opts.ReplHeartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		progress.Store(cur)
		// Capture the wait channel before probing: an append landing
		// between Next and the select then wakes us instead of being
		// lost.
		ch := s.replWin.WaitCh()
		if e, ok := s.replWin.Next(cur); ok {
			if e.Item.Reset {
				// A rule edit: deltas cannot express it, so ship the
				// current state (at least e.Version) and jump there.
				v, ok := sendState()
				if !ok {
					return
				}
				cur = v
				continue
			}
			if !sendDelta(e.Item) {
				return
			}
			cur = e.Item.Version
			continue
		}
		if ca, _, ok := s.replWin.Bounds(); ok && cur < ca {
			next, ok := backfill(ca)
			if !ok {
				return
			}
			cur = next
			continue
		}
		// Caught up: sleep until the next commit, heartbeating so the
		// follower can tell a quiet primary from a dead connection.
		select {
		case <-ctx.Done():
			return
		case <-s.stop:
			return
		case <-ch:
		case <-hb.C:
			if !send(storage.ReplRecord{
				Kind:     storage.ReplKindHeartbeat,
				Version:  s.v.Snapshot().Version(),
				UnixNano: time.Now().UnixNano(),
			}) {
				return
			}
		}
	}
}

package server

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ivm"
)

// TestSweeperReleasesExpiredSessionSnapshot verifies the leak fix: an
// expired session's pinned snapshot version must become garbage
// collectible through the background sweep alone — with no new session
// creations or reads to trigger the old lazy sweep.
func TestSweeperReleasesExpiredSessionSnapshot(t *testing.T) {
	srv, c := startTestServer(t, Options{SessionTTL: 50 * time.Millisecond})
	ctx := context.Background()

	if _, err := c.NewSession(ctx); err != nil {
		t.Fatal(err)
	}

	// Plant a finalizer on the snapshot the session pinned. The session
	// table holds the only long-lived reference to it once newer
	// versions are published below.
	var collected atomic.Bool
	srv.sess.mu.Lock()
	if len(srv.sess.m) != 1 {
		srv.sess.mu.Unlock()
		t.Fatalf("expected 1 session, have %d", len(srv.sess.m))
	}
	for _, s := range srv.sess.m {
		runtime.SetFinalizer(s.snap, func(*ivm.Snapshot) { collected.Store(true) })
	}
	srv.sess.mu.Unlock()

	// Publish fresh versions so the snapshot's version is only reachable
	// through the session table.
	if _, err := c.Apply(ctx, `+link(x1,x2).`); err != nil {
		t.Fatal(err)
	}

	// Wait out the TTL, then wait for the background sweep (interval is
	// clamped to 100ms) to drop the entry and the GC to collect it. No
	// new sessions, no session reads.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if collected.Load() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !collected.Load() {
		t.Fatal("expired session's snapshot was never collected: the sweeper did not release it")
	}

	srv.sess.mu.Lock()
	n := len(srv.sess.m)
	srv.sess.mu.Unlock()
	if n != 0 {
		t.Fatalf("session table still holds %d entries after sweep", n)
	}
}

// TestSweeperStartStop exercises the sweeper lifecycle directly:
// idempotent start, stop without start, double stop.
func TestSweeperStartStop(t *testing.T) {
	tbl := newSessionTable(time.Second, nil)
	tbl.stopSweeper() // no-op without start
	tbl.startSweeper()
	tbl.startSweeper() // idempotent
	tbl.stopSweeper()
	tbl.stopSweeper() // idempotent
	tbl.startSweeper()
	tbl.stopSweeper()
}

package server

// Write forwarding: a follower that receives an apply proxies it to the
// current leader instead of bouncing the client with a redirect. The
// Idempotency-Key rides the forwarded request end to end, so a client
// retry that lands on a different follower (or on the leader directly)
// still dedups; the leader's version-stamped ack is returned to the
// caller verbatim. The forwarded request also carries this follower's
// fencing epoch (X-Ivm-Epoch) — a deposed primary that somehow still
// answers the leader URL refuses it with 409 instead of committing a
// write the real cluster would never see.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ivm/client"
)

// forwardApply proxies one HTTP apply to the leader. Transport-level
// failures answer 503 with the current Leader-URL — the client retries
// there (or here again, after this follower re-resolves the leader).
func (s *Server) forwardApply(w http.ResponseWriter, r *http.Request, leader string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "apply body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	resp, err := s.proxyApply(r.Context(), leader, r.Header.Get("Content-Type"), r.Header.Get("Idempotency-Key"), body)
	if err != nil {
		s.cFwdErrors.Inc()
		s.setLeaderHeader(w)
		writeError(w, http.StatusServiceUnavailable, "forwarding apply to leader %s: %v", leader, err)
		return
	}
	defer resp.Body.Close()
	s.cForwarded.Inc()
	// Relay the leader's answer as-is: status, the headers clients act
	// on, and the body. A success is the leader's version-stamped ack;
	// an error keeps the leader's status so retry semantics are
	// identical to applying there directly.
	for _, h := range []string{"Content-Type", "Leader-URL", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// proxyApply issues the forwarded POST /v1/apply to the leader,
// preserving the idempotency key and stamping this node's fencing
// epoch. The caller owns the response body.
func (s *Server) proxyApply(ctx context.Context, leader, contentType, key string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, leader+"/v1/apply", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType == "" {
		contentType = "text/plain"
	}
	req.Header.Set("Content-Type", contentType)
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	req.Header.Set("X-Ivm-Epoch", strconv.FormatUint(s.v.FenceEpoch(), 10))
	return s.fwd.Do(req)
}

// forwardApplyLine proxies a line-protocol apply through the same HTTP
// path and decodes the leader's ack, so line clients get transparent
// forwarding too. The error (if any) is the message to send the client.
func (s *Server) forwardApplyLine(leader, key, script string) (client.ApplyResult, error) {
	resp, err := s.proxyApply(context.Background(), leader, "text/plain", key, []byte(script))
	if err != nil {
		s.cFwdErrors.Inc()
		return client.ApplyResult{}, fmt.Errorf("forwarding apply to leader %s: %v", leader, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		s.cFwdErrors.Inc()
		return client.ApplyResult{}, fmt.Errorf("forwarding apply to leader %s: %v", leader, err)
	}
	if resp.StatusCode != http.StatusOK {
		var er client.ErrorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return client.ApplyResult{}, fmt.Errorf("apply: %s", er.Error)
		}
		return client.ApplyResult{}, fmt.Errorf("apply: leader %s answered %d", leader, resp.StatusCode)
	}
	s.cForwarded.Inc()
	var res client.ApplyResult
	if err := json.Unmarshal(data, &res); err != nil {
		return client.ApplyResult{}, fmt.Errorf("decoding leader ack: %v", err)
	}
	return res, nil
}

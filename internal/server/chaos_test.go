package server

// The chaos gauntlet (ISSUE 8 acceptance): N concurrent appliers drive
// keyed applies through a fault-injection proxy (drops, delays,
// mid-body resets, swallowed acks) at a ≥20% fault rate, the daemon is
// hard-killed and restarted mid-run (WAL close without checkpoint, then
// recovery replay), and at the end the engine state must be
// bit-identical to ONE clean application of every acked script — zero
// duplicate applies, zero lost acks. Duplicate semantics make any
// double apply visible as a count of 2.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ivm"
	"ivm/client"
	"ivm/internal/faultnet"
)

const (
	chaosAppliers  = 24 // concurrent appliers (acceptance floor: 20)
	chaosPerClient = 6  // applies per applier
	chaosFraction  = 0.25
)

func chaosInit() (*ivm.Views, error) {
	db := ivm.NewDatabase()
	if err := db.Load(`hit(seed,seed).`); err != nil {
		return nil, err
	}
	return db.Materialize(`mirror(X,Y) :- hit(X,Y).`, ivm.WithSemantics(ivm.DuplicateSemantics))
}

// stateOf flattens the views' full state (every predicate, every tuple,
// every count) into a sorted, comparable form.
func stateOf(t *testing.T, rd interface {
	Preds() []string
	Rows(string) []ivm.Row
}) []string {
	t.Helper()
	var out []string
	for _, pred := range rd.Preds() {
		for _, r := range rd.Rows(pred) {
			out = append(out, fmt.Sprintf("%s%v=%d", pred, r.Tuple, r.Count))
		}
	}
	sort.Strings(out)
	return out
}

func TestChaosGauntletExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos gauntlet skipped in -short")
	}
	dir := t.TempDir()
	v, _, err := ivm.OpenStore(dir, chaosInit, ivm.WithSemantics(ivm.DuplicateSemantics), ivm.WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	// The test owns the views (OwnViews false) because it kills and
	// restarts the server around them mid-run.
	srv := New(v, Options{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	logPath := os.Getenv("CHAOS_LOG")
	if logPath == "" {
		logPath = filepath.Join(t.TempDir(), "faults.log")
	}
	proxy, err := faultnet.New(faultnet.Options{
		Target:   srv.Addr(),
		Fraction: chaosFraction,
		Seed:     8, // deterministic fault schedule
		Delay:    5 * time.Millisecond,
		LogPath:  logPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// One shared client through the proxy. Keep-alives are disabled so
	// every attempt opens a fresh (faultable) connection, and the
	// header timeout converts a black-holed attempt into a retry.
	hc := &http.Client{Transport: &http.Transport{
		DisableKeepAlives:     true,
		ResponseHeaderTimeout: 10 * time.Second,
	}}
	c := client.New(proxy.URL(), hc)
	c.SetRetryPolicy(client.RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})

	script := func(applier, i int) string { return fmt.Sprintf("+hit(a%d,s%d).", applier, i) }
	key := func(applier, i int) string { return fmt.Sprintf("chaos-%d-%d", applier, i) }

	var acked atomic.Int64
	versions := make([][]uint64, chaosAppliers)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for a := 0; a < chaosAppliers; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < chaosPerClient; i++ {
				// Outer retry-until-acked under a STABLE key: the inner
				// RetryPolicy gives up after a few attempts, but the key
				// makes even a fresh outer round exactly-once.
				for {
					res, err := c.ApplyWithKey(ctx, key(a, i), script(a, i))
					if err == nil {
						versions[a] = append(versions[a], res.Version)
						acked.Add(1)
						break
					}
					if ctx.Err() != nil {
						t.Errorf("applier %d gave up on apply %d: %v", a, i, err)
						return
					}
				}
			}
		}(a)
	}

	// Kill-and-restart mid-run: once half the applies are acked, drain
	// the HTTP server, close the WAL WITHOUT a checkpoint (a crash, as
	// far as recovery is concerned), reopen, and repoint the proxy.
	half := int64(chaosAppliers * chaosPerClient / 2)
	for acked.Load() < half && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("mid-run shutdown: %v", err)
	}
	shutdownCancel()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	v2, info, err := ivm.OpenStore(dir, nil, ivm.WithSemantics(ivm.DuplicateSemantics), ivm.WithGroupCommit())
	if err != nil {
		t.Fatalf("reopen after mid-run kill: %v", err)
	}
	if info.Replayed == 0 {
		t.Error("restart must replay WAL records (no checkpoint was taken)")
	}
	srv2 := New(v2, Options{})
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		v2.Shutdown()
	}()
	proxy.SetTarget(srv2.Addr())

	wg.Wait()
	if t.Failed() {
		t.Fatalf("appliers failed; proxy stats %+v, fault log at %s", proxy.Stats(), logPath)
	}
	// Let the post-restart state settle (applies all acked by now).
	v2.Drain()

	// 1. Zero duplicate applies: every acked script's tuple has count
	// exactly 1 (duplicate semantics would show 2 for a double apply),
	// and every acked apply is present.
	snap := v2.Snapshot()
	for a := 0; a < chaosAppliers; a++ {
		for i := 0; i < chaosPerClient; i++ {
			got := snap.Count("hit", fmt.Sprintf("a%d", a), fmt.Sprintf("s%d", i))
			if got != 1 {
				t.Errorf("hit(a%d,s%d) count = %d, want exactly 1", a, i, got)
			}
		}
	}

	// 2. Engine state is bit-identical to one clean application of
	// every acked script.
	clean, err := chaosInit()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < chaosAppliers; a++ {
		for i := 0; i < chaosPerClient; i++ {
			if _, err := clean.ApplyScript(script(a, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	gotState, wantState := stateOf(t, snap), stateOf(t, clean.Snapshot())
	if strings.Join(gotState, "\n") != strings.Join(wantState, "\n") {
		t.Errorf("final state diverges from one clean application:\n got: %v\nwant: %v", gotState, wantState)
	}

	// 3. Every applier got a versioned ack for every apply (version ids
	// restart at recovery, so acks are checked for presence, not
	// global monotonicity — each acked apply's tuple was verified
	// present above).
	for a, vs := range versions {
		if len(vs) != chaosPerClient {
			t.Errorf("applier %d acked %d applies, want %d", a, len(vs), chaosPerClient)
		}
		for i, ver := range vs {
			if ver == 0 {
				t.Errorf("applier %d apply %d acked with version 0", a, i)
			}
		}
	}

	// 4. The chaos actually happened: faults were injected, the client
	// retried, and the server deduped at least one retry.
	pst := proxy.Stats()
	if pst.Faulted == 0 {
		t.Fatalf("no faults injected — gauntlet proved nothing: %+v", pst)
	}
	cst := c.Stats()
	if cst.Retries == 0 {
		t.Errorf("client never retried under %d injected faults: %+v", pst.Faulted, cst)
	}
	m := v2.Metrics()
	serverDedups := m.Counter("sched_idem_dedup_total")
	if cst.Deduped == 0 && serverDedups == 0 {
		t.Logf("warning: no retry was deduped (faults may have all hit pre-commit); proxy=%+v client=%+v", pst, cst)
	}
	t.Logf("chaos: proxy=%+v client=%+v server_dedups=%d replayed=%d", pst, cst, serverDedups, info.Replayed)

	// 5. A final clean reopen retains everything.
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := v2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v3, _, err := ivm.OpenStore(dir, nil, ivm.WithSemantics(ivm.DuplicateSemantics))
	if err != nil {
		t.Fatal(err)
	}
	defer v3.Shutdown()
	if final := stateOf(t, v3.Snapshot()); strings.Join(final, "\n") != strings.Join(wantState, "\n") {
		t.Errorf("state after final reopen diverges:\n got: %v\nwant: %v", final, wantState)
	}
}

package relation

import (
	"fmt"
	"testing"

	"ivm/internal/value"
)

func TestDistinctEstAccuracy(t *testing.T) {
	for _, tc := range []struct {
		rows, distinct int
	}{
		{0, 0}, {1, 1}, {10, 10}, {100, 4}, {1000, 16}, {5000, 200},
	} {
		r := New(2)
		for i := 0; i < tc.rows; i++ {
			d := 1
			if tc.distinct > 0 {
				d = i % tc.distinct
			}
			r.Add(value.T(fmt.Sprintf("g%d", d), fmt.Sprintf("u%d", i)), 1)
		}
		got := r.DistinctEst(0)
		if tc.rows == 0 {
			if got != 0 {
				t.Errorf("%d rows: DistinctEst(0) = %d, want 0", tc.rows, got)
			}
			continue
		}
		// Linear counting over 256 buckets: accept a factor-2 band, which
		// is far tighter than the 4× drift threshold the planner uses.
		lo, hi := tc.distinct/2, tc.distinct*2
		if tc.distinct > 200 {
			// Past ~bucket saturation the estimate degrades toward Len.
			hi = tc.rows
		}
		if got < lo || got > hi {
			t.Errorf("%d rows, %d distinct: DistinctEst(0) = %d, want within [%d, %d]",
				tc.rows, tc.distinct, got, lo, hi)
		}
	}
}

func TestDistinctEstMaintainedIncrementally(t *testing.T) {
	r := New(1)
	for i := 0; i < 50; i++ {
		r.Add(value.T(fmt.Sprintf("v%d", i)), 1)
	}
	before := r.DistinctEst(0) // triggers the lazy build
	if before < 25 || before > 100 {
		t.Fatalf("estimate %d after 50 distinct inserts", before)
	}
	// Incremental growth after the build must move the estimate without
	// another scan.
	for i := 50; i < 200; i++ {
		r.Add(value.T(fmt.Sprintf("v%d", i)), 1)
	}
	mid := r.DistinctEst(0)
	if mid <= before {
		t.Fatalf("estimate did not grow with inserts: %d -> %d", before, mid)
	}
	// Deleting most rows must shrink it again (refcounted buckets).
	for i := 10; i < 200; i++ {
		r.Add(value.T(fmt.Sprintf("v%d", i)), -1)
	}
	after := r.DistinctEst(0)
	if after >= mid {
		t.Fatalf("estimate did not shrink with deletes: %d -> %d", mid, after)
	}
	if after < 5 || after > 20 {
		t.Fatalf("estimate %d after shrinking to 10 distinct", after)
	}
}

func TestDistinctEstDuplicateCountsDoNotInflate(t *testing.T) {
	r := New(1)
	r.Add(value.T("a"), 1)
	_ = r.DistinctEst(0) // build
	// Raising a count (same tuple) adds no new distinct value.
	r.Add(value.T("a"), 5)
	r.Add(value.T("b"), 3)
	if got := r.DistinctEst(0); got < 1 || got > 4 {
		t.Fatalf("estimate %d for 2 distinct values with multiplicity", got)
	}
}

func TestDistinctEstOutOfRangeColumn(t *testing.T) {
	r := New(2)
	r.Add(value.T("a", "b"), 1)
	if got := r.DistinctEst(7); got != r.Len() {
		t.Fatalf("out-of-range column: got %d, want Len()=%d", got, r.Len())
	}
}

func TestDistinctEstimateFallback(t *testing.T) {
	r := New(1)
	r.Add(value.T("a"), 1)
	r.Add(value.T("b"), 1)
	// A plain Reader without CardEstimator support falls back to Len.
	if got := DistinctEstimate(SetImage(r), 0); got != 2 {
		t.Fatalf("setView DistinctEstimate = %d, want 2", got)
	}
	ov := Overlay(r, New(1))
	if got := DistinctEstimate(ov, 0); got < 1 || got > 4 {
		t.Fatalf("overlay DistinctEstimate = %d", got)
	}
}

func TestPreferredIndexExactAndSubset(t *testing.T) {
	r := New(3)
	for i := 0; i < 40; i++ {
		r.Add(value.T(fmt.Sprintf("a%d", i%4), fmt.Sprintf("b%d", i%8), fmt.Sprintf("c%d", i)), 1)
	}
	if got := r.PreferredIndex([]int{0}); got != nil {
		t.Fatalf("PreferredIndex before any index exists = %v, want nil", got)
	}
	r.Lookup([]int{1}, value.T("b1")) // build the {1} index
	if got := r.PreferredIndex([]int{1}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("exact match: got %v, want [1]", got)
	}
	if got := r.PreferredIndex([]int{0, 1}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("subset match: got %v, want [1]", got)
	}
	if got := r.PreferredIndex([]int{0, 2}); got != nil {
		t.Fatalf("disjoint bound set: got %v, want nil", got)
	}
	// A wider index wins over a narrower one when both are subsets.
	r.Lookup([]int{0, 1}, value.T("a1", "b1"))
	if got := r.PreferredIndex([]int{0, 1}); len(got) != 2 {
		t.Fatalf("widest subset: got %v, want [0 1]", got)
	}
}

func TestIndexesBuiltCounter(t *testing.T) {
	before := IndexesBuilt()
	r := New(2)
	for i := 0; i < statsBuckets; i++ {
		r.Add(value.T(fmt.Sprintf("x%d", i), "y"), 1)
	}
	r.Lookup([]int{0}, value.T("x1"))
	r.Lookup([]int{0}, value.T("x2")) // cached: no second build
	after := IndexesBuilt()
	if after != before+1 {
		t.Fatalf("IndexesBuilt went %d -> %d across one lazy build", before, after)
	}
}

package relation

import (
	"strconv"

	"ivm/internal/value"
)

// index is a hash index over a subset of columns. Buckets map the key of
// the projected subtuple to the rows currently matching it. Indexes are
// maintained incrementally once built (see idxAdd).
type index struct {
	cols    []int
	buckets map[string][]Row
}

func colsSig(cols []int) string {
	b := make([]byte, 0, 3*len(cols))
	for _, c := range cols {
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
	}
	return string(b)
}

func projKey(t value.Tuple, cols []int) string {
	sub := make(value.Tuple, len(cols))
	for i, c := range cols {
		sub[i] = t[c]
	}
	return sub.Key()
}

// Lookup returns all rows whose projection on cols equals key's tuple
// values. An index on cols is built on first use and kept up to date by
// subsequent Add/Delete calls.
//
// Lookup is safe to call from concurrent readers (parallel rule
// evaluation probes shared relations from many workers): the lazy index
// build is guarded by idxMu with a read-locked fast path, so concurrent
// Lookups never race even when they trigger the first build. Mutations
// (Add/Delete) must still be externally serialized against readers.
func (r *Relation) Lookup(cols []int, keyVals value.Tuple) []Row {
	sig := colsSig(cols)
	r.idxMu.RLock()
	ix := r.idx[sig]
	r.idxMu.RUnlock()
	if ix == nil {
		r.idxMu.Lock()
		if r.idx == nil {
			r.idx = make(map[string]*index)
		}
		if ix = r.idx[sig]; ix == nil {
			ix = &index{cols: cols, buckets: make(map[string][]Row)}
			for _, row := range r.rows {
				k := projKey(row.Tuple, cols)
				ix.buckets[k] = append(ix.buckets[k], row)
			}
			r.idx[sig] = ix
			r.hasIdx.Store(true)
			indexesBuilt.Add(1)
		}
		r.idxMu.Unlock()
	}
	return ix.buckets[keyVals.Key()]
}

// idxAdd keeps existing indexes in sync with a count change of delta on t.
// Rows are stored denormalized in buckets, so we rewrite the bucket entry.
// Writers are serialized by contract, but idxMu is still taken so the
// race detector stays clean if a stray reader overlaps a mutation.
func (r *Relation) idxAdd(t value.Tuple, delta int64) {
	if !r.hasIdx.Load() {
		return
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	for _, ix := range r.idx {
		k := projKey(t, ix.cols)
		bucket := ix.buckets[k]
		found := false
		tk := t.Key()
		out := bucket[:0]
		for _, row := range bucket {
			if row.Key() == tk {
				found = true
				nc := row.Count + delta
				if nc != 0 {
					out = append(out, Row{Tuple: row.Tuple, Count: nc, key: tk})
				}
				continue
			}
			out = append(out, row)
		}
		if !found && delta != 0 {
			out = append(out, Row{Tuple: t, Count: delta, key: tk})
		}
		if len(out) == 0 {
			delete(ix.buckets, k)
		} else {
			ix.buckets[k] = out
		}
	}
}

package relation

import (
	"fmt"
	"testing"

	"ivm/internal/value"
)

func TestVersionedFreezesAndIsImmutable(t *testing.T) {
	r := New(2)
	r.Add(value.T("a", "b"), 1)
	if v := NewVersioned(r); v.Depth() != 0 {
		t.Fatalf("fresh version depth = %d, want 0", v.Depth())
	}
	if !r.Frozen() {
		t.Fatal("NewVersioned must freeze its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mutating a published relation must panic")
		}
	}()
	r.Add(value.T("x", "y"), 1)
}

func TestVersionedPushLeavesPredecessorUnchanged(t *testing.T) {
	base := New(2)
	base.Add(value.T("a", "b"), 1)
	v0 := NewVersioned(base)

	delta := New(2)
	delta.Add(value.T("c", "d"), 2)
	delta.Add(value.T("a", "b"), -1)
	v1 := v0.Push(delta)

	// The caller may keep mutating its delta: Push copies it.
	delta.Add(value.T("zz", "zz"), 7)

	if got := v0.Flat().Count(value.T("a", "b")); got != 1 {
		t.Fatalf("v0 changed: count(a,b) = %d, want 1", got)
	}
	if v0.Flat().Has(value.T("c", "d")) {
		t.Fatal("v0 must not see v1's delta")
	}
	f1 := v1.Flat()
	if f1.Has(value.T("a", "b")) {
		t.Fatal("v1 must see the -1 cancel (a,b)")
	}
	if got := f1.Count(value.T("c", "d")); got != 2 {
		t.Fatalf("v1 count(c,d) = %d, want 2", got)
	}
	if f1.Has(value.T("zz", "zz")) {
		t.Fatal("post-Push delta mutations must not leak into v1")
	}
}

func TestVersionedEmptyPushIsIdentity(t *testing.T) {
	v := NewVersioned(New(2))
	if v.Push(New(2)) != v {
		t.Fatal("pushing an empty delta must return the same version")
	}
}

func TestVersionedDepthBoundAndFlatEquivalence(t *testing.T) {
	// Push far more deltas than maxChainDepth; depth must stay bounded
	// and the chained reader must agree with the flat form throughout.
	v := NewVersioned(New(2))
	want := map[string]int64{}
	for i := 0; i < 4*maxChainDepth; i++ {
		d := New(2)
		key := fmt.Sprintf("k%d", i%10)
		d.Add(value.T(key, "v"), 1)
		want[key]++
		v = v.Push(d)
		if v.Depth() >= maxChainDepth {
			t.Fatalf("push %d: depth %d not collapsed below maxChainDepth", i, v.Depth())
		}
	}
	for key, n := range want {
		if got := v.Reader().Count(value.T(key, "v")); got != n {
			t.Fatalf("reader count(%s) = %d, want %d", key, got, n)
		}
		if got := v.Flat().Count(value.T(key, "v")); got != n {
			t.Fatalf("flat count(%s) = %d, want %d", key, got, n)
		}
	}
	if !v.Flat().Frozen() {
		t.Fatal("flattened form must be frozen")
	}
}

func TestVersionedPendFractionFlattens(t *testing.T) {
	// A single delta holding ≥ max(minFlattenRows, flen/4) rows must
	// flatten immediately even at depth 1.
	base := New(1)
	for i := 0; i < 2*minFlattenRows; i++ {
		base.Add(value.T(fmt.Sprintf("b%d", i)), 1)
	}
	v := NewVersioned(base)
	d := New(1)
	for i := 0; i < minFlattenRows; i++ {
		d.Add(value.T(fmt.Sprintf("d%d", i)), 1)
	}
	nv := v.Push(d)
	if nv.Depth() != 0 {
		t.Fatalf("bulk delta must flatten: depth = %d", nv.Depth())
	}
	if nv.Flat().Len() != 3*minFlattenRows {
		t.Fatalf("flat len = %d, want %d", nv.Flat().Len(), 3*minFlattenRows)
	}
}

func TestVersionedFlatIsCachedAndReusedByPush(t *testing.T) {
	v := NewVersioned(New(2))
	d := New(2)
	d.Add(value.T("a", "b"), 1)
	v1 := v.Push(d)
	f := v1.Flat()
	if v1.Flat() != f {
		t.Fatal("Flat must cache its result")
	}
	// The next Push should chain from the cached flat form, resetting
	// depth to 1 rather than stacking on the old chain.
	d2 := New(2)
	d2.Add(value.T("c", "d"), 1)
	v2 := v1.Push(d2)
	if v2.Depth() != 1 {
		t.Fatalf("push over a materialized version: depth = %d, want 1", v2.Depth())
	}
}

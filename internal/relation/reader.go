package relation

import "ivm/internal/value"

// Reader is the read-only access interface rule evaluation uses. Besides
// *Relation itself, cheap composable views implement it: Overlay presents
// "base ⊎ delta" without materializing it (so maintenance can see the new
// state of a relation while the stored state is still old), and SetView
// presents the set image (all counts 1) used when deriving higher strata
// under set semantics (paper Section 5.1).
type Reader interface {
	// Arity returns the relation arity (-1 if unknown).
	Arity() int
	// Len estimates the number of distinct tuples (used by join-order
	// heuristics; views may approximate).
	Len() int
	// Count returns the signed count of t (0 if absent).
	Count(t value.Tuple) int64
	// Has reports whether t is present with positive count.
	Has(t value.Tuple) bool
	// Each visits every row (unspecified order).
	Each(f func(Row))
	// Lookup returns rows whose projection on cols matches keyVals.
	Lookup(cols []int, keyVals value.Tuple) []Row
}

var (
	_ Reader = (*Relation)(nil)
	_ Reader = (*overlay)(nil)
	_ Reader = (*setView)(nil)
)

// Materialize copies any Reader into a fresh *Relation.
func Materialize(r Reader) *Relation {
	out := New(r.Arity())
	r.Each(func(row Row) { out.Add(row.Tuple, row.Count) })
	return out
}

// overlay is the non-materialized base ⊎ delta view.
type overlay struct {
	base  Reader
	delta Reader
}

// Overlay returns a Reader presenting base ⊎ delta (Section 3's union)
// without copying either. Rows whose combined count is zero vanish.
// If delta is nil or empty, base itself is returned.
func Overlay(base Reader, delta Reader) Reader {
	if delta == nil {
		return base
	}
	if d, ok := delta.(*Relation); ok && d.Empty() {
		return base
	}
	return &overlay{base: base, delta: delta}
}

func (o *overlay) Len() int {
	// Upper bound: deltas may cancel base rows.
	return o.base.Len() + o.delta.Len()
}

func (o *overlay) Arity() int {
	if a := o.base.Arity(); a >= 0 {
		return a
	}
	return o.delta.Arity()
}

func (o *overlay) Count(t value.Tuple) int64 {
	return o.base.Count(t) + o.delta.Count(t)
}

func (o *overlay) Has(t value.Tuple) bool { return o.Count(t) > 0 }

func (o *overlay) Each(f func(Row)) {
	// Snapshot the delta once so base rows are patched with O(1) map
	// probes on cached keys instead of per-row key re-encoding.
	dm := make(map[string]int64)
	o.delta.Each(func(row Row) { dm[row.Key()] = row.Count })
	o.base.Each(func(row Row) {
		if c := row.Count + dm[row.Key()]; c != 0 {
			f(Row{Tuple: row.Tuple, Count: c, key: row.key})
		}
	})
	o.delta.Each(func(row Row) {
		if o.base.Count(row.Tuple) == 0 && row.Count != 0 {
			f(row)
		}
	})
}

// DistinctEst mirrors Len's upper-bound convention: the overlay has at
// most the base's distinct values plus the delta's.
func (o *overlay) DistinctEst(col int) int {
	return DistinctEstimate(o.base, col) + DistinctEstimate(o.delta, col)
}

// PreferredIndex forwards to the base side — the delta is typically tiny
// and cheap to index on whatever columns the base already indexes.
func (o *overlay) PreferredIndex(bound []int) []int {
	return PreferredIndexFor(o.base, bound)
}

func (o *overlay) Lookup(cols []int, keyVals value.Tuple) []Row {
	base := o.base.Lookup(cols, keyVals)
	del := o.delta.Lookup(cols, keyVals)
	if len(del) == 0 {
		return base
	}
	dm := make(map[string]int64, len(del))
	for _, row := range del {
		dm[row.Key()] = row.Count
	}
	out := make([]Row, 0, len(base)+len(del))
	for _, row := range base {
		k := row.Key()
		if d, ok := dm[k]; ok {
			delete(dm, k) // mark as merged
			if c := row.Count + d; c != 0 {
				out = append(out, Row{Tuple: row.Tuple, Count: c, key: row.key})
			}
			continue
		}
		out = append(out, row)
	}
	if len(dm) > 0 {
		for _, row := range del {
			if d, ok := dm[row.Key()]; ok && d != 0 {
				out = append(out, row)
			}
		}
	}
	return out
}

// setView presents the set image of a reader: positive-count tuples with
// count 1, everything else absent.
type setView struct {
	r Reader
}

// SetImage returns a Reader showing r's set image (every positive-count
// tuple with count 1). Used to implement the per-stratum count convention
// of Section 5.1 under set semantics.
func SetImage(r Reader) Reader {
	if sv, ok := r.(*setView); ok {
		return sv
	}
	return &setView{r: r}
}

func (s *setView) Arity() int { return s.r.Arity() }

func (s *setView) Len() int { return s.r.Len() }

func (s *setView) Count(t value.Tuple) int64 {
	if s.r.Count(t) > 0 {
		return 1
	}
	return 0
}

func (s *setView) Has(t value.Tuple) bool { return s.r.Has(t) }

// DistinctEst forwards to the underlying reader: the set image has the
// same positive-count tuples, so per-column distincts carry over.
func (s *setView) DistinctEst(col int) int { return DistinctEstimate(s.r, col) }

// PreferredIndex forwards to the underlying reader.
func (s *setView) PreferredIndex(bound []int) []int { return PreferredIndexFor(s.r, bound) }

func (s *setView) Each(f func(Row)) {
	s.r.Each(func(row Row) {
		if row.Count > 0 {
			f(Row{Tuple: row.Tuple, Count: 1, key: row.key})
		}
	})
}

func (s *setView) Lookup(cols []int, keyVals value.Tuple) []Row {
	rows := s.r.Lookup(cols, keyVals)
	out := make([]Row, 0, len(rows))
	for _, row := range rows {
		if row.Count > 0 {
			out = append(out, Row{Tuple: row.Tuple, Count: 1, key: row.key})
		}
	}
	return out
}

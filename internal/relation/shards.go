package relation

import (
	"sort"

	"ivm/internal/value"
)

// This file holds the two building blocks of parallel evaluation:
//
//   - Shards: per-worker output buffers. Each worker owns one *Relation
//     and appends to it without any locking; a final ⊎-merge folds the
//     buffers together in a deterministic (sorted-by-key) order. Because
//     ⊎ adds counts and counts are commutative, the merged relation is
//     identical to what a sequential evaluation would have produced.
//
//   - PartitionView: a Reader exposing only the rows of an underlying
//     relation whose tuple hash falls in one of n partitions. Restricting
//     exactly one join-mode literal of a rule to a partition and summing
//     the per-partition results over all partitions yields exactly the
//     full rule output, since every derivation uses exactly one row of
//     that literal.

// Shards is a set of per-worker relations built lock-free (each worker
// writes only its own shard) and merged deterministically afterwards.
type Shards struct {
	parts []*Relation
}

// NewShards returns n empty shards of the given arity (n is clamped to a
// minimum of 1).
func NewShards(arity, n int) *Shards {
	if n < 1 {
		n = 1
	}
	s := &Shards{parts: make([]*Relation, n)}
	for i := range s.parts {
		s.parts[i] = New(arity)
	}
	return s
}

// Shard returns worker i's private relation.
func (s *Shards) Shard(i int) *Relation { return s.parts[i] }

// Parts returns the number of shards.
func (s *Shards) Parts() int { return len(s.parts) }

// MergeInto folds every shard into dst with the ⊎ operator, visiting
// rows in sorted key order so the merge (and any index maintenance it
// triggers) is deterministic regardless of how work was scheduled.
func (s *Shards) MergeInto(dst *Relation) {
	total := 0
	for _, p := range s.parts {
		total += p.Len()
	}
	if total == 0 {
		return
	}
	rows := make([]Row, 0, total)
	for _, p := range s.parts {
		rows = append(rows, p.Rows()...)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key() < rows[j].Key() })
	for _, row := range rows {
		dst.Add(row.Tuple, row.Count)
	}
}

// Merge returns the ⊎ of all shards as a fresh relation.
func (s *Shards) Merge() *Relation {
	out := New(s.parts[0].Arity())
	s.MergeInto(out)
	return out
}

// keyHash is FNV-1a over a tuple's canonical key — deterministic across
// runs and Go versions, which keeps partition assignment reproducible.
func keyHash(k string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime
	}
	return h
}

// partitionView filters a Reader down to one hash partition.
type partitionView struct {
	r           Reader
	part, parts uint64
}

// PartitionView returns a Reader exposing exactly the rows of r whose
// tuple hash ≡ part (mod parts). The parts views for part = 0..parts-1
// form a disjoint cover of r. parts <= 1 returns r unchanged.
func PartitionView(r Reader, part, parts int) Reader {
	if parts <= 1 {
		return r
	}
	return &partitionView{r: r, part: uint64(part), parts: uint64(parts)}
}

func (p *partitionView) owns(key string) bool { return keyHash(key)%p.parts == p.part }

func (p *partitionView) Arity() int { return p.r.Arity() }

// Len estimates the partition's share of the underlying relation (join
// ordering only needs a rough size).
func (p *partitionView) Len() int { return p.r.Len()/int(p.parts) + 1 }

func (p *partitionView) Count(t value.Tuple) int64 {
	if !p.owns(t.Key()) {
		return 0
	}
	return p.r.Count(t)
}

func (p *partitionView) Has(t value.Tuple) bool {
	if !p.owns(t.Key()) {
		return false
	}
	return p.r.Has(t)
}

func (p *partitionView) Each(f func(Row)) {
	p.r.Each(func(row Row) {
		if p.owns(row.Key()) {
			f(row)
		}
	})
}

func (p *partitionView) Lookup(cols []int, keyVals value.Tuple) []Row {
	rows := p.r.Lookup(cols, keyVals)
	out := make([]Row, 0, len(rows)/int(p.parts)+1)
	for _, row := range rows {
		if p.owns(row.Key()) {
			out = append(out, row)
		}
	}
	return out
}

var _ Reader = (*partitionView)(nil)

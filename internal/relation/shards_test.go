package relation

import (
	"fmt"
	"sync"
	"testing"

	"ivm/internal/value"
)

func tup(vals ...any) value.Tuple { return value.T(vals...) }

// TestShardsMergeEqualsSequential: adding rows through per-worker shards
// concurrently and ⊎-merging must equal adding them to one relation
// sequentially.
func TestShardsMergeEqualsSequential(t *testing.T) {
	const workers, perWorker = 8, 200
	want := New(2)
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			want.Add(tup(fmt.Sprintf("a%d", i%37), fmt.Sprintf("b%d", (i*w)%23)), int64(1+i%3))
		}
	}

	sh := NewShards(2, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := sh.Shard(w)
			for i := 0; i < perWorker; i++ {
				out.Add(tup(fmt.Sprintf("a%d", i%37), fmt.Sprintf("b%d", (i*w)%23)), int64(1+i%3))
			}
		}(w)
	}
	wg.Wait()
	got := sh.Merge()
	if !Equal(want, got) {
		t.Fatalf("sharded merge diverges from sequential:\nwant %s\ngot  %s", want, got)
	}

	// MergeInto must also fold correctly into non-empty destinations.
	dst := New(2)
	dst.Add(tup("seed", "row"), 5)
	sh.MergeInto(dst)
	if dst.Count(tup("seed", "row")) != 5 {
		t.Fatalf("MergeInto clobbered pre-existing row")
	}
	if dst.Len() != want.Len()+1 {
		t.Fatalf("MergeInto length %d, want %d", dst.Len(), want.Len()+1)
	}
}

// TestPartitionViewDisjointCover: the n partition views of a relation
// must cover every row exactly once, with consistent Count/Has/Lookup.
func TestPartitionViewDisjointCover(t *testing.T) {
	r := New(2)
	for i := 0; i < 300; i++ {
		r.Add(tup(fmt.Sprintf("x%d", i%50), fmt.Sprintf("y%d", i%31)), int64(1+i%4))
	}
	for _, parts := range []int{1, 2, 3, 8} {
		union := New(2)
		for p := 0; p < parts; p++ {
			pv := PartitionView(r, p, parts)
			pv.Each(func(row Row) {
				union.Add(row.Tuple, row.Count)
				if pv.Count(row.Tuple) != row.Count {
					t.Fatalf("parts=%d: Count(%s) = %d, want %d", parts, row.Tuple, pv.Count(row.Tuple), row.Count)
				}
				if !pv.Has(row.Tuple) {
					t.Fatalf("parts=%d: Has(%s) = false for owned row", parts, row.Tuple)
				}
			})
		}
		if !Equal(r, union) {
			t.Fatalf("parts=%d: union of partitions differs from relation", parts)
		}
	}

	// Lookup through a partition view filters to owned rows only.
	full := r.Lookup([]int{0}, tup("x7"))
	var partitioned int
	for p := 0; p < 4; p++ {
		partitioned += len(PartitionView(r, p, 4).Lookup([]int{0}, tup("x7")))
	}
	if partitioned != len(full) {
		t.Fatalf("partitioned lookups return %d rows, full lookup %d", partitioned, len(full))
	}
}

// TestConcurrentLookupBuildsIndexOnce: hammering Lookup from many
// goroutines (forcing the lazy index build) must be race-free and agree
// with sequential results. Run with -race to check the guarantee.
func TestConcurrentLookupBuildsIndexOnce(t *testing.T) {
	r := New(2)
	for i := 0; i < 200; i++ {
		r.Add(tup(fmt.Sprintf("k%d", i%20), fmt.Sprintf("v%d", i)), 1)
	}
	want := len(r.Lookup([]int{0}, tup("k3")))

	fresh := New(2)
	r.Each(func(row Row) { fresh.Add(row.Tuple, row.Count) })
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := len(fresh.Lookup([]int{0}, tup("k3"))); got != want {
					t.Errorf("worker %d: lookup returned %d rows, want %d", w, got, want)
					return
				}
				// A second column signature exercises concurrent builds of
				// distinct indexes too.
				fresh.Lookup([]int{1}, tup(fmt.Sprintf("v%d", i)))
			}
		}(w)
	}
	wg.Wait()
}
